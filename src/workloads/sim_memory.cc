/**
 * @file
 * RunContext implementation.
 */

#include "workloads/sim_memory.hh"

#include "sim/logging.hh"

namespace xser::workloads {

RunContext::RunContext(mem::MemorySystem *memory, QuantumHook quantum,
                       uint64_t quantum_accesses)
    : memory_(memory), quantum_(std::move(quantum)),
      quantumAccesses_(quantum_accesses)
{
    XSER_ASSERT(memory_ != nullptr, "run context needs a memory system");
    if (quantumAccesses_ == 0)
        fatal("quantum period must be positive");
    numCores_ = memory_->config().numCores;
    lastAccesses_ = memory_->accessCount();
}

unsigned
RunContext::coreForIndex(size_t index, size_t extent) const
{
    if (extent == 0)
        return 0;
    const size_t block = (extent + numCores_ - 1) / numCores_;
    const auto core = static_cast<unsigned>(index / block);
    return core < numCores_ ? core : numCores_ - 1;
}

void
RunContext::firstQuantum()
{
    lastAccesses_ = memory_->accessCount();
    if (quantum_)
        quantum_();
}

} // namespace xser::workloads
