/**
 * @file
 * The six miniature NAS Parallel Benchmark kernels (Section 3.3).
 *
 * Scale note: the paper uses NPB class A sized to < 5 s wall time; our
 * kernels are sized to a few hundred thousand simulated memory accesses
 * per run, with the beam's acceleration factor keeping fluence-per-run
 * (and hence events-per-run) in the same regime. Access *patterns*
 * match the originals: CG's indirect sparse traversal, EP's almost
 * memory-free compute, FT's strided butterflies, IS's scatter
 * histogram, LU's dependent stencil sweeps, MG's multi-level grids.
 */

#ifndef XSER_WORKLOADS_KERNELS_HH
#define XSER_WORKLOADS_KERNELS_HH

#include "workloads/workload.hh"

namespace xser::workloads {

/** CG: conjugate gradient on a sparse symmetric positive-definite
 *  system (indirect addressing; traps on corrupted column indices). */
class CgWorkload : public Workload
{
  public:
    CgWorkload();
    const WorkloadTraits &traits() const override { return traits_; }
    uint64_t approxAccessesPerRun() const override;

  protected:
    void onSetUp(RunContext &ctx) override;
    WorkloadOutput onRun(RunContext &ctx) override;

    void
    onSnapshot(SnapshotWriter &writer) const override
    {
        colIdx_.snapshot(writer);
        values_.snapshot(writer);
        b_.snapshot(writer);
        x_.snapshot(writer);
        r_.snapshot(writer);
        p_.snapshot(writer);
        q_.snapshot(writer);
    }

    void
    onRestore(SnapshotReader &reader, mem::MemorySystem &memory) override
    {
        colIdx_.restore(reader, memory);
        values_.restore(reader, memory);
        b_.restore(reader, memory);
        x_.restore(reader, memory);
        r_.restore(reader, memory);
        p_.restore(reader, memory);
        q_.restore(reader, memory);
    }

  private:
    static constexpr size_t n = 1024;
    static constexpr size_t nnzPerRow = 7;
    static constexpr unsigned iterations = 12;

    WorkloadTraits traits_;
    SimArray<int64_t> colIdx_;
    SimArray<double> values_;
    SimArray<double> b_;
    SimArray<double> x_;
    SimArray<double> r_;
    SimArray<double> p_;
    SimArray<double> q_;
};

/** EP: embarrassingly parallel Marsaglia-polar Gaussian tallies
 *  (compute-bound, smallest memory footprint of the suite). */
class EpWorkload : public Workload
{
  public:
    EpWorkload();
    const WorkloadTraits &traits() const override { return traits_; }
    uint64_t approxAccessesPerRun() const override;

  protected:
    void onSetUp(RunContext &ctx) override;
    WorkloadOutput onRun(RunContext &ctx) override;

    void
    onSnapshot(SnapshotWriter &writer) const override
    {
        buffer_.snapshot(writer);
        counts_.snapshot(writer);
    }

    void
    onRestore(SnapshotReader &reader, mem::MemorySystem &memory) override
    {
        buffer_.restore(reader, memory);
        counts_.restore(reader, memory);
    }

  private:
    static constexpr size_t samples = 40960;
    static constexpr size_t batch = 2048;
    static constexpr size_t annuli = 10;

    WorkloadTraits traits_;
    SimArray<double> buffer_;   ///< random batch staging
    SimArray<int64_t> counts_;  ///< per-annulus tallies
};

/** FT: 2-D complex FFT forward + inverse with round-trip check
 *  (strided power-of-two butterflies). */
class FtWorkload : public Workload
{
  public:
    FtWorkload();
    const WorkloadTraits &traits() const override { return traits_; }
    uint64_t approxAccessesPerRun() const override;

  protected:
    void onSetUp(RunContext &ctx) override;
    WorkloadOutput onRun(RunContext &ctx) override;

    void
    onSnapshot(SnapshotWriter &writer) const override
    {
        re_.snapshot(writer);
        im_.snapshot(writer);
        re0_.snapshot(writer);
        im0_.snapshot(writer);
    }

    void
    onRestore(SnapshotReader &reader, mem::MemorySystem &memory) override
    {
        re_.restore(reader, memory);
        im_.restore(reader, memory);
        re0_.restore(reader, memory);
        im0_.restore(reader, memory);
    }

  private:
    static constexpr size_t dim = 64;  ///< 64x64 grid
    static constexpr unsigned logDim = 6;

    /** In-place 1-D FFT over a row or column of the grid. */
    void fft1d(RunContext &ctx, bool column, size_t index, bool inverse);

    WorkloadTraits traits_;
    SimArray<double> re_;
    SimArray<double> im_;
    SimArray<double> re0_;  ///< pristine copy for the round-trip check
    SimArray<double> im0_;
};

/** IS: integer counting sort (scatter histogram; traps on corrupted
 *  keys used as indices). */
class IsWorkload : public Workload
{
  public:
    IsWorkload();
    const WorkloadTraits &traits() const override { return traits_; }
    uint64_t approxAccessesPerRun() const override;

  protected:
    void onSetUp(RunContext &ctx) override;
    WorkloadOutput onRun(RunContext &ctx) override;

    void
    onSnapshot(SnapshotWriter &writer) const override
    {
        keys_.snapshot(writer);
        hist_.snapshot(writer);
        sorted_.snapshot(writer);
    }

    void
    onRestore(SnapshotReader &reader, mem::MemorySystem &memory) override
    {
        keys_.restore(reader, memory);
        hist_.restore(reader, memory);
        sorted_.restore(reader, memory);
    }

  private:
    static constexpr size_t n = 32768;
    static constexpr int64_t maxKey = 2048;

    WorkloadTraits traits_;
    SimArray<int64_t> keys_;
    SimArray<int64_t> hist_;
    SimArray<int64_t> sorted_;
};

/** LU: SSOR sweeps over a 2-D 5-point system (dependent stencil). */
class LuWorkload : public Workload
{
  public:
    LuWorkload();
    const WorkloadTraits &traits() const override { return traits_; }
    uint64_t approxAccessesPerRun() const override;

  protected:
    void onSetUp(RunContext &ctx) override;
    WorkloadOutput onRun(RunContext &ctx) override;

    void
    onSnapshot(SnapshotWriter &writer) const override
    {
        u_.snapshot(writer);
        rhs_.snapshot(writer);
    }

    void
    onRestore(SnapshotReader &reader, mem::MemorySystem &memory) override
    {
        u_.restore(reader, memory);
        rhs_.restore(reader, memory);
    }

  private:
    static constexpr size_t dim = 72;
    static constexpr unsigned sweeps = 8;

    double residualNorm(RunContext &ctx);

    WorkloadTraits traits_;
    SimArray<double> u_;
    SimArray<double> rhs_;
};

/** MG: multigrid V-cycles on a 2-D Poisson problem (multi-scale
 *  footprints touching several cache levels). */
class MgWorkload : public Workload
{
  public:
    MgWorkload();
    const WorkloadTraits &traits() const override { return traits_; }
    uint64_t approxAccessesPerRun() const override;

  protected:
    void onSetUp(RunContext &ctx) override;
    WorkloadOutput onRun(RunContext &ctx) override;

    void
    onSnapshot(SnapshotWriter &writer) const override
    {
        u_.snapshot(writer);
        rhs_.snapshot(writer);
        res_.snapshot(writer);
    }

    void
    onRestore(SnapshotReader &reader, mem::MemorySystem &memory) override
    {
        u_.restore(reader, memory);
        rhs_.restore(reader, memory);
        res_.restore(reader, memory);
    }

  private:
    static constexpr size_t fineDim = 64;
    static constexpr unsigned levels = 3;  ///< 64, 32, 16
    static constexpr unsigned cycles = 2;

    /** Offsets/dims per level within the flat arrays. */
    size_t levelDim(unsigned level) const { return fineDim >> level; }
    size_t levelOffset(unsigned level) const;

    void smooth(RunContext &ctx, unsigned level);
    void computeResidual(RunContext &ctx, unsigned level);
    void restrictResidual(RunContext &ctx, unsigned level);
    void prolongCorrect(RunContext &ctx, unsigned level);
    double residualNorm(RunContext &ctx, unsigned level);

    WorkloadTraits traits_;
    SimArray<double> u_;    ///< solution, all levels
    SimArray<double> rhs_;  ///< right-hand side, all levels
    SimArray<double> res_;  ///< residual scratch, all levels
};

} // namespace xser::workloads

#endif // XSER_WORKLOADS_KERNELS_HH
