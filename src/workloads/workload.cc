/**
 * @file
 * Workload shared helpers: signature accumulator and suite factory.
 */

#include "workloads/workload.hh"

#include <bit>

#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/kernels.hh"

namespace xser::workloads {

void
SignatureBuilder::add(uint64_t word)
{
    hash_ ^= word;
    hash_ *= 0x100000001b3ULL;
    // Mix in the position so reorderings cannot cancel.
    hash_ ^= ++count_;
    hash_ *= 0x100000001b3ULL;
}

void
SignatureBuilder::add(double value)
{
    add(std::bit_cast<uint64_t>(value));
}

std::vector<uint64_t>
SignatureBuilder::finish() const
{
    return {hash_, count_};
}

uint64_t
Workload::datasetValue(size_t index) const
{
    if (!nameHashValid_) {
        nameHash_ = hashString(traits().name);
        nameHashValid_ = true;
    }
    SplitMix64 mixer(nameHash_ ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
    return mixer.next();
}

void
Workload::setUp(RunContext &ctx)
{
    const auto &info = traits();
    if (info.datasetWords > 0) {
        dataset_ = SimArray<uint64_t>(ctx.memory(), info.datasetWords,
                                      info.name + ".dataset");
        for (size_t i = 0; i < info.datasetWords; ++i) {
            ctx.setCore(ctx.coreForIndex(i, info.datasetWords));
            dataset_.set(ctx, i, datasetValue(i));
            if ((i & 2047) == 0)
                ctx.poll();
        }
    }
    windowCursor_ = 0;
    onSetUp(ctx);
}

bool
Workload::streamDataset(RunContext &ctx)
{
    const auto &info = traits();
    if (info.datasetWords == 0 || info.windowLines == 0)
        return true;
    // One word per 64-byte line: the stride that touches every cache
    // line exactly once, like a class-A input sweep.
    constexpr size_t wordsPerLine = 8;
    const size_t total_lines = info.datasetWords / wordsPerLine;
    bool clean = true;
    for (size_t step = 0; step < info.windowLines; ++step) {
        const size_t line = (windowCursor_ + step) % total_lines;
        const size_t index = line * wordsPerLine;
        ctx.setCore(ctx.coreForIndex(step, info.windowLines));
        if (dataset_.get(ctx, index) != datasetValue(index))
            clean = false;
        if ((step & 511) == 0)
            ctx.poll();
    }
    windowCursor_ = (windowCursor_ + info.windowLines) % total_lines;
    return clean;
}

void
Workload::snapshot(SnapshotWriter &writer) const
{
    dataset_.snapshot(writer);
    writer.u64(windowCursor_);
    onSnapshot(writer);
}

void
Workload::restore(SnapshotReader &reader, mem::MemorySystem &memory)
{
    dataset_.restore(reader, memory);
    windowCursor_ = static_cast<size_t>(reader.u64());
    // nameHash_ is a derived cache; leave it to repopulate lazily.
    onRestore(reader, memory);
}

WorkloadOutput
Workload::run(RunContext &ctx)
{
    const bool inputs_clean = streamDataset(ctx);
    WorkloadOutput output = onRun(ctx);
    if (!inputs_clean && output.termination == Termination::Completed) {
        // Poison the signature: a real application consuming the
        // corrupted input would emit a corrupted result.
        output.signature.push_back(0xbadbadbadbadbadbULL);
    }
    return output;
}

const std::vector<std::string> &
suiteNames()
{
    static const std::vector<std::string> names = {"CG", "LU", "FT",
                                                   "EP", "MG", "IS"};
    return names;
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    if (name == "CG")
        return std::make_unique<CgWorkload>();
    if (name == "EP")
        return std::make_unique<EpWorkload>();
    if (name == "FT")
        return std::make_unique<FtWorkload>();
    if (name == "IS")
        return std::make_unique<IsWorkload>();
    if (name == "LU")
        return std::make_unique<LuWorkload>();
    if (name == "MG")
        return std::make_unique<MgWorkload>();
    fatal(msg("unknown workload '", name, "'"));
}

std::vector<std::unique_ptr<Workload>>
makeSuite()
{
    std::vector<std::unique_ptr<Workload>> suite;
    for (const auto &name : suiteNames())
        suite.push_back(makeWorkload(name));
    return suite;
}

} // namespace xser::workloads
