/**
 * @file
 * FT kernel: 2-D complex FFT round trip.
 *
 * Mirrors NPB FT's strided radix-2 butterflies over a power-of-two
 * grid: forward transform over rows then columns, inverse transform
 * back, and a round-trip verification against the pristine input
 * (NPB FT verifies evolved checksums; the round trip exercises the
 * same access pattern with an equally strict check).
 */

#include "workloads/kernels.hh"

#include <cmath>

#include "sim/rng.hh"

namespace xser::workloads {

namespace {

/** Bit-reverse a logDim-bit index. */
inline size_t
bitReverse(size_t value, unsigned bits)
{
    size_t reversed = 0;
    for (unsigned i = 0; i < bits; ++i) {
        reversed = (reversed << 1) | (value & 1);
        value >>= 1;
    }
    return reversed;
}

} // namespace

FtWorkload::FtWorkload()
{
    traits_.name = "FT";
    traits_.codeFootprintWords = 560;
    traits_.tlbFootprintEntries = 2048;
    traits_.activityFactor = 1.05;
    // Every datum feeds every output point: corrupted values spread
    // globally, making FT SDC-heavy.
    traits_.sdcWeight = 1.20;
    traits_.appCrashWeight = 0.85;
    traits_.sysCrashWeight = 0.95;
    traits_.datasetWords = 8 * 1024 * 1024 / 8;
    traits_.windowLines = 32768;
}

void
FtWorkload::onSetUp(RunContext &ctx)
{
    auto &memory = ctx.memory();
    const size_t points = dim * dim;
    re_ = SimArray<double>(memory, points, "ft.re");
    im_ = SimArray<double>(memory, points, "ft.im");
    re0_ = SimArray<double>(memory, points, "ft.re0");
    im0_ = SimArray<double>(memory, points, "ft.im0");
}

uint64_t
FtWorkload::approxAccessesPerRun() const
{
    // Per 1-D FFT: bit-reverse ~4*dim + butterflies 8*dim*logDim/2.
    const uint64_t fft1 = 4 * dim + 4 * dim * logDim;
    // rows+cols, forward+inverse, plus init (4/point) and check
    // (4/point).
    return 2 * 2 * dim * fft1 + 8 * dim * dim;
}

void
FtWorkload::fft1d(RunContext &ctx, bool column, size_t index,
                  bool inverse)
{
    // Element i of this row/column maps to flat offset:
    const auto flat = [&](size_t i) {
        return column ? i * dim + index : index * dim + i;
    };

    // Bit-reversal permutation.
    for (size_t i = 0; i < dim; ++i) {
        const size_t j = bitReverse(i, logDim);
        if (j > i) {
            const double tr = re_.get(ctx, flat(i));
            const double ti = im_.get(ctx, flat(i));
            re_.set(ctx, flat(i), re_.get(ctx, flat(j)));
            im_.set(ctx, flat(i), im_.get(ctx, flat(j)));
            re_.set(ctx, flat(j), tr);
            im_.set(ctx, flat(j), ti);
        }
    }

    // Iterative radix-2 butterflies.
    for (size_t span = 2; span <= dim; span <<= 1) {
        const double angle =
            (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(span);
        const double wr_step = std::cos(angle);
        const double wi_step = std::sin(angle);
        for (size_t start = 0; start < dim; start += span) {
            double wr = 1.0;
            double wi = 0.0;
            for (size_t k = 0; k < span / 2; ++k) {
                const size_t even = flat(start + k);
                const size_t odd = flat(start + k + span / 2);
                const double er = re_.get(ctx, even);
                const double ei = im_.get(ctx, even);
                const double or_ = re_.get(ctx, odd);
                const double oi = im_.get(ctx, odd);
                const double tr = wr * or_ - wi * oi;
                const double ti = wr * oi + wi * or_;
                re_.set(ctx, even, er + tr);
                im_.set(ctx, even, ei + ti);
                re_.set(ctx, odd, er - tr);
                im_.set(ctx, odd, ei - ti);
                const double wr_next = wr * wr_step - wi * wi_step;
                wi = wr * wi_step + wi * wr_step;
                wr = wr_next;
            }
        }
    }
}

WorkloadOutput
FtWorkload::onRun(RunContext &ctx)
{
    WorkloadOutput output;
    const size_t points = dim * dim;

    // Fresh deterministic input each run, with a pristine copy.
    SplitMix64 seeder(0xf71e1dULL);
    for (size_t i = 0; i < points; ++i) {
        ctx.setCore(ctx.coreForIndex(i, points));
        const double real =
            static_cast<double>(seeder.next() >> 11) * 0x1.0p-53;
        const double imag =
            static_cast<double>(seeder.next() >> 11) * 0x1.0p-53;
        re_.set(ctx, i, real);
        im_.set(ctx, i, imag);
        re0_.set(ctx, i, real);
        im0_.set(ctx, i, imag);
        if ((i & 255) == 0)
            ctx.poll();
    }

    // Forward: rows then columns (rows partitioned over cores).
    for (size_t row = 0; row < dim; ++row) {
        ctx.setCore(ctx.coreForIndex(row, dim));
        fft1d(ctx, false, row, false);
        ctx.poll();
    }
    for (size_t col = 0; col < dim; ++col) {
        ctx.setCore(ctx.coreForIndex(col, dim));
        fft1d(ctx, true, col, false);
        ctx.poll();
    }
    // Inverse: columns then rows.
    for (size_t col = 0; col < dim; ++col) {
        ctx.setCore(ctx.coreForIndex(col, dim));
        fft1d(ctx, true, col, true);
        ctx.poll();
    }
    for (size_t row = 0; row < dim; ++row) {
        ctx.setCore(ctx.coreForIndex(row, dim));
        fft1d(ctx, false, row, true);
        ctx.poll();
    }

    // Scale by 1/N^2 and verify the round trip while building the
    // signature.
    const double scale = 1.0 / static_cast<double>(points);
    double max_error = 0.0;
    SignatureBuilder signature;
    for (size_t i = 0; i < points; ++i) {
        ctx.setCore(ctx.coreForIndex(i, points));
        const double real = re_.get(ctx, i) * scale;
        const double imag = im_.get(ctx, i) * scale;
        max_error = std::max(max_error,
                             std::fabs(real - re0_.get(ctx, i)));
        max_error = std::max(max_error,
                             std::fabs(imag - im0_.get(ctx, i)));
        signature.add(real);
        signature.add(imag);
        if ((i & 255) == 0)
            ctx.poll();
    }
    output.signature = signature.finish();
    output.verified = std::isfinite(max_error) && max_error < 1e-9;
    return output;
}

} // namespace xser::workloads
