/**
 * @file
 * TraceWorkload implementation.
 */

#include "workloads/trace.hh"

#include <cstdio>
#include <sstream>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace xser::workloads {

std::vector<TraceRecord>
parseTrace(const std::string &text)
{
    std::vector<TraceRecord> trace;
    std::istringstream stream(text);
    std::string line;
    size_t line_number = 0;
    while (std::getline(stream, line)) {
        ++line_number;
        const size_t start = line.find_first_not_of(" \t");
        if (start == std::string::npos || line[start] == '#')
            continue;
        std::istringstream fields(line);
        TraceRecord record;
        std::string op;
        if (!(fields >> record.core >> op))
            fatal(msg("trace line ", line_number, ": malformed record"));
        if (op != "R" && op != "W")
            fatal(msg("trace line ", line_number, ": op must be R or W,"
                      " got '", op, "'"));
        record.isWrite = op == "W";
        if (!(fields >> std::hex >> record.address))
            fatal(msg("trace line ", line_number, ": missing address"));
        if (record.address % 8 != 0)
            fatal(msg("trace line ", line_number,
                      ": address must be 8-byte aligned"));
        if (record.isWrite && !(fields >> std::hex >> record.value))
            fatal(msg("trace line ", line_number,
                      ": write record missing value"));
        trace.push_back(record);
    }
    return trace;
}

std::vector<TraceRecord>
loadTraceFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        fatal(msg("cannot open trace file '", path, "'"));
    std::string text;
    char buffer[4096];
    size_t read = 0;
    while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0)
        text.append(buffer, read);
    std::fclose(file);
    return parseTrace(text);
}

std::vector<TraceRecord>
synthesizeTrace(size_t records, size_t footprint_bytes, unsigned cores,
                uint64_t seed)
{
    XSER_ASSERT(cores > 0, "trace needs at least one core");
    XSER_ASSERT(footprint_bytes >= 8, "trace footprint too small");
    Rng rng(seed);
    std::vector<TraceRecord> trace;
    trace.reserve(records);
    const size_t words = footprint_bytes / 8;
    for (size_t i = 0; i < records; ++i) {
        TraceRecord record;
        record.core = static_cast<unsigned>(i % cores);
        record.isWrite = (i % 4) == 3;
        record.address = 8 * rng.nextBounded(words);
        if (record.isWrite)
            record.value = rng.nextU64();
        trace.push_back(record);
    }
    return trace;
}

TraceWorkload::TraceWorkload(std::vector<TraceRecord> trace,
                             std::string name)
    : trace_(std::move(trace))
{
    if (trace_.empty())
        fatal("trace workload needs at least one record");
    for (const auto &record : trace_) {
        footprintBytes_ =
            std::max(footprintBytes_, record.address + 8);
    }
    traits_.name = std::move(name);
    traits_.codeFootprintWords = 512;
    traits_.tlbFootprintEntries =
        std::max<size_t>(16, footprintBytes_ / 4096);
    // No synthetic streaming dataset: the trace *is* the traffic.
    traits_.datasetWords = 0;
    traits_.windowLines = 0;
}

uint64_t
TraceWorkload::approxAccessesPerRun() const
{
    return trace_.size();
}

void
TraceWorkload::onSetUp(RunContext &ctx)
{
    base_ = ctx.memory().allocate(footprintBytes_, traits_.name);
    // Deterministic initial contents over the whole footprint.
    for (uint64_t offset = 0; offset < footprintBytes_; offset += 8) {
        ctx.setCore(ctx.coreForIndex(offset, footprintBytes_));
        SplitMix64 mixer(0x7ace0ULL ^ offset);
        ctx.memory().writeWord(ctx.core(), base_ + offset, mixer.next());
        if ((offset & 16383) == 0)
            ctx.poll();
    }
    // Replay the trace's writes once so a read that precedes a write
    // to the same word sees the same (post-write) value in every run;
    // otherwise the first (golden) run would differ from the rest.
    for (const auto &record : trace_) {
        if (record.isWrite) {
            ctx.setCore(record.core % ctx.numCores());
            ctx.memory().writeWord(ctx.core(), base_ + record.address,
                                   record.value);
        }
    }
}

WorkloadOutput
TraceWorkload::onRun(RunContext &ctx)
{
    WorkloadOutput output;
    SignatureBuilder signature;
    const unsigned cores = ctx.numCores();
    size_t index = 0;
    for (const auto &record : trace_) {
        ctx.setCore(record.core % cores);
        if (record.isWrite) {
            ctx.memory().writeWord(ctx.core(), base_ + record.address,
                                   record.value);
        } else {
            signature.add(ctx.memory().readWord(ctx.core(),
                                                base_ + record.address));
        }
        if ((++index & 511) == 0)
            ctx.poll();
    }
    output.signature = signature.finish();
    // A trace has no internal semantics to verify; determinism of the
    // loaded-value stream is the (golden-compare) contract.
    output.verified = true;
    return output;
}

} // namespace xser::workloads
