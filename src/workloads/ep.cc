/**
 * @file
 * EP kernel: embarrassingly parallel Gaussian-pair tallies.
 *
 * Mirrors NPB EP: a linear congruential stream produces uniform pairs,
 * the Marsaglia polar method accepts those inside the unit circle, and
 * accepted pairs are tallied into ten annulus counters with running
 * coordinate sums. Like the original, almost everything lives in
 * registers; memory traffic is a small staging buffer and the tally
 * table -- which is why EP is the suite's least cache-sensitive member.
 */

#include "workloads/kernels.hh"

#include <cmath>

namespace xser::workloads {

namespace {

/** NPB-flavored 64-bit LCG (constants from MMIX). */
inline uint64_t
lcgNext(uint64_t &state)
{
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state;
}

/** Uniform in (-1, 1) from an LCG step. */
inline double
lcgUniform(uint64_t &state)
{
    return 2.0 * (static_cast<double>(lcgNext(state) >> 11) * 0x1.0p-53) -
           1.0;
}

} // namespace

EpWorkload::EpWorkload()
{
    traits_.name = "EP";
    traits_.codeFootprintWords = 280;
    traits_.tlbFootprintEntries = 1200;
    traits_.activityFactor = 1.10;  // compute-bound, all cores busy
    // Tiny live memory state: most upsets land in dead data, so EP
    // skews slightly away from SDC and toward crash-prone control.
    traits_.sdcWeight = 0.80;
    traits_.appCrashWeight = 0.90;
    traits_.sysCrashWeight = 1.05;
    // EP's own data is tiny, but the chip under test still carries
    // the full software stack: the suite's shared OS/services resident
    // set keeps streaming through the caches during EP runs (the paper
    // measures EP's upset rate at suite-typical levels, Fig. 5, which
    // demand-driven detection can only reproduce with that background
    // traffic present).
    traits_.datasetWords = 4 * 1024 * 1024 / 8;
    traits_.windowLines = 16384;
}

void
EpWorkload::onSetUp(RunContext &ctx)
{
    auto &memory = ctx.memory();
    buffer_ = SimArray<double>(memory, batch, "ep.buffer");
    counts_ = SimArray<int64_t>(memory, annuli, "ep.counts");
}

uint64_t
EpWorkload::approxAccessesPerRun() const
{
    // Stage + reload each sample, plus ~1.57 tally read/writes per
    // accepted pair (acceptance ~pi/4).
    return samples * 2 + static_cast<uint64_t>(samples * 0.8 * 2) +
           4 * annuli;
}

WorkloadOutput
EpWorkload::onRun(RunContext &ctx)
{
    WorkloadOutput output;

    ctx.setCore(0);
    for (size_t i = 0; i < annuli; ++i)
        counts_.set(ctx, i, 0);

    uint64_t lcg = 0x5ca1ab1eULL;
    double sum_x = 0.0;
    double sum_y = 0.0;
    int64_t accepted = 0;

    const size_t batches = samples / batch;
    for (size_t block = 0; block < batches; ++block) {
        ctx.setCore(ctx.coreForIndex(block, batches));
        // Stage a batch of uniforms through memory (NPB's vranlc
        // buffer), then consume it pairwise.
        for (size_t i = 0; i < batch; ++i)
            buffer_.set(ctx, i, lcgUniform(lcg));
        for (size_t i = 0; i + 1 < batch; i += 2) {
            const double x = buffer_.get(ctx, i);
            const double y = buffer_.get(ctx, i + 1);
            const double t = x * x + y * y;
            if (t >= 1.0 || t == 0.0)
                continue;
            const double scale = std::sqrt(-2.0 * std::log(t) / t);
            const double gx = x * scale;
            const double gy = y * scale;
            const double magnitude =
                std::max(std::fabs(gx), std::fabs(gy));
            auto annulus = static_cast<size_t>(magnitude);
            if (annulus >= annuli)
                annulus = annuli - 1;
            counts_.set(ctx, annulus, counts_.get(ctx, annulus) + 1);
            sum_x += gx;
            sum_y += gy;
            ++accepted;
        }
        ctx.poll();
    }

    SignatureBuilder signature;
    int64_t tallied = 0;
    ctx.setCore(0);
    for (size_t i = 0; i < annuli; ++i) {
        const int64_t count = counts_.get(ctx, i);
        tallied += count;
        signature.add(static_cast<uint64_t>(count));
    }
    signature.add(sum_x);
    signature.add(sum_y);
    output.signature = signature.finish();
    // NPB EP verifies the tallies and coordinate sums; here the
    // internal invariant is that every accepted pair was tallied.
    output.verified = tallied == accepted && std::isfinite(sum_x) &&
                      std::isfinite(sum_y);
    return output;
}

} // namespace xser::workloads
