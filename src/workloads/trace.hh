/**
 * @file
 * Trace-driven workload: replay a recorded memory-access trace through
 * the simulated hierarchy and put *your* application under the beam.
 *
 * The paper studies six NPB kernels; downstream users usually want
 * their own workload's susceptibility. Recording a trace (from a pin
 * tool, a simulator, or by hand) and replaying it here gives the same
 * end-to-end treatment -- footprint-dependent detection, golden-
 * compare SDCs, trap-on-corrupted-pointer -- without porting code to
 * the SimArray API.
 *
 * Trace format (text, one record per line, '#' comments):
 *
 *     <core> R <hex-addr>
 *     <core> W <hex-addr> <hex-value>
 *
 * Addresses are trace-relative; the workload rebases them onto its
 * allocation. Reads fold the loaded value into the output signature,
 * so any corruption that reaches a traced load becomes an SDC.
 */

#ifndef XSER_WORKLOADS_TRACE_HH
#define XSER_WORKLOADS_TRACE_HH

#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace xser::workloads {

/** One trace record. */
struct TraceRecord {
    unsigned core = 0;
    bool isWrite = false;
    uint64_t address = 0;  ///< trace-relative byte address (8-aligned)
    uint64_t value = 0;    ///< written value (writes only)
};

/** Parse a trace from text (fatal on malformed records). */
std::vector<TraceRecord> parseTrace(const std::string &text);

/** Load and parse a trace file (fatal on I/O failure). */
std::vector<TraceRecord> loadTraceFile(const std::string &path);

/**
 * Synthesize a simple strided read/write trace, for examples and
 * tests: `records` accesses over a `footprint_bytes` region, cores
 * round-robin, every fourth access a write.
 */
std::vector<TraceRecord> synthesizeTrace(size_t records,
                                         size_t footprint_bytes,
                                         unsigned cores,
                                         uint64_t seed);

/**
 * The replaying workload. Construct with the parsed trace and
 * (optionally) tuned traits; then use exactly like the NPB kernels --
 * including inside a TestSession via a custom workload list is not
 * supported (sessions build by name), but direct campaigns, AVF
 * studies, and fault-injection flows all accept Workload&.
 */
class TraceWorkload : public Workload
{
  public:
    /**
     * @param trace Parsed records (validated: 8-byte alignment,
     *        in-range cores).
     * @param name Label used in reports.
     */
    explicit TraceWorkload(std::vector<TraceRecord> trace,
                           std::string name = "TRACE");

    const WorkloadTraits &traits() const override { return traits_; }
    uint64_t approxAccessesPerRun() const override;

    /** Footprint (bytes) spanned by the trace's addresses. */
    uint64_t footprintBytes() const { return footprintBytes_; }

  protected:
    void onSetUp(RunContext &ctx) override;
    WorkloadOutput onRun(RunContext &ctx) override;

    void
    onSnapshot(SnapshotWriter &writer) const override
    {
        // The trace itself is construction input, not simulated state;
        // only the allocation binding needs to travel.
        writer.u64(base_);
    }

    void
    onRestore(SnapshotReader &reader, mem::MemorySystem &memory) override
    {
        (void)memory;
        base_ = reader.u64();
    }

  private:
    std::vector<TraceRecord> trace_;
    WorkloadTraits traits_;
    uint64_t footprintBytes_ = 0;
    mem::Addr base_ = 0;
};

} // namespace xser::workloads

#endif // XSER_WORKLOADS_TRACE_HH
