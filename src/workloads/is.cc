/**
 * @file
 * IS kernel: integer counting sort.
 *
 * Mirrors NPB IS: random keys in a bounded range, a scatter histogram,
 * a rank prefix sum, and a permutation into sorted order. Keys are
 * loaded from simulated memory and used as indices, so a flipped key
 * bit either lands in the wrong bucket (SDC) or -- when it leaves the
 * key range -- traps like the out-of-bounds store the real benchmark
 * would perform.
 */

#include "workloads/kernels.hh"

namespace xser::workloads {

namespace {

inline uint64_t
lcgNext(uint64_t &state)
{
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state;
}

} // namespace

IsWorkload::IsWorkload()
{
    traits_.name = "IS";
    traits_.codeFootprintWords = 360;
    traits_.tlbFootprintEntries = 2048;
    traits_.activityFactor = 0.98;
    // Keys double as addresses: corruption often escalates to a crash
    // rather than silently corrupting output.
    traits_.sdcWeight = 0.95;
    traits_.appCrashWeight = 1.25;
    traits_.sysCrashWeight = 1.00;
    traits_.datasetWords = 8 * 1024 * 1024 / 8;
    traits_.windowLines = 32768;
}

void
IsWorkload::onSetUp(RunContext &ctx)
{
    auto &memory = ctx.memory();
    keys_ = SimArray<int64_t>(memory, n, "is.keys");
    hist_ = SimArray<int64_t>(memory, static_cast<size_t>(maxKey),
                              "is.hist");
    sorted_ = SimArray<int64_t>(memory, n, "is.sorted");
}

uint64_t
IsWorkload::approxAccessesPerRun() const
{
    // init n + histogram 3n + prefix 2*maxKey + permute 4n + verify 2n.
    return 10 * n + 2 * static_cast<uint64_t>(maxKey);
}

WorkloadOutput
IsWorkload::onRun(RunContext &ctx)
{
    WorkloadOutput output;

    // Fresh keys every run.
    uint64_t lcg = 0x15aac3ULL;
    for (size_t i = 0; i < n; ++i) {
        ctx.setCore(ctx.coreForIndex(i, n));
        keys_.set(ctx, i,
                  static_cast<int64_t>(lcgNext(lcg) %
                                       static_cast<uint64_t>(maxKey)));
        if ((i & 1023) == 0)
            ctx.poll();
    }
    ctx.setCore(0);
    for (int64_t k = 0; k < maxKey; ++k)
        hist_.set(ctx, static_cast<size_t>(k), 0);

    // Histogram (scatter increments).
    for (size_t i = 0; i < n; ++i) {
        ctx.setCore(ctx.coreForIndex(i, n));
        const int64_t key = keys_.get(ctx, i);
        if (key < 0 || key >= maxKey) {
            output.termination = Termination::Trapped;
            return output;
        }
        const auto bucket = static_cast<size_t>(key);
        hist_.set(ctx, bucket, hist_.get(ctx, bucket) + 1);
        if ((i & 511) == 0)
            ctx.poll();
    }

    // Exclusive prefix sum -> starting rank per key value.
    ctx.setCore(0);
    int64_t running = 0;
    for (int64_t k = 0; k < maxKey; ++k) {
        const int64_t count = hist_.get(ctx, static_cast<size_t>(k));
        hist_.set(ctx, static_cast<size_t>(k), running);
        running += count;
        if ((k & 255) == 0)
            ctx.poll();
    }

    // Permute into sorted order.
    for (size_t i = 0; i < n; ++i) {
        ctx.setCore(ctx.coreForIndex(i, n));
        const int64_t key = keys_.get(ctx, i);
        if (key < 0 || key >= maxKey) {
            output.termination = Termination::Trapped;
            return output;
        }
        const int64_t rank = hist_.get(ctx, static_cast<size_t>(key));
        if (rank < 0 || rank >= static_cast<int64_t>(n)) {
            output.termination = Termination::Trapped;
            return output;
        }
        hist_.set(ctx, static_cast<size_t>(key), rank + 1);
        sorted_.set(ctx, static_cast<size_t>(rank), key);
        if ((i & 511) == 0)
            ctx.poll();
    }

    // Full-array order verification (NPB IS's partial verification is
    // also rank-based); doubles as the output signature scan.
    SignatureBuilder signature;
    bool ordered = true;
    int64_t previous = -1;
    for (size_t i = 0; i < n; ++i) {
        ctx.setCore(ctx.coreForIndex(i, n));
        const int64_t value = sorted_.get(ctx, i);
        if (value < previous)
            ordered = false;
        previous = value;
        signature.add(static_cast<uint64_t>(value));
        if ((i & 1023) == 0)
            ctx.poll();
    }
    output.signature = signature.finish();
    output.verified = ordered && running == static_cast<int64_t>(n);
    return output;
}

} // namespace xser::workloads
