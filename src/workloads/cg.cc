/**
 * @file
 * CG kernel: conjugate gradient on a structured sparse SPD matrix.
 *
 * The matrix mirrors NPB CG's character -- indirect column indices and
 * an SPD system -- built as a diagonally dominant symmetric stencil:
 * row i couples to i +/- {1, 17, 111} (mod n) with deterministic small
 * weights and diagonal 8. Column indices live in simulated memory, so a
 * bit flip there produces either a wrong (but in-range) gather -> SDC,
 * or an out-of-range index -> trap (application crash), exactly the
 * failure modes of the real benchmark.
 */

#include "workloads/kernels.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "sim/rng.hh"

namespace xser::workloads {

namespace {

constexpr std::array<int64_t, 3> couplings = {1, 17, 111};

/** Deterministic symmetric off-diagonal weight for the pair {a, b}. */
double
pairWeight(size_t a, size_t b)
{
    const size_t lo = std::min(a, b);
    const size_t hi = std::max(a, b);
    SplitMix64 mixer(0xc900d1ULL ^ (lo * 1315423911ULL) ^ (hi << 17));
    // Weights in [-0.5, 0.5]: six of them stay well below the
    // diagonal's 8, keeping the matrix positive definite.
    return (static_cast<double>(mixer.next() >> 11) * 0x1.0p-53) - 0.5;
}

} // namespace

CgWorkload::CgWorkload()
{
    traits_.name = "CG";
    traits_.codeFootprintWords = 480;
    traits_.tlbFootprintEntries = 3072;
    traits_.activityFactor = 0.93;
    // Long FP dependency chains feeding the output make CG
    // corruption-prone; its irregular gathers stress address paths.
    traits_.sdcWeight = 1.15;
    traits_.appCrashWeight = 1.10;
    traits_.sysCrashWeight = 1.00;
    traits_.datasetWords = 12 * 1024 * 1024 / 8;
    traits_.windowLines = 40960;
}

void
CgWorkload::onSetUp(RunContext &ctx)
{
    auto &memory = ctx.memory();
    colIdx_ = SimArray<int64_t>(memory, n * nnzPerRow, "cg.colidx");
    values_ = SimArray<double>(memory, n * nnzPerRow, "cg.values");
    b_ = SimArray<double>(memory, n, "cg.b");
    x_ = SimArray<double>(memory, n, "cg.x");
    r_ = SimArray<double>(memory, n, "cg.r");
    p_ = SimArray<double>(memory, n, "cg.p");
    q_ = SimArray<double>(memory, n, "cg.q");

    // Static input: the matrix in CSR-like fixed-width rows.
    for (size_t i = 0; i < n; ++i) {
        ctx.setCore(ctx.coreForIndex(i, n));
        size_t slot = i * nnzPerRow;
        colIdx_.set(ctx, slot, static_cast<int64_t>(i));
        values_.set(ctx, slot, 8.0);
        ++slot;
        for (int64_t coupling : couplings) {
            const auto up = static_cast<size_t>(
                (static_cast<int64_t>(i) + coupling) %
                static_cast<int64_t>(n));
            const auto down = static_cast<size_t>(
                (static_cast<int64_t>(i) - coupling +
                 static_cast<int64_t>(n)) % static_cast<int64_t>(n));
            colIdx_.set(ctx, slot, static_cast<int64_t>(up));
            values_.set(ctx, slot, pairWeight(i, up));
            ++slot;
            colIdx_.set(ctx, slot, static_cast<int64_t>(down));
            values_.set(ctx, slot, pairWeight(i, down));
            ++slot;
        }
        ctx.poll();
    }
}

uint64_t
CgWorkload::approxAccessesPerRun() const
{
    // SpMV 16n + vector updates ~10n per iteration, plus init 3n.
    return (16 + 10) * n * iterations + 3 * n;
}

WorkloadOutput
CgWorkload::onRun(RunContext &ctx)
{
    WorkloadOutput output;

    // Fresh b and x = 0 every run.
    for (size_t i = 0; i < n; ++i) {
        ctx.setCore(ctx.coreForIndex(i, n));
        const double value =
            1.0 + 0.5 * std::sin(static_cast<double>(i) * 0.013);
        b_.set(ctx, i, value);
        x_.set(ctx, i, 0.0);
        r_.set(ctx, i, value);
        p_.set(ctx, i, value);
        ctx.poll();
    }

    double rho = 0.0;
    for (size_t i = 0; i < n; ++i) {
        ctx.setCore(ctx.coreForIndex(i, n));
        const double ri = r_.get(ctx, i);
        rho += ri * ri;
    }
    const double rho_initial = rho;

    for (unsigned iter = 0; iter < iterations; ++iter) {
        // q = A p (the indirect gather; validates indices).
        double p_dot_q = 0.0;
        for (size_t i = 0; i < n; ++i) {
            ctx.setCore(ctx.coreForIndex(i, n));
            double sum = 0.0;
            for (size_t k = 0; k < nnzPerRow; ++k) {
                const int64_t column = colIdx_.get(ctx, i * nnzPerRow + k);
                if (column < 0 || column >= static_cast<int64_t>(n)) {
                    // Corrupted index: the real benchmark dereferences
                    // a wild pointer here and segfaults.
                    output.termination = Termination::Trapped;
                    return output;
                }
                sum += values_.get(ctx, i * nnzPerRow + k) *
                       p_.get(ctx, static_cast<size_t>(column));
            }
            q_.set(ctx, i, sum);
            p_dot_q += p_.get(ctx, i) * sum;
            ctx.poll();
        }

        if (p_dot_q == 0.0 || !std::isfinite(p_dot_q))
            break;  // corrupted into degeneracy; finish with bad output
        const double alpha = rho / p_dot_q;

        double rho_next = 0.0;
        for (size_t i = 0; i < n; ++i) {
            ctx.setCore(ctx.coreForIndex(i, n));
            x_.set(ctx, i, x_.get(ctx, i) + alpha * p_.get(ctx, i));
            const double ri = r_.get(ctx, i) - alpha * q_.get(ctx, i);
            r_.set(ctx, i, ri);
            rho_next += ri * ri;
            ctx.poll();
        }

        const double beta = rho == 0.0 ? 0.0 : rho_next / rho;
        rho = rho_next;
        for (size_t i = 0; i < n; ++i) {
            ctx.setCore(ctx.coreForIndex(i, n));
            p_.set(ctx, i, r_.get(ctx, i) + beta * p_.get(ctx, i));
            ctx.poll();
        }
    }

    SignatureBuilder signature;
    for (size_t i = 0; i < n; ++i) {
        ctx.setCore(ctx.coreForIndex(i, n));
        signature.add(x_.get(ctx, i));
        ctx.poll();
    }
    signature.add(rho);
    output.signature = signature.finish();
    output.verified =
        std::isfinite(rho) && rho < 1e-10 * rho_initial;
    return output;
}

} // namespace xser::workloads
