/**
 * @file
 * LU kernel: SSOR sweeps over a 2-D 5-point system.
 *
 * NPB LU applies symmetric successive over-relaxation to a regularized
 * CFD system; the miniature keeps the defining property -- strictly
 * dependent forward/backward wavefront sweeps over a stencil -- on a
 * 2-D Poisson problem with a manufactured right-hand side.
 */

#include "workloads/kernels.hh"

#include <cmath>

namespace xser::workloads {

namespace {

constexpr double omega = 1.2;  ///< SSOR relaxation factor

} // namespace

LuWorkload::LuWorkload()
{
    traits_.name = "LU";
    traits_.codeFootprintWords = 640;
    traits_.tlbFootprintEntries = 1536;
    traits_.activityFactor = 0.97;
    // Dependent sweeps smear any corrupted cell into its whole
    // wavefront; state is long-lived across sweeps.
    traits_.sdcWeight = 1.10;
    traits_.appCrashWeight = 0.95;
    traits_.sysCrashWeight = 1.00;
    traits_.datasetWords = 6 * 1024 * 1024 / 8;
    traits_.windowLines = 24576;
}

void
LuWorkload::onSetUp(RunContext &ctx)
{
    auto &memory = ctx.memory();
    u_ = SimArray<double>(memory, dim * dim, "lu.u");
    rhs_ = SimArray<double>(memory, dim * dim, "lu.rhs");
}

uint64_t
LuWorkload::approxAccessesPerRun() const
{
    // Two (forward+backward) half-sweeps of 7 accesses per interior
    // cell per sweep, plus init and the residual passes.
    return sweeps * 2 * 7 * dim * dim / 1 + 4 * dim * dim;
}

double
LuWorkload::residualNorm(RunContext &ctx)
{
    double norm = 0.0;
    for (size_t i = 1; i + 1 < dim; ++i) {
        ctx.setCore(ctx.coreForIndex(i, dim));
        for (size_t j = 1; j + 1 < dim; ++j) {
            const size_t at = i * dim + j;
            const double residual =
                rhs_.get(ctx, at) -
                (4.0 * u_.get(ctx, at) - u_.get(ctx, at - 1) -
                 u_.get(ctx, at + 1) - u_.get(ctx, at - dim) -
                 u_.get(ctx, at + dim));
            norm += residual * residual;
        }
        ctx.poll();
    }
    return std::sqrt(norm);
}

WorkloadOutput
LuWorkload::onRun(RunContext &ctx)
{
    WorkloadOutput output;

    // Manufactured problem, reset each run (boundary u = 0).
    for (size_t i = 0; i < dim; ++i) {
        ctx.setCore(ctx.coreForIndex(i, dim));
        for (size_t j = 0; j < dim; ++j) {
            const size_t at = i * dim + j;
            u_.set(ctx, at, 0.0);
            rhs_.set(ctx, at,
                     std::sin(0.35 * static_cast<double>(i)) *
                         std::cos(0.30 * static_cast<double>(j)));
        }
        ctx.poll();
    }

    const double initial_norm = residualNorm(ctx);

    for (unsigned sweep = 0; sweep < sweeps; ++sweep) {
        // Forward wavefront.
        for (size_t i = 1; i + 1 < dim; ++i) {
            ctx.setCore(ctx.coreForIndex(i, dim));
            for (size_t j = 1; j + 1 < dim; ++j) {
                const size_t at = i * dim + j;
                const double gs =
                    (rhs_.get(ctx, at) + u_.get(ctx, at - 1) +
                     u_.get(ctx, at + 1) + u_.get(ctx, at - dim) +
                     u_.get(ctx, at + dim)) / 4.0;
                u_.set(ctx, at,
                       (1.0 - omega) * u_.get(ctx, at) + omega * gs);
            }
            ctx.poll();
        }
        // Backward wavefront.
        for (size_t i = dim - 2; i >= 1; --i) {
            ctx.setCore(ctx.coreForIndex(i, dim));
            for (size_t j = dim - 2; j >= 1; --j) {
                const size_t at = i * dim + j;
                const double gs =
                    (rhs_.get(ctx, at) + u_.get(ctx, at - 1) +
                     u_.get(ctx, at + 1) + u_.get(ctx, at - dim) +
                     u_.get(ctx, at + dim)) / 4.0;
                u_.set(ctx, at,
                       (1.0 - omega) * u_.get(ctx, at) + omega * gs);
            }
            ctx.poll();
        }
    }

    const double final_norm = residualNorm(ctx);

    SignatureBuilder signature;
    for (size_t i = 0; i < dim * dim; ++i) {
        ctx.setCore(ctx.coreForIndex(i, dim * dim));
        signature.add(u_.get(ctx, i));
        if ((i & 511) == 0)
            ctx.poll();
    }
    signature.add(final_norm);
    output.signature = signature.finish();
    // SSOR reduces the residual monotonically on this SPD system; the
    // smooth-mode tail keeps the per-sweep factor modest, so the check
    // asserts a solid decrease rather than near-convergence.
    output.verified = std::isfinite(final_norm) &&
                      final_norm < 0.8 * initial_norm;
    return output;
}

} // namespace xser::workloads
