/**
 * @file
 * Typed access to simulated memory for workload kernels.
 *
 * Every load and store a kernel performs goes through the bit-true
 * cache hierarchy, so beam-injected flips propagate into computation
 * exactly as on real silicon. SimArray<T> wraps an allocation as an
 * array of 8-byte elements; RunContext carries the executing core (the
 * "thread" of the multicore NPB run) and the periodic-quantum hook that
 * lets the session interleave beam, scrubber, and front-end activity
 * with execution.
 */

#ifndef XSER_WORKLOADS_SIM_MEMORY_HH
#define XSER_WORKLOADS_SIM_MEMORY_HH

#include <bit>
#include <cstdint>
#include <functional>
#include <string>

#include "mem/memory_system.hh"
#include "sim/snapshot.hh"

namespace xser::workloads {

/**
 * Execution context of a workload run: the memory system, the current
 * core, and the quantum hook.
 */
class RunContext
{
  public:
    using QuantumHook = std::function<void()>;

    /**
     * @param memory Hierarchy to execute against.
     * @param quantum Invoked every `quantum_accesses` accesses (empty
     *        hook allowed for golden runs).
     * @param quantum_accesses Hook period in memory accesses.
     */
    RunContext(mem::MemorySystem *memory, QuantumHook quantum,
               uint64_t quantum_accesses);

    mem::MemorySystem &memory() { return *memory_; }

    /** The core ("thread") executing the current partition. */
    unsigned core() const { return core_; }
    void setCore(unsigned core) { core_ = core; }

    /**
     * Map a parallel-loop index onto a core, NPB block-partition style.
     */
    unsigned coreForIndex(size_t index, size_t extent) const;

    /** Number of cores participating. */
    unsigned numCores() const { return numCores_; }

    /**
     * Poll the quantum hook; kernels call this in their outer loops.
     * Cheap when not yet due.
     */
    void poll()
    {
        if (memory_->accessCount() - lastAccesses_ >= quantumAccesses_)
            firstQuantum();
    }

  private:
    void firstQuantum();

    mem::MemorySystem *memory_;
    QuantumHook quantum_;
    uint64_t quantumAccesses_;
    uint64_t lastAccesses_ = 0;
    unsigned core_ = 0;
    unsigned numCores_;
};

/**
 * A typed array living in simulated memory. T must be an 8-byte
 * trivially copyable type (double, int64_t, uint64_t).
 */
template <typename T>
class SimArray
{
    static_assert(sizeof(T) == 8, "SimArray elements must be 8 bytes");
    static_assert(std::is_trivially_copyable_v<T>,
                  "SimArray elements must be trivially copyable");

  public:
    SimArray() = default;

    /** Allocate `count` elements tagged for diagnostics. */
    SimArray(mem::MemorySystem &memory, size_t count,
             const std::string &tag)
        : memory_(&memory), base_(memory.allocate(count * 8, tag)),
          count_(count)
    {
    }

    size_t size() const { return count_; }

    /** Load element i on behalf of the context's current core. */
    T
    get(RunContext &ctx, size_t i) const
    {
        return std::bit_cast<T>(
            memory_->readWord(ctx.core(), base_ + 8 * i));
    }

    /** Store element i on behalf of the context's current core. */
    void
    set(RunContext &ctx, size_t i, T value)
    {
        memory_->writeWord(ctx.core(), base_ + 8 * i,
                           std::bit_cast<uint64_t>(value));
    }

    /** Base address (for footprint diagnostics). */
    mem::Addr base() const { return base_; }

    /**
     * Serialize the handle (base address + extent). The element bytes
     * themselves live in the memory hierarchy and travel with its
     * snapshot; only the binding is recorded here.
     */
    void
    snapshot(SnapshotWriter &writer) const
    {
        writer.u64(base_);
        writer.u64(count_);
    }

    /** Restore the handle, rebinding it to `memory`. */
    void
    restore(SnapshotReader &reader, mem::MemorySystem &memory)
    {
        memory_ = &memory;
        base_ = reader.u64();
        count_ = static_cast<size_t>(reader.u64());
    }

  private:
    mem::MemorySystem *memory_ = nullptr;
    mem::Addr base_ = 0;
    size_t count_ = 0;
};

} // namespace xser::workloads

#endif // XSER_WORKLOADS_SIM_MEMORY_HH
