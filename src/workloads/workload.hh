/**
 * @file
 * Workload interface: miniature NAS Parallel Benchmarks executing
 * through the simulated hierarchy.
 *
 * Each kernel mirrors its NPB namesake's computation and access pattern
 * at a scale sized so one run simulates tens of milliseconds (the
 * paper's class-A runs take < 5 s; the beam acceleration factor
 * compensates, see rad/beam_source.hh). Kernels are written
 * corruption-tolerant: any data-dependent index is validated before
 * use, and a violation terminates the run as Trapped -- the simulated
 * analogue of the segfault a flipped pointer/index causes on real
 * hardware, which the campaign classifies as an application crash.
 */

#ifndef XSER_WORKLOADS_WORKLOAD_HH
#define XSER_WORKLOADS_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "workloads/sim_memory.hh"

namespace xser::workloads {

/** Static characteristics of a workload. */
struct WorkloadTraits {
    std::string name;             ///< "CG", "EP", ...
    size_t codeFootprintWords;    ///< L1I words its code spans
    size_t tlbFootprintEntries;   ///< TLB entries its pages occupy
    double activityFactor = 1.0;  ///< PMD dynamic-power scaling
    /**
     * Relative weights of the core-logic fault outcomes (AVF-style,
     * suite mean 1.0): how prone this kernel's live state is to silent
     * corruption vs crashing when unprotected logic upsets.
     */
    double sdcWeight = 1.0;
    double appCrashWeight = 1.0;
    double sysCrashWeight = 1.0;
    /**
     * Class-A-style input dataset. NPB class A working sets exceed the
     * 8 MB L3, so the caches stream constantly -- which is what exposes
     * L3-resident upsets to the ECC checkers. Each run reads a rotating
     * window of the dataset (one word per cache line) as its "input
     * loading" phase and validates the values read, so silently
     * corrupted inputs surface as SDCs exactly like corrupted outputs.
     */
    size_t datasetWords = 0;      ///< total dataset size (8-byte words)
    size_t windowLines = 0;       ///< lines streamed per run
};

/** How a run ended. */
enum class Termination {
    Completed,  ///< ran to completion (output may still mismatch)
    Trapped,    ///< data-dependent fault (segfault analogue)
};

/** Output of one run. */
struct WorkloadOutput {
    Termination termination = Termination::Completed;
    std::vector<uint64_t> signature;  ///< output checksum words
    bool verified = false;            ///< NPB-style internal check
};

/**
 * Base class of the six kernels. The base owns the streaming dataset
 * (allocation, per-run window scan with inline validation); kernels
 * implement onSetUp/onRun with their computation.
 */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Static characteristics. */
    virtual const WorkloadTraits &traits() const = 0;

    /**
     * Allocate and initialize all inputs through the hierarchy. Called
     * once per session; run() re-initializes everything it mutates, so
     * repeated runs are independent.
     */
    void setUp(RunContext &ctx);

    /**
     * Execute one run: stream the dataset window, then the kernel.
     * A corrupted input word poisons the signature so the golden
     * compare flags it as an SDC.
     */
    WorkloadOutput run(RunContext &ctx);

    /** Rough memory accesses per run, for session planning. */
    virtual uint64_t approxAccessesPerRun() const = 0;

    /**
     * Serialize the workload's checkpointable state: the dataset
     * binding, the rotating window cursor, and (via onSnapshot) every
     * kernel array handle. Array *contents* live in the memory
     * hierarchy and travel with its snapshot.
     */
    void snapshot(SnapshotWriter &writer) const;

    /**
     * Restore state captured by snapshot() into a freshly constructed
     * kernel of the same type, rebinding every array to `memory`.
     * Replaces setUp(): the restored hierarchy already holds the
     * initialized contents.
     */
    void restore(SnapshotReader &reader, mem::MemorySystem &memory);

  protected:
    /** Kernel-specific allocation/initialization. */
    virtual void onSetUp(RunContext &ctx) = 0;

    /** Kernel-specific execution. */
    virtual WorkloadOutput onRun(RunContext &ctx) = 0;

    /** Kernel-specific handle serialization (every SimArray member). */
    virtual void onSnapshot(SnapshotWriter &writer) const = 0;

    /** Kernel-specific handle restore, mirroring onSnapshot. */
    virtual void onRestore(SnapshotReader &reader,
                           mem::MemorySystem &memory) = 0;

  private:
    /** Deterministic content of dataset word i. */
    uint64_t datasetValue(size_t index) const;

    /**
     * Stream the next dataset window (one word per line), validating
     * contents.
     *
     * @return true when every word matched its expected value.
     */
    bool streamDataset(RunContext &ctx);

    SimArray<uint64_t> dataset_;
    size_t windowCursor_ = 0;  ///< rotating line cursor
    /** Cached hashString(traits().name), derived on first use. */
    mutable uint64_t nameHash_ = 0;
    mutable bool nameHashValid_ = false;
};

/**
 * Streaming FNV-1a signature accumulator used by all kernels to fold
 * outputs into a compact, order-sensitive checksum.
 */
class SignatureBuilder
{
  public:
    /** Fold one 64-bit word. */
    void add(uint64_t word);

    /** Fold a double's bit pattern. */
    void add(double value);

    /** Finish: returns {hash, count}. */
    std::vector<uint64_t> finish() const;

  private:
    uint64_t hash_ = 0xcbf29ce484222325ULL;
    uint64_t count_ = 0;
};

/** The suite in the paper's Fig. 5 order. */
const std::vector<std::string> &suiteNames();

/** Factory: construct a kernel by name (fatal on unknown name). */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

/** Construct the whole suite. */
std::vector<std::unique_ptr<Workload>> makeSuite();

} // namespace xser::workloads

#endif // XSER_WORKLOADS_WORKLOAD_HH
