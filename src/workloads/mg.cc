/**
 * @file
 * MG kernel: 2-D multigrid V-cycles.
 *
 * Mirrors NPB MG's defining structure: smoothing, residual, full-
 * weighting restriction, and bilinear-ish prolongation across a
 * hierarchy of grids -- so the working set sweeps from L1-resident
 * coarse grids to L2-sized fine grids within every cycle.
 */

#include "workloads/kernels.hh"

#include <algorithm>
#include <cmath>

namespace xser::workloads {

MgWorkload::MgWorkload()
{
    traits_.name = "MG";
    traits_.codeFootprintWords = 760;
    traits_.tlbFootprintEntries = 1536;
    traits_.activityFactor = 0.95;
    traits_.sdcWeight = 1.00;
    traits_.appCrashWeight = 0.95;
    traits_.sysCrashWeight = 1.00;
    traits_.datasetWords = 6 * 1024 * 1024 / 8;
    traits_.windowLines = 24576;
}

size_t
MgWorkload::levelOffset(unsigned level) const
{
    size_t offset = 0;
    for (unsigned l = 0; l < level; ++l)
        offset += levelDim(l) * levelDim(l);
    return offset;
}

void
MgWorkload::onSetUp(RunContext &ctx)
{
    auto &memory = ctx.memory();
    size_t total = 0;
    for (unsigned level = 0; level < levels; ++level)
        total += levelDim(level) * levelDim(level);
    u_ = SimArray<double>(memory, total, "mg.u");
    rhs_ = SimArray<double>(memory, total, "mg.rhs");
    res_ = SimArray<double>(memory, total, "mg.res");
}

uint64_t
MgWorkload::approxAccessesPerRun() const
{
    // ~24 accesses per fine cell per cycle, with the 4/3 geometric
    // factor for the coarser levels, plus init and norms.
    const uint64_t fine = fineDim * fineDim;
    return cycles * 24 * fine * 4 / 3 + 6 * fine;
}

void
MgWorkload::smooth(RunContext &ctx, unsigned level)
{
    const size_t d = levelDim(level);
    const size_t at0 = levelOffset(level);
    for (size_t i = 1; i + 1 < d; ++i) {
        ctx.setCore(ctx.coreForIndex(i, d));
        for (size_t j = 1; j + 1 < d; ++j) {
            const size_t at = at0 + i * d + j;
            u_.set(ctx, at,
                   (rhs_.get(ctx, at) + u_.get(ctx, at - 1) +
                    u_.get(ctx, at + 1) + u_.get(ctx, at - d) +
                    u_.get(ctx, at + d)) / 4.0);
        }
        ctx.poll();
    }
}

void
MgWorkload::computeResidual(RunContext &ctx, unsigned level)
{
    const size_t d = levelDim(level);
    const size_t at0 = levelOffset(level);
    for (size_t i = 1; i + 1 < d; ++i) {
        ctx.setCore(ctx.coreForIndex(i, d));
        for (size_t j = 1; j + 1 < d; ++j) {
            const size_t at = at0 + i * d + j;
            res_.set(ctx, at,
                     rhs_.get(ctx, at) -
                         (4.0 * u_.get(ctx, at) - u_.get(ctx, at - 1) -
                          u_.get(ctx, at + 1) - u_.get(ctx, at - d) -
                          u_.get(ctx, at + d)));
        }
        ctx.poll();
    }
}

void
MgWorkload::restrictResidual(RunContext &ctx, unsigned level)
{
    // Full weighting from `level` onto level+1's rhs; coarse u = 0.
    const size_t fine_d = levelDim(level);
    const size_t coarse_d = levelDim(level + 1);
    const size_t fine0 = levelOffset(level);
    const size_t coarse0 = levelOffset(level + 1);
    for (size_t i = 0; i < coarse_d; ++i) {
        ctx.setCore(ctx.coreForIndex(i, coarse_d));
        for (size_t j = 0; j < coarse_d; ++j) {
            const size_t at = coarse0 + i * coarse_d + j;
            u_.set(ctx, at, 0.0);
            if (i == 0 || j == 0 || i + 1 == coarse_d ||
                j + 1 == coarse_d) {
                rhs_.set(ctx, at, 0.0);
                continue;
            }
            const size_t fi = 2 * i;
            const size_t fj = 2 * j;
            const size_t c = fine0 + fi * fine_d + fj;
            const double value =
                0.25 * res_.get(ctx, c) +
                0.125 * (res_.get(ctx, c - 1) + res_.get(ctx, c + 1) +
                         res_.get(ctx, c - fine_d) +
                         res_.get(ctx, c + fine_d)) +
                0.0625 * (res_.get(ctx, c - fine_d - 1) +
                          res_.get(ctx, c - fine_d + 1) +
                          res_.get(ctx, c + fine_d - 1) +
                          res_.get(ctx, c + fine_d + 1));
            rhs_.set(ctx, at, 4.0 * value);
        }
        ctx.poll();
    }
}

void
MgWorkload::prolongCorrect(RunContext &ctx, unsigned level)
{
    // Inject level+1's correction back into `level` (piecewise
    // constant over each 2x2 fine block, NPB-style trilinear being the
    // 3-D analogue).
    const size_t fine_d = levelDim(level);
    const size_t coarse_d = levelDim(level + 1);
    const size_t fine0 = levelOffset(level);
    const size_t coarse0 = levelOffset(level + 1);
    for (size_t i = 1; i + 1 < fine_d; ++i) {
        ctx.setCore(ctx.coreForIndex(i, fine_d));
        const size_t ci = std::min(i / 2, coarse_d - 1);
        for (size_t j = 1; j + 1 < fine_d; ++j) {
            const size_t cj = std::min(j / 2, coarse_d - 1);
            const size_t fat = fine0 + i * fine_d + j;
            const size_t cat = coarse0 + ci * coarse_d + cj;
            u_.set(ctx, fat, u_.get(ctx, fat) + u_.get(ctx, cat));
        }
        ctx.poll();
    }
}

double
MgWorkload::residualNorm(RunContext &ctx, unsigned level)
{
    computeResidual(ctx, level);
    const size_t d = levelDim(level);
    const size_t at0 = levelOffset(level);
    double norm = 0.0;
    for (size_t i = 1; i + 1 < d; ++i) {
        ctx.setCore(ctx.coreForIndex(i, d));
        for (size_t j = 1; j + 1 < d; ++j) {
            const double value = res_.get(ctx, at0 + i * d + j);
            norm += value * value;
        }
        ctx.poll();
    }
    return std::sqrt(norm);
}

WorkloadOutput
MgWorkload::onRun(RunContext &ctx)
{
    WorkloadOutput output;
    const size_t d = fineDim;

    for (size_t i = 0; i < d; ++i) {
        ctx.setCore(ctx.coreForIndex(i, d));
        for (size_t j = 0; j < d; ++j) {
            const size_t at = i * d + j;
            u_.set(ctx, at, 0.0);
            const bool interior =
                i > 0 && j > 0 && i + 1 < d && j + 1 < d;
            rhs_.set(ctx, at,
                     interior ? std::sin(0.4 * static_cast<double>(i)) *
                                    std::sin(0.3 * static_cast<double>(j))
                              : 0.0);
        }
        ctx.poll();
    }

    const double initial_norm = residualNorm(ctx, 0);

    for (unsigned cycle = 0; cycle < cycles; ++cycle) {
        // Downstroke.
        for (unsigned level = 0; level + 1 < levels; ++level) {
            smooth(ctx, level);
            computeResidual(ctx, level);
            restrictResidual(ctx, level);
        }
        // Coarsest solve: a few extra smoothing sweeps.
        for (int i = 0; i < 6; ++i)
            smooth(ctx, levels - 1);
        // Upstroke.
        for (unsigned level = levels - 1; level-- > 0;) {
            prolongCorrect(ctx, level);
            smooth(ctx, level);
        }
    }

    const double final_norm = residualNorm(ctx, 0);

    SignatureBuilder signature;
    for (size_t i = 0; i < d * d; ++i) {
        ctx.setCore(ctx.coreForIndex(i, d * d));
        signature.add(u_.get(ctx, i));
        if ((i & 511) == 0)
            ctx.poll();
    }
    signature.add(final_norm);
    output.signature = signature.finish();
    output.verified = std::isfinite(final_norm) &&
                      final_norm < 0.5 * initial_norm;
    return output;
}

} // namespace xser::workloads
