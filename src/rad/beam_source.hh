/**
 * @file
 * The accelerated neutron beam: a Poisson upset generator over the
 * platform's SRAM arrays.
 *
 * Each array receives upset events at rate bits * sigma(V) * flux. The
 * `timeScale` factor is the simulation's acceleration knob (the analogue
 * of the paper using an accelerated beam instead of natural irradiation,
 * Section 3.4): our workload runs simulate tens of milliseconds rather
 * than seconds, so the flux is scaled up to keep *fluence per run* --
 * and therefore events per run -- in the regime the paper operated in.
 * All reported rates are per fluence, where the acceleration cancels
 * exactly; time-based rates are quoted in paper-equivalent minutes
 * (fluence / halo-flux).
 *
 * Sampling is event-driven: every target owns an absolute *dose*
 * coordinate (expected events accumulated since construction) and the
 * next arrival sits at dose D_next = D_prev + Exp(1). Because a
 * homogeneous Poisson process subjected to the time-change theorem is a
 * unit-rate process in dose space, this is exact for piecewise-constant
 * rates: voltage or time-scale changes re-slope the dose integrator but
 * never invalidate the outstanding Exp(1) budgets. The skip-ahead fast
 * path (BeamConfig::skipAhead) only adds an O(1) early-out to advance()
 * when no arrival can be due yet; the arrival decisions themselves are
 * evaluated with the identical floating-point expression in both modes,
 * so fast and reference paths emit bit-identical upset sequences.
 */

#ifndef XSER_RAD_BEAM_SOURCE_HH
#define XSER_RAD_BEAM_SOURCE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "mem/memory_system.hh"
#include "rad/cross_section_model.hh"
#include "rad/flux_environment.hh"
#include "rad/mbu_model.hh"
#include "sim/rng.hh"
#include "sim/sim_clock.hh"

namespace xser::rad {

/** Beam configuration. */
struct BeamConfig {
    FluxEnvironment environment = tnfBeamHalo();
    double timeScale = 1.0;  ///< extra acceleration (see file comment)
    uint64_t seed = 0xbea3ULL;
    /**
     * Skip-ahead fast path: advance() returns in O(1) whenever the
     * conservatively scheduled next-arrival tick has not been reached,
     * instead of settling the dose integrator every interval. Off =
     * the per-interval reference path used by the differential tests.
     * Both modes consume the RNG identically and inject bit-identical
     * upsets; only the amount of bookkeeping per quantum differs.
     */
    bool skipAhead = true;
    /**
     * Column interleaving per cache level: interleaved arrays spread a
     * physical MBU cluster across logical words; non-interleaved arrays
     * (the L3, per Section 4.3) take the whole cluster in one word.
     * Index by CacheLevel.
     */
    std::array<bool, mem::numCacheLevels> interleaved = {true, true, true,
                                                         false};
};

/**
 * Poisson beam over a set of beam targets.
 */
class BeamSource
{
  public:
    /**
     * @param config Beam parameters.
     * @param xsection Voltage-dependent cross sections (not owned).
     * @param mbu Cluster-size model (not owned).
     * @param targets The arrays the beam can strike.
     */
    BeamSource(const BeamConfig &config,
               const CrossSectionModel *xsection, const MbuModel *mbu,
               std::vector<mem::BeamTarget> targets);

    /** Update the domain voltages the cross sections depend on. */
    void setVoltages(double pmd_volts, double soc_volts);

    /**
     * Adjust the acceleration factor (the session retunes it per
     * workload so fluence-per-run stays on target across run lengths).
     */
    void setTimeScale(double time_scale);

    /** Effective flux including the acceleration factor (n/cm^2/s). */
    double effectiveFlux() const;

    /** Deliver `elapsed` ticks of beam: sample and inject upsets. */
    void advance(Tick elapsed);

    /** Accumulated fluence in n/cm^2. */
    double fluence() const { return fluence_; }

    /** Raw upset events injected, total and per level. */
    uint64_t upsetEvents() const;
    uint64_t upsetEvents(mem::CacheLevel level) const;

    /** Expected raw upset rate (events/s) at current voltages. */
    double expectedEventRatePerSecond() const;

    /** Clear fluence and event counters (start of session). */
    void clearCounters();

  private:
    /** Inject one upset event (cluster) into a target. */
    void injectEvent(const mem::BeamTarget &target, double delta_v);

    /** Voltage reduction (Vnom - V) for a target's domain. */
    double deltaVFor(const mem::BeamTarget &target) const;

    /** Supply voltage seen by a target. */
    double voltsFor(const mem::BeamTarget &target) const;

    /** Dose (expected events) of target i at an absolute tick. */
    double doseAt(size_t i, Tick tick) const;

    /** Drain every arrival due at or before nowTick_, in target order. */
    void settle();

    /**
     * Re-slope the dose integrator after a rate change: fold the dose
     * accumulated under the old rates into the base coordinates, then
     * recompute per-target rates at the current voltages/time scale.
     * Callers must settle() first so no old-rate arrival is pending.
     */
    void refreshRates();

    /** Recompute the conservative skip-ahead horizon nextSettleTick_. */
    void scheduleNextSettle();

    BeamConfig config_;
    const CrossSectionModel *xsection_;
    const MbuModel *mbu_;
    std::vector<mem::BeamTarget> targets_;
    Rng rng_;
    double pmdVolts_ = 0.980;
    double socVolts_ = 0.950;
    double fluence_ = 0.0;
    std::array<uint64_t, mem::numCacheLevels> eventsPerLevel_{};

    Tick nowTick_ = 0;   ///< beam-relative simulated time
    Tick baseTick_ = 0;  ///< tick of the last rate change
    Tick nextSettleTick_ = 0;  ///< skip-ahead horizon (conservative)
    std::vector<double> rate_;      ///< events/s per target (cached)
    std::vector<double> baseDose_;  ///< dose at baseTick_ per target
    std::vector<double> nextArrivalDose_;  ///< absolute arrival coords
};

} // namespace xser::rad

#endif // XSER_RAD_BEAM_SOURCE_HH
