/**
 * @file
 * BeamSource implementation.
 */

#include "rad/beam_source.hh"

#include "sim/logging.hh"

namespace xser::rad {

BeamSource::BeamSource(const BeamConfig &config,
                       const CrossSectionModel *xsection,
                       const MbuModel *mbu,
                       std::vector<mem::BeamTarget> targets)
    : config_(config), xsection_(xsection), mbu_(mbu),
      targets_(std::move(targets)), rng_(config.seed)
{
    XSER_ASSERT(xsection_ != nullptr, "beam needs a cross-section model");
    XSER_ASSERT(mbu_ != nullptr, "beam needs an MBU model");
    if (config_.timeScale <= 0.0)
        fatal("beam time scale must be positive");
    if (targets_.empty())
        fatal("beam needs at least one target array");
}

void
BeamSource::setVoltages(double pmd_volts, double soc_volts)
{
    if (pmd_volts <= 0.0 || soc_volts <= 0.0)
        fatal("domain voltages must be positive");
    pmdVolts_ = pmd_volts;
    socVolts_ = soc_volts;
}

void
BeamSource::setTimeScale(double time_scale)
{
    if (time_scale <= 0.0)
        fatal("beam time scale must be positive");
    config_.timeScale = time_scale;
}

double
BeamSource::effectiveFlux() const
{
    return config_.environment.neutronsPerCm2PerSecond *
           config_.timeScale;
}

double
BeamSource::voltsFor(const mem::BeamTarget &target) const
{
    return target.pmdDomain ? pmdVolts_ : socVolts_;
}

double
BeamSource::deltaVFor(const mem::BeamTarget &target) const
{
    const auto &sensitivity = xsection_->sensitivity(target.level);
    return sensitivity.nominalVolts - voltsFor(target);
}

double
BeamSource::expectedEventRatePerSecond() const
{
    double rate = 0.0;
    for (const auto &target : targets_) {
        rate += static_cast<double>(target.array->totalBits()) *
                xsection_->bitCrossSection(target.level,
                                           voltsFor(target)) *
                effectiveFlux();
    }
    return rate;
}

void
BeamSource::injectEvent(const mem::BeamTarget &target, double delta_v)
{
    mem::SramArray &array = *target.array;
    const unsigned cluster = mbu_->sampleClusterSize(delta_v, rng_);
    const size_t words = array.words();
    const unsigned bits_per_word = array.bitsPerWord();
    const size_t word = rng_.nextBounded(words);
    const unsigned bit =
        static_cast<unsigned>(rng_.nextBounded(bits_per_word));

    array.noteUpsetEvent();
    if (trace::TraceSink *sink = array.traceSink()) {
        // One Injection record per upset event; aux carries the sampled
        // cluster size (the raw-upset side of the lifecycle).
        sink->record({trace::EventType::Injection, array.now(),
                      array.traceId(), static_cast<uint64_t>(word), bit,
                      cluster});
    }
    const bool interleaved =
        config_.interleaved[static_cast<size_t>(target.level)];
    for (unsigned i = 0; i < cluster; ++i) {
        if (interleaved) {
            // Physically adjacent cells map to the same bit column of
            // consecutive logical words: each flip is a separate SBU
            // from the codec's perspective.
            array.flipBit((word + i) % words, bit);
        } else {
            // No interleaving: the cluster lands inside one word.
            array.flipBit(word, (bit + i) % bits_per_word);
        }
    }
}

void
BeamSource::advance(Tick elapsed)
{
    if (elapsed == 0)
        return;
    const double seconds = ticks::toSeconds(elapsed);
    const double flux = effectiveFlux();
    fluence_ += flux * seconds;

    for (const auto &target : targets_) {
        const double volts = voltsFor(target);
        const double mean =
            static_cast<double>(target.array->totalBits()) *
            xsection_->bitCrossSection(target.level, volts) * flux *
            seconds;
        const uint64_t events = rng_.nextPoisson(mean);
        if (events == 0)
            continue;
        eventsPerLevel_[static_cast<size_t>(target.level)] += events;
        const double delta_v = deltaVFor(target);
        for (uint64_t i = 0; i < events; ++i)
            injectEvent(target, delta_v);
    }
}

uint64_t
BeamSource::upsetEvents() const
{
    uint64_t total = 0;
    for (uint64_t count : eventsPerLevel_)
        total += count;
    return total;
}

uint64_t
BeamSource::upsetEvents(mem::CacheLevel level) const
{
    return eventsPerLevel_[static_cast<size_t>(level)];
}

void
BeamSource::clearCounters()
{
    fluence_ = 0.0;
    eventsPerLevel_ = {};
}

} // namespace xser::rad
