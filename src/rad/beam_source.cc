/**
 * @file
 * BeamSource implementation.
 *
 * Equivalence contract (see DESIGN.md section 8): the skip-ahead fast
 * path and the per-interval reference path must inject bit-identical
 * upset sequences. Three rules enforce that here:
 *
 *  1. The RNG is touched only when an arrival fires (cluster, word,
 *     bit, next Exp(1) budget) -- never per interval. An interval with
 *     no arrivals consumes no randomness in either mode.
 *  2. Arrival decisions compare absolute dose coordinates with the
 *     exact same floating-point expression in both modes:
 *     baseDose + rate * toSeconds(now - baseTick). The base is only
 *     rebased at rate changes, which happen at the same simulated
 *     times in both modes, so the operand values are identical.
 *  3. The skip-ahead horizon is *conservative*: it may trigger a
 *     settle a little early (harmless, drains nothing, draws nothing)
 *     but never past a due arrival's quantum.
 */

#include "rad/beam_source.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "telemetry/metrics.hh"

namespace xser::rad {

namespace {

/**
 * Cap on how far ahead one skip can reach. Keeps fromSeconds() far
 * from Tick overflow for near-zero rates; an idle settle every 1e6
 * simulated seconds costs nothing.
 */
constexpr double maxSkipSeconds = 1.0e6;

} // namespace

BeamSource::BeamSource(const BeamConfig &config,
                       const CrossSectionModel *xsection,
                       const MbuModel *mbu,
                       std::vector<mem::BeamTarget> targets)
    : config_(config), xsection_(xsection), mbu_(mbu),
      targets_(std::move(targets)), rng_(config.seed)
{
    XSER_ASSERT(xsection_ != nullptr, "beam needs a cross-section model");
    XSER_ASSERT(mbu_ != nullptr, "beam needs an MBU model");
    if (config_.timeScale <= 0.0)
        fatal("beam time scale must be positive");
    if (targets_.empty())
        fatal("beam needs at least one target array");
    rate_.resize(targets_.size());
    baseDose_.assign(targets_.size(), 0.0);
    nextArrivalDose_.resize(targets_.size());
    refreshRates();
    // Every target's first arrival budget, in target order.
    for (size_t i = 0; i < targets_.size(); ++i)
        nextArrivalDose_[i] = rng_.nextExponential(1.0);
    scheduleNextSettle();
}

void
BeamSource::setVoltages(double pmd_volts, double soc_volts)
{
    if (pmd_volts <= 0.0 || soc_volts <= 0.0)
        fatal("domain voltages must be positive");
    settle();
    pmdVolts_ = pmd_volts;
    socVolts_ = soc_volts;
    refreshRates();
    scheduleNextSettle();
}

void
BeamSource::setTimeScale(double time_scale)
{
    if (time_scale <= 0.0)
        fatal("beam time scale must be positive");
    settle();
    config_.timeScale = time_scale;
    refreshRates();
    scheduleNextSettle();
}

double
BeamSource::effectiveFlux() const
{
    return config_.environment.neutronsPerCm2PerSecond *
           config_.timeScale;
}

double
BeamSource::voltsFor(const mem::BeamTarget &target) const
{
    return target.pmdDomain ? pmdVolts_ : socVolts_;
}

double
BeamSource::deltaVFor(const mem::BeamTarget &target) const
{
    const auto &sensitivity = xsection_->sensitivity(target.level);
    return sensitivity.nominalVolts - voltsFor(target);
}

double
BeamSource::expectedEventRatePerSecond() const
{
    double rate = 0.0;
    for (const auto &target : targets_) {
        rate += static_cast<double>(target.array->totalBits()) *
                xsection_->bitCrossSection(target.level,
                                           voltsFor(target)) *
                effectiveFlux();
    }
    return rate;
}

double
BeamSource::doseAt(size_t i, Tick tick) const
{
    return baseDose_[i] + rate_[i] * ticks::toSeconds(tick - baseTick_);
}

void
BeamSource::refreshRates()
{
    // Fold dose earned under the outgoing rates into the base before
    // re-sloping; outstanding Exp(1) budgets carry over unchanged.
    for (size_t i = 0; i < targets_.size(); ++i)
        baseDose_[i] = doseAt(i, nowTick_);
    baseTick_ = nowTick_;
    const double flux = effectiveFlux();
    for (size_t i = 0; i < targets_.size(); ++i) {
        const auto &target = targets_[i];
        rate_[i] = static_cast<double>(target.array->totalBits()) *
                   xsection_->bitCrossSection(target.level,
                                              voltsFor(target)) *
                   flux;
    }
}

void
BeamSource::scheduleNextSettle()
{
    Tick best = nowTick_ + ticks::fromSeconds(maxSkipSeconds);
    for (size_t i = 0; i < targets_.size(); ++i) {
        if (rate_[i] <= 0.0)
            continue;
        const double dt =
            (nextArrivalDose_[i] - baseDose_[i]) / rate_[i];
        if (dt <= 0.0) {
            best = nowTick_;
            break;
        }
        Tick dt_ticks =
            ticks::fromSeconds(std::min(dt, maxSkipSeconds));
        // Safety margin: undershoot by ~1ppm plus a fixed slack, orders
        // of magnitude beyond the conversion's floating-point error, so
        // the horizon can never land past a due arrival.
        dt_ticks -= std::min(dt_ticks, dt_ticks / 1048576 + 64);
        best = std::min(best, baseTick_ + dt_ticks);
    }
    nextSettleTick_ = best;
}

void
BeamSource::settle()
{
    telemetry::count(telemetry::Counter::BeamSettles);
    const double window = ticks::toSeconds(nowTick_ - baseTick_);
    for (size_t i = 0; i < targets_.size(); ++i) {
        const double dose_now = baseDose_[i] + rate_[i] * window;
        if (nextArrivalDose_[i] > dose_now)
            continue;
        const mem::BeamTarget &target = targets_[i];
        const double delta_v = deltaVFor(target);
        do {
            ++eventsPerLevel_[static_cast<size_t>(target.level)];
            injectEvent(target, delta_v);
            nextArrivalDose_[i] += rng_.nextExponential(1.0);
        } while (nextArrivalDose_[i] <= dose_now);
    }
}

void
BeamSource::injectEvent(const mem::BeamTarget &target, double delta_v)
{
    telemetry::count(telemetry::Counter::BeamArrivals);
    mem::SramArray &array = *target.array;
    const unsigned cluster = mbu_->sampleClusterSize(delta_v, rng_);
    const size_t words = array.words();
    const unsigned bits_per_word = array.bitsPerWord();
    const size_t word = rng_.nextBounded(words);
    const unsigned bit =
        static_cast<unsigned>(rng_.nextBounded(bits_per_word));

    array.noteUpsetEvent();
    if (trace::TraceSink *sink = array.traceSink()) {
        // One Injection record per upset event; aux carries the sampled
        // cluster size (the raw-upset side of the lifecycle).
        sink->record({trace::EventType::Injection, array.now(),
                      array.traceId(), static_cast<uint64_t>(word), bit,
                      cluster});
    }
    const bool interleaved =
        config_.interleaved[static_cast<size_t>(target.level)];
    for (unsigned i = 0; i < cluster; ++i) {
        if (interleaved) {
            // Physically adjacent cells map to the same bit column of
            // consecutive logical words: each flip is a separate SBU
            // from the codec's perspective.
            array.flipBit((word + i) % words, bit);
        } else {
            // No interleaving: the cluster lands inside one word.
            array.flipBit(word, (bit + i) % bits_per_word);
        }
    }
}

void
BeamSource::advance(Tick elapsed)
{
    if (elapsed == 0)
        return;
    nowTick_ += elapsed;
    fluence_ += effectiveFlux() * ticks::toSeconds(elapsed);
    if (config_.skipAhead && nowTick_ < nextSettleTick_) {
        telemetry::count(telemetry::Counter::BeamQuantaSkipped);
        return;
    }
    settle();
    if (config_.skipAhead)
        scheduleNextSettle();
}

uint64_t
BeamSource::upsetEvents() const
{
    uint64_t total = 0;
    for (uint64_t count : eventsPerLevel_)
        total += count;
    return total;
}

uint64_t
BeamSource::upsetEvents(mem::CacheLevel level) const
{
    return eventsPerLevel_[static_cast<size_t>(level)];
}

void
BeamSource::clearCounters()
{
    // Counters only: the arrival process itself is memoryless, so the
    // outstanding budgets stay valid across session phase boundaries.
    fluence_ = 0.0;
    eventsPerLevel_ = {};
}

} // namespace xser::rad
