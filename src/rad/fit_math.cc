/**
 * @file
 * FIT math implementation.
 */

#include "rad/fit_math.hh"

#include "sim/logging.hh"

namespace xser::rad {

double
dynamicCrossSection(uint64_t events, double fluence)
{
    XSER_ASSERT(fluence > 0.0, "fluence must be positive");
    return static_cast<double>(events) / fluence;
}

double
fitFromDcs(double dcs, double reference_flux_per_hour)
{
    return dcs * reference_flux_per_hour * fitHours;
}

double
fitFromCounts(uint64_t events, double fluence,
              double reference_flux_per_hour)
{
    return fitFromDcs(dynamicCrossSection(events, fluence),
                      reference_flux_per_hour);
}

PoissonInterval
fitInterval(uint64_t events, double fluence, double confidence,
            double reference_flux_per_hour)
{
    XSER_ASSERT(fluence > 0.0, "fluence must be positive");
    PoissonInterval counts = poissonConfidenceInterval(events, confidence);
    const double scale = reference_flux_per_hour * fitHours / fluence;
    return PoissonInterval{counts.lower * scale, counts.upper * scale};
}

double
nycYearsEquivalent(double fluence)
{
    XSER_ASSERT(fluence >= 0.0, "fluence must be non-negative");
    const double hours = fluence / nycFluxPerHour;
    return hours / (24.0 * 365.0);
}

double
fitPerMbit(uint64_t upsets, double fluence, uint64_t total_bits)
{
    XSER_ASSERT(total_bits > 0, "SRAM footprint must be non-empty");
    const double total_fit = fitFromCounts(upsets, fluence);
    const double mbits =
        static_cast<double>(total_bits) / (1024.0 * 1024.0);
    return total_fit / mbits;
}

double
expectedFailures(double fit, double devices, double hours)
{
    return fit * devices * hours / fitHours;
}

} // namespace xser::rad
