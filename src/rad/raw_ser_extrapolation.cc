/**
 * @file
 * RawSerExtrapolation implementation.
 */

#include "rad/raw_ser_extrapolation.hh"

#include "sim/logging.hh"

namespace xser::rad {

RawSerExtrapolation::RawSerExtrapolation(
    const CrossSectionModel *xsection,
    std::vector<SerStructure> structures,
    const FluxEnvironment &environment)
    : xsection_(xsection), structures_(std::move(structures)),
      environment_(environment)
{
    XSER_ASSERT(xsection_ != nullptr,
                "extrapolation needs a cross-section model");
    if (structures_.empty())
        fatal("extrapolation needs at least one structure");
}

double
RawSerExtrapolation::rawFit(double pmd_volts, double soc_volts) const
{
    double fit = 0.0;
    for (const auto &structure : structures_) {
        const double volts =
            structure.pmdDomain ? pmd_volts : soc_volts;
        fit += static_cast<double>(structure.bits) *
               xsection_->bitCrossSection(structure.level, volts) *
               environment_.perHour() * 1e9;
    }
    return fit;
}

std::vector<SerPrediction>
RawSerExtrapolation::predict(
    const std::vector<std::pair<double, double>> &settings) const
{
    XSER_ASSERT(!settings.empty(), "need at least one setting");
    std::vector<SerPrediction> predictions;
    predictions.reserve(settings.size());
    const double nominal =
        rawFit(settings.front().first, settings.front().second);
    for (const auto &[pmd, soc] : settings) {
        SerPrediction prediction;
        prediction.pmdVolts = pmd;
        prediction.socVolts = soc;
        prediction.rawFit = rawFit(pmd, soc);
        prediction.ratioToNominal =
            nominal > 0.0 ? prediction.rawFit / nominal : 0.0;
        predictions.push_back(prediction);
    }
    return predictions;
}

std::vector<SerStructure>
inventoryFrom(const std::vector<mem::BeamTarget> &targets)
{
    std::vector<SerStructure> structures;
    structures.reserve(targets.size());
    for (const auto &target : targets) {
        structures.push_back(SerStructure{target.level,
                                          target.array->totalBits(),
                                          target.pmdDomain});
    }
    return structures;
}

} // namespace xser::rad
