/**
 * @file
 * The estimator pipeline of Section 2.1: dynamic cross section (Eq. 1)
 * and FIT conversion (Eq. 2), plus the fluence bookkeeping helpers the
 * session tables need (NYC-equivalent years, FIT per Mbit).
 */

#ifndef XSER_RAD_FIT_MATH_HH
#define XSER_RAD_FIT_MATH_HH

#include <cstdint>

#include "stats/poisson_ci.hh"

namespace xser::rad {

/** NYC sea-level reference flux in n/cm^2/hour (JESD89). */
constexpr double nycFluxPerHour = 13.0;

/** Hours per FIT period (FIT = failures per 1e9 device-hours). */
constexpr double fitHours = 1e9;

/**
 * Eq. 1: dynamic cross section = events / fluence.
 *
 * @param events Number of observed events.
 * @param fluence Particle fluence in n/cm^2 (must be positive).
 */
double dynamicCrossSection(uint64_t events, double fluence);

/** Eq. 2: FIT = DCS * 13 n/cm^2/h * 1e9 h. */
double fitFromDcs(double dcs, double reference_flux_per_hour =
                                   nycFluxPerHour);

/** Compose Eq. 1 and Eq. 2 directly from counts. */
double fitFromCounts(uint64_t events, double fluence,
                     double reference_flux_per_hour = nycFluxPerHour);

/** 95 % confidence interval on a FIT estimate from counts. */
PoissonInterval fitInterval(uint64_t events, double fluence,
                            double confidence = 0.95,
                            double reference_flux_per_hour =
                                nycFluxPerHour);

/**
 * Years of natural NYC irradiation delivering the same fluence
 * (Table 2's "Years of NYC equivalent radiation" row).
 */
double nycYearsEquivalent(double fluence);

/**
 * Memory soft-error rate in FIT per Mbit (Table 2's last row): the FIT
 * implied by `upsets` over `fluence`, normalized per 2^20 bits of the
 * `total_bits` SRAM footprint.
 */
double fitPerMbit(uint64_t upsets, double fluence, uint64_t total_bits);

/** Expected failures for a fleet: FIT * devices * hours / 1e9. */
double expectedFailures(double fit, double devices, double hours);

} // namespace xser::rad

#endif // XSER_RAD_FIT_MATH_HH
