/**
 * @file
 * CrossSectionModel implementation.
 *
 * Default sensitivities were fitted against the paper's per-level upset
 * rates (Figs. 6 and 7):
 *
 *   level | fit source                               | k (1/V)
 *   ------+------------------------------------------+--------
 *   TLB   | small parity cells, Fig.7 (0.03 @790mV)  |  4.5
 *   L1    | Fig.7: 2.7x at 190 mV below nominal      |  4.8
 *   L2    | Fig.6/7: 1.24x @ -60 mV, 1.85x @ -190 mV |  3.2
 *   L3    | Fig.6: 1.10x @ -30 mV (SoC domain)       |  2.8
 */

#include "rad/cross_section_model.hh"

#include <cmath>

#include "sim/logging.hh"

namespace xser::rad {

CrossSectionModel::CrossSectionModel()
{
    constexpr double pmd_nominal = 0.980;
    constexpr double soc_nominal = 0.950;
    sensitivities_[static_cast<size_t>(mem::CacheLevel::Tlb)] =
        ArraySensitivity{1.0e-15, 3.5, pmd_nominal};
    sensitivities_[static_cast<size_t>(mem::CacheLevel::L1)] =
        ArraySensitivity{1.0e-15, 4.8, pmd_nominal};
    sensitivities_[static_cast<size_t>(mem::CacheLevel::L2)] =
        ArraySensitivity{1.0e-15, 2.4, pmd_nominal};
    sensitivities_[static_cast<size_t>(mem::CacheLevel::L3)] =
        ArraySensitivity{1.0e-15, 2.8, soc_nominal};
}

void
CrossSectionModel::setSensitivity(mem::CacheLevel level,
                                  const ArraySensitivity &sensitivity)
{
    if (sensitivity.sigma0Cm2PerBit <= 0.0)
        fatal("cross section must be positive");
    sensitivities_[static_cast<size_t>(level)] = sensitivity;
}

const ArraySensitivity &
CrossSectionModel::sensitivity(mem::CacheLevel level) const
{
    return sensitivities_[static_cast<size_t>(level)];
}

double
CrossSectionModel::bitCrossSection(mem::CacheLevel level,
                                   double volts) const
{
    const auto &s = sensitivities_[static_cast<size_t>(level)];
    XSER_ASSERT(volts > 0.0, "supply voltage must be positive");
    return s.sigma0Cm2PerBit *
           std::exp(s.voltSensPerVolt * (s.nominalVolts - volts));
}

double
CrossSectionModel::susceptibilityRatio(mem::CacheLevel level,
                                       double volts) const
{
    const auto &s = sensitivities_[static_cast<size_t>(level)];
    return bitCrossSection(level, volts) / s.sigma0Cm2PerBit;
}

} // namespace xser::rad
