/**
 * @file
 * Multi-bit upset (MBU) model.
 *
 * A single particle strike can upset a cluster of physically adjacent
 * cells, and the MBU fraction grows as the supply drops (Section 4.3,
 * [20]). Physical adjacency maps to logical words differently per
 * array: small arrays use column interleaving so a physical cluster
 * lands in *different* logical words (each correctable on its own),
 * while the large L3 has no interleaving (paper: "large cache arrays
 * with no memory interleaving schemes are more vulnerable to MBUs"), so
 * clusters land in the *same* word -- which is why uncorrectable ECC
 * events were observed only in L3 (Fig. 6).
 */

#ifndef XSER_RAD_MBU_MODEL_HH
#define XSER_RAD_MBU_MODEL_HH

#include <array>

namespace xser {
class Rng;
} // namespace xser

namespace xser::rad {

/** MBU model parameters. */
struct MbuConfig {
    /** Fraction of upset events that are multi-bit at nominal supply. */
    double mbuFractionNominal = 0.06;
    /** Exponential growth of the MBU fraction per volt of reduction. */
    double voltSensPerVolt = 3.0;
    /** Probability mass over cluster sizes 2, 3, 4 (given MBU). */
    std::array<double, 3> sizePmf = {0.72, 0.20, 0.08};
    /** Cap so the fraction stays a probability under deep undervolt. */
    double mbuFractionCap = 0.60;
};

/**
 * Samples upset cluster sizes as a function of voltage reduction.
 */
class MbuModel
{
  public:
    explicit MbuModel(const MbuConfig &config = {});

    const MbuConfig &config() const { return config_; }

    /** MBU fraction at a voltage reduction delta_v = Vnom - V (volts). */
    double mbuFraction(double delta_v) const;

    /** Sample a cluster size (1, 2, 3, or 4 bits). */
    unsigned sampleClusterSize(double delta_v, Rng &rng) const;

  private:
    MbuConfig config_;
};

} // namespace xser::rad

#endif // XSER_RAD_MBU_MODEL_HH
