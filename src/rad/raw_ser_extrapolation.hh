/**
 * @file
 * The state-of-the-art baseline the paper improves on: raw-SER
 * voltage extrapolation in the style of Seifert et al. ([66],[67]) --
 * measure the SRAM SER at nominal voltage, then *extrapolate* to
 * reduced voltages through the Qcrit/cross-section model alone,
 * without running the system.
 *
 * The paper's thesis is that this misses the system-level picture:
 * raw SRAM SER grows only ~10-40 % across the safe undervolting
 * range, while the *silent data corruption* rate of the full system
 * explodes ~16x at Vmin because unprotected core logic couples to the
 * vanishing timing slack. bench_baseline_extrapolation puts the two
 * side by side.
 */

#ifndef XSER_RAD_RAW_SER_EXTRAPOLATION_HH
#define XSER_RAD_RAW_SER_EXTRAPOLATION_HH

#include <vector>

#include "mem/memory_system.hh"
#include "rad/cross_section_model.hh"
#include "rad/flux_environment.hh"

namespace xser::rad {

/** One structure entry for the extrapolation. */
struct SerStructure {
    mem::CacheLevel level;
    uint64_t bits;
    bool pmdDomain;  ///< which supply scales it
};

/** Extrapolated SER at one voltage setting. */
struct SerPrediction {
    double pmdVolts;
    double socVolts;
    double rawFit;            ///< chip SRAM SER, FIT at the ref flux
    double ratioToNominal;    ///< rawFit / rawFit(nominal)
};

/**
 * Seifert-style raw SER extrapolator over a structure inventory.
 */
class RawSerExtrapolation
{
  public:
    /**
     * @param xsection Voltage-dependent per-bit cross sections.
     * @param structures SRAM inventory (level, bits, domain).
     * @param environment Reference flux (default NYC sea level).
     */
    RawSerExtrapolation(const CrossSectionModel *xsection,
                        std::vector<SerStructure> structures,
                        const FluxEnvironment &environment =
                            nycSeaLevel());

    /** Raw chip SER (FIT) at the given domain voltages. */
    double rawFit(double pmd_volts, double soc_volts) const;

    /**
     * Predictions across a list of (PMD, SoC) voltage pairs, with
     * ratios normalized to the first entry.
     */
    std::vector<SerPrediction> predict(
        const std::vector<std::pair<double, double>> &settings) const;

  private:
    const CrossSectionModel *xsection_;
    std::vector<SerStructure> structures_;
    FluxEnvironment environment_;
};

/** Build the structure inventory from a memory system's beam targets. */
std::vector<SerStructure> inventoryFrom(
    const std::vector<mem::BeamTarget> &targets);

} // namespace xser::rad

#endif // XSER_RAD_RAW_SER_EXTRAPOLATION_HH
