/**
 * @file
 * Voltage-dependent per-bit neutron cross sections.
 *
 * The critical charge Qcrit of an SRAM cell is proportional to its
 * supply voltage ([16] in the paper), and the upset rate follows the
 * Hazucha-Svensson form SER ~ exp(-Qcrit/Qs). Folding the constants, a
 * bit's cross section scales exponentially with the voltage reduction:
 *
 *     sigma(V) = sigma0 * exp(k * (Vnom - V))
 *
 * sigma0 is in the 1e-15 cm^2/bit range the paper cites for 28 nm
 * SRAM (Section 3.3, [83]). The sensitivity k differs per array class:
 * the paper's per-level data (Figs. 6/7) shows the small parity arrays
 * reacting more steeply to PMD undervolting than the big SECDED arrays
 * (L1 ~2.7x at 790 mV vs L2 ~1.5x), consistent with smaller cells.
 */

#ifndef XSER_RAD_CROSS_SECTION_MODEL_HH
#define XSER_RAD_CROSS_SECTION_MODEL_HH

#include <array>

#include "mem/edac_reporter.hh"

namespace xser::rad {

/** Sensitivity parameters of one array class. */
struct ArraySensitivity {
    double sigma0Cm2PerBit;   ///< cross section at nominal voltage
    double voltSensPerVolt;   ///< exponent k in exp(k * (Vnom - V))
    double nominalVolts;      ///< the domain's nominal supply
};

/**
 * Per-cache-level cross-section model. Defaults are the calibrated
 * values used for the paper reproduction (see core/calibration.hh for
 * the fit provenance).
 */
class CrossSectionModel
{
  public:
    CrossSectionModel();

    /** Override one level's sensitivity (ablations, other silicon). */
    void setSensitivity(mem::CacheLevel level,
                        const ArraySensitivity &sensitivity);

    const ArraySensitivity &sensitivity(mem::CacheLevel level) const;

    /** Per-bit cross section (cm^2) at the given supply voltage. */
    double bitCrossSection(mem::CacheLevel level, double volts) const;

    /**
     * Ratio of the cross section at `volts` to the nominal one -- the
     * per-level susceptibility increase the paper plots.
     */
    double susceptibilityRatio(mem::CacheLevel level, double volts) const;

  private:
    std::array<ArraySensitivity, mem::numCacheLevels> sensitivities_;
};

} // namespace xser::rad

#endif // XSER_RAD_CROSS_SECTION_MODEL_HH
