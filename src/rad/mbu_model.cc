/**
 * @file
 * MbuModel implementation.
 */

#include "rad/mbu_model.hh"

#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace xser::rad {

MbuModel::MbuModel(const MbuConfig &config) : config_(config)
{
    const double mass = config_.sizePmf[0] + config_.sizePmf[1] +
                        config_.sizePmf[2];
    if (std::fabs(mass - 1.0) > 1e-9)
        fatal(msg("MBU size pmf must sum to 1, got ", mass));
    if (config_.mbuFractionNominal < 0.0 ||
        config_.mbuFractionNominal > 1.0)
        fatal("MBU fraction must be a probability");
}

double
MbuModel::mbuFraction(double delta_v) const
{
    const double fraction = config_.mbuFractionNominal *
                            std::exp(config_.voltSensPerVolt * delta_v);
    return std::min(fraction, config_.mbuFractionCap);
}

unsigned
MbuModel::sampleClusterSize(double delta_v, Rng &rng) const
{
    if (!rng.nextBool(mbuFraction(delta_v)))
        return 1;
    const double draw = rng.nextDouble();
    if (draw < config_.sizePmf[0])
        return 2;
    if (draw < config_.sizePmf[0] + config_.sizePmf[1])
        return 3;
    return 4;
}

} // namespace xser::rad
