/**
 * @file
 * Neutron flux environments (energies above 10 MeV, JEDEC JESD89
 * convention used throughout the paper).
 *
 * The paper's campaign ran in the halo of the TRIUMF TNF beam at
 * 1.5e6 n/cm^2/s (Section 3.4: the nominal beam position delivers
 * 2e6..3e6 n/cm^2/s; the halo position measured 0.60 +/- 0.02 % of...
 * the ratio folding yields (2+3)/2 * 0.6 = 1.5e6). FIT rates are quoted
 * for the NYC sea-level reference flux of 13 n/cm^2/h (Section 2.1).
 */

#ifndef XSER_RAD_FLUX_ENVIRONMENT_HH
#define XSER_RAD_FLUX_ENVIRONMENT_HH

#include <string>

namespace xser::rad {

/** A neutron radiation environment. */
struct FluxEnvironment {
    std::string name;
    double neutronsPerCm2PerSecond;  ///< flux for E > 10 MeV

    /** Flux per hour (the unit of the NYC reference). */
    double perHour() const { return neutronsPerCm2PerSecond * 3600.0; }
};

/** NYC sea-level reference: 13 n/cm^2/h. */
FluxEnvironment nycSeaLevel();

/** TNF nominal beam position: 2.5e6 n/cm^2/s (mid of the 2..3 range). */
FluxEnvironment tnfBeamCenter();

/** TNF halo position used by the campaign: 1.5e6 n/cm^2/s. */
FluxEnvironment tnfBeamHalo();

/**
 * Terrestrial environment at altitude: NYC flux scaled by the standard
 * exponential atmospheric-depth approximation (about 2x per 1000 m;
 * Denver at 1600 m sees roughly 3x sea level).
 *
 * @param altitude_meters Altitude above sea level.
 */
FluxEnvironment atAltitude(double altitude_meters);

/** Acceleration factor of an environment over NYC sea level. */
double accelerationOverNyc(const FluxEnvironment &environment);

} // namespace xser::rad

#endif // XSER_RAD_FLUX_ENVIRONMENT_HH
