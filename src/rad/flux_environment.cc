/**
 * @file
 * FluxEnvironment factories.
 */

#include "rad/flux_environment.hh"

#include <cmath>

#include "sim/logging.hh"

namespace xser::rad {

FluxEnvironment
nycSeaLevel()
{
    return FluxEnvironment{"NYC sea level", 13.0 / 3600.0};
}

FluxEnvironment
tnfBeamCenter()
{
    return FluxEnvironment{"TRIUMF TNF beam center", 2.5e6};
}

FluxEnvironment
tnfBeamHalo()
{
    return FluxEnvironment{"TRIUMF TNF beam halo", 1.5e6};
}

FluxEnvironment
atAltitude(double altitude_meters)
{
    if (altitude_meters < 0.0 || altitude_meters > 20000.0)
        fatal(msg("altitude ", altitude_meters,
                  " m outside the supported 0..20000 m range"));
    // exp(h / 1437 m): ~2x per km, ~3x at Denver's 1600 m.
    const double multiplier = std::exp(altitude_meters / 1437.0);
    return FluxEnvironment{msg("terrestrial @ ", altitude_meters, " m"),
                           (13.0 / 3600.0) * multiplier};
}

double
accelerationOverNyc(const FluxEnvironment &environment)
{
    return environment.neutronsPerCm2PerSecond / (13.0 / 3600.0);
}

} // namespace xser::rad
