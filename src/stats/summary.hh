/**
 * @file
 * Streaming summary statistics (Welford) used across the campaign
 * framework for run times, power samples, and rate series.
 */

#ifndef XSER_STATS_SUMMARY_HH
#define XSER_STATS_SUMMARY_HH

#include <cstdint>
#include <limits>

namespace xser {

/**
 * Numerically stable streaming mean/variance/min/max accumulator.
 */
class Summary
{
  public:
    /** Add one observation. */
    void add(double value);

    /** Merge another accumulator (parallel-friendly Chan merge). */
    void merge(const Summary &other);

    /** Number of observations. */
    uint64_t count() const { return count_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 with fewer than two observations. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Standard error of the mean. */
    double stderrMean() const;

    /** Smallest observation; +inf when empty. */
    double min() const { return min_; }

    /** Largest observation; -inf when empty. */
    double max() const { return max_; }

    /** Sum of all observations. */
    double sum() const { return mean_ * static_cast<double>(count_); }

    /**
     * Half-width of the normal-approximation confidence interval on the
     * mean at the given z value (default 1.96 for 95 %).
     */
    double ciHalfWidth(double z = 1.96) const;

    /** Reset to empty. */
    void clear() { *this = Summary(); }

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace xser

#endif // XSER_STATS_SUMMARY_HH
