/**
 * @file
 * Incomplete gamma and Poisson interval implementation.
 */

#include "stats/poisson_ci.hh"

#include <cmath>

#include "sim/logging.hh"

namespace xser {

namespace {

constexpr int maxIterations = 500;
constexpr double epsilon = 1e-14;
constexpr double tiny = 1e-300;

/** Series expansion of P(a, x), valid and fast for x < a + 1. */
double
gammaPSeries(double a, double x)
{
    double term = 1.0 / a;
    double sum = term;
    double ap = a;
    for (int i = 0; i < maxIterations; ++i) {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if (std::fabs(term) < std::fabs(sum) * epsilon)
            break;
    }
    return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

/** Lentz continued fraction for Q(a, x), valid for x >= a + 1. */
double
gammaQContinuedFraction(double a, double x)
{
    double b = x + 1.0 - a;
    double c = 1.0 / tiny;
    double d = 1.0 / b;
    double h = d;
    for (int i = 1; i <= maxIterations; ++i) {
        const double an = -static_cast<double>(i) *
                          (static_cast<double>(i) - a);
        b += 2.0;
        d = an * d + b;
        if (std::fabs(d) < tiny)
            d = tiny;
        c = b + an / c;
        if (std::fabs(c) < tiny)
            c = tiny;
        d = 1.0 / d;
        const double delta = d * c;
        h *= delta;
        if (std::fabs(delta - 1.0) < epsilon)
            break;
    }
    return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

} // namespace

double
regularizedGammaP(double a, double x)
{
    XSER_ASSERT(a > 0.0, "gamma shape must be positive");
    XSER_ASSERT(x >= 0.0, "gamma argument must be non-negative");
    if (x == 0.0)
        return 0.0;
    if (x < a + 1.0)
        return gammaPSeries(a, x);
    return 1.0 - gammaQContinuedFraction(a, x);
}

double
regularizedGammaQ(double a, double x)
{
    return 1.0 - regularizedGammaP(a, x);
}

double
chiSquaredQuantile(double p, double dof)
{
    XSER_ASSERT(p > 0.0 && p < 1.0, "quantile probability must be in (0,1)");
    XSER_ASSERT(dof > 0.0, "degrees of freedom must be positive");
    // Bracket the quantile, then bisect. The CDF is monotone so bisection
    // is robust; 200 iterations give far more precision than needed.
    double lo = 0.0;
    double hi = dof + 10.0 * std::sqrt(2.0 * dof) + 10.0;
    while (regularizedGammaP(dof / 2.0, hi / 2.0) < p)
        hi *= 2.0;
    for (int i = 0; i < 200; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (regularizedGammaP(dof / 2.0, mid / 2.0) < p)
            lo = mid;
        else
            hi = mid;
        if (hi - lo < 1e-12 * (1.0 + hi))
            break;
    }
    return 0.5 * (lo + hi);
}

PoissonInterval
poissonConfidenceInterval(uint64_t count, double confidence)
{
    XSER_ASSERT(confidence > 0.0 && confidence < 1.0,
                "confidence must be in (0,1)");
    const double alpha = 1.0 - confidence;
    PoissonInterval interval;
    if (count == 0) {
        interval.lower = 0.0;
    } else {
        interval.lower = 0.5 * chiSquaredQuantile(
            alpha / 2.0, 2.0 * static_cast<double>(count));
    }
    interval.upper = 0.5 * chiSquaredQuantile(
        1.0 - alpha / 2.0, 2.0 * static_cast<double>(count) + 2.0);
    return interval;
}

PoissonInterval
scaleInterval(const PoissonInterval &interval, double exposure)
{
    XSER_ASSERT(exposure > 0.0, "exposure must be positive");
    return PoissonInterval{interval.lower / exposure,
                           interval.upper / exposure};
}

} // namespace xser
