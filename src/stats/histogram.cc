/**
 * @file
 * Histogram implementation.
 */

#include "stats/histogram.hh"

#include <algorithm>
#include <sstream>

#include "sim/logging.hh"

namespace xser {

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi)
{
    if (bins == 0)
        fatal("histogram needs at least one bin");
    if (hi <= lo)
        fatal(msg("histogram range is empty: [", lo, ", ", hi, ")"));
    counts_.assign(bins, 0);
    width_ = (hi - lo) / static_cast<double>(bins);
}

void
Histogram::add(double value)
{
    add(value, 1);
}

void
Histogram::add(double value, uint64_t weight)
{
    total_ += weight;
    if (value < lo_) {
        underflow_ += weight;
        return;
    }
    if (value >= hi_) {
        overflow_ += weight;
        return;
    }
    auto index = static_cast<size_t>((value - lo_) / width_);
    index = std::min(index, counts_.size() - 1);
    counts_[index] += weight;
}

uint64_t
Histogram::binCount(size_t index) const
{
    XSER_ASSERT(index < counts_.size(), "histogram bin out of range");
    return counts_[index];
}

double
Histogram::binLow(size_t index) const
{
    XSER_ASSERT(index < counts_.size(), "histogram bin out of range");
    return lo_ + width_ * static_cast<double>(index);
}

std::string
Histogram::toString() const
{
    std::ostringstream os;
    const uint64_t peak = counts_.empty()
        ? 0 : *std::max_element(counts_.begin(), counts_.end());
    for (size_t i = 0; i < counts_.size(); ++i) {
        os << "[" << binLow(i) << ", " << binLow(i) + width_ << ") "
           << counts_[i] << " ";
        if (peak > 0) {
            const size_t bars = static_cast<size_t>(
                40.0 * static_cast<double>(counts_[i]) /
                static_cast<double>(peak));
            os << std::string(bars, '#');
        }
        os << "\n";
    }
    if (underflow_ || overflow_) {
        os << "underflow " << underflow_ << ", overflow " << overflow_
           << "\n";
    }
    return os.str();
}

void
Histogram::merge(const Histogram &other)
{
    if (other.lo_ != lo_ || other.hi_ != hi_ ||
        other.counts_.size() != counts_.size())
        fatal(msg("histogram merge shape mismatch: [", lo_, ", ", hi_,
                  ") x", counts_.size(), " vs [", other.lo_, ", ",
                  other.hi_, ") x", other.counts_.size()));
    for (size_t i = 0; i < counts_.size(); ++i)
        counts_[i] += other.counts_[i];
    underflow_ += other.underflow_;
    overflow_ += other.overflow_;
    total_ += other.total_;
}

void
Histogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    underflow_ = 0;
    overflow_ = 0;
    total_ = 0;
}

} // namespace xser
