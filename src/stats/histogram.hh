/**
 * @file
 * Fixed-bin histogram used for MBU cluster sizes, per-run event counts,
 * and latency distributions.
 */

#ifndef XSER_STATS_HISTOGRAM_HH
#define XSER_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace xser {

/**
 * Histogram over [lo, hi) with uniform bins plus underflow/overflow.
 */
class Histogram
{
  public:
    /**
     * @param lo Inclusive lower edge of the first bin.
     * @param hi Exclusive upper edge of the last bin.
     * @param bins Number of uniform bins (must be >= 1).
     */
    Histogram(double lo, double hi, size_t bins);

    /** Record one sample. */
    void add(double value);

    /** Record a sample with an integer weight. */
    void add(double value, uint64_t weight);

    /** Count in a bin by index. */
    uint64_t binCount(size_t index) const;

    /** Inclusive lower edge of a bin. */
    double binLow(size_t index) const;

    /** Number of uniform bins. */
    size_t bins() const { return counts_.size(); }

    /** Inclusive lower edge of the histogram range. */
    double low() const { return lo_; }

    /** Exclusive upper edge of the histogram range. */
    double high() const { return hi_; }

    /**
     * Fold another histogram of the same shape in (bin-wise count
     * sums, plus under/overflow and totals). Integer addition is
     * associative and commutative, so any merge order yields the same
     * counts -- the property the telemetry shard merge relies on.
     * Fatal on a shape mismatch (different range or bin count).
     */
    void merge(const Histogram &other);

    /** Samples below the histogram range. */
    uint64_t underflow() const { return underflow_; }

    /** Samples at or above the histogram range. */
    uint64_t overflow() const { return overflow_; }

    /** Total recorded samples including under/overflow. */
    uint64_t total() const { return total_; }

    /** Render a small ASCII summary (for reports and debugging). */
    std::string toString() const;

    /** Reset all counts. */
    void clear();

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<uint64_t> counts_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

} // namespace xser

#endif // XSER_STATS_HISTOGRAM_HH
