/**
 * @file
 * Event-rate estimation over an exposure (time, fluence, or runs).
 *
 * Every rate the paper reports — upsets per minute, SDCs per fluence,
 * FIT — is a Poisson count divided by an exposure. RateEstimator carries
 * both so confidence intervals stay attached to the estimate.
 */

#ifndef XSER_STATS_RATE_ESTIMATOR_HH
#define XSER_STATS_RATE_ESTIMATOR_HH

#include <cstdint>

#include "stats/poisson_ci.hh"

namespace xser {

/**
 * Accumulates an event count against an exposure and produces rate
 * estimates with exact Poisson confidence intervals.
 */
class RateEstimator
{
  public:
    /** Record events (default one) without changing exposure. */
    void addEvents(uint64_t events = 1) { events_ += events; }

    /** Record exposure (minutes, n/cm^2, device-hours, ...). */
    void addExposure(double exposure);

    /** Merge another estimator over the same kind of exposure. */
    void merge(const RateEstimator &other);

    /** Total events. */
    uint64_t events() const { return events_; }

    /** Total exposure. */
    double exposure() const { return exposure_; }

    /** Point estimate of events per unit exposure; 0 if no exposure. */
    double rate() const;

    /** 95 % (by default) confidence interval on the rate. */
    PoissonInterval rateInterval(double confidence = 0.95) const;

    /** Reset to empty. */
    void clear();

  private:
    uint64_t events_ = 0;
    double exposure_ = 0.0;
};

} // namespace xser

#endif // XSER_STATS_RATE_ESTIMATOR_HH
