/**
 * @file
 * RateEstimator implementation.
 */

#include "stats/rate_estimator.hh"

#include "sim/logging.hh"

namespace xser {

void
RateEstimator::addExposure(double exposure)
{
    XSER_ASSERT(exposure >= 0.0, "exposure must be non-negative");
    exposure_ += exposure;
}

void
RateEstimator::merge(const RateEstimator &other)
{
    events_ += other.events_;
    exposure_ += other.exposure_;
}

double
RateEstimator::rate() const
{
    if (exposure_ <= 0.0)
        return 0.0;
    return static_cast<double>(events_) / exposure_;
}

PoissonInterval
RateEstimator::rateInterval(double confidence) const
{
    if (exposure_ <= 0.0)
        return PoissonInterval{0.0, 0.0};
    return scaleInterval(poissonConfidenceInterval(events_, confidence),
                         exposure_);
}

void
RateEstimator::clear()
{
    events_ = 0;
    exposure_ = 0.0;
}

} // namespace xser
