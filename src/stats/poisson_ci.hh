/**
 * @file
 * Exact Poisson confidence intervals and the incomplete-gamma machinery
 * behind them.
 *
 * Radiation campaigns report event counts (upsets, SDCs, crashes) whose
 * uncertainty is Poisson. The paper quotes 95 % error bars (Section 3.5);
 * we provide the standard exact (Garwood) interval:
 *
 *   lower = chi2inv(alpha/2, 2k) / 2
 *   upper = chi2inv(1 - alpha/2, 2k + 2) / 2
 *
 * implemented through the regularized incomplete gamma function.
 */

#ifndef XSER_STATS_POISSON_CI_HH
#define XSER_STATS_POISSON_CI_HH

#include <cstdint>

namespace xser {

/** A two-sided confidence interval on a Poisson mean. */
struct PoissonInterval {
    double lower;  ///< lower bound on the mean
    double upper;  ///< upper bound on the mean
};

/**
 * Regularized lower incomplete gamma P(a, x) = gamma(a, x) / Gamma(a).
 * Series expansion for x < a + 1, continued fraction otherwise
 * (Numerical Recipes style). Accurate to ~1e-12 over campaign ranges.
 */
double regularizedGammaP(double a, double x);

/** Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x). */
double regularizedGammaQ(double a, double x);

/**
 * Quantile of the chi-squared distribution with dof degrees of freedom:
 * smallest x with CDF(x) >= p. Solved by bisection on P(dof/2, x/2).
 */
double chiSquaredQuantile(double p, double dof);

/**
 * Exact (Garwood) two-sided confidence interval for the mean of a Poisson
 * distribution given an observed count.
 *
 * @param count Observed number of events.
 * @param confidence Two-sided confidence level (default 0.95).
 */
PoissonInterval poissonConfidenceInterval(uint64_t count,
                                          double confidence = 0.95);

/**
 * Scale a count interval into a rate interval: divide both bounds by the
 * (positive) exposure, e.g. fluence or minutes.
 */
PoissonInterval scaleInterval(const PoissonInterval &interval,
                              double exposure);

} // namespace xser

#endif // XSER_STATS_POISSON_CI_HH
