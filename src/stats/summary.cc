/**
 * @file
 * Summary implementation (Welford / Chan merge).
 */

#include "stats/summary.hh"

#include <algorithm>
#include <cmath>

namespace xser {

void
Summary::add(double value)
{
    ++count_;
    const double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
Summary::merge(const Summary &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(count_) *
                           static_cast<double>(other.count_) / total;
    mean_ += delta * static_cast<double>(other.count_) / total;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
Summary::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
Summary::stddev() const
{
    return std::sqrt(variance());
}

double
Summary::stderrMean() const
{
    if (count_ == 0)
        return 0.0;
    return stddev() / std::sqrt(static_cast<double>(count_));
}

double
Summary::ciHalfWidth(double z) const
{
    return z * stderrMean();
}

} // namespace xser
