/**
 * @file
 * xser-worker implementation.
 */

#include "service/worker.hh"

#include <cstdlib>
#include <map>
#include <memory>
#include <vector>

#include "core/parallel_campaign.hh"
#include "core/shard_executor.hh"
#include "net/frame.hh"
#include "net/socket.hh"
#include "service/protocol.hh"
#include "sim/logging.hh"
#include "telemetry/metrics.hh"
#include "telemetry/stopwatch.hh"
#include "trace/trace_buffer.hh"
#include "trace/trace_writer.hh"

namespace xser::service {

namespace {

/** Cached per-session prefix state within one campaign. */
struct PrefixEntry {
    std::vector<uint8_t> checkpoint;
    std::string telemetryBlob; ///< cleared once sent
};

/** Everything the worker caches for one campaign. */
struct WorkerCampaign {
    CampaignParams params;
    std::unique_ptr<core::ShardExecutor> executor;
    std::map<uint32_t, PrefixEntry> prefixes;
};

class Worker
{
  public:
    explicit Worker(const WorkerConfig &config) : config_(config) {}

    int
    run()
    {
        std::string error;
        conn_ = net::connectTo(config_.host, config_.port, error);
        if (!conn_.open())
            fatal(msg("cannot connect to ", config_.host, ":",
                      config_.port, ": ", error));
        send(FrameType::Hello,
             encodeHello({PeerRole::Worker}));

        uint64_t last_heartbeat = telemetry::monotonicNanos();
        for (;;) {
            std::vector<net::PollItem> items(1);
            items[0].fd = conn_.fd();
            items[0].wantRead = true;
            items[0].wantWrite = !outbox_.empty();
            net::pollSockets(items, 1000);
            if (items[0].canRead) {
                std::string bytes;
                const net::ReadStatus status = conn_.readSome(bytes);
                if (status == net::ReadStatus::Closed) {
                    inform("server closed the connection; exiting");
                    return 0;
                }
                if (status == net::ReadStatus::Error)
                    fatal("connection to server lost");
                reader_.feed(bytes.data(), bytes.size());
                if (!drainFrames())
                    return 1;
            }
            if (!outbox_.empty() &&
                conn_.writeSome(outbox_) == net::WriteStatus::Error)
                fatal("connection to server lost");
            const uint64_t now = telemetry::monotonicNanos();
            if (static_cast<double>(now - last_heartbeat) * 1e-9 >
                config_.heartbeatSeconds) {
                send(FrameType::Heartbeat, "");
                last_heartbeat = now;
            }
        }
    }

  private:
    void
    send(FrameType type, const std::string &payload)
    {
        outbox_ +=
            net::encodeFrame(static_cast<uint32_t>(type), payload);
    }

    /** Drain buffered frames; false means exit with an error. */
    bool
    drainFrames()
    {
        net::Frame frame;
        for (;;) {
            const net::FrameReader::Status status =
                reader_.next(frame);
            if (status == net::FrameReader::Status::NeedMore)
                return true;
            if (status == net::FrameReader::Status::Error) {
                warn(msg("protocol error from server: ",
                         reader_.error()));
                return false;
            }
            if (!handleFrame(frame))
                return false;
        }
    }

    bool
    handleFrame(const net::Frame &frame)
    {
        std::string error;
        switch (static_cast<FrameType>(frame.type)) {
          case FrameType::HelloAck:
            send(FrameType::WorkerReady, "");
            return true;
          case FrameType::Heartbeat:
            return true;
          case FrameType::ShardAssign: {
            ShardAssignMsg assign;
            if (!decodeShardAssign(frame.payload, assign, error)) {
                warn(msg("bad shard assignment: ", error));
                return false;
            }
            ++assignmentsSeen_;
            if (config_.crashOnShard != 0 &&
                assignmentsSeen_ == config_.crashOnShard) {
                // Test hook: die abruptly mid-shard, as a crashed or
                // OOM-killed worker would. No reply, no cleanup.
                std::_Exit(3);
            }
            runShard(assign);
            send(FrameType::WorkerReady, "");
            return true;
          }
          case FrameType::ErrorMsg: {
            ErrorMsgMsg message;
            if (decodeErrorMsg(frame.payload, message, error))
                warn(msg("server error: ", message.text));
            return false;
          }
          default:
            warn(msg("unexpected frame type ", frame.type,
                     " from server"));
            return false;
        }
    }

    WorkerCampaign &
    campaignFor(const ShardAssignMsg &assign)
    {
        const auto it = campaigns_.find(assign.campaignId);
        if (it != campaigns_.end())
            return *it->second;
        // Bound the cache: stale campaigns keep whole checkpoint sets
        // alive; a worker only ever serves a few concurrently.
        if (campaigns_.size() >= 4)
            campaigns_.clear();
        auto campaign = std::make_unique<WorkerCampaign>();
        campaign->params = assign.params;
        core::CampaignConfig config = buildCampaign(assign.params);
        const uint64_t hash = core::campaignConfigHash(config);
        if (hash != assign.params.configHash)
            fatal(msg("campaign config hash mismatch (server ",
                      assign.params.configHash, ", worker ", hash,
                      "); worker and server builds are skewed"));
        campaign->executor = std::make_unique<core::ShardExecutor>(
            config, assign.params.seed, assign.params.checkpoint);
        return *campaigns_
                    .emplace(assign.campaignId, std::move(campaign))
                    .first->second;
    }

    void
    runShard(const ShardAssignMsg &assign)
    {
        WorkerCampaign &campaign = campaignFor(assign);
        const core::ShardExecutor &executor = *campaign.executor;
        ShardResultMsg result;
        result.campaignId = assign.campaignId;
        result.session = assign.session;
        result.replicateBegin = assign.replicateBegin;
        result.replicateEnd = assign.replicateEnd;

        const std::vector<uint8_t> *checkpoint = nullptr;
        if (assign.params.checkpoint) {
            PrefixEntry &entry = campaign.prefixes[assign.session];
            if (entry.checkpoint.empty()) {
                // Seal into a dedicated telemetry shard so the server
                // can reproduce the local once-per-session prefix
                // accounting (it keeps the first blob per session).
                telemetry::MetricShard prefix_shard;
                {
                    const telemetry::ShardScope scope(&prefix_shard);
                    entry.checkpoint =
                        executor.sealPrefix(assign.session);
                }
                entry.telemetryBlob = encodeMetricShard(prefix_shard);
            }
            if (!entry.telemetryBlob.empty()) {
                result.prefixTelemetry =
                    std::move(entry.telemetryBlob);
                entry.telemetryBlob.clear();
            }
            checkpoint = &entry.checkpoint;
        }

        telemetry::MetricShard shard_telemetry;
        {
            const telemetry::ShardScope scope(&shard_telemetry);
            for (uint32_t replicate = assign.replicateBegin;
                 replicate < assign.replicateEnd; ++replicate) {
                UnitResultMsg unit;
                unit.replicate = replicate;
                std::unique_ptr<trace::TraceBuffer> buffer;
                if (assign.params.wantTrace) {
                    buffer = std::make_unique<trace::TraceBuffer>(
                        assign.params.traceBufferEvents);
                    executor.stampBufferInfo(*buffer, assign.session,
                                             replicate);
                }
                unit.result = executor.runUnitRecorded(
                    assign.session, replicate, buffer.get(),
                    checkpoint);
                if (buffer != nullptr) {
                    unit.traceEventCount = buffer->events().size();
                    unit.traceBytes =
                        trace::TraceWriter::encodeUnit(*buffer);
                }
                result.units.push_back(std::move(unit));
            }
        }
        result.shardTelemetry = encodeMetricShard(shard_telemetry);
        send(FrameType::ShardResult, encodeShardResult(result));
    }

    WorkerConfig config_;
    net::TcpConnection conn_;
    net::FrameReader reader_;
    std::string outbox_;
    std::map<uint64_t, std::unique_ptr<WorkerCampaign>> campaigns_;
    unsigned assignmentsSeen_ = 0;
};

} // namespace

int
runWorker(const WorkerConfig &config)
{
    Worker worker(config);
    return worker.run();
}

} // namespace xser::service
