/**
 * @file
 * xser-server event loop implementation.
 */

#include "service/server.hh"

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/campaign_report.hh"
#include "core/parallel_campaign.hh"
#include "core/report_export.hh"
#include "core/run_manifest.hh"
#include "mem/edac_reporter.hh"
#include "mem/memory_system.hh"
#include "net/frame.hh"
#include "net/socket.hh"
#include "service/protocol.hh"
#include "sim/logging.hh"
#include "telemetry/metrics.hh"
#include "telemetry/stopwatch.hh"
#include "trace/trace_writer.hh"

namespace xser::service {

volatile std::sig_atomic_t serverShutdownFlag = 0;

namespace {

/** Bytes of one ArtifactChunk payload. */
constexpr size_t artifactChunkBytes = size_t(64) * 1024;

/** Stop enqueueing artifact chunks while an outbox holds this much. */
constexpr size_t outboxHighWater = size_t(256) * 1024;

/** One queued (session, replicate-range) shard. */
struct PendingShard {
    uint32_t session = 0;
    uint32_t replicateBegin = 0;
    uint32_t replicateEnd = 0;
};

/** One work unit's recorded outcome. */
struct UnitSlot {
    bool done = false;
    core::SessionResult result;
    uint64_t traceEventCount = 0;
    std::string traceBytes;
};

/** One campaign's full server-side state. */
struct Campaign {
    uint64_t id = 0;
    CampaignParams params;
    std::string tracePath;
    core::CampaignConfig config;
    size_t numSessions = 0;

    std::deque<PendingShard> pending;
    std::vector<UnitSlot> units; ///< replicate-major, like local runs
    size_t unitsDone = 0;
    std::vector<bool> prefixTelemetrySeen;
    /** Single-sharded sink for decoded worker telemetry + merges. */
    std::unique_ptr<telemetry::MetricRegistry> registry;
    std::set<uint64_t> workersSeen;
    telemetry::Stopwatch elapsed;

    bool finished = false;
    bool failed = false;
    std::string failure;
    std::string report;
    std::string traceFile;
    std::string manifest;
};

/** One connected peer. */
struct Connection {
    uint64_t id = 0;
    net::TcpConnection conn;
    net::FrameReader reader;
    std::string outbox;
    enum class Kind { Pending, Client, Worker };
    Kind kind = Kind::Pending;
    uint64_t connectedNanos = 0;
    uint64_t lastSeenNanos = 0;
    bool dead = false;

    /* Worker state. */
    bool busy = false;
    uint64_t shardCampaign = 0;
    PendingShard shard;
    /** Sessions this worker has prefixed, per campaign (affinity). */
    std::map<uint64_t, std::set<uint32_t>> sessionsServed;

    /* Client state. */
    uint64_t watching = 0;
    std::deque<ArtifactKind> artifactQueue;
    size_t artifactOffset = 0;
    bool doneQueued = false;
};

class Server
{
  public:
    explicit Server(const ServerConfig &config) : config_(config) {}

    int
    run()
    {
        listener_ =
            net::TcpListener::listen(config_.host, config_.port);
        if (!config_.portFile.empty())
            core::writeFile(config_.portFile,
                            std::to_string(listener_.boundPort()) +
                                "\n");
        inform(msg("xser-server listening on ", config_.host, ":",
                   listener_.boundPort()));

        while (!exitReady()) {
            if (serverShutdownFlag != 0 && !draining_)
                beginDrain();
            pollOnce();
            assignWork();
            fillArtifacts();
            reapConnections();
            enforceTimeouts();
            if (draining_)
                drainStep();
        }
        return 0;
    }

  private:
    void
    pollOnce()
    {
        std::vector<net::PollItem> items;
        std::vector<Connection *> owners;
        if (listener_.open()) {
            net::PollItem item;
            item.fd = listener_.fd();
            item.wantRead = true;
            items.push_back(item);
            owners.push_back(nullptr);
        }
        for (auto &entry : connections_) {
            Connection &connection = *entry.second;
            if (connection.dead)
                continue;
            net::PollItem item;
            item.fd = connection.conn.fd();
            item.wantRead = true;
            item.wantWrite = !connection.outbox.empty();
            items.push_back(item);
            owners.push_back(&connection);
        }
        net::pollSockets(items, 200);
        for (size_t i = 0; i < items.size(); ++i) {
            if (owners[i] == nullptr) {
                if (items[i].canRead)
                    acceptPending();
                continue;
            }
            Connection &connection = *owners[i];
            if (items[i].canRead)
                readFrom(connection);
            if (!connection.dead && items[i].canWrite &&
                !connection.outbox.empty()) {
                if (connection.conn.writeSome(connection.outbox) ==
                    net::WriteStatus::Error)
                    connection.dead = true;
            }
            if (items[i].hangup && connection.outbox.empty())
                connection.dead = true;
        }
    }

    void
    acceptPending()
    {
        for (;;) {
            net::TcpConnection accepted = listener_.accept();
            if (!accepted.open())
                return;
            auto connection = std::make_unique<Connection>();
            connection->id = nextConnectionId_++;
            connection->conn = std::move(accepted);
            connection->connectedNanos = telemetry::monotonicNanos();
            connection->lastSeenNanos = connection->connectedNanos;
            connections_.emplace(connection->id,
                                 std::move(connection));
        }
    }

    void
    readFrom(Connection &connection)
    {
        std::string bytes;
        const net::ReadStatus status = connection.conn.readSome(bytes);
        if (status == net::ReadStatus::Closed ||
            status == net::ReadStatus::Error) {
            connection.dead = true;
            return;
        }
        if (bytes.empty())
            return;
        connection.lastSeenNanos = telemetry::monotonicNanos();
        connection.reader.feed(bytes.data(), bytes.size());
        net::Frame frame;
        for (;;) {
            const net::FrameReader::Status next =
                connection.reader.next(frame);
            if (next == net::FrameReader::Status::NeedMore)
                return;
            if (next == net::FrameReader::Status::Error) {
                warn(msg("dropping connection ", connection.id, ": ",
                         connection.reader.error()));
                connection.dead = true;
                return;
            }
            handleFrame(connection, frame);
            if (connection.dead)
                return;
        }
    }

    void
    send(Connection &connection, FrameType type,
         const std::string &payload)
    {
        connection.outbox +=
            net::encodeFrame(static_cast<uint32_t>(type), payload);
    }

    void
    protocolError(Connection &connection, const std::string &text)
    {
        warn(msg("connection ", connection.id, ": ", text));
        send(connection, FrameType::ErrorMsg,
             encodeErrorMsg({1, text}));
        connection.dead = true;
    }

    void
    handleFrame(Connection &connection, const net::Frame &frame)
    {
        const FrameType type = static_cast<FrameType>(frame.type);
        std::string error;
        if (connection.kind == Connection::Kind::Pending) {
            HelloMsg hello;
            if (type != FrameType::Hello ||
                !decodeHello(frame.payload, hello, error)) {
                protocolError(connection,
                              error.empty()
                                  ? "expected hello as first frame"
                                  : error);
                return;
            }
            connection.kind = hello.role == PeerRole::Worker
                                  ? Connection::Kind::Worker
                                  : Connection::Kind::Client;
            send(connection, FrameType::HelloAck, "");
            return;
        }
        switch (type) {
          case FrameType::Heartbeat:
            return;
          case FrameType::Submit:
            handleSubmit(connection, frame.payload);
            return;
          case FrameType::Attach:
            handleAttach(connection, frame.payload);
            return;
          case FrameType::WorkerReady:
            if (connection.kind != Connection::Kind::Worker) {
                protocolError(connection,
                              "worker-ready from a client");
                return;
            }
            return; // assignWork() sees the idle worker each pass
          case FrameType::ShardResult:
            handleShardResult(connection, frame.payload);
            return;
          case FrameType::ShutdownRequest:
            inform("shutdown requested by client");
            send(connection, FrameType::ShutdownAck, "");
            serverShutdownFlag = 1;
            return;
          case FrameType::ErrorMsg: {
            ErrorMsgMsg message;
            if (decodeErrorMsg(frame.payload, message, error))
                warn(msg("peer error on connection ", connection.id,
                         ": ", message.text));
            connection.dead = true;
            return;
          }
          default:
            protocolError(connection,
                          msg("unexpected frame type ", frame.type));
        }
    }

    void
    handleSubmit(Connection &connection, const std::string &payload)
    {
        SubmitMsg submit;
        std::string error;
        if (!decodeSubmit(payload, submit, error)) {
            protocolError(connection, error);
            return;
        }
        if (draining_) {
            protocolError(connection, "server is shutting down");
            return;
        }
        core::CampaignConfig config = buildCampaign(submit.params);
        const uint64_t hash = core::campaignConfigHash(config);
        if (hash != submit.params.configHash) {
            protocolError(
                connection,
                msg("campaign config hash mismatch (client ",
                    submit.params.configHash, ", server ", hash,
                    "); client and server builds are skewed"));
            return;
        }
        auto campaign = std::make_unique<Campaign>();
        campaign->id = nextCampaignId_++;
        campaign->params = submit.params;
        campaign->tracePath = submit.tracePath;
        campaign->config = std::move(config);
        campaign->numSessions = campaign->config.sessions.size();
        campaign->units.resize(campaign->numSessions *
                               submit.params.replicates);
        campaign->prefixTelemetrySeen.assign(campaign->numSessions,
                                             false);
        if (submit.params.wantMetrics)
            campaign->registry =
                std::make_unique<telemetry::MetricRegistry>(1);
        for (uint32_t session = 0;
             session < campaign->numSessions; ++session) {
            for (uint32_t begin = 0;
                 begin < submit.params.replicates;
                 begin += config_.shardReplicates) {
                PendingShard shard;
                shard.session = session;
                shard.replicateBegin = begin;
                shard.replicateEnd =
                    std::min(begin + config_.shardReplicates,
                             submit.params.replicates);
                campaign->pending.push_back(shard);
            }
        }
        const uint64_t id = campaign->id;
        const uint64_t total = campaign->units.size();
        inform(msg("campaign ", id, " accepted: ", total, " units in ",
                   campaign->pending.size(), " shards"));
        campaigns_.emplace(id, std::move(campaign));
        connection.watching = id;
        send(connection, FrameType::Accepted,
             encodeAccepted({id, total}));
    }

    void
    handleAttach(Connection &connection, const std::string &payload)
    {
        AttachMsg attach;
        std::string error;
        if (!decodeAttach(payload, attach, error)) {
            protocolError(connection, error);
            return;
        }
        const auto it = campaigns_.find(attach.campaignId);
        if (it == campaigns_.end()) {
            protocolError(connection, msg("unknown campaign ",
                                          attach.campaignId));
            return;
        }
        Campaign &campaign = *it->second;
        connection.watching = campaign.id;
        // A re-attaching client starts from scratch: reset any stream
        // state and send the current standing immediately.
        connection.artifactQueue.clear();
        connection.artifactOffset = 0;
        connection.doneQueued = false;
        send(connection, FrameType::Progress,
             encodeProgress({campaign.id, campaign.unitsDone,
                             campaign.units.size()}));
        if (campaign.failed) {
            send(connection, FrameType::CampaignDone,
                 encodeCampaignDone(
                     {campaign.id, false, campaign.failure}));
            connection.doneQueued = true;
        } else if (campaign.finished) {
            beginArtifactStream(connection, campaign);
        }
    }

    void
    handleShardResult(Connection &connection,
                      const std::string &payload)
    {
        if (connection.kind != Connection::Kind::Worker ||
            !connection.busy) {
            protocolError(connection, "unexpected shard result");
            return;
        }
        ShardResultMsg result;
        std::string error;
        if (!decodeShardResult(payload, result, error)) {
            protocolError(connection, error);
            return;
        }
        const PendingShard &shard = connection.shard;
        if (result.campaignId != connection.shardCampaign ||
            result.session != shard.session ||
            result.replicateBegin != shard.replicateBegin ||
            result.replicateEnd != shard.replicateEnd ||
            result.units.size() !=
                shard.replicateEnd - shard.replicateBegin) {
            protocolError(connection,
                          "shard result does not match assignment");
            return;
        }
        const auto it = campaigns_.find(result.campaignId);
        if (it == campaigns_.end()) {
            connection.busy = false;
            return;
        }
        Campaign &campaign = *it->second;
        if (campaign.finished || campaign.failed) {
            connection.busy = false;
            return;
        }
        // Validate the whole message before touching campaign state:
        // a rejected result must leave nothing applied, so the reaper
        // can requeue the shard coordinates cleanly (busy stays set
        // until the result is accepted).
        std::set<uint32_t> seen;
        for (const UnitResultMsg &unit : result.units) {
            if (unit.replicate < shard.replicateBegin ||
                unit.replicate >= shard.replicateEnd ||
                !seen.insert(unit.replicate).second) {
                protocolError(connection,
                              "unit outside the assigned shard");
                return;
            }
            const size_t index =
                static_cast<size_t>(unit.replicate) *
                    campaign.numSessions +
                shard.session;
            if (campaign.units[index].done) {
                protocolError(connection, "duplicate unit result");
                return;
            }
        }
        connection.busy = false;
        campaign.workersSeen.insert(connection.id);
        for (const UnitResultMsg &unit : result.units) {
            const size_t index =
                static_cast<size_t>(unit.replicate) *
                    campaign.numSessions +
                shard.session;
            UnitSlot &slot = campaign.units[index];
            slot.done = true;
            slot.result = unit.result;
            slot.traceEventCount = unit.traceEventCount;
            slot.traceBytes = unit.traceBytes;
            ++campaign.unitsDone;
        }
        absorbTelemetry(campaign, result);
        broadcastProgress(campaign);
        if (campaign.unitsDone == campaign.units.size())
            finalizeCampaign(campaign);
    }

    void
    absorbTelemetry(Campaign &campaign, const ShardResultMsg &result)
    {
        if (campaign.registry == nullptr)
            return;
        std::string error;
        if (!result.prefixTelemetry.empty() &&
            !campaign.prefixTelemetrySeen[result.session]) {
            telemetry::MetricShard decoded;
            if (!decodeMetricShard(result.prefixTelemetry, decoded,
                                   error)) {
                warn(msg("campaign ", campaign.id,
                         ": dropping prefix telemetry: ", error));
            } else {
                // First blob per session wins; sealing is
                // deterministic, so duplicates are bit-identical
                // and dropping them reproduces the local once-per-
                // session accounting.
                campaign.prefixTelemetrySeen[result.session] = true;
                campaign.registry->shard(0).merge(decoded);
            }
        }
        telemetry::MetricShard decoded;
        if (!decodeMetricShard(result.shardTelemetry, decoded, error))
            warn(msg("campaign ", campaign.id,
                     ": dropping shard telemetry: ", error));
        else
            campaign.registry->shard(0).merge(decoded);
    }

    void
    broadcastProgress(const Campaign &campaign)
    {
        const std::string payload = encodeProgress(
            {campaign.id, campaign.unitsDone, campaign.units.size()});
        for (auto &entry : connections_) {
            Connection &connection = *entry.second;
            if (!connection.dead &&
                connection.kind == Connection::Kind::Client &&
                connection.watching == campaign.id)
                send(connection, FrameType::Progress, payload);
        }
    }

    void
    finalizeCampaign(Campaign &campaign)
    {
        const telemetry::ShardScope scope(
            campaign.registry != nullptr
                ? &campaign.registry->shard(0)
                : nullptr);
        core::ReplicatedCampaignResult sweep;
        sweep.replicates.resize(campaign.params.replicates);
        for (size_t unit = 0; unit < campaign.units.size(); ++unit)
            sweep.replicates[unit / campaign.numSessions]
                .sessions.push_back(
                    std::move(campaign.units[unit].result));
        {
            // Canonical merge order: replicate-major, session-minor,
            // exactly as ParallelCampaignRunner::executeAll merges.
            const telemetry::ScopedPhase timer(
                telemetry::Phase::Merge);
            sweep.sessions.resize(campaign.numSessions);
            for (const auto &replicate : sweep.replicates)
                for (size_t s = 0; s < replicate.sessions.size(); ++s)
                    sweep.sessions[s].add(replicate.sessions[s]);
        }
        if (campaign.params.wantTrace) {
            const telemetry::ScopedPhase timer(
                telemetry::Phase::TraceWrite);
            // The array table is a pure function of the platform
            // config; a throwaway hierarchy provides it, exactly as
            // the local trace path does.
            mem::EdacReporter reporter;
            mem::MemorySystem memory(campaign.config.platform.memory,
                                     &reporter);
            campaign.traceFile = trace::TraceWriter::encodeHeader(
                campaign.params.seed, campaign.params.configHash,
                memory.traceArrayTable(), campaign.units.size());
            for (const UnitSlot &slot : campaign.units) {
                telemetry::count(
                    telemetry::Counter::TraceEventsMerged,
                    slot.traceEventCount);
                campaign.traceFile += slot.traceBytes;
            }
        }
        campaign.report.clear();
        if (campaign.params.wantTrace)
            campaign.report += core::formatTraceLine(
                campaign.units.size(), campaign.tracePath);
        campaign.report += core::formatCampaignReport(sweep);
        if (campaign.registry != nullptr) {
            core::ManifestRunInfo info;
            info.tool = "xser campaign";
            info.configHash = campaign.params.configHash;
            info.seed = campaign.params.seed;
            info.scale = campaign.params.scale;
            info.sessions =
                static_cast<unsigned>(campaign.numSessions);
            info.replicates = campaign.params.replicates;
            info.fastpath = campaign.params.fastpath;
            info.checkpoint = campaign.params.checkpoint;
            campaign.manifest = core::renderRunManifest(
                info, sweep.sessions, campaign.registry.get(),
                static_cast<unsigned>(campaign.workersSeen.size()),
                campaign.elapsed.seconds());
        }
        campaign.finished = true;
        ++campaignsFinished_;
        inform(msg("campaign ", campaign.id, " finished (",
                   campaign.units.size(), " units)"));
        for (auto &entry : connections_) {
            Connection &connection = *entry.second;
            if (!connection.dead &&
                connection.kind == Connection::Kind::Client &&
                connection.watching == campaign.id)
                beginArtifactStream(connection, campaign);
        }
    }

    void
    beginArtifactStream(Connection &connection, const Campaign &campaign)
    {
        connection.artifactQueue.clear();
        connection.artifactOffset = 0;
        connection.doneQueued = false;
        connection.artifactQueue.push_back(ArtifactKind::Report);
        if (campaign.params.wantTrace)
            connection.artifactQueue.push_back(ArtifactKind::Trace);
        if (campaign.params.wantMetrics)
            connection.artifactQueue.push_back(ArtifactKind::Manifest);
    }

    const std::string &
    artifactBytes(const Campaign &campaign, ArtifactKind kind) const
    {
        switch (kind) {
          case ArtifactKind::Report:
            return campaign.report;
          case ArtifactKind::Trace:
            return campaign.traceFile;
          case ArtifactKind::Manifest:
            return campaign.manifest;
        }
        panic("unreachable artifact kind");
    }

    /**
     * Stream queued artifacts in bounded chunks, filling each client's
     * outbox only while it is below the high-water mark -- a slow
     * client throttles its own stream instead of ballooning server
     * memory.
     */
    void
    fillArtifacts()
    {
        for (auto &entry : connections_) {
            Connection &connection = *entry.second;
            if (connection.dead || connection.watching == 0)
                continue;
            const auto it = campaigns_.find(connection.watching);
            if (it == campaigns_.end())
                continue;
            const Campaign &campaign = *it->second;
            while (!connection.artifactQueue.empty() &&
                   connection.outbox.size() < outboxHighWater) {
                const ArtifactKind kind =
                    connection.artifactQueue.front();
                const std::string &bytes =
                    artifactBytes(campaign, kind);
                const size_t remaining =
                    bytes.size() - connection.artifactOffset;
                const size_t take =
                    std::min(remaining, artifactChunkBytes);
                ArtifactChunkMsg chunk;
                chunk.campaignId = campaign.id;
                chunk.kind = kind;
                chunk.last = take == remaining;
                chunk.bytes =
                    bytes.substr(connection.artifactOffset, take);
                send(connection, FrameType::ArtifactChunk,
                     encodeArtifactChunk(chunk));
                connection.artifactOffset += take;
                if (chunk.last) {
                    connection.artifactQueue.pop_front();
                    connection.artifactOffset = 0;
                }
            }
            if (connection.artifactQueue.empty() &&
                !connection.doneQueued && campaign.finished) {
                send(connection, FrameType::CampaignDone,
                     encodeCampaignDone({campaign.id, true, ""}));
                connection.doneQueued = true;
            }
        }
    }

    void
    assignWork()
    {
        for (auto &entry : connections_) {
            Connection &connection = *entry.second;
            if (connection.dead ||
                connection.kind != Connection::Kind::Worker ||
                connection.busy)
                continue;
            if (draining_)
                continue; // drain in-flight work, start nothing new
            Campaign *chosen = nullptr;
            for (auto &campaign_entry : campaigns_) {
                Campaign &campaign = *campaign_entry.second;
                if (!campaign.finished && !campaign.failed &&
                    !campaign.pending.empty()) {
                    chosen = &campaign;
                    break;
                }
            }
            if (chosen == nullptr)
                return;
            // Session affinity: sealing a golden prefix is a fixed
            // per-(worker, session) cost, so (1) prefer a shard whose
            // session this worker has already prefixed, then (2) a
            // session no worker has touched yet -- spreading fresh
            // sessions instead of piling every worker onto the queue
            // front. Any shard is still stealable -- an idle worker
            // falls through to the queue front -- and the canonical
            // merge makes the choice invisible in the output bytes.
            auto it = chosen->pending.begin();
            if (chosen->params.checkpoint) {
                const std::set<uint32_t> &served =
                    connection.sessionsServed[chosen->id];
                std::set<uint32_t> anyone;
                for (const auto &other : connections_)
                    if (other.second->kind == Connection::Kind::Worker)
                        for (uint32_t session :
                             other.second->sessionsServed[chosen->id])
                            anyone.insert(session);
                auto fresh = chosen->pending.end();
                for (auto cand = chosen->pending.begin();
                     cand != chosen->pending.end(); ++cand) {
                    if (served.count(cand->session) != 0) {
                        fresh = cand;
                        break;
                    }
                    if (fresh == chosen->pending.end() &&
                        anyone.count(cand->session) == 0)
                        fresh = cand;
                }
                if (fresh != chosen->pending.end())
                    it = fresh;
            }
            const PendingShard shard = *it;
            chosen->pending.erase(it);
            connection.sessionsServed[chosen->id].insert(shard.session);
            connection.busy = true;
            connection.shardCampaign = chosen->id;
            connection.shard = shard;
            ShardAssignMsg assign;
            assign.campaignId = chosen->id;
            assign.params = chosen->params;
            assign.session = shard.session;
            assign.replicateBegin = shard.replicateBegin;
            assign.replicateEnd = shard.replicateEnd;
            send(connection, FrameType::ShardAssign,
                 encodeShardAssign(assign));
        }
    }

    void
    reapConnections()
    {
        for (auto it = connections_.begin();
             it != connections_.end();) {
            Connection &connection = *it->second;
            if (!connection.dead) {
                ++it;
                continue;
            }
            if (connection.busy)
                requeueShard(connection);
            it = connections_.erase(it);
        }
    }

    void
    requeueShard(const Connection &connection)
    {
        const auto it = campaigns_.find(connection.shardCampaign);
        if (it == campaigns_.end())
            return;
        Campaign &campaign = *it->second;
        if (campaign.finished || campaign.failed)
            return;
        warn(msg("worker connection ", connection.id,
                 " lost mid-shard; requeueing campaign ", campaign.id,
                 " session ", connection.shard.session,
                 " replicates [", connection.shard.replicateBegin,
                 ", ", connection.shard.replicateEnd, ")"));
        // Front of the queue: the lost shard is the oldest
        // outstanding work and should not starve behind the backlog.
        campaign.pending.push_front(connection.shard);
    }

    void
    enforceTimeouts()
    {
        const uint64_t now = telemetry::monotonicNanos();
        const auto seconds = [now](uint64_t since) {
            return static_cast<double>(now - since) * 1e-9;
        };
        for (auto &entry : connections_) {
            Connection &connection = *entry.second;
            if (connection.dead)
                continue;
            if (connection.kind == Connection::Kind::Pending &&
                seconds(connection.connectedNanos) >
                    config_.handshakeTimeoutSeconds) {
                warn(msg("connection ", connection.id,
                         ": handshake timeout"));
                connection.dead = true;
                continue;
            }
            if (connection.kind != Connection::Kind::Pending &&
                !connection.busy &&
                seconds(connection.lastSeenNanos) >
                    config_.idleTimeoutSeconds) {
                warn(msg("connection ", connection.id,
                         ": idle timeout"));
                connection.dead = true;
            }
        }
    }

    void
    beginDrain()
    {
        draining_ = true;
        listener_.close();
        inform("draining: waiting for in-flight shards");
    }

    void
    drainStep()
    {
        for (const auto &entry : connections_)
            if (!entry.second->dead && entry.second->busy)
                return; // still draining
        for (auto &entry : campaigns_) {
            Campaign &campaign = *entry.second;
            if (campaign.finished || campaign.failed)
                continue;
            campaign.failed = true;
            campaign.failure = "server shut down before completion";
            const std::string payload = encodeCampaignDone(
                {campaign.id, false, campaign.failure});
            for (auto &conn_entry : connections_) {
                Connection &connection = *conn_entry.second;
                if (!connection.dead &&
                    connection.kind == Connection::Kind::Client &&
                    connection.watching == campaign.id)
                    send(connection, FrameType::CampaignDone,
                         payload);
            }
        }
        drained_ = true;
    }

    bool
    outboxesEmpty() const
    {
        for (const auto &entry : connections_) {
            const Connection &connection = *entry.second;
            if (connection.dead)
                continue;
            if (!connection.outbox.empty() ||
                !connection.artifactQueue.empty())
                return false;
        }
        return true;
    }

    bool
    exitReady() const
    {
        if (drained_ && outboxesEmpty())
            return true;
        return config_.maxCampaigns != 0 &&
               campaignsFinished_ >= config_.maxCampaigns &&
               outboxesEmpty();
    }

    ServerConfig config_;
    net::TcpListener listener_;
    std::map<uint64_t, std::unique_ptr<Connection>> connections_;
    std::map<uint64_t, std::unique_ptr<Campaign>> campaigns_;
    uint64_t nextConnectionId_ = 1;
    uint64_t nextCampaignId_ = 1;
    unsigned campaignsFinished_ = 0;
    bool draining_ = false;
    bool drained_ = false;
};

} // namespace

int
runServer(const ServerConfig &config)
{
    Server server(config);
    return server.run();
}

} // namespace xser::service
