/**
 * @file
 * The xser-worker shard executor: connects to an xser-server, pulls
 * (session, replicate-range) shards, runs them through
 * core::ShardExecutor, and answers each with one atomic ShardResult
 * frame (DESIGN.md section 12).
 *
 * The worker is single-threaded: it polls the connection while idle
 * (heartbeating so the server's idle timeout never fires) and computes
 * synchronously while assigned -- the server knows not to expect
 * liveness from a busy worker. Golden-prefix checkpoints are sealed
 * once per (campaign, session) and cached, mirroring the local
 * runner's phase 1.
 */

#ifndef XSER_SERVICE_WORKER_HH
#define XSER_SERVICE_WORKER_HH

#include <cstdint>
#include <string>

namespace xser::service {

/** xser-worker configuration. */
struct WorkerConfig {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    /**
     * Test hook: exit the process (simulating a crash) upon receiving
     * the Nth shard assignment, before replying. 0 disables. The
     * requeue ctests use this to prove a mid-shard worker death never
     * changes campaign bytes.
     */
    unsigned crashOnShard = 0;
    /** Seconds between idle heartbeats. */
    double heartbeatSeconds = 2.0;
};

/** Run the worker loop; returns the process exit code. */
int runWorker(const WorkerConfig &config);

} // namespace xser::service

#endif // XSER_SERVICE_WORKER_HH
