/**
 * @file
 * The xser-server campaign service: a single-threaded poll() event
 * loop that owns a queue of (session, replicate-range) shards, hands
 * them to connected workers, and performs the canonical
 * replicate-major merge so the finished artifacts -- report text,
 * .xtrace bytes, run manifest -- are bit-identical to a local
 * `xser campaign --jobs N` run (DESIGN.md section 12).
 *
 * Fault model: a worker that disconnects mid-shard contributes
 * nothing (results travel in one atomic ShardResult frame), so the
 * server simply requeues the shard's coordinates for the next idle
 * worker; determinism of core::ShardExecutor guarantees the re-run is
 * bit-identical to what the dead worker would have produced. Clients
 * may disconnect and re-attach by campaign id at any time.
 */

#ifndef XSER_SERVICE_SERVER_HH
#define XSER_SERVICE_SERVER_HH

#include <csignal>
#include <cstdint>
#include <string>

namespace xser::service {

/** xser-server configuration. */
struct ServerConfig {
    /** Listen address (numeric IPv4). */
    std::string host = "127.0.0.1";
    /** Listen port; 0 picks a free port (see portFile). */
    uint16_t port = 0;
    /** When nonempty, the bound port is written here after listen. */
    std::string portFile;
    /**
     * Exit once this many campaigns have finished and their artifacts
     * have drained to the watching clients; 0 runs forever. Tests use
     * this for a clean, deterministic server exit.
     */
    unsigned maxCampaigns = 0;
    /** Replicates per shard (shard = session x replicate range). */
    uint32_t shardReplicates = 1;
    /** Seconds a connection may sit un-helloed before being dropped. */
    double handshakeTimeoutSeconds = 10.0;
    /**
     * Seconds of silence after which an idle connection is dropped.
     * Never applied to a worker with an in-flight shard (a
     * single-threaded worker cannot heartbeat while computing).
     */
    double idleTimeoutSeconds = 60.0;
};

/**
 * Flag a signal handler sets to request a graceful drain: finish
 * in-flight shards, fail unfinished campaigns, flush, exit.
 */
extern volatile std::sig_atomic_t serverShutdownFlag;

/** Run the server loop; returns the process exit code. */
int runServer(const ServerConfig &config);

} // namespace xser::service

#endif // XSER_SERVICE_SERVER_HH
