/**
 * @file
 * xser-client implementation.
 */

#include "service/client.hh"

#include <array>
#include <cstdio>
#include <vector>

#include "core/report_export.hh"
#include "net/frame.hh"
#include "net/socket.hh"
#include "sim/logging.hh"
#include "telemetry/metrics.hh"
#include "telemetry/progress.hh"
#include "telemetry/stopwatch.hh"

namespace xser::service {

namespace {

/** Outcome of waiting for one frame. */
enum class PumpStatus {
    Frame,   ///< a frame was extracted
    Timeout, ///< deadline passed with no complete frame
    Closed,  ///< the server closed the connection
    Error,   ///< read/write/protocol failure
};

/** Sleep without a connection (reconnect backoff). */
void
sleepSeconds(double seconds)
{
    std::vector<net::PollItem> none;
    net::pollSockets(none, static_cast<int>(seconds * 1000.0));
}

class Client
{
  public:
    explicit Client(const ClientConfig &config) : config_(config) {}

    int
    run()
    {
        switch (config_.command) {
          case ClientCommand::Shutdown:
            return runShutdown();
          case ClientCommand::Attach:
            campaignId_ = config_.campaignId;
            return runCampaign();
          case ClientCommand::Run:
            return runCampaign();
        }
        return 1;
    }

  private:
    void
    send(FrameType type, const std::string &payload)
    {
        outbox_ +=
            net::encodeFrame(static_cast<uint32_t>(type), payload);
    }

    bool
    connectAndHello(std::string &error)
    {
        reader_ = net::FrameReader();
        outbox_.clear();
        conn_ = net::connectTo(config_.host, config_.port, error);
        if (!conn_.open())
            return false;
        send(FrameType::Hello, encodeHello({PeerRole::Client}));
        net::Frame frame;
        const PumpStatus status = nextFrame(frame, 10.0);
        if (status != PumpStatus::Frame ||
            static_cast<FrameType>(frame.type) != FrameType::HelloAck) {
            error = "handshake with server failed";
            return false;
        }
        return true;
    }

    /** Wait up to `timeout_seconds` for one complete frame. */
    PumpStatus
    nextFrame(net::Frame &frame, double timeout_seconds)
    {
        const telemetry::Stopwatch waited;
        for (;;) {
            const net::FrameReader::Status status =
                reader_.next(frame);
            if (status == net::FrameReader::Status::Ready)
                return PumpStatus::Frame;
            if (status == net::FrameReader::Status::Error) {
                warn(msg("protocol error from server: ",
                         reader_.error()));
                return PumpStatus::Error;
            }
            const double remaining =
                timeout_seconds - waited.seconds();
            if (remaining <= 0.0)
                return PumpStatus::Timeout;
            std::vector<net::PollItem> items(1);
            items[0].fd = conn_.fd();
            items[0].wantRead = true;
            items[0].wantWrite = !outbox_.empty();
            net::pollSockets(
                items,
                std::min(200, static_cast<int>(remaining * 1000.0) + 1));
            if (items[0].canWrite && !outbox_.empty() &&
                conn_.writeSome(outbox_) == net::WriteStatus::Error)
                return PumpStatus::Error;
            if (items[0].canRead) {
                std::string bytes;
                const net::ReadStatus read = conn_.readSome(bytes);
                if (read == net::ReadStatus::Closed)
                    return PumpStatus::Closed;
                if (read == net::ReadStatus::Error)
                    return PumpStatus::Error;
                reader_.feed(bytes.data(), bytes.size());
            }
        }
    }

    int
    runShutdown()
    {
        std::string error;
        if (!connectAndHello(error))
            fatal(msg("cannot reach server at ", config_.host, ":",
                      config_.port, ": ", error));
        send(FrameType::ShutdownRequest, "");
        net::Frame frame;
        for (;;) {
            const PumpStatus status = nextFrame(frame, 10.0);
            if (status == PumpStatus::Frame &&
                static_cast<FrameType>(frame.type) ==
                    FrameType::ShutdownAck) {
                inform("server acknowledged shutdown");
                return 0;
            }
            if (status == PumpStatus::Closed)
                return 0; // server exited before the ack flushed
            if (status != PumpStatus::Frame)
                fatal("no shutdown acknowledgement from server");
        }
    }

    int
    runCampaign()
    {
        // One initial attempt plus reconnect/resume by campaign id:
        // a dropped connection discards any partial artifact stream
        // and re-attaches from scratch.
        for (unsigned attempt = 0;
             attempt <= config_.reconnectAttempts; ++attempt) {
            if (attempt > 0) {
                warn(msg("connection lost; reconnect attempt ",
                         attempt, " of ", config_.reconnectAttempts));
                sleepSeconds(1.0);
            }
            std::string error;
            if (!connectAndHello(error)) {
                if (campaignId_ == 0)
                    fatal(msg("cannot reach server at ", config_.host,
                              ":", config_.port, ": ", error));
                continue;
            }
            if (campaignId_ == 0) {
                SubmitMsg submit;
                submit.params = config_.params;
                submit.tracePath = config_.tracePath;
                send(FrameType::Submit, encodeSubmit(submit));
            } else {
                send(FrameType::Attach,
                     encodeAttach({campaignId_}));
            }
            const int result = watch();
            if (result >= 0)
                return result;
            if (campaignId_ == 0)
                return 1; // lost before Accepted: nothing to resume
        }
        fatal("connection to server lost and could not be resumed");
    }

    /** Watch until a terminal frame; -1 means reconnect and resume. */
    int
    watch()
    {
        for (auto &artifact : artifacts_)
            artifact.clear();
        uint64_t last_heartbeat = telemetry::monotonicNanos();
        net::Frame frame;
        for (;;) {
            const PumpStatus status = nextFrame(frame, 1.0);
            if (status == PumpStatus::Closed ||
                status == PumpStatus::Error) {
                progress_.finish();
                return -1;
            }
            const uint64_t now = telemetry::monotonicNanos();
            if (static_cast<double>(now - last_heartbeat) * 1e-9 >
                2.0) {
                send(FrameType::Heartbeat, "");
                last_heartbeat = now;
            }
            if (status == PumpStatus::Timeout)
                continue;
            const int result = handleFrame(frame);
            if (result != -2)
                return result;
        }
    }

    /** Returns an exit code, -1 to reconnect, or -2 to keep going. */
    int
    handleFrame(const net::Frame &frame)
    {
        std::string error;
        switch (static_cast<FrameType>(frame.type)) {
          case FrameType::Heartbeat:
            return -2;
          case FrameType::Accepted: {
            AcceptedMsg accepted;
            if (!decodeAccepted(frame.payload, accepted, error)) {
                warn(error);
                return 1;
            }
            campaignId_ = accepted.campaignId;
            totalUnits_ = accepted.totalUnits;
            inform(msg("campaign ", campaignId_, " accepted (",
                       totalUnits_, " units)"));
            if (config_.detach) {
                std::printf("%llu\n",
                            static_cast<unsigned long long>(
                                campaignId_));
                return 0;
            }
            beginProgress();
            return -2;
          }
          case FrameType::Progress: {
            ProgressMsg progress;
            if (!decodeProgress(frame.payload, progress, error))
                return -2;
            totalUnits_ = progress.total;
            beginProgress();
            if (progress.done > progressDone_) {
                progress_.tick(progress.done - progressDone_);
                progressDone_ = progress.done;
            }
            return -2;
          }
          case FrameType::ArtifactChunk: {
            ArtifactChunkMsg chunk;
            if (!decodeArtifactChunk(frame.payload, chunk, error)) {
                warn(error);
                return 1;
            }
            artifacts_[static_cast<size_t>(chunk.kind)] +=
                chunk.bytes;
            return -2;
          }
          case FrameType::CampaignDone: {
            CampaignDoneMsg done;
            if (!decodeCampaignDone(frame.payload, done, error)) {
                warn(error);
                return 1;
            }
            progress_.finish();
            if (!done.ok) {
                warn(msg("campaign ", done.campaignId,
                         " failed: ", done.error));
                return 1;
            }
            return deliver();
          }
          case FrameType::ErrorMsg: {
            ErrorMsgMsg message;
            if (decodeErrorMsg(frame.payload, message, error))
                warn(msg("server refused the request: ",
                         message.text));
            progress_.finish();
            return 1;
          }
          default:
            warn(msg("unexpected frame type ", frame.type,
                     " from server"));
            return 1;
        }
    }

    void
    beginProgress()
    {
        if (progressBegun_ || !config_.progress ||
            !telemetry::progressSupported() ||
            Logger::global().level() == LogLevel::Quiet ||
            totalUnits_ == 0)
            return;
        progress_.begin("campaign", totalUnits_);
        progressBegun_ = true;
    }

    /** Write the received artifacts and print the report. */
    int
    deliver()
    {
        if (config_.params.wantTrace && !config_.tracePath.empty())
            core::writeFile(
                config_.tracePath,
                artifacts_[static_cast<size_t>(ArtifactKind::Trace)]);
        if (config_.params.wantMetrics &&
            !config_.metricsPath.empty())
            core::writeFile(
                config_.metricsPath,
                artifacts_[static_cast<size_t>(
                    ArtifactKind::Manifest)]);
        const std::string &report =
            artifacts_[static_cast<size_t>(ArtifactKind::Report)];
        std::fwrite(report.data(), 1, report.size(), stdout);
        return 0;
    }

    ClientConfig config_;
    net::TcpConnection conn_;
    net::FrameReader reader_;
    std::string outbox_;
    uint64_t campaignId_ = 0;
    uint64_t totalUnits_ = 0;
    uint64_t progressDone_ = 0;
    bool progressBegun_ = false;
    telemetry::ProgressMeter progress_;
    std::array<std::string, 3> artifacts_;
};

} // namespace

int
runClient(const ClientConfig &config)
{
    Client client(config);
    return client.run();
}

} // namespace xser::service
