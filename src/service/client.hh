/**
 * @file
 * The xser-client campaign submitter: sends a campaign to an
 * xser-server, streams progress, and receives the finished artifacts
 * -- printing the server-rendered report verbatim to stdout and
 * writing the .xtrace / manifest files locally, so its observable
 * output is byte-identical to a local `xser campaign` run (DESIGN.md
 * section 12; the CI determinism gate cmp's exactly this).
 *
 * If the connection drops mid-campaign the client reconnects and
 * re-attaches by campaign id, restarting the artifact stream from
 * scratch (chunks are self-delimiting, so a partial stream is simply
 * discarded).
 */

#ifndef XSER_SERVICE_CLIENT_HH
#define XSER_SERVICE_CLIENT_HH

#include <cstdint>
#include <string>

#include "service/protocol.hh"

namespace xser::service {

/** What xser-client has been asked to do. */
enum class ClientCommand {
    Run,      ///< submit a campaign and wait for the artifacts
    Attach,   ///< watch an existing campaign by id
    Shutdown, ///< ask the server to drain and exit
};

/** xser-client configuration. */
struct ClientConfig {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    ClientCommand command = ClientCommand::Run;
    CampaignParams params;
    /** Trace path: sent in Submit (named in the report's trace line)
     * and written locally when trace bytes arrive. */
    std::string tracePath;
    /** Local path for the received run manifest. */
    std::string metricsPath;
    /** Campaign id for ClientCommand::Attach. */
    uint64_t campaignId = 0;
    /** Print the campaign id after Accepted and exit immediately. */
    bool detach = false;
    /** Live progress meter on stderr (TTY only, --quiet wins). */
    bool progress = false;
    /** Reconnect attempts after a dropped connection. */
    unsigned reconnectAttempts = 5;
};

/** Run the client; returns the process exit code. */
int runClient(const ClientConfig &config);

} // namespace xser::service

#endif // XSER_SERVICE_CLIENT_HH
