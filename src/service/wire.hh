/**
 * @file
 * Wire primitives for protocol payloads: a little-endian writer and a
 * saturating, never-crashing reader (DESIGN.md section 12).
 *
 * Every protocol message body is built with WireWriter and decoded
 * with WireReader. The reader follows the core/checkpoint posture for
 * external input: an underrun or a malformed length poisons the
 * reader (ok() goes false, subsequent reads return zeros) instead of
 * touching out-of-bounds memory, so a truncated or corrupted payload
 * always surfaces as a clean protocol error.
 */

#ifndef XSER_SERVICE_WIRE_HH
#define XSER_SERVICE_WIRE_HH

#include <bit>
#include <cstdint>
#include <string>

namespace xser::service {

/** Append-only little-endian payload builder. */
class WireWriter
{
  public:
    void
    putU8(uint8_t value)
    {
        out_.push_back(static_cast<char>(value));
    }

    void
    putU32(uint32_t value)
    {
        for (unsigned i = 0; i < 4; ++i)
            out_.push_back(
                static_cast<char>((value >> (8 * i)) & 0xff));
    }

    void
    putU64(uint64_t value)
    {
        for (unsigned i = 0; i < 8; ++i)
            out_.push_back(
                static_cast<char>((value >> (8 * i)) & 0xff));
    }

    void
    putF64(double value)
    {
        putU64(std::bit_cast<uint64_t>(value));
    }

    /** Length-prefixed (u32) byte string. */
    void
    putString(const std::string &value)
    {
        putU32(static_cast<uint32_t>(value.size()));
        out_.append(value);
    }

    /** Length-prefixed (u64) opaque blob. */
    void
    putBlob(const std::string &value)
    {
        putU64(value.size());
        out_.append(value);
    }

    std::string take() { return std::move(out_); }

  private:
    std::string out_;
};

/** Bounds-checked little-endian payload reader. */
class WireReader
{
  public:
    WireReader(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {
    }

    explicit WireReader(const std::string &bytes)
        : data_(reinterpret_cast<const uint8_t *>(bytes.data())),
          size_(bytes.size())
    {
    }

    bool ok() const { return ok_; }
    bool atEnd() const { return ok_ && pos_ == size_; }

    uint8_t
    getU8()
    {
        if (!take(1))
            return 0;
        return data_[pos_ - 1];
    }

    uint32_t
    getU32()
    {
        if (!take(4))
            return 0;
        uint32_t value = 0;
        for (unsigned i = 0; i < 4; ++i)
            value |= static_cast<uint32_t>(data_[pos_ - 4 + i])
                     << (8 * i);
        return value;
    }

    uint64_t
    getU64()
    {
        if (!take(8))
            return 0;
        uint64_t value = 0;
        for (unsigned i = 0; i < 8; ++i)
            value |= static_cast<uint64_t>(data_[pos_ - 8 + i])
                     << (8 * i);
        return value;
    }

    double
    getF64()
    {
        return std::bit_cast<double>(getU64());
    }

    /** Length-prefixed (u32) byte string; "" once poisoned. */
    std::string
    getString()
    {
        const uint32_t size = getU32();
        if (!take(size))
            return std::string();
        return std::string(
            reinterpret_cast<const char *>(data_ + pos_ - size), size);
    }

    /** Length-prefixed (u64) opaque blob; "" once poisoned. */
    std::string
    getBlob()
    {
        const uint64_t size = getU64();
        if (!take(size))
            return std::string();
        return std::string(
            reinterpret_cast<const char *>(data_ + pos_ - size),
            static_cast<size_t>(size));
    }

  private:
    /** Advance past `bytes` if available; poison otherwise. */
    bool
    take(uint64_t bytes)
    {
        if (!ok_ || bytes > size_ - pos_) {
            ok_ = false;
            return false;
        }
        pos_ += static_cast<size_t>(bytes);
        return true;
    }

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace xser::service

#endif // XSER_SERVICE_WIRE_HH
