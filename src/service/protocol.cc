/**
 * @file
 * Protocol message codecs.
 */

#include "service/protocol.hh"

#include "service/wire.hh"

namespace xser::service {

namespace {

/** Shared failure path: set `error` once, report failure. */
bool
failDecode(std::string &error, const std::string &what)
{
    if (error.empty())
        error = what;
    return false;
}

/** Final decode gate: reader healthy and fully consumed. */
bool
finish(const WireReader &reader, const char *what, std::string &error)
{
    if (!reader.ok())
        return failDecode(error,
                          std::string(what) + ": truncated payload");
    if (!reader.atEnd())
        return failDecode(error, std::string(what) +
                                     ": trailing bytes after payload");
    return true;
}

void
putParams(WireWriter &writer, const CampaignParams &params)
{
    writer.putF64(params.scale);
    writer.putU64(params.seed);
    writer.putU32(params.replicates);
    writer.putU8(params.checkpoint ? 1 : 0);
    writer.putU8(params.fastpath ? 1 : 0);
    writer.putU64(params.traceBufferEvents);
    writer.putU8(params.wantTrace ? 1 : 0);
    writer.putU8(params.wantMetrics ? 1 : 0);
    writer.putU64(params.configHash);
}

void
getParams(WireReader &reader, CampaignParams &params)
{
    params.scale = reader.getF64();
    params.seed = reader.getU64();
    params.replicates = reader.getU32();
    params.checkpoint = reader.getU8() != 0;
    params.fastpath = reader.getU8() != 0;
    params.traceBufferEvents = reader.getU64();
    params.wantTrace = reader.getU8() != 0;
    params.wantMetrics = reader.getU8() != 0;
    params.configHash = reader.getU64();
}

void
putEventCounts(WireWriter &writer, const core::EventCounts &events)
{
    writer.putU64(events.sdcSilent);
    writer.putU64(events.sdcNotified);
    writer.putU64(events.appCrash);
    writer.putU64(events.sysCrash);
}

void
getEventCounts(WireReader &reader, core::EventCounts &events)
{
    events.sdcSilent = reader.getU64();
    events.sdcNotified = reader.getU64();
    events.appCrash = reader.getU64();
    events.sysCrash = reader.getU64();
}

void
putSessionResult(WireWriter &writer, const core::SessionResult &result)
{
    writer.putString(result.point.name);
    writer.putF64(result.point.pmdMillivolts);
    writer.putF64(result.point.socMillivolts);
    writer.putF64(result.point.frequencyHz);
    writer.putF64(result.beamFluxPerSecond);
    writer.putU64(result.runs);
    writer.putF64(result.fluence);
    writer.putU64(result.duration);
    putEventCounts(writer, result.events);
    writer.putU32(static_cast<uint32_t>(result.edac.size()));
    for (const mem::EdacTally &tally : result.edac) {
        writer.putU64(tally.corrected);
        writer.putU64(tally.uncorrected);
    }
    writer.putU64(result.upsetsDetected);
    writer.putU64(result.rawUpsetEvents);
    writer.putU64(result.totalSramBits);
    writer.putF64(result.avgPowerWatts);
    writer.putU32(static_cast<uint32_t>(result.perWorkload.size()));
    for (const core::WorkloadSessionStats &stats : result.perWorkload) {
        writer.putString(stats.name);
        writer.putU64(stats.runs);
        writer.putF64(stats.fluence);
        writer.putU64(stats.duration);
        writer.putU64(stats.upsetsDetected);
        putEventCounts(writer, stats.events);
    }
}

bool
getSessionResult(WireReader &reader, core::SessionResult &result,
                 std::string &error)
{
    result.point.name = reader.getString();
    result.point.pmdMillivolts = reader.getF64();
    result.point.socMillivolts = reader.getF64();
    result.point.frequencyHz = reader.getF64();
    result.beamFluxPerSecond = reader.getF64();
    result.runs = reader.getU64();
    result.fluence = reader.getF64();
    result.duration = reader.getU64();
    getEventCounts(reader, result.events);
    const uint32_t edac_levels = reader.getU32();
    if (reader.ok() && edac_levels != result.edac.size())
        return failDecode(error,
                          "session result: cache-level count skew");
    for (mem::EdacTally &tally : result.edac) {
        tally.corrected = reader.getU64();
        tally.uncorrected = reader.getU64();
    }
    result.upsetsDetected = reader.getU64();
    result.rawUpsetEvents = reader.getU64();
    result.totalSramBits = reader.getU64();
    result.avgPowerWatts = reader.getF64();
    const uint32_t workloads = reader.getU32();
    result.perWorkload.clear();
    for (uint32_t i = 0; reader.ok() && i < workloads; ++i) {
        core::WorkloadSessionStats stats;
        stats.name = reader.getString();
        stats.runs = reader.getU64();
        stats.fluence = reader.getF64();
        stats.duration = reader.getU64();
        stats.upsetsDetected = reader.getU64();
        getEventCounts(reader, stats.events);
        result.perWorkload.push_back(std::move(stats));
    }
    if (!reader.ok())
        return failDecode(error, "session result: truncated payload");
    return true;
}

} // namespace

core::CampaignConfig
buildCampaign(const CampaignParams &params)
{
    core::CampaignConfig campaign =
        core::BeamCampaign::paperCampaign(params.scale, params.seed);
    core::setFastPath(campaign, params.fastpath);
    return campaign;
}

std::string
encodeHello(const HelloMsg &msg)
{
    WireWriter writer;
    writer.putU8(static_cast<uint8_t>(msg.role));
    return writer.take();
}

bool
decodeHello(const std::string &payload, HelloMsg &out,
            std::string &error)
{
    WireReader reader(payload);
    const uint8_t role = reader.getU8();
    if (role > static_cast<uint8_t>(PeerRole::Worker))
        return failDecode(error, "hello: unknown peer role");
    out.role = static_cast<PeerRole>(role);
    return finish(reader, "hello", error);
}

std::string
encodeSubmit(const SubmitMsg &msg)
{
    WireWriter writer;
    putParams(writer, msg.params);
    writer.putString(msg.tracePath);
    return writer.take();
}

bool
decodeSubmit(const std::string &payload, SubmitMsg &out,
             std::string &error)
{
    WireReader reader(payload);
    getParams(reader, out.params);
    out.tracePath = reader.getString();
    if (reader.ok() && out.params.replicates == 0)
        return failDecode(error, "submit: zero replicates");
    return finish(reader, "submit", error);
}

std::string
encodeAccepted(const AcceptedMsg &msg)
{
    WireWriter writer;
    writer.putU64(msg.campaignId);
    writer.putU64(msg.totalUnits);
    return writer.take();
}

bool
decodeAccepted(const std::string &payload, AcceptedMsg &out,
               std::string &error)
{
    WireReader reader(payload);
    out.campaignId = reader.getU64();
    out.totalUnits = reader.getU64();
    return finish(reader, "accepted", error);
}

std::string
encodeAttach(const AttachMsg &msg)
{
    WireWriter writer;
    writer.putU64(msg.campaignId);
    return writer.take();
}

bool
decodeAttach(const std::string &payload, AttachMsg &out,
             std::string &error)
{
    WireReader reader(payload);
    out.campaignId = reader.getU64();
    return finish(reader, "attach", error);
}

std::string
encodeProgress(const ProgressMsg &msg)
{
    WireWriter writer;
    writer.putU64(msg.campaignId);
    writer.putU64(msg.done);
    writer.putU64(msg.total);
    return writer.take();
}

bool
decodeProgress(const std::string &payload, ProgressMsg &out,
               std::string &error)
{
    WireReader reader(payload);
    out.campaignId = reader.getU64();
    out.done = reader.getU64();
    out.total = reader.getU64();
    return finish(reader, "progress", error);
}

std::string
encodeShardAssign(const ShardAssignMsg &msg)
{
    WireWriter writer;
    writer.putU64(msg.campaignId);
    putParams(writer, msg.params);
    writer.putU32(msg.session);
    writer.putU32(msg.replicateBegin);
    writer.putU32(msg.replicateEnd);
    return writer.take();
}

bool
decodeShardAssign(const std::string &payload, ShardAssignMsg &out,
                  std::string &error)
{
    WireReader reader(payload);
    out.campaignId = reader.getU64();
    getParams(reader, out.params);
    out.session = reader.getU32();
    out.replicateBegin = reader.getU32();
    out.replicateEnd = reader.getU32();
    if (reader.ok() && out.replicateBegin >= out.replicateEnd)
        return failDecode(error, "shard assign: empty replicate range");
    return finish(reader, "shard assign", error);
}

std::string
encodeShardResult(const ShardResultMsg &msg)
{
    WireWriter writer;
    writer.putU64(msg.campaignId);
    writer.putU32(msg.session);
    writer.putU32(msg.replicateBegin);
    writer.putU32(msg.replicateEnd);
    writer.putBlob(msg.prefixTelemetry);
    writer.putU32(static_cast<uint32_t>(msg.units.size()));
    for (const UnitResultMsg &unit : msg.units) {
        writer.putU32(unit.replicate);
        putSessionResult(writer, unit.result);
        writer.putU64(unit.traceEventCount);
        writer.putBlob(unit.traceBytes);
    }
    writer.putBlob(msg.shardTelemetry);
    return writer.take();
}

bool
decodeShardResult(const std::string &payload, ShardResultMsg &out,
                  std::string &error)
{
    WireReader reader(payload);
    out.campaignId = reader.getU64();
    out.session = reader.getU32();
    out.replicateBegin = reader.getU32();
    out.replicateEnd = reader.getU32();
    out.prefixTelemetry = reader.getBlob();
    const uint32_t units = reader.getU32();
    out.units.clear();
    for (uint32_t i = 0; reader.ok() && i < units; ++i) {
        UnitResultMsg unit;
        unit.replicate = reader.getU32();
        if (!getSessionResult(reader, unit.result, error))
            return false;
        unit.traceEventCount = reader.getU64();
        unit.traceBytes = reader.getBlob();
        out.units.push_back(std::move(unit));
    }
    out.shardTelemetry = reader.getBlob();
    return finish(reader, "shard result", error);
}

std::string
encodeCampaignDone(const CampaignDoneMsg &msg)
{
    WireWriter writer;
    writer.putU64(msg.campaignId);
    writer.putU8(msg.ok ? 1 : 0);
    writer.putString(msg.error);
    return writer.take();
}

bool
decodeCampaignDone(const std::string &payload, CampaignDoneMsg &out,
                   std::string &error)
{
    WireReader reader(payload);
    out.campaignId = reader.getU64();
    out.ok = reader.getU8() != 0;
    out.error = reader.getString();
    return finish(reader, "campaign done", error);
}

std::string
encodeArtifactChunk(const ArtifactChunkMsg &msg)
{
    WireWriter writer;
    writer.putU64(msg.campaignId);
    writer.putU8(static_cast<uint8_t>(msg.kind));
    writer.putU8(msg.last ? 1 : 0);
    writer.putBlob(msg.bytes);
    return writer.take();
}

bool
decodeArtifactChunk(const std::string &payload, ArtifactChunkMsg &out,
                    std::string &error)
{
    WireReader reader(payload);
    out.campaignId = reader.getU64();
    const uint8_t kind = reader.getU8();
    if (reader.ok() && kind > static_cast<uint8_t>(ArtifactKind::Manifest))
        return failDecode(error, "artifact chunk: unknown kind");
    out.kind = static_cast<ArtifactKind>(kind);
    out.last = reader.getU8() != 0;
    out.bytes = reader.getBlob();
    return finish(reader, "artifact chunk", error);
}

std::string
encodeErrorMsg(const ErrorMsgMsg &msg)
{
    WireWriter writer;
    writer.putU32(msg.code);
    writer.putString(msg.text);
    return writer.take();
}

bool
decodeErrorMsg(const std::string &payload, ErrorMsgMsg &out,
               std::string &error)
{
    WireReader reader(payload);
    out.code = reader.getU32();
    out.text = reader.getString();
    return finish(reader, "error message", error);
}

std::string
encodeMetricShard(const telemetry::MetricShard &shard)
{
    WireWriter writer;
    writer.putU32(static_cast<uint32_t>(shard.counters.size()));
    for (const uint64_t counter : shard.counters)
        writer.putU64(counter);
    writer.putU32(static_cast<uint32_t>(shard.dists.size()));
    for (const Histogram &histogram : shard.dists) {
        writer.putF64(histogram.low());
        writer.putF64(histogram.high());
        writer.putU32(static_cast<uint32_t>(histogram.bins()));
        for (size_t bin = 0; bin < histogram.bins(); ++bin)
            writer.putU64(histogram.binCount(bin));
        writer.putU64(histogram.underflow());
        writer.putU64(histogram.overflow());
    }
    writer.putU32(static_cast<uint32_t>(shard.phaseSeconds.size()));
    for (const double seconds : shard.phaseSeconds)
        writer.putF64(seconds);
    writer.putU64(shard.unitsExecuted);
    return writer.take();
}

bool
decodeMetricShard(const std::string &payload,
                  telemetry::MetricShard &out, std::string &error)
{
    WireReader reader(payload);
    if (reader.getU32() != out.counters.size())
        return failDecode(error, "metric shard: counter count skew");
    for (uint64_t &counter : out.counters)
        counter = reader.getU64();
    if (reader.getU32() != out.dists.size())
        return failDecode(error,
                          "metric shard: distribution count skew");
    for (Histogram &histogram : out.dists) {
        const double lo = reader.getF64();
        const double hi = reader.getF64();
        const uint32_t bins = reader.getU32();
        if (!reader.ok())
            return failDecode(error, "metric shard: truncated payload");
        if (lo != histogram.low() || hi != histogram.high() ||
            bins != histogram.bins())
            return failDecode(error,
                              "metric shard: histogram shape skew");
        // Rebuild by weighted adds at representative values: bin counts
        // at the bin's own lower edge, under/overflow just outside the
        // range. Integer counts transfer exactly, so the merged
        // histogram is identical to one recorded locally.
        for (uint32_t bin = 0; bin < bins; ++bin) {
            const uint64_t weight = reader.getU64();
            if (weight != 0)
                histogram.add(histogram.binLow(bin), weight);
        }
        const uint64_t underflow = reader.getU64();
        if (underflow != 0)
            histogram.add(histogram.low() - 1.0, underflow);
        const uint64_t overflow = reader.getU64();
        if (overflow != 0)
            histogram.add(histogram.high(), overflow);
    }
    if (reader.getU32() != out.phaseSeconds.size())
        return failDecode(error, "metric shard: phase count skew");
    for (double &seconds : out.phaseSeconds)
        seconds = reader.getF64();
    out.unitsExecuted = reader.getU64();
    return finish(reader, "metric shard", error);
}

} // namespace xser::service
