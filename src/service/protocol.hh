/**
 * @file
 * The xser-server application protocol: typed messages carried in
 * net::Frame envelopes (DESIGN.md section 12).
 *
 * Three peers speak it. A *client* submits a campaign (Submit) or
 * re-attaches to one by id (Attach), watches Progress, and receives
 * the finished artifacts -- report text, .xtrace bytes, run manifest
 * -- as ArtifactChunk streams followed by CampaignDone. A *worker*
 * announces itself (Hello/WorkerReady), receives ShardAssign frames
 * naming (session, replicate-range) shards, executes them through
 * core::ShardExecutor, and answers each with one atomic ShardResult.
 * The *server* owns the work queue and performs the canonical
 * replicate-major merge, so the artifacts are bit-identical to a
 * local `xser campaign --jobs N` run.
 *
 * Campaign configuration crosses the wire as parameters (scale, seed,
 * flags), never as serialized state: each peer rebuilds the
 * CampaignConfig locally via BeamCampaign::paperCampaign and verifies
 * campaignConfigHash against the hash in the message, so a version- or
 * build-skewed peer is rejected at handshake instead of corrupting a
 * campaign. Every decode follows the core/checkpoint posture: a
 * malformed payload yields {false, error}, never a crash.
 */

#ifndef XSER_SERVICE_PROTOCOL_HH
#define XSER_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/beam_campaign.hh"
#include "core/test_session.hh"
#include "telemetry/metrics.hh"

namespace xser::service {

/** Frame types (the u32 in the net::Frame header). */
enum class FrameType : uint32_t {
    Hello = 1,       ///< first frame on any connection; carries role
    HelloAck,        ///< server's handshake acceptance
    Submit,          ///< client -> server: run this campaign
    Accepted,        ///< server -> client: campaign id + unit count
    Attach,          ///< client -> server: watch an existing campaign
    Progress,        ///< server -> client: done/total units
    ShardAssign,     ///< server -> worker: execute one shard
    ShardResult,     ///< worker -> server: one shard's results
    WorkerReady,     ///< worker -> server: idle, give me work
    Heartbeat,       ///< either direction: liveness while idle
    CampaignDone,    ///< server -> client: terminal status
    ArtifactChunk,   ///< server -> client: artifact byte range
    ErrorMsg,        ///< either direction: protocol-level failure
    ShutdownRequest, ///< client -> server: drain and exit
    ShutdownAck,     ///< server -> client: shutdown under way
};

/** Who a connection claims to be in its Hello. */
enum class PeerRole : uint8_t {
    Client = 0,
    Worker = 1,
};

/** Artifact kinds streamed in ArtifactChunk frames. */
enum class ArtifactKind : uint8_t {
    Report = 0,   ///< the campaign report text
    Trace = 1,    ///< .xtrace file bytes
    Manifest = 2, ///< run-manifest JSON
};

/**
 * Everything needed to rebuild a campaign's configuration locally.
 * `configHash` is the sender's campaignConfigHash of the rebuilt
 * config; a receiver whose own rebuild hashes differently must refuse
 * the campaign (build skew would silently break determinism).
 */
struct CampaignParams {
    double scale = 0.22;
    uint64_t seed = 0x5e5510ULL;
    uint32_t replicates = 1;
    bool checkpoint = true;
    bool fastpath = true;
    uint64_t traceBufferEvents = 0;
    bool wantTrace = false;
    bool wantMetrics = false;
    uint64_t configHash = 0;
};

/** Rebuild the paper campaign these parameters describe. */
core::CampaignConfig buildCampaign(const CampaignParams &params);

/** Hello payload. */
struct HelloMsg {
    PeerRole role = PeerRole::Client;
};

/** Submit payload: parameters plus the client's trace path (the
 * path string appears verbatim in the report's trace line). */
struct SubmitMsg {
    CampaignParams params;
    std::string tracePath;
};

/** Accepted payload. */
struct AcceptedMsg {
    uint64_t campaignId = 0;
    uint64_t totalUnits = 0;
};

/** Attach payload. */
struct AttachMsg {
    uint64_t campaignId = 0;
};

/** Progress payload. */
struct ProgressMsg {
    uint64_t campaignId = 0;
    uint64_t done = 0;
    uint64_t total = 0;
};

/** ShardAssign payload: one (session, replicate-range) shard. */
struct ShardAssignMsg {
    uint64_t campaignId = 0;
    CampaignParams params;
    uint32_t session = 0;
    uint32_t replicateBegin = 0;
    uint32_t replicateEnd = 0; ///< exclusive
};

/** One unit's outcome within a ShardResult. */
struct UnitResultMsg {
    uint32_t replicate = 0;
    core::SessionResult result;
    uint64_t traceEventCount = 0;
    std::string traceBytes; ///< TraceWriter::encodeUnit output
};

/**
 * ShardResult payload. `prefixTelemetry` is the telemetry shard the
 * worker recorded while sealing this session's golden prefix (empty
 * when checkpointing is off or the worker had the prefix cached); the
 * server accepts the first such blob per session and drops duplicates,
 * which is sound because sealing is deterministic. `shardTelemetry`
 * covers the unit executions and travels atomically with the results,
 * so a worker that dies mid-shard contributes nothing at all and the
 * requeued shard re-records identically.
 */
struct ShardResultMsg {
    uint64_t campaignId = 0;
    uint32_t session = 0;
    uint32_t replicateBegin = 0;
    uint32_t replicateEnd = 0;
    std::string prefixTelemetry;
    std::vector<UnitResultMsg> units;
    std::string shardTelemetry;
};

/** CampaignDone payload. */
struct CampaignDoneMsg {
    uint64_t campaignId = 0;
    bool ok = false;
    std::string error;
};

/** ArtifactChunk payload. */
struct ArtifactChunkMsg {
    uint64_t campaignId = 0;
    ArtifactKind kind = ArtifactKind::Report;
    bool last = false;
    std::string bytes;
};

/** ErrorMsg payload. */
struct ErrorMsgMsg {
    uint32_t code = 0;
    std::string text;
};

std::string encodeHello(const HelloMsg &msg);
bool decodeHello(const std::string &payload, HelloMsg &out,
                 std::string &error);

std::string encodeSubmit(const SubmitMsg &msg);
bool decodeSubmit(const std::string &payload, SubmitMsg &out,
                  std::string &error);

std::string encodeAccepted(const AcceptedMsg &msg);
bool decodeAccepted(const std::string &payload, AcceptedMsg &out,
                    std::string &error);

std::string encodeAttach(const AttachMsg &msg);
bool decodeAttach(const std::string &payload, AttachMsg &out,
                  std::string &error);

std::string encodeProgress(const ProgressMsg &msg);
bool decodeProgress(const std::string &payload, ProgressMsg &out,
                    std::string &error);

std::string encodeShardAssign(const ShardAssignMsg &msg);
bool decodeShardAssign(const std::string &payload, ShardAssignMsg &out,
                       std::string &error);

std::string encodeShardResult(const ShardResultMsg &msg);
bool decodeShardResult(const std::string &payload, ShardResultMsg &out,
                       std::string &error);

std::string encodeCampaignDone(const CampaignDoneMsg &msg);
bool decodeCampaignDone(const std::string &payload, CampaignDoneMsg &out,
                        std::string &error);

std::string encodeArtifactChunk(const ArtifactChunkMsg &msg);
bool decodeArtifactChunk(const std::string &payload,
                         ArtifactChunkMsg &out, std::string &error);

std::string encodeErrorMsg(const ErrorMsgMsg &msg);
bool decodeErrorMsg(const std::string &payload, ErrorMsgMsg &out,
                    std::string &error);

/**
 * Serialize one telemetry shard: counters, distribution histograms
 * (shape plus bin counts -- integer counts transfer exactly), phase
 * seconds, and unitsExecuted. Count prefixes double as version-skew
 * guards: a peer built with a different Counter/Dist/Phase enum fails
 * the decode instead of silently misattributing metrics.
 */
std::string encodeMetricShard(const telemetry::MetricShard &shard);
bool decodeMetricShard(const std::string &payload,
                       telemetry::MetricShard &out, std::string &error);

} // namespace xser::service

#endif // XSER_SERVICE_PROTOCOL_HH
