/**
 * @file
 * Frame codec implementation.
 */

#include "net/frame.hh"

#include <cstring>

#include "sim/logging.hh"

namespace xser::net {

namespace {

const char frameMagic[8] = {'X', 'S', 'E', 'R', 'N', 'E', 'T', 'F'};

void
putU32(std::string &out, uint32_t value)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
}

void
putU64(std::string &out, uint64_t value)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
}

uint32_t
getU32(const uint8_t *data)
{
    uint32_t value = 0;
    for (unsigned i = 0; i < 4; ++i)
        value |= static_cast<uint32_t>(data[i]) << (8 * i);
    return value;
}

uint64_t
getU64(const uint8_t *data)
{
    uint64_t value = 0;
    for (unsigned i = 0; i < 8; ++i)
        value |= static_cast<uint64_t>(data[i]) << (8 * i);
    return value;
}

} // namespace

uint64_t
fnv1a(const uint8_t *data, size_t size)
{
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

std::string
encodeFrame(uint32_t type, const std::string &payload)
{
    if (payload.size() > maxFramePayloadBytes)
        fatal(msg("frame payload of ", payload.size(),
                  " bytes exceeds the ", maxFramePayloadBytes,
                  "-byte protocol limit"));
    std::string out;
    out.reserve(frameHeaderBytes + payload.size());
    out.append(frameMagic, sizeof(frameMagic));
    putU32(out, protocolVersion);
    putU32(out, type);
    putU64(out, payload.size());
    putU64(out, fnv1a(reinterpret_cast<const uint8_t *>(payload.data()),
                      payload.size()));
    out.append(payload);
    return out;
}

FrameView
decodeFrame(const uint8_t *data, size_t size)
{
    FrameView view;
    if (size < frameHeaderBytes) {
        view.error = msg("truncated frame header: ", size, " of ",
                         frameHeaderBytes, " bytes");
        view.incomplete = true;
        return view;
    }
    if (std::memcmp(data, frameMagic, sizeof(frameMagic)) != 0) {
        view.error = "bad frame magic (not an xser protocol stream)";
        return view;
    }
    const uint32_t version = getU32(data + 8);
    if (version != protocolVersion) {
        view.error = msg("protocol version mismatch: peer speaks ",
                         version, ", this build speaks ",
                         protocolVersion);
        return view;
    }
    const uint64_t payload_size = getU64(data + 16);
    if (payload_size > maxFramePayloadBytes) {
        view.error = msg("frame payload size ", payload_size,
                         " exceeds the ", maxFramePayloadBytes,
                         "-byte protocol limit");
        return view;
    }
    if (size - frameHeaderBytes < payload_size) {
        view.error = msg("truncated frame payload: ",
                         size - frameHeaderBytes, " of ", payload_size,
                         " bytes");
        view.incomplete = true;
        return view;
    }
    const uint8_t *payload = data + frameHeaderBytes;
    const uint64_t checksum = fnv1a(payload, payload_size);
    if (checksum != getU64(data + 24)) {
        view.error = "frame payload checksum mismatch";
        return view;
    }
    view.ok = true;
    view.type = getU32(data + 12);
    view.payload = payload;
    view.payloadSize = payload_size;
    view.frameSize = frameHeaderBytes + payload_size;
    return view;
}

void
FrameReader::feed(const char *data, size_t size)
{
    if (failed_)
        return;
    // Compact lazily so long-lived connections do not grow without
    // bound: once everything buffered has been consumed, restart.
    if (consumed_ == buffer_.size()) {
        buffer_.clear();
        consumed_ = 0;
    }
    buffer_.append(data, size);
}

FrameReader::Status
FrameReader::next(Frame &out)
{
    if (failed_)
        return Status::Error;
    const uint8_t *data =
        reinterpret_cast<const uint8_t *>(buffer_.data()) + consumed_;
    const size_t available = buffer_.size() - consumed_;
    const FrameView view = decodeFrame(data, available);
    if (!view.ok) {
        // A truncated header or payload just means the rest of the
        // frame has not arrived; anything else is sticky.
        if (view.incomplete)
            return Status::NeedMore;
        failed_ = true;
        error_ = view.error;
        return Status::Error;
    }
    out.type = view.type;
    out.payload.assign(
        reinterpret_cast<const char *>(view.payload), view.payloadSize);
    consumed_ += view.frameSize;
    return Status::Ready;
}

} // namespace xser::net
