/**
 * @file
 * Length-prefixed, versioned binary frames: the unit of every exchange
 * on an xser-server connection (DESIGN.md section 12).
 *
 * Layout (integers little-endian):
 *
 *     bytes 0-7    magic "XSERNETF"
 *     bytes 8-11   protocol version (u32)
 *     bytes 12-15  frame type (u32, see service/protocol.hh)
 *     bytes 16-23  payload size in bytes (u64)
 *     bytes 24-31  FNV-1a checksum of the payload (u64)
 *     bytes 32-    payload
 *
 * Frames cross process and host boundaries, so decoding is paranoid in
 * the core/checkpoint mould: every field is validated before the
 * payload is exposed, malformed input yields {ok=false, error} and
 * never a crash, and a size field beyond maxFramePayloadBytes is
 * rejected immediately instead of making the reader wait forever for
 * bytes that will never come.
 */

#ifndef XSER_NET_FRAME_HH
#define XSER_NET_FRAME_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace xser::net {

/** Wire protocol version; bump on any frame or payload change. */
inline constexpr uint32_t protocolVersion = 1;

/** Fixed size of the frame header. */
inline constexpr size_t frameHeaderBytes = 32;

/** Upper bound on a payload; larger size fields are protocol errors. */
inline constexpr uint64_t maxFramePayloadBytes = uint64_t(1) << 28;

/** FNV-1a over a byte range (the frame payload checksum). */
uint64_t fnv1a(const uint8_t *data, size_t size);

/** Wrap a payload in a frame (fatal when the payload is oversized). */
std::string encodeFrame(uint32_t type, const std::string &payload);

/** Result of decoding one complete frame from a buffer. */
struct FrameView {
    bool ok = false;
    std::string error;          ///< set when !ok
    bool incomplete = false;    ///< !ok because more bytes may follow
    uint32_t type = 0;
    const uint8_t *payload = nullptr;  ///< into the caller's buffer
    size_t payloadSize = 0;
    size_t frameSize = 0;       ///< header + payload bytes consumed
};

/**
 * Validate and decode exactly one frame at the start of `data`. Never
 * fatals: truncated or corrupted input yields {ok=false, error}. The
 * view aliases `data`, which must outlive it.
 */
FrameView decodeFrame(const uint8_t *data, size_t size);

/** One fully received frame, detached from the stream buffer. */
struct Frame {
    uint32_t type = 0;
    std::string payload;
};

/**
 * Incremental frame extractor over a byte stream: feed() whatever the
 * socket produced, then drain complete frames with next(). A protocol
 * error (bad magic, version skew, oversized or checksum-failing frame)
 * is sticky -- the stream is unrecoverable and the connection must be
 * closed; next() keeps returning Error.
 */
class FrameReader
{
  public:
    enum class Status {
        NeedMore,  ///< no complete frame buffered yet
        Ready,     ///< one frame extracted into `out`
        Error,     ///< stream corrupt; see error()
    };

    /** Append received bytes to the stream buffer. */
    void feed(const char *data, size_t size);

    /** Extract the next complete frame, consuming its bytes. */
    Status next(Frame &out);

    /** Sticky protocol error description (valid after Error). */
    const std::string &error() const { return error_; }

    /** Bytes buffered but not yet consumed (for backpressure caps). */
    size_t buffered() const { return buffer_.size() - consumed_; }

  private:
    std::string buffer_;
    size_t consumed_ = 0;
    std::string error_;
    bool failed_ = false;
};

} // namespace xser::net

#endif // XSER_NET_FRAME_HH
