/**
 * @file
 * Thin RAII wrappers over POSIX TCP sockets and poll(2): the single
 * confinement point for socket and poll headers (machine-checked by
 * xser-lint's net-confinement rule -- see DESIGN.md section 12).
 *
 * Everything above this layer (src/service, the CLIs) works with byte
 * buffers and the frame codec only; no file descriptor or sockaddr
 * ever escapes src/net. All sockets are non-blocking: readers report
 * would-block instead of stalling, writers consume as much of a
 * buffer as the kernel accepts, and the event loops multiplex with
 * pollSockets().
 */

#ifndef XSER_NET_SOCKET_HH
#define XSER_NET_SOCKET_HH

#include <cstdint>
#include <string>
#include <vector>

namespace xser::net {

/** Outcome of one non-blocking read attempt. */
enum class ReadStatus {
    Data,       ///< at least one byte appended to the buffer
    WouldBlock, ///< nothing available right now
    Closed,     ///< orderly shutdown by the peer
    Error,      ///< connection reset or another hard error
};

/** Outcome of one non-blocking write attempt. */
enum class WriteStatus {
    Ok,    ///< zero or more bytes consumed; retry for the remainder
    Error, ///< connection reset or another hard error
};

/**
 * One established TCP connection (movable, closes on destruction).
 */
class TcpConnection
{
  public:
    TcpConnection() = default;
    explicit TcpConnection(int fd);
    ~TcpConnection();

    TcpConnection(TcpConnection &&other) noexcept;
    TcpConnection &operator=(TcpConnection &&other) noexcept;
    TcpConnection(const TcpConnection &) = delete;
    TcpConnection &operator=(const TcpConnection &) = delete;

    bool open() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Append whatever is readable to `into` (non-blocking). */
    ReadStatus readSome(std::string &into);

    /**
     * Write as much of `buffer` as the kernel accepts and erase the
     * consumed prefix (non-blocking; a full socket consumes nothing).
     */
    WriteStatus writeSome(std::string &buffer);

    void close();

  private:
    int fd_ = -1;
};

/** A listening TCP socket bound to a local address. */
class TcpListener
{
  public:
    TcpListener() = default;
    ~TcpListener();

    TcpListener(TcpListener &&other) noexcept;
    TcpListener &operator=(TcpListener &&other) noexcept;
    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /**
     * Bind and listen on host:port (port 0 picks a free port; see
     * boundPort()). Fatal on any setup failure -- a server that
     * cannot listen has nothing to gracefully degrade to.
     */
    static TcpListener listen(const std::string &host, uint16_t port);

    bool open() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** The actual bound port (after port-0 auto-assignment). */
    uint16_t boundPort() const { return port_; }

    /**
     * Accept one pending connection (non-blocking); returns a closed
     * connection when none is pending.
     */
    TcpConnection accept();

    void close();

  private:
    int fd_ = -1;
    uint16_t port_ = 0;
};

/**
 * Connect to host:port. Blocks for the handshake (bounded by the
 * kernel's connect timeout), then switches the socket non-blocking.
 * Returns a closed connection on failure with `error` set.
 */
TcpConnection connectTo(const std::string &host, uint16_t port,
                        std::string &error);

/** One pollSockets() entry: interest in, and readiness of, an fd. */
struct PollItem {
    int fd = -1;
    bool wantRead = false;
    bool wantWrite = false;
    /* Outputs. */
    bool canRead = false;
    bool canWrite = false;
    bool hangup = false; ///< peer closed or error condition pending
};

/**
 * poll(2) over the items; fills the readiness outputs. Returns the
 * number of ready items (0 on timeout). `timeout_ms` < 0 blocks.
 */
int pollSockets(std::vector<PollItem> &items, int timeout_ms);

} // namespace xser::net

#endif // XSER_NET_SOCKET_HH
