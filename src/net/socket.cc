/**
 * @file
 * POSIX socket wrapper implementation. This translation unit (with
 * socket.hh) is the only place in the tree allowed to include socket
 * or poll headers; xser-lint's net-confinement rule enforces it.
 */

#include "net/socket.hh"

#include <algorithm>
#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "sim/logging.hh"

namespace xser::net {

namespace {

/** Read/write chunk size per syscall. */
constexpr size_t ioChunkBytes = 64 * 1024;

void
setNonBlocking(int fd)
{
    const int flags = fcntl(fd, F_GETFL, 0);
    if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        fatal(msg("cannot set socket non-blocking: ",
                  std::strerror(errno)));
}

/** Parse a dotted-quad host into a sockaddr_in (fatal on failure). */
sockaddr_in
makeAddress(const std::string &host, uint16_t port)
{
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    if (inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1)
        fatal(msg("invalid IPv4 address '", host,
                  "' (xser-server speaks numeric IPv4 only)"));
    return address;
}

} // namespace

TcpConnection::TcpConnection(int fd) : fd_(fd) {}

TcpConnection::~TcpConnection()
{
    close();
}

TcpConnection::TcpConnection(TcpConnection &&other) noexcept
    : fd_(other.fd_)
{
    other.fd_ = -1;
}

TcpConnection &
TcpConnection::operator=(TcpConnection &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

ReadStatus
TcpConnection::readSome(std::string &into)
{
    char chunk[ioChunkBytes];
    bool got_data = false;
    for (;;) {
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            into.append(chunk, static_cast<size_t>(n));
            got_data = true;
            continue;
        }
        if (n == 0)
            return got_data ? ReadStatus::Data : ReadStatus::Closed;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return got_data ? ReadStatus::Data : ReadStatus::WouldBlock;
        if (errno == EINTR)
            continue;
        return ReadStatus::Error;
    }
}

WriteStatus
TcpConnection::writeSome(std::string &buffer)
{
    size_t sent = 0;
    while (sent < buffer.size()) {
        const size_t chunk =
            std::min(buffer.size() - sent, ioChunkBytes);
        const ssize_t n =
            ::send(fd_, buffer.data() + sent, chunk, MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<size_t>(n);
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            break;
        if (errno == EINTR)
            continue;
        buffer.erase(0, sent);
        return WriteStatus::Error;
    }
    buffer.erase(0, sent);
    return WriteStatus::Ok;
}

void
TcpConnection::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

TcpListener::~TcpListener()
{
    close();
}

TcpListener::TcpListener(TcpListener &&other) noexcept
    : fd_(other.fd_), port_(other.port_)
{
    other.fd_ = -1;
    other.port_ = 0;
}

TcpListener &
TcpListener::operator=(TcpListener &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        port_ = other.port_;
        other.fd_ = -1;
        other.port_ = 0;
    }
    return *this;
}

TcpListener
TcpListener::listen(const std::string &host, uint16_t port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        fatal(msg("cannot create socket: ", std::strerror(errno)));
    const int one = 1;
    if (setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) < 0)
        fatal(msg("cannot set SO_REUSEADDR: ", std::strerror(errno)));
    sockaddr_in address = makeAddress(host, port);
    if (bind(fd, reinterpret_cast<const sockaddr *>(&address),
             sizeof(address)) < 0)
        fatal(msg("cannot bind ", host, ":", port, ": ",
                  std::strerror(errno)));
    if (::listen(fd, 64) < 0)
        fatal(msg("cannot listen on ", host, ":", port, ": ",
                  std::strerror(errno)));
    sockaddr_in bound{};
    socklen_t bound_size = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<sockaddr *>(&bound),
                    &bound_size) < 0)
        fatal(msg("cannot read bound port: ", std::strerror(errno)));
    setNonBlocking(fd);
    TcpListener listener;
    listener.fd_ = fd;
    listener.port_ = ntohs(bound.sin_port);
    return listener;
}

TcpConnection
TcpListener::accept()
{
    for (;;) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0) {
            setNonBlocking(fd);
            const int one = 1;
            // Frames are small and latency-sensitive; favour
            // immediate delivery over Nagle batching.
            setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one,
                       sizeof(one));
            return TcpConnection(fd);
        }
        if (errno == EINTR)
            continue;
        return TcpConnection();
    }
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

TcpConnection
connectTo(const std::string &host, uint16_t port, std::string &error)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        error = msg("cannot create socket: ", std::strerror(errno));
        return TcpConnection();
    }
    sockaddr_in address = makeAddress(host, port);
    for (;;) {
        if (connect(fd, reinterpret_cast<const sockaddr *>(&address),
                    sizeof(address)) == 0)
            break;
        if (errno == EINTR)
            continue;
        error = msg("cannot connect to ", host, ":", port, ": ",
                    std::strerror(errno));
        ::close(fd);
        return TcpConnection();
    }
    setNonBlocking(fd);
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return TcpConnection(fd);
}

int
pollSockets(std::vector<PollItem> &items, int timeout_ms)
{
    std::vector<pollfd> fds;
    fds.reserve(items.size());
    for (const PollItem &item : items) {
        pollfd entry{};
        entry.fd = item.fd;
        entry.events = 0;
        if (item.wantRead)
            entry.events |= POLLIN;
        if (item.wantWrite)
            entry.events |= POLLOUT;
        fds.push_back(entry);
    }
    int ready;
    for (;;) {
        ready = ::poll(fds.data(),
                       static_cast<nfds_t>(fds.size()), timeout_ms);
        if (ready >= 0)
            break;
        if (errno == EINTR)
            return 0; // let the caller observe shutdown flags
        fatal(msg("poll failed: ", std::strerror(errno)));
    }
    for (size_t i = 0; i < items.size(); ++i) {
        items[i].canRead = (fds[i].revents & POLLIN) != 0;
        items[i].canWrite = (fds[i].revents & POLLOUT) != 0;
        items[i].hangup =
            (fds[i].revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
    }
    return ready;
}

} // namespace xser::net
