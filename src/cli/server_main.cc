/**
 * @file
 * xser-server: the distributed campaign daemon (DESIGN.md section 12).
 *
 *   xser-server [--host 127.0.0.1] [--port 0] [--port-file FILE]
 *               [--max-campaigns N] [--shard-replicates N]
 *               [--handshake-timeout SEC] [--idle-timeout SEC]
 *
 * SIGINT/SIGTERM request a graceful drain: in-flight shards finish,
 * unfinished campaigns are failed to their watchers, outboxes flush,
 * then the process exits.
 */

#include <csignal>
#include <cstdio>
#include <string>

#include "cli/args.hh"
#include "service/server.hh"
#include "sim/logging.hh"

namespace {

using namespace xser;

void
printUsage()
{
    std::printf(
        "usage: xser-server [options]\n"
        "\n"
        "options:\n"
        "  --host A            listen address (default 127.0.0.1)\n"
        "  --port P            listen port; 0 picks a free port\n"
        "  --port-file FILE    write the bound port here after listen\n"
        "  --max-campaigns N   exit after N campaigns drain (0 = run\n"
        "                      forever)\n"
        "  --shard-replicates N  replicates per work-queue shard\n"
        "                      (default 1)\n"
        "  --handshake-timeout SEC  drop un-helloed connections\n"
        "                      (default 10)\n"
        "  --idle-timeout SEC  drop silent idle connections; never\n"
        "                      applied to busy workers (default 60)\n"
        "\n"
        "SIGINT/SIGTERM drain gracefully: in-flight shards finish,\n"
        "unfinished campaigns fail to their watchers, then exit.\n");
}

extern "C" void
requestShutdown(int)
{
    service::serverShutdownFlag = 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const cli::Args args = cli::Args::parse(argc, argv);
    const std::string &command = args.command();
    if (command == "help" || command == "-h" || args.has("help")) {
        printUsage();
        return 0;
    }
    if (!command.empty()) {
        printUsage();
        return 2;
    }

    service::ServerConfig config;
    config.host = args.get("host", config.host);
    config.port = static_cast<uint16_t>(
        args.getCount("port", 0, 0, 65535));
    config.portFile = args.get("port-file", "");
    config.maxCampaigns = static_cast<unsigned>(
        args.getUint("max-campaigns", 0));
    config.shardReplicates = static_cast<uint32_t>(
        args.getCount("shard-replicates", 1, 1, 1u << 20));
    config.handshakeTimeoutSeconds =
        args.getDouble("handshake-timeout",
                       config.handshakeTimeoutSeconds);
    config.idleTimeoutSeconds =
        args.getDouble("idle-timeout", config.idleTimeoutSeconds);

    struct sigaction action = {};
    action.sa_handler = requestShutdown;
    sigaction(SIGINT, &action, nullptr);
    sigaction(SIGTERM, &action, nullptr);

    return service::runServer(config);
}
