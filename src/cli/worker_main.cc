/**
 * @file
 * xser-worker: a shard executor for xser-server (DESIGN.md
 * section 12).
 *
 *   xser-worker --port P [--host 127.0.0.1] [--heartbeat SEC]
 *
 * Connects to the server, announces itself, and executes
 * (session, replicate-range) shards until the server closes the
 * connection. Exit 0 on a server-initiated close, 1 on protocol
 * errors.
 */

#include <cstdio>
#include <string>

#include "cli/args.hh"
#include "service/worker.hh"
#include "sim/logging.hh"

namespace {

using namespace xser;

void
printUsage()
{
    std::printf(
        "usage: xser-worker --port P [options]\n"
        "\n"
        "options:\n"
        "  --port P           server port (required)\n"
        "  --host A           server address (default 127.0.0.1)\n"
        "  --heartbeat SEC    idle heartbeat interval (default 2)\n"
        "  --crash-on-shard N test hook: exit abruptly upon receiving\n"
        "                     the Nth shard assignment, simulating a\n"
        "                     crashed worker (0 = disabled)\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const cli::Args args = cli::Args::parse(argc, argv);
    const std::string &command = args.command();
    if (command == "help" || command == "-h" || args.has("help")) {
        printUsage();
        return 0;
    }
    if (!command.empty()) {
        printUsage();
        return 2;
    }
    if (!args.has("port"))
        fatal("xser-worker requires --port <server port>");

    service::WorkerConfig config;
    config.host = args.get("host", config.host);
    config.port = static_cast<uint16_t>(
        args.getCount("port", 0, 1, 65535));
    config.crashOnShard = static_cast<unsigned>(
        args.getUint("crash-on-shard", 0));
    config.heartbeatSeconds =
        args.getDouble("heartbeat", config.heartbeatSeconds);
    return service::runWorker(config);
}
