/**
 * @file
 * Minimal command-line argument parser for the xser CLI: a positional
 * command followed by `--key value` / `--flag` options.
 */

#ifndef XSER_CLI_ARGS_HH
#define XSER_CLI_ARGS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace xser::cli {

/**
 * Parsed command line. Unknown options are collected so commands can
 * reject them with a useful message.
 */
class Args
{
  public:
    /**
     * Parse argv. The first non-option token is the command; options
     * are `--key value` pairs, or bare `--key` flags when the next
     * token is another option or the end.
     */
    static Args parse(int argc, const char *const *argv);

    /** The positional command ("session", "campaign", ...). */
    const std::string &command() const { return command_; }

    /** True when --key was given (with or without a value). */
    bool has(const std::string &key) const;

    /** String option with default. */
    std::string get(const std::string &key,
                    const std::string &fallback) const;

    /** Numeric option with default (fatal on unparseable value). */
    double getDouble(const std::string &key, double fallback) const;

    /** Integer option with default (fatal on unparseable value). */
    uint64_t getUint(const std::string &key, uint64_t fallback) const;

    /**
     * Range-checked count option: an integer in [min_value, max_value].
     * Fatal on unparseable or out-of-range values.
     */
    uint64_t getCount(const std::string &key, uint64_t fallback,
                      uint64_t min_value, uint64_t max_value) const;

    /**
     * Worker-count option: a positive integer, or "auto" for the
     * hardware thread count. Fatal on zero or unparseable values.
     */
    unsigned getJobs(const std::string &key, unsigned fallback) const;

    /** All option keys seen, for unknown-option diagnostics. */
    std::vector<std::string> keys() const;

  private:
    std::string command_;
    std::map<std::string, std::string> options_;
};

} // namespace xser::cli

#endif // XSER_CLI_ARGS_HH
