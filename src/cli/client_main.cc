/**
 * @file
 * xser-client: submit campaigns to an xser-server and collect the
 * artifacts (DESIGN.md section 12).
 *
 *   xser-client run --port P [--scale 0.22] [--seed S]
 *               [--replicates R] [--checkpoint on|off]
 *               [--fastpath on|off] [--trace FILE]
 *               [--trace-buffer-events N] [--metrics FILE]
 *               [--progress] [--detach]
 *   xser-client attach --port P --id CAMPAIGN
 *   xser-client shutdown --port P
 *
 * `run` prints the server-rendered report to stdout and writes the
 * --trace / --metrics files locally, so its observable output is
 * byte-identical to a local `xser campaign` run with the same options
 * (the CI determinism gate cmp's exactly this). The campaign options
 * deliberately mirror `xser campaign`.
 */

#include <cstdio>
#include <string>

#include "cli/args.hh"
#include "core/parallel_campaign.hh"
#include "service/client.hh"
#include "sim/logging.hh"
#include "trace/trace_buffer.hh"

namespace {

using namespace xser;

void
printUsage()
{
    std::printf(
        "usage: xser-client <command> [options]\n"
        "\n"
        "commands:\n"
        "  run       submit a campaign and wait for the artifacts\n"
        "              --port P --host A --scale F --seed S\n"
        "              --replicates R --checkpoint on|off\n"
        "              --fastpath on|off --trace FILE\n"
        "              --trace-buffer-events N --metrics FILE\n"
        "              --progress (live meter on stderr)\n"
        "              --detach (print the campaign id and exit)\n"
        "              --reconnect-attempts N (default 5)\n"
        "  attach    watch an existing campaign\n"
        "              --port P --id CAMPAIGN\n"
        "  shutdown  ask the server to drain and exit\n"
        "              --port P\n");
}

/** Parse an on|off option with a default (fatal on anything else). */
bool
onOffFlag(const cli::Args &args, const char *name)
{
    const std::string value = args.get(name, "on");
    if (value == "on")
        return true;
    if (value == "off")
        return false;
    fatal(msg("option --", name, " expects 'on' or 'off'"));
    return true;
}

/** Upper bound for --trace-buffer-events (matches `xser campaign`). */
constexpr uint64_t maxTraceBufferEvents = uint64_t(1) << 30;

service::CampaignParams
campaignParams(const cli::Args &args)
{
    service::CampaignParams params;
    params.scale = args.getDouble("scale", 0.22);
    params.seed = args.getUint("seed", 0x5e5510ULL);
    params.replicates = static_cast<uint32_t>(
        args.getCount("replicates", 1, 1, 1u << 20));
    params.checkpoint = onOffFlag(args, "checkpoint");
    params.fastpath = onOffFlag(args, "fastpath");
    params.traceBufferEvents =
        args.getCount("trace-buffer-events",
                      trace::TraceBuffer::defaultMaxEvents, 1,
                      maxTraceBufferEvents);
    params.wantTrace = args.has("trace");
    params.wantMetrics = args.has("metrics");
    // Hash the locally rebuilt config: if the server's build disagrees
    // it refuses the campaign instead of returning skewed bytes.
    const core::CampaignConfig config =
        service::buildCampaign(params);
    params.configHash = core::campaignConfigHash(config);
    return params;
}

uint16_t
requiredPort(const cli::Args &args)
{
    if (!args.has("port"))
        fatal("xser-client requires --port <server port>");
    return static_cast<uint16_t>(args.getCount("port", 0, 1, 65535));
}

} // namespace

int
main(int argc, char **argv)
{
    const cli::Args args = cli::Args::parse(argc, argv);
    const std::string &command = args.command();
    if (command == "help" || command == "-h" || args.has("help")) {
        printUsage();
        return 0;
    }

    service::ClientConfig config;
    config.host = args.get("host", config.host);
    config.reconnectAttempts = static_cast<unsigned>(
        args.getUint("reconnect-attempts", config.reconnectAttempts));

    if (command == "run") {
        config.port = requiredPort(args);
        config.command = service::ClientCommand::Run;
        config.params = campaignParams(args);
        if (args.has("trace")) {
            config.tracePath = args.get("trace", "");
            if (config.tracePath.empty())
                fatal("option --trace expects a file path");
        }
        if (args.has("metrics")) {
            config.metricsPath = args.get("metrics", "");
            if (config.metricsPath.empty())
                fatal("option --metrics expects a file path");
        }
        config.detach = args.has("detach");
        config.progress = args.has("progress");
        return service::runClient(config);
    }
    if (command == "attach") {
        config.port = requiredPort(args);
        config.command = service::ClientCommand::Attach;
        config.campaignId = args.getUint("id", 0);
        if (config.campaignId == 0)
            fatal("attach requires --id <campaign id>");
        config.progress = args.has("progress");
        return service::runClient(config);
    }
    if (command == "shutdown") {
        config.port = requiredPort(args);
        config.command = service::ClientCommand::Shutdown;
        return service::runClient(config);
    }
    printUsage();
    return 2;
}
