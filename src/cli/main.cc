/**
 * @file
 * The xser command-line driver: run characterizations, sessions,
 * campaigns, and policy analyses without writing C++.
 *
 *   xser spec
 *   xser characterize [--freq 2.4e9] [--start 980] [--stop 890]
 *                     [--runs 500] [--csv sweep.csv]
 *   xser session --pmd 920 [--soc 920] [--freq 2.4e9] [--events 50]
 *                [--fluence 2e10] [--warmup 8] [--seed 7]
 *                [--trace out.xtrace] [--csv out.csv]
 *   xser campaign [--scale 0.22] [--seed 7] [--jobs 8|auto]
 *                 [--replicates 4] [--checkpoint on|off]
 *                 [--trace out.xtrace] [--csv out.csv]
 *   xser tradeoff [--devices 50000] [--checkpoint 30] [--altitude 0]
 *                 [--budget 10]
 */

#include <cstdio>
#include <memory>
#include <string>

#include "cli/args.hh"
#include "inject/avf_estimator.hh"
#include "core/beam_campaign.hh"
#include "core/campaign_report.hh"
#include "core/fit_calculator.hh"
#include "core/parallel_campaign.hh"
#include "core/report_export.hh"
#include "core/run_manifest.hh"
#include "core/table_printer.hh"
#include "core/test_session.hh"
#include "core/tradeoff.hh"
#include "cpu/xgene2_platform.hh"
#include "sim/logging.hh"
#include "telemetry/metrics.hh"
#include "telemetry/progress.hh"
#include "telemetry/stopwatch.hh"
#include "trace/trace_buffer.hh"
#include "trace/trace_writer.hh"
#include "volt/vmin_characterizer.hh"

namespace {

using namespace xser;

void
printUsage()
{
    std::printf(
        "usage: xser <command> [options]\n"
        "\n"
        "commands:\n"
        "  spec          print the simulated platform specification\n"
        "  characterize  sweep the PMD supply and find the safe Vmin\n"
        "                  --freq HZ --start MV --stop MV --runs N\n"
        "                  --seed S --csv FILE\n"
        "  session       one accelerated beam session\n"
        "                  --pmd MV [--soc MV] [--freq HZ]\n"
        "                  --events N --fluence NCM2 --warmup N\n"
        "                  --seed S --csv FILE --fastpath on|off\n"
        "                  --trace FILE --trace-buffer-events N\n"
        "                  --metrics FILE (versioned run manifest)\n"
        "  campaign      the paper's four Table 2 sessions\n"
        "                  --scale F --seed S --csv FILE\n"
        "                  --jobs N|auto --replicates R\n"
        "                  --fastpath on|off (off = reference paths;\n"
        "                  bit-identical results either way)\n"
        "                  --checkpoint on|off (off = replay the\n"
        "                  golden prefix per replicate instead of\n"
        "                  forking it; bit-identical either way)\n"
        "                  --trace FILE --trace-buffer-events N\n"
        "                  --metrics FILE (versioned run manifest;\n"
        "                  inspect with xser-metrics)\n"
        "                  --progress (live stderr progress line;\n"
        "                  TTY only, --quiet wins)\n"
        "                  (results, trace files, and every manifest\n"
        "                  section outside \"timing\" bit-identical for\n"
        "                  any --jobs and with telemetry on or off;\n"
        "                  see README 'Running campaigns')\n"
        "  tradeoff      energy-vs-SDC policy curve for a fleet\n"
        "                  --devices N --checkpoint SEC\n"
        "                  --altitude M --budget SDCS_PER_YEAR\n"
        "  avf           statistical fault injection per cache level\n"
        "                  --workload NAME --trials N --flips K\n"
        "                  --burst SIZE\n"
        "                  --seed S\n"
        "\n"
        "global options:\n"
        "  --quiet       suppress warnings, status output, and the\n"
        "                live progress line (reports still print)\n");
}

int
usage()
{
    printUsage();
    return 2;
}

int
cmdSpec()
{
    cpu::XGene2Platform platform;
    std::printf("%s\n%s", platform.specTable().c_str(),
                core::formatTable3().c_str());
    return 0;
}

int
cmdCharacterize(const cli::Args &args)
{
    cpu::XGene2Platform platform;
    volt::VminCharacterizer characterizer(platform.timing(),
                                          platform.variation());
    volt::VminSweepConfig config;
    config.frequencyHz = args.getDouble("freq", 2.4e9);
    config.startMillivolts = args.getDouble("start", 980.0);
    config.stopMillivolts = args.getDouble("stop", 890.0);
    config.runsPerStep =
        static_cast<unsigned>(args.getUint("runs", 500));
    config.seed = args.getUint("seed", 0xc11ffULL);
    const volt::VminSweepResult result = characterizer.sweep(config);

    core::TablePrinter table({"mV", "pfail", "failures/runs"});
    for (const auto &step : result.steps) {
        table.addRow({core::TablePrinter::fmt(step.millivolts, 0),
                      core::TablePrinter::pct(step.pfail),
                      std::to_string(step.failures) + "/" +
                          std::to_string(step.runs)});
    }
    std::printf("%s\nsafe Vmin: %.0f mV\n", table.toString().c_str(),
                result.safeVminMillivolts);
    if (args.has("csv"))
        core::writeFile(args.get("csv", ""),
                        core::sweepToCsv(result));
    return 0;
}

/** Upper bound for --trace-buffer-events (2^30 events = ~32 GB). */
constexpr uint64_t maxTraceBufferEvents = uint64_t(1) << 30;

/**
 * Open the --trace writer, if requested. Opening happens here, before
 * any simulation time is spent, so an unwritable path fails fast.
 */
std::unique_ptr<trace::TraceWriter>
makeTraceWriter(const cli::Args &args)
{
    if (!args.has("trace"))
        return nullptr;
    const std::string path = args.get("trace", "");
    if (path.empty())
        fatal("option --trace expects a file path");
    return std::make_unique<trace::TraceWriter>(path);
}

/** Path given to --metrics, or empty when the flag is absent. */
std::string
metricsPath(const cli::Args &args)
{
    if (!args.has("metrics"))
        return "";
    const std::string path = args.get("metrics", "");
    if (path.empty())
        fatal("option --metrics expects a file path");
    return path;
}

/** Parse an on|off option with a default (fatal on anything else). */
bool
onOffFlag(const cli::Args &args, const char *name)
{
    const std::string value = args.get(name, "on");
    if (value == "on")
        return true;
    if (value == "off")
        return false;
    fatal(msg("option --", name, " expects 'on' or 'off'"));
    return true;
}

/** Parse --fastpath on|off (default on). */
bool
fastPathFlag(const cli::Args &args)
{
    return onOffFlag(args, "fastpath");
}

int
cmdSession(const cli::Args &args)
{
    if (!args.has("pmd"))
        fatal("session requires --pmd <millivolts>");

    const telemetry::Stopwatch elapsed;
    const std::string metrics_path = metricsPath(args);
    core::SessionConfig config;
    config.point.pmdMillivolts = args.getDouble("pmd", 980.0);
    config.point.socMillivolts =
        args.getDouble("soc", std::min(950.0,
                                       config.point.pmdMillivolts + 30));
    config.point.frequencyHz = args.getDouble("freq", 2.4e9);
    config.point.name = config.point.label();
    config.maxErrorEvents = args.getUint("events", 50);
    config.maxFluence = args.getDouble("fluence", 2e10);
    config.warmupRounds = static_cast<unsigned>(
        args.getUint("warmup", config.warmupRounds));
    config.seed = args.getUint("seed", 0x5e5510ULL);
    const bool fastpath = fastPathFlag(args);
    config.beam.skipAhead = fastpath;

    std::unique_ptr<trace::TraceWriter> writer = makeTraceWriter(args);
    std::unique_ptr<trace::TraceBuffer> buffer;
    if (writer) {
        buffer = std::make_unique<trace::TraceBuffer>(
            args.getCount("trace-buffer-events",
                          trace::TraceBuffer::defaultMaxEvents, 1,
                          maxTraceBufferEvents));
        buffer->info.pmdMillivolts = config.point.pmdMillivolts;
        buffer->info.socMillivolts = config.point.socMillivolts;
        buffer->info.frequencyHz = config.point.frequencyHz;
        buffer->info.workloads = config.workloadNames;
        config.traceSink = buffer.get();
    }

    cpu::PlatformConfig platform_config;
    platform_config.memory.fastPath = fastpath;
    cpu::XGene2Platform platform(platform_config);
    core::TestSession session(&platform, config);
    std::unique_ptr<telemetry::MetricRegistry> registry;
    if (!metrics_path.empty())
        registry = std::make_unique<telemetry::MetricRegistry>(1);
    const core::SessionResult result = [&] {
        const telemetry::ShardScope scope(
            registry != nullptr ? &registry->shard(0) : nullptr);
        return session.execute();
    }();

    if (writer) {
        core::CampaignConfig one;
        one.sessions.push_back(config);
        writer->writeHeader(config.seed, core::campaignConfigHash(one),
                            platform.memory().traceArrayTable(), 1);
        writer->appendUnit(*buffer);
        writer->finish();
        std::printf("trace: %llu events (%llu dropped) -> %s\n",
                    static_cast<unsigned long long>(
                        buffer->events().size()),
                    static_cast<unsigned long long>(buffer->dropped()),
                    writer->path().c_str());
    }

    if (registry != nullptr) {
        core::CampaignConfig one;
        one.sessions.push_back(config);
        core::ManifestRunInfo info;
        info.tool = "xser session";
        info.configHash = core::campaignConfigHash(one);
        info.seed = config.seed;
        info.sessions = 1;
        info.replicates = 1;
        info.fastpath = fastpath;
        info.checkpoint = false;
        core::SessionAggregate aggregate;
        aggregate.point = config.point;
        aggregate.add(result);
        core::writeManifestFile(
            metrics_path,
            core::renderRunManifest(info, {aggregate}, registry.get(),
                                    1, elapsed.seconds()));
    }

    std::printf("%s", core::formatTable2({result}).c_str());
    const core::FitBreakdown fit = core::FitCalculator::breakdown(result);
    std::printf("\nFIT (NYC): SDC %.2f [%.2f, %.2f] | total %.2f "
                "[%.2f, %.2f]\n",
                fit.sdc.fit, fit.sdc.ci.lower, fit.sdc.ci.upper,
                fit.total.fit, fit.total.ci.lower, fit.total.ci.upper);
    if (args.has("csv"))
        core::writeFile(args.get("csv", ""),
                        core::sessionsToCsv({result}));
    return 0;
}

int
cmdCampaign(const cli::Args &args)
{
    const telemetry::Stopwatch elapsed;
    const double scale = args.getDouble("scale", 0.22);
    const uint64_t seed = args.getUint("seed", 0x5e5510ULL);
    const std::string metrics_path = metricsPath(args);
    core::ParallelRunConfig run;
    run.jobs = args.getJobs("jobs", 1);
    run.replicates =
        static_cast<unsigned>(args.getUint("replicates", 1));
    run.seed = seed;
    run.checkpoint = onOffFlag(args, "checkpoint");
    run.traceBufferEvents =
        args.getCount("trace-buffer-events",
                      trace::TraceBuffer::defaultMaxEvents, 1,
                      maxTraceBufferEvents);
    std::unique_ptr<trace::TraceWriter> writer = makeTraceWriter(args);
    core::CampaignConfig campaign =
        core::BeamCampaign::paperCampaign(scale, seed);
    const bool fastpath = fastPathFlag(args);
    core::setFastPath(campaign, fastpath);

    std::unique_ptr<telemetry::MetricRegistry> registry;
    if (!metrics_path.empty()) {
        registry =
            std::make_unique<telemetry::MetricRegistry>(run.jobs);
        run.metrics = registry.get();
    }
    // Progress needs a terminal, and --quiet wins (see sim/logging.hh
    // for the precedence contract).
    telemetry::ProgressMeter progress;
    if (args.has("progress") && telemetry::progressSupported() &&
        Logger::global().level() != LogLevel::Quiet) {
        const uint64_t sessions = campaign.sessions.size();
        const uint64_t tasks =
            sessions * run.replicates +
            (run.checkpoint ? sessions : 0);
        progress.begin("campaign", tasks);
        run.progress = &progress;
    }

    core::ParallelCampaignRunner runner(campaign, run);
    const core::ReplicatedCampaignResult sweep =
        runner.executeAll(writer.get());
    progress.finish();

    if (registry != nullptr) {
        core::ManifestRunInfo info;
        info.tool = "xser campaign";
        info.configHash = core::campaignConfigHash(campaign);
        info.seed = seed;
        info.scale = scale;
        info.sessions =
            static_cast<unsigned>(campaign.sessions.size());
        info.replicates = run.replicates;
        info.fastpath = fastpath;
        info.checkpoint = run.checkpoint;
        core::writeManifestFile(
            metrics_path,
            core::renderRunManifest(info, sweep.sessions,
                                    registry.get(), run.jobs,
                                    elapsed.seconds()));
    }
    if (writer)
        std::printf("%s",
                    core::formatTraceLine(writer->unitsWritten(),
                                          writer->path())
                        .c_str());
    std::printf("%s", core::formatCampaignReport(sweep).c_str());
    if (args.has("csv"))
        core::writeFile(
            args.get("csv", ""),
            core::sessionsToCsv(sweep.replicates.front().sessions));
    return 0;
}

int
cmdAvf(const cli::Args &args)
{
    inject::AvfConfig config;
    config.workloadName = args.get("workload", "EP");
    config.trials = static_cast<unsigned>(args.getUint("trials", 40));
    config.flipsPerTrial =
        static_cast<unsigned>(args.getUint("flips", 48));
    config.burstSize =
        static_cast<unsigned>(args.getUint("burst", 1));
    config.seed = args.getUint("seed", 0xa7fULL);
    inject::AvfEstimator estimator(config);
    rad::CrossSectionModel xsection;

    core::TablePrinter table({"level", "corrupted/trials", "AVF",
                              "FIT @980mV", "FIT @920mV"});
    for (auto level : {mem::CacheLevel::Tlb, mem::CacheLevel::L1,
                       mem::CacheLevel::L2, mem::CacheLevel::L3}) {
        const inject::AvfResult result = estimator.estimate(level);
        const double volts_nominal =
            level == mem::CacheLevel::L3 ? 0.950 : 0.980;
        const double volts_low = 0.920;
        table.addRow({mem::cacheLevelName(level),
                      std::to_string(result.corruptedTrials) + "/" +
                          std::to_string(result.trials),
                      core::TablePrinter::sci(result.avf, 2),
                      core::TablePrinter::fmt(
                          estimator.projectFit(result, xsection,
                                               volts_nominal),
                          3),
                      core::TablePrinter::fmt(
                          estimator.projectFit(result, xsection,
                                               volts_low),
                          3)});
    }
    std::printf("%s", table.toString().c_str());
    std::printf("\nper-structure FIT = bits x sigma(V) x flux x AVF "
                "(Design Implication #3).\n"
                "single flips in protected arrays show ~zero AVF "
                "(parity/SECDED absorb them);\nstudy the multi-bit "
                "channel with --burst 3.\n");
    return 0;
}

int
cmdTradeoff(const cli::Args &args)
{
    volt::PowerModel power;
    volt::TimingModel timing;
    core::LogicSusceptibilityModel logic(&timing);
    core::TradeoffConfig config;
    config.devices = args.getDouble("devices", 50000.0);
    config.checkpointSeconds = args.getDouble("checkpoint", 30.0);
    config.environment =
        rad::atAltitude(args.getDouble("altitude", 0.0));
    core::EnergyReliabilityAnalyzer analyzer(&power, &logic, config);

    core::TablePrinter table({"PMD (mV)", "power (W)", "waste",
                              "SDCs/yr", "energy (MWh/yr)"});
    for (const auto &point : analyzer.ladder(920.0)) {
        table.addRow({core::TablePrinter::fmt(
                          point.point.pmdMillivolts, 0),
                      core::TablePrinter::fmt(point.powerWatts, 2),
                      core::TablePrinter::pct(point.wasteFraction, 3),
                      core::TablePrinter::fmt(
                          point.sdcIncidentsPerYear, 1),
                      core::TablePrinter::fmt(point.energyPerYearMwh,
                                              0)});
    }
    std::printf("%s", table.toString().c_str());
    if (args.has("budget")) {
        const core::TradeoffPoint best = analyzer.bestUnderSdcBudget(
            args.getDouble("budget", 10.0));
        std::printf("\nbest under %.1f SDCs/year: %s\n",
                    args.getDouble("budget", 10.0),
                    best.point.label().c_str());
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    const cli::Args args = cli::Args::parse(argc, argv);
    if (args.has("quiet"))
        Logger::global().setLevel(LogLevel::Quiet);
    const std::string &command = args.command();
    // `--help` parses as an option (no command), `help`/`-h` as a
    // command; all three print the usage text and exit 0.
    if (command == "help" || command == "-h" || args.has("help")) {
        printUsage();
        return 0;
    }
    if (command == "spec")
        return cmdSpec();
    if (command == "characterize")
        return cmdCharacterize(args);
    if (command == "session")
        return cmdSession(args);
    if (command == "campaign")
        return cmdCampaign(args);
    if (command == "tradeoff")
        return cmdTradeoff(args);
    if (command == "avf")
        return cmdAvf(args);
    return usage();
}
