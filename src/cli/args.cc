/**
 * @file
 * Args implementation.
 */

#include "cli/args.hh"

#include <cstdlib>
#include <thread>

#include "sim/logging.hh"

namespace xser::cli {

Args
Args::parse(int argc, const char *const *argv)
{
    Args args;
    for (int i = 1; i < argc; ++i) {
        const std::string token = argv[i];
        if (token.rfind("--", 0) == 0) {
            const std::string key = token.substr(2);
            if (key.empty())
                fatal("empty option name '--'");
            std::string value;
            if (i + 1 < argc &&
                std::string(argv[i + 1]).rfind("--", 0) != 0) {
                value = argv[++i];
            }
            args.options_[key] = value;
        } else if (args.command_.empty()) {
            args.command_ = token;
        } else {
            fatal(msg("unexpected positional argument '", token, "'"));
        }
    }
    return args;
}

bool
Args::has(const std::string &key) const
{
    return options_.count(key) > 0;
}

std::string
Args::get(const std::string &key, const std::string &fallback) const
{
    auto found = options_.find(key);
    return found == options_.end() ? fallback : found->second;
}

double
Args::getDouble(const std::string &key, double fallback) const
{
    auto found = options_.find(key);
    if (found == options_.end())
        return fallback;
    char *end = nullptr;
    const double value = std::strtod(found->second.c_str(), &end);
    if (end == found->second.c_str() || *end != '\0')
        fatal(msg("option --", key, " expects a number, got '",
                  found->second, "'"));
    return value;
}

uint64_t
Args::getUint(const std::string &key, uint64_t fallback) const
{
    auto found = options_.find(key);
    if (found == options_.end())
        return fallback;
    char *end = nullptr;
    const unsigned long long value =
        std::strtoull(found->second.c_str(), &end, 0);
    if (end == found->second.c_str() || *end != '\0')
        fatal(msg("option --", key, " expects an integer, got '",
                  found->second, "'"));
    return value;
}

uint64_t
Args::getCount(const std::string &key, uint64_t fallback,
               uint64_t min_value, uint64_t max_value) const
{
    const uint64_t value = getUint(key, fallback);
    if (value < min_value || value > max_value)
        fatal(msg("option --", key, " expects a count in [", min_value,
                  ", ", max_value, "], got ", value));
    return value;
}

unsigned
Args::getJobs(const std::string &key, unsigned fallback) const
{
    auto found = options_.find(key);
    if (found == options_.end())
        return fallback;
    if (found->second == "auto") {
        const unsigned hardware = std::thread::hardware_concurrency();
        return hardware > 0 ? hardware : 1;
    }
    const uint64_t value = getUint(key, fallback);
    if (value == 0 || value > 1024)
        fatal(msg("option --", key,
                  " expects 1..1024 or 'auto', got '", found->second,
                  "'"));
    return static_cast<unsigned>(value);
}

std::vector<std::string>
Args::keys() const
{
    std::vector<std::string> keys;
    keys.reserve(options_.size());
    for (const auto &[key, value] : options_)
        keys.push_back(key);
    return keys;
}

} // namespace xser::cli
