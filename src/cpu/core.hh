/**
 * @file
 * Per-core front-end activity model.
 *
 * Workload data traffic flows through the bit-true hierarchy, but
 * instruction fetch and TLB lookups are not executed natively (the
 * kernels are compiled C++). Each Core therefore drives a synthetic
 * touch process over its L1I and TLB arrays, confined to the running
 * workload's code/page footprint: this is what gives those parity
 * arrays their *detection* opportunities -- an upset in a never-touched
 * word goes unobserved, exactly as on the real chip (Section 3.5).
 */

#ifndef XSER_CPU_CORE_HH
#define XSER_CPU_CORE_HH

#include <cstdint>

#include "mem/memory_system.hh"
#include "sim/rng.hh"

namespace xser::cpu {

/** Touch-process rates of one core. */
struct CoreConfig {
    unsigned id = 0;
    /** Synthetic instruction-fetch touches per data access. */
    double ifetchTouchesPerAccess = 0.50;
    /** Synthetic TLB-entry touches per data access. */
    double tlbTouchesPerAccess = 0.25;
    /**
     * Fraction of touches that are replacements (refills) rather than
     * checked reads: a refill overwrites the entry without reading it,
     * destroying latent flips undetected. This is what keeps the
     * parity arrays' detection efficiency below 100 %.
     */
    double ifetchReplaceFraction = 0.40;
    double tlbReplaceFraction = 0.60;
};

/**
 * One Armv8 core's front-end driver.
 */
class Core
{
  public:
    /**
     * @param config Touch rates.
     * @param memory Hierarchy owning this core's L1I/TLB arrays.
     * @param rng Dedicated stream for footprint sampling.
     */
    Core(const CoreConfig &config, mem::MemorySystem *memory, Rng rng);

    unsigned id() const { return config_.id; }

    /**
     * Set the active workload's footprints.
     *
     * @param code_words L1I words the workload's code spans.
     * @param tlb_entries TLB entries its pages occupy.
     */
    void setFootprint(size_t code_words, size_t tlb_entries);

    /**
     * Drive the front end for a quantum of `accesses` data accesses:
     * touch proportional numbers of I-fetch words and TLB entries
     * within the current footprints (carrying fractional remainders).
     */
    void driveQuantum(uint64_t accesses);

    /**
     * Serialize checkpointable state: the RNG stream (which advances
     * with every quantum, so the golden prefix leaves it mid-sequence)
     * plus the fractional touch carries and the active footprints.
     */
    void
    snapshot(SnapshotWriter &writer) const
    {
        for (const uint64_t word : rng_.state())
            writer.u64(word);
        writer.f64(rng_.cachedGaussian());
        writer.u8(rng_.hasCachedGaussian() ? 1 : 0);
        writer.f64(ifetchCarry_);
        writer.f64(tlbCarry_);
        writer.u64(codeWords_);
        writer.u64(tlbEntries_);
    }

    /** Restore state captured by snapshot(). */
    void
    restore(SnapshotReader &reader)
    {
        std::array<uint64_t, 4> state;
        for (uint64_t &word : state)
            word = reader.u64();
        const double cached = reader.f64();
        const bool has_cached = reader.u8() != 0;
        rng_.restoreState(state, cached, has_cached);
        ifetchCarry_ = reader.f64();
        tlbCarry_ = reader.f64();
        codeWords_ = static_cast<size_t>(reader.u64());
        tlbEntries_ = static_cast<size_t>(reader.u64());
    }

  private:
    CoreConfig config_;
    mem::MemorySystem *memory_;
    Rng rng_;
    size_t codeWords_;
    size_t tlbEntries_;
    double ifetchCarry_ = 0.0;
    double tlbCarry_ = 0.0;
};

} // namespace xser::cpu

#endif // XSER_CPU_CORE_HH
