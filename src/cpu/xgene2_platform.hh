/**
 * @file
 * The assembled X-Gene 2 server platform (Table 1 + Fig. 1 of the
 * paper): 8 Armv8 cores in 4 dual-core PMDs, parity L1I/L1D and TLBs
 * per core, a SECDED 256 KB L2 per pair, a shared SECDED 8 MB L3 in the
 * SoC domain, independently regulated PMD/SoC supplies, a per-chip
 * process-variation sample, the voltage-cliff timing model, and the
 * calibrated power model.
 *
 * This is the main object users construct; campaigns, characterizers,
 * and examples all operate on it.
 */

#ifndef XSER_CPU_XGENE2_PLATFORM_HH
#define XSER_CPU_XGENE2_PLATFORM_HH

#include <memory>
#include <string>
#include <vector>

#include "cpu/core.hh"
#include "mem/memory_system.hh"
#include "sim/sim_clock.hh"
#include "volt/operating_point.hh"
#include "volt/power_model.hh"
#include "volt/process_variation.hh"
#include "volt/timing_model.hh"
#include "volt/voltage_domain.hh"

namespace xser::cpu {

/** Platform-wide configuration. */
struct PlatformConfig {
    mem::MemorySystemConfig memory;
    volt::TimingModelConfig timing;
    volt::PowerModelConfig power;
    CoreConfig coreTemplate;  ///< id is overwritten per core
    /** Core-to-core process-variation spread (volts). */
    double processSigmaVolts = 0.0015;
    /** Seed identifying this physical chip specimen. */
    uint64_t chipSeed = 0x86e2ULL;
};

/**
 * The server under test.
 */
class XGene2Platform
{
  public:
    explicit XGene2Platform(const PlatformConfig &config = {});

    /* Component access. */
    mem::MemorySystem &memory() { return *memory_; }
    mem::EdacReporter &edac() { return edac_; }
    volt::VoltageDomain &pmdDomain() { return pmd_; }
    volt::VoltageDomain &socDomain() { return soc_; }
    SimClock &clock() { return clock_; }
    const volt::TimingModel &timing() const { return timing_; }
    const volt::ProcessVariation &variation() const { return variation_; }
    const volt::PowerModel &power() const { return power_; }
    Core &core(unsigned index);
    unsigned numCores() const
    {
        return static_cast<unsigned>(cores_.size());
    }

    /** Apply an operating point to both domains and the core clock. */
    void applyOperatingPoint(const volt::OperatingPoint &point);

    /** Current operating point (name reflects voltages/frequency). */
    volt::OperatingPoint operatingPoint() const;

    /** Set every core's workload code/TLB footprint. */
    void setWorkloadFootprint(size_t code_words, size_t tlb_entries);

    /** Drive every core's front end for a quantum of accesses. */
    void driveFrontEnd(uint64_t accesses_per_core);

    /**
     * Convert a total cycle count (summed over all cores' accesses)
     * into elapsed wall time on the 8-way-parallel chip and advance the
     * simulated clock by it.
     *
     * @return The elapsed ticks.
     */
    Tick advanceForCycles(uint64_t total_cycles);

    /** Chip power at the current operating point. */
    double currentPowerWatts(double activity = 1.0) const;

    /**
     * Serialize the platform's checkpointable state: the simulated
     * clock, every core's front-end driver (RNG stream + carries), and
     * the full memory hierarchy. Voltage domains, timing, variation,
     * and power are pure functions of configuration + the applied
     * operating point, so the restorer re-applies the operating point
     * instead of serializing them.
     */
    void snapshot(SnapshotWriter &writer) const;

    /**
     * Restore state captured by snapshot() into a platform built from
     * the same configuration, after applyOperatingPoint() has set the
     * clock frequency and domain voltages.
     */
    void restore(SnapshotReader &reader);

    /** Formatted Table 1 specification dump. */
    std::string specTable() const;

  private:
    PlatformConfig config_;
    mem::EdacReporter edac_;
    std::unique_ptr<mem::MemorySystem> memory_;
    volt::VoltageDomain pmd_;
    volt::VoltageDomain soc_;
    SimClock clock_;
    volt::TimingModel timing_;
    volt::ProcessVariation variation_;
    volt::PowerModel power_;
    std::vector<std::unique_ptr<Core>> cores_;
};

} // namespace xser::cpu

#endif // XSER_CPU_XGENE2_PLATFORM_HH
