/**
 * @file
 * Core implementation.
 */

#include "cpu/core.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace xser::cpu {

Core::Core(const CoreConfig &config, mem::MemorySystem *memory, Rng rng)
    : config_(config), memory_(memory), rng_(rng)
{
    XSER_ASSERT(memory_ != nullptr, "core needs a memory system");
    codeWords_ = memory_->l1i(config_.id).words();
    tlbEntries_ = memory_->tlb(config_.id).words();
}

void
Core::setFootprint(size_t code_words, size_t tlb_entries)
{
    const size_t l1i_words = memory_->l1i(config_.id).words();
    const size_t tlb_words = memory_->tlb(config_.id).words();
    codeWords_ = std::clamp<size_t>(code_words, 1, l1i_words);
    tlbEntries_ = std::clamp<size_t>(tlb_entries, 1, tlb_words);
}

void
Core::driveQuantum(uint64_t accesses)
{
    ifetchCarry_ += config_.ifetchTouchesPerAccess *
                    static_cast<double>(accesses);
    tlbCarry_ += config_.tlbTouchesPerAccess *
                 static_cast<double>(accesses);

    auto ifetch_due = static_cast<uint64_t>(ifetchCarry_);
    auto tlb_due = static_cast<uint64_t>(tlbCarry_);
    ifetchCarry_ -= static_cast<double>(ifetch_due);
    tlbCarry_ -= static_cast<double>(tlb_due);

    for (uint64_t i = 0; i < ifetch_due; ++i) {
        const size_t index = rng_.nextBounded(codeWords_);
        if (rng_.nextBool(config_.ifetchReplaceFraction))
            memory_->l1i(config_.id).replace(
                index % memory_->l1i(config_.id).words());
        else
            memory_->touchIFetch(config_.id, index);
    }
    for (uint64_t i = 0; i < tlb_due; ++i) {
        const size_t index = rng_.nextBounded(tlbEntries_);
        if (rng_.nextBool(config_.tlbReplaceFraction))
            memory_->tlb(config_.id).replace(
                index % memory_->tlb(config_.id).words());
        else
            memory_->touchTlb(config_.id, index);
    }
}

} // namespace xser::cpu
