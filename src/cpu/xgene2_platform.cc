/**
 * @file
 * XGene2Platform implementation.
 */

#include "cpu/xgene2_platform.hh"

#include <sstream>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace xser::cpu {

XGene2Platform::XGene2Platform(const PlatformConfig &config)
    : config_(config), edac_(false),
      pmd_(volt::makePmdDomain()), soc_(volt::makeSocDomain()),
      clock_(2.4e9), timing_(config.timing),
      variation_(config.memory.numCores, config.processSigmaVolts,
                 config.chipSeed),
      power_(config.power)
{
    memory_ = std::make_unique<mem::MemorySystem>(config_.memory, &edac_);
    memory_->setTimeSource(clock_.nowPtr());

    Rng chip_rng(config_.chipSeed);
    for (unsigned id = 0; id < config_.memory.numCores; ++id) {
        CoreConfig core_config = config_.coreTemplate;
        core_config.id = id;
        cores_.push_back(std::make_unique<Core>(
            core_config, memory_.get(), chip_rng.fork(msg("core.", id))));
    }
}

Core &
XGene2Platform::core(unsigned index)
{
    XSER_ASSERT(index < cores_.size(), "core index out of range");
    return *cores_[index];
}

void
XGene2Platform::applyOperatingPoint(const volt::OperatingPoint &point)
{
    pmd_.setMillivolts(point.pmdMillivolts);
    soc_.setMillivolts(point.socMillivolts);
    clock_.setFrequency(point.frequencyHz);
}

volt::OperatingPoint
XGene2Platform::operatingPoint() const
{
    volt::OperatingPoint point;
    point.pmdMillivolts = pmd_.millivolts();
    point.socMillivolts = soc_.millivolts();
    point.frequencyHz = clock_.frequency();
    point.name = point.label();
    return point;
}

void
XGene2Platform::setWorkloadFootprint(size_t code_words,
                                     size_t tlb_entries)
{
    for (auto &core : cores_)
        core->setFootprint(code_words, tlb_entries);
}

void
XGene2Platform::driveFrontEnd(uint64_t accesses_per_core)
{
    for (auto &core : cores_)
        core->driveQuantum(accesses_per_core);
}

Tick
XGene2Platform::advanceForCycles(uint64_t total_cycles)
{
    // The workload's accesses are issued from all cores concurrently;
    // wall time is the per-core share of the total cycle cost.
    const uint64_t per_core =
        total_cycles / std::max<unsigned>(1, numCores());
    const Tick elapsed = per_core * clock_.period();
    clock_.advance(elapsed);
    return elapsed;
}

double
XGene2Platform::currentPowerWatts(double activity) const
{
    volt::OperatingPoint point;
    point.pmdMillivolts = pmd_.millivolts();
    point.socMillivolts = soc_.millivolts();
    point.frequencyHz = clock_.frequency();
    return power_.totalWatts(point, activity);
}

void
XGene2Platform::snapshot(SnapshotWriter &writer) const
{
    writer.u64(clock_.now());
    writer.u64(cores_.size());
    for (const auto &core : cores_)
        core->snapshot(writer);
    memory_->snapshot(writer);
}

void
XGene2Platform::restore(SnapshotReader &reader)
{
    clock_.setNow(reader.u64());
    const uint64_t cores = reader.u64();
    XSER_ASSERT(cores == cores_.size(),
                "snapshot core count mismatch restoring platform");
    for (auto &core : cores_)
        core->restore(reader);
    memory_->restore(reader);
}

std::string
XGene2Platform::specTable() const
{
    const auto &memcfg = config_.memory;
    std::ostringstream os;
    os << "Parameter                 | X-Gene 2 Server CPU (simulated)\n"
       << "--------------------------+--------------------------------\n"
       << "ISA                       | Armv8 (AArch64)\n"
       << "Pipeline / CPU Cores      | 64-bit OoO (4-issue) / "
       << memcfg.numCores << "\n"
       << "Clock Frequency           | " << clock_.frequency() / 1e9
       << " GHz\n"
       << "D/I TLBs                  | " << memcfg.tlbWordsPerCore
       << " entries per core (Parity)\n"
       << "L1 Instruction Cache      | " << memcfg.l1iBytes / 1024
       << " KB per core (Parity)\n"
       << "L1 Data Cache             | " << memcfg.l1dBytes / 1024
       << " KB Write-Through per core (Parity)\n"
       << "L2 Cache                  | " << memcfg.l2Bytes / 1024
       << " KB Write-Back per pair of cores (SECDED)\n"
       << "L3 Cache                  | "
       << memcfg.l3Bytes / (1024 * 1024)
       << " MB Write-Back Shared (SECDED)\n"
       << "TDP / Technology          | 35 W / 28 nm\n"
       << "PMD/SoC Nominal Voltage   | " << pmd_.nominalMillivolts()
       << " mV / " << soc_.nominalMillivolts() << " mV\n";
    return os.str();
}

} // namespace xser::cpu
