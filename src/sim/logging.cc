/**
 * @file
 * Implementation of the global logger and fatal-error helpers.
 */

#include "sim/logging.hh"

#include <cstdlib>

namespace xser {

Logger &
Logger::global()
{
    static Logger instance;
    return instance;
}

void
Logger::emit(LogLevel level, const std::string &tag,
             const std::string &message)
{
    if (static_cast<int>(level) > static_cast<int>(level_))
        return;
    invokeLineHook();
    std::fprintf(stderr, "%s: %s\n", tag.c_str(), message.c_str());
}

void
fatal(const std::string &message)
{
    Logger::global().invokeLineHook();
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    std::exit(1);
}

void
panic(const std::string &message)
{
    Logger::global().invokeLineHook();
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

void
warn(const std::string &message)
{
    Logger::global().emit(LogLevel::Warn, "warn", message);
}

void
inform(const std::string &message)
{
    Logger::global().emit(LogLevel::Info, "info", message);
}

void
debugLog(const std::string &message)
{
    Logger::global().emit(LogLevel::Debug, "debug", message);
}

} // namespace xser
