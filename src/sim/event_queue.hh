/**
 * @file
 * Discrete-event queue.
 *
 * The campaign interleaves workload execution with asynchronous events
 * (beam upsets, scrubber passes, watchdog timeouts). Events are ordered by
 * (tick, sequence) so same-tick events fire in deterministic insertion
 * order regardless of heap internals.
 */

#ifndef XSER_SIM_EVENT_QUEUE_HH
#define XSER_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/sim_clock.hh"

namespace xser {

/** Identifier handed back by schedule(), usable for cancellation. */
using EventId = uint64_t;

/**
 * Deterministic discrete-event queue keyed by simulated ticks.
 */
class EventQueue
{
  public:
    using Callback = std::function<void(Tick)>;

    /**
     * Schedule a callback at an absolute tick.
     *
     * @param when Absolute simulated time of the event.
     * @param callback Invoked with the event's tick when it fires.
     * @return Id usable with cancel().
     */
    EventId schedule(Tick when, Callback callback);

    /** Cancel a pending event; returns false if already fired/cancelled. */
    bool cancel(EventId id);

    /** True if no live events remain. */
    bool empty() const { return liveCount_ == 0; }

    /** Number of live (non-cancelled, unfired) events. */
    size_t size() const { return liveCount_; }

    /** Tick of the earliest live event; panics if empty. */
    Tick nextTick() const;

    /**
     * Fire all events scheduled at or before the given tick, in order.
     *
     * @return Number of events fired.
     */
    size_t runUntil(Tick limit);

    /** Remove all pending events. */
    void clear();

  private:
    struct Entry {
        Tick when;
        uint64_t sequence;
        EventId id;
        bool operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return sequence > other.sequence;
        }
    };

    /** Drop cancelled entries from the top of the heap. */
    void skipDead() const;

    mutable std::priority_queue<Entry, std::vector<Entry>,
                                std::greater<Entry>> heap_;
    std::vector<Callback> callbacks_;
    std::vector<bool> live_;
    uint64_t nextSequence_ = 0;
    size_t liveCount_ = 0;
};

} // namespace xser

#endif // XSER_SIM_EVENT_QUEUE_HH
