/**
 * @file
 * Logging and fatal-error helpers, following the gem5 idiom: fatal() for
 * user/configuration errors the simulator cannot recover from, panic() for
 * internal invariant violations (simulator bugs), warn()/inform() for
 * status output that never stops the run.
 */

#ifndef XSER_SIM_LOGGING_HH
#define XSER_SIM_LOGGING_HH

#include <cstdio>
#include <sstream>
#include <string>

namespace xser {

/** Verbosity levels for the global logger. */
enum class LogLevel {
    Quiet = 0,  ///< only fatal/panic output
    Warn = 1,   ///< warnings and above
    Info = 2,   ///< informational messages and above
    Debug = 3,  ///< everything, including debug traces
};

/**
 * Process-wide logging configuration. A single global instance keeps the
 * library dependency-free; tests may lower the level to keep output quiet.
 *
 * Output precedence with the telemetry progress line (src/telemetry):
 *  - LogLevel::Quiet suppresses warn/inform/debug output AND the live
 *    progress line (--quiet wins over --progress);
 *  - at any other level, the registered line hook runs before every
 *    emitted message (and before fatal/panic output), so the progress
 *    line is erased first and log lines never interleave mid-line;
 *  - fatal/panic always print, but still run the hook so the terminal
 *    is left clean.
 */
class Logger
{
  public:
    /** Erases transient terminal state (e.g. a progress line). */
    using LineHook = void (*)();

    /** Access the global logger. */
    static Logger &global();

    LogLevel level() const { return level_; }
    void setLevel(LogLevel level) { level_ = level; }

    /** Install (or clear, with nullptr) the pre-output line hook. */
    void setLineHook(LineHook hook) { lineHook_ = hook; }

    /** Run the line hook, if any (used by fatal/panic too). */
    void invokeLineHook()
    {
        if (lineHook_ != nullptr)
            lineHook_();
    }

    /** Emit a message at the given level to stderr. */
    void emit(LogLevel level, const std::string &tag,
              const std::string &message);

  private:
    LogLevel level_ = LogLevel::Warn;
    LineHook lineHook_ = nullptr;
};

/** Report a user-facing configuration error and terminate with exit(1). */
[[noreturn]] void fatal(const std::string &message);

/** Report an internal invariant violation and abort(). */
[[noreturn]] void panic(const std::string &message);

/** Non-fatal warning about suspicious but tolerated conditions. */
void warn(const std::string &message);

/** Informational status message. */
void inform(const std::string &message);

/** Debug trace message (suppressed unless LogLevel::Debug). */
void debugLog(const std::string &message);

/**
 * Build a message from streamable parts, e.g.
 * `fatal(msg("bad voltage ", mv, " mV"))`.
 */
template <typename... Args>
std::string
msg(Args &&...args)
{
    std::ostringstream os;
    // Comma-fold keeps the zero-argument instantiation warning-free.
    ((os << args), ...);
    return os.str();
}

/** Assert an internal invariant; panics with location info on failure. */
#define XSER_ASSERT(cond, message)                                          \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::xser::panic(::xser::msg("assertion failed: ", #cond, " at ",  \
                                      __FILE__, ":", __LINE__, ": ",        \
                                      message));                            \
        }                                                                   \
    } while (0)

} // namespace xser

#endif // XSER_SIM_LOGGING_HH
