/**
 * @file
 * SnapshotWriter/SnapshotReader bulk-word encoding.
 *
 * The word-vector paths carry the memory hierarchy's multi-megabyte
 * data arrays, so they take the memcpy shortcut on little-endian hosts
 * (where the in-memory layout already matches the stream format) and
 * fall back to the explicit per-byte encoding elsewhere. Both paths
 * produce identical bytes -- the stream is little-endian by contract.
 */

#include "sim/snapshot.hh"

namespace xser {

void
SnapshotWriter::u64Vector(const std::vector<uint64_t> &words)
{
    u64(words.size());
    if constexpr (std::endian::native == std::endian::little) {
        const size_t bytes = words.size() * 8;
        const size_t at = out_.size();
        out_.resize(at + bytes);
        if (bytes > 0)
            std::memcpy(out_.data() + at, words.data(), bytes);
    } else {
        for (const uint64_t word : words)
            u64(word);
    }
}

void
SnapshotReader::u64Vector(std::vector<uint64_t> &out)
{
    const uint64_t count = u64();
    // Validate the count itself before multiplying: a corrupt prefix
    // must not overflow into a passing bounds check (or a huge resize).
    if (count > remaining() / 8)
        fatal(msg("snapshot stream underrun reading u64 vector: ", count,
                  " words, have ", remaining(), " bytes"));
    out.resize(static_cast<size_t>(count));
    if constexpr (std::endian::native == std::endian::little) {
        if (count > 0)
            std::memcpy(out.data(), data_ + cursor_,
                        static_cast<size_t>(count) * 8);
        cursor_ += static_cast<size_t>(count) * 8;
    } else {
        for (uint64_t &word : out)
            word = u64();
    }
}

} // namespace xser
