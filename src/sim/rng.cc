/**
 * @file
 * xoshiro256** implementation and distribution helpers.
 */

#include "sim/rng.hh"

#include <cmath>

#include "sim/logging.hh"

namespace xser {

uint64_t
SplitMix64::next()
{
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed)
{
    SplitMix64 seeder(seed);
    for (auto &word : state_)
        word = seeder.next();
    // A pathological all-zero state would lock the generator at zero.
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0)
        state_[0] = 0x9e3779b97f4a7c15ULL;
}

Rng
Rng::fork(const std::string &tag) const
{
    // Mix the current state with the tag hash; forks are stable given the
    // parent's construction seed and the sequence of fork calls.
    uint64_t mixed = state_[0] ^ rotl(state_[2], 17) ^ hashString(tag);
    return Rng(mixed);
}

double
Rng::nextGaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    // Box-Muller: two uniforms -> two independent normals.
    double u1 = nextDouble();
    while (u1 <= 0.0)
        u1 = nextDouble();
    const double u2 = nextDouble();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cachedGaussian_ = radius * std::sin(angle);
    hasCachedGaussian_ = true;
    return radius * std::cos(angle);
}

double
Rng::nextGaussian(double mean, double sigma)
{
    return mean + sigma * nextGaussian();
}

double
Rng::nextExponential(double rate)
{
    XSER_ASSERT(rate > 0.0, "exponential rate must be positive");
    double u = nextDouble();
    while (u <= 0.0)
        u = nextDouble();
    return -std::log(u) / rate;
}

uint64_t
Rng::nextPoisson(double mean)
{
    XSER_ASSERT(mean >= 0.0, "poisson mean must be non-negative");
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's multiplication method.
        const double limit = std::exp(-mean);
        uint64_t count = 0;
        double product = nextDouble();
        while (product > limit) {
            ++count;
            product *= nextDouble();
        }
        return count;
    }
    // Normal approximation with continuity correction; relative error is
    // negligible for campaign-scale means.
    const double draw = nextGaussian(mean, std::sqrt(mean));
    if (draw < 0.0)
        return 0;
    return static_cast<uint64_t>(draw + 0.5);
}

namespace {

/** SplitMix64 finalizer: a bijective 64-bit avalanche mix. */
inline uint64_t
mix64(uint64_t z)
{
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace

uint64_t
deriveStreamSeed(uint64_t campaign_seed, uint64_t session_index,
                 uint64_t replicate_index)
{
    // Fold each coordinate in with its own additive constant and a
    // full avalanche round, so (1, 0) and (0, 1) land nowhere near
    // each other even though XOR alone would alias them.
    uint64_t state = mix64(campaign_seed + 0x9e3779b97f4a7c15ULL);
    state = mix64(state ^ (session_index + 0xbf58476d1ce4e5b9ULL));
    state = mix64(state ^ (replicate_index + 0x94d049bb133111ebULL));
    return state;
}

uint64_t
hashString(const std::string &text)
{
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (unsigned char ch : text) {
        hash ^= ch;
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

} // namespace xser
