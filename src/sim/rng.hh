/**
 * @file
 * Deterministic random-number infrastructure.
 *
 * Every stochastic component of the simulator draws from an explicitly
 * seeded Rng so that campaigns replay bit-exactly. The generator is
 * xoshiro256** seeded through SplitMix64, following the reference
 * implementations by Blackman & Vigna. Distribution helpers cover the
 * needs of the radiation and voltage models: uniform, normal (Box-Muller),
 * exponential (inversion), and Poisson (Knuth for small means, PTRD-style
 * normal approximation fallback for large means).
 */

#ifndef XSER_SIM_RNG_HH
#define XSER_SIM_RNG_HH

#include <array>
#include <cstdint>
#include <string>

#include "sim/logging.hh"

namespace xser {

/**
 * SplitMix64 stream, used for seeding and for cheap decorrelated
 * sub-streams.
 */
class SplitMix64
{
  public:
    explicit SplitMix64(uint64_t seed) : state_(seed) {}

    /** Next 64-bit value. */
    uint64_t next();

  private:
    uint64_t state_;
};

/**
 * xoshiro256** pseudo-random generator with distribution helpers.
 *
 * All simulator randomness flows through instances of this class; there is
 * deliberately no global generator.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via SplitMix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /**
     * Derive a decorrelated child stream. Used to give each array, core,
     * and session its own stream so event ordering never perturbs other
     * components' draws.
     *
     * @param tag Stable label mixed into the child seed.
     */
    Rng fork(const std::string &tag) const;

    /** Uniform 64-bit value. */
    uint64_t
    nextU64()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);

        return result;
    }

    /** Uniform 32-bit value. */
    uint32_t nextU32() { return static_cast<uint32_t>(nextU64() >> 32); }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        // 53 top bits -> double in [0, 1).
        return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound) with rejection to avoid modulo bias. */
    uint64_t
    nextBounded(uint64_t bound)
    {
        XSER_ASSERT(bound > 0, "nextBounded requires a positive bound");
        // Rejection sampling over the largest multiple of bound.
        const uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            uint64_t value = nextU64();
            if (value >= threshold)
                return value % bound;
        }
    }

    /** Bernoulli draw with success probability p (clamped to [0, 1]). */
    bool
    nextBool(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return nextDouble() < p;
    }

    /** Standard normal via Box-Muller (cached second variate). */
    double nextGaussian();

    /** Normal with the given mean and standard deviation. */
    double nextGaussian(double mean, double sigma);

    /** Exponential with the given rate (mean 1/rate). */
    double nextExponential(double rate);

    /**
     * Poisson draw with the given mean. Exact (Knuth) for mean < 30;
     * normal approximation with continuity correction above, which is
     * accurate to well under the statistical noise of any campaign.
     */
    uint64_t nextPoisson(double mean);

    /** Expose raw state for checkpoints and checkpoint tests. */
    std::array<uint64_t, 4> state() const { return state_; }

    /** Cached Box-Muller variate, part of the checkpointable state. */
    double cachedGaussian() const { return cachedGaussian_; }
    bool hasCachedGaussian() const { return hasCachedGaussian_; }

    /**
     * Restore a previously observed state (checkpoint restore). The
     * restored generator continues the original draw sequence exactly,
     * including a pending cached Box-Muller variate.
     */
    void
    restoreState(const std::array<uint64_t, 4> &state,
                 double cached_gaussian, bool has_cached_gaussian)
    {
        state_ = state;
        cachedGaussian_ = cached_gaussian;
        hasCachedGaussian_ = has_cached_gaussian;
    }

  private:
    /** Rotate left helper for xoshiro. */
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<uint64_t, 4> state_;
    double cachedGaussian_ = 0.0;
    bool hasCachedGaussian_ = false;
};

/** Stable 64-bit FNV-1a hash of a string, for seed derivation. */
uint64_t hashString(const std::string &text);

/**
 * Deterministic stream splitter for parallel campaigns.
 *
 * Every independent work unit -- session `s` of replicate `r` under a
 * campaign seed -- gets its own decorrelated Rng seed derived purely
 * from the coordinate (seed, session, replicate), never from thread
 * identity or scheduling. Each coordinate passes through a full
 * SplitMix64 finalizer round, so neighbouring coordinates map to
 * statistically independent seeds and results are bit-identical for
 * any worker count.
 */
uint64_t deriveStreamSeed(uint64_t campaign_seed, uint64_t session_index,
                          uint64_t replicate_index);

} // namespace xser

#endif // XSER_SIM_RNG_HH
