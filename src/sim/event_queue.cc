/**
 * @file
 * EventQueue implementation.
 */

#include "sim/event_queue.hh"

#include "sim/logging.hh"

namespace xser {

EventId
EventQueue::schedule(Tick when, Callback callback)
{
    const EventId id = callbacks_.size();
    callbacks_.push_back(std::move(callback));
    live_.push_back(true);
    heap_.push(Entry{when, nextSequence_++, id});
    ++liveCount_;
    return id;
}

bool
EventQueue::cancel(EventId id)
{
    if (id >= live_.size() || !live_[id])
        return false;
    live_[id] = false;
    --liveCount_;
    return true;
}

void
EventQueue::skipDead() const
{
    while (!heap_.empty() && !live_[heap_.top().id])
        heap_.pop();
}

Tick
EventQueue::nextTick() const
{
    skipDead();
    XSER_ASSERT(!heap_.empty(), "nextTick() on empty event queue");
    return heap_.top().when;
}

size_t
EventQueue::runUntil(Tick limit)
{
    size_t fired = 0;
    for (;;) {
        skipDead();
        if (heap_.empty() || heap_.top().when > limit)
            break;
        const Entry entry = heap_.top();
        heap_.pop();
        live_[entry.id] = false;
        --liveCount_;
        callbacks_[entry.id](entry.when);
        ++fired;
    }
    return fired;
}

void
EventQueue::clear()
{
    while (!heap_.empty())
        heap_.pop();
    callbacks_.clear();
    live_.clear();
    liveCount_ = 0;
}

} // namespace xser
