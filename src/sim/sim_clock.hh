/**
 * @file
 * Simulated-time bookkeeping.
 *
 * Time is kept in integer picoseconds (Tick) so cycle arithmetic at any
 * frequency from 300 MHz to 2.4 GHz stays exact. Helper conversions keep
 * call sites free of unit mistakes.
 */

#ifndef XSER_SIM_SIM_CLOCK_HH
#define XSER_SIM_SIM_CLOCK_HH

#include <cstdint>

namespace xser {

/** Simulated time in picoseconds. */
using Tick = uint64_t;

namespace ticks {

constexpr Tick perPicosecond = 1;
constexpr Tick perNanosecond = 1000;
constexpr Tick perMicrosecond = 1000 * perNanosecond;
constexpr Tick perMillisecond = 1000 * perMicrosecond;
constexpr Tick perSecond = 1000 * perMillisecond;

/** Convert seconds (double) to ticks, rounding to nearest. */
constexpr Tick
fromSeconds(double seconds)
{
    return static_cast<Tick>(seconds * static_cast<double>(perSecond) + 0.5);
}

/** Convert ticks to seconds. */
constexpr double
toSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(perSecond);
}

/** Convert ticks to minutes. */
constexpr double
toMinutes(Tick t)
{
    return toSeconds(t) / 60.0;
}

/** Period in ticks of a clock at the given frequency in Hz. */
constexpr Tick
periodFromFrequency(double hz)
{
    return static_cast<Tick>(static_cast<double>(perSecond) / hz + 0.5);
}

} // namespace ticks

/**
 * A simulated clock: advances in ticks, converts between cycles and time
 * for a configurable frequency.
 */
class SimClock
{
  public:
    /** Construct a clock at the given frequency (Hz). */
    explicit SimClock(double frequency_hz = 2.4e9);

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Stable pointer to the current time, for event timestamping. */
    const Tick *nowPtr() const { return &now_; }

    /** Clock frequency in Hz. */
    double frequency() const { return frequencyHz_; }

    /** Clock period in ticks. */
    Tick period() const { return periodTicks_; }

    /**
     * Change the operating frequency (DVFS). Takes effect for subsequent
     * cycle accounting; elapsed time is unaffected.
     */
    void setFrequency(double frequency_hz);

    /** Advance time by the given number of ticks. */
    void advance(Tick delta) { now_ += delta; }

    /** Advance time by the given number of cycles at current frequency. */
    void advanceCycles(uint64_t cycles) { now_ += cycles * periodTicks_; }

    /** Reset time to zero (new run). */
    void reset() { now_ = 0; }

    /** Restore a previously observed time (checkpoint restore). */
    void setNow(Tick now) { now_ = now; }

    /** Number of whole cycles elapsed at the current frequency. */
    uint64_t cyclesElapsed() const { return now_ / periodTicks_; }

  private:
    double frequencyHz_;
    Tick periodTicks_;
    Tick now_ = 0;
};

} // namespace xser

#endif // XSER_SIM_SIM_CLOCK_HH
