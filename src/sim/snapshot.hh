/**
 * @file
 * Byte-stream primitives for deterministic state snapshots.
 *
 * SnapshotWriter/SnapshotReader serialize simulator state as a flat
 * little-endian byte stream -- fixed-width integers, bit-cast doubles,
 * and length-prefixed strings/vectors. The encoding is explicitly
 * platform-independent (no host-endianness or padding leaks into the
 * bytes), so two hosts snapshotting the same simulated state produce
 * the same blob and the checkpoint tests can compare blobs byte for
 * byte.
 *
 * Decoding is paranoid in the .xtrace reader's style: every read is
 * bounds-checked and every length prefix is validated against the
 * bytes actually remaining before any allocation, so a truncated or
 * corrupted stream fails loudly instead of reading garbage. (The
 * checkpoint envelope in core/checkpoint.hh additionally checksums the
 * whole payload, so arriving here with bad bytes indicates a logic bug,
 * not bit rot -- hence hard failure rather than error returns.)
 */

#ifndef XSER_SIM_SNAPSHOT_HH
#define XSER_SIM_SNAPSHOT_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "sim/logging.hh"

namespace xser {

/** Append-only little-endian encoder for snapshot payloads. */
class SnapshotWriter
{
  public:
    void
    u8(uint8_t value)
    {
        out_.push_back(value);
    }

    void
    u32(uint32_t value)
    {
        for (unsigned i = 0; i < 4; ++i)
            out_.push_back(
                static_cast<uint8_t>((value >> (8 * i)) & 0xffu));
    }

    void
    u64(uint64_t value)
    {
        for (unsigned i = 0; i < 8; ++i)
            out_.push_back(
                static_cast<uint8_t>((value >> (8 * i)) & 0xffull));
    }

    /** Bit pattern of a double (exact round trip, no text formatting). */
    void f64(double value) { u64(std::bit_cast<uint64_t>(value)); }

    /** Length-prefixed string. */
    void
    str(const std::string &text)
    {
        u64(text.size());
        out_.insert(out_.end(), text.begin(), text.end());
    }

    /** Length-prefixed vector of 64-bit words. */
    void u64Vector(const std::vector<uint64_t> &words);

    /** Length-prefixed vector of bytes. */
    void
    byteVector(const std::vector<uint8_t> &bytes)
    {
        u64(bytes.size());
        out_.insert(out_.end(), bytes.begin(), bytes.end());
    }

    const std::vector<uint8_t> &data() const { return out_; }

    /** Move the accumulated bytes out (writer becomes empty). */
    std::vector<uint8_t>
    take()
    {
        std::vector<uint8_t> bytes = std::move(out_);
        out_.clear();
        return bytes;
    }

  private:
    std::vector<uint8_t> out_;
};

/** Bounds-checked decoder over a snapshot payload (not owned). */
class SnapshotReader
{
  public:
    SnapshotReader(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {
        XSER_ASSERT(data != nullptr || size == 0,
                    "snapshot reader needs a buffer");
    }

    explicit SnapshotReader(const std::vector<uint8_t> &bytes)
        : SnapshotReader(bytes.data(), bytes.size())
    {
    }

    uint8_t
    u8()
    {
        need(1, "u8");
        return data_[cursor_++];
    }

    uint32_t
    u32()
    {
        need(4, "u32");
        uint32_t value = 0;
        for (unsigned i = 0; i < 4; ++i)
            value |= static_cast<uint32_t>(data_[cursor_++]) << (8 * i);
        return value;
    }

    uint64_t
    u64()
    {
        need(8, "u64");
        uint64_t value = 0;
        for (unsigned i = 0; i < 8; ++i)
            value |= static_cast<uint64_t>(data_[cursor_++]) << (8 * i);
        return value;
    }

    double f64() { return std::bit_cast<double>(u64()); }

    std::string
    str()
    {
        const uint64_t length = u64();
        need(length, "string body");
        std::string text(reinterpret_cast<const char *>(data_ + cursor_),
                         static_cast<size_t>(length));
        cursor_ += static_cast<size_t>(length);
        return text;
    }

    /** Read a length-prefixed u64 vector into `out` (replacing it). */
    void u64Vector(std::vector<uint64_t> &out);

    /** Read a length-prefixed byte vector into `out` (replacing it). */
    void
    byteVector(std::vector<uint8_t> &out)
    {
        const uint64_t length = u64();
        need(length, "byte vector body");
        out.assign(data_ + cursor_, data_ + cursor_ + length);
        cursor_ += static_cast<size_t>(length);
    }

    size_t remaining() const { return size_ - cursor_; }
    bool atEnd() const { return cursor_ == size_; }

  private:
    /** Fail loudly when fewer than `count` bytes remain. */
    void
    need(uint64_t count, const char *what) const
    {
        if (count > size_ - cursor_)
            fatal(msg("snapshot stream underrun reading ", what, ": need ",
                      count, " bytes, have ", size_ - cursor_));
    }

    const uint8_t *data_;
    size_t size_;
    size_t cursor_ = 0;
};

} // namespace xser

#endif // XSER_SIM_SNAPSHOT_HH
