/**
 * @file
 * SimClock implementation.
 */

#include "sim/sim_clock.hh"

#include "sim/logging.hh"

namespace xser {

SimClock::SimClock(double frequency_hz)
{
    setFrequency(frequency_hz);
}

void
SimClock::setFrequency(double frequency_hz)
{
    if (frequency_hz <= 0.0)
        fatal(msg("clock frequency must be positive, got ", frequency_hz));
    frequencyHz_ = frequency_hz;
    periodTicks_ = ticks::periodFromFrequency(frequency_hz);
    XSER_ASSERT(periodTicks_ > 0, "clock period underflowed tick resolution");
}

} // namespace xser
