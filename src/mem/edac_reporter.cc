/**
 * @file
 * EdacReporter implementation.
 */

#include "mem/edac_reporter.hh"

#include "telemetry/metrics.hh"

namespace xser::mem {

const char *
cacheLevelName(CacheLevel level)
{
    switch (level) {
      case CacheLevel::Tlb: return "TLBs";
      case CacheLevel::L1: return "L1 Cache";
      case CacheLevel::L2: return "L2 Cache";
      case CacheLevel::L3: return "L3 Cache";
    }
    return "unknown";
}

void
EdacReporter::post(Tick when, CacheLevel level, EdacKind kind,
                   const std::string &source)
{
    auto &tally = tallies_[static_cast<size_t>(level)];
    if (kind == EdacKind::Corrected) {
        ++tally.corrected;
        telemetry::count(telemetry::Counter::EdacCorrected);
    } else {
        ++tally.uncorrected;
        telemetry::count(telemetry::Counter::EdacUncorrected);
    }
    if (keepLog_)
        log_.push_back(EdacEvent{when, level, kind, source});
}

uint64_t
EdacReporter::totalCorrected() const
{
    uint64_t total = 0;
    for (const auto &tally : tallies_)
        total += tally.corrected;
    return total;
}

uint64_t
EdacReporter::totalUncorrected() const
{
    uint64_t total = 0;
    for (const auto &tally : tallies_)
        total += tally.uncorrected;
    return total;
}

void
EdacReporter::clear()
{
    tallies_ = {};
    log_.clear();
}

bool
EdacReporter::consistentWithTrace() const
{
    if (traceSink_ == nullptr)
        return true;
    for (size_t level = 0; level < numCacheLevels; ++level) {
        const EdacTally &tally = tallies_[level];
        const uint64_t detections =
            traceSink_->detectionCount(static_cast<uint8_t>(level));
        if (tally.corrected + tally.uncorrected != detections)
            return false;
    }
    return true;
}

} // namespace xser::mem
