/**
 * @file
 * SramArray implementation.
 */

#include "mem/sram_array.hh"

#include <algorithm>
#include <bit>

#include "ecc/parity.hh"
#include "sim/logging.hh"

namespace xser::mem {

const char *
protectionName(Protection protection)
{
    switch (protection) {
      case Protection::None: return "none";
      case Protection::Parity: return "parity";
      case Protection::Secded: return "secded";
    }
    return "unknown";
}

namespace {

/** Check-bit count per word for a protection scheme. */
unsigned
checkBitsFor(Protection protection)
{
    switch (protection) {
      case Protection::None: return 0;
      case Protection::Parity: return 1;
      case Protection::Secded: return ecc::SecdedCodec::checkBits;
    }
    return 0;
}

} // namespace

SramArray::SramArray(std::string name, size_t words, Protection protection)
    : name_(std::move(name)), protection_(protection),
      bitsPerWord_(64 + checkBitsFor(protection))
{
    if (words == 0)
        fatal(msg("SRAM array '", name_, "' must have at least one word"));
    data_.assign(words, 0);
    check_.assign(words, 0);
    shadow_.assign(words, 0);
    // Zero truth still needs consistent check bits.
    if (protection_ == Protection::Secded) {
        const uint8_t zero_check = ecc::SecdedCodec::encode(0);
        std::fill(check_.begin(), check_.end(), zero_check);
    }
    shadowCheck_ = check_;
    corrupt_.assign(words, 0);
    checkStale_.assign(words, 0);
}

void
SramArray::materializeCheck(size_t index)
{
    if (!checkStale_[index])
        return;
    checkStale_[index] = 0;
    // Stale implies no flip or repair since the last write (both
    // materialize first), so the stored word still equals the truth and
    // one encode serves for both the stored and the shadow check bits.
    uint8_t bits = 0;
    switch (protection_) {
      case Protection::None:
        break;
      case Protection::Parity:
        bits = ecc::ParityCodec::encode(shadow_[index]);
        break;
      case Protection::Secded:
        bits = ecc::SecdedCodec::encode(shadow_[index]);
        break;
    }
    check_[index] = bits;
    shadowCheck_[index] = bits;
}

void
SramArray::refreshCorrupt(size_t index)
{
    const uint8_t now_corrupt = (data_[index] != shadow_[index] ||
                                 check_[index] != shadowCheck_[index])
                                    ? 1
                                    : 0;
    if (now_corrupt != corrupt_[index]) {
        corrupt_[index] = now_corrupt;
        if (now_corrupt)
            ++corruptCount_;
        else
            --corruptCount_;
    }
}

void
SramArray::emit(trace::EventType type, size_t index, uint32_t bit,
                uint64_t aux)
{
    traceSink_->record({type, now(), traceId_,
                        static_cast<uint64_t>(index), bit, aux});
}

ReadOutcome
SramArray::readChecked(size_t index)
{
    XSER_ASSERT(index < data_.size(), "SRAM read out of range");
    switch (protection_) {
      case Protection::None: {
        ReadOutcome outcome;
        outcome.value = data_[index];
        outcome.status = ecc::CheckStatus::Clean;
        outcome.silentCorruption = data_[index] != shadow_[index];
        if (outcome.silentCorruption) {
            ++counters_.silentEscapes;
            if (traceSink_)
                emit(trace::EventType::Propagate, index, trace::noBit, 0);
        }
        return outcome;
      }
      case Protection::Parity:
        return readParity(index);
      case Protection::Secded:
        return readSecded(index);
    }
    panic("unreachable protection scheme");
}

ReadOutcome
SramArray::readParity(size_t index)
{
    materializeCheck(index);
    ReadOutcome outcome;
    outcome.value = data_[index];
    outcome.status = ecc::ParityCodec::check(data_[index], check_[index]);
    outcome.silentCorruption = false;
    if (outcome.status == ecc::CheckStatus::ParityError) {
        ++counters_.parityErrors;
        if (traceSink_)
            emit(trace::EventType::ParityDetect, index, trace::noBit, 0);
        return outcome;
    }
    // Parity passed; an even number of flips (data+check combined) slips
    // through undetected.
    if (data_[index] != shadow_[index]) {
        outcome.silentCorruption = true;
        ++counters_.silentEscapes;
        if (traceSink_)
            emit(trace::EventType::Propagate, index, trace::noBit, 0);
    }
    return outcome;
}

ReadOutcome
SramArray::readSecded(size_t index)
{
    materializeCheck(index);
    ReadOutcome outcome;
    const auto result = ecc::SecdedCodec::decode(data_[index],
                                                 check_[index]);
    outcome.value = result.data;
    outcome.status = result.status;
    outcome.silentCorruption = false;

    switch (result.status) {
      case ecc::CheckStatus::Clean:
        if (result.data != shadow_[index]) {
            // >= 4 flips aliased to a valid codeword: fully silent.
            outcome.silentCorruption = true;
            ++counters_.silentEscapes;
            if (traceSink_)
                emit(trace::EventType::Propagate, index, trace::noBit, 0);
        }
        break;
      case ecc::CheckStatus::CorrectedSingle: {
        // The repaired stored bit is whichever position the decoder
        // changed; observed before the correction is written back.
        uint32_t fixed_bit = trace::noBit;
        if (traceSink_) {
            const uint64_t data_diff = data_[index] ^ result.data;
            const unsigned check_diff =
                static_cast<unsigned>(check_[index] ^ result.check);
            if (data_diff != 0) {
                fixed_bit = static_cast<uint32_t>(
                    std::countr_zero(data_diff));
            } else if (check_diff != 0) {
                fixed_bit = 64u + static_cast<uint32_t>(
                                      std::countr_zero(check_diff));
            }
        }
        // Scrub the correction back into the array, as hardware does.
        data_[index] = result.data;
        check_[index] = result.check;
        refreshCorrupt(index);  // exact repair cleans; miscorrect stays
        ++counters_.corrected;
        if (result.data != shadow_[index]) {
            // The decoder repaired the wrong bit: a >= 3-flip alias. The
            // hardware report stays "corrected"; ground truth says the
            // word is now corrupt (Section 6.2 case 1).
            outcome.status = ecc::CheckStatus::Miscorrected;
            outcome.silentCorruption = true;
            ++counters_.miscorrections;
            if (traceSink_)
                emit(trace::EventType::EccMiscorrect, index, fixed_bit, 0);
        } else if (traceSink_) {
            emit(trace::EventType::EccCorrect, index, fixed_bit, 0);
        }
        break;
      }
      case ecc::CheckStatus::DetectedDouble:
        ++counters_.uncorrected;
        if (traceSink_)
            emit(trace::EventType::UeDetect, index, trace::noBit, 0);
        break;
      default:
        panic("unexpected SECDED decode status");
    }
    return outcome;
}

uint64_t
SramArray::peek(size_t index) const
{
    XSER_ASSERT(index < data_.size(), "SRAM peek out of range");
    return data_[index];
}

uint64_t
SramArray::truth(size_t index) const
{
    XSER_ASSERT(index < shadow_.size(), "SRAM truth out of range");
    return shadow_[index];
}

bool
SramArray::isCorrupted(size_t index) const
{
    XSER_ASSERT(index < data_.size(), "SRAM index out of range");
    return corrupt_[index] != 0;
}

bool
SramArray::anyCorruptInRange(size_t base, size_t count) const
{
    XSER_ASSERT(base + count <= data_.size(),
                "SRAM corruption scan out of range");
    for (size_t i = 0; i < count; ++i) {
        if (corrupt_[base + i])
            return true;
    }
    return false;
}

void
SramArray::flipBit(size_t index, unsigned stored_bit)
{
    XSER_ASSERT(index < data_.size(), "SRAM flip out of range");
    XSER_ASSERT(stored_bit < bitsPerWord_, "stored bit out of range");
    materializeCheck(index);
    if (stored_bit < 64)
        data_[index] ^= 1ULL << stored_bit;
    else
        check_[index] ^= static_cast<uint8_t>(1u << (stored_bit - 64));
    refreshCorrupt(index);
    ++counters_.bitFlipsInjected;
}

void
SramArray::reset()
{
    std::fill(data_.begin(), data_.end(), 0);
    std::fill(shadow_.begin(), shadow_.end(), 0);
    uint8_t zero_check = 0;
    if (protection_ == Protection::Secded)
        zero_check = ecc::SecdedCodec::encode(0);
    std::fill(check_.begin(), check_.end(), zero_check);
    std::fill(shadowCheck_.begin(), shadowCheck_.end(), zero_check);
    std::fill(corrupt_.begin(), corrupt_.end(), 0);
    std::fill(checkStale_.begin(), checkStale_.end(), 0);
    corruptCount_ = 0;
    counters_ = SramCounters{};
}

void
SramArray::snapshot(SnapshotWriter &writer) const
{
    writer.u64(data_.size());
    writer.u8(static_cast<uint8_t>(protection_));
    writer.u64(corruptCount_);
    writer.u64Vector(data_);
    writer.byteVector(check_);
    writer.byteVector(checkStale_);
    writer.u64(counters_.bitFlipsInjected);
    writer.u64(counters_.upsetEventsInjected);
    writer.u64(counters_.corrected);
    writer.u64(counters_.uncorrected);
    writer.u64(counters_.parityErrors);
    writer.u64(counters_.miscorrections);
    writer.u64(counters_.silentEscapes);
    writer.u64(counters_.overwrittenFlips);
    if (corruptCount_ > 0) {
        writer.u64Vector(shadow_);
        writer.byteVector(shadowCheck_);
        writer.byteVector(corrupt_);
    }
}

void
SramArray::restore(SnapshotReader &reader)
{
    const uint64_t words = reader.u64();
    const auto protection = static_cast<Protection>(reader.u8());
    XSER_ASSERT(words == data_.size() && protection == protection_,
                msg("snapshot shape mismatch restoring ", name_));
    corruptCount_ = reader.u64();
    reader.u64Vector(data_);
    reader.byteVector(check_);
    reader.byteVector(checkStale_);
    counters_.bitFlipsInjected = reader.u64();
    counters_.upsetEventsInjected = reader.u64();
    counters_.corrected = reader.u64();
    counters_.uncorrected = reader.u64();
    counters_.parityErrors = reader.u64();
    counters_.miscorrections = reader.u64();
    counters_.silentEscapes = reader.u64();
    counters_.overwrittenFlips = reader.u64();
    if (corruptCount_ > 0) {
        reader.u64Vector(shadow_);
        reader.byteVector(shadowCheck_);
        reader.byteVector(corrupt_);
    } else {
        // Clean array: the corruption invariant (corrupt_[i] == 0 iff
        // stored state matches truth) makes the shadow redundant.
        shadow_ = data_;
        shadowCheck_ = check_;
        std::fill(corrupt_.begin(), corrupt_.end(), 0);
    }
    XSER_ASSERT(data_.size() == words && check_.size() == words &&
                    checkStale_.size() == words &&
                    shadow_.size() == words &&
                    shadowCheck_.size() == words &&
                    corrupt_.size() == words,
                msg("snapshot vector length mismatch restoring ", name_));
}

} // namespace xser::mem
