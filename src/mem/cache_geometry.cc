/**
 * @file
 * CacheGeometry implementation.
 */

#include "mem/cache_geometry.hh"

#include <bit>

#include "sim/logging.hh"

namespace xser::mem {

CacheGeometry::CacheGeometry(size_t size_bytes, size_t line_bytes,
                             unsigned associativity)
    : sizeBytes_(size_bytes), lineBytes_(line_bytes),
      associativity_(associativity)
{
    if (!std::has_single_bit(line_bytes) || line_bytes < 8)
        fatal(msg("line size must be a power of two >= 8, got ",
                  line_bytes));
    if (associativity == 0)
        fatal("associativity must be positive");
    if (size_bytes == 0 || size_bytes % (line_bytes * associativity) != 0)
        fatal(msg("cache size ", size_bytes,
                  " is not a multiple of line*ways"));
    numSets_ = size_bytes / (line_bytes * associativity);
    if (!std::has_single_bit(numSets_))
        fatal(msg("number of sets must be a power of two, got ", numSets_));
    lineShift_ = static_cast<unsigned>(std::countr_zero(lineBytes_));
    tagShift_ = lineShift_ +
                static_cast<unsigned>(std::countr_zero(numSets_));
}

} // namespace xser::mem
