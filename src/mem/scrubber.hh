/**
 * @file
 * Patrol scrubber pacing.
 *
 * X-Gene-class server parts background-scrub their large ECC arrays so
 * latent single-bit upsets are corrected before a second strike turns
 * them into uncorrectable errors. Detection of upsets in rarely-read
 * lines also comes from the scrubber, which is why observed upset rates
 * approach (but stay below) raw rates (paper Section 3.5).
 *
 * The Scrubber converts elapsed simulated time into "lines to scrub this
 * quantum" for the L2 and L3 arrays, carrying fractional remainders so
 * pacing is exact over long sessions.
 */

#ifndef XSER_MEM_SCRUBBER_HH
#define XSER_MEM_SCRUBBER_HH

#include "mem/memory_system.hh"
#include "sim/sim_clock.hh"
#include "sim/snapshot.hh"

namespace xser::mem {

/** Scrubber pacing configuration. */
struct ScrubberConfig {
    /** Simulated time for one full pass over an L2 array. */
    Tick l2PassPeriod = ticks::fromSeconds(0.050);
    /** Simulated time for one full pass over the L3 array. */
    Tick l3PassPeriod = ticks::fromSeconds(0.100);
    /** Master enable. */
    bool enabled = true;
    /**
     * Clock scale: the scrub FSM is clocked by the cache domain, so
     * its wall-time pass rate scales with the core frequency. The
     * session sets this to f / 2.4 GHz; 1.0 = the nominal rate.
     */
    double clockScale = 1.0;
    /** Per-level enables (the L3's detection is dominated by demand
     *  traffic in the campaign configuration; see test_session.cc). */
    bool l2Enabled = true;
    bool l3Enabled = true;
};

/**
 * Drives MemorySystem::scrub() at a configured pace.
 */
class Scrubber
{
  public:
    Scrubber(const ScrubberConfig &config, MemorySystem *memory);

    /** Account for elapsed simulated time; scrub the lines now due. */
    void advance(Tick elapsed);

    /** Lines scrubbed so far (L2 cursor steps + L3 lines). */
    uint64_t linesScrubbed() const { return linesScrubbed_; }

    const ScrubberConfig &config() const { return config_; }

    /** Reset pacing remainders (start of session). */
    void reset();

    /**
     * Serialize checkpointable state: the fractional pacing
     * remainders and the lifetime line counter. The lines-per-tick
     * rates are derived from configuration at construction.
     */
    void
    snapshot(SnapshotWriter &writer) const
    {
        writer.f64(l2Remainder_);
        writer.f64(l3Remainder_);
        writer.u64(linesScrubbed_);
    }

    /** Restore state captured by snapshot(). */
    void
    restore(SnapshotReader &reader)
    {
        l2Remainder_ = reader.f64();
        l3Remainder_ = reader.f64();
        linesScrubbed_ = reader.u64();
    }

  private:
    ScrubberConfig config_;
    MemorySystem *memory_;
    double l2Remainder_ = 0.0;
    double l3Remainder_ = 0.0;
    double l2LinesPerTick_ = 0.0;
    double l3LinesPerTick_ = 0.0;
    uint64_t linesScrubbed_ = 0;
};

} // namespace xser::mem

#endif // XSER_MEM_SCRUBBER_HH
