/**
 * @file
 * Cache implementation.
 */

#include "mem/cache.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace xser::mem {

Cache::Cache(const CacheConfig &config, EdacReporter *reporter)
    : config_(config),
      geometry_(config.sizeBytes, config.lineBytes, config.associativity),
      reporter_(reporter),
      dataArray_(config.name + ".data",
                 geometry_.numLines() * geometry_.wordsPerLine(),
                 config.protection)
{
    XSER_ASSERT(reporter_ != nullptr, "cache needs an EDAC reporter");
    meta_.resize(geometry_.numLines());
    filter_.assign(size_t{1} << filterBucketBits, 0);
}

unsigned
Cache::victimWay(size_t set) const
{
    unsigned victim = 0;
    uint64_t oldest = UINT64_MAX;
    for (unsigned way = 0; way < config_.associativity; ++way) {
        const auto &line = meta_[set * config_.associativity + way];
        if (!line.valid)
            return way;
        if (line.lastUse < oldest) {
            oldest = line.lastUse;
            victim = way;
        }
    }
    return victim;
}

void
Cache::postEdac(const ReadOutcome &outcome)
{
    if (ecc::reportsCorrected(outcome.status)) {
        reporter_->post(now(), config_.level, EdacKind::Corrected,
                        config_.name);
    } else if (ecc::reportsUncorrected(outcome.status)) {
        reporter_->post(now(), config_.level, EdacKind::Uncorrected,
                        config_.name);
    } else if (outcome.status == ecc::CheckStatus::ParityError &&
               config_.writePolicy == WritePolicy::WriteBack) {
        // Parity on a write-back array (ablation configuration only):
        // detected but uncorrectable -- the dirty data has no second
        // copy. Logged as a UE.
        reporter_->post(now(), config_.level, EdacKind::Uncorrected,
                        config_.name);
    }
    // In write-through arrays parity errors are posted by the recovery
    // path in MemorySystem once the refetch succeeds (logged as
    // corrected upsets there), so nothing to do for them here.
}

bool
Cache::outcomeUncorrectable(const ReadOutcome &outcome) const
{
    if (ecc::reportsUncorrected(outcome.status))
        return true;
    return outcome.status == ecc::CheckStatus::ParityError &&
           config_.writePolicy == WritePolicy::WriteBack;
}

bool
Cache::isDirty(Addr addr) const
{
    const int way = findWay(addr);
    if (way < 0)
        return false;
    return wayDirty(addr, way);
}

bool
Cache::readLine(Addr addr, std::vector<uint64_t> &out, int way)
{
    XSER_ASSERT(way >= 0, msg("readLine miss in ", config_.name));
    const size_t set = geometry_.setIndex(addr);
    auto &line = meta_[set * config_.associativity + way];
    line.lastUse = ++useCounter_;

    const size_t base = lineWordBase(set, way);
    const size_t words = geometry_.wordsPerLine();
    out.resize(words);
    bool uncorrectable = false;
    for (size_t i = 0; i < words; ++i) {
        ReadOutcome outcome = dataArray_.read(base + i);
        if (outcome.status != ecc::CheckStatus::Clean) {
            postEdac(outcome);
            if (outcomeUncorrectable(outcome))
                uncorrectable = true;
        }
        out[i] = outcome.value;
    }
    return uncorrectable;
}

EvictedLine
Cache::allocate(Addr addr, const std::vector<uint64_t> &line, bool dirty)
{
    XSER_ASSERT(line.size() == geometry_.wordsPerLine(),
                "allocate with wrong line length");
    const size_t set = geometry_.setIndex(addr);
    // A present line always has a nonzero filter bucket, so the cheap
    // filter test screens the double-allocate invariant without a tag
    // search on the (overwhelmingly common) definitely-absent case.
    XSER_ASSERT(!mayContain(addr) || findWay(addr) < 0,
                msg("allocate of already-present line in ", config_.name));

    const unsigned way = victimWay(set);
    auto &slot = meta_[set * config_.associativity + way];

    EvictedLine evicted;
    if (slot.valid) {
        ++stats_.evictions;
        evicted.valid = true;
        evicted.dirty = slot.dirty;
        evicted.address = geometry_.lineAddress(slot.tag, set);
        if (slot.dirty) {
            // Checked read-out: a writeback passes through the codec.
            const size_t base = lineWordBase(set, way);
            const size_t words = geometry_.wordsPerLine();
            evicted.data.resize(words);
            for (size_t i = 0; i < words; ++i) {
                ReadOutcome outcome = dataArray_.read(base + i);
                if (outcome.status != ecc::CheckStatus::Clean) {
                    postEdac(outcome);
                    if (outcomeUncorrectable(outcome))
                        evicted.hadUncorrectable = true;
                }
                evicted.data[i] = outcome.value;
            }
            ++stats_.writebacks;
        }
    }

    if (evicted.valid)
        filterRemove(evicted.address);
    filterAdd(addr);
    slot.tag = geometry_.tag(addr);
    slot.valid = true;
    slot.dirty = dirty;
    slot.lastUse = ++useCounter_;

    const size_t base = lineWordBase(set, way);
    for (size_t i = 0; i < line.size(); ++i)
        dataArray_.write(base + i, line[i]);
    return evicted;
}

void
Cache::invalidate(Addr addr)
{
    const int way = findWay(addr);
    if (way < 0)
        return;
    invalidateWay(addr, way);
}

void
Cache::invalidateWay(Addr addr, int way)
{
    const size_t set = geometry_.setIndex(addr);
    auto &line = meta_[set * config_.associativity +
                       static_cast<unsigned>(way)];
    line.valid = false;
    line.dirty = false;
    filterRemove(addr);
    ++stats_.invalidations;
}

void
Cache::invalidateAll()
{
    for (auto &line : meta_) {
        line.valid = false;
        line.dirty = false;
    }
    std::fill(filter_.begin(), filter_.end(), 0);
}

Cache::ScrubResult
Cache::scrubLine(size_t line_index)
{
    XSER_ASSERT(line_index < meta_.size(), "scrub index out of range");
    ScrubResult result;
    auto &slot = meta_[line_index];
    if (!slot.valid)
        return result;
    result.scanned = true;
    result.dirty = slot.dirty;

    const size_t set = line_index / config_.associativity;
    const unsigned way =
        static_cast<unsigned>(line_index % config_.associativity);
    result.address = geometry_.lineAddress(slot.tag, set);

    const size_t base = lineWordBase(set, way);
    const size_t words = geometry_.wordsPerLine();
    if (dataArray_.fastPath() &&
        !dataArray_.anyCorruptInRange(base, words)) {
        // A patrol pass over a clean line is pure reads of clean words:
        // no EDAC posting, no trace, no invalidation, and the read-out
        // data is only consumed on a dirty uncorrectable hit -- which a
        // clean line cannot be. Skip the scan entirely.
        return result;
    }
    result.data.resize(words);
    bool found_error = false;
    for (size_t i = 0; i < words; ++i) {
        ReadOutcome outcome = dataArray_.read(base + i);
        postEdac(outcome);
        if (outcomeUncorrectable(outcome))
            result.uncorrectable = true;
        if (outcome.status != ecc::CheckStatus::Clean ||
            outcome.silentCorruption)
            found_error = true;
        result.data[i] = outcome.value;
    }
    if (found_error && dataArray_.traceSink()) {
        // One Scrub record per non-clean line found by the patrol scan
        // (the word-level detections above carry the details).
        dataArray_.traceSink()->record(
            {trace::EventType::Scrub, dataArray_.now(),
             dataArray_.traceId(), static_cast<uint64_t>(base),
             trace::noBit, result.uncorrectable ? 1u : 0u});
    }
    if (result.uncorrectable) {
        // Poisoned line: drop it so it cannot re-report every pass. The
        // owner writes dirty data (corrupt as it is) downstream.
        slot.valid = false;
        slot.dirty = false;
        filterRemove(result.address);
        ++stats_.invalidations;
    }
    return result;
}

std::vector<std::pair<Addr, std::vector<uint64_t>>>
Cache::drainAll()
{
    std::vector<std::pair<Addr, std::vector<uint64_t>>> dirty_lines;
    for (size_t index = 0; index < meta_.size(); ++index) {
        auto &slot = meta_[index];
        if (!slot.valid)
            continue;
        if (slot.dirty) {
            const size_t set = index / config_.associativity;
            const unsigned way =
                static_cast<unsigned>(index % config_.associativity);
            const size_t base = lineWordBase(set, way);
            const size_t words = geometry_.wordsPerLine();
            std::vector<uint64_t> data(words);
            for (size_t i = 0; i < words; ++i) {
                ReadOutcome outcome = dataArray_.read(base + i);
                postEdac(outcome);
                data[i] = outcome.value;
            }
            dirty_lines.emplace_back(
                geometry_.lineAddress(slot.tag, set), std::move(data));
            ++stats_.writebacks;
        }
        slot.valid = false;
        slot.dirty = false;
    }
    std::fill(filter_.begin(), filter_.end(), 0);
    return dirty_lines;
}

double
Cache::occupancy() const
{
    size_t valid = 0;
    for (const auto &line : meta_)
        valid += line.valid ? 1 : 0;
    return static_cast<double>(valid) /
           static_cast<double>(meta_.size());
}

void
Cache::snapshot(SnapshotWriter &writer) const
{
    writer.u64(meta_.size());
    for (const auto &line : meta_) {
        writer.u64(line.tag);
        writer.u8(static_cast<uint8_t>((line.valid ? 1u : 0u) |
                                       (line.dirty ? 2u : 0u)));
        writer.u64(line.lastUse);
    }
    writer.u64(useCounter_);
    writer.u64(stats_.hits);
    writer.u64(stats_.misses);
    writer.u64(stats_.evictions);
    writer.u64(stats_.writebacks);
    writer.u64(stats_.invalidations);
    dataArray_.snapshot(writer);
}

void
Cache::restore(SnapshotReader &reader)
{
    const uint64_t lines = reader.u64();
    XSER_ASSERT(lines == meta_.size(),
                msg("snapshot shape mismatch restoring ", config_.name));
    std::fill(filter_.begin(), filter_.end(), 0);
    for (size_t index = 0; index < meta_.size(); ++index) {
        auto &line = meta_[index];
        line.tag = reader.u64();
        const uint8_t flags = reader.u8();
        line.valid = (flags & 1u) != 0;
        line.dirty = (flags & 2u) != 0;
        line.lastUse = reader.u64();
        // The residency filter is a pure function of the valid lines;
        // rebuilding it here keeps it exact without serializing it.
        if (line.valid)
            filterAdd(geometry_.lineAddress(
                line.tag, index / config_.associativity));
    }
    useCounter_ = reader.u64();
    stats_.hits = reader.u64();
    stats_.misses = reader.u64();
    stats_.evictions = reader.u64();
    stats_.writebacks = reader.u64();
    stats_.invalidations = reader.u64();
    dataArray_.restore(reader);
}

} // namespace xser::mem
