/**
 * @file
 * Set-associative cache with a bit-true protected data array.
 *
 * The cache stores line data in an SramArray, so beam-injected flips live
 * in genuine storage and every read-out passes through the protection
 * codec. Recovery *policy* (parity refetch, clean-line reload) lives in
 * MemorySystem, which owns the hierarchy; this class provides the
 * mechanisms: probe, checked word/line access, allocate-with-eviction,
 * and invalidation.
 */

#ifndef XSER_MEM_CACHE_HH
#define XSER_MEM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "mem/cache_geometry.hh"
#include "mem/edac_reporter.hh"
#include "mem/sram_array.hh"

namespace xser::mem {

/** Write policy of a cache level. */
enum class WritePolicy : uint8_t {
    WriteThrough,  ///< L1D on X-Gene 2: lower level always has truth
    WriteBack,     ///< L2/L3: dirty lines only exist here
};

/** Static configuration of one cache. */
struct CacheConfig {
    std::string name;           ///< e.g. "l2.0"
    size_t sizeBytes = 0;
    size_t lineBytes = 64;
    unsigned associativity = 8;
    Protection protection = Protection::Secded;
    WritePolicy writePolicy = WritePolicy::WriteBack;
    CacheLevel level = CacheLevel::L2;
};

/** Victim line handed back by allocate(). */
struct EvictedLine {
    bool valid = false;          ///< a line was evicted
    bool dirty = false;          ///< it needs writing back
    Addr address = 0;            ///< base address of the victim line
    std::vector<uint64_t> data;  ///< victim data (checked read-out)
    bool hadUncorrectable = false; ///< a UE fired while reading it out
};

/** Hit/miss and protection statistics for one cache. */
struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    uint64_t writebacks = 0;
    uint64_t invalidations = 0;
};

/**
 * One cache level instance. See file comment for the policy split
 * between this class and MemorySystem.
 */
class Cache
{
  public:
    /**
     * @param config Geometry, protection, and policy.
     * @param reporter EDAC sink for CE/UE events (may not be null).
     */
    Cache(const CacheConfig &config, EdacReporter *reporter);

    const std::string &name() const { return config_.name; }
    const CacheConfig &config() const { return config_; }
    const CacheGeometry &geometry() const { return geometry_; }
    const CacheStats &stats() const { return stats_; }

    /** The protected data array (exposed for beam targeting). */
    SramArray &dataArray() { return dataArray_; }
    const SramArray &dataArray() const { return dataArray_; }

    /** Set the simulated-time source for EDAC and trace timestamps. */
    void
    setTimeSource(const Tick *now)
    {
        now_ = now;
        dataArray_.setTimeSource(now);
    }

    /**
     * Way holding addr, or -1. The hierarchy owner probes once and
     * passes the found way to the word/line accessors below, so a
     * hit costs a single tag search instead of one per operation.
     */
    int
    findWay(Addr addr) const
    {
        const size_t set = geometry_.setIndex(addr);
        const Addr tag = geometry_.tag(addr);
        const LineMeta *line = &meta_[set * config_.associativity];
        for (unsigned way = 0; way < config_.associativity; ++way) {
            if (line[way].valid && line[way].tag == tag)
                return static_cast<int>(way);
        }
        return -1;
    }

    /** True when the line containing addr is present. */
    bool contains(Addr addr) const { return findWay(addr) >= 0; }

    /**
     * Conservative presence test from the residency filter: false means
     * the line is definitely absent (no tag search needed); true means
     * a tag search is required. The filter counts resident lines per
     * hash bucket and is updated by every path that changes residency
     * (allocate, eviction, invalidation, drain, scrub poisoning), so a
     * zero count is exact -- hash collisions only cause spurious
     * probes, never missed ones. The hierarchy owner uses this to make
     * coherence snoops over non-sharing caches O(1).
     */
    bool
    mayContain(Addr addr) const
    {
        return filter_[filterBucket(addr)] != 0;
    }

    /** True when the line containing addr is present and dirty. */
    bool isDirty(Addr addr) const;

    /** True when the line at (addr, way) -- from findWay() -- is dirty. */
    bool
    wayDirty(Addr addr, int way) const
    {
        const size_t set = geometry_.setIndex(addr);
        return meta_[set * config_.associativity +
                     static_cast<unsigned>(way)].dirty;
    }

    /**
     * Checked read of the 64-bit word at addr; the line must be present.
     * CE/UE events are posted to the reporter. Status reflects the
     * protection verdict, including ground-truthed miscorrection.
     */
    ReadOutcome readWord(Addr addr) { return readWord(addr, findWay(addr)); }

    /** As readWord(addr), with the way already found by findWay(). */
    ReadOutcome
    readWord(Addr addr, int way)
    {
        XSER_ASSERT(way >= 0, msg("readWord miss in ", config_.name));
        const size_t set = geometry_.setIndex(addr);
        auto &line = meta_[set * config_.associativity + way];
        line.lastUse = ++useCounter_;

        const size_t index =
            lineWordBase(set, way) + geometry_.wordOffset(addr);
        ReadOutcome outcome = dataArray_.read(index);
        // Clean outcomes post nothing (silent escapes are by definition
        // invisible to EDAC), so the call is skipped for them.
        if (outcome.status != ecc::CheckStatus::Clean)
            postEdac(outcome);
        return outcome;
    }

    /**
     * Write the word at addr; the line must be present. Marks the line
     * dirty under write-back policy.
     */
    void writeWord(Addr addr, uint64_t value)
    {
        writeWord(addr, value, findWay(addr));
    }

    /** As writeWord(addr, value), with the way already found. */
    void
    writeWord(Addr addr, uint64_t value, int way)
    {
        XSER_ASSERT(way >= 0, msg("writeWord miss in ", config_.name));
        const size_t set = geometry_.setIndex(addr);
        auto &line = meta_[set * config_.associativity + way];
        line.lastUse = ++useCounter_;
        if (config_.writePolicy == WritePolicy::WriteBack)
            line.dirty = true;

        const size_t index =
            lineWordBase(set, way) + geometry_.wordOffset(addr);
        dataArray_.write(index, value);
    }

    /**
     * Checked read-out of the full line containing addr (for fills to an
     * upper level or writebacks). The line must be present.
     *
     * @param out Receives wordsPerLine() words.
     * @return true when any word raised an uncorrectable error.
     */
    bool readLine(Addr addr, std::vector<uint64_t> &out)
    {
        return readLine(addr, out, findWay(addr));
    }

    /** As readLine(addr, out), with the way already found. */
    bool readLine(Addr addr, std::vector<uint64_t> &out, int way);

    /**
     * Install a line (write-allocate or fill).
     *
     * @param addr Any address within the line.
     * @param line wordsPerLine() words of data.
     * @param dirty Install state (true for write-allocate in WB caches).
     * @return The evicted victim, if one had to make room.
     */
    EvictedLine allocate(Addr addr, const std::vector<uint64_t> &line,
                         bool dirty);

    /** Drop the line containing addr if present (no writeback). */
    void invalidate(Addr addr);

    /** Drop the line at (addr, way) -- from findWay() -- unconditionally. */
    void invalidateWay(Addr addr, int way);

    /** Drop every line (no writebacks); keeps injected-flip counters. */
    void invalidateAll();

    /** Fraction of lines currently valid, for occupancy diagnostics. */
    double occupancy() const;

    /** Hit/miss accounting (driven by the hierarchy owner). */
    void recordHit() { ++stats_.hits; }
    void recordMiss() { ++stats_.misses; }

    /** Result of scrubbing one line slot. */
    struct ScrubResult {
        bool scanned = false;         ///< slot held a valid line
        bool uncorrectable = false;   ///< a UE was found in it
        bool dirty = false;           ///< it was dirty (needs writeback)
        Addr address = 0;             ///< line base address
        std::vector<uint64_t> data;   ///< read-out data (when dirty UE)
    };

    /**
     * Patrol-scrub one line slot (index in [0, numLines)): checked read
     * of every word, repairing correctable errors in place. On an
     * uncorrectable error the line is invalidated so it cannot keep
     * re-reporting; dirty victims hand their (corrupt) data back for
     * writeback by the owner.
     */
    ScrubResult scrubLine(size_t line_index);

    /**
     * Read out (checked) every dirty line and invalidate everything.
     * Used to flush between characterization phases.
     *
     * @return (address, data) pairs that must be written downstream.
     */
    std::vector<std::pair<Addr, std::vector<uint64_t>>> drainAll();

    /**
     * Serialize the checkpointable state: line metadata, LRU counter,
     * statistics, and the protected data array. The residency filter
     * is derived state and is recomputed on restore.
     */
    void snapshot(SnapshotWriter &writer) const;

    /** Restore state captured by snapshot() (same geometry required). */
    void restore(SnapshotReader &reader);

    /** Total SRAM bits of the data array (beam footprint). */
    uint64_t footprintBits() const { return dataArray_.totalBits(); }

    /** True when no word of the data array deviates from its truth. */
    bool arrayClean() const { return dataArray_.corruptWords() == 0; }

  private:
    /** Residency-filter bucket of the line containing addr. */
    size_t
    filterBucket(Addr addr) const
    {
        return static_cast<size_t>(
            (geometry_.lineBase(addr) * 0x9e3779b97f4a7c15ULL) >>
            (64 - filterBucketBits));
    }

    void filterAdd(Addr addr) { ++filter_[filterBucket(addr)]; }
    void filterRemove(Addr addr) { --filter_[filterBucket(addr)]; }

    /** Victim way in addr's set (invalid way first, else LRU). */
    unsigned victimWay(size_t set) const;

    /** Base index of a line's words in the data array. */
    size_t
    lineWordBase(size_t set, unsigned way) const
    {
        return (set * config_.associativity + way) *
               geometry_.wordsPerLine();
    }

    /** Post an EDAC event matching a read outcome, if any. */
    void postEdac(const ReadOutcome &outcome);

    /** True when an outcome leaves the word uncorrectably wrong. */
    bool outcomeUncorrectable(const ReadOutcome &outcome) const;

    /** Current simulated time for event timestamps. */
    Tick now() const { return now_ ? *now_ : 0; }

    CacheConfig config_;
    CacheGeometry geometry_;
    EdacReporter *reporter_;
    SramArray dataArray_;
    const Tick *now_ = nullptr;

    struct LineMeta {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
        uint64_t lastUse = 0;
    };
    std::vector<LineMeta> meta_;  ///< numSets * associativity entries

    static constexpr unsigned filterBucketBits = 12;
    /** Resident-line counts per hash bucket (see mayContain). */
    std::vector<uint32_t> filter_;

    uint64_t useCounter_ = 0;
    CacheStats stats_;
};

} // namespace xser::mem

#endif // XSER_MEM_CACHE_HH
