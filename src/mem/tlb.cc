/**
 * @file
 * RefetchableArray implementation.
 */

#include "mem/tlb.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace xser::mem {

RefetchableArray::RefetchableArray(std::string name, size_t words,
                                   CacheLevel level, EdacReporter *reporter,
                                   uint64_t fill_seed)
    : array_(std::move(name), words, Protection::Parity), level_(level),
      reporter_(reporter), fillSeed_(fill_seed)
{
    XSER_ASSERT(reporter_ != nullptr,
                "refetchable array needs an EDAC reporter");
    reset();
}

uint64_t
RefetchableArray::fillValue(size_t index) const
{
    // SplitMix64 of (seed ^ index): stable per-entry synthetic contents.
    SplitMix64 mixer(fillSeed_ ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
    return mixer.next();
}

bool
RefetchableArray::touch(size_t index)
{
    ReadOutcome outcome = array_.read(index);
    if (outcome.status == ecc::CheckStatus::ParityError) {
        // Invalidate-and-refetch: the entry is reloaded from the
        // authoritative source; hardware logs a corrected upset.
        array_.write(index, fillValue(index));
        reporter_->post(now_ ? *now_ : 0, level_, EdacKind::Corrected,
                        array_.name());
        ++repairs_;
        return true;
    }
    if (outcome.silentCorruption) {
        // An even number of flips escaped parity. These arrays hold
        // refetchable state, so model the eventual miss/replacement
        // repairing the entry; the escape is already counted by the
        // array's silentEscapes statistic.
        array_.write(index, fillValue(index));
    }
    return false;
}

void
RefetchableArray::replace(size_t index)
{
    array_.write(index, fillValue(index));
}

void
RefetchableArray::reset()
{
    array_.reset();
    for (size_t i = 0; i < array_.words(); ++i)
        array_.write(i, fillValue(i));
    repairs_ = 0;
}

} // namespace xser::mem
