/**
 * @file
 * The full X-Gene 2 memory hierarchy: per-core parity L1I/L1D and TLBs,
 * per-core-pair SECDED L2s, one shared SECDED L3, and a DRAM backing
 * store. Owns the recovery policies the paper describes in Section 3.1:
 *
 *  - parity error in L1D/L1I/TLB -> invalidate + refetch (write-through /
 *    reconstructible state), logged as a corrected upset;
 *  - SECDED single-bit error in L2/L3 -> corrected in place (CE);
 *  - SECDED double-bit error -> UE; clean lines are reloaded from the
 *    level below, dirty lines deliver their (corrupt) data.
 *
 * Coherence between the four L2 islands and eight L1Ds uses a simple
 * write-invalidate snoop: good enough for partitioned HPC workloads and
 * guarantees single-writer correctness so that every output mismatch is
 * genuinely radiation-induced.
 */

#ifndef XSER_MEM_MEMORY_SYSTEM_HH
#define XSER_MEM_MEMORY_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "mem/cache.hh"
#include "mem/edac_reporter.hh"
#include "mem/tlb.hh"

namespace xser::mem {

/** Static configuration of the hierarchy (defaults = Table 1). */
struct MemorySystemConfig {
    unsigned numCores = 8;
    size_t lineBytes = 64;
    size_t l1iBytes = 32 * 1024;        ///< parity, refetchable
    size_t l1dBytes = 32 * 1024;        ///< parity, write-through
    unsigned l1dAssociativity = 4;
    size_t l2Bytes = 256 * 1024;        ///< SECDED, write-back, per pair
    unsigned l2Associativity = 8;
    size_t l3Bytes = 8 * 1024 * 1024;   ///< SECDED, write-back, shared
    unsigned l3Associativity = 16;
    size_t tlbWordsPerCore = 1064;      ///< 1024 unified L2 TLB + D/I
                                        ///< micro-TLBs, one word per entry
    unsigned l1HitCycles = 2;
    unsigned l2HitCycles = 12;
    unsigned l3HitCycles = 35;
    unsigned dramCycles = 130;
    uint64_t contentSeed = 0x5eedULL;   ///< synthetic L1I/TLB contents
    /** Protection schemes (defaults = Table 1; ablations override). */
    Protection l1Protection = Protection::Parity;
    Protection l2Protection = Protection::Secded;
    Protection l3Protection = Protection::Secded;
    /**
     * Event-driven fast paths (clean-read short-circuit in every SRAM
     * array, clean-line and clean-array patrol-scrub skips). Observably
     * identical to the reference paths -- gated by the differential
     * tests -- and on by default; campaigns flip it off only to prove
     * equivalence.
     */
    bool fastPath = true;
};

/** One beam-targetable SRAM array with its level attribution. */
struct BeamTarget {
    SramArray *array;
    CacheLevel level;
    bool pmdDomain;  ///< true when powered by the PMD (core) domain
};

/** Run-scoped corruption-delivery counters (analysis only). */
struct DeliveryCounters {
    uint64_t parityRefetches = 0;   ///< L1D parity invalidate+refetch
    uint64_t dirtyUeDeliveries = 0; ///< corrupt dirty lines handed upward
};

/**
 * The assembled memory hierarchy. All workload traffic enters through
 * readWord/writeWord tagged with the issuing core.
 */
class MemorySystem
{
  public:
    MemorySystem(const MemorySystemConfig &config, EdacReporter *reporter);

    const MemorySystemConfig &config() const { return config_; }

    /** Bump-allocate simulated memory (64-byte aligned). */
    Addr allocate(size_t bytes, const std::string &tag);

    /** Release all allocations and clear the DRAM store and caches. */
    void resetHeap();

    /** Read the 64-bit word at addr through core's hierarchy path. */
    uint64_t readWord(unsigned core, Addr addr);

    /** Write the 64-bit word at addr through core's hierarchy path. */
    void writeWord(unsigned core, Addr addr, uint64_t value);

    /** Model an instruction fetch touching word index of core's L1I. */
    void touchIFetch(unsigned core, size_t word_index);

    /** Model a TLB lookup touching word index of core's TLB array. */
    void touchTlb(unsigned core, size_t word_index);

    /**
     * Patrol-scrub: advance the round-robin scrub cursors over the L2
     * and L3 arrays by the given number of lines each.
     */
    void scrub(size_t l2_lines, size_t l3_lines);

    /** Write back all dirty lines and invalidate every cache. */
    void flushAll();

    /**
     * Serialize the full checkpointable hierarchy state: every cache
     * and refetchable array, the DRAM backing store (pages in sorted
     * address order, so the bytes are independent of hash order), the
     * heap bump pointer, the access/cycle accumulators, the scrub
     * cursors, and the delivery counters.
     */
    void snapshot(SnapshotWriter &writer) const;

    /**
     * Restore state captured by snapshot() into an identically
     * configured hierarchy (validated, fatal on mismatch).
     */
    void restore(SnapshotReader &reader);

    /** All SRAM arrays the beam can strike. */
    std::vector<BeamTarget> beamTargets();

    /** Total SRAM bits across all arrays (the ~10 MB of Section 3.3). */
    uint64_t totalSramBits() const;

    /** Accumulated access cost in cycles since the last clear. */
    uint64_t cyclesAccumulated() const { return cycles_; }

    /** Reset the access-cost accumulator. */
    void clearCycles() { cycles_ = 0; }

    /** Number of read/write word operations issued. */
    uint64_t accessCount() const { return accesses_; }

    /** Analysis counters for the current run. */
    const DeliveryCounters &deliveryCounters() const { return delivery_; }

    /** Clear analysis counters (start of run). */
    void clearDeliveryCounters() { delivery_ = DeliveryCounters{}; }

    /** Set the simulated-time source used to timestamp EDAC events. */
    void setTimeSource(const Tick *now);

    /**
     * Attach a lifecycle trace sink to every SRAM array (null detaches).
     * Array ids are indices into traceArrayTable().
     */
    void setTraceSink(trace::TraceSink *sink);

    /**
     * Array descriptors in beamTargets() order -- the trace file's array
     * table. Depends only on configuration, so any MemorySystem built
     * from the same config yields an identical table.
     */
    std::vector<trace::TraceArrayInfo> traceArrayTable() const;

    /** Per-level component access for tests and reports. */
    Cache &l1d(unsigned core);
    Cache &l2(unsigned pair);
    Cache &l3() { return *l3_; }
    RefetchableArray &l1i(unsigned core);
    RefetchableArray &tlb(unsigned core);
    EdacReporter &reporter() { return *reporter_; }

  private:
    /** Fetch a full line into `out` from the L2/L3/DRAM path. */
    void readLineFromL2(unsigned core, Addr line_addr,
                        std::vector<uint64_t> &out);
    void readLineFromL3(Addr line_addr, std::vector<uint64_t> &out);

    /** Install a line into L2/L3, spilling the victim downstream. */
    void installL2(unsigned pair, Addr line_addr,
                   const std::vector<uint64_t> &line, bool dirty);
    void installL3(Addr line_addr, const std::vector<uint64_t> &line,
                   bool dirty);

    /** Write a full line into L3 (allocating if needed). */
    void writeLineToL3(Addr line_addr, const std::vector<uint64_t> &line);

    /** Snoop other L2s before taking write ownership / reading L3. */
    void snoopOtherL2s(unsigned writing_pair, Addr line_addr);

    /** DRAM access helpers (backing store is authoritative + ECC'd). */
    void dramReadLine(Addr line_addr, std::vector<uint64_t> &out);
    void dramWriteLine(Addr line_addr, const std::vector<uint64_t> &line);
    uint64_t *dramWordSlot(Addr addr);

    MemorySystemConfig config_;
    EdacReporter *reporter_;
    const Tick *now_ = nullptr;
    trace::TraceSink *traceSink_ = nullptr;

    std::vector<std::unique_ptr<Cache>> l1d_;
    std::vector<std::unique_ptr<Cache>> l2_;
    std::unique_ptr<Cache> l3_;
    std::vector<std::unique_ptr<RefetchableArray>> l1i_;
    std::vector<std::unique_ptr<RefetchableArray>> tlb_;

    /**
     * DRAM: 4 KiB pages of 512 words, allocated on first touch.
     *
     * Point lookups only -- this map must never be iterated (hash
     * order would be a hidden input to any walk over it). xser-lint's
     * unordered-iter rule guards the loops; the declaration itself is
     * justified in tools/xser-lint-allow.txt.
     */
    std::unordered_map<Addr, std::vector<uint64_t>> dramPages_;

    Addr heapNext_ = 0x10000;  ///< bump pointer (low pages reserved)
    uint64_t cycles_ = 0;
    uint64_t accesses_ = 0;
    DeliveryCounters delivery_;
    size_t l2ScrubCursor_ = 0;
    size_t l3ScrubCursor_ = 0;
    std::vector<uint64_t> lineScratch_;
};

} // namespace xser::mem

#endif // XSER_MEM_MEMORY_SYSTEM_HH
