/**
 * @file
 * Scrubber implementation.
 */

#include "mem/scrubber.hh"

#include "sim/logging.hh"
#include "telemetry/metrics.hh"

namespace xser::mem {

Scrubber::Scrubber(const ScrubberConfig &config, MemorySystem *memory)
    : config_(config), memory_(memory)
{
    XSER_ASSERT(memory_ != nullptr, "scrubber needs a memory system");
    if (config_.l2PassPeriod == 0 || config_.l3PassPeriod == 0)
        fatal("scrub pass periods must be positive");

    if (config_.clockScale <= 0.0)
        fatal("scrubber clock scale must be positive");
    const double l2_lines =
        static_cast<double>(memory_->l2(0).geometry().numLines());
    const double l3_lines =
        static_cast<double>(memory_->l3().geometry().numLines());
    l2LinesPerTick_ = config_.clockScale * l2_lines /
                      static_cast<double>(config_.l2PassPeriod);
    l3LinesPerTick_ = config_.clockScale * l3_lines /
                      static_cast<double>(config_.l3PassPeriod);
}

void
Scrubber::advance(Tick elapsed)
{
    if (!config_.enabled || elapsed == 0)
        return;
    if (config_.l2Enabled)
        l2Remainder_ += l2LinesPerTick_ * static_cast<double>(elapsed);
    if (config_.l3Enabled)
        l3Remainder_ += l3LinesPerTick_ * static_cast<double>(elapsed);

    const auto l2_due = static_cast<size_t>(l2Remainder_);
    const auto l3_due = static_cast<size_t>(l3Remainder_);
    l2Remainder_ -= static_cast<double>(l2_due);
    l3Remainder_ -= static_cast<double>(l3_due);

    if (l2_due > 0 || l3_due > 0) {
        memory_->scrub(l2_due, l3_due);
        linesScrubbed_ += l2_due + l3_due;
        telemetry::count(telemetry::Counter::ScrubPasses);
        telemetry::count(telemetry::Counter::ScrubLines,
                         l2_due + l3_due);
    }
}

void
Scrubber::reset()
{
    l2Remainder_ = 0.0;
    l3Remainder_ = 0.0;
    linesScrubbed_ = 0;
}

} // namespace xser::mem
