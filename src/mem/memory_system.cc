/**
 * @file
 * MemorySystem implementation.
 */

#include "mem/memory_system.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "telemetry/metrics.hh"

namespace xser::mem {

namespace {

constexpr Addr pageBytes = 4096;
constexpr size_t pageWords = pageBytes / 8;

inline Addr
pageBase(Addr addr)
{
    return addr & ~(pageBytes - 1);
}

} // namespace

MemorySystem::MemorySystem(const MemorySystemConfig &config,
                           EdacReporter *reporter)
    : config_(config), reporter_(reporter)
{
    XSER_ASSERT(reporter_ != nullptr, "memory system needs a reporter");
    if (config_.numCores == 0 || config_.numCores % 2 != 0)
        fatal(msg("core count must be a positive even number, got ",
                  config_.numCores));

    for (unsigned core = 0; core < config_.numCores; ++core) {
        CacheConfig l1;
        l1.name = msg("l1d.", core);
        l1.sizeBytes = config_.l1dBytes;
        l1.lineBytes = config_.lineBytes;
        l1.associativity = config_.l1dAssociativity;
        l1.protection = config_.l1Protection;
        l1.writePolicy = WritePolicy::WriteThrough;
        l1.level = CacheLevel::L1;
        l1d_.push_back(std::make_unique<Cache>(l1, reporter_));

        l1i_.push_back(std::make_unique<RefetchableArray>(
            msg("l1i.", core), config_.l1iBytes / 8, CacheLevel::L1,
            reporter_, config_.contentSeed ^ (0x1111ULL * (core + 1))));
        tlb_.push_back(std::make_unique<RefetchableArray>(
            msg("tlb.", core), config_.tlbWordsPerCore, CacheLevel::Tlb,
            reporter_, config_.contentSeed ^ (0x2222ULL * (core + 1))));
    }

    const unsigned pairs = config_.numCores / 2;
    for (unsigned pair = 0; pair < pairs; ++pair) {
        CacheConfig l2;
        l2.name = msg("l2.", pair);
        l2.sizeBytes = config_.l2Bytes;
        l2.lineBytes = config_.lineBytes;
        l2.associativity = config_.l2Associativity;
        l2.protection = config_.l2Protection;
        l2.writePolicy = WritePolicy::WriteBack;
        l2.level = CacheLevel::L2;
        l2_.push_back(std::make_unique<Cache>(l2, reporter_));
    }

    CacheConfig l3;
    l3.name = "l3";
    l3.sizeBytes = config_.l3Bytes;
    l3.lineBytes = config_.lineBytes;
    l3.associativity = config_.l3Associativity;
    l3.protection = config_.l3Protection;
    l3.writePolicy = WritePolicy::WriteBack;
    l3.level = CacheLevel::L3;
    l3_ = std::make_unique<Cache>(l3, reporter_);

    for (BeamTarget &target : beamTargets())
        target.array->setFastPath(config_.fastPath);
}

void
MemorySystem::setTimeSource(const Tick *now)
{
    now_ = now;
    for (auto &cache : l1d_)
        cache->setTimeSource(now);
    for (auto &cache : l2_)
        cache->setTimeSource(now);
    l3_->setTimeSource(now);
    for (auto &array : l1i_)
        array->setTimeSource(now);
    for (auto &array : tlb_)
        array->setTimeSource(now);
}

void
MemorySystem::setTraceSink(trace::TraceSink *sink)
{
    traceSink_ = sink;
    uint32_t id = 0;
    for (BeamTarget &target : beamTargets()) {
        target.array->setTrace(sink, sink ? id : trace::noArray);
        if (sink)
            sink->registerArray(id, static_cast<uint8_t>(target.level));
        ++id;
    }
}

std::vector<trace::TraceArrayInfo>
MemorySystem::traceArrayTable() const
{
    std::vector<trace::TraceArrayInfo> table;
    auto add_array = [&table](const SramArray &array, CacheLevel level) {
        table.push_back({array.name(), static_cast<uint8_t>(level), 0, 0,
                         static_cast<uint64_t>(array.words())});
    };
    auto add_cache = [&table](const Cache &cache) {
        table.push_back(
            {cache.dataArray().name(),
             static_cast<uint8_t>(cache.config().level),
             static_cast<uint32_t>(cache.geometry().wordsPerLine()),
             cache.config().associativity,
             static_cast<uint64_t>(cache.dataArray().words())});
    };
    for (const auto &array : l1i_)
        add_array(array->array(), CacheLevel::L1);
    for (const auto &cache : l1d_)
        add_cache(*cache);
    for (const auto &array : tlb_)
        add_array(array->array(), CacheLevel::Tlb);
    for (const auto &cache : l2_)
        add_cache(*cache);
    add_cache(*l3_);
    return table;
}

Cache &
MemorySystem::l1d(unsigned core)
{
    XSER_ASSERT(core < l1d_.size(), "core index out of range");
    return *l1d_[core];
}

Cache &
MemorySystem::l2(unsigned pair)
{
    XSER_ASSERT(pair < l2_.size(), "pair index out of range");
    return *l2_[pair];
}

RefetchableArray &
MemorySystem::l1i(unsigned core)
{
    XSER_ASSERT(core < l1i_.size(), "core index out of range");
    return *l1i_[core];
}

RefetchableArray &
MemorySystem::tlb(unsigned core)
{
    XSER_ASSERT(core < tlb_.size(), "core index out of range");
    return *tlb_[core];
}

Addr
MemorySystem::allocate(size_t bytes, const std::string &tag)
{
    if (bytes == 0)
        fatal(msg("zero-byte allocation for '", tag, "'"));
    const Addr base = heapNext_;
    heapNext_ = (heapNext_ + bytes + config_.lineBytes - 1) &
                ~static_cast<Addr>(config_.lineBytes - 1);
    return base;
}

void
MemorySystem::resetHeap()
{
    dramPages_.clear();
    heapNext_ = 0x10000;
    for (auto &cache : l1d_)
        cache->invalidateAll();
    for (auto &cache : l2_)
        cache->invalidateAll();
    l3_->invalidateAll();
}

uint64_t *
MemorySystem::dramWordSlot(Addr addr)
{
    auto &page = dramPages_[pageBase(addr)];
    if (page.empty())
        page.assign(pageWords, 0);
    return &page[(addr & (pageBytes - 1)) >> 3];
}

void
MemorySystem::dramReadLine(Addr line_addr, std::vector<uint64_t> &out)
{
    // Lines never straddle pages (both are powers of two with
    // lineBytes <= pageBytes), so one page lookup serves the whole line.
    const size_t words = config_.lineBytes / 8;
    out.resize(words);
    const uint64_t *slot = dramWordSlot(line_addr);
    for (size_t i = 0; i < words; ++i)
        out[i] = slot[i];
}

void
MemorySystem::dramWriteLine(Addr line_addr,
                            const std::vector<uint64_t> &line)
{
    uint64_t *slot = dramWordSlot(line_addr);
    for (size_t i = 0; i < line.size(); ++i)
        slot[i] = line[i];
}

void
MemorySystem::snoopOtherL2s(unsigned writing_pair, Addr line_addr)
{
    for (unsigned pair = 0; pair < l2_.size(); ++pair) {
        if (pair == writing_pair)
            continue;
        Cache &other = *l2_[pair];
        telemetry::count(telemetry::Counter::SnoopProbes);
        // Residency-filter early-out: a zero bucket count proves the
        // line absent, so the snoop is a no-op without a tag search.
        if (config_.fastPath && !other.mayContain(line_addr)) {
            telemetry::count(telemetry::Counter::SnoopsFiltered);
            continue;
        }
        const int way = other.findWay(line_addr);
        if (way < 0)
            continue;
        if (other.wayDirty(line_addr, way)) {
            std::vector<uint64_t> line;
            other.readLine(line_addr, line, way);
            writeLineToL3(line_addr, line);
        }
        other.invalidateWay(line_addr, way);
    }
}

void
MemorySystem::installL3(Addr line_addr, const std::vector<uint64_t> &line,
                        bool dirty)
{
    EvictedLine victim = l3_->allocate(line_addr, line, dirty);
    if (victim.valid && victim.dirty)
        dramWriteLine(victim.address, victim.data);
}

void
MemorySystem::writeLineToL3(Addr line_addr,
                            const std::vector<uint64_t> &line)
{
    const int way = l3_->findWay(line_addr);
    if (way >= 0) {
        for (size_t i = 0; i < line.size(); ++i)
            l3_->writeWord(line_addr + 8 * i, line[i], way);
        return;
    }
    installL3(line_addr, line, true);
}

void
MemorySystem::readLineFromL3(Addr line_addr, std::vector<uint64_t> &out)
{
    cycles_ += config_.l3HitCycles;
    const int way = l3_->findWay(line_addr);
    if (way < 0) {
        l3_->recordMiss();
        cycles_ += config_.dramCycles;
        dramReadLine(line_addr, out);
        installL3(line_addr, out, false);
        return;
    }
    l3_->recordHit();
    const bool uncorrectable = l3_->readLine(line_addr, out, way);
    if (uncorrectable) {
        if (!l3_->wayDirty(line_addr, way)) {
            // Clean poisoned line: DRAM still has the truth.
            l3_->invalidateWay(line_addr, way);
            cycles_ += config_.dramCycles;
            dramReadLine(line_addr, out);
            installL3(line_addr, out, false);
        } else {
            // Dirty poisoned line: nothing better exists; the corrupt
            // data propagates (possible SDC downstream).
            ++delivery_.dirtyUeDeliveries;
            if (traceSink_) {
                traceSink_->record({trace::EventType::Propagate,
                                    now_ ? *now_ : 0,
                                    l3_->dataArray().traceId(),
                                    trace::noWord, trace::noBit, 1});
            }
        }
    }
}

void
MemorySystem::installL2(unsigned pair, Addr line_addr,
                        const std::vector<uint64_t> &line, bool dirty)
{
    EvictedLine victim = l2_[pair]->allocate(line_addr, line, dirty);
    if (victim.valid && victim.dirty)
        writeLineToL3(victim.address, victim.data);
}

void
MemorySystem::readLineFromL2(unsigned core, Addr line_addr,
                             std::vector<uint64_t> &out)
{
    const unsigned pair = core / 2;
    Cache &cache = *l2_[pair];
    cycles_ += config_.l2HitCycles;
    const int way = cache.findWay(line_addr);
    if (way < 0) {
        cache.recordMiss();
        // A sibling pair may hold a newer dirty copy; push it to L3
        // before reading the L3 level.
        snoopOtherL2s(pair, line_addr);
        readLineFromL3(line_addr, out);
        installL2(pair, line_addr, out, false);
        return;
    }
    cache.recordHit();
    const bool uncorrectable = cache.readLine(line_addr, out, way);
    if (uncorrectable) {
        if (!cache.wayDirty(line_addr, way)) {
            cache.invalidateWay(line_addr, way);
            readLineFromL3(line_addr, out);
            installL2(pair, line_addr, out, false);
        } else {
            ++delivery_.dirtyUeDeliveries;
            if (traceSink_) {
                traceSink_->record({trace::EventType::Propagate,
                                    now_ ? *now_ : 0,
                                    cache.dataArray().traceId(),
                                    trace::noWord, trace::noBit, 1});
            }
        }
    }
}

uint64_t
MemorySystem::readWord(unsigned core, Addr addr)
{
    XSER_ASSERT((addr & 7) == 0, "word access must be 8-byte aligned");
    ++accesses_;
    cycles_ += config_.l1HitCycles;

    Cache &l1 = *l1d_[core];
    const Addr line_addr = l1.geometry().lineBase(addr);
    const size_t offset = l1.geometry().wordOffset(addr);

    const int way = l1.findWay(addr);
    if (way >= 0) {
        l1.recordHit();
        ReadOutcome outcome = l1.readWord(addr, way);
        if (outcome.status != ecc::CheckStatus::ParityError)
            return outcome.value;
        // Parity error: invalidate + refetch; write-through means the
        // level below is authoritative, so this is always recoverable.
        l1.invalidateWay(addr, way);
        reporter_->post(now_ ? *now_ : 0, CacheLevel::L1,
                        EdacKind::Corrected, l1.name());
        ++delivery_.parityRefetches;
    } else {
        l1.recordMiss();
    }

    readLineFromL2(core, line_addr, lineScratch_);
    l1.allocate(addr, lineScratch_, false);
    return lineScratch_[offset];
}

void
MemorySystem::writeWord(unsigned core, Addr addr, uint64_t value)
{
    XSER_ASSERT((addr & 7) == 0, "word access must be 8-byte aligned");
    ++accesses_;
    cycles_ += config_.l1HitCycles;

    Cache &l1 = *l1d_[core];
    const Addr line_addr = l1.geometry().lineBase(addr);

    const int l1_way = l1.findWay(addr);
    if (l1_way >= 0)
        l1.writeWord(addr, value, l1_way);

    // Write-invalidate coherence over the other cores' L1Ds. The
    // residency filter turns the common no-sharer case into one load
    // per core instead of a tag search.
    for (unsigned other = 0; other < l1d_.size(); ++other) {
        if (other == core)
            continue;
        Cache &other_l1 = *l1d_[other];
        if (config_.fastPath && !other_l1.mayContain(addr))
            continue;
        const int other_way = other_l1.findWay(addr);
        if (other_way >= 0)
            other_l1.invalidateWay(addr, other_way);
    }

    // Write-through into the (write-back, write-allocate) L2.
    const unsigned pair = core / 2;
    snoopOtherL2s(pair, line_addr);
    Cache &cache = *l2_[pair];
    int l2_way = cache.findWay(addr);
    if (l2_way < 0) {
        cache.recordMiss();
        readLineFromL3(line_addr, lineScratch_);
        installL2(pair, line_addr, lineScratch_, false);
        l2_way = cache.findWay(addr);
    } else {
        cache.recordHit();
    }
    cache.writeWord(addr, value, l2_way);
}

void
MemorySystem::touchIFetch(unsigned core, size_t word_index)
{
    RefetchableArray &array = *l1i_[core];
    array.touch(word_index % array.words());
}

void
MemorySystem::touchTlb(unsigned core, size_t word_index)
{
    RefetchableArray &array = *tlb_[core];
    array.touch(word_index % array.words());
}

void
MemorySystem::scrub(size_t l2_lines, size_t l3_lines)
{
    // Patrolling a fully clean array is observably a no-op (clean-line
    // scrubs touch nothing, see Cache::scrubLine), so when every array
    // of a level is clean the round-robin cursor can jump arithmetically
    // instead of walking line by line.
    const size_t l2_total = l2_.empty() ? 0
        : l2_[0]->geometry().numLines();
    bool l2_all_clean = config_.fastPath;
    for (auto &cache : l2_)
        l2_all_clean = l2_all_clean && cache->arrayClean();
    if (l2_all_clean && l2_total > 0) {
        l2ScrubCursor_ = (l2ScrubCursor_ + l2_lines) % l2_total;
    } else {
        for (size_t step = 0; step < l2_lines && l2_total > 0; ++step) {
            const size_t index = l2ScrubCursor_;
            l2ScrubCursor_ = (l2ScrubCursor_ + 1) % l2_total;
            for (auto &cache : l2_) {
                Cache::ScrubResult result = cache->scrubLine(index);
                if (result.uncorrectable && result.dirty)
                    writeLineToL3(result.address, result.data);
            }
        }
    }
    const size_t l3_total = l3_->geometry().numLines();
    if (config_.fastPath && l3_->arrayClean() && l3_total > 0) {
        l3ScrubCursor_ = (l3ScrubCursor_ + l3_lines) % l3_total;
    } else {
        for (size_t step = 0; step < l3_lines && l3_total > 0; ++step) {
            const size_t index = l3ScrubCursor_;
            l3ScrubCursor_ = (l3ScrubCursor_ + 1) % l3_total;
            Cache::ScrubResult result = l3_->scrubLine(index);
            if (result.uncorrectable && result.dirty)
                dramWriteLine(result.address, result.data);
        }
    }
}

void
MemorySystem::flushAll()
{
    for (auto &cache : l1d_)
        cache->invalidateAll();  // write-through: never dirty
    for (auto &cache : l2_) {
        for (auto &[addr, line] : cache->drainAll())
            writeLineToL3(addr, line);
    }
    for (auto &[addr, line] : l3_->drainAll())
        dramWriteLine(addr, line);
}

std::vector<BeamTarget>
MemorySystem::beamTargets()
{
    std::vector<BeamTarget> targets;
    for (auto &array : l1i_)
        targets.push_back({&array->array(), CacheLevel::L1, true});
    for (auto &cache : l1d_)
        targets.push_back({&cache->dataArray(), CacheLevel::L1, true});
    for (auto &array : tlb_)
        targets.push_back({&array->array(), CacheLevel::Tlb, true});
    for (auto &cache : l2_)
        targets.push_back({&cache->dataArray(), CacheLevel::L2, true});
    targets.push_back({&l3_->dataArray(), CacheLevel::L3, false});
    return targets;
}

void
MemorySystem::snapshot(SnapshotWriter &writer) const
{
    writer.u64(config_.numCores);
    writer.u64(heapNext_);
    writer.u64(cycles_);
    writer.u64(accesses_);
    writer.u64(delivery_.parityRefetches);
    writer.u64(delivery_.dirtyUeDeliveries);
    writer.u64(l2ScrubCursor_);
    writer.u64(l3ScrubCursor_);

    for (const auto &cache : l1d_)
        cache->snapshot(writer);
    for (const auto &cache : l2_)
        cache->snapshot(writer);
    l3_->snapshot(writer);
    for (const auto &array : l1i_)
        array->snapshot(writer);
    for (const auto &array : tlb_)
        array->snapshot(writer);

    // DRAM pages in ascending address order: the map is hash-ordered,
    // so the keys are collected and sorted first to keep the stream
    // bytes a pure function of the simulated state.
    std::vector<Addr> pages;
    pages.reserve(dramPages_.size());
    for (const auto &[base, words] : dramPages_) {
        (void)words;
        pages.push_back(base);
    }
    std::sort(pages.begin(), pages.end());
    writer.u64(pages.size());
    for (const Addr base : pages) {
        writer.u64(base);
        writer.u64Vector(dramPages_.at(base));
    }
}

void
MemorySystem::restore(SnapshotReader &reader)
{
    const uint64_t cores = reader.u64();
    XSER_ASSERT(cores == config_.numCores,
                "snapshot core count mismatch restoring memory system");
    heapNext_ = reader.u64();
    cycles_ = reader.u64();
    accesses_ = reader.u64();
    delivery_.parityRefetches = reader.u64();
    delivery_.dirtyUeDeliveries = reader.u64();
    l2ScrubCursor_ = static_cast<size_t>(reader.u64());
    l3ScrubCursor_ = static_cast<size_t>(reader.u64());

    for (auto &cache : l1d_)
        cache->restore(reader);
    for (auto &cache : l2_)
        cache->restore(reader);
    l3_->restore(reader);
    for (auto &array : l1i_)
        array->restore(reader);
    for (auto &array : tlb_)
        array->restore(reader);

    dramPages_.clear();
    const uint64_t pages = reader.u64();
    for (uint64_t i = 0; i < pages; ++i) {
        const Addr base = reader.u64();
        std::vector<uint64_t> &page = dramPages_[base];
        reader.u64Vector(page);
        XSER_ASSERT(page.size() == pageWords,
                    "snapshot DRAM page has wrong word count");
    }
}

uint64_t
MemorySystem::totalSramBits() const
{
    uint64_t bits = 0;
    for (const auto &array : l1i_)
        bits += array->array().totalBits();
    for (const auto &cache : l1d_)
        bits += cache->dataArray().totalBits();
    for (const auto &array : tlb_)
        bits += array->array().totalBits();
    for (const auto &cache : l2_)
        bits += cache->dataArray().totalBits();
    bits += l3_->dataArray().totalBits();
    return bits;
}

} // namespace xser::mem
