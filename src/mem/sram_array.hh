/**
 * @file
 * Bit-true SRAM array model with an error-protection overlay.
 *
 * This is the foundation of the whole study: every cache/TLB data array in
 * the simulated X-Gene 2 is an SramArray holding *actual* bits plus stored
 * check bits. The beam flips stored bits; detection only happens when a
 * word is subsequently read (by the workload, a fill, or the patrol
 * scrubber), which is why observed upset rates sit below raw upset rates
 * exactly as the paper discusses in Section 3.5.
 *
 * A shadow copy of the last-written truth lets the simulator ground-truth
 * silent corruption (parity-even escapes, SECDED miscorrections) that real
 * hardware cannot see -- used only for accounting, never fed back into
 * simulated behaviour.
 */

#ifndef XSER_MEM_SRAM_ARRAY_HH
#define XSER_MEM_SRAM_ARRAY_HH

#include <cstdint>
#include <string>
#include <vector>

#include "ecc/ecc_types.hh"
#include "ecc/secded.hh"
#include "sim/logging.hh"
#include "sim/sim_clock.hh"
#include "sim/snapshot.hh"
#include "trace/trace_sink.hh"

namespace xser::mem {

/** Protection scheme of an SRAM array (Table 1 of the paper). */
enum class Protection : uint8_t {
    None,    ///< unprotected (not used by X-Gene 2 caches, kept for
             ///< ablations)
    Parity,  ///< even parity per 64-bit word: detects odd flip counts
    Secded,  ///< SECDED(72,64): corrects 1, detects 2 flips per word
};

/** Human-readable name of a protection scheme. */
const char *protectionName(Protection protection);

/** Result of a checked read from a protected word. */
struct ReadOutcome {
    uint64_t value;            ///< data delivered to the consumer
    ecc::CheckStatus status;   ///< protection verdict (ground-truthed)
    bool silentCorruption;     ///< delivered value differs from the truth
};

/** Lifetime statistics of one array, for raw-vs-detected analysis. */
struct SramCounters {
    uint64_t bitFlipsInjected = 0;   ///< raw upset bits from the beam
    uint64_t upsetEventsInjected = 0;///< raw upset events (1 per cluster)
    uint64_t corrected = 0;          ///< CE reports (incl. miscorrections)
    uint64_t uncorrected = 0;        ///< UE reports
    uint64_t parityErrors = 0;       ///< parity detections
    uint64_t miscorrections = 0;     ///< ground truth: CE with wrong data
    uint64_t silentEscapes = 0;      ///< reads delivering corrupt data
                                     ///< with a Clean verdict
    uint64_t overwrittenFlips = 0;   ///< corrupt words overwritten before
                                     ///< any read saw them
};

/**
 * A named array of 64-bit words with stored check bits and fault overlay.
 */
class SramArray
{
  public:
    /**
     * @param name Array name used in EDAC attribution (e.g. "l3.data").
     * @param words Capacity in 64-bit words.
     * @param protection Protection scheme for stored words.
     */
    SramArray(std::string name, size_t words, Protection protection);

    const std::string &name() const { return name_; }
    Protection protection() const { return protection_; }

    /** Capacity in 64-bit data words. */
    size_t words() const { return data_.size(); }

    /** Stored bits per word: 64 data + check bits of the scheme. */
    unsigned bitsPerWord() const { return bitsPerWord_; }

    /** Total stored bits, the footprint the beam samples over. */
    uint64_t totalBits() const
    {
        return static_cast<uint64_t>(words()) * bitsPerWord();
    }

    /**
     * Write a word: stores data, refreshes the shadow truth, and marks
     * the check bits for lazy regeneration (see materializeCheck).
     * Pending flips in the word are silently destroyed (counted as
     * overwritten), mirroring real hardware.
     */
    void
    write(size_t index, uint64_t value)
    {
        XSER_ASSERT(index < data_.size(), "SRAM write out of range");
        if (corrupt_[index]) {
            ++counters_.overwrittenFlips;
            corrupt_[index] = 0;
            --corruptCount_;
        }
        data_[index] = value;
        shadow_[index] = value;
        // Check bits are derived lazily: a freshly written word is
        // clean by construction, and encode() is deterministic, so
        // deferring it to the first flip or checked read that actually
        // consumes the check bits yields the same stored values --
        // just not paid per write.
        checkStale_[index] = 1;
    }

    /**
     * Checked read: verifies protection, corrects in place where the
     * scheme allows, and reports what hardware would report. The outcome
     * additionally carries ground-truth flags the campaign uses for
     * Section 6.2 style analysis.
     */
    ReadOutcome
    read(size_t index)
    {
        if (fastPath_ && !corrupt_[index]) {
            // Clean word: every codec verdicts Clean on a word matching
            // its truth, delivers the stored data unchanged, and updates
            // no counter and no trace -- short-circuit all of it.
            return {data_[index], ecc::CheckStatus::Clean, false};
        }
        return readChecked(index);
    }

    /** Raw stored bits without any checking (debug/test aid). */
    uint64_t peek(size_t index) const;

    /** Shadow truth for a word (what software last wrote). */
    uint64_t truth(size_t index) const;

    /** True when the stored word (incl. check bits) deviates from truth. */
    bool isCorrupted(size_t index) const;

    /** Number of words currently deviating from truth. */
    size_t corruptWords() const { return corruptCount_; }

    /** True when any word in [base, base + count) deviates from truth. */
    bool anyCorruptInRange(size_t base, size_t count) const;

    /**
     * Enable/disable the clean-read fast path. With it on, a read of an
     * uncorrupted word short-circuits past the codec: by the corruption
     * invariant the codec would verdict Clean, deliver the stored data
     * unchanged, touch no counters, and emit no trace -- so the
     * shortcut is observably identical (differential-tested). Off forces
     * every read through the full codec (the reference path).
     */
    void setFastPath(bool enabled) { fastPath_ = enabled; }
    bool fastPath() const { return fastPath_; }

    /**
     * Flip one stored bit.
     *
     * @param index Word index.
     * @param stored_bit Bit position within the stored word footprint:
     *        [0, 64) selects a data bit, [64, bitsPerWord()) a check bit.
     */
    void flipBit(size_t index, unsigned stored_bit);

    /** Record that one upset event (possibly multi-bit) was injected. */
    void noteUpsetEvent() { ++counters_.upsetEventsInjected; }

    /** Lifetime statistics. */
    const SramCounters &counters() const { return counters_; }

    /** Reset contents to zero truth and clear statistics. */
    void reset();

    /**
     * Serialize the full checkpointable state: stored bits, check
     * bits, laziness flags, counters -- and, only when corruption is
     * present, the shadow truth (a clean array's shadow equals its
     * stored state by the corruption invariant, so it compresses
     * away). Wiring (trace sink, time source, fast-path flag) is
     * configuration, not state, and is not serialized.
     */
    void snapshot(SnapshotWriter &writer) const;

    /**
     * Restore state captured by snapshot() into an identically
     * configured array (same word count and protection scheme --
     * validated, fatal on mismatch).
     */
    void restore(SnapshotReader &reader);

    /**
     * Attach a lifecycle trace sink (null detaches). The array's read
     * paths are the single chokepoint where every detection and silent
     * escape becomes visible, so emission here is 1:1 with the counter
     * increments above -- the invariant the EDAC cross-check relies on.
     *
     * @param id This array's row in the trace file's array table.
     */
    void setTrace(trace::TraceSink *sink, uint32_t id)
    {
        traceSink_ = sink;
        traceId_ = id;
    }

    trace::TraceSink *traceSink() const { return traceSink_; }
    uint32_t traceId() const { return traceId_; }

    /** Simulated-time source for trace timestamps (null = t0). */
    void setTimeSource(const Tick *now) { now_ = now; }

    /** Current simulated time for emitted events. */
    Tick now() const { return now_ ? *now_ : 0; }

  private:
    /** Full-codec read path behind read()'s clean-word short-circuit. */
    ReadOutcome readChecked(size_t index);

    ReadOutcome readParity(size_t index);
    ReadOutcome readSecded(size_t index);

    /** Record one lifecycle event for word `index` of this array. */
    void emit(trace::EventType type, size_t index, uint32_t bit,
              uint64_t aux);

    /**
     * Re-derive corrupt_[index] after data_/check_ changed underneath
     * the shadow (a beam flip or an in-place correction), keeping
     * corruptCount_ in step. O(1): the check bits of the truth are
     * cached in shadowCheck_, so no re-encode is needed.
     */
    void refreshCorrupt(size_t index);

    /**
     * Derive check_[index]/shadowCheck_[index] for a word whose last
     * write deferred the encode. Every consumer of the check bits
     * (checked reads, flips) calls this first; while a word is stale it
     * is clean by construction, so laziness is value-preserving.
     */
    void materializeCheck(size_t index);

    std::string name_;
    Protection protection_;
    unsigned bitsPerWord_;
    std::vector<uint64_t> data_;    ///< stored (possibly corrupt) data
    std::vector<uint8_t> check_;    ///< stored check bits
    std::vector<uint64_t> shadow_;  ///< ground-truth data
    std::vector<uint8_t> shadowCheck_;  ///< check bits of the truth
    /**
     * Exact per-word corruption flags, the invariant behind every fast
     * path: corrupt_[i] != 0 iff data_[i] != shadow_[i] or check_[i] !=
     * shadowCheck_[i]. Maintained on write, flip, repair, and reset;
     * never approximate (a flip pair that cancels clears the flag).
     */
    std::vector<uint8_t> corrupt_;
    /**
     * 1 = the word was written but its check bits not yet derived
     * (check_/shadowCheck_ still hold the previous value's bits, equal
     * to each other). Cleared by materializeCheck() and reset().
     */
    std::vector<uint8_t> checkStale_;
    size_t corruptCount_ = 0;
    bool fastPath_ = true;
    SramCounters counters_;
    trace::TraceSink *traceSink_ = nullptr;
    uint32_t traceId_ = trace::noArray;
    const Tick *now_ = nullptr;
};

} // namespace xser::mem

#endif // XSER_MEM_SRAM_ARRAY_HH
