/**
 * @file
 * Refetchable parity-protected arrays: TLBs and the L1 instruction cache.
 *
 * On X-Gene 2 these arrays are parity protected and hold state that is
 * always reconstructible (page-table walk, instruction refetch), so a
 * detected parity error invalidates the entry and reloads it -- a
 * corrected upset from software's point of view (Section 3.1). We model
 * them as SramArrays with deterministic synthetic contents and an
 * access process driven by the workload's code/page footprint.
 */

#ifndef XSER_MEM_TLB_HH
#define XSER_MEM_TLB_HH

#include <cstdint>
#include <string>

#include "mem/edac_reporter.hh"
#include "mem/sram_array.hh"
#include "sim/sim_clock.hh"

namespace xser::mem {

/**
 * A parity-protected array whose every entry can be re-fetched from an
 * authoritative lower level. Covers TLBs (refill via page walk) and L1I
 * (refill from L2). A touch() models hardware reading an entry: a parity
 * error invalidates and refetches, posting a corrected EDAC event; an
 * undetected (even-flip) corruption is repaired silently the next time
 * the entry is re-fetched and is counted by the underlying array.
 */
class RefetchableArray
{
  public:
    /**
     * @param name Array name for EDAC attribution.
     * @param words Capacity in 64-bit words.
     * @param level Cache level to attribute events to.
     * @param reporter EDAC sink (may not be null).
     * @param fill_seed Seed for the deterministic synthetic contents.
     */
    RefetchableArray(std::string name, size_t words, CacheLevel level,
                     EdacReporter *reporter, uint64_t fill_seed);

    /** The protected array (exposed for beam targeting). */
    SramArray &array() { return array_; }
    const SramArray &array() const { return array_; }

    /** Set the simulated-time source for EDAC and trace timestamps. */
    void
    setTimeSource(const Tick *now)
    {
        now_ = now;
        array_.setTimeSource(now);
    }

    /** Capacity in words. */
    size_t words() const { return array_.words(); }

    /**
     * Model hardware reading entry word `index`: check parity, repair by
     * refetch on error.
     *
     * @return true when a parity error was detected (and repaired).
     */
    bool touch(size_t index);

    /**
     * Model entry replacement (a TLB refill or I-line fill): the entry
     * is overwritten with fresh contents without being read, so a
     * latent flip is silently destroyed -- the dominant reason real
     * TLB/L1I upset-detection efficiency sits well below 100 %.
     */
    void replace(size_t index);

    /** Number of parity-repair events so far. */
    uint64_t repairs() const { return repairs_; }

    /** Re-initialize contents and statistics. */
    void reset();

    /** Serialize checkpointable state (array contents + repair count). */
    void
    snapshot(SnapshotWriter &writer) const
    {
        writer.u64(repairs_);
        array_.snapshot(writer);
    }

    /** Restore state captured by snapshot(). */
    void
    restore(SnapshotReader &reader)
    {
        repairs_ = reader.u64();
        array_.restore(reader);
    }

  private:
    /** Deterministic synthetic content of a word. */
    uint64_t fillValue(size_t index) const;

    SramArray array_;
    CacheLevel level_;
    EdacReporter *reporter_;
    uint64_t fillSeed_;
    uint64_t repairs_ = 0;
    const Tick *now_ = nullptr;
};

} // namespace xser::mem

#endif // XSER_MEM_TLB_HH
