/**
 * @file
 * EDAC-style error reporting, mirroring the Linux EDAC driver interface
 * the paper consumes (Section 4.2): the hardware protection machinery
 * posts corrected (CE) and uncorrected (UE) events attributed to a cache
 * level; the campaign tallies rates per level and per session.
 */

#ifndef XSER_MEM_EDAC_REPORTER_HH
#define XSER_MEM_EDAC_REPORTER_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/sim_clock.hh"
#include "trace/trace_sink.hh"

namespace xser::mem {

/** Cache levels distinguished in the paper's figures. */
enum class CacheLevel : uint8_t {
    Tlb = 0,
    L1 = 1,
    L2 = 2,
    L3 = 3,
};

constexpr size_t numCacheLevels = 4;

/** Name used in reports ("TLBs", "L1 Cache", ...). */
const char *cacheLevelName(CacheLevel level);

/** Kind of EDAC notification. */
enum class EdacKind : uint8_t {
    Corrected,    ///< CE: parity refetch or SECDED single-bit repair
    Uncorrected,  ///< UE: SECDED multi-bit detection
};

/** One EDAC log entry (a dmesg line, in effect). */
struct EdacEvent {
    Tick when;
    CacheLevel level;
    EdacKind kind;
    std::string source;  ///< originating array name
};

/** Per-level CE/UE tallies. */
struct EdacTally {
    uint64_t corrected = 0;
    uint64_t uncorrected = 0;
};

/**
 * Collects EDAC events for a run/session. Keeping the full event log is
 * optional (sessions only need tallies); tests and examples can enable it.
 */
class EdacReporter
{
  public:
    /** @param keep_log Retain individual events, not just tallies. */
    explicit EdacReporter(bool keep_log = false) : keepLog_(keep_log) {}

    /** Post one event from a protection mechanism. */
    void post(Tick when, CacheLevel level, EdacKind kind,
              const std::string &source);

    /** Tally for one level. */
    const EdacTally &tally(CacheLevel level) const
    {
        return tallies_[static_cast<size_t>(level)];
    }

    /** Total corrected events across levels. */
    uint64_t totalCorrected() const;

    /** Total uncorrected events across levels. */
    uint64_t totalUncorrected() const;

    /** Total events of both kinds, the paper's "memory upsets". */
    uint64_t totalUpsets() const
    {
        return totalCorrected() + totalUncorrected();
    }

    /** Retained log (empty unless keep_log was set). */
    const std::vector<EdacEvent> &log() const { return log_; }

    /** Clear tallies and log for a new run/session. */
    void clear();

    /** Attach the trace sink for the CE/UE cross-check (null detaches). */
    void setTraceSink(const trace::TraceSink *sink) { traceSink_ = sink; }

    /**
     * Cross-check against the lifecycle trace: per level, the CE + UE
     * tally must equal the trace's hardware-visible detection count
     * (ParityDetect + EccCorrect + EccMiscorrect + UeDetect). Trivially
     * true with no sink attached. Asserted at the end of every traced
     * session in debug builds.
     */
    bool consistentWithTrace() const;

  private:
    bool keepLog_;
    std::array<EdacTally, numCacheLevels> tallies_{};
    std::vector<EdacEvent> log_;
    const trace::TraceSink *traceSink_ = nullptr;
};

} // namespace xser::mem

#endif // XSER_MEM_EDAC_REPORTER_HH
