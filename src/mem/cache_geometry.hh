/**
 * @file
 * Cache geometry: size/associativity/line math and address slicing.
 */

#ifndef XSER_MEM_CACHE_GEOMETRY_HH
#define XSER_MEM_CACHE_GEOMETRY_HH

#include <cstdint>
#include <cstddef>

namespace xser::mem {

/** Physical address type. */
using Addr = uint64_t;

/**
 * Geometry of a set-associative cache with power-of-two sets and lines.
 */
class CacheGeometry
{
  public:
    /**
     * @param size_bytes Total data capacity.
     * @param line_bytes Line size (power of two, default 64).
     * @param associativity Ways per set.
     */
    CacheGeometry(size_t size_bytes, size_t line_bytes,
                  unsigned associativity);

    size_t sizeBytes() const { return sizeBytes_; }
    size_t lineBytes() const { return lineBytes_; }
    unsigned associativity() const { return associativity_; }
    size_t numSets() const { return numSets_; }
    size_t numLines() const { return numSets_ * associativity_; }

    /** 64-bit words per line. */
    size_t wordsPerLine() const { return lineBytes_ / 8; }

    /** Set index of an address. */
    size_t setIndex(Addr addr) const
    {
        return (addr >> lineShift_) & (numSets_ - 1);
    }

    /** Tag of an address. */
    Addr tag(Addr addr) const { return addr >> tagShift_; }

    /** Address of the first byte of the line containing addr. */
    Addr lineBase(Addr addr) const { return addr & ~(lineBytes_ - 1); }

    /** Word offset (0..wordsPerLine-1) of addr within its line. */
    size_t wordOffset(Addr addr) const
    {
        return (addr & (lineBytes_ - 1)) >> 3;
    }

    /** Reconstruct a line base address from tag and set. */
    Addr lineAddress(Addr tag, size_t set) const
    {
        return (tag << tagShift_) | (static_cast<Addr>(set) << lineShift_);
    }

  private:
    size_t sizeBytes_;
    size_t lineBytes_;
    unsigned associativity_;
    size_t numSets_;
    unsigned lineShift_;
    unsigned tagShift_;
};

} // namespace xser::mem

#endif // XSER_MEM_CACHE_GEOMETRY_HH
