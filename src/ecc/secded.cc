/**
 * @file
 * SECDED(72,64) implementation.
 *
 * Codeword layout: Hamming positions 1..71 hold the 64 data bits with
 * the seven Hamming check bits at power-of-two positions (1, 2, 4, 8,
 * 16, 32, 64). The eighth stored check bit is the overall parity over
 * the whole 72-bit codeword. Storage convention for the 8-bit check
 * field: bits 0..6 are Hamming check bits c0..c6, bit 7 is the overall
 * parity.
 *
 * The codec is on the simulator's hottest path (every cache fill and
 * writeback decodes/encodes eight words), so each check bit's coverage
 * is precomputed as a 64-bit data mask: check_i = parity(data & mask_i),
 * and a check bit at position 2^i only contributes to syndrome bit i.
 */

#include "ecc/secded.hh"

#include <array>
#include <bit>

#include "ecc/swar.hh"
#include "sim/logging.hh"

namespace xser::ecc {

namespace {

/** True when a 1-based Hamming position is a check-bit slot. */
constexpr bool
isCheckPosition(int position)
{
    return (position & (position - 1)) == 0; // power of two
}

/**
 * Precomputed tables: data-bit <-> Hamming position mapping and the
 * per-check-bit data coverage masks.
 */
struct Tables {
    std::array<int, 64> dataToPosition{};
    std::array<int, 72> positionToData{};  // -1 for check slots
    std::array<uint64_t, 7> coverMask{};   // data bits check i covers

    constexpr Tables()
    {
        for (auto &entry : positionToData)
            entry = -1;
        int data_bit = 0;
        for (int position = 1; position <= 71; ++position) {
            if (isCheckPosition(position))
                continue;
            dataToPosition[data_bit] = position;
            positionToData[position] = data_bit;
            for (int i = 0; i < 7; ++i) {
                if (position & (1 << i))
                    coverMask[i] |= 1ULL << data_bit;
            }
            ++data_bit;
        }
    }
};

constexpr Tables tables;

/**
 * Recompute the 7-bit Hamming syndrome over stored data + check: seven
 * word-parallel masked-parity reductions, one per coverage class,
 * instead of a walk over the 72 codeword bits.
 */
inline uint8_t
computeSyndrome(uint64_t data, uint8_t check)
{
    uint8_t syndrome = 0;
    for (int i = 0; i < 7; ++i) {
        const int bit = swar::parity64(data & tables.coverMask[i]) ^
                        ((check >> i) & 1);
        syndrome |= static_cast<uint8_t>(bit << i);
    }
    return syndrome;
}

/** Parity over the full 72-bit stored codeword. */
inline int
overallParity(uint64_t data, uint8_t check)
{
    return swar::parity72(data, check);
}

} // namespace

int
SecdedCodec::dataPosition(int data_bit)
{
    XSER_ASSERT(data_bit >= 0 && data_bit < 64, "data bit out of range");
    return tables.dataToPosition[data_bit];
}

uint8_t
SecdedCodec::encode(uint64_t data)
{
    uint8_t check = 0;
    for (int i = 0; i < 7; ++i) {
        check |= static_cast<uint8_t>(
            swar::parity64(data & tables.coverMask[i]) << i);
    }
    // Overall parity makes the popcount of the whole codeword even.
    check |= static_cast<uint8_t>(overallParity(data, check) << 7);
    return check;
}

SecdedResult
SecdedCodec::decode(uint64_t data, uint8_t check)
{
    SecdedResult result;
    result.data = data;
    result.check = check;
    result.correctedBit = -1;

    const uint8_t syndrome = computeSyndrome(data, check);
    const bool overall_odd = overallParity(data, check) != 0;
    result.syndrome = syndrome;

    if (syndrome == 0 && !overall_odd) {
        result.status = CheckStatus::Clean;
        return result;
    }

    if (!overall_odd) {
        // Non-zero syndrome with even overall parity: an even number of
        // flips (>= 2). Detected, not correctable.
        result.status = CheckStatus::DetectedDouble;
        return result;
    }

    if (syndrome == 0) {
        // Odd parity, zero syndrome: the overall parity bit itself
        // flipped. Correct it.
        result.check = static_cast<uint8_t>(check ^ 0x80u);
        result.status = CheckStatus::CorrectedSingle;
        result.correctedBit = 0; // codeword index of the parity bit
        return result;
    }

    if (syndrome > 71) {
        // Odd number of flips aliasing to an unused position: the
        // decoder knows something is wrong but cannot point at a bit.
        result.status = CheckStatus::DetectedDouble;
        return result;
    }

    // Odd parity with a valid syndrome: flip the indicated position.
    // For a genuine single-bit error this is an exact repair; for >= 3
    // flips it silently lands on the wrong bit (the caller can
    // ground-truth this against its shadow copy and reclassify as
    // Miscorrected).
    if (isCheckPosition(syndrome)) {
        const int check_index =
            std::countr_zero(static_cast<unsigned>(syndrome));
        result.check = static_cast<uint8_t>(check ^ (1u << check_index));
    } else {
        result.data = data ^ (1ULL << tables.positionToData[syndrome]);
    }
    result.status = CheckStatus::CorrectedSingle;
    result.correctedBit = syndrome;
    return result;
}

bool
SecdedCodec::codewordIndexToStorage(int codeword_bit, int &data_bit,
                                    int &check_bit)
{
    XSER_ASSERT(codeword_bit >= 0 && codeword_bit < codewordBits,
                "codeword index out of range");
    if (codeword_bit == 0) {
        check_bit = 7; // overall parity lives in check bit 7
        return false;
    }
    if (isCheckPosition(codeword_bit)) {
        check_bit = std::countr_zero(static_cast<unsigned>(codeword_bit));
        return false;
    }
    data_bit = tables.positionToData[codeword_bit];
    return true;
}

} // namespace xser::ecc
