/**
 * @file
 * Even-parity protection for detection-only SRAM arrays.
 *
 * X-Gene 2 protects its TLBs and L1 instruction/data caches with parity
 * (Table 1 of the paper). A parity word detects any odd number of bit
 * flips; an even number of flips escapes detection. Because the L1D is
 * write-through and the L1I/TLBs are clean by construction, a detected
 * parity error is repaired by invalidate-and-refetch, so single-bit upsets
 * in these arrays never corrupt software state (Section 3.1).
 */

#ifndef XSER_ECC_PARITY_HH
#define XSER_ECC_PARITY_HH

#include <cstdint>

#include "ecc/ecc_types.hh"

namespace xser::ecc {

/**
 * Parity codec over 64-bit words. Stateless; stores nothing itself.
 */
class ParityCodec
{
  public:
    /** Compute the even-parity bit over a data word. */
    static uint8_t encode(uint64_t data);

    /**
     * Check a stored word against its stored parity bit.
     *
     * @return Clean when parity matches, ParityError otherwise.
     */
    static CheckStatus check(uint64_t data, uint8_t parity_bit);

    /** Population-count parity of a 64-bit value (0 or 1). */
    static uint8_t parityOf(uint64_t value);
};

} // namespace xser::ecc

#endif // XSER_ECC_PARITY_HH
