/**
 * @file
 * ParityCodec implementation.
 */

#include "ecc/parity.hh"

#include "ecc/swar.hh"

namespace xser::ecc {

uint8_t
ParityCodec::parityOf(uint64_t value)
{
    return static_cast<uint8_t>(swar::parity64(value));
}

uint8_t
ParityCodec::encode(uint64_t data)
{
    return parityOf(data);
}

CheckStatus
ParityCodec::check(uint64_t data, uint8_t parity_bit)
{
    if (parityOf(data) == (parity_bit & 1))
        return CheckStatus::Clean;
    return CheckStatus::ParityError;
}

} // namespace xser::ecc
