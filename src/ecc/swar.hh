/**
 * @file
 * Word-parallel (SWAR) bit kernels shared by the protection codecs.
 *
 * The semantics are defined by the bit-serial reference loops below
 * (parity64Reference / parity72Reference) and, for the SECDED codec,
 * in tests/test_ecc.cc: parity64(v) is the XOR over the 64 individual
 * bits of v, and syndrome/encode reductions are XORs over per-bit
 * masked contributions. Here each reduction collapses to one hardware popcount
 * (or an XOR shift-fold where popcount would need the carry dropped),
 * which is what keeps the codecs off the campaign's critical path --
 * every cache fill, writeback, and patrol scan decodes eight words.
 * The differential ECC tests prove these kernels match the reference
 * loops over all single-bit flips and randomized multi-bit flips.
 */

#ifndef XSER_ECC_SWAR_HH
#define XSER_ECC_SWAR_HH

#include <bit>
#include <cstdint>

namespace xser::ecc::swar {

/** Parity (0/1) of a 64-bit value: XOR of its bits, word-parallel. */
inline int
parity64(uint64_t value)
{
    return std::popcount(value) & 1;
}

/**
 * Parity (0/1) over a stored 72-bit codeword (64 data + 8 check bits),
 * i.e. the extended-Hamming overall-parity reduction.
 */
inline int
parity72(uint64_t data, uint8_t check)
{
    return (std::popcount(data) + std::popcount(check)) & 1;
}

/**
 * Bit-serial reference for parity64: one explicit loop iteration per
 * bit, derived from the parity definition rather than from the
 * popcount identity. Kept beside the fast kernel so the pairing is
 * machine-checkable (xser-lint rule fastpath-parity); the differential
 * tests in tests/test_ecc.cc prove the two agree over every single-bit
 * flip and randomized multi-bit flips.
 */
inline int
parity64Reference(uint64_t value)
{
    int parity = 0;
    for (int bit = 0; bit < 64; ++bit)
        parity ^= static_cast<int>((value >> bit) & 1);
    return parity;
}

/** Bit-serial reference for parity72 (64 data + 8 check bits). */
inline int
parity72Reference(uint64_t data, uint8_t check)
{
    int parity = parity64Reference(data);
    for (int bit = 0; bit < 8; ++bit)
        parity ^= (check >> bit) & 1;
    return parity;
}

/**
 * XOR-fold parity of a 64-bit value without popcount: folds the word
 * onto itself until one bit remains. Same result as parity64; kept as
 * the portable fallback shape and exercised by the differential tests.
 */
inline int
parityFold64(uint64_t value)
{
    value ^= value >> 32;
    value ^= value >> 16;
    value ^= value >> 8;
    value ^= value >> 4;
    value ^= value >> 2;
    value ^= value >> 1;
    return static_cast<int>(value & 1);
}

} // namespace xser::ecc::swar

#endif // XSER_ECC_SWAR_HH
