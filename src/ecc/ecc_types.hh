/**
 * @file
 * Shared types for the error-protection codecs.
 */

#ifndef XSER_ECC_ECC_TYPES_HH
#define XSER_ECC_ECC_TYPES_HH

#include <cstdint>

namespace xser::ecc {

/** Outcome of checking a protected word. */
enum class CheckStatus : uint8_t {
    Clean,             ///< no error detected
    CorrectedSingle,   ///< single-bit error detected and corrected
    DetectedDouble,    ///< multi-bit error detected, not correctable
    Miscorrected,      ///< decoder "corrected" the wrong bit (>= 3 flips
                       ///< aliasing to a single-bit syndrome); the caller
                       ///< cannot observe this in hardware -- the flag
                       ///< exists so the simulator can ground-truth
                       ///< Section 6.2's silent-corruption path
    ParityError,       ///< parity mismatch (detection-only codes)
};

/** True when hardware would report the event as a corrected error. */
constexpr bool
reportsCorrected(CheckStatus status)
{
    // A miscorrection is indistinguishable from a genuine correction at
    // the EDAC interface: hardware reports "corrected" either way.
    return status == CheckStatus::CorrectedSingle ||
           status == CheckStatus::Miscorrected;
}

/** True when hardware would report the event as uncorrected. */
constexpr bool
reportsUncorrected(CheckStatus status)
{
    return status == CheckStatus::DetectedDouble;
}

} // namespace xser::ecc

#endif // XSER_ECC_ECC_TYPES_HH
