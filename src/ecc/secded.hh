/**
 * @file
 * Hamming SECDED(72,64) codec.
 *
 * X-Gene 2 protects its L2 and L3 caches with a single-error-correct,
 * double-error-detect code over 64-bit words (Table 1, [33]). We implement
 * the classic extended Hamming construction: seven Hamming check bits at
 * power-of-two codeword positions plus one overall parity bit.
 *
 * Decode behaviour, which the radiation study depends on:
 *  - 1 flipped bit  -> corrected (reported as a corrected error, CE);
 *  - 2 flipped bits -> detected but uncorrectable (UE);
 *  - 3+ flipped bits -> may alias to a valid single-bit syndrome and be
 *    "corrected" into a *wrong* word. Hardware reports a CE while the data
 *    is silently corrupted -- the mechanism behind the paper's rare
 *    "SDC with corrected-error notification" events (Section 6.2, case 1).
 */

#ifndef XSER_ECC_SECDED_HH
#define XSER_ECC_SECDED_HH

#include <cstdint>

#include "ecc/ecc_types.hh"

namespace xser::ecc {

/** Result of decoding a SECDED-protected word. */
struct SecdedResult {
    CheckStatus status;    ///< what the decoder concluded / reported
    uint64_t data;         ///< post-correction data returned to the bus
    uint8_t check;         ///< post-correction check bits
    uint8_t syndrome;      ///< raw 7-bit Hamming syndrome
    int correctedBit;      ///< codeword position corrected, -1 if none
};

/**
 * SECDED(72,64) codec over 64-bit words with 8 stored check bits.
 * Stateless: arrays store data and check bits; the codec inspects them.
 */
class SecdedCodec
{
  public:
    /** Number of check bits stored alongside each 64-bit word. */
    static constexpr int checkBits = 8;

    /** Codeword length in bits (data + check). */
    static constexpr int codewordBits = 72;

    /** Compute the 8 check bits (7 Hamming + overall parity) for data. */
    static uint8_t encode(uint64_t data);

    /**
     * Decode a stored word.
     *
     * @param data Stored (possibly corrupted) data bits.
     * @param check Stored (possibly corrupted) check bits.
     * @return Decode result with corrected data where applicable.
     */
    static SecdedResult decode(uint64_t data, uint8_t check);

    /**
     * Map a codeword bit index in [0, 72) to storage: returns true and
     * sets data_bit when the position holds a data bit, false and sets
     * check_bit when it holds a check bit. Used by the fault injector to
     * flip uniformly across the *stored* footprint, check bits included.
     */
    static bool codewordIndexToStorage(int codeword_bit, int &data_bit,
                                       int &check_bit);

  private:
    /** Hamming position (1-based, power-of-two slots are check bits) of
     *  the i-th data bit. */
    static int dataPosition(int data_bit);
};

} // namespace xser::ecc

#endif // XSER_ECC_SECDED_HH
