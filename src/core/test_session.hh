/**
 * @file
 * One beam test session (a row of Table 2): run the benchmark suite
 * round-robin under accelerated irradiation at a fixed operating point
 * until the stop criteria of Section 3.5 are met (enough error events
 * or enough fluence), classifying every run and tallying every event.
 */

#ifndef XSER_CORE_TEST_SESSION_HH
#define XSER_CORE_TEST_SESSION_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/calibration.hh"
#include "core/control_pc.hh"
#include "core/outcome.hh"
#include "cpu/xgene2_platform.hh"
#include "mem/scrubber.hh"
#include "rad/beam_source.hh"
#include "sim/snapshot.hh"
#include "trace/trace_sink.hh"
#include "volt/operating_point.hh"

namespace xser::core {

/** Session parameters. */
struct SessionConfig {
    volt::OperatingPoint point;          ///< voltage/frequency setting
    std::vector<std::string> workloadNames;  ///< empty = full suite

    /*
     * Stop criteria (Section 3.5): 100+ error events or 1e11+ n/cm^2,
     * whichever comes first. Defaults are scaled to keep a session in
     * the tens of seconds; the XSER_FULL environment variable in the
     * benches restores paper-scale targets.
     */
    uint64_t maxErrorEvents = 100;
    double maxFluence = 1.5e11;
    uint64_t maxRuns = 1000000;

    /** Target fluence per run (keeps events/run in the paper's regime). */
    double fluencePerRun = sessionCalibration().fluencePerRun;

    /**
     * Uncounted beam-on warm-up rounds (each round runs the full
     * suite once). Short simulated sessions start with an empty
     * latent-flip population, so their early detection rates sit
     * below steady state (the paper's 1000+-run sessions amortize
     * this; ours must warm into it). Counters reset after warm-up.
     */
    unsigned warmupRounds = 8;

    rad::BeamConfig beam;            ///< environment; timeScale is
                                     ///< retuned per workload
    mem::ScrubberConfig scrub;       ///< patrol scrub (see below)
    uint64_t quantumAccesses = 4096; ///< hook period in accesses
    uint64_t seed = 0x5e5510ULL;

    /**
     * Optional lifecycle trace sink (not owned; null = tracing off).
     * Attached to every SRAM array for the session and cleared together
     * with the other counters when the measured phase begins, so trace
     * counts line up with the session's EDAC tallies.
     */
    trace::TraceSink *traceSink = nullptr;

    SessionConfig();
};

/** Per-workload accounting within a session (Fig. 5's resolution). */
struct WorkloadSessionStats {
    std::string name;
    uint64_t runs = 0;
    double fluence = 0.0;
    Tick duration = 0;
    uint64_t upsetsDetected = 0;
    EventCounts events;

    /** Paper-equivalent beam minutes of this slice. */
    double equivalentMinutes(double beam_flux_per_second) const;

    /** Detected upsets per equivalent minute (Fig. 5's y-axis). */
    double upsetsPerMinute(double beam_flux_per_second) const;
};

/** Full session outcome (a Table 2 column). */
struct SessionResult {
    volt::OperatingPoint point;
    double beamFluxPerSecond = 0.0;  ///< unaccelerated beam flux
    uint64_t runs = 0;
    double fluence = 0.0;
    Tick duration = 0;
    EventCounts events;
    std::array<mem::EdacTally, mem::numCacheLevels> edac{};
    uint64_t upsetsDetected = 0;   ///< total CE+UE (Table 2 row 8)
    uint64_t rawUpsetEvents = 0;   ///< beam-injected events
    uint64_t totalSramBits = 0;
    double avgPowerWatts = 0.0;
    std::vector<WorkloadSessionStats> perWorkload;

    /** Table 2 row 4: minutes of beam time at the unaccelerated flux. */
    double equivalentMinutes() const;

    /** Table 2 row 5: years of natural NYC irradiation. */
    double nycYearsEquivalent() const;

    /** Table 2 row 7: SDC+crash events per equivalent minute. */
    double errorsPerMinute() const;

    /** Table 2 row 9: detected memory upsets per equivalent minute. */
    double upsetsPerMinute() const;

    /** Table 2 row 10: memory SER in FIT per Mbit. */
    double memorySerFitPerMbit() const;
};

/**
 * Executes one session against a platform.
 *
 * A session splits into two phases with a checkpointable seam between
 * them (DESIGN.md section 10):
 *
 *  - The *golden prefix* (runPrefix): apply the operating point, build
 *    the suite, record golden references beam-off, flush the hierarchy.
 *    The prefix never consumes the session seed -- its entire effect is
 *    a deterministic function of the platform + session configuration
 *    minus the seed -- so one prefix serves every replicate of the
 *    session.
 *
 *  - The *continuation* (runContinuation): construct the beam from the
 *    session seed, warm up, and measure. Everything seed-dependent
 *    lives here.
 *
 * snapshotPrefix/restorePrefix serialize the seam state (platform
 * clock, per-core RNG streams, the full memory hierarchy, scrub
 * engine, workload bindings, golden store), letting a campaign fork N
 * faulty continuations from one prefix instead of replaying it N
 * times. execute() == runPrefix() + runContinuation() and is
 * bit-identical to the historical single-pass implementation.
 */
class TestSession
{
  public:
    /**
     * @param platform The server under test (not owned; the session
     *        applies its operating point and drives it).
     * @param config Session parameters.
     */
    TestSession(cpu::XGene2Platform *platform,
                const SessionConfig &config);

    /** Run the whole session. */
    SessionResult execute();

    /**
     * Run the seed-independent golden prefix: operating point, suite
     * construction, golden references (beam off), hierarchy flush.
     * Fatal if the prefix already ran on this session object.
     */
    void runPrefix();

    /**
     * Serialize the prefix seam state. Requires runPrefix() (or
     * restorePrefix()) to have completed.
     */
    void snapshotPrefix(SnapshotWriter &writer) const;

    /**
     * Adopt a prefix captured by snapshotPrefix() on a session with an
     * identical configuration (the checkpoint envelope's config hash
     * guards this; see core/checkpoint.hh). Replaces runPrefix().
     */
    void restorePrefix(SnapshotReader &reader);

    /**
     * Run the seed-dependent continuation: beam construction, warm-up,
     * measured phase. Requires a prefix (run or restored). May be
     * called once per session object.
     */
    SessionResult runContinuation();

  private:
    cpu::XGene2Platform *platform_;
    SessionConfig config_;

    /* Prefix seam state (valid once prefixReady_). */
    std::vector<std::unique_ptr<workloads::Workload>> suite_;
    std::vector<double> runSeconds_;
    double activitySum_ = 0.0;
    ControlPc control_;
    std::unique_ptr<mem::Scrubber> scrubber_;
    bool prefixReady_ = false;
};

} // namespace xser::core

#endif // XSER_CORE_TEST_SESSION_HH
