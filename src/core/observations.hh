/**
 * @file
 * Automated verdicts for the paper's numbered observations.
 *
 * The paper distills its measurements into nine Observations and four
 * Design Implications. Given a campaign result, this checker evaluates
 * each observation's quantitative claim against the measured data and
 * returns a verdict with the numbers behind it -- the reproduction's
 * scorecard, regenerable in one call.
 */

#ifndef XSER_CORE_OBSERVATIONS_HH
#define XSER_CORE_OBSERVATIONS_HH

#include <string>
#include <vector>

#include "core/beam_campaign.hh"

namespace xser::core {

/** Verdict for one observation. */
struct ObservationVerdict {
    int number = 0;            ///< paper's numbering (1..9)
    std::string claim;         ///< the paper's statement (abridged)
    std::string measurement;   ///< the numbers this campaign produced
    bool holds = false;        ///< does the measured shape match?
};

/**
 * Evaluates the observations against a four-session paper campaign
 * (980/930/920 mV @ 2.4 GHz + 790 mV @ 900 MHz, in that order).
 * Observations needing data the campaign lacks (e.g. #3's
 * per-frequency stability) are judged from the sessions available.
 */
class ObservationChecker
{
  public:
    /**
     * @param campaign Result with the four Table 2 sessions in order
     *        (fatal otherwise -- harness misuse).
     */
    explicit ObservationChecker(const CampaignResult &campaign);

    /** All verdicts, in the paper's order. */
    std::vector<ObservationVerdict> evaluate() const;

    /** Number of observations that hold. */
    static size_t countHolding(
        const std::vector<ObservationVerdict> &verdicts);

    /** Render a scorecard table. */
    static std::string format(
        const std::vector<ObservationVerdict> &verdicts);

  private:
    const SessionResult &nominal() const { return sessions_[0]; }
    const SessionResult &safe() const { return sessions_[1]; }
    const SessionResult &vmin() const { return sessions_[2]; }
    const SessionResult &low900() const { return sessions_[3]; }

    std::vector<SessionResult> sessions_;
};

} // namespace xser::core

#endif // XSER_CORE_OBSERVATIONS_HH
