/**
 * @file
 * Central calibration of the reproduction, with per-constant provenance.
 *
 * Everything here was fitted against the paper's own published numbers
 * (which are internally consistent: FIT = events / fluence * 13 * 1e9
 * reproduces Fig. 11 exactly from Table 2 and Fig. 8's percentages).
 * The campaign then *measures* these generative rates back with Poisson
 * noise, exactly as the beam study measured the silicon's underlying
 * rates.
 *
 * Key derived event counts per session (from Table 2 + Fig. 8 + Figs.
 * 12/13):
 *
 *   session       | fluence  | SDC | App | Sys | SDC-with-CE (of SDC)
 *   980mV 2.4GHz  | 1.49e11  |  29 |  17 |  49 |  8   (0.70 FIT)
 *   930mV 2.4GHz  | 1.46e11  |  54 |   7 |  36 | 11   (0.98 FIT)
 *   920mV 2.4GHz  | 4.08e10  | 130 |   3 |   8 |  7   (2.23 FIT)
 *   790mV 900MHz  | 1.48e10  |   6 |   2 |   5 |  1   (0.88 FIT)
 */

#ifndef XSER_CORE_CALIBRATION_HH
#define XSER_CORE_CALIBRATION_HH

namespace xser::core {

/**
 * Core-logic susceptibility constants (the statistical layer for
 * unprotected flip-flops/datapath, see logic_susceptibility.hh).
 * All cross sections are cm^2 for the whole chip.
 */
struct LogicCalibration {
    /*
     * Silent-SDC channel. Fitted to Fig. 11's SDC FIT series
     * (2.54 -> 4.82 -> 41.43) minus the notified component (Fig. 12):
     * DCS(V) = base + cliff * exp(-slack / tau), slack = V - Vcliff(f).
     * Three-point fit gives tau = 3.55 mV -- the steep coupling between
     * radiation-induced transients and vanishing timing slack that the
     * paper's Design Implication #4 attributes to unprotected paths.
     */
    double sdcBaseDcs = 1.40e-10;
    double sdcCliffDcsLogic = 8.0e-8;   ///< 2.4 GHz (logic-timing cliff)
    double sdcCliffDcsSram = 8.0e-10;   ///< 900 MHz (SRAM-floor cliff):
                                        ///< the long cycle absorbs
                                        ///< transients, Obs. #6
    double sdcTauVolts = 0.00355;

    /*
     * SDC-with-corrected-notification channel (Fig. 12/13): output
     * mismatch coinciding with a CE report -- SECDED miscorrections and
     * CE-coincident logic upsets (Section 6.2). Two-point fit below the
     * cliff gives a gentler tau.
     */
    double notifBaseDcs = 5.4e-11;
    double notifCliffDcsLogic = 8.9e-10;
    double notifCliffDcsSram = 3.6e-11;
    double notifTauVolts = 0.00587;

    /*
     * Crash channels. Fig. 11 shows both crash categories *declining*
     * with undervolting at 2.4 GHz (AppCrash 1.49 -> 0.62 -> 0.96 FIT,
     * SysCrash 4.29 -> 3.21 -> 2.55 FIT); the paper flags the low
     * counts behind these points as statistically weak (Section 6.1),
     * so we model the observed trend directly: an exponential decline
     * in delta-V at the timing-limited frequency, and the measured flat
     * level at 900 MHz where the relaxed cycle decouples crash-prone
     * control state from the supply (Fig. 13 session: 2 App + 5 Sys in
     * 1.48e10 n/cm^2).
     */
    double appCrashNominalDcs = 1.14e-10;  ///< 17 / 1.49e11
    double appCrashDeclinePerVolt = 9.0;
    double appCrashSramDcs = 1.35e-10;     ///< 2 / 1.48e10
    double sysCrashNominalDcs = 3.29e-10;  ///< 49 / 1.49e11
    double sysCrashDeclinePerVolt = 7.0;
    double sysCrashSramDcs = 3.38e-10;     ///< 5 / 1.48e10
};

/**
 * Beam/session constants shared by the paper-reproduction benches.
 */
struct SessionCalibration {
    /*
     * Per-run fluence target (n/cm^2). Chosen so the expected error
     * events per run stay well below 1 at every voltage (the paper's
     * own anti-accumulation constraint, Section 3.3) while sessions
     * finish in a tractable number of simulated runs.
     */
    double fluencePerRun = 2.4e8;

    /*
     * SRAM sigma0 values (cm^2/bit at nominal voltage) per level,
     * tuned so *detected* upset rates match Fig. 6 (detected rate =
     * raw rate x detection efficiency; only the product is observable,
     * in the paper as much as here). Voltage sensitivities live in
     * rad::CrossSectionModel.
     */
    double sigma0Tlb = 1.0e-15;
    double sigma0L1 = 1.0e-15;
    double sigma0L2 = 1.0e-15;
    double sigma0L3 = 1.72e-15;
};

/** Global calibrated constants. */
const LogicCalibration &logicCalibration();
const SessionCalibration &sessionCalibration();

} // namespace xser::core

#endif // XSER_CORE_CALIBRATION_HH
