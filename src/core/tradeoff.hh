/**
 * @file
 * Energy-vs-reliability trade-off analysis.
 *
 * The paper's introduction poses the open question directly: "it is
 * unclear whether energy savings from reduced voltage margins outweigh
 * the overhead of error recovery mechanisms." This analyzer answers it
 * quantitatively for a checkpoint/restart deployment:
 *
 *  - crash rate lambda(V, f) comes from the calibrated logic model's
 *    AppCrash+SysCrash cross sections at the deployment flux;
 *  - the optimal checkpoint interval follows Young's first-order
 *    formula tau* = sqrt(2 * delta * MTBF), with waste fraction
 *    delta/tau + tau/(2*MTBF) + delta-restart amortization;
 *  - SDCs cannot be checkpointed away (they are silent); they are
 *    reported as expected incidents per year -- the quantity a cloud
 *    operator must price (cf. [25],[34] in the paper);
 *  - energy folds in the calibrated power model.
 *
 * The headline output is "energy saved per year vs SDC incidents per
 * year" across the voltage ladder -- Design Implication #2 as a
 * deployable policy curve.
 */

#ifndef XSER_CORE_TRADEOFF_HH
#define XSER_CORE_TRADEOFF_HH

#include <vector>

#include "core/logic_susceptibility.hh"
#include "rad/flux_environment.hh"
#include "volt/operating_point.hh"
#include "volt/power_model.hh"

namespace xser::core {

/** Deployment parameters. */
struct TradeoffConfig {
    double devices = 1.0;              ///< fleet size (jobs span it)
    double checkpointSeconds = 30.0;   ///< cost of taking a checkpoint
    rad::FluxEnvironment environment = rad::nycSeaLevel();
    double utilization = 1.0;          ///< fraction of time running
};

/** Evaluation of one operating point. */
struct TradeoffPoint {
    volt::OperatingPoint point;
    double powerWatts = 0.0;            ///< per device
    double crashFit = 0.0;              ///< App+Sys, per device, at the
                                        ///< deployment flux
    double fleetCrashMtbfHours = 0.0;   ///< fleet-level MTBF
    double optimalCheckpointHours = 0.0;
    double wasteFraction = 0.0;         ///< checkpoint + rework waste
    double usefulWorkPerJoule = 0.0;    ///< (1 - waste) / power
    double sdcIncidentsPerYear = 0.0;   ///< fleet-level silent errors
    double energyPerYearMwh = 0.0;      ///< fleet energy
};

/**
 * Evaluates operating points against a deployment.
 */
class EnergyReliabilityAnalyzer
{
  public:
    /**
     * @param power Calibrated power model (not owned).
     * @param logic Calibrated logic susceptibility model (not owned).
     * @param config Deployment parameters.
     */
    EnergyReliabilityAnalyzer(const volt::PowerModel *power,
                              const LogicSusceptibilityModel *logic,
                              const TradeoffConfig &config = {});

    const TradeoffConfig &config() const { return config_; }

    /** Evaluate one operating point. */
    TradeoffPoint evaluate(const volt::OperatingPoint &point) const;

    /**
     * Evaluate a PMD-voltage ladder at 2.4 GHz from nominal down to
     * `stop_millivolts` in 10 mV steps (SoC tracking as in Table 3).
     */
    std::vector<TradeoffPoint> ladder(double stop_millivolts = 920.0)
        const;

    /**
     * The point of the ladder with the best useful-work-per-joule,
     * subject to an SDC budget (incidents/year across the fleet).
     */
    TradeoffPoint bestUnderSdcBudget(double max_sdc_per_year) const;

  private:
    const volt::PowerModel *power_;
    const LogicSusceptibilityModel *logic_;
    TradeoffConfig config_;
};

} // namespace xser::core

#endif // XSER_CORE_TRADEOFF_HH
