/**
 * @file
 * ShardExecutor implementation (moved from ParallelCampaignRunner so
 * the distributed service can run shards through the same code path).
 */

#include "core/shard_executor.hh"

#include "core/checkpoint.hh"
#include "core/parallel_campaign.hh"
#include "core/test_session.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/snapshot.hh"
#include "telemetry/metrics.hh"

namespace xser::core {

ShardExecutor::ShardExecutor(const CampaignConfig &config,
                             uint64_t base_seed, bool checkpoint)
    : config_(config), baseSeed_(base_seed),
      configHash_(campaignConfigHash(config)), checkpoint_(checkpoint)
{
    if (config_.sessions.empty())
        fatal("shard executor needs at least one session");
}

std::vector<uint8_t>
ShardExecutor::sealPrefix(size_t session_index) const
{
    cpu::XGene2Platform platform(config_.platform);
    TestSession prefix(&platform, config_.sessions[session_index]);
    {
        const telemetry::ScopedPhase timer(telemetry::Phase::Prefix);
        prefix.runPrefix();
    }
    const telemetry::ScopedPhase timer(
        telemetry::Phase::SnapshotEncode);
    SnapshotWriter writer;
    prefix.snapshotPrefix(writer);
    std::vector<uint8_t> envelope = sealCheckpoint(
        static_cast<uint32_t>(session_index), configHash_,
        writer.take());
    telemetry::count(telemetry::Counter::SessionsPrefixed);
    telemetry::distAdd(telemetry::Dist::CheckpointKilobytes,
                       static_cast<double>(envelope.size()) / 1024.0);
    return envelope;
}

void
ShardExecutor::stampBufferInfo(trace::TraceBuffer &buffer,
                               size_t session_index,
                               unsigned replicate_index) const
{
    const SessionConfig &session = config_.sessions[session_index];
    buffer.info.session = static_cast<uint32_t>(session_index);
    buffer.info.replicate = replicate_index;
    buffer.info.pmdMillivolts = session.point.pmdMillivolts;
    buffer.info.socMillivolts = session.point.socMillivolts;
    buffer.info.frequencyHz = session.point.frequencyHz;
    buffer.info.workloads = session.workloadNames;
}

SessionResult
ShardExecutor::runUnit(size_t session_index, unsigned replicate_index,
                       trace::TraceBuffer *buffer,
                       const std::vector<uint8_t> *checkpoint) const
{
    SessionConfig session_config = config_.sessions[session_index];
    // Replicate 0 keeps the configured seed (sequential-compatible);
    // later replicates draw their own coordinate-derived stream.
    if (replicate_index > 0)
        session_config.seed = deriveStreamSeed(
            baseSeed_, static_cast<uint64_t>(session_index),
            replicate_index);
    session_config.traceSink = buffer;
    cpu::XGene2Platform platform(config_.platform);
    TestSession session(&platform, session_config);
    if (checkpoint == nullptr) {
        const telemetry::ScopedPhase timer(
            telemetry::Phase::Continuation);
        return session.execute();
    }

    // Fork path: adopt the session's prefix and run the (seed-
    // dependent) continuation only. The envelope re-validates even
    // though the executor may have sealed it moments ago -- the
    // checksum is cheap next to a session, and a checkpoint that
    // crossed a process or host boundary is external input.
    {
        const telemetry::ScopedPhase timer(
            telemetry::Phase::SnapshotRestore);
        const CheckpointView view = openCheckpoint(*checkpoint);
        if (!view.ok)
            fatal(msg("refusing checkpoint for session ",
                      session_index, ": ", view.error));
        XSER_ASSERT(view.sessionIndex == session_index,
                    "checkpoint/session index mismatch");
        XSER_ASSERT(view.configHash == configHash_,
                    "checkpoint/campaign config hash mismatch");
        SnapshotReader reader(view.payload, view.payloadSize);
        session.restorePrefix(reader);
        XSER_ASSERT(reader.atEnd(),
                    "checkpoint payload not fully consumed by restore");
    }
    const telemetry::ScopedPhase timer(telemetry::Phase::Continuation);
    return session.runContinuation();
}

SessionResult
ShardExecutor::runUnitRecorded(
    size_t session_index, unsigned replicate_index,
    trace::TraceBuffer *buffer,
    const std::vector<uint8_t> *checkpoint) const
{
    telemetry::MetricShard *shard = telemetry::activeShard();
    const uint64_t begin_nanos =
        shard != nullptr ? telemetry::monotonicNanos() : 0;
    SessionResult result =
        runUnit(session_index, replicate_index, buffer, checkpoint);
    if (shard != nullptr) {
        ++shard->unitsExecuted;
        telemetry::distAdd(
            telemetry::Dist::UnitSeconds,
            static_cast<double>(telemetry::monotonicNanos() -
                                begin_nanos) *
                1e-9);
        telemetry::count(telemetry::Counter::UnitsCompleted);
        telemetry::distAdd(telemetry::Dist::RunsPerUnit,
                           static_cast<double>(result.runs));
        telemetry::distAdd(telemetry::Dist::ErrorEventsPerUnit,
                           static_cast<double>(result.events.total()));
    }
    return result;
}

} // namespace xser::core
