/**
 * @file
 * Multithreaded campaign execution with deterministic replay.
 *
 * A campaign's sessions are mutually independent (each runs on a
 * freshly constructed platform), and so are whole-campaign replicates
 * run for confidence-interval tightening. ParallelCampaignRunner
 * shards those (session, replicate) work units across a fixed-size
 * worker pool and merges the per-unit results in canonical index
 * order, so the output is bit-identical for any worker count --
 * including one -- and for any scheduling of the workers.
 *
 * Determinism contract:
 *  - replicate 0 runs every session with the seed already present in
 *    its SessionConfig, so results match the sequential
 *    BeamCampaign::execute() bit for bit;
 *  - replicate r >= 1 reseeds session s with
 *    deriveStreamSeed(seed, s, r) (see sim/rng.hh), a pure function of
 *    the coordinate -- never of thread identity or completion order;
 *  - merging (event pooling and the Chan-merge Summary accumulators)
 *    always walks replicates then sessions in index order after all
 *    units have finished.
 */

#ifndef XSER_CORE_PARALLEL_CAMPAIGN_HH
#define XSER_CORE_PARALLEL_CAMPAIGN_HH

#include <cstdint>
#include <vector>

#include "core/beam_campaign.hh"
#include "core/dcs_calculator.hh"
#include "core/fit_calculator.hh"
#include "stats/summary.hh"
#include "trace/trace_buffer.hh"

namespace xser::trace {
class TraceWriter;
} // namespace xser::trace

namespace xser::telemetry {
class MetricRegistry;
class ProgressMeter;
} // namespace xser::telemetry

namespace xser::core {

/** Parallel execution parameters. */
struct ParallelRunConfig {
    /** Worker threads; 1 executes inline on the calling thread. */
    unsigned jobs = 1;
    /** Whole-campaign replicates (>= 1). */
    unsigned replicates = 1;
    /** Base seed for replicate stream derivation (replicates >= 1). */
    uint64_t seed = 0x5e5510ULL;
    /** Per-unit trace buffer capacity (events) when tracing. */
    uint64_t traceBufferEvents = trace::TraceBuffer::defaultMaxEvents;
    /**
     * Buffer lifecycle events even without a TraceWriter (benchmarks
     * use this to measure buffering cost separately from file I/O).
     */
    bool collectTrace = false;
    /**
     * Checkpoint/fork importance splitting (DESIGN.md section 10): take
     * one prefix snapshot per session and fork every replicate's
     * continuation from it, instead of replaying the golden prefix per
     * (session, replicate) unit. Results -- aggregates and trace bytes
     * -- are bit-identical either way (gated by tests); `false` exists
     * for verification and for measuring the speedup. Excluded from
     * campaignConfigHash for exactly that reason.
     */
    bool checkpoint = true;
    /**
     * Optional metrics sink with at least min(jobs, units) shards;
     * each worker records into its own shard and the registry merges
     * them canonically (DESIGN.md section 11). Telemetry observes
     * only: results and trace bytes are bit-identical whether this is
     * null or not, for any --jobs -- gated by test_telemetry.
     */
    telemetry::MetricRegistry *metrics = nullptr;
    /** Optional live progress meter, ticked once per finished task. */
    telemetry::ProgressMeter *progress = nullptr;
};

/**
 * Stable hash of everything that shapes a campaign's behaviour,
 * embedded in trace headers so an analysis tool can refuse to diff
 * traces from different experiments. Not a cryptographic digest --
 * FNV-1a over the configuration fields in declaration order.
 */
uint64_t campaignConfigHash(const CampaignConfig &config);

/**
 * Mergeable per-session aggregate over replicates: pooled counts for
 * exact Poisson estimates plus Chan-merged spread statistics of the
 * per-replicate point estimates.
 */
struct SessionAggregate {
    volt::OperatingPoint point;
    uint64_t replicates = 0;
    uint64_t runs = 0;
    double fluence = 0.0;
    EventCounts events;
    uint64_t upsetsDetected = 0;
    uint64_t rawUpsetEvents = 0;

    /* Per-replicate point-estimate distributions. */
    Summary fitTotal;
    Summary fitSdc;
    Summary upsetsPerMinute;

    /** Fold one replicate's session result in. */
    void add(const SessionResult &session);

    /** Chan-merge another aggregate of the same session. */
    void merge(const SessionAggregate &other);

    /** Eq. 1 estimates over the pooled counts. */
    DcsBreakdown pooledDcs(double confidence = 0.95) const;

    /** Eq. 2 estimates over the pooled counts. */
    FitBreakdown pooledFit(double confidence = 0.95) const;
};

/** Outcome of a replicated campaign run. */
struct ReplicatedCampaignResult {
    /** Full per-replicate results, indexed [replicate]. */
    std::vector<CampaignResult> replicates;
    /** Merged per-session aggregates, indexed like the config. */
    std::vector<SessionAggregate> sessions;
};

/**
 * Executes a campaign's (session, replicate) units on a worker pool.
 *
 * Unit execution itself lives in core::ShardExecutor (the library
 * seam the distributed campaign service also drives); this class adds
 * the thread pool, the pre-allocated trace-buffer slots, and the
 * canonical post-drain merges.
 */
class ParallelCampaignRunner
{
  public:
    ParallelCampaignRunner(const CampaignConfig &config,
                           const ParallelRunConfig &run);

    /**
     * Execute replicate 0 only (the BeamCampaign-equivalent run).
     *
     * @param trace_writer Optional open writer; when set, each unit
     *        records into its own bounded buffer and the merged trace
     *        is written in canonical unit order after the pool drains,
     *        so the file is bit-identical for any worker count.
     */
    CampaignResult execute(trace::TraceWriter *trace_writer = nullptr);

    /** Execute all replicates and merge. See execute() for tracing. */
    ReplicatedCampaignResult
    executeAll(trace::TraceWriter *trace_writer = nullptr);

  private:
    /** Execute `count` replicates and return them in index order. */
    std::vector<CampaignResult>
    run(unsigned count, trace::TraceWriter *trace_writer) const;

    CampaignConfig config_;
    ParallelRunConfig run_;
};

} // namespace xser::core

#endif // XSER_CORE_PARALLEL_CAMPAIGN_HH
