/**
 * @file
 * ControlPc implementation.
 */

#include "core/control_pc.hh"

#include "sim/logging.hh"

namespace xser::core {

void
ControlPc::setGolden(const std::string &workload,
                     const workloads::WorkloadOutput &output)
{
    if (output.termination != workloads::Termination::Completed)
        panic(msg("golden run of ", workload, " trapped"));
    if (!output.verified)
        panic(msg("golden run of ", workload, " failed verification"));
    golden_[workload] = output.signature;
}

bool
ControlPc::hasGolden(const std::string &workload) const
{
    return golden_.count(workload) > 0;
}

const std::vector<uint64_t> &
ControlPc::golden(const std::string &workload) const
{
    auto found = golden_.find(workload);
    if (found == golden_.end())
        panic(msg("no golden reference recorded for ", workload));
    return found->second;
}

RunRecord
ControlPc::classify(const std::string &workload,
                    const workloads::WorkloadOutput &output,
                    const LogicEvents &logic_events, bool ce_logged,
                    double fluence, Tick duration, uint64_t upsets) const
{
    RunRecord record;
    record.workload = workload;
    record.withCeNotification = ce_logged;
    record.fluence = fluence;
    record.duration = duration;
    record.upsetsDetected = upsets;

    record.trappedOrganically =
        output.termination == workloads::Termination::Trapped;
    record.signatureMismatch =
        output.termination == workloads::Termination::Completed &&
        output.signature != golden(workload);

    // Precedence mirrors what the Control-PC would see first: an
    // unresponsive machine masks everything; a crashed application
    // masks its output; only a completed run can be compared.
    if (logic_events.sysCrash > 0)
        record.outcome = RunOutcome::SysCrash;
    else if (logic_events.appCrash > 0 || record.trappedOrganically)
        record.outcome = RunOutcome::AppCrash;
    else if (logic_events.sdcSilent > 0 || logic_events.sdcNotified > 0 ||
             record.signatureMismatch)
        record.outcome = RunOutcome::Sdc;
    else
        record.outcome = RunOutcome::Success;
    return record;
}

EventCounts
ControlPc::eventsOf(const RunRecord &record,
                    const LogicEvents &logic_events) const
{
    EventCounts counts;
    counts.sdcSilent = logic_events.sdcSilent;
    counts.sdcNotified = logic_events.sdcNotified;
    counts.appCrash =
        logic_events.appCrash + (record.trappedOrganically ? 1 : 0);
    counts.sysCrash = logic_events.sysCrash;
    if (record.signatureMismatch) {
        // Organic golden-compare miss: notified when hardware reported
        // a correction during the run (Section 6.2's rare class).
        if (record.withCeNotification)
            ++counts.sdcNotified;
        else
            ++counts.sdcSilent;
    }
    return counts;
}

} // namespace xser::core
