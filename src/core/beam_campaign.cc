/**
 * @file
 * BeamCampaign implementation.
 */

#include "core/beam_campaign.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace xser::core {

BeamCampaign::BeamCampaign(const CampaignConfig &config) : config_(config)
{
    if (config_.sessions.empty())
        fatal("campaign needs at least one session");
}

void
setFastPath(CampaignConfig &config, bool enabled)
{
    config.platform.memory.fastPath = enabled;
    for (auto &session : config.sessions)
        session.beam.skipAhead = enabled;
}

CampaignResult
BeamCampaign::execute()
{
    CampaignResult result;
    for (const auto &session_config : config_.sessions) {
        // Fresh silicon state per session, same physical chip
        // (identical platform config/seed -> same process variation).
        cpu::XGene2Platform platform(config_.platform);
        TestSession session(&platform, session_config);
        result.sessions.push_back(session.execute());
    }
    return result;
}

namespace {

SessionConfig
paperSession(const volt::OperatingPoint &point, double max_fluence,
             uint64_t max_events, uint64_t seed, uint64_t index)
{
    SessionConfig config;
    config.point = point;
    config.maxFluence = max_fluence;
    config.maxErrorEvents = max_events;
    config.seed = seed ^ (0x9e3779b97f4a7c15ULL * (index + 1));
    return config;
}

} // namespace

CampaignConfig
BeamCampaign::paperCampaign(double scale, uint64_t seed)
{
    XSER_ASSERT(scale > 0.0, "campaign scale must be positive");
    const auto events = [scale](uint64_t base) {
        return std::max<uint64_t>(
            8, static_cast<uint64_t>(static_cast<double>(base) * scale));
    };
    CampaignConfig config;
    // Sessions 1-3: the Section 3.5 rules (events or 1.5e11 fluence).
    // Session 4 was cut short by beam-time expiry at 1.48e10 n/cm^2.
    config.sessions.push_back(paperSession(
        volt::nominalPoint(), 1.49e11 * scale, events(100), seed, 0));
    config.sessions.push_back(paperSession(
        volt::safePoint(), 1.46e11 * scale, events(100), seed, 1));
    config.sessions.push_back(paperSession(
        volt::vminPoint(), 1.5e11 * scale, events(141), seed, 2));
    config.sessions.push_back(paperSession(
        volt::vmin900Point(), 1.48e10 * scale, events(100), seed, 3));
    return config;
}

CampaignConfig
BeamCampaign::campaign24GHz(double scale, uint64_t seed)
{
    CampaignConfig config = paperCampaign(scale, seed);
    config.sessions.pop_back();
    return config;
}

} // namespace xser::core
