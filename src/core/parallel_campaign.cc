/**
 * @file
 * ParallelCampaignRunner implementation.
 */

#include "core/parallel_campaign.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <memory>
#include <thread>

#include "core/shard_executor.hh"
#include "core/test_session.hh"
#include "sim/logging.hh"
#include "telemetry/metrics.hh"
#include "telemetry/progress.hh"
#include "trace/trace_writer.hh"

namespace xser::core {

uint64_t
campaignConfigHash(const CampaignConfig &config)
{
    uint64_t hash = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
    auto mix = [&hash](uint64_t value) {
        for (unsigned i = 0; i < 8; ++i) {
            hash ^= (value >> (8 * i)) & 0xffULL;
            hash *= 0x100000001b3ULL;  // FNV-1a prime
        }
    };
    auto mix_double = [&mix](double value) {
        mix(std::bit_cast<uint64_t>(value));
    };
    auto mix_string = [&hash, &mix](const std::string &text) {
        mix(text.size());
        for (const char c : text) {
            hash ^= static_cast<unsigned char>(c);
            hash *= 0x100000001b3ULL;
        }
    };

    const mem::MemorySystemConfig &memory = config.platform.memory;
    mix(memory.numCores);
    mix(memory.lineBytes);
    mix(memory.l1iBytes);
    mix(memory.l1dBytes);
    mix(memory.l1dAssociativity);
    mix(memory.l2Bytes);
    mix(memory.l2Associativity);
    mix(memory.l3Bytes);
    mix(memory.l3Associativity);
    mix(memory.tlbWordsPerCore);
    mix(static_cast<uint64_t>(memory.l1Protection));
    mix(static_cast<uint64_t>(memory.l2Protection));
    mix(static_cast<uint64_t>(memory.l3Protection));
    mix(memory.contentSeed);
    mix(config.platform.chipSeed);

    mix(config.sessions.size());
    for (const SessionConfig &session : config.sessions) {
        mix_double(session.point.pmdMillivolts);
        mix_double(session.point.socMillivolts);
        mix_double(session.point.frequencyHz);
        mix(session.maxErrorEvents);
        mix_double(session.maxFluence);
        mix_double(session.fluencePerRun);
        mix(session.warmupRounds);
        mix(session.seed);
        mix(session.quantumAccesses);
        mix(session.workloadNames.size());
        for (const std::string &name : session.workloadNames)
            mix_string(name);
    }
    return hash;
}

void
SessionAggregate::add(const SessionResult &session)
{
    if (replicates == 0)
        point = session.point;
    ++replicates;
    runs += session.runs;
    fluence += session.fluence;
    events.merge(session.events);
    upsetsDetected += session.upsetsDetected;
    rawUpsetEvents += session.rawUpsetEvents;
    const FitBreakdown fit = FitCalculator::breakdown(session);
    fitTotal.add(fit.total.fit);
    fitSdc.add(fit.sdc.fit);
    upsetsPerMinute.add(session.upsetsPerMinute());
}

void
SessionAggregate::merge(const SessionAggregate &other)
{
    if (other.replicates == 0)
        return;
    if (replicates == 0)
        point = other.point;
    replicates += other.replicates;
    runs += other.runs;
    fluence += other.fluence;
    events.merge(other.events);
    upsetsDetected += other.upsetsDetected;
    rawUpsetEvents += other.rawUpsetEvents;
    fitTotal.merge(other.fitTotal);
    fitSdc.merge(other.fitSdc);
    upsetsPerMinute.merge(other.upsetsPerMinute);
}

DcsBreakdown
SessionAggregate::pooledDcs(double confidence) const
{
    return DcsCalculator::fromCounts(events, upsetsDetected, fluence,
                                     confidence);
}

FitBreakdown
SessionAggregate::pooledFit(double confidence) const
{
    return FitCalculator::fromCounts(events, fluence, confidence);
}

ParallelCampaignRunner::ParallelCampaignRunner(
    const CampaignConfig &config, const ParallelRunConfig &run)
    : config_(config), run_(run)
{
    if (config_.sessions.empty())
        fatal("parallel campaign needs at least one session");
    if (run_.replicates == 0)
        fatal("parallel campaign needs at least one replicate");
    if (run_.jobs == 0)
        run_.jobs = 1;
    if (run_.metrics != nullptr &&
        run_.metrics->shardCount() < run_.jobs)
        fatal(msg("metric registry has ", run_.metrics->shardCount(),
                  " shards but the pool may run ", run_.jobs,
                  " workers; size the registry to --jobs"));
}

std::vector<CampaignResult>
ParallelCampaignRunner::run(unsigned count,
                            trace::TraceWriter *trace_writer) const
{
    const size_t num_sessions = config_.sessions.size();
    const size_t units = num_sessions * count;
    const ShardExecutor executor(config_, run_.seed, run_.checkpoint);

    // When tracing, every unit records into its own pre-allocated
    // buffer slot -- workers never share a sink, so no synchronization
    // and no scheduling-dependent interleaving.
    const bool tracing = trace_writer != nullptr || run_.collectTrace;
    std::vector<std::unique_ptr<trace::TraceBuffer>> buffers;
    if (tracing) {
        buffers.reserve(units);
        for (size_t unit = 0; unit < units; ++unit) {
            const size_t session = unit % num_sessions;
            auto buffer = std::make_unique<trace::TraceBuffer>(
                run_.traceBufferEvents);
            executor.stampBufferInfo(
                *buffer, session,
                static_cast<unsigned>(unit / num_sessions));
            buffers.push_back(std::move(buffer));
        }
    }

    // The calling thread records into shard 0 for the serial phases
    // (trace write, merge) and the inline pool path; pool workers
    // install their own shard below. Null when telemetry is off.
    const telemetry::ShardScope caller_scope(
        run_.metrics != nullptr ? &run_.metrics->shard(0) : nullptr);

    // Atomic-cursor worker pool over `n` index-keyed tasks; results
    // always land in pre-sized slots keyed by index, so worker
    // scheduling can never reorder them. Worker w records telemetry
    // into shard w -- shards are never shared, and the registry merge
    // walks them in index order, so the merged counters are the same
    // for any worker count or schedule.
    auto run_pool = [this](size_t n, const auto &task) {
        const size_t workers = std::min<size_t>(run_.jobs, n);
        if (workers <= 1) {
            for (size_t i = 0; i < n; ++i)
                task(i);
            return;
        }
        std::atomic<size_t> cursor{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (size_t i = 0; i < workers; ++i) {
            pool.emplace_back([&, i]() {
                const telemetry::ShardScope scope(
                    run_.metrics != nullptr
                        ? &run_.metrics->shard(i)
                        : nullptr);
                for (;;) {
                    const size_t index =
                        cursor.fetch_add(1, std::memory_order_relaxed);
                    if (index >= n)
                        return;
                    task(index);
                }
            });
        }
        for (auto &thread : pool)
            thread.join();
    };

    // Phase 1 (checkpoint mode): one golden prefix per session, sealed
    // into an envelope. The prefix never consumes the session seed
    // (see TestSession), so one snapshot serves all `count` replicate
    // continuations -- this is what importance splitting buys: the
    // seed-independent work is paid num_sessions times instead of
    // `units` times.
    std::vector<std::vector<uint8_t>> checkpoints(
        run_.checkpoint ? num_sessions : 0);
    if (run_.checkpoint) {
        run_pool(num_sessions, [&](size_t session) {
            checkpoints[session] = executor.sealPrefix(session);
            if (run_.progress != nullptr)
                run_.progress->tick();
        });
    }

    // Phase 2: the (session, replicate) units -- continuations forked
    // from the checkpoints, or whole sessions when checkpointing is
    // off.
    std::vector<SessionResult> slots(units);
    run_pool(units, [&](size_t unit) {
        const size_t replicate = unit / num_sessions;
        const size_t session = unit % num_sessions;
        slots[unit] = executor.runUnitRecorded(
            session, static_cast<unsigned>(replicate),
            tracing ? buffers[unit].get() : nullptr,
            run_.checkpoint ? &checkpoints[session] : nullptr);
        if (run_.progress != nullptr)
            run_.progress->tick();
    });

    if (trace_writer != nullptr) {
        const telemetry::ScopedPhase timer(
            telemetry::Phase::TraceWrite);
        // Merge after the pool has drained, in canonical unit order --
        // never completion order -- so the file bytes are independent
        // of the worker count. The array table is a pure function of
        // the platform config; a throwaway hierarchy provides it.
        mem::EdacReporter reporter;
        mem::MemorySystem memory(config_.platform.memory, &reporter);
        trace_writer->writeHeader(run_.seed, campaignConfigHash(config_),
                                  memory.traceArrayTable(), units);
        for (const auto &buffer : buffers) {
            telemetry::count(telemetry::Counter::TraceEventsMerged,
                             buffer->events().size());
            trace_writer->appendUnit(*buffer);
        }
        trace_writer->finish();
    }

    const telemetry::ScopedPhase timer(telemetry::Phase::Merge);
    std::vector<CampaignResult> results(count);
    for (size_t unit = 0; unit < units; ++unit)
        results[unit / num_sessions].sessions.push_back(
            std::move(slots[unit]));
    return results;
}

CampaignResult
ParallelCampaignRunner::execute(trace::TraceWriter *trace_writer)
{
    return std::move(run(1, trace_writer).front());
}

ReplicatedCampaignResult
ParallelCampaignRunner::executeAll(trace::TraceWriter *trace_writer)
{
    ReplicatedCampaignResult result;
    result.replicates = run(run_.replicates, trace_writer);
    const telemetry::ShardScope scope(
        run_.metrics != nullptr ? &run_.metrics->shard(0) : nullptr);
    const telemetry::ScopedPhase timer(telemetry::Phase::Merge);
    result.sessions.resize(config_.sessions.size());
    // Canonical merge order: replicate-major, session-minor, always
    // after the pool has drained -- never completion order.
    for (const auto &replicate : result.replicates)
        for (size_t s = 0; s < replicate.sessions.size(); ++s)
            result.sessions[s].add(replicate.sessions[s]);
    return result;
}

} // namespace xser::core
