/**
 * @file
 * ParallelCampaignRunner implementation.
 */

#include "core/parallel_campaign.hh"

#include <algorithm>
#include <atomic>
#include <thread>

#include "core/test_session.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

namespace xser::core {

void
SessionAggregate::add(const SessionResult &session)
{
    if (replicates == 0)
        point = session.point;
    ++replicates;
    runs += session.runs;
    fluence += session.fluence;
    events.merge(session.events);
    upsetsDetected += session.upsetsDetected;
    rawUpsetEvents += session.rawUpsetEvents;
    const FitBreakdown fit = FitCalculator::breakdown(session);
    fitTotal.add(fit.total.fit);
    fitSdc.add(fit.sdc.fit);
    upsetsPerMinute.add(session.upsetsPerMinute());
}

void
SessionAggregate::merge(const SessionAggregate &other)
{
    if (other.replicates == 0)
        return;
    if (replicates == 0)
        point = other.point;
    replicates += other.replicates;
    runs += other.runs;
    fluence += other.fluence;
    events.merge(other.events);
    upsetsDetected += other.upsetsDetected;
    rawUpsetEvents += other.rawUpsetEvents;
    fitTotal.merge(other.fitTotal);
    fitSdc.merge(other.fitSdc);
    upsetsPerMinute.merge(other.upsetsPerMinute);
}

DcsBreakdown
SessionAggregate::pooledDcs(double confidence) const
{
    return DcsCalculator::fromCounts(events, upsetsDetected, fluence,
                                     confidence);
}

FitBreakdown
SessionAggregate::pooledFit(double confidence) const
{
    return FitCalculator::fromCounts(events, fluence, confidence);
}

ParallelCampaignRunner::ParallelCampaignRunner(
    const CampaignConfig &config, const ParallelRunConfig &run)
    : config_(config), run_(run)
{
    if (config_.sessions.empty())
        fatal("parallel campaign needs at least one session");
    if (run_.replicates == 0)
        fatal("parallel campaign needs at least one replicate");
    if (run_.jobs == 0)
        run_.jobs = 1;
}

SessionResult
ParallelCampaignRunner::runUnit(size_t session_index,
                                unsigned replicate_index) const
{
    SessionConfig session_config = config_.sessions[session_index];
    // Replicate 0 keeps the configured seed (sequential-compatible);
    // later replicates draw their own coordinate-derived stream.
    if (replicate_index > 0)
        session_config.seed = deriveStreamSeed(
            run_.seed, static_cast<uint64_t>(session_index),
            replicate_index);
    cpu::XGene2Platform platform(config_.platform);
    TestSession session(&platform, session_config);
    return session.execute();
}

std::vector<CampaignResult>
ParallelCampaignRunner::run(unsigned count) const
{
    const size_t num_sessions = config_.sessions.size();
    const size_t units = num_sessions * count;

    // Results land in pre-sized slots keyed by unit index, so worker
    // scheduling can never reorder them.
    std::vector<SessionResult> slots(units);
    auto work = [&](size_t unit) {
        const size_t replicate = unit / num_sessions;
        const size_t session = unit % num_sessions;
        slots[unit] =
            runUnit(session, static_cast<unsigned>(replicate));
    };

    const size_t workers =
        std::min<size_t>(run_.jobs, units);
    if (workers <= 1) {
        for (size_t unit = 0; unit < units; ++unit)
            work(unit);
    } else {
        std::atomic<size_t> cursor{0};
        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (size_t i = 0; i < workers; ++i) {
            pool.emplace_back([&]() {
                for (;;) {
                    const size_t unit =
                        cursor.fetch_add(1, std::memory_order_relaxed);
                    if (unit >= units)
                        return;
                    work(unit);
                }
            });
        }
        for (auto &thread : pool)
            thread.join();
    }

    std::vector<CampaignResult> results(count);
    for (size_t unit = 0; unit < units; ++unit)
        results[unit / num_sessions].sessions.push_back(
            std::move(slots[unit]));
    return results;
}

CampaignResult
ParallelCampaignRunner::execute()
{
    return std::move(run(1).front());
}

ReplicatedCampaignResult
ParallelCampaignRunner::executeAll()
{
    ReplicatedCampaignResult result;
    result.replicates = run(run_.replicates);
    result.sessions.resize(config_.sessions.size());
    // Canonical merge order: replicate-major, session-minor, always
    // after the pool has drained -- never completion order.
    for (const auto &replicate : result.replicates)
        for (size_t s = 0; s < replicate.sessions.size(); ++s)
            result.sessions[s].add(replicate.sessions[s]);
    return result;
}

} // namespace xser::core
