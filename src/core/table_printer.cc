/**
 * @file
 * TablePrinter implementation.
 */

#include "core/table_printer.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace xser::core {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
TablePrinter::addRow(std::vector<std::string> cells)
{
    cells.resize(headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TablePrinter::toString() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t column = 0; column < headers_.size(); ++column) {
        widths[column] = headers_[column].size();
        for (const auto &row : rows_)
            widths[column] = std::max(widths[column],
                                      row[column].size());
    }

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (size_t column = 0; column < row.size(); ++column) {
            os << row[column]
               << std::string(widths[column] - row[column].size(), ' ');
            os << (column + 1 < row.size() ? "  " : "");
        }
        os << "\n";
    };
    emit(headers_);
    size_t rule = 0;
    for (size_t column = 0; column < widths.size(); ++column)
        rule += widths[column] + (column + 1 < widths.size() ? 2 : 0);
    os << std::string(rule, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
TablePrinter::fmt(double value, int precision)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
    return buffer;
}

std::string
TablePrinter::sci(double value, int precision)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*E", precision, value);
    return buffer;
}

std::string
TablePrinter::pct(double fraction, int precision)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.*f%%", precision,
                  100.0 * fraction);
    return buffer;
}

} // namespace xser::core
