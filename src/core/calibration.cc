/**
 * @file
 * Calibration singletons.
 */

#include "core/calibration.hh"

namespace xser::core {

const LogicCalibration &
logicCalibration()
{
    static const LogicCalibration calibration;
    return calibration;
}

const SessionCalibration &
sessionCalibration()
{
    static const SessionCalibration calibration;
    return calibration;
}

} // namespace xser::core
