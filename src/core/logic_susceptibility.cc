/**
 * @file
 * LogicSusceptibilityModel implementation.
 */

#include "core/logic_susceptibility.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace xser::core {

LogicSusceptibilityModel::LogicSusceptibilityModel(
    const volt::TimingModel *timing, const LogicCalibration &calibration)
    : timing_(timing), calibration_(calibration)
{
    XSER_ASSERT(timing_ != nullptr, "logic model needs a timing model");
}

double
LogicSusceptibilityModel::cliffFactor(double pmd_volts,
                                      double frequency_hz,
                                      double tau) const
{
    const double slack = pmd_volts - timing_->cliffVolts(frequency_hz);
    // At or below the cliff the chip fails functionally rather than
    // statistically; campaigns never operate there, but clamp anyway.
    return std::exp(-std::max(slack, 0.0) / tau);
}

LogicDcs
LogicSusceptibilityModel::rates(double pmd_volts,
                                double frequency_hz) const
{
    const bool logic_limited =
        timing_->mechanismAt(frequency_hz) ==
        volt::CliffMechanism::LogicTiming;
    const auto &c = calibration_;

    LogicDcs dcs;
    dcs.sdcSilent =
        c.sdcBaseDcs +
        (logic_limited ? c.sdcCliffDcsLogic : c.sdcCliffDcsSram) *
            cliffFactor(pmd_volts, frequency_hz, c.sdcTauVolts);
    dcs.sdcNotified =
        c.notifBaseDcs +
        (logic_limited ? c.notifCliffDcsLogic : c.notifCliffDcsSram) *
            cliffFactor(pmd_volts, frequency_hz, c.notifTauVolts);

    const double delta_v = std::max(0.980 - pmd_volts, 0.0);
    if (logic_limited) {
        dcs.appCrash = c.appCrashNominalDcs *
                       std::exp(-c.appCrashDeclinePerVolt * delta_v);
        dcs.sysCrash = c.sysCrashNominalDcs *
                       std::exp(-c.sysCrashDeclinePerVolt * delta_v);
    } else {
        dcs.appCrash = c.appCrashSramDcs;
        dcs.sysCrash = c.sysCrashSramDcs;
    }
    return dcs;
}

LogicEvents
LogicSusceptibilityModel::sampleRun(
    double pmd_volts, double frequency_hz, double fluence,
    const workloads::WorkloadTraits &traits, Rng &rng) const
{
    XSER_ASSERT(fluence >= 0.0, "fluence must be non-negative");
    const LogicDcs dcs = rates(pmd_volts, frequency_hz);
    LogicEvents events;
    events.sdcSilent =
        rng.nextPoisson(dcs.sdcSilent * fluence * traits.sdcWeight);
    events.sdcNotified =
        rng.nextPoisson(dcs.sdcNotified * fluence * traits.sdcWeight);
    events.appCrash =
        rng.nextPoisson(dcs.appCrash * fluence * traits.appCrashWeight);
    events.sysCrash =
        rng.nextPoisson(dcs.sysCrash * fluence * traits.sysCrashWeight);
    return events;
}

} // namespace xser::core
