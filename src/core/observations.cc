/**
 * @file
 * ObservationChecker implementation.
 */

#include "core/observations.hh"

#include <algorithm>
#include <cmath>

#include "core/fit_calculator.hh"
#include "core/table_printer.hh"
#include "sim/logging.hh"

namespace xser::core {

namespace {

/** SDC share of a session's error events (0 when eventless). */
double
sdcShare(const SessionResult &session)
{
    const uint64_t total = session.events.total();
    return total > 0
        ? static_cast<double>(session.events.sdcTotal()) /
              static_cast<double>(total)
        : 0.0;
}

/** Corrected-event count of one level. */
uint64_t
correctedAt(const SessionResult &session, mem::CacheLevel level)
{
    return session.edac[static_cast<size_t>(level)].corrected;
}

} // namespace

ObservationChecker::ObservationChecker(const CampaignResult &campaign)
    : sessions_(campaign.sessions)
{
    if (sessions_.size() != 4)
        fatal("observation checker needs the four Table 2 sessions");
    XSER_ASSERT(sessions_[0].point.pmdMillivolts == 980.0 &&
                    sessions_[3].point.frequencyHz < 1e9,
                "sessions must be in Table 2 order");
}

std::vector<ObservationVerdict>
ObservationChecker::evaluate() const
{
    std::vector<ObservationVerdict> verdicts;
    const double rate_nominal = nominal().upsetsPerMinute();
    const double rate_vmin = vmin().upsetsPerMinute();
    const double rate_low = low900().upsetsPerMinute();

    {
        // #1: upset rate rises when reducing to the safe Vmin
        // (paper: +10.9% on average).
        ObservationVerdict verdict;
        verdict.number = 1;
        verdict.claim = "SRAM upset rate increases toward safe Vmin";
        const double increase =
            100.0 * (rate_vmin - rate_nominal) /
            std::max(rate_nominal, 1e-12);
        verdict.measurement = msg(TablePrinter::fmt(rate_nominal, 2),
                                  " -> ", TablePrinter::fmt(rate_vmin, 2),
                                  " upsets/min (",
                                  TablePrinter::fmt(increase, 1), "%)");
        verdict.holds = increase > 0.0 && increase < 60.0;
        verdicts.push_back(verdict);
    }
    {
        // #2: bigger arrays log more upsets, at every voltage.
        ObservationVerdict verdict;
        verdict.number = 2;
        verdict.claim = "upset rate grows with array size (L3>L2>L1)";
        bool holds = true;
        for (const auto &session : sessions_) {
            holds &= correctedAt(session, mem::CacheLevel::L3) >
                     correctedAt(session, mem::CacheLevel::L2);
            holds &= correctedAt(session, mem::CacheLevel::L2) >
                     correctedAt(session, mem::CacheLevel::L1);
        }
        verdict.measurement = msg(
            "L3/L2/L1 CE @980mV: ",
            correctedAt(nominal(), mem::CacheLevel::L3), "/",
            correctedAt(nominal(), mem::CacheLevel::L2), "/",
            correctedAt(nominal(), mem::CacheLevel::L1));
        verdict.holds = holds;
        verdicts.push_back(verdict);
    }
    {
        // #3: no extreme fluctuations at lower voltage (2.4 GHz).
        ObservationVerdict verdict;
        verdict.number = 3;
        verdict.claim = "upset rates stay stable across safe voltages";
        const double lo = std::min({nominal().upsetsPerMinute(),
                                    safe().upsetsPerMinute(),
                                    rate_vmin});
        const double hi = std::max({nominal().upsetsPerMinute(),
                                    safe().upsetsPerMinute(),
                                    rate_vmin});
        verdict.measurement =
            msg("2.4GHz range [", TablePrinter::fmt(lo, 2), ", ",
                TablePrinter::fmt(hi, 2), "] upsets/min");
        verdict.holds = lo > 0.0 && hi / lo < 1.6;
        verdicts.push_back(verdict);
    }
    {
        // #4: SDC probability ~3x larger at low voltage.
        ObservationVerdict verdict;
        verdict.number = 4;
        verdict.claim = "SDC share of failures ~3x at Vmin";
        const double ratio =
            sdcShare(vmin()) / std::max(sdcShare(nominal()), 1e-12);
        verdict.measurement =
            msg(TablePrinter::pct(sdcShare(nominal())), " -> ",
                TablePrinter::pct(sdcShare(vmin())), " (",
                TablePrinter::fmt(ratio, 1), "x)");
        verdict.holds = ratio >= 1.8;
        verdicts.push_back(verdict);
    }
    {
        // #5: power drops substantially, susceptibility rises.
        ObservationVerdict verdict;
        verdict.number = 5;
        verdict.claim = "undervolting saves power but raises "
                        "susceptibility";
        const double savings =
            100.0 * (nominal().avgPowerWatts - vmin().avgPowerWatts) /
            nominal().avgPowerWatts;
        verdict.measurement =
            msg(TablePrinter::fmt(savings, 1), "% power saved at Vmin; "
                "upset rate x",
                TablePrinter::fmt(rate_vmin /
                                      std::max(rate_nominal, 1e-12),
                                  2));
        verdict.holds = savings > 5.0 && rate_vmin > rate_nominal;
        verdicts.push_back(verdict);
    }
    {
        // #6: frequency does not significantly affect susceptibility.
        ObservationVerdict verdict;
        verdict.number = 6;
        verdict.claim = "clock frequency barely moves the upset rate";
        const double ratio = rate_low / std::max(rate_vmin, 1e-12);
        verdict.measurement =
            msg("790mV@900MHz vs 920mV@2.4GHz: ",
                TablePrinter::fmt(rate_low, 2), " vs ",
                TablePrinter::fmt(rate_vmin, 2), " upsets/min (x",
                TablePrinter::fmt(ratio, 2), ")");
        verdict.holds = ratio > 0.6 && ratio < 1.6;
        verdicts.push_back(verdict);
    }
    {
        // #7: at 2.4 GHz susceptibility keeps pace with savings; the
        // 900 MHz point wins on savings only by trading performance.
        ObservationVerdict verdict;
        verdict.number = 7;
        verdict.claim = "at 2.4 GHz susceptibility outpaces savings; "
                        "900 MHz saves more only via performance";
        const double savings_vmin =
            100.0 * (nominal().avgPowerWatts - vmin().avgPowerWatts) /
            nominal().avgPowerWatts;
        const double susceptibility_vmin =
            100.0 * (rate_vmin - rate_nominal) /
            std::max(rate_nominal, 1e-12);
        const double savings_low =
            100.0 * (nominal().avgPowerWatts - low900().avgPowerWatts) /
            nominal().avgPowerWatts;
        const double susceptibility_low =
            100.0 * (rate_low - rate_nominal) /
            std::max(rate_nominal, 1e-12);
        verdict.measurement = msg(
            "Vmin: save ", TablePrinter::fmt(savings_vmin, 1), "% / +",
            TablePrinter::fmt(susceptibility_vmin, 1), "% susc; ",
            "900MHz: save ", TablePrinter::fmt(savings_low, 1), "% / +",
            TablePrinter::fmt(susceptibility_low, 1), "% susc");
        verdict.holds = susceptibility_vmin > 0.5 * savings_vmin &&
                        savings_low > 1.5 * susceptibility_low;
        verdicts.push_back(verdict);
    }
    {
        // #8: total FIT rises toward Vmin; SDC dominates there.
        ObservationVerdict verdict;
        verdict.number = 8;
        verdict.claim = "total FIT several times nominal at Vmin, "
                        "dominated by SDCs";
        const FitBreakdown fit_nominal =
            FitCalculator::breakdown(nominal());
        const FitBreakdown fit_vmin = FitCalculator::breakdown(vmin());
        const double total_ratio =
            fit_vmin.total.fit / std::max(fit_nominal.total.fit, 1e-12);
        const double sdc_vs_crash =
            fit_vmin.sdc.fit /
            std::max(fit_vmin.appCrash.fit + fit_vmin.sysCrash.fit,
                     1e-12);
        verdict.measurement =
            msg("total ", TablePrinter::fmt(fit_nominal.total.fit, 1),
                " -> ", TablePrinter::fmt(fit_vmin.total.fit, 1),
                " FIT (x", TablePrinter::fmt(total_ratio, 1),
                "); SDC/crash x", TablePrinter::fmt(sdc_vs_crash, 1));
        verdict.holds = total_ratio > 3.0 && sdc_vs_crash > 3.0;
        verdicts.push_back(verdict);
    }
    {
        // #9: unnotified SDCs dominate notified ones everywhere.
        ObservationVerdict verdict;
        verdict.number = 9;
        verdict.claim = "SDCs without hardware notification dominate";
        bool holds = true;
        for (const auto &session : sessions_) {
            holds &= session.events.sdcSilent >=
                     session.events.sdcNotified;
        }
        verdict.measurement =
            msg("silent/notified per session: ",
                nominal().events.sdcSilent, "/",
                nominal().events.sdcNotified, ", ",
                safe().events.sdcSilent, "/",
                safe().events.sdcNotified, ", ",
                vmin().events.sdcSilent, "/",
                vmin().events.sdcNotified, ", ",
                low900().events.sdcSilent, "/",
                low900().events.sdcNotified);
        verdict.holds = holds;
        verdicts.push_back(verdict);
    }
    return verdicts;
}

size_t
ObservationChecker::countHolding(
    const std::vector<ObservationVerdict> &verdicts)
{
    return static_cast<size_t>(
        std::count_if(verdicts.begin(), verdicts.end(),
                      [](const ObservationVerdict &verdict) {
                          return verdict.holds;
                      }));
}

std::string
ObservationChecker::format(
    const std::vector<ObservationVerdict> &verdicts)
{
    TablePrinter table({"#", "claim", "measured", "verdict"});
    for (const auto &verdict : verdicts) {
        table.addRow({std::to_string(verdict.number), verdict.claim,
                      verdict.measurement,
                      verdict.holds ? "HOLDS" : "DEVIATES"});
    }
    return table.toString();
}

} // namespace xser::core
