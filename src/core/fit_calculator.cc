/**
 * @file
 * FitCalculator implementation.
 */

#include "core/fit_calculator.hh"

#include "rad/fit_math.hh"

namespace xser::core {

FitEstimate
FitCalculator::estimate(uint64_t events, double fluence,
                        double confidence)
{
    FitEstimate result;
    result.events = events;
    if (fluence <= 0.0)
        return result;
    result.fit = rad::fitFromCounts(events, fluence);
    result.ci = rad::fitInterval(events, fluence, confidence);
    return result;
}

FitBreakdown
FitCalculator::breakdown(const SessionResult &session, double confidence)
{
    return fromCounts(session.events, session.fluence, confidence);
}

FitBreakdown
FitCalculator::fromCounts(const EventCounts &events, double fluence,
                          double confidence)
{
    FitBreakdown breakdown;
    breakdown.appCrash = estimate(events.appCrash, fluence, confidence);
    breakdown.sysCrash = estimate(events.sysCrash, fluence, confidence);
    breakdown.sdc = estimate(events.sdcTotal(), fluence, confidence);
    breakdown.total = estimate(events.total(), fluence, confidence);
    breakdown.sdcSilent =
        estimate(events.sdcSilent, fluence, confidence);
    breakdown.sdcNotified =
        estimate(events.sdcNotified, fluence, confidence);
    return breakdown;
}

FitBreakdown
FitCalculator::pooled(const std::vector<SessionResult> &replicas,
                      double confidence)
{
    EventCounts events;
    double fluence = 0.0;
    for (const auto &session : replicas) {
        events.merge(session.events);
        fluence += session.fluence;
    }
    return fromCounts(events, fluence, confidence);
}

} // namespace xser::core
