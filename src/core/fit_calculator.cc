/**
 * @file
 * FitCalculator implementation.
 */

#include "core/fit_calculator.hh"

#include "rad/fit_math.hh"

namespace xser::core {

FitEstimate
FitCalculator::estimate(uint64_t events, double fluence,
                        double confidence)
{
    FitEstimate result;
    result.events = events;
    if (fluence <= 0.0)
        return result;
    result.fit = rad::fitFromCounts(events, fluence);
    result.ci = rad::fitInterval(events, fluence, confidence);
    return result;
}

FitBreakdown
FitCalculator::breakdown(const SessionResult &session, double confidence)
{
    FitBreakdown breakdown;
    const double fluence = session.fluence;
    breakdown.appCrash =
        estimate(session.events.appCrash, fluence, confidence);
    breakdown.sysCrash =
        estimate(session.events.sysCrash, fluence, confidence);
    breakdown.sdc =
        estimate(session.events.sdcTotal(), fluence, confidence);
    breakdown.total =
        estimate(session.events.total(), fluence, confidence);
    breakdown.sdcSilent =
        estimate(session.events.sdcSilent, fluence, confidence);
    breakdown.sdcNotified =
        estimate(session.events.sdcNotified, fluence, confidence);
    return breakdown;
}

} // namespace xser::core
