/**
 * @file
 * Run-manifest assembly implementation.
 */

#include "core/run_manifest.hh"

#include <cstdio>

#include "sim/logging.hh"

namespace xser::core {

namespace {

/** Hex rendering of a 64-bit hash, matching xser-trace's headers. */
std::string
hashHex(uint64_t hash)
{
    char buffer[24];
    std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                  static_cast<unsigned long long>(hash));
    return buffer;
}

void
writeRunSection(telemetry::JsonWriter &json,
                const ManifestRunInfo &info)
{
    json.beginObject("run");
    json.member("tool", info.tool);
    json.member("git_describe", telemetry::gitDescribe());
    json.member("config_hash", hashHex(info.configHash));
    json.member("seed", info.seed);
    if (info.scale >= 0.0)
        json.member("scale", info.scale);
    json.member("sessions", static_cast<uint64_t>(info.sessions));
    json.member("replicates", static_cast<uint64_t>(info.replicates));
    json.member("fastpath", info.fastpath);
    json.member("checkpoint", info.checkpoint);
    json.endObject();
}

void
writeHeadline(telemetry::JsonWriter &json,
              const std::vector<SessionAggregate> &sessions)
{
    json.beginArray("headline");
    for (size_t s = 0; s < sessions.size(); ++s) {
        const SessionAggregate &aggregate = sessions[s];
        const FitBreakdown fit = aggregate.pooledFit();
        const DcsBreakdown dcs = aggregate.pooledDcs();
        json.beginObject();
        json.member("session", static_cast<uint64_t>(s));
        json.member("label", aggregate.point.label());
        json.member("runs", aggregate.runs);
        json.member("fluence", aggregate.fluence);
        json.member("events", aggregate.events.total());
        json.member("upsets_detected", aggregate.upsetsDetected);
        json.member("raw_upset_events", aggregate.rawUpsetEvents);
        json.member("fit_total", fit.total.fit);
        json.member("fit_total_ci_lower", fit.total.ci.lower);
        json.member("fit_total_ci_upper", fit.total.ci.upper);
        json.member("fit_sdc", fit.sdc.fit);
        json.member("dcs_total", dcs.total.dcs);
        json.member("dcs_sdc", dcs.sdc.dcs);
        json.endObject();
    }
    json.endArray();
}

} // namespace

std::string
renderRunManifest(const ManifestRunInfo &info,
                  const std::vector<SessionAggregate> &sessions,
                  const telemetry::MetricRegistry *registry,
                  unsigned jobs, double elapsed_seconds)
{
    telemetry::JsonWriter json;
    json.beginObject();
    telemetry::writeSchemaPreamble(json);
    writeRunSection(json, info);
    const telemetry::MetricShard merged =
        registry != nullptr ? registry->merged()
                            : telemetry::MetricShard();
    telemetry::writeCounters(json, merged);
    telemetry::writeDistributions(json, merged);
    writeHeadline(json, sessions);
    if (registry != nullptr) {
        telemetry::writeTiming(json, *registry, jobs,
                               elapsed_seconds);
    } else {
        const telemetry::MetricRegistry empty(1);
        telemetry::writeTiming(json, empty, jobs, elapsed_seconds);
    }
    json.endObject();
    return json.take();
}

void
writeManifestFile(const std::string &path, const std::string &text)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (file == nullptr)
        fatal(msg("cannot open metrics manifest for writing: ", path));
    const size_t written =
        std::fwrite(text.data(), 1, text.size(), file);
    const int close_status = std::fclose(file);
    if (written != text.size() || close_status != 0)
        fatal(msg("short write to metrics manifest: ", path));
}

} // namespace xser::core
