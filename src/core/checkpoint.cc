/**
 * @file
 * Checkpoint envelope implementation.
 */

#include "core/checkpoint.hh"

#include <cstring>

#include "sim/logging.hh"
#include "telemetry/metrics.hh"

namespace xser::core {

namespace {

constexpr char checkpointMagic[8] = {'X', 'S', 'E', 'R',
                                     'C', 'K', 'P', 'T'};
constexpr size_t headerBytes = 40;

uint64_t
fnv1a(const uint8_t *data, size_t size)
{
    uint64_t hash = 0xcbf29ce484222325ULL;
    for (size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= 0x100000001b3ULL;
    }
    return hash;
}

void
putU32(std::vector<uint8_t> &out, uint32_t value)
{
    for (unsigned i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>((value >> (8 * i)) & 0xffu));
}

void
putU64(std::vector<uint8_t> &out, uint64_t value)
{
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(
            static_cast<uint8_t>((value >> (8 * i)) & 0xffull));
}

uint32_t
getU32(const uint8_t *data)
{
    uint32_t value = 0;
    for (unsigned i = 0; i < 4; ++i)
        value |= static_cast<uint32_t>(data[i]) << (8 * i);
    return value;
}

uint64_t
getU64(const uint8_t *data)
{
    uint64_t value = 0;
    for (unsigned i = 0; i < 8; ++i)
        value |= static_cast<uint64_t>(data[i]) << (8 * i);
    return value;
}

} // namespace

std::vector<uint8_t>
sealCheckpoint(uint32_t session_index, uint64_t config_hash,
               std::vector<uint8_t> payload)
{
    std::vector<uint8_t> bytes;
    bytes.reserve(headerBytes + payload.size());
    bytes.insert(bytes.end(), checkpointMagic, checkpointMagic + 8);
    putU32(bytes, checkpointVersion);
    putU32(bytes, session_index);
    putU64(bytes, config_hash);
    putU64(bytes, payload.size());
    putU64(bytes, fnv1a(payload.data(), payload.size()));
    bytes.insert(bytes.end(), payload.begin(), payload.end());
    telemetry::count(telemetry::Counter::CheckpointsSealed);
    telemetry::count(telemetry::Counter::CheckpointSealedBytes,
                     bytes.size());
    return bytes;
}

CheckpointView
openCheckpoint(const std::vector<uint8_t> &bytes)
{
    CheckpointView view;
    if (bytes.size() < headerBytes) {
        view.error = msg("checkpoint too short: ", bytes.size(),
                         " bytes, header needs ", headerBytes);
        return view;
    }
    if (std::memcmp(bytes.data(), checkpointMagic, 8) != 0) {
        view.error = "bad checkpoint magic (not an XSERCKPT blob)";
        return view;
    }
    const uint32_t version = getU32(bytes.data() + 8);
    if (version != checkpointVersion) {
        view.error = msg("unsupported checkpoint version ", version,
                         " (expected ", checkpointVersion, ")");
        return view;
    }
    view.sessionIndex = getU32(bytes.data() + 12);
    view.configHash = getU64(bytes.data() + 16);
    const uint64_t payload_size = getU64(bytes.data() + 24);
    const uint64_t checksum = getU64(bytes.data() + 32);
    if (payload_size != bytes.size() - headerBytes) {
        view.error = msg("checkpoint payload size mismatch: header "
                         "declares ", payload_size, " bytes, blob has ",
                         bytes.size() - headerBytes);
        return view;
    }
    const uint8_t *payload = bytes.data() + headerBytes;
    const uint64_t actual =
        fnv1a(payload, static_cast<size_t>(payload_size));
    if (actual != checksum) {
        view.error = msg("checkpoint payload checksum mismatch: "
                         "expected ", checksum, ", computed ", actual);
        return view;
    }
    view.ok = true;
    view.payload = payload;
    view.payloadSize = static_cast<size_t>(payload_size);
    telemetry::count(telemetry::Counter::CheckpointsOpened);
    telemetry::count(telemetry::Counter::CheckpointOpenedBytes,
                     bytes.size());
    return view;
}

} // namespace xser::core
