/**
 * @file
 * Shard execution as a library call: the single implementation of
 * "run one (session, replicate) unit" and "seal one session's golden
 * prefix" that both the in-process worker pool (ParallelCampaignRunner)
 * and the distributed campaign service (src/service) drive.
 *
 * Everything here is a pure function of (campaign config, base seed,
 * coordinates): results are bit-identical whether a unit runs on a
 * local pool thread, a remote worker process, or is re-executed after
 * a worker died mid-shard (DESIGN.md section 12's requeue-determinism
 * argument rests on exactly this property). Telemetry recording is
 * included here -- not in the callers -- so a distributed campaign's
 * counters match a local run's to the bit.
 */

#ifndef XSER_CORE_SHARD_EXECUTOR_HH
#define XSER_CORE_SHARD_EXECUTOR_HH

#include <cstdint>
#include <vector>

#include "core/beam_campaign.hh"
#include "trace/trace_buffer.hh"

namespace xser::core {

/**
 * Executes (session, replicate) units of one campaign. Stateless
 * between calls apart from the configuration, so a single instance
 * can serve any number of shards in any order.
 */
class ShardExecutor
{
  public:
    /**
     * @param config The campaign (sessions in canonical order).
     * @param base_seed Seed for replicate-stream derivation.
     * @param checkpoint Fork continuations from sealed prefixes.
     */
    ShardExecutor(const CampaignConfig &config, uint64_t base_seed,
                  bool checkpoint);

    const CampaignConfig &config() const { return config_; }
    uint64_t configHash() const { return configHash_; }
    bool checkpointing() const { return checkpoint_; }

    /**
     * Run the session's seed-independent golden prefix and seal it
     * into a checkpoint envelope (core/checkpoint.hh). Records the
     * phase-1 telemetry (SessionsPrefixed, CheckpointKilobytes) on
     * the caller's active shard, exactly as the local runner's
     * phase 1 does.
     */
    std::vector<uint8_t> sealPrefix(size_t session_index) const;

    /**
     * Stamp a unit's trace-buffer identity (coordinates, operating
     * point, workload order) the way the canonical merge expects.
     */
    void stampBufferInfo(trace::TraceBuffer &buffer,
                         size_t session_index,
                         unsigned replicate_index) const;

    /**
     * Run one (session, replicate) unit on a fresh platform. When
     * `checkpoint` is non-null the unit restores the session's prefix
     * from it and runs only the continuation; otherwise it replays
     * the whole session. `buffer` may be null (tracing off).
     */
    SessionResult runUnit(size_t session_index,
                          unsigned replicate_index,
                          trace::TraceBuffer *buffer,
                          const std::vector<uint8_t> *checkpoint) const;

    /**
     * runUnit plus the per-unit telemetry every execution context
     * records identically (UnitsCompleted, RunsPerUnit,
     * ErrorEventsPerUnit, and the timing-quarantined UnitSeconds /
     * unitsExecuted).
     */
    SessionResult
    runUnitRecorded(size_t session_index, unsigned replicate_index,
                    trace::TraceBuffer *buffer,
                    const std::vector<uint8_t> *checkpoint) const;

  private:
    CampaignConfig config_;
    uint64_t baseSeed_;
    uint64_t configHash_;
    bool checkpoint_;
};

} // namespace xser::core

#endif // XSER_CORE_SHARD_EXECUTOR_HH
