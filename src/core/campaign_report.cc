/**
 * @file
 * Report renderers.
 */

#include "core/campaign_report.hh"

#include <cmath>
#include <sstream>

#include "core/fit_calculator.hh"
#include "core/parallel_campaign.hh"
#include "core/table_printer.hh"
#include "sim/logging.hh"

namespace xser::core {

namespace {

/** Find the per-workload slice by name (nullptr when absent). */
const WorkloadSessionStats *
findWorkload(const SessionResult &session, const std::string &name)
{
    for (const auto &stats : session.perWorkload) {
        if (stats.name == name)
            return &stats;
    }
    return nullptr;
}

/** Per-level upsets per equivalent minute. */
double
levelRate(const SessionResult &session, mem::CacheLevel level,
          bool corrected)
{
    const double minutes = session.equivalentMinutes();
    if (minutes <= 0.0)
        return 0.0;
    const auto &tally = session.edac[static_cast<size_t>(level)];
    const uint64_t count =
        corrected ? tally.corrected : tally.uncorrected;
    return static_cast<double>(count) / minutes;
}

std::string
fitWithCi(const FitEstimate &estimate)
{
    return TablePrinter::fmt(estimate.fit, 2) + " [" +
           TablePrinter::fmt(estimate.ci.lower, 2) + ", " +
           TablePrinter::fmt(estimate.ci.upper, 2) + "]";
}

} // namespace

std::string
formatTable2(const std::vector<SessionResult> &sessions)
{
    std::vector<std::string> headers = {"Beam test session"};
    for (size_t i = 0; i < sessions.size(); ++i)
        headers.push_back(std::to_string(i + 1));
    TablePrinter table(std::move(headers));

    auto row = [&](const std::string &label, auto value_of) {
        std::vector<std::string> cells = {label};
        for (const auto &session : sessions)
            cells.push_back(value_of(session));
        table.addRow(std::move(cells));
    };

    row("Voltage Levels (mV)", [](const SessionResult &s) {
        return TablePrinter::fmt(s.point.pmdMillivolts, 0);
    });
    row("Test duration (minutes, beam-equivalent)",
        [](const SessionResult &s) {
            return TablePrinter::fmt(s.equivalentMinutes(), 0);
        });
    row("Fluence (neutrons/cm2)", [](const SessionResult &s) {
        return TablePrinter::sci(s.fluence, 2);
    });
    row("Years of NYC equivalent radiation", [](const SessionResult &s) {
        return TablePrinter::sci(s.nycYearsEquivalent(), 2);
    });
    row("SDCs and crashes (#)", [](const SessionResult &s) {
        return std::to_string(s.events.total());
    });
    row("SDCs and crashes rate (per min)", [](const SessionResult &s) {
        return TablePrinter::sci(s.errorsPerMinute(), 2);
    });
    row("Memory upsets (#)", [](const SessionResult &s) {
        return std::to_string(s.upsetsDetected);
    });
    row("Memory upsets rate (per min)", [](const SessionResult &s) {
        return TablePrinter::fmt(s.upsetsPerMinute(), 3);
    });
    row("Memory SER (FIT per MBit)", [](const SessionResult &s) {
        return TablePrinter::fmt(s.memorySerFitPerMbit(), 2);
    });
    return "Table 2: Neutron Beam Time Sessions (simulated TNF)\n" +
           table.toString();
}

std::string
formatTable3()
{
    TablePrinter table({"Setting", "Frequency", "PMD Voltage",
                        "SoC Voltage"});
    for (const auto &point : volt::paperOperatingPoints()) {
        table.addRow({point.name,
                      point.frequencyHz >= 1e9
                          ? TablePrinter::fmt(point.frequencyHz / 1e9, 1) +
                                " GHz"
                          : TablePrinter::fmt(point.frequencyHz / 1e6, 0) +
                                " MHz",
                      TablePrinter::fmt(point.pmdMillivolts, 0) + " mV",
                      TablePrinter::fmt(point.socMillivolts, 0) + " mV"});
    }
    return "Table 3: Voltage levels used in the experiments\n" +
           table.toString();
}

std::string
formatFig4(const volt::VminSweepResult &sweep_24ghz,
           const volt::VminSweepResult &sweep_900mhz)
{
    std::ostringstream os;
    os << "Fig. 4: Probability of Failure vs supply voltage\n";
    auto emit = [&os](const char *title,
                      const volt::VminSweepResult &sweep) {
        os << title << "\n";
        TablePrinter table({"Voltage [mV]", "pfail", "failures/runs"});
        for (const auto &step : sweep.steps) {
            table.addRow({TablePrinter::fmt(step.millivolts, 0),
                          TablePrinter::pct(step.pfail),
                          std::to_string(step.failures) + "/" +
                              std::to_string(step.runs)});
        }
        table.addRow({"safe Vmin",
                      TablePrinter::fmt(sweep.safeVminMillivolts, 0) +
                          " mV",
                      ""});
        os << table.toString();
    };
    emit("8 Threads @ 2.4 GHz", sweep_24ghz);
    emit("8 Threads @ 900 MHz", sweep_900mhz);
    return os.str();
}

std::string
formatFig5(const std::vector<SessionResult> &sessions_24ghz)
{
    std::vector<std::string> headers = {"Benchmark"};
    for (const auto &session : sessions_24ghz)
        headers.push_back(
            TablePrinter::fmt(session.point.pmdMillivolts, 0) + "mV");
    TablePrinter table(std::move(headers));

    std::vector<std::string> names;
    if (!sessions_24ghz.empty()) {
        for (const auto &stats : sessions_24ghz.front().perWorkload)
            names.push_back(stats.name);
    }
    for (const auto &name : names) {
        std::vector<std::string> cells = {name};
        for (const auto &session : sessions_24ghz) {
            const auto *stats = findWorkload(session, name);
            cells.push_back(TablePrinter::fmt(
                stats != nullptr
                    ? stats->upsetsPerMinute(session.beamFluxPerSecond)
                    : 0.0,
                2));
        }
        table.addRow(std::move(cells));
    }
    std::vector<std::string> totals = {"Total"};
    for (const auto &session : sessions_24ghz)
        totals.push_back(TablePrinter::fmt(session.upsetsPerMinute(), 2));
    table.addRow(std::move(totals));
    return "Fig. 5: Cache memory upsets per minute per benchmark "
           "(2.4 GHz)\n" + table.toString();
}

std::string
formatFig6(const std::vector<SessionResult> &sessions_24ghz)
{
    std::vector<std::string> headers = {"Array (recovery)"};
    for (const auto &session : sessions_24ghz)
        headers.push_back(
            TablePrinter::fmt(session.point.pmdMillivolts, 0) + "mV");
    TablePrinter table(std::move(headers));

    auto row = [&](const std::string &label, mem::CacheLevel level,
                   bool corrected) {
        std::vector<std::string> cells = {label};
        for (const auto &session : sessions_24ghz)
            cells.push_back(TablePrinter::fmt(
                levelRate(session, level, corrected), 3));
        table.addRow(std::move(cells));
    };
    row("TLBs (corrected)", mem::CacheLevel::Tlb, true);
    row("L1 Cache (corrected)", mem::CacheLevel::L1, true);
    row("L2 Cache (corrected)", mem::CacheLevel::L2, true);
    row("L3 Cache (corrected)", mem::CacheLevel::L3, true);
    row("L3 Cache (uncorrected)", mem::CacheLevel::L3, false);
    row("L2 Cache (uncorrected)", mem::CacheLevel::L2, false);
    return "Fig. 6: Cache memory upsets per minute per cache level "
           "(2.4 GHz)\n" + table.toString();
}

std::string
formatFig7(const SessionResult &session_900mhz)
{
    TablePrinter table({"Array (recovery)",
                        TablePrinter::fmt(
                            session_900mhz.point.pmdMillivolts, 0) +
                            "mV @ 900 MHz"});
    auto row = [&](const std::string &label, mem::CacheLevel level,
                   bool corrected) {
        table.addRow({label,
                      TablePrinter::fmt(
                          levelRate(session_900mhz, level, corrected),
                          3)});
    };
    row("TLB (corrected)", mem::CacheLevel::Tlb, true);
    row("L1 Cache (corrected)", mem::CacheLevel::L1, true);
    row("L2 Cache (corrected)", mem::CacheLevel::L2, true);
    row("L3 Cache (corrected)", mem::CacheLevel::L3, true);
    row("L3 Cache (uncorrected)", mem::CacheLevel::L3, false);
    return "Fig. 7: Cache memory upsets per minute per cache level "
           "(900 MHz)\n" + table.toString();
}

std::string
formatFig8(const std::vector<SessionResult> &sessions_24ghz)
{
    std::ostringstream os;
    os << "Fig. 8: Abnormal-behavior percentages per voltage "
          "(2.4 GHz)\n";
    TablePrinter table({"Voltage", "AppCrash", "SysCrash", "SDC",
                        "events"});
    for (const auto &session : sessions_24ghz) {
        const double total =
            std::max<double>(1.0,
                             static_cast<double>(session.events.total()));
        table.addRow({
            TablePrinter::fmt(session.point.pmdMillivolts, 0) + " mV",
            TablePrinter::pct(
                static_cast<double>(session.events.appCrash) / total),
            TablePrinter::pct(
                static_cast<double>(session.events.sysCrash) / total),
            TablePrinter::pct(
                static_cast<double>(session.events.sdcTotal()) / total),
            std::to_string(session.events.total()),
        });
    }
    os << table.toString();
    return os.str();
}

std::string
formatFig9(const std::vector<SessionResult> &sessions)
{
    TablePrinter table({"Operating point", "Power [W]", "Upsets / Min"});
    for (const auto &session : sessions) {
        table.addRow({session.point.label(),
                      TablePrinter::fmt(session.avgPowerWatts, 2),
                      TablePrinter::fmt(session.upsetsPerMinute(), 2)});
    }
    return "Fig. 9: Power consumption vs soft-error susceptibility\n" +
           table.toString();
}

std::string
formatFig10(const std::vector<SessionResult> &sessions)
{
    if (sessions.empty())
        return "Fig. 10: (no sessions)\n";
    const SessionResult &nominal = sessions.front();
    TablePrinter table({"Operating point", "Power Savings [%]",
                        "Susceptibility Increase [%]"});
    for (size_t i = 1; i < sessions.size(); ++i) {
        const auto &session = sessions[i];
        const double savings =
            100.0 * (nominal.avgPowerWatts - session.avgPowerWatts) /
            nominal.avgPowerWatts;
        const double susceptibility =
            100.0 * (session.upsetsPerMinute() -
                     nominal.upsetsPerMinute()) /
            std::max(nominal.upsetsPerMinute(), 1e-12);
        table.addRow({session.point.label(),
                      TablePrinter::fmt(savings, 1),
                      TablePrinter::fmt(susceptibility, 1)});
    }
    return "Fig. 10: Power savings vs susceptibility increase "
           "(vs nominal @ 2.4 GHz)\n" + table.toString();
}

std::string
formatFig11(const std::vector<SessionResult> &sessions_24ghz)
{
    TablePrinter table({"Category", "980 mV", "930 mV", "920 mV"});
    std::vector<FitBreakdown> breakdowns;
    breakdowns.reserve(sessions_24ghz.size());
    for (const auto &session : sessions_24ghz)
        breakdowns.push_back(FitCalculator::breakdown(session));

    auto row = [&](const std::string &label,
                   FitEstimate FitBreakdown::*member) {
        std::vector<std::string> cells = {label};
        for (const auto &breakdown : breakdowns)
            cells.push_back(fitWithCi(breakdown.*member));
        table.addRow(std::move(cells));
    };
    row("AppCrash", &FitBreakdown::appCrash);
    row("SysCrash", &FitBreakdown::sysCrash);
    row("SDC", &FitBreakdown::sdc);
    row("Total FIT", &FitBreakdown::total);
    return "Fig. 11: Total FIT rate of the CPU chip (2.4 GHz), "
           "FIT [95% CI]\n" + table.toString();
}

std::string
formatFig12(const std::vector<SessionResult> &sessions_24ghz)
{
    TablePrinter table({"SDC class", "980 mV", "930 mV", "920 mV"});
    std::vector<FitBreakdown> breakdowns;
    breakdowns.reserve(sessions_24ghz.size());
    for (const auto &session : sessions_24ghz)
        breakdowns.push_back(FitCalculator::breakdown(session));

    auto row = [&](const std::string &label,
                   FitEstimate FitBreakdown::*member) {
        std::vector<std::string> cells = {label};
        for (const auto &breakdown : breakdowns)
            cells.push_back(fitWithCi(breakdown.*member));
        table.addRow(std::move(cells));
    };
    row("w/o any hardware notification", &FitBreakdown::sdcSilent);
    row("w/ corrected error notification", &FitBreakdown::sdcNotified);
    return "Fig. 12: SDC FIT rates by hardware-notification class "
           "(2.4 GHz), FIT [95% CI]\n" + table.toString();
}

std::string
formatFig13(const SessionResult &session_900mhz)
{
    const FitBreakdown breakdown =
        FitCalculator::breakdown(session_900mhz);
    TablePrinter table({"SDC class", "790 mV @ 900 MHz"});
    table.addRow({"w/o any hardware notification",
                  fitWithCi(breakdown.sdcSilent)});
    table.addRow({"w/ corrected error notification",
                  fitWithCi(breakdown.sdcNotified)});
    return "Fig. 13: SDC FIT rates by hardware-notification class "
           "(900 MHz), FIT [95% CI]\n" + table.toString();
}

std::string
formatTraceLine(uint64_t units, const std::string &path)
{
    return "trace: " + std::to_string(units) + " units -> " + path +
           "\n";
}

std::string
formatReplicateSummary(const ReplicatedCampaignResult &sweep)
{
    std::string out = "=== replicate summary (" +
                      std::to_string(sweep.replicates.size()) +
                      " replicates) ===\n";
    TablePrinter table({"session", "events", "fluence",
                        "FIT total [95% CI]", "FIT mean+-SE"});
    for (const auto &aggregate : sweep.sessions) {
        const FitBreakdown fit = aggregate.pooledFit();
        table.addRow(
            {aggregate.point.label(),
             std::to_string(aggregate.events.total()),
             TablePrinter::sci(aggregate.fluence, 2),
             TablePrinter::fmt(fit.total.fit, 2) + " [" +
                 TablePrinter::fmt(fit.total.ci.lower, 2) + ", " +
                 TablePrinter::fmt(fit.total.ci.upper, 2) + "]",
             TablePrinter::fmt(aggregate.fitTotal.mean(), 2) + " +- " +
                 TablePrinter::fmt(aggregate.fitTotal.stderrMean(),
                                   2)});
    }
    out += table.toString();
    out += "\n";
    return out;
}

std::string
formatCampaignReport(const ReplicatedCampaignResult &sweep)
{
    const CampaignResult &result = sweep.replicates.front();
    XSER_ASSERT(result.sessions.size() >= 4,
                "campaign report needs the four Table 2 sessions");
    const std::vector<SessionResult> at24ghz(
        result.sessions.begin(), result.sessions.begin() + 3);
    std::string out;
    out += formatTable2(result.sessions) + "\n";
    out += formatFig5(at24ghz) + "\n";
    out += formatFig6(at24ghz) + "\n";
    out += formatFig7(result.sessions[3]) + "\n";
    out += formatFig8(at24ghz) + "\n";
    out += formatFig9(result.sessions) + "\n";
    out += formatFig10(result.sessions) + "\n";
    out += formatFig11(at24ghz) + "\n";
    out += formatFig12(at24ghz) + "\n";
    out += formatFig13(result.sessions[3]) + "\n";
    if (sweep.replicates.size() > 1)
        out += formatReplicateSummary(sweep);
    return out;
}

} // namespace xser::core
