/**
 * @file
 * Report generation: renders each of the paper's tables and figures
 * from campaign/session results. Bench binaries are thin wrappers over
 * these; tests validate the same structures the renderers consume.
 */

#ifndef XSER_CORE_CAMPAIGN_REPORT_HH
#define XSER_CORE_CAMPAIGN_REPORT_HH

#include <string>
#include <vector>

#include "core/test_session.hh"
#include "volt/power_model.hh"
#include "volt/vmin_characterizer.hh"

namespace xser::core {

/** Table 2: the beam test sessions. */
std::string formatTable2(const std::vector<SessionResult> &sessions);

/** Table 3: the voltage levels used in the experiments. */
std::string formatTable3();

/** Fig. 4: pfail(V) curves for both frequencies. */
std::string formatFig4(const volt::VminSweepResult &sweep_24ghz,
                       const volt::VminSweepResult &sweep_900mhz);

/** Fig. 5: upsets/min per benchmark per 2.4 GHz voltage. */
std::string formatFig5(const std::vector<SessionResult> &sessions_24ghz);

/** Fig. 6: upsets/min per cache level per 2.4 GHz voltage. */
std::string formatFig6(const std::vector<SessionResult> &sessions_24ghz);

/** Fig. 7: upsets/min per cache level at 790 mV @ 900 MHz. */
std::string formatFig7(const SessionResult &session_900mhz);

/** Fig. 8: failure-type percentages per 2.4 GHz voltage. */
std::string formatFig8(const std::vector<SessionResult> &sessions_24ghz);

/** Fig. 9: power vs upsets/min across all operating points. */
std::string formatFig9(const std::vector<SessionResult> &sessions);

/** Fig. 10: power savings vs susceptibility increase (vs nominal). */
std::string formatFig10(const std::vector<SessionResult> &sessions);

/** Fig. 11: FIT rates per category per 2.4 GHz voltage. */
std::string formatFig11(const std::vector<SessionResult> &sessions_24ghz);

/** Fig. 12: SDC FIT w/o vs w/ notification, 2.4 GHz voltages. */
std::string formatFig12(const std::vector<SessionResult> &sessions_24ghz);

/** Fig. 13: SDC FIT w/o vs w/ notification at 790 mV @ 900 MHz. */
std::string formatFig13(const SessionResult &session_900mhz);

struct ReplicatedCampaignResult;

/** The "trace: N units -> path" line printed above campaign reports. */
std::string formatTraceLine(uint64_t units, const std::string &path);

/** The replicate-summary table printed when replicates > 1. */
std::string
formatReplicateSummary(const ReplicatedCampaignResult &sweep);

/**
 * The complete paper-campaign report (Table 2 through Fig. 13, plus
 * the replicate summary when replicates > 1), exactly as `xser
 * campaign` prints it. A single render function shared by the CLI and
 * the distributed campaign service keeps the two byte-identical --
 * the CI determinism gate `cmp`s their outputs.
 */
std::string
formatCampaignReport(const ReplicatedCampaignResult &sweep);

} // namespace xser::core

#endif // XSER_CORE_CAMPAIGN_REPORT_HH
