/**
 * @file
 * Checkpoint envelope: the versioned container around a session's
 * prefix snapshot (DESIGN.md section 10).
 *
 * A campaign takes one snapshot per (benchmark-suite, voltage) session
 * after the golden prefix and forks every replicate's continuation
 * from it. The envelope makes that blob self-describing and refusable:
 *
 *     bytes 0-7    magic "XSERCKPT"
 *     bytes 8-11   format version (u32, little-endian)
 *     bytes 12-15  session index within the campaign (u32)
 *     bytes 16-23  campaign configuration hash (u64)
 *     bytes 24-31  payload size in bytes (u64)
 *     bytes 32-39  FNV-1a checksum of the payload (u64)
 *     bytes 40-    payload (SnapshotWriter stream)
 *
 * openCheckpoint() validates every field before exposing the payload
 * and reports failures gracefully ({ok, error}, mirroring the .xtrace
 * reader): a checkpoint crossing a process or version boundary is
 * external input. Once the checksum has passed, payload decoding
 * errors indicate a logic bug and the SnapshotReader fails hard.
 */

#ifndef XSER_CORE_CHECKPOINT_HH
#define XSER_CORE_CHECKPOINT_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace xser::core {

/** Envelope format version; bump on any payload layout change. */
inline constexpr uint32_t checkpointVersion = 1;

/**
 * Wrap a prefix snapshot payload in the envelope.
 *
 * @param session_index Session's index within the campaign.
 * @param config_hash campaignConfigHash() of the owning campaign.
 * @param payload SnapshotWriter stream (moved into the envelope).
 */
std::vector<uint8_t> sealCheckpoint(uint32_t session_index,
                                    uint64_t config_hash,
                                    std::vector<uint8_t> payload);

/** Result of opening an envelope: a validated view into its bytes. */
struct CheckpointView {
    bool ok = false;
    std::string error;           ///< set when !ok
    uint32_t sessionIndex = 0;
    uint64_t configHash = 0;
    const uint8_t *payload = nullptr;  ///< into the caller's buffer
    size_t payloadSize = 0;
};

/**
 * Validate an envelope (magic, version, sizes, payload checksum) and
 * return a view of its payload. The view aliases `bytes`, which must
 * outlive it. Never fatals: malformed input yields {ok=false, error}.
 */
CheckpointView openCheckpoint(const std::vector<uint8_t> &bytes);

} // namespace xser::core

#endif // XSER_CORE_CHECKPOINT_HH
