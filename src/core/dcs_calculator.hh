/**
 * @file
 * Dynamic cross-section estimates (Eq. 1) with confidence intervals,
 * per outcome category, from session results.
 */

#ifndef XSER_CORE_DCS_CALCULATOR_HH
#define XSER_CORE_DCS_CALCULATOR_HH

#include "core/test_session.hh"
#include "stats/poisson_ci.hh"

namespace xser::core {

/** One DCS estimate. */
struct DcsEstimate {
    uint64_t events = 0;
    double fluence = 0.0;
    double dcs = 0.0;        ///< events / fluence (cm^2)
    PoissonInterval ci{0.0, 0.0};
};

/** Per-category DCS estimates of a session. */
struct DcsBreakdown {
    DcsEstimate sdc;
    DcsEstimate sdcSilent;
    DcsEstimate sdcNotified;
    DcsEstimate appCrash;
    DcsEstimate sysCrash;
    DcsEstimate total;
    DcsEstimate memoryUpsets;
};

/**
 * Computes Eq. 1 estimates from session results.
 */
class DcsCalculator
{
  public:
    /** Estimate a DCS from a count and an exposure. */
    static DcsEstimate estimate(uint64_t events, double fluence,
                                double confidence = 0.95);

    /** All categories of one session. */
    static DcsBreakdown breakdown(const SessionResult &session,
                                  double confidence = 0.95);

    /**
     * Mergeable variant: all categories from already-merged event
     * tallies over a pooled fluence. Poisson pooling is exact, so the
     * estimate over N merged replicates equals the estimate over one
     * N-times-longer session.
     */
    static DcsBreakdown fromCounts(const EventCounts &events,
                                   uint64_t upsets_detected,
                                   double fluence,
                                   double confidence = 0.95);

    /**
     * Pool replicate sessions of the same operating point (summed
     * events over summed fluence) and estimate once.
     */
    static DcsBreakdown pooled(const std::vector<SessionResult> &replicas,
                               double confidence = 0.95);
};

} // namespace xser::core

#endif // XSER_CORE_DCS_CALCULATOR_HH
