/**
 * @file
 * Control-PC model (Fig. 3 / Section 3.6 of the paper).
 *
 * The real campaign's Control-PC compares each run's output against a
 * pre-computed golden reference (mismatch -> SDC), detects hangs via
 * response timeouts (restartable -> AppCrash, unreachable -> SysCrash
 * + remote power cycle), and records everything for post-analysis.
 * This class is the simulated counterpart: it holds golden signatures
 * and fuses the organic evidence (signature compare, kernel traps, CE
 * notifications) with the sampled core-logic events into one
 * classified RunRecord.
 */

#ifndef XSER_CORE_CONTROL_PC_HH
#define XSER_CORE_CONTROL_PC_HH

#include <map>
#include <string>
#include <vector>

#include "core/logic_susceptibility.hh"
#include "core/outcome.hh"
#include "sim/snapshot.hh"
#include "workloads/workload.hh"

namespace xser::core {

/**
 * Golden-reference store and outcome classifier.
 */
class ControlPc
{
  public:
    /** Record the golden reference for a workload. */
    void setGolden(const std::string &workload,
                   const workloads::WorkloadOutput &output);

    /** True when a golden reference exists for the workload. */
    bool hasGolden(const std::string &workload) const;

    /** Golden signature (fatal when missing -- harness bug). */
    const std::vector<uint64_t> &golden(const std::string &workload) const;

    /**
     * Classify one run.
     *
     * @param workload Workload name.
     * @param output What the run produced.
     * @param logic_events Sampled core-logic events of the run.
     * @param ce_logged A corrected-error report occurred this run.
     * @param fluence Fluence delivered during the run.
     * @param duration Simulated run time.
     * @param upsets EDAC events during the run.
     */
    RunRecord classify(const std::string &workload,
                       const workloads::WorkloadOutput &output,
                       const LogicEvents &logic_events, bool ce_logged,
                       double fluence, Tick duration,
                       uint64_t upsets) const;

    /**
     * Event tallies implied by one run (counts every sampled event,
     * keeping rate estimates unbiased even when several events land in
     * one run; an organic mismatch adds one SDC).
     */
    EventCounts eventsOf(const RunRecord &record,
                         const LogicEvents &logic_events) const;

    /**
     * Serialize the golden store (the map is ordered, so iteration is
     * deterministic by construction).
     */
    void
    snapshot(SnapshotWriter &writer) const
    {
        writer.u64(golden_.size());
        for (const auto &[name, signature] : golden_) {
            writer.str(name);
            writer.u64Vector(signature);
        }
    }

    /** Restore a golden store captured by snapshot(). */
    void
    restore(SnapshotReader &reader)
    {
        golden_.clear();
        const uint64_t entries = reader.u64();
        for (uint64_t i = 0; i < entries; ++i) {
            std::string name = reader.str();
            reader.u64Vector(golden_[std::move(name)]);
        }
    }

  private:
    std::map<std::string, std::vector<uint64_t>> golden_;
};

} // namespace xser::core

#endif // XSER_CORE_CONTROL_PC_HH
