/**
 * @file
 * TestSession implementation.
 */

#include "core/test_session.hh"

#include <algorithm>
#include <cassert>
#include <map>

#include "core/control_pc.hh"
#include "core/logic_susceptibility.hh"
#include "rad/fit_math.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "workloads/workload.hh"

namespace xser::core {

SessionConfig::SessionConfig()
    : point(volt::nominalPoint()),
      workloadNames(workloads::suiteNames())
{
    /*
     * Patrol scrub: L2 only. The paper's observed rates (~1 upset/min
     * against its own ~12/min raw estimate, Section 3.3) imply most
     * detection is demand-driven; in this model the L3's detection
     * comes from the streaming working set re-reading resident lines,
     * while L2 lines are usually evicted clean (unread) before any
     * re-reference -- a light L2 patrol scrub supplies the residual
     * detection the EDAC logs show. bench_ablation_scrub sweeps this.
     */
    scrub.enabled = true;
    scrub.l3Enabled = false;
    scrub.l2PassPeriod = ticks::fromSeconds(1300e-6);
}

double
WorkloadSessionStats::equivalentMinutes(double beam_flux_per_second) const
{
    if (beam_flux_per_second <= 0.0)
        return 0.0;
    return fluence / (beam_flux_per_second * 60.0);
}

double
WorkloadSessionStats::upsetsPerMinute(double beam_flux_per_second) const
{
    const double minutes = equivalentMinutes(beam_flux_per_second);
    return minutes > 0.0
        ? static_cast<double>(upsetsDetected) / minutes : 0.0;
}

double
SessionResult::equivalentMinutes() const
{
    if (beamFluxPerSecond <= 0.0)
        return 0.0;
    return fluence / (beamFluxPerSecond * 60.0);
}

double
SessionResult::nycYearsEquivalent() const
{
    return rad::nycYearsEquivalent(fluence);
}

double
SessionResult::errorsPerMinute() const
{
    const double minutes = equivalentMinutes();
    return minutes > 0.0
        ? static_cast<double>(events.total()) / minutes : 0.0;
}

double
SessionResult::upsetsPerMinute() const
{
    const double minutes = equivalentMinutes();
    return minutes > 0.0
        ? static_cast<double>(upsetsDetected) / minutes : 0.0;
}

double
SessionResult::memorySerFitPerMbit() const
{
    if (fluence <= 0.0 || totalSramBits == 0)
        return 0.0;
    return rad::fitPerMbit(upsetsDetected, fluence, totalSramBits);
}

TestSession::TestSession(cpu::XGene2Platform *platform,
                         const SessionConfig &config)
    : platform_(platform), config_(config)
{
    XSER_ASSERT(platform_ != nullptr, "session needs a platform");
    if (config_.workloadNames.empty())
        fatal("session needs at least one workload");
    if (config_.fluencePerRun <= 0.0)
        fatal("fluence per run must be positive");
}

SessionResult
TestSession::execute()
{
    runPrefix();
    return runContinuation();
}

void
TestSession::runPrefix()
{
    XSER_ASSERT(!prefixReady_, "session prefix already ran");
    auto &platform = *platform_;
    auto &memory = platform.memory();
    auto &edac = platform.edac();

    platform.applyOperatingPoint(config_.point);
    edac.clear();
    memory.clearDeliveryCounters();
    memory.clearCycles();

    mem::ScrubberConfig scrub_config = config_.scrub;
    // The scrub engine shares the PMD clock: its wall-time pass rate
    // tracks the core frequency (keeps detection efficiency per unit
    // fluence frequency-consistent, cf. Fig. 7's L2 level).
    scrub_config.clockScale = config_.point.frequencyHz / 2.4e9;
    scrubber_ = std::make_unique<mem::Scrubber>(scrub_config, &memory);

    // The prefix quantum hook: no beam exists yet (the golden phase is
    // beam-off by definition), but clock, scrubber, and front-end
    // traffic advance exactly as in the measured phase.
    auto quantum = [&]() {
        const uint64_t cycles = memory.cyclesAccumulated();
        memory.clearCycles();
        const Tick elapsed = platform.advanceForCycles(cycles);
        scrubber_->advance(elapsed);
        platform.driveFrontEnd(config_.quantumAccesses /
                               platform.numCores());
    };

    // Build the suite and record golden references (beam off).
    //
    // Determinism note (the checkpoint contract rests on this): nothing
    // in this loop consumes the session seed. Workload setup is a pure
    // function of the workload name; the scrubber and front-end streams
    // advance from configuration-seeded state (chipSeed); the session's
    // own RNGs are not constructed until runContinuation(). One prefix
    // therefore serves every replicate seed.
    for (const auto &name : config_.workloadNames) {
        suite_.push_back(workloads::makeWorkload(name));
        auto &workload = *suite_.back();
        workloads::RunContext ctx(&memory, quantum,
                                  config_.quantumAccesses);
        platform.setWorkloadFootprint(
            workload.traits().codeFootprintWords,
            workload.traits().tlbFootprintEntries);
        workload.setUp(ctx);
        const Tick start = platform.clock().now();
        workloads::WorkloadOutput golden = workload.run(ctx);
        quantum();  // flush residual cycles into the clock
        control_.setGolden(name, golden);
        runSeconds_.push_back(
            ticks::toSeconds(platform.clock().now() - start));
        activitySum_ += workload.traits().activityFactor;
    }

    // Drop the warm cache state the setup/golden phase left behind:
    // the freshly written datasets would otherwise sit L3-resident and
    // distort early-session detection rates.
    memory.flushAll();
    prefixReady_ = true;
}

void
TestSession::snapshotPrefix(SnapshotWriter &writer) const
{
    XSER_ASSERT(prefixReady_, "snapshotPrefix needs a completed prefix");
    platform_->snapshot(writer);
    scrubber_->snapshot(writer);
    writer.u64(suite_.size());
    for (const auto &workload : suite_)
        workload->snapshot(writer);
    for (const double seconds : runSeconds_)
        writer.f64(seconds);
    writer.f64(activitySum_);
    control_.snapshot(writer);
}

void
TestSession::restorePrefix(SnapshotReader &reader)
{
    XSER_ASSERT(!prefixReady_, "session prefix already ran");
    auto &platform = *platform_;
    auto &memory = platform.memory();
    auto &edac = platform.edac();

    // Mirror runPrefix()'s entry: the operating point must be applied
    // before restore so the clock frequency and domain voltages match
    // the snapshotted run (the platform snapshot carries the clock's
    // *position*, not its rate). The EDAC reporter is provably empty at
    // the seam (no beam ran), so it is cleared rather than serialized.
    platform.applyOperatingPoint(config_.point);
    edac.clear();
    memory.clearDeliveryCounters();

    platform.restore(reader);

    mem::ScrubberConfig scrub_config = config_.scrub;
    scrub_config.clockScale = config_.point.frequencyHz / 2.4e9;
    scrubber_ = std::make_unique<mem::Scrubber>(scrub_config, &memory);
    scrubber_->restore(reader);

    const uint64_t workloads = reader.u64();
    XSER_ASSERT(workloads == config_.workloadNames.size(),
                "snapshot workload count mismatch restoring session");
    for (const auto &name : config_.workloadNames) {
        suite_.push_back(workloads::makeWorkload(name));
        suite_.back()->restore(reader, memory);
    }
    runSeconds_.resize(suite_.size());
    for (double &seconds : runSeconds_)
        seconds = reader.f64();
    activitySum_ = reader.f64();
    control_.restore(reader);
    prefixReady_ = true;
}

SessionResult
TestSession::runContinuation()
{
    XSER_ASSERT(prefixReady_,
                "runContinuation needs a prefix (run or restored)");
    prefixReady_ = false;  // single-shot: the run consumes the prefix
    auto &platform = *platform_;
    auto &memory = platform.memory();
    auto &edac = platform.edac();
    auto &suite = suite_;
    auto &run_seconds = runSeconds_;
    ControlPc &control = control_;

    // Attach (or detach, when null) the lifecycle trace sink. The
    // prefix emits no events -- no corruption exists beam-off, and
    // clean scrubs/reads record nothing -- so attaching here observes
    // exactly what attaching before the prefix would have.
    trace::TraceSink *trace_sink = config_.traceSink;
    memory.setTraceSink(trace_sink);
    edac.setTraceSink(trace_sink);

    Rng session_rng(config_.seed);
    Rng logic_rng = session_rng.fork("logic");

    // Radiation machinery. The beam is built here, not in the prefix:
    // its RNG streams derive from the (replicate-specific) session
    // seed, and construction itself touches no platform state, so a
    // restored prefix forks into any number of distinct continuations.
    rad::CrossSectionModel xsection;
    {
        const auto &cal = sessionCalibration();
        auto tune = [&xsection](mem::CacheLevel level, double sigma0) {
            rad::ArraySensitivity s = xsection.sensitivity(level);
            s.sigma0Cm2PerBit = sigma0;
            xsection.setSensitivity(level, s);
        };
        tune(mem::CacheLevel::Tlb, cal.sigma0Tlb);
        tune(mem::CacheLevel::L1, cal.sigma0L1);
        tune(mem::CacheLevel::L2, cal.sigma0L2);
        tune(mem::CacheLevel::L3, cal.sigma0L3);
    }
    rad::MbuModel mbu;
    rad::BeamConfig beam_config = config_.beam;
    beam_config.seed ^= config_.seed;
    rad::BeamSource beam(beam_config, &xsection, &mbu,
                         memory.beamTargets());
    beam.setVoltages(config_.point.pmdVolts(), config_.point.socVolts());

    mem::Scrubber &scrubber = *scrubber_;
    LogicSusceptibilityModel logic(&platform.timing());

    // The quantum hook: convert accumulated access cycles into elapsed
    // simulated time, then deliver beam, scrub, and front-end traffic
    // for that interval.
    bool beam_on = false;
    auto quantum = [&]() {
        const uint64_t cycles = memory.cyclesAccumulated();
        memory.clearCycles();
        const Tick elapsed = platform.advanceForCycles(cycles);
        if (beam_on)
            beam.advance(elapsed);
        scrubber.advance(elapsed);
        platform.driveFrontEnd(config_.quantumAccesses /
                               platform.numCores());
    };

    // Warm-up: run the suite under beam without counting anything, so
    // the latent-flip population and cache churn reach their steady
    // state before measurement begins (see SessionConfig::warmupRounds).
    beam_on = true;
    for (unsigned round = 0; round < config_.warmupRounds; ++round) {
        for (size_t slot = 0; slot < suite.size(); ++slot) {
            auto &workload = *suite[slot];
            const auto &traits = workload.traits();
            beam.setTimeScale(
                config_.fluencePerRun *
                (2.4e9 / config_.point.frequencyHz) /
                (beam_config.environment.neutronsPerCm2PerSecond *
                 std::max(run_seconds[slot], 1e-9)));
            platform.setWorkloadFootprint(traits.codeFootprintWords,
                                          traits.tlbFootprintEntries);
            const Tick start = platform.clock().now();
            workloads::RunContext ctx(&memory, quantum,
                                      config_.quantumAccesses);
            workload.run(ctx);
            quantum();
            run_seconds[slot] =
                0.5 * run_seconds[slot] +
                0.5 * ticks::toSeconds(platform.clock().now() - start);
        }
    }
    edac.clear();
    beam.clearCounters();
    memory.clearDeliveryCounters();
    // The trace must cover exactly the measured phase the EDAC tallies
    // cover, or the cross-check below would be vacuous.
    if (trace_sink != nullptr)
        trace_sink->clear();

    SessionResult result;
    result.point = config_.point;
    result.beamFluxPerSecond =
        beam_config.environment.neutronsPerCm2PerSecond;
    result.totalSramBits = memory.totalSramBits();
    result.avgPowerWatts = platform.currentPowerWatts(
        activitySum_ / static_cast<double>(suite.size()));

    std::map<std::string, WorkloadSessionStats> per_workload;
    for (const auto &name : config_.workloadNames)
        per_workload[name].name = name;

    // Beam phase: every workload runs once per round, in an order
    // reshuffled each round. Detection of latent upsets is bursty --
    // the run after a light (low-churn, low-read) benchmark inherits a
    // burst of the accumulated debt -- so a fixed rotation would bias
    // per-benchmark attribution systematically; shuffling turns the
    // bias into noise that averages out (Fig. 5).
    beam_on = true;
    Rng order_rng = session_rng.fork("order");
    std::vector<size_t> order(suite.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    size_t position = order.size();  // force a shuffle on first use
    while (result.runs < config_.maxRuns &&
           result.events.total() < config_.maxErrorEvents &&
           result.fluence < config_.maxFluence) {
        if (position >= order.size()) {
            for (size_t i = order.size(); i > 1; --i)
                std::swap(order[i - 1],
                          order[order_rng.nextBounded(i)]);
            position = 0;
        }
        const size_t slot = order[position++];
        auto &workload = *suite[slot];
        const auto &traits = workload.traits();
        const double expected_seconds = run_seconds[slot];

        // Retune the acceleration so a 2.4 GHz-reference run receives
        // the target fluence. A slower clock stretches the run and
        // soaks proportionally more beam, exactly as on real hardware,
        // so the target scales with 2.4 GHz / f.
        const double fluence_target =
            config_.fluencePerRun * (2.4e9 / config_.point.frequencyHz);
        beam.setTimeScale(
            fluence_target /
            (beam_config.environment.neutronsPerCm2PerSecond *
             std::max(expected_seconds, 1e-9)));

        platform.setWorkloadFootprint(traits.codeFootprintWords,
                                      traits.tlbFootprintEntries);

        const double fluence_before = beam.fluence();
        const uint64_t upsets_before = edac.totalUpsets();
        const uint64_t corrected_before = edac.totalCorrected();
        const Tick start = platform.clock().now();

        workloads::RunContext ctx(&memory, quantum,
                                  config_.quantumAccesses);
        workloads::WorkloadOutput output = workload.run(ctx);
        quantum();  // flush the tail of the run

        const double run_fluence = beam.fluence() - fluence_before;
        const Tick run_duration = platform.clock().now() - start;
        const uint64_t run_upsets = edac.totalUpsets() - upsets_before;
        // Track the run length adaptively: the golden run is cold
        // (cache fills inflate it), so fold in the measured warm
        // durations to keep fluence-per-run on target.
        run_seconds[slot] = 0.5 * run_seconds[slot] +
                            0.5 * ticks::toSeconds(run_duration);
        const bool ce_logged =
            edac.totalCorrected() > corrected_before;

        const LogicEvents logic_events = logic.sampleRun(
            config_.point.pmdVolts(), config_.point.frequencyHz,
            run_fluence, traits, logic_rng);

        RunRecord record = control.classify(
            traits.name, output, logic_events, ce_logged,
            run_fluence, run_duration, run_upsets);
        const EventCounts run_events =
            control.eventsOf(record, logic_events);

        if (trace_sink != nullptr) {
            // Close the lifecycle: one record per classified run.
            // word = suite slot, bit = RunOutcome, aux = flag bits.
            const uint64_t flags =
                (record.withCeNotification ? 1u : 0u) |
                (record.trappedOrganically ? 2u : 0u) |
                (record.signatureMismatch ? 4u : 0u);
            trace_sink->record(
                {trace::EventType::OutcomeClassified,
                 platform.clock().now(), trace::noArray,
                 static_cast<uint64_t>(slot),
                 static_cast<uint32_t>(record.outcome), flags});
        }

        result.events.merge(run_events);
        result.fluence += run_fluence;
        result.duration += run_duration;
        ++result.runs;

        auto &stats = per_workload[traits.name];
        ++stats.runs;
        stats.fluence += run_fluence;
        stats.duration += run_duration;
        stats.upsetsDetected += run_upsets;
        stats.events.merge(run_events);
    }

    for (size_t level = 0; level < mem::numCacheLevels; ++level)
        result.edac[level] =
            edac.tally(static_cast<mem::CacheLevel>(level));
    result.upsetsDetected = edac.totalUpsets();
    result.rawUpsetEvents = beam.upsetEvents();
    for (auto &[name, stats] : per_workload)
        result.perWorkload.push_back(stats);

    // Debug-build cross-check: every EDAC tally must have a matching
    // hardware-visible detection record in the trace.
    assert(edac.consistentWithTrace());

    // Detach before the platform is reused: a later untraced session
    // must not write into this session's (possibly dead) sink.
    memory.setTraceSink(nullptr);
    edac.setTraceSink(nullptr);
    return result;
}

} // namespace xser::core
