/**
 * @file
 * CSV export implementation.
 */

#include "core/report_export.hh"

#include <cstdio>
#include <sstream>

#include "core/fit_calculator.hh"
#include "sim/logging.hh"

namespace xser::core {

namespace {

/** CSV-safe formatting for doubles (full precision, no locale). */
std::string
num(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.9g", value);
    return buffer;
}

} // namespace

std::string
sessionsToCsv(const std::vector<SessionResult> &sessions)
{
    std::ostringstream os;
    os << "pmd_mv,soc_mv,frequency_hz,runs,fluence_ncm2,"
          "equivalent_minutes,nyc_years,upsets,upsets_per_min,"
          "ser_fit_per_mbit,sdc_silent,sdc_notified,app_crash,"
          "sys_crash,errors_total,sdc_fit,sdc_fit_lo,sdc_fit_hi,"
          "total_fit,total_fit_lo,total_fit_hi,avg_power_w\n";
    for (const auto &session : sessions) {
        const FitBreakdown fit = FitCalculator::breakdown(session);
        os << num(session.point.pmdMillivolts) << ','
           << num(session.point.socMillivolts) << ','
           << num(session.point.frequencyHz) << ','
           << session.runs << ','
           << num(session.fluence) << ','
           << num(session.equivalentMinutes()) << ','
           << num(session.nycYearsEquivalent()) << ','
           << session.upsetsDetected << ','
           << num(session.upsetsPerMinute()) << ','
           << num(session.memorySerFitPerMbit()) << ','
           << session.events.sdcSilent << ','
           << session.events.sdcNotified << ','
           << session.events.appCrash << ','
           << session.events.sysCrash << ','
           << session.events.total() << ','
           << num(fit.sdc.fit) << ',' << num(fit.sdc.ci.lower) << ','
           << num(fit.sdc.ci.upper) << ','
           << num(fit.total.fit) << ',' << num(fit.total.ci.lower)
           << ',' << num(fit.total.ci.upper) << ','
           << num(session.avgPowerWatts) << '\n';
    }
    return os.str();
}

std::string
workloadSlicesToCsv(const std::vector<SessionResult> &sessions)
{
    std::ostringstream os;
    os << "pmd_mv,frequency_hz,workload,runs,fluence_ncm2,upsets,"
          "upsets_per_min,sdc,app_crash,sys_crash\n";
    for (const auto &session : sessions) {
        for (const auto &stats : session.perWorkload) {
            os << num(session.point.pmdMillivolts) << ','
               << num(session.point.frequencyHz) << ','
               << stats.name << ','
               << stats.runs << ','
               << num(stats.fluence) << ','
               << stats.upsetsDetected << ','
               << num(stats.upsetsPerMinute(
                      session.beamFluxPerSecond)) << ','
               << stats.events.sdcTotal() << ','
               << stats.events.appCrash << ','
               << stats.events.sysCrash << '\n';
        }
    }
    return os.str();
}

std::string
edacLevelsToCsv(const std::vector<SessionResult> &sessions)
{
    std::ostringstream os;
    os << "pmd_mv,frequency_hz,level,corrected,uncorrected,"
          "corrected_per_min,uncorrected_per_min\n";
    for (const auto &session : sessions) {
        const double minutes = session.equivalentMinutes();
        for (size_t level = 0; level < mem::numCacheLevels; ++level) {
            const auto &tally = session.edac[level];
            os << num(session.point.pmdMillivolts) << ','
               << num(session.point.frequencyHz) << ','
               << mem::cacheLevelName(
                      static_cast<mem::CacheLevel>(level)) << ','
               << tally.corrected << ',' << tally.uncorrected << ','
               << num(minutes > 0
                          ? static_cast<double>(tally.corrected) /
                                minutes : 0.0) << ','
               << num(minutes > 0
                          ? static_cast<double>(tally.uncorrected) /
                                minutes : 0.0) << '\n';
        }
    }
    return os.str();
}

std::string
sweepToCsv(const volt::VminSweepResult &sweep)
{
    std::ostringstream os;
    os << "millivolts,runs,failures,pfail\n";
    for (const auto &step : sweep.steps) {
        os << num(step.millivolts) << ',' << step.runs << ','
           << step.failures << ',' << num(step.pfail) << '\n';
    }
    return os.str();
}

void
writeFile(const std::string &path, const std::string &contents)
{
    std::FILE *file = std::fopen(path.c_str(), "w");
    if (file == nullptr)
        fatal(msg("cannot open '", path, "' for writing"));
    const size_t written =
        std::fwrite(contents.data(), 1, contents.size(), file);
    std::fclose(file);
    if (written != contents.size())
        fatal(msg("short write to '", path, "'"));
}

} // namespace xser::core
