/**
 * @file
 * Machine-readable exports of campaign results (CSV), so downstream
 * analysis (plotting the figures, regression tracking across runs)
 * does not have to scrape the human-readable tables.
 */

#ifndef XSER_CORE_REPORT_EXPORT_HH
#define XSER_CORE_REPORT_EXPORT_HH

#include <string>
#include <vector>

#include "core/test_session.hh"
#include "volt/vmin_characterizer.hh"

namespace xser::core {

/**
 * Sessions as CSV: one row per session with the Table 2 columns plus
 * per-category event counts and FIT estimates (with 95 % CI bounds).
 */
std::string sessionsToCsv(const std::vector<SessionResult> &sessions);

/**
 * Per-workload slices as CSV: one row per (session, workload) with
 * runs, fluence, upsets, and event counts (the Fig. 5 raw data).
 */
std::string workloadSlicesToCsv(
    const std::vector<SessionResult> &sessions);

/**
 * Per-level EDAC tallies as CSV: one row per (session, level) with
 * corrected/uncorrected counts and per-minute rates (Figs. 6/7).
 */
std::string edacLevelsToCsv(const std::vector<SessionResult> &sessions);

/** A Vmin sweep as CSV (Fig. 4's raw data). */
std::string sweepToCsv(const volt::VminSweepResult &sweep);

/** Write a string to a file (fatal on I/O failure). */
void writeFile(const std::string &path, const std::string &contents);

} // namespace xser::core

#endif // XSER_CORE_REPORT_EXPORT_HH
