/**
 * @file
 * EnergyReliabilityAnalyzer implementation.
 */

#include "core/tradeoff.hh"

#include <algorithm>
#include <cmath>

#include "rad/fit_math.hh"
#include "sim/logging.hh"

namespace xser::core {

EnergyReliabilityAnalyzer::EnergyReliabilityAnalyzer(
    const volt::PowerModel *power, const LogicSusceptibilityModel *logic,
    const TradeoffConfig &config)
    : power_(power), logic_(logic), config_(config)
{
    XSER_ASSERT(power_ != nullptr, "analyzer needs a power model");
    XSER_ASSERT(logic_ != nullptr, "analyzer needs a logic model");
    if (config_.devices < 1.0)
        fatal("fleet needs at least one device");
    if (config_.checkpointSeconds <= 0.0)
        fatal("checkpoint cost must be positive");
}

TradeoffPoint
EnergyReliabilityAnalyzer::evaluate(
    const volt::OperatingPoint &point) const
{
    TradeoffPoint out;
    out.point = point;
    out.powerWatts = power_->totalWatts(point);

    const LogicDcs dcs =
        logic_->rates(point.pmdVolts(), point.frequencyHz);
    const double flux_hour = config_.environment.perHour();

    // Crash channel: restartable, so checkpointing applies.
    out.crashFit =
        rad::fitFromDcs(dcs.appCrash + dcs.sysCrash, flux_hour);
    const double fleet_crash_per_hour = out.crashFit * 1e-9 *
                                        config_.devices *
                                        config_.utilization;
    out.fleetCrashMtbfHours =
        fleet_crash_per_hour > 0.0 ? 1.0 / fleet_crash_per_hour : 1e18;

    // Young's optimal checkpoint interval and first-order waste.
    const double delta_hours = config_.checkpointSeconds / 3600.0;
    out.optimalCheckpointHours =
        std::sqrt(2.0 * delta_hours * out.fleetCrashMtbfHours);
    out.wasteFraction =
        delta_hours / out.optimalCheckpointHours +
        out.optimalCheckpointHours / (2.0 * out.fleetCrashMtbfHours);
    out.wasteFraction = std::min(out.wasteFraction, 1.0);

    out.usefulWorkPerJoule =
        (1.0 - out.wasteFraction) / std::max(out.powerWatts, 1e-9);

    // SDC channel: silent, cannot be recovered by checkpointing.
    const double sdc_fit =
        rad::fitFromDcs(dcs.sdcSilent + dcs.sdcNotified, flux_hour);
    out.sdcIncidentsPerYear = rad::expectedFailures(
        sdc_fit, config_.devices * config_.utilization, 24.0 * 365.0);

    out.energyPerYearMwh = out.powerWatts * config_.devices *
                           config_.utilization * 24.0 * 365.0 / 1e6;
    return out;
}

std::vector<TradeoffPoint>
EnergyReliabilityAnalyzer::ladder(double stop_millivolts) const
{
    std::vector<TradeoffPoint> points;
    for (double pmd = 980.0; pmd >= stop_millivolts - 0.5; pmd -= 10.0) {
        const double soc =
            std::max(920.0, 950.0 - (980.0 - pmd) / 2.0);
        volt::OperatingPoint point{"ladder", pmd,
                                   5.0 * std::round(soc / 5.0), 2.4e9};
        point.name = point.label();
        points.push_back(evaluate(point));
    }
    return points;
}

TradeoffPoint
EnergyReliabilityAnalyzer::bestUnderSdcBudget(
    double max_sdc_per_year) const
{
    const std::vector<TradeoffPoint> points = ladder();
    XSER_ASSERT(!points.empty(), "empty ladder");
    const TradeoffPoint *best = nullptr;
    for (const auto &candidate : points) {
        if (candidate.sdcIncidentsPerYear > max_sdc_per_year)
            continue;
        if (best == nullptr ||
            candidate.usefulWorkPerJoule > best->usefulWorkPerJoule) {
            best = &candidate;
        }
    }
    // Nothing meets the budget: the nominal point is the fallback
    // (tightest SDC rate on the ladder).
    return best != nullptr ? *best : points.front();
}

} // namespace xser::core
