/**
 * @file
 * Run-manifest assembly: turns a campaign's merged aggregates and the
 * telemetry registry into the versioned JSON manifest `--metrics`
 * writes (schema "xser-run-manifest", see telemetry/manifest.hh).
 */

#ifndef XSER_CORE_RUN_MANIFEST_HH
#define XSER_CORE_RUN_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/parallel_campaign.hh"
#include "telemetry/manifest.hh"

namespace xser::core {

/** Deterministic identification of one run (the "run" section). */
struct ManifestRunInfo {
    std::string tool;         ///< e.g. "xser campaign"
    uint64_t configHash = 0;  ///< campaignConfigHash of the config
    uint64_t seed = 0;
    double scale = -1.0;      ///< stop-criteria scale; <0 = omit
    unsigned sessions = 0;
    unsigned replicates = 1;
    bool fastpath = true;
    bool checkpoint = true;
};

/**
 * Render the full manifest document. Everything outside "timing" is a
 * pure function of (config, seed): bit-identical across repeated runs
 * and any --jobs. `registry` may be null (sections emit zero shards'
 * worth of data); `jobs`/`elapsed_seconds` land under "timing" only.
 */
std::string
renderRunManifest(const ManifestRunInfo &info,
                  const std::vector<SessionAggregate> &sessions,
                  const telemetry::MetricRegistry *registry,
                  unsigned jobs, double elapsed_seconds);

/** Write `text` to `path`; fatal on I/O failure. */
void writeManifestFile(const std::string &path,
                       const std::string &text);

} // namespace xser::core

#endif // XSER_CORE_RUN_MANIFEST_HH
