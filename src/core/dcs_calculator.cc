/**
 * @file
 * DcsCalculator implementation.
 */

#include "core/dcs_calculator.hh"

#include "sim/logging.hh"

namespace xser::core {

DcsEstimate
DcsCalculator::estimate(uint64_t events, double fluence,
                        double confidence)
{
    DcsEstimate result;
    result.events = events;
    result.fluence = fluence;
    if (fluence <= 0.0)
        return result;
    result.dcs = static_cast<double>(events) / fluence;
    result.ci = scaleInterval(
        poissonConfidenceInterval(events, confidence), fluence);
    return result;
}

DcsBreakdown
DcsCalculator::breakdown(const SessionResult &session, double confidence)
{
    return fromCounts(session.events, session.upsetsDetected,
                      session.fluence, confidence);
}

DcsBreakdown
DcsCalculator::fromCounts(const EventCounts &events,
                          uint64_t upsets_detected, double fluence,
                          double confidence)
{
    DcsBreakdown breakdown;
    breakdown.sdc = estimate(events.sdcTotal(), fluence, confidence);
    breakdown.sdcSilent =
        estimate(events.sdcSilent, fluence, confidence);
    breakdown.sdcNotified =
        estimate(events.sdcNotified, fluence, confidence);
    breakdown.appCrash = estimate(events.appCrash, fluence, confidence);
    breakdown.sysCrash = estimate(events.sysCrash, fluence, confidence);
    breakdown.total = estimate(events.total(), fluence, confidence);
    breakdown.memoryUpsets =
        estimate(upsets_detected, fluence, confidence);
    return breakdown;
}

DcsBreakdown
DcsCalculator::pooled(const std::vector<SessionResult> &replicas,
                      double confidence)
{
    EventCounts events;
    uint64_t upsets = 0;
    double fluence = 0.0;
    for (const auto &session : replicas) {
        events.merge(session.events);
        upsets += session.upsetsDetected;
        fluence += session.fluence;
    }
    return fromCounts(events, upsets, fluence, confidence);
}

} // namespace xser::core
