/**
 * @file
 * DcsCalculator implementation.
 */

#include "core/dcs_calculator.hh"

#include "sim/logging.hh"

namespace xser::core {

DcsEstimate
DcsCalculator::estimate(uint64_t events, double fluence,
                        double confidence)
{
    DcsEstimate result;
    result.events = events;
    result.fluence = fluence;
    if (fluence <= 0.0)
        return result;
    result.dcs = static_cast<double>(events) / fluence;
    result.ci = scaleInterval(
        poissonConfidenceInterval(events, confidence), fluence);
    return result;
}

DcsBreakdown
DcsCalculator::breakdown(const SessionResult &session, double confidence)
{
    DcsBreakdown breakdown;
    const double fluence = session.fluence;
    breakdown.sdc =
        estimate(session.events.sdcTotal(), fluence, confidence);
    breakdown.sdcSilent =
        estimate(session.events.sdcSilent, fluence, confidence);
    breakdown.sdcNotified =
        estimate(session.events.sdcNotified, fluence, confidence);
    breakdown.appCrash =
        estimate(session.events.appCrash, fluence, confidence);
    breakdown.sysCrash =
        estimate(session.events.sysCrash, fluence, confidence);
    breakdown.total =
        estimate(session.events.total(), fluence, confidence);
    breakdown.memoryUpsets =
        estimate(session.upsetsDetected, fluence, confidence);
    return breakdown;
}

} // namespace xser::core
