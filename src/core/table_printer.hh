/**
 * @file
 * Minimal aligned-column table formatter used by the campaign reports
 * and the bench binaries.
 */

#ifndef XSER_CORE_TABLE_PRINTER_HH
#define XSER_CORE_TABLE_PRINTER_HH

#include <string>
#include <vector>

namespace xser::core {

/**
 * Accumulates rows and renders an aligned ASCII table.
 */
class TablePrinter
{
  public:
    /** @param headers Column headers (fixes the column count). */
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row (padded/truncated to the column count). */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns and a header rule. */
    std::string toString() const;

    /** Format a double with fixed precision. */
    static std::string fmt(double value, int precision = 3);

    /** Format a double in scientific notation. */
    static std::string sci(double value, int precision = 2);

    /** Format a percentage. */
    static std::string pct(double fraction, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace xser::core

#endif // XSER_CORE_TABLE_PRINTER_HH
