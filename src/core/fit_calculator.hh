/**
 * @file
 * FIT-rate estimates (Eq. 2) with confidence intervals, per outcome
 * category, from session results -- the numbers behind Figs. 11-13.
 */

#ifndef XSER_CORE_FIT_CALCULATOR_HH
#define XSER_CORE_FIT_CALCULATOR_HH

#include "core/test_session.hh"
#include "stats/poisson_ci.hh"

namespace xser::core {

/** One FIT estimate at NYC sea level. */
struct FitEstimate {
    uint64_t events = 0;
    double fit = 0.0;
    PoissonInterval ci{0.0, 0.0};
};

/** Per-category FIT estimates of a session (Fig. 11's bars). */
struct FitBreakdown {
    FitEstimate appCrash;
    FitEstimate sysCrash;
    FitEstimate sdc;
    FitEstimate total;
    FitEstimate sdcSilent;    ///< Fig. 12 "w/o any hardware notification"
    FitEstimate sdcNotified;  ///< Fig. 12 "w/ corrected error notification"
};

/**
 * Computes Eq. 2 estimates from session results.
 */
class FitCalculator
{
  public:
    /** FIT from an event count over a fluence. */
    static FitEstimate estimate(uint64_t events, double fluence,
                                double confidence = 0.95);

    /** All categories of one session. */
    static FitBreakdown breakdown(const SessionResult &session,
                                  double confidence = 0.95);

    /**
     * Mergeable variant: all categories from already-merged event
     * tallies over a pooled fluence (exact Poisson pooling).
     */
    static FitBreakdown fromCounts(const EventCounts &events,
                                   double fluence,
                                   double confidence = 0.95);

    /**
     * Pool replicate sessions of the same operating point (summed
     * events over summed fluence) and estimate once.
     */
    static FitBreakdown pooled(const std::vector<SessionResult> &replicas,
                               double confidence = 0.95);
};

} // namespace xser::core

#endif // XSER_CORE_FIT_CALCULATOR_HH
