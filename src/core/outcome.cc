/**
 * @file
 * Outcome helpers.
 */

#include "core/outcome.hh"

namespace xser::core {

const char *
runOutcomeName(RunOutcome outcome)
{
    switch (outcome) {
      case RunOutcome::Success: return "Success";
      case RunOutcome::Sdc: return "SDC";
      case RunOutcome::AppCrash: return "AppCrash";
      case RunOutcome::SysCrash: return "SysCrash";
    }
    return "unknown";
}

} // namespace xser::core
