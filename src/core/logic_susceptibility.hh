/**
 * @file
 * Statistical susceptibility model of the unprotected core logic.
 *
 * The paper can only observe SRAM upsets (via EDAC); SDCs and crashes
 * largely originate in state no protection scheme reports -- pipeline
 * flops, register files, control logic (Design Implication #4). We
 * model that layer statistically: per-category chip-level dynamic
 * cross sections as a function of the PMD voltage's remaining slack to
 * the voltage cliff:
 *
 *     DCS(V, f) = base + cliff(f) * exp(-(V - Vcliff(f)) / tau)
 *
 * A radiation-induced transient is latched only if it lands within the
 * path's remaining timing slack; as V approaches the cliff the slack
 * vanishes and the capture probability explodes -- which is exactly
 * the >16x SDC blow-up the paper measured 20 mV above complete failure.
 * At 900 MHz the cliff is the SRAM stability floor and the cycle is
 * 2.7x longer, so the coupling is far weaker (Observation #6).
 */

#ifndef XSER_CORE_LOGIC_SUSCEPTIBILITY_HH
#define XSER_CORE_LOGIC_SUSCEPTIBILITY_HH

#include <cstdint>

#include "core/calibration.hh"
#include "volt/timing_model.hh"
#include "workloads/workload.hh"

namespace xser {
class Rng;
} // namespace xser

namespace xser::core {

/** Chip-level dynamic cross sections per outcome category (cm^2). */
struct LogicDcs {
    double sdcSilent;    ///< SDC with no hardware notification
    double sdcNotified;  ///< SDC coinciding with a CE report
    double appCrash;
    double sysCrash;

    double total() const
    {
        return sdcSilent + sdcNotified + appCrash + sysCrash;
    }
};

/** Events sampled for one run. */
struct LogicEvents {
    uint64_t sdcSilent = 0;
    uint64_t sdcNotified = 0;
    uint64_t appCrash = 0;
    uint64_t sysCrash = 0;

    bool any() const
    {
        return sdcSilent + sdcNotified + appCrash + sysCrash > 0;
    }
};

/**
 * Computes and samples core-logic outcome rates.
 */
class LogicSusceptibilityModel
{
  public:
    /**
     * @param timing Cliff model providing Vcliff(f) (not owned).
     * @param calibration Fitted constants.
     */
    LogicSusceptibilityModel(const volt::TimingModel *timing,
                             const LogicCalibration &calibration =
                                 logicCalibration());

    /** Per-category DCS at a PMD voltage and core frequency. */
    LogicDcs rates(double pmd_volts, double frequency_hz) const;

    /**
     * Sample the logic-layer events of one run.
     *
     * @param pmd_volts PMD supply during the run.
     * @param frequency_hz Core clock.
     * @param fluence Fluence delivered during the run (n/cm^2).
     * @param traits Workload AVF-style weights.
     * @param rng Stream to draw from.
     */
    LogicEvents sampleRun(double pmd_volts, double frequency_hz,
                          double fluence,
                          const workloads::WorkloadTraits &traits,
                          Rng &rng) const;

  private:
    /** Cliff-coupling factor exp(-slack/tau), clamped at slack <= 0. */
    double cliffFactor(double pmd_volts, double frequency_hz,
                       double tau) const;

    const volt::TimingModel *timing_;
    LogicCalibration calibration_;
};

} // namespace xser::core

#endif // XSER_CORE_LOGIC_SUSCEPTIBILITY_HH
