/**
 * @file
 * A beam campaign: an ordered set of test sessions on fresh platform
 * instances (the board is power-cycled between sessions), with a
 * factory for the paper's exact four-session campaign (Table 2).
 */

#ifndef XSER_CORE_BEAM_CAMPAIGN_HH
#define XSER_CORE_BEAM_CAMPAIGN_HH

#include <vector>

#include "core/test_session.hh"
#include "cpu/xgene2_platform.hh"

namespace xser::core {

/** Campaign parameters. */
struct CampaignConfig {
    cpu::PlatformConfig platform;
    std::vector<SessionConfig> sessions;
};

/**
 * Flip every event-driven fast path of a campaign at once: the beam's
 * skip-ahead sampler and the memory system's clean-word/clean-array
 * shortcuts. Both settings are observably equivalent by contract
 * (DESIGN.md section 8); campaigns run with them off only to prove it.
 */
void setFastPath(CampaignConfig &config, bool enabled);

/** Campaign outcome: one result per session, in order. */
struct CampaignResult {
    std::vector<SessionResult> sessions;
};

/**
 * Runs sessions in order, each against a freshly constructed platform.
 */
class BeamCampaign
{
  public:
    explicit BeamCampaign(const CampaignConfig &config);

    /** Execute all sessions. */
    CampaignResult execute();

    /**
     * The paper's four Table 2 sessions: 980/930/920 mV @ 2.4 GHz and
     * 790 mV @ 900 MHz, with the Section 3.5 stop criteria.
     *
     * @param scale Scales the stop criteria (fluence caps and event
     *        targets) to trade statistical tightness for wall time;
     *        1.0 reproduces the paper's targets.
     * @param seed Campaign seed.
     */
    static CampaignConfig paperCampaign(double scale = 1.0,
                                        uint64_t seed = 0x5e5510ULL);

    /** Only the three 2.4 GHz sessions (most figures use these). */
    static CampaignConfig campaign24GHz(double scale = 1.0,
                                        uint64_t seed = 0x5e5510ULL);

  private:
    CampaignConfig config_;
};

} // namespace xser::core

#endif // XSER_CORE_BEAM_CAMPAIGN_HH
