/**
 * @file
 * Run outcome taxonomy (Section 2.1 / 3.6 of the paper) and the
 * per-run record the campaign accumulates.
 */

#ifndef XSER_CORE_OUTCOME_HH
#define XSER_CORE_OUTCOME_HH

#include <cstdint>
#include <string>

#include "sim/sim_clock.hh"

namespace xser::core {

/** Primary classification of one benchmark run. */
enum class RunOutcome : uint8_t {
    Success = 0,   ///< output matched the golden reference
    Sdc = 1,       ///< silent data corruption (output mismatch)
    AppCrash = 2,  ///< program crash/hang; OS still responsive
    SysCrash = 3,  ///< machine unresponsive; power cycle needed
};

constexpr size_t numRunOutcomes = 4;

/** Display name of an outcome. */
const char *runOutcomeName(RunOutcome outcome);

/** Record of one classified run. */
struct RunRecord {
    std::string workload;
    RunOutcome outcome = RunOutcome::Success;
    bool withCeNotification = false;  ///< a CE was logged this run
    bool trappedOrganically = false;  ///< kernel hit a wild index
    bool signatureMismatch = false;   ///< organic golden-compare miss
    double fluence = 0.0;             ///< fluence during the run
    Tick duration = 0;                ///< simulated wall time
    uint64_t upsetsDetected = 0;      ///< EDAC events during the run
};

/** Event tallies of one category set (per session / per workload). */
struct EventCounts {
    uint64_t sdcSilent = 0;    ///< SDCs with no hardware notification
    uint64_t sdcNotified = 0;  ///< SDCs with a corrected-error report
    uint64_t appCrash = 0;
    uint64_t sysCrash = 0;

    uint64_t sdcTotal() const { return sdcSilent + sdcNotified; }
    uint64_t total() const { return sdcTotal() + appCrash + sysCrash; }

    void
    merge(const EventCounts &other)
    {
        sdcSilent += other.sdcSilent;
        sdcNotified += other.sdcNotified;
        appCrash += other.appCrash;
        sysCrash += other.sysCrash;
    }
};

} // namespace xser::core

#endif // XSER_CORE_OUTCOME_HH
