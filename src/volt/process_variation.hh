/**
 * @file
 * Per-core process variation.
 *
 * Manufacturing-induced parameter fluctuations shift each core's
 * effective cliff voltage (Section 4.3 discusses how these fluctuations
 * sharpen at reduced supply). The paper found workload variation
 * negligible for safe Vmin but core-to-core variation real ([49]); the
 * characterizer uses the worst core, exactly as a real chip does.
 */

#ifndef XSER_VOLT_PROCESS_VARIATION_HH
#define XSER_VOLT_PROCESS_VARIATION_HH

#include <cstdint>
#include <vector>

namespace xser::volt {

/** Static per-chip process variation sample. */
class ProcessVariation
{
  public:
    /**
     * @param cores Number of cores on the chip.
     * @param sigma_volts Core-to-core cliff offset spread.
     * @param chip_seed Seed identifying this physical chip.
     */
    ProcessVariation(unsigned cores, double sigma_volts,
                     uint64_t chip_seed);

    /** Cliff-voltage offset of a core (volts; positive = weaker core). */
    double coreOffsetVolts(unsigned core) const;

    /** Worst (largest) offset across cores; sets the chip's Vmin. */
    double worstOffsetVolts() const;

    /** Index of the weakest core. */
    unsigned weakestCore() const;

    unsigned cores() const
    {
        return static_cast<unsigned>(offsets_.size());
    }

  private:
    std::vector<double> offsets_;
};

} // namespace xser::volt

#endif // XSER_VOLT_PROCESS_VARIATION_HH
