/**
 * @file
 * Operating points: (PMD voltage, SoC voltage, core frequency) tuples.
 *
 * The four named points are exactly Table 3 of the paper: nominal, safe,
 * and Vmin at 2.4 GHz, plus Vmin at 900 MHz (where only the PMD domain
 * scales; the SoC domain stays at its nominal 950 mV).
 */

#ifndef XSER_VOLT_OPERATING_POINT_HH
#define XSER_VOLT_OPERATING_POINT_HH

#include <string>
#include <vector>

namespace xser::volt {

/** One voltage/frequency setting of the chip. */
struct OperatingPoint {
    std::string name;      ///< e.g. "Vmin"
    double pmdMillivolts;  ///< PMD (cores + L1/L2) supply
    double socMillivolts;  ///< SoC (L3 + DRAM ctrl) supply
    double frequencyHz;    ///< PMD core clock

    /** PMD supply in volts. */
    double pmdVolts() const { return pmdMillivolts / 1000.0; }

    /** SoC supply in volts. */
    double socVolts() const { return socMillivolts / 1000.0; }

    /** Label like "920mV @ 2.4GHz". */
    std::string label() const;
};

/** Nominal: 980 mV / 950 mV @ 2.4 GHz. */
OperatingPoint nominalPoint();

/** Safe reduced: 930 mV / 925 mV @ 2.4 GHz. */
OperatingPoint safePoint();

/** Lowest safe (Vmin): 920 mV / 920 mV @ 2.4 GHz. */
OperatingPoint vminPoint();

/** Vmin at 900 MHz: 790 mV / 950 mV. */
OperatingPoint vmin900Point();

/** The four points of Table 3, in session order (Table 2). */
std::vector<OperatingPoint> paperOperatingPoints();

/** The three 2.4 GHz points (most per-figure sweeps use these). */
std::vector<OperatingPoint> points24GHz();

} // namespace xser::volt

#endif // XSER_VOLT_OPERATING_POINT_HH
