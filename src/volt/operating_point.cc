/**
 * @file
 * OperatingPoint factories (Table 3 of the paper).
 */

#include "volt/operating_point.hh"

#include <cstdio>

namespace xser::volt {

std::string
OperatingPoint::label() const
{
    char buffer[64];
    if (frequencyHz >= 1e9) {
        std::snprintf(buffer, sizeof(buffer), "%.0fmV @ %.1fGHz",
                      pmdMillivolts, frequencyHz / 1e9);
    } else {
        std::snprintf(buffer, sizeof(buffer), "%.0fmV @ %.0fMHz",
                      pmdMillivolts, frequencyHz / 1e6);
    }
    return buffer;
}

OperatingPoint
nominalPoint()
{
    return OperatingPoint{"Nominal", 980.0, 950.0, 2.4e9};
}

OperatingPoint
safePoint()
{
    return OperatingPoint{"Safe", 930.0, 925.0, 2.4e9};
}

OperatingPoint
vminPoint()
{
    return OperatingPoint{"Vmin", 920.0, 920.0, 2.4e9};
}

OperatingPoint
vmin900Point()
{
    return OperatingPoint{"Vmin@900MHz", 790.0, 950.0, 0.9e9};
}

std::vector<OperatingPoint>
paperOperatingPoints()
{
    return {nominalPoint(), safePoint(), vminPoint(), vmin900Point()};
}

std::vector<OperatingPoint>
points24GHz()
{
    return {nominalPoint(), safePoint(), vminPoint()};
}

} // namespace xser::volt
