/**
 * @file
 * DvfsGovernor implementation.
 */

#include "volt/dvfs_governor.hh"

#include <cmath>

#include "sim/logging.hh"

namespace xser::volt {

DvfsGovernor::DvfsGovernor()
{
    // 300 MHz steps from 300 MHz to 2.4 GHz. Nominal voltage slope of
    // ~28.6 mV per 300 MHz anchored at 980 mV @ 2.4 GHz, floored at
    // 780 mV -- a pessimistic vendor ladder.
    for (int step = 1; step <= 8; ++step) {
        const double frequency = 300e6 * step;
        const double millivolts =
            std::max(780.0, 980.0 - 28.6 * static_cast<double>(8 - step));
        // Snap to the 5 mV regulator grid.
        const double snapped = 5.0 * std::round(millivolts / 5.0);
        ladder_.push_back(DvfsState{frequency, snapped});
    }
}

DvfsState
DvfsGovernor::stateFor(double frequency_hz) const
{
    if (frequency_hz < 300e6 - 1.0 || frequency_hz > 2.4e9 + 1.0)
        fatal(msg("frequency ", frequency_hz,
                  " Hz outside the 300 MHz..2.4 GHz DVFS range"));
    const DvfsState *best = &ladder_.front();
    double best_distance = 1e18;
    for (const auto &state : ladder_) {
        const double distance = std::fabs(state.frequencyHz - frequency_hz);
        if (distance < best_distance) {
            best_distance = distance;
            best = &state;
        }
    }
    return *best;
}

OperatingPoint
DvfsGovernor::operatingPointFor(double frequency_hz) const
{
    const DvfsState state = stateFor(frequency_hz);
    return OperatingPoint{"DVFS", state.pmdMillivolts, 950.0,
                          state.frequencyHz};
}

} // namespace xser::volt
