/**
 * @file
 * Micro-virus characterization kernels.
 *
 * The paper's offline Vmin characterization follows [49]/[57], which
 * build on dedicated stress kernels ("micro-viruses", [51]) that
 * maximize supply noise: the safe Vmin must hold under the worst
 * di/dt behaviour any workload can produce, not just under the
 * benchmark suite. We model each virus by its supply-noise amplitude
 * relative to the suite-typical level (scaling the cliff model's
 * threshold spread) and its activity factor (for power during
 * characterization).
 *
 * The reproduced observation (§4.1): workload variation moves the
 * measured Vmin by less than one 5 mV regulator step -- which is why
 * the paper could use a single safe Vmin for the whole suite.
 */

#ifndef XSER_VOLT_MICRO_VIRUS_HH
#define XSER_VOLT_MICRO_VIRUS_HH

#include <string>
#include <vector>

#include "volt/vmin_characterizer.hh"

namespace xser::volt {

/** One characterization stress kernel. */
struct MicroVirus {
    std::string name;
    std::string stresses;    ///< what it maximizes
    double noiseScale;       ///< supply-noise amplitude vs suite mean
    double activityFactor;   ///< power activity during the run
};

/** The standard virus set ([51]-style), worst case last. */
const std::vector<MicroVirus> &standardViruses();

/** Result of characterizing one virus. */
struct VirusVminResult {
    MicroVirus virus;
    VminSweepResult sweep;
};

/** Result of a full virus-based characterization. */
struct VirusCharacterization {
    std::vector<VirusVminResult> perVirus;
    /** Highest per-virus safe Vmin: the setting safe for everything. */
    double safeVminMillivolts = 0.0;
    /** Spread between the laxest and strictest virus (mV). */
    double vminSpreadMillivolts = 0.0;
};

/**
 * Run the sweep once per virus (each with its noise amplitude) and
 * combine: the chip's safe Vmin is the maximum over viruses.
 *
 * @param characterizer Chip-under-test characterizer.
 * @param config Base sweep parameters (noiseScale applied per virus).
 * @param viruses Virus set (default: standardViruses()).
 */
VirusCharacterization characterizeWithViruses(
    const VminCharacterizer &characterizer,
    const VminSweepConfig &config,
    const std::vector<MicroVirus> &viruses = standardViruses());

} // namespace xser::volt

#endif // XSER_VOLT_MICRO_VIRUS_HH
