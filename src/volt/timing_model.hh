/**
 * @file
 * Voltage-cliff timing model.
 *
 * Two failure mechanisms bound the safe undervolting window (paper
 * Sections 2.2 and 4.1):
 *
 *  1. Logic timing: critical-path delay follows the alpha-power law
 *     d(V) = k * V / (V - Vth)^alpha; the chip fails when d(V) exceeds
 *     the clock period. The model is anchored so the mean timing cliff
 *     at 2.4 GHz sits where the paper measured it (pfail rises below
 *     920 mV, complete failure at 900 mV, Fig. 4 left).
 *  2. SRAM read stability / retention: below a floor voltage the cell
 *     margins collapse regardless of frequency. This is what limits the
 *     900 MHz configuration (Fig. 4 right: fail window 790 -> 780 mV),
 *     because its timing cliff, per the alpha-power law, would otherwise
 *     lie near 520 mV.
 *
 * Run-to-run failure thresholds vary with chip-wide supply droop and
 * core-to-core process variation, modeled as a Gaussian spread around
 * the mean cliff. This produces the measured gradual pfail windows
 * (~20 mV wide at 2.4 GHz, ~10 mV at 900 MHz).
 */

#ifndef XSER_VOLT_TIMING_MODEL_HH
#define XSER_VOLT_TIMING_MODEL_HH

namespace xser {
class Rng;
} // namespace xser

namespace xser::volt {

/** Calibration constants of the cliff model. */
struct TimingModelConfig {
    double vthVolts = 0.35;          ///< device threshold voltage
    double alphaPower = 1.3;         ///< velocity-saturation exponent
    double anchorFrequencyHz = 2.4e9;
    double anchorCliffVolts = 0.908; ///< mean logic cliff @ anchor (Fig.4)
    double sramFloorVolts = 0.7845;  ///< mean SRAM stability floor (Fig.4)
    double sigmaLogicVolts = 0.0040; ///< droop+variation spread (logic)
    double sigmaSramVolts = 0.0020;  ///< spread at the SRAM floor
    /*
     * Temperature. The paper characterized temperature-aware: the safe
     * Vmin was unaffected up to 50 C (Section 3.4; the DUT ran at
     * 40-45 C in the beam). Above that, inverted temperature
     * dependence pushes the cliff upward.
     */
    double temperatureCelsius = 45.0;
    double tempSafeLimitCelsius = 50.0;
    double cliffPerCelsiusVolts = 0.0012;  ///< shift above the limit
};

/** Which mechanism sets the cliff at a given frequency. */
enum class CliffMechanism {
    LogicTiming,
    SramStability,
};

/**
 * Computes cliff voltages, failure probabilities, and per-run failure
 * thresholds for any frequency.
 */
class TimingModel
{
  public:
    explicit TimingModel(const TimingModelConfig &config = {});

    const TimingModelConfig &config() const { return config_; }

    /**
     * Normalized alpha-power-law path delay (arbitrary units,
     * monotonically decreasing in V above Vth).
     */
    double pathDelayUnits(double vdd_volts) const;

    /** Mean logic-timing cliff voltage at a frequency. */
    double logicCliffVolts(double frequency_hz) const;

    /** Mean effective cliff: max(logic cliff, SRAM floor), plus the
     *  above-50 C temperature shift (zero in the paper's 40-45 C
     *  operating window). */
    double cliffVolts(double frequency_hz) const;

    /** Mechanism that dominates at this frequency. */
    CliffMechanism mechanismAt(double frequency_hz) const;

    /** Gaussian spread of the effective cliff at this frequency. */
    double sigmaVolts(double frequency_hz) const;

    /**
     * Analytic probability that one run at (vdd, f) fails due to the
     * voltage cliff: Phi((cliff - vdd) / sigma).
     */
    double runFailureProbability(double vdd_volts,
                                 double frequency_hz) const;

    /**
     * Sample one run's failure threshold voltage (the run fails iff the
     * supply is below the sampled threshold).
     */
    double sampleThresholdVolts(double frequency_hz, Rng &rng) const;

  private:
    TimingModelConfig config_;
    double anchorDelayUnits_;  ///< pathDelayUnits at the anchor cliff
};

/** Standard normal CDF used by the cliff model (exposed for tests). */
double normalCdf(double z);

} // namespace xser::volt

#endif // XSER_VOLT_TIMING_MODEL_HH
