/**
 * @file
 * Offline safe-Vmin characterization (paper Section 4.1, Fig. 4).
 *
 * Mirrors the methodology of [49]/[57] the paper relies on: run the
 * workload suite hundreds of times per 5 mV step below nominal; record
 * the probability of failure per step; the safe Vmin is the lowest
 * setting where every run completed. The radiation campaign only ever
 * operates at or above safe Vmin, so any error seen under beam is
 * attributable to radiation, not undervolting (Section 3.6).
 */

#ifndef XSER_VOLT_VMIN_CHARACTERIZER_HH
#define XSER_VOLT_VMIN_CHARACTERIZER_HH

#include <cstdint>
#include <vector>

#include "volt/process_variation.hh"
#include "volt/timing_model.hh"

namespace xser::volt {

/** Sweep parameters. */
struct VminSweepConfig {
    double frequencyHz = 2.4e9;
    double startMillivolts = 980.0;  ///< first (highest) setting
    double stopMillivolts = 880.0;   ///< last (lowest) setting
    double stepMillivolts = 5.0;
    unsigned runsPerStep = 500;
    uint64_t seed = 0xc11ffULL;
    /**
     * Supply-noise amplitude relative to the suite-typical level;
     * micro-virus characterization sweeps this (see micro_virus.hh).
     */
    double noiseScale = 1.0;
};

/** One voltage step of the sweep. */
struct VminStep {
    double millivolts;
    unsigned runs;
    unsigned failures;
    double pfail;  ///< failures / runs
};

/** Full sweep outcome. */
struct VminSweepResult {
    std::vector<VminStep> steps;        ///< highest voltage first
    double safeVminMillivolts;          ///< lowest all-pass setting
    double completeFailMillivolts;      ///< highest setting with pfail=1
                                        ///< (0 when never reached)
};

/**
 * Monte-Carlo safe-Vmin characterizer over the cliff model plus this
 * chip's process variation.
 */
class VminCharacterizer
{
  public:
    VminCharacterizer(const TimingModel &model,
                      const ProcessVariation &variation);

    /** Run a full downward sweep. */
    VminSweepResult sweep(const VminSweepConfig &config) const;

    /**
     * Analytic per-run failure probability at a setting, including the
     * weakest core's process offset.
     */
    double pfailAnalytic(double millivolts, double frequency_hz) const;

  private:
    const TimingModel &model_;
    const ProcessVariation &variation_;
};

} // namespace xser::volt

#endif // XSER_VOLT_VMIN_CHARACTERIZER_HH
