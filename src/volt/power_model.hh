/**
 * @file
 * Analytical power model of the X-Gene 2, calibrated to the paper's
 * measurements (Fig. 9): per-domain dynamic power a*C*V^2*f plus
 * voltage-dependent leakage. The four measured points are reproduced to
 * within ~1 %:
 *
 *   980/950 mV @ 2.4 GHz -> 20.40 W      930/925 mV @ 2.4 GHz -> 18.63 W
 *   920/920 mV @ 2.4 GHz -> 18.15 W      790/950 mV @ 900 MHz -> 10.59 W
 *
 * Calibration (see power_model.cc): PMD dynamic 11.83 W and SoC dynamic
 * 6.57 W at nominal, leakage 1.2 W (PMD) + 0.8 W (SoC) with an
 * exponential voltage slope of 150 mV/e-fold.
 */

#ifndef XSER_VOLT_POWER_MODEL_HH
#define XSER_VOLT_POWER_MODEL_HH

#include "volt/operating_point.hh"

namespace xser::volt {

/** Per-component power breakdown in watts. */
struct PowerBreakdown {
    double pmdDynamic;
    double socDynamic;
    double pmdLeakage;
    double socLeakage;

    double total() const
    {
        return pmdDynamic + socDynamic + pmdLeakage + socLeakage;
    }
};

/** Calibration constants (defaults reproduce Fig. 9). */
struct PowerModelConfig {
    double pmdDynamicNominalWatts = 11.83;  ///< at 980 mV, 2.4 GHz
    double socDynamicNominalWatts = 6.57;   ///< at 950 mV
    double pmdLeakageNominalWatts = 1.2;
    double socLeakageNominalWatts = 0.8;
    double leakageSlopeVolts = 0.15;        ///< e-folding of leakage vs V
    double temperatureCelsius = 45.0;       ///< die temperature
    double leakageSlopeCelsius = 40.0;      ///< e-folding of leakage vs T
    double referenceTempCelsius = 45.0;     ///< calibration temperature
    double pmdNominalVolts = 0.980;
    double socNominalVolts = 0.950;
    double nominalFrequencyHz = 2.4e9;
};

/**
 * Computes chip power for any operating point and workload activity.
 */
class PowerModel
{
  public:
    explicit PowerModel(const PowerModelConfig &config = {});

    const PowerModelConfig &config() const { return config_; }

    /**
     * Power breakdown at an operating point.
     *
     * @param point Voltage/frequency setting.
     * @param activity Workload activity factor scaling PMD dynamic power
     *        (1.0 = the suite average the paper reports).
     */
    PowerBreakdown breakdown(const OperatingPoint &point,
                             double activity = 1.0) const;

    /** Total power in watts. */
    double totalWatts(const OperatingPoint &point,
                      double activity = 1.0) const;

    /**
     * Power savings (%) of `point` relative to `baseline` (Fig. 10's
     * x-series).
     */
    double savingsPercent(const OperatingPoint &point,
                          const OperatingPoint &baseline,
                          double activity = 1.0) const;

  private:
    PowerModelConfig config_;
};

} // namespace xser::volt

#endif // XSER_VOLT_POWER_MODEL_HH
