/**
 * @file
 * DVFS governor model.
 *
 * The paper *disables* DVFS during the beam study (Section 3.1) because
 * DVFS would pin nominal voltage to each frequency, defeating the
 * undervolting analysis. We model the governor anyway: it provides the
 * per-frequency nominal voltage ladder (300 MHz steps, Section 3.1) that
 * examples and ablations compare against, and an explicit disable switch
 * to document the study configuration.
 */

#ifndef XSER_VOLT_DVFS_GOVERNOR_HH
#define XSER_VOLT_DVFS_GOVERNOR_HH

#include <vector>

#include "volt/operating_point.hh"

namespace xser::volt {

/** One DVFS ladder entry. */
struct DvfsState {
    double frequencyHz;
    double pmdMillivolts;  ///< vendor nominal for this frequency
};

/**
 * Vendor DVFS ladder: frequencies from 300 MHz to 2.4 GHz in 300 MHz
 * steps, each with a nominal PMD voltage. The ladder is synthetic but
 * anchored at the two documented points (980 mV @ 2.4 GHz) with a
 * conservative slope, as vendors set voltages pessimistically
 * (Section 1).
 */
class DvfsGovernor
{
  public:
    DvfsGovernor();

    /** All ladder states, lowest frequency first. */
    const std::vector<DvfsState> &ladder() const { return ladder_; }

    /** Nominal state for a frequency (nearest ladder step, fatal if
     *  outside the 300 MHz..2.4 GHz range). */
    DvfsState stateFor(double frequency_hz) const;

    /** Build an operating point from a ladder state (SoC at nominal). */
    OperatingPoint operatingPointFor(double frequency_hz) const;

    /** Whether the governor actively manages voltage (off in the study). */
    bool enabled() const { return enabled_; }
    void setEnabled(bool enabled) { enabled_ = enabled; }

  private:
    std::vector<DvfsState> ladder_;
    bool enabled_ = false;
};

} // namespace xser::volt

#endif // XSER_VOLT_DVFS_GOVERNOR_HH
