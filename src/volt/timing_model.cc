/**
 * @file
 * TimingModel implementation.
 */

#include "volt/timing_model.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace xser::volt {

double
normalCdf(double z)
{
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

TimingModel::TimingModel(const TimingModelConfig &config)
    : config_(config)
{
    if (config_.anchorCliffVolts <= config_.vthVolts)
        fatal("anchor cliff must be above the threshold voltage");
    anchorDelayUnits_ = pathDelayUnits(config_.anchorCliffVolts);
}

double
TimingModel::pathDelayUnits(double vdd_volts) const
{
    XSER_ASSERT(vdd_volts > config_.vthVolts,
                "path delay undefined at or below Vth");
    return vdd_volts /
           std::pow(vdd_volts - config_.vthVolts, config_.alphaPower);
}

double
TimingModel::logicCliffVolts(double frequency_hz) const
{
    XSER_ASSERT(frequency_hz > 0.0, "frequency must be positive");
    // The cliff is where delay equals the period. Delay at the anchor
    // cliff corresponds to the anchor period, so the target delay scales
    // by (anchor frequency / frequency). Solve by bisection: delay is
    // monotone decreasing in V.
    const double target =
        anchorDelayUnits_ * (config_.anchorFrequencyHz / frequency_hz);
    double lo = config_.vthVolts + 1e-4;
    double hi = 2.0;  // far above any operating point
    // delay(lo) is huge, delay(hi) small; find V with delay(V) = target.
    for (int i = 0; i < 100; ++i) {
        const double mid = 0.5 * (lo + hi);
        if (pathDelayUnits(mid) > target)
            lo = mid;
        else
            hi = mid;
    }
    return 0.5 * (lo + hi);
}

double
TimingModel::cliffVolts(double frequency_hz) const
{
    const double base = std::max(logicCliffVolts(frequency_hz),
                                 config_.sramFloorVolts);
    // Section 3.4: the safe Vmin is temperature-insensitive up to
    // 50 C; beyond that the margins erode.
    const double overheat = std::max(
        0.0, config_.temperatureCelsius - config_.tempSafeLimitCelsius);
    return base + overheat * config_.cliffPerCelsiusVolts;
}

CliffMechanism
TimingModel::mechanismAt(double frequency_hz) const
{
    return logicCliffVolts(frequency_hz) >= config_.sramFloorVolts
        ? CliffMechanism::LogicTiming
        : CliffMechanism::SramStability;
}

double
TimingModel::sigmaVolts(double frequency_hz) const
{
    return mechanismAt(frequency_hz) == CliffMechanism::LogicTiming
        ? config_.sigmaLogicVolts
        : config_.sigmaSramVolts;
}

double
TimingModel::runFailureProbability(double vdd_volts,
                                   double frequency_hz) const
{
    const double cliff = cliffVolts(frequency_hz);
    const double sigma = sigmaVolts(frequency_hz);
    return normalCdf((cliff - vdd_volts) / sigma);
}

double
TimingModel::sampleThresholdVolts(double frequency_hz, Rng &rng) const
{
    return rng.nextGaussian(cliffVolts(frequency_hz),
                            sigmaVolts(frequency_hz));
}

} // namespace xser::volt
