/**
 * @file
 * ProcessVariation implementation.
 */

#include "volt/process_variation.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace xser::volt {

ProcessVariation::ProcessVariation(unsigned cores, double sigma_volts,
                                   uint64_t chip_seed)
{
    if (cores == 0)
        fatal("process variation needs at least one core");
    Rng rng(chip_seed);
    offsets_.reserve(cores);
    for (unsigned core = 0; core < cores; ++core)
        offsets_.push_back(rng.nextGaussian(0.0, sigma_volts));
}

double
ProcessVariation::coreOffsetVolts(unsigned core) const
{
    XSER_ASSERT(core < offsets_.size(), "core index out of range");
    return offsets_[core];
}

double
ProcessVariation::worstOffsetVolts() const
{
    return *std::max_element(offsets_.begin(), offsets_.end());
}

unsigned
ProcessVariation::weakestCore() const
{
    return static_cast<unsigned>(
        std::max_element(offsets_.begin(), offsets_.end()) -
        offsets_.begin());
}

} // namespace xser::volt
