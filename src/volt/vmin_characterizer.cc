/**
 * @file
 * VminCharacterizer implementation.
 */

#include "volt/vmin_characterizer.hh"

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace xser::volt {

VminCharacterizer::VminCharacterizer(const TimingModel &model,
                                     const ProcessVariation &variation)
    : model_(model), variation_(variation)
{
}

double
VminCharacterizer::pfailAnalytic(double millivolts,
                                 double frequency_hz) const
{
    const double vdd = millivolts / 1000.0;
    const double cliff = model_.cliffVolts(frequency_hz) +
                         variation_.worstOffsetVolts();
    const double sigma = model_.sigmaVolts(frequency_hz);
    return normalCdf((cliff - vdd) / sigma);
}

VminSweepResult
VminCharacterizer::sweep(const VminSweepConfig &config) const
{
    if (config.stepMillivolts <= 0.0)
        fatal("sweep step must be positive");
    if (config.startMillivolts < config.stopMillivolts)
        fatal("sweep start must be at or above stop");
    if (config.runsPerStep == 0)
        fatal("sweep needs at least one run per step");

    if (config.noiseScale <= 0.0)
        fatal("noise scale must be positive");

    Rng rng(config.seed);
    VminSweepResult result;
    result.safeVminMillivolts = config.startMillivolts;
    result.completeFailMillivolts = 0.0;

    const double worst_offset = variation_.worstOffsetVolts();
    const double cliff = model_.cliffVolts(config.frequencyHz);
    const double sigma =
        model_.sigmaVolts(config.frequencyHz) * config.noiseScale;
    bool failures_seen = false;

    for (double mv = config.startMillivolts;
         mv >= config.stopMillivolts - 1e-9;
         mv -= config.stepMillivolts) {
        VminStep step;
        step.millivolts = mv;
        step.runs = config.runsPerStep;
        step.failures = 0;
        const double vdd = mv / 1000.0;
        for (unsigned run = 0; run < config.runsPerStep; ++run) {
            const double threshold =
                rng.nextGaussian(cliff, sigma) + worst_offset;
            if (vdd < threshold)
                ++step.failures;
        }
        step.pfail = static_cast<double>(step.failures) /
                     static_cast<double>(step.runs);
        if (step.failures == 0 && !failures_seen)
            result.safeVminMillivolts = mv;
        if (step.failures > 0)
            failures_seen = true;
        if (step.pfail >= 1.0 && result.completeFailMillivolts == 0.0)
            result.completeFailMillivolts = mv;
        result.steps.push_back(step);
    }
    return result;
}

} // namespace xser::volt
