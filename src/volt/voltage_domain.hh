/**
 * @file
 * Voltage domains with regulator semantics matching the X-Gene 2 SLIMpro
 * interface (Section 3.1): the PMD domain steps in 5 mV increments from
 * 980 mV, the SoC domain from 950 mV, each independently regulated.
 */

#ifndef XSER_VOLT_VOLTAGE_DOMAIN_HH
#define XSER_VOLT_VOLTAGE_DOMAIN_HH

#include <string>

namespace xser::volt {

/** Configuration of one regulated supply domain. */
struct VoltageDomainConfig {
    std::string name;          ///< "PMD" or "SoC"
    double nominalMillivolts;  ///< regulator ceiling
    double stepMillivolts = 5.0;
    double floorMillivolts = 500.0;  ///< regulator hardware floor
};

/**
 * A regulated supply domain. setMillivolts enforces the regulator's step
 * granularity and range, mirroring what the SLIMpro firmware accepts.
 */
class VoltageDomain
{
  public:
    explicit VoltageDomain(const VoltageDomainConfig &config);

    const std::string &name() const { return config_.name; }
    double nominalMillivolts() const { return config_.nominalMillivolts; }
    double millivolts() const { return millivolts_; }
    double volts() const { return millivolts_ / 1000.0; }

    /**
     * Request a supply level. Values off the 5 mV grid or outside
     * [floor, nominal] are a configuration error (fatal), as the real
     * regulator rejects them.
     */
    void setMillivolts(double millivolts);

    /** Step down by n regulator steps. */
    void stepDown(unsigned steps = 1);

    /** Return to the nominal level. */
    void resetToNominal() { millivolts_ = config_.nominalMillivolts; }

    /** Guardband exploited so far, in mV (nominal - current). */
    double guardbandMillivolts() const
    {
        return config_.nominalMillivolts - millivolts_;
    }

  private:
    VoltageDomainConfig config_;
    double millivolts_;
};

/** PMD domain at its Table 1 nominal (980 mV). */
VoltageDomain makePmdDomain();

/** SoC domain at its Table 1 nominal (950 mV). */
VoltageDomain makeSocDomain();

} // namespace xser::volt

#endif // XSER_VOLT_VOLTAGE_DOMAIN_HH
