/**
 * @file
 * MicroVirus implementation.
 */

#include "volt/micro_virus.hh"

#include <algorithm>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace xser::volt {

const std::vector<MicroVirus> &
standardViruses()
{
    // Noise amplitudes relative to the NPB-suite mean, ordered from
    // gentlest to the worst-case power virus. The spread (~0.85-1.25)
    // follows the di/dt ranges micro-virus studies report.
    static const std::vector<MicroVirus> viruses = {
        {"steady-compute", "sustained ALU throughput, flat current",
         0.85, 1.05},
        {"cache-thrash", "L1/L2 conflict misses, bursty fills",
         1.00, 0.95},
        {"branch-storm", "misprediction flushes, pipeline refills",
         1.10, 0.90},
        {"didt-resonance", "aligned idle-to-burst at the package "
         "resonance",
         1.25, 1.10},
    };
    return viruses;
}

VirusCharacterization
characterizeWithViruses(const VminCharacterizer &characterizer,
                        const VminSweepConfig &config,
                        const std::vector<MicroVirus> &viruses)
{
    if (viruses.empty())
        fatal("virus characterization needs at least one virus");

    VirusCharacterization result;
    double lax = 1e18;
    double strict = 0.0;
    for (const MicroVirus &virus : viruses) {
        VminSweepConfig per_virus = config;
        per_virus.noiseScale = virus.noiseScale;
        // Decorrelate runs across viruses.
        per_virus.seed = config.seed ^ hashString(virus.name);
        VirusVminResult entry{virus,
                              characterizer.sweep(per_virus)};
        lax = std::min(lax, entry.sweep.safeVminMillivolts);
        strict = std::max(strict, entry.sweep.safeVminMillivolts);
        result.perVirus.push_back(std::move(entry));
    }
    result.safeVminMillivolts = strict;
    result.vminSpreadMillivolts = strict - lax;
    return result;
}

} // namespace xser::volt
