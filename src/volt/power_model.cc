/**
 * @file
 * PowerModel implementation.
 *
 * Fit notes. With dynamic power proportional to V^2 f and leakage
 * proportional to exp((V - Vnom) / 0.15), solving the paper's four
 * measurements for the nominal dynamic components gives PMD 11.83 W and
 * SoC 6.57 W:
 *
 *   20.40 = a + b + 2.00                        (980/950, 2.4 GHz)
 *   10.59 = 0.2437 a + b + 1.138                (790/950, 900 MHz)
 *
 * => a = 11.83, b = 6.57. The two intermediate points then land at
 * 18.42 W (meas. 18.63) and 18.05 W (meas. 18.15) -- within ~1.1 %.
 */

#include "volt/power_model.hh"

#include <cmath>

#include "sim/logging.hh"

namespace xser::volt {

PowerModel::PowerModel(const PowerModelConfig &config) : config_(config)
{
    if (config_.leakageSlopeVolts <= 0.0)
        fatal("leakage slope must be positive");
}

PowerBreakdown
PowerModel::breakdown(const OperatingPoint &point, double activity) const
{
    XSER_ASSERT(activity > 0.0, "activity factor must be positive");
    const double vp = point.pmdVolts();
    const double vs = point.socVolts();
    const double vp_ratio = vp / config_.pmdNominalVolts;
    const double vs_ratio = vs / config_.socNominalVolts;
    const double f_ratio = point.frequencyHz / config_.nominalFrequencyHz;

    // Subthreshold leakage grows exponentially with die temperature;
    // the calibration point is the paper's 40-45 C beam-room window.
    const double temp_factor =
        std::exp((config_.temperatureCelsius -
                  config_.referenceTempCelsius) /
                 config_.leakageSlopeCelsius);

    PowerBreakdown breakdown;
    breakdown.pmdDynamic = config_.pmdDynamicNominalWatts * activity *
                           vp_ratio * vp_ratio * f_ratio;
    // The SoC domain (L3, DRAM controllers) runs on its own fixed clock:
    // only its voltage scales.
    breakdown.socDynamic =
        config_.socDynamicNominalWatts * vs_ratio * vs_ratio;
    breakdown.pmdLeakage =
        config_.pmdLeakageNominalWatts * temp_factor *
        std::exp((vp - config_.pmdNominalVolts) / config_.leakageSlopeVolts);
    breakdown.socLeakage =
        config_.socLeakageNominalWatts * temp_factor *
        std::exp((vs - config_.socNominalVolts) / config_.leakageSlopeVolts);
    return breakdown;
}

double
PowerModel::totalWatts(const OperatingPoint &point, double activity) const
{
    return breakdown(point, activity).total();
}

double
PowerModel::savingsPercent(const OperatingPoint &point,
                           const OperatingPoint &baseline,
                           double activity) const
{
    const double base = totalWatts(baseline, activity);
    const double now = totalWatts(point, activity);
    return 100.0 * (base - now) / base;
}

} // namespace xser::volt
