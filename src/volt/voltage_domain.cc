/**
 * @file
 * VoltageDomain implementation.
 */

#include "volt/voltage_domain.hh"

#include <cmath>

#include "sim/logging.hh"

namespace xser::volt {

VoltageDomain::VoltageDomain(const VoltageDomainConfig &config)
    : config_(config), millivolts_(config.nominalMillivolts)
{
    if (config_.nominalMillivolts <= 0.0)
        fatal(msg("domain '", config_.name, "' needs a positive nominal"));
    if (config_.stepMillivolts <= 0.0)
        fatal(msg("domain '", config_.name, "' needs a positive step"));
    if (config_.floorMillivolts >= config_.nominalMillivolts)
        fatal(msg("domain '", config_.name, "' floor above nominal"));
}

void
VoltageDomain::setMillivolts(double millivolts)
{
    if (millivolts > config_.nominalMillivolts + 1e-9 ||
        millivolts < config_.floorMillivolts - 1e-9) {
        fatal(msg("domain '", config_.name, "': ", millivolts,
                  " mV outside [", config_.floorMillivolts, ", ",
                  config_.nominalMillivolts, "]"));
    }
    const double steps_from_nominal =
        (config_.nominalMillivolts - millivolts) / config_.stepMillivolts;
    if (std::fabs(steps_from_nominal - std::round(steps_from_nominal)) >
        1e-6) {
        fatal(msg("domain '", config_.name, "': ", millivolts,
                  " mV is off the ", config_.stepMillivolts, " mV grid"));
    }
    millivolts_ = millivolts;
}

void
VoltageDomain::stepDown(unsigned steps)
{
    setMillivolts(millivolts_ -
                  config_.stepMillivolts * static_cast<double>(steps));
}

VoltageDomain
makePmdDomain()
{
    return VoltageDomain({"PMD", 980.0, 5.0, 500.0});
}

VoltageDomain
makeSocDomain()
{
    return VoltageDomain({"SoC", 950.0, 5.0, 500.0});
}

} // namespace xser::volt
