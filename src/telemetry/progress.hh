/**
 * @file
 * Live stderr progress line for long campaign runs.
 *
 * The meter renders `label done/total (pct) | rate | ETA` on a single
 * line, rewriting it in place (carriage return + clear-to-end). It
 * composes with sim/logging through the Logger line hook: the hook
 * erases the active progress line before any log message prints, so
 * warnings never interleave mid-line; the next tick repaints.
 *
 * Precedence (documented here and in sim/logging.hh):
 *  - LogLevel::Quiet suppresses progress entirely (--quiet wins over
 *    --progress);
 *  - a non-TTY stderr suppresses the live line (progressSupported()),
 *    so redirected runs never fill logs with control characters;
 *  - progress output goes to stderr only -- stdout stays report-clean.
 *
 * Thread-safe: workers tick an atomic counter; rendering is throttled
 * and serialized behind a mutex. Like every telemetry path, the meter
 * only observes -- it never touches simulated state, RNG streams, or
 * the sim clock, and results are bit-identical with it on or off.
 */

#ifndef XSER_TELEMETRY_PROGRESS_HH
#define XSER_TELEMETRY_PROGRESS_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>

namespace xser::telemetry {

/** True when stderr is an interactive terminal. */
bool progressSupported();

/** Single-line progress meter (one active instance at a time). */
class ProgressMeter
{
  public:
    ProgressMeter() = default;
    ~ProgressMeter();

    ProgressMeter(const ProgressMeter &) = delete;
    ProgressMeter &operator=(const ProgressMeter &) = delete;

    /**
     * Activate the meter for `total_units` of work. Registers the
     * logger line hook; no-op when already active.
     */
    void begin(const std::string &label, uint64_t total_units);

    /** Record `delta` finished units (thread-safe; may repaint). */
    void tick(uint64_t delta = 1);

    /** Erase the line and deactivate (idempotent). */
    void finish();

    /**
     * Render the line body for a given state -- pure and testable:
     * no clock reads, no terminal writes.
     */
    static std::string renderLine(const std::string &label,
                                  uint64_t done, uint64_t total,
                                  double elapsed_seconds);

  private:
    void maybeRender(bool force);

    std::atomic<uint64_t> done_{0};
    uint64_t total_ = 0;
    std::string label_;
    bool active_ = false;
    uint64_t startNanos_ = 0;
    uint64_t lastRenderNanos_ = 0;
    std::mutex renderMutex_;
};

} // namespace xser::telemetry

#endif // XSER_TELEMETRY_PROGRESS_HH
