/**
 * @file
 * The versioned run manifest: schema constants, the registry-to-JSON
 * emission helpers, and a paranoid JSON reader for the analysis side.
 *
 * Manifest layout (schema "xser-run-manifest", version 1):
 *
 *   {
 *     "schema": "xser-run-manifest",
 *     "schema_version": 1,
 *     "run": { tool, git_describe, config_hash, seed, ... },
 *     "counters": { <Counter names>: <merged totals> },
 *     "distributions": { <Dist names>: {lo, hi, bins, ...} },
 *     "headline": [ per-session FIT/DCS numbers ],
 *     "timing": { jobs, elapsed_seconds, phases, workers, ... }
 *   }
 *
 * Everything outside "timing" is a pure function of the campaign
 * configuration and seed -- bit-identical for any --jobs and across
 * repeated runs. "timing" quarantines every wall-clock reading (and
 * the worker count itself), so `xser-metrics diff` skips it by
 * default and manifests from jobs=1 and jobs=8 compare equal.
 *
 * The reader is deliberately strict and total: any truncated or
 * corrupted document yields `ok = false` with a positioned error, and
 * never a crash -- the same paranoid-decode posture as the checkpoint
 * envelope and the .xtrace reader.
 */

#ifndef XSER_TELEMETRY_MANIFEST_HH
#define XSER_TELEMETRY_MANIFEST_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/json.hh"
#include "telemetry/metrics.hh"

namespace xser::telemetry {

/** Schema identifier of the run manifest. */
extern const char *const manifestSchema;

/** Current manifest schema version. */
constexpr uint32_t manifestSchemaVersion = 1;

/** Top-level section whose contents are wall-clock dependent. */
extern const char *const manifestTimingSection;

/** Build-time `git describe` of this binary ("unknown" outside git). */
const char *gitDescribe();

/** Emit the schema preamble members (schema, schema_version). */
void writeSchemaPreamble(JsonWriter &json);

/** Emit the "counters" object from merged shard totals. */
void writeCounters(JsonWriter &json, const MetricShard &merged);

/**
 * Emit the "distributions" object (deterministic dists only; timing
 * dists belong in writeTiming's section).
 */
void writeDistributions(JsonWriter &json, const MetricShard &merged);

/**
 * Emit the "timing" object: worker count, elapsed wall-clock, phase
 * seconds, per-worker unit counts, and timing distributions.
 */
void writeTiming(JsonWriter &json, const MetricRegistry &registry,
                 unsigned jobs, double elapsed_seconds);

/** Parsed JSON value (document object model). */
struct JsonValue {
    enum class Kind { Null, Bool, Number, String, Object, Array };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /** String payload, or the raw number token for exact compares. */
    std::string text;
    std::vector<std::pair<std::string, JsonValue>> members;
    std::vector<JsonValue> elements;

    /** Object member by key, or null when absent / not an object. */
    const JsonValue *find(const std::string &name) const;
};

/** Result of parsing a JSON document. */
struct ParsedJson {
    bool ok = false;
    std::string error;  ///< positioned message when !ok
    JsonValue root;
};

/**
 * Parse a complete JSON document. Strict: rejects trailing garbage,
 * unterminated tokens, and nesting deeper than 64 levels; never
 * crashes on arbitrary input.
 */
ParsedJson parseJson(const std::string &text);

} // namespace xser::telemetry

#endif // XSER_TELEMETRY_MANIFEST_HH
