/**
 * @file
 * Wall-clock access for the telemetry layer.
 *
 * This header is the ONLY place outside the implementation file where
 * simulation code may obtain wall-clock time, and it deliberately
 * exposes nothing but an opaque nanosecond counter: no <chrono> types
 * leak into including translation units, so the xser-lint wallclock
 * and telemetry-purity rules can verify at token level that timers
 * never reach simulated state. Wall-clock readings feed reports only
 * (progress lines, phase timings, the manifest's "timing" section) --
 * never an RNG stream, the sim clock, or a campaign result.
 */

#ifndef XSER_TELEMETRY_STOPWATCH_HH
#define XSER_TELEMETRY_STOPWATCH_HH

#include <cstdint>

namespace xser::telemetry {

/**
 * Monotonic wall-clock nanoseconds since an arbitrary epoch.
 * Implemented in stopwatch.cc -- the one sanctioned <chrono> site.
 */
uint64_t monotonicNanos();

/** Simple interval timer over monotonicNanos(). */
class Stopwatch
{
  public:
    Stopwatch() : start_(monotonicNanos()) {}

    /** Seconds since construction or the last restart(). */
    double seconds() const
    {
        return static_cast<double>(monotonicNanos() - start_) * 1e-9;
    }

    /** Reset the interval origin to now. */
    void restart() { start_ = monotonicNanos(); }

  private:
    uint64_t start_;
};

} // namespace xser::telemetry

#endif // XSER_TELEMETRY_STOPWATCH_HH
