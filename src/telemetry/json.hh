/**
 * @file
 * Streaming JSON writer with deterministic output.
 *
 * One emission path serves the run manifest and every BENCH_*.json
 * record: keys are written in call order (callers use fixed orders),
 * doubles are rendered with the shortest representation that
 * round-trips exactly, and indentation is fixed at two spaces -- so
 * two runs that compute identical values emit identical bytes.
 */

#ifndef XSER_TELEMETRY_JSON_HH
#define XSER_TELEMETRY_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace xser::telemetry {

/** Pretty-printing JSON emitter; misuse (unbalanced begin/end, a value
 *  without a key inside an object) is a programming error and panics. */
class JsonWriter
{
  public:
    JsonWriter() = default;

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Name the next value inside the current object. */
    void key(const char *name);

    void value(const std::string &text);
    void value(const char *text);
    void value(double number);
    void value(uint64_t number);
    void value(int64_t number);
    void value(bool flag);
    void value(int number) { value(static_cast<int64_t>(number)); }
    void value(unsigned number)
    {
        value(static_cast<uint64_t>(number));
    }

    /** key() + value() in one call. */
    template <typename T>
    void
    member(const char *name, T &&v)
    {
        key(name);
        value(std::forward<T>(v));
    }

    /** key() + beginObject() in one call. */
    void beginObject(const char *name);

    /** key() + beginArray() in one call. */
    void beginArray(const char *name);

    /** The finished document (all scopes must be closed). */
    std::string take();

    /** Shortest decimal rendering of `number` that parses back
     *  bit-identically (strtod round-trip). */
    static std::string formatDouble(double number);

    /** Quote and escape a JSON string. */
    static std::string quote(const std::string &text);

  private:
    struct Scope {
        char kind;  ///< '{' or '['
        size_t items = 0;
        bool keyPending = false;
    };

    void beforeValue();
    void indent();

    std::string out_;
    std::vector<Scope> stack_;
};

} // namespace xser::telemetry

#endif // XSER_TELEMETRY_JSON_HH
