/**
 * @file
 * ProgressMeter implementation.
 */

#include "telemetry/progress.hh"

#include <csignal>
#include <cstdio>
#include <unistd.h>

#include "sim/logging.hh"
#include "telemetry/stopwatch.hh"

namespace xser::telemetry {

namespace {

/** The single active meter the logger line hook erases for. */
ProgressMeter *activeMeter = nullptr;
std::mutex activeMeterMutex;

/** Logger line hook: wipe the progress line before a log message. */
void
eraseProgressLine()
{
    std::lock_guard<std::mutex> lock(activeMeterMutex);
    if (activeMeter != nullptr) {
        std::fputs("\r\x1b[K", stderr);
        std::fflush(stderr);
    }
}

/** Signals hooked while a meter is live, with saved dispositions. */
constexpr int fatalSignals[] = {SIGINT, SIGTERM, SIGHUP};
struct sigaction savedActions[3];
bool hookedSignals[3] = {false, false, false};

/**
 * Async-signal-safe last act: wipe the progress line with a raw
 * write(2) -- no stdio, no locks -- then restore the default
 * disposition and re-raise so the process still dies by the signal
 * with its exit status intact.
 */
extern "C" void
eraseProgressOnSignal(int signum)
{
    static const char erase[] = "\r\x1b[K";
    const ssize_t rc =
        write(STDERR_FILENO, erase, sizeof(erase) - 1);
    (void)rc;
    struct sigaction dfl = {};
    dfl.sa_handler = SIG_DFL;
    sigaction(signum, &dfl, nullptr);
    raise(signum);
}

/**
 * Install the wipe-and-reraise handler for each fatal signal still at
 * its default disposition. Application handlers (a server's graceful
 * shutdown flag, say) are left alone: only "die with the meter line
 * still on screen" needs fixing.
 */
void
hookFatalSignals()
{
    for (size_t i = 0; i < 3; ++i) {
        struct sigaction current = {};
        if (sigaction(fatalSignals[i], nullptr, &current) != 0)
            continue;
        if (current.sa_handler != SIG_DFL)
            continue;
        struct sigaction action = {};
        action.sa_handler = &eraseProgressOnSignal;
        sigemptyset(&action.sa_mask);
        if (sigaction(fatalSignals[i], &action, &savedActions[i]) ==
            0)
            hookedSignals[i] = true;
    }
}

void
unhookFatalSignals()
{
    for (size_t i = 0; i < 3; ++i) {
        if (!hookedSignals[i])
            continue;
        sigaction(fatalSignals[i], &savedActions[i], nullptr);
        hookedSignals[i] = false;
    }
}

} // namespace

bool
progressSupported()
{
    return isatty(fileno(stderr)) != 0;
}

ProgressMeter::~ProgressMeter()
{
    finish();
}

void
ProgressMeter::begin(const std::string &label, uint64_t total_units)
{
    std::lock_guard<std::mutex> lock(activeMeterMutex);
    if (active_ || activeMeter != nullptr)
        return;
    label_ = label;
    total_ = total_units;
    done_.store(0, std::memory_order_relaxed);
    startNanos_ = monotonicNanos();
    lastRenderNanos_ = 0;
    active_ = true;
    activeMeter = this;
    Logger::global().setLineHook(&eraseProgressLine);
    hookFatalSignals();
}

void
ProgressMeter::tick(uint64_t delta)
{
    if (!active_)
        return;
    const uint64_t done =
        done_.fetch_add(delta, std::memory_order_relaxed) + delta;
    maybeRender(done >= total_);
}

void
ProgressMeter::maybeRender(bool force)
{
    std::lock_guard<std::mutex> lock(renderMutex_);
    const uint64_t now = monotonicNanos();
    // Repaint at most ~10x a second; the final state always renders.
    if (!force && now - lastRenderNanos_ < 100'000'000ull)
        return;
    lastRenderNanos_ = now;
    const double elapsed =
        static_cast<double>(now - startNanos_) * 1e-9;
    const std::string line = renderLine(
        label_, done_.load(std::memory_order_relaxed), total_, elapsed);
    std::lock_guard<std::mutex> active_lock(activeMeterMutex);
    if (activeMeter != this)
        return;
    std::fprintf(stderr, "\r%s\x1b[K", line.c_str());
    std::fflush(stderr);
}

void
ProgressMeter::finish()
{
    std::lock_guard<std::mutex> lock(activeMeterMutex);
    if (!active_)
        return;
    active_ = false;
    if (activeMeter == this) {
        activeMeter = nullptr;
        Logger::global().setLineHook(nullptr);
        unhookFatalSignals();
        std::fputs("\r\x1b[K", stderr);
        std::fflush(stderr);
    }
}

std::string
ProgressMeter::renderLine(const std::string &label, uint64_t done,
                          uint64_t total, double elapsed_seconds)
{
    char buffer[160];
    const double fraction =
        total > 0 ? static_cast<double>(done) /
                        static_cast<double>(total)
                  : 0.0;
    const double rate = elapsed_seconds > 0.0
                            ? static_cast<double>(done) /
                                  elapsed_seconds
                            : 0.0;
    if (done < total && rate > 0.0) {
        const double eta =
            static_cast<double>(total - done) / rate;
        std::snprintf(buffer, sizeof(buffer),
                      "%s %llu/%llu units (%.0f%%) | %.2f units/s "
                      "| ETA %.0fs",
                      label.c_str(),
                      static_cast<unsigned long long>(done),
                      static_cast<unsigned long long>(total),
                      100.0 * fraction, rate, eta);
    } else {
        std::snprintf(buffer, sizeof(buffer),
                      "%s %llu/%llu units (%.0f%%) | %.2f units/s",
                      label.c_str(),
                      static_cast<unsigned long long>(done),
                      static_cast<unsigned long long>(total),
                      100.0 * fraction, rate);
    }
    return buffer;
}

} // namespace xser::telemetry
