/**
 * @file
 * The telemetry layer's single wall-clock read site.
 */

#include "telemetry/stopwatch.hh"

#include <chrono>

namespace xser::telemetry {

uint64_t
monotonicNanos()
{
    const auto now = std::chrono::steady_clock::now();
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now.time_since_epoch())
            .count());
}

} // namespace xser::telemetry
