/**
 * @file
 * Manifest emission helpers and the paranoid JSON reader.
 */

#include "telemetry/manifest.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>

namespace xser::telemetry {

const char *const manifestSchema = "xser-run-manifest";
const char *const manifestTimingSection = "timing";

const char *
gitDescribe()
{
#ifdef XSER_GIT_DESCRIBE
    return XSER_GIT_DESCRIBE;
#else
    return "unknown";
#endif
}

void
writeSchemaPreamble(JsonWriter &json)
{
    json.member("schema", manifestSchema);
    json.member("schema_version",
                static_cast<uint64_t>(manifestSchemaVersion));
}

void
writeCounters(JsonWriter &json, const MetricShard &merged)
{
    json.beginObject("counters");
    for (size_t c = 0; c < numCounters; ++c)
        json.member(counterName(static_cast<Counter>(c)),
                    merged.counters[c]);
    json.endObject();
}

namespace {

/** One histogram as a JSON object (shape + counts). */
void
writeHistogram(JsonWriter &json, const char *name,
               const Histogram &histogram)
{
    json.beginObject(name);
    json.member("lo", histogram.low());
    json.member("hi", histogram.high());
    json.member("underflow", histogram.underflow());
    json.member("overflow", histogram.overflow());
    json.member("total", histogram.total());
    json.beginArray("bins");
    for (size_t i = 0; i < histogram.bins(); ++i)
        json.value(histogram.binCount(i));
    json.endArray();
    json.endObject();
}

} // namespace

void
writeDistributions(JsonWriter &json, const MetricShard &merged)
{
    json.beginObject("distributions");
    for (size_t d = 0; d < numDists; ++d) {
        const Dist dist = static_cast<Dist>(d);
        if (distIsTiming(dist))
            continue;
        writeHistogram(json, distName(dist), merged.dists[d]);
    }
    json.endObject();
}

void
writeTiming(JsonWriter &json, const MetricRegistry &registry,
            unsigned jobs, double elapsed_seconds)
{
    const MetricShard merged = registry.merged();
    json.beginObject(manifestTimingSection);
    json.member("jobs", static_cast<uint64_t>(jobs));
    json.member("shards",
                static_cast<uint64_t>(registry.shardCount()));
    json.member("elapsed_seconds", elapsed_seconds);
    json.beginObject("phase_seconds");
    for (size_t p = 0; p < numPhases; ++p)
        json.member(phaseName(static_cast<Phase>(p)),
                    merged.phaseSeconds[p]);
    json.endObject();
    json.beginArray("workers");
    for (size_t s = 0; s < registry.shardCount(); ++s) {
        const MetricShard &shard = registry.shard(s);
        double busy = 0.0;
        for (size_t p = 0; p < numPhases; ++p)
            busy += shard.phaseSeconds[p];
        json.beginObject();
        json.member("units", shard.unitsExecuted);
        json.member("busy_seconds", busy);
        json.endObject();
    }
    json.endArray();
    json.beginObject("distributions");
    for (size_t d = 0; d < numDists; ++d) {
        const Dist dist = static_cast<Dist>(d);
        if (!distIsTiming(dist))
            continue;
        writeHistogram(json, distName(dist), merged.dists[d]);
    }
    json.endObject();
    json.endObject();
}

const JsonValue *
JsonValue::find(const std::string &name) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[key, member] : members)
        if (key == name)
            return &member;
    return nullptr;
}

namespace {

/** Recursive-descent JSON parser; fails loudly, never crashes. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    ParsedJson
    run()
    {
        ParsedJson parsed;
        skipSpace();
        if (!parseValue(parsed.root, 0)) {
            parsed.error = error_;
            return parsed;
        }
        skipSpace();
        if (pos_ != text_.size()) {
            parsed.error = at("trailing garbage after document");
            return parsed;
        }
        parsed.ok = true;
        return parsed;
    }

  private:
    static constexpr int maxDepth = 64;

    std::string
    at(const std::string &what) const
    {
        return what + " at byte " + std::to_string(pos_);
    }

    bool
    fail(const std::string &what)
    {
        if (error_.empty())
            error_ = at(what);
        return false;
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word)
    {
        const size_t length = std::strlen(word);
        if (text_.compare(pos_, length, word) != 0)
            return false;
        pos_ += length;
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (c == '\\') {
                if (pos_ + 1 >= text_.size())
                    return fail("unterminated escape");
                const char escaped = text_[pos_ + 1];
                pos_ += 2;
                switch (escaped) {
                  case '"': out.push_back('"'); break;
                  case '\\': out.push_back('\\'); break;
                  case '/': out.push_back('/'); break;
                  case 'n': out.push_back('\n'); break;
                  case 'r': out.push_back('\r'); break;
                  case 't': out.push_back('\t'); break;
                  case 'b': out.push_back('\b'); break;
                  case 'f': out.push_back('\f'); break;
                  case 'u': {
                      if (pos_ + 4 > text_.size())
                          return fail("unterminated \\u escape");
                      unsigned code = 0;
                      for (unsigned i = 0; i < 4; ++i) {
                          const char h = text_[pos_ + i];
                          if (!std::isxdigit(
                                  static_cast<unsigned char>(h)))
                              return fail("bad \\u escape digit");
                          code = code * 16 +
                                 static_cast<unsigned>(
                                     h <= '9' ? h - '0'
                                              : (h | 0x20) - 'a' + 10);
                      }
                      pos_ += 4;
                      // Manifests are ASCII; keep non-ASCII escapes
                      // as replacement bytes rather than rejecting.
                      out.push_back(code < 0x80
                                        ? static_cast<char>(code)
                                        : '?');
                      break;
                  }
                  default:
                    return fail("unknown escape");
                }
                continue;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("raw control character in string");
            out.push_back(c);
            ++pos_;
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
            digits = true;
        }
        if (pos_ < text_.size() && text_[pos_] == '.') {
            ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (!digits)
            return fail("malformed number");
        out.kind = JsonValue::Kind::Number;
        out.text = text_.substr(start, pos_ - start);
        out.number = std::strtod(out.text.c_str(), nullptr);
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        skipSpace();
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        const char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind = JsonValue::Kind::Object;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipSpace();
                std::string key;
                if (!parseString(key))
                    return false;
                skipSpace();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail("expected ':' after object key");
                ++pos_;
                JsonValue member;
                if (!parseValue(member, depth + 1))
                    return false;
                out.members.emplace_back(std::move(key),
                                         std::move(member));
                skipSpace();
                if (pos_ >= text_.size())
                    return fail("unterminated object");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or '}' in object");
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind = JsonValue::Kind::Array;
            skipSpace();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                JsonValue element;
                if (!parseValue(element, depth + 1))
                    return false;
                out.elements.push_back(std::move(element));
                skipSpace();
                if (pos_ >= text_.size())
                    return fail("unterminated array");
                if (text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail("expected ',' or ']' in array");
            }
        }
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.text);
        }
        if (c == 't') {
            if (!literal("true"))
                return fail("bad literal");
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return true;
        }
        if (c == 'f') {
            if (!literal("false"))
                return fail("bad literal");
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return true;
        }
        if (c == 'n') {
            if (!literal("null"))
                return fail("bad literal");
            out.kind = JsonValue::Kind::Null;
            return true;
        }
        return parseNumber(out);
    }

    const std::string &text_;
    size_t pos_ = 0;
    std::string error_;
};

} // namespace

ParsedJson
parseJson(const std::string &text)
{
    return JsonParser(text).run();
}

} // namespace xser::telemetry
