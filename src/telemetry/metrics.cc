/**
 * @file
 * MetricShard / MetricRegistry implementation and metric name tables.
 */

#include "telemetry/metrics.hh"

#include "sim/logging.hh"

namespace xser::telemetry {

const char *
counterName(Counter counter)
{
    switch (counter) {
      case Counter::UnitsCompleted: return "units_completed";
      case Counter::SessionsPrefixed: return "sessions_prefixed";
      case Counter::CheckpointsSealed: return "checkpoints_sealed";
      case Counter::CheckpointSealedBytes:
        return "checkpoint_sealed_bytes";
      case Counter::CheckpointsOpened: return "checkpoints_opened";
      case Counter::CheckpointOpenedBytes:
        return "checkpoint_opened_bytes";
      case Counter::EdacCorrected: return "edac_corrected";
      case Counter::EdacUncorrected: return "edac_uncorrected";
      case Counter::ScrubPasses: return "scrub_passes";
      case Counter::ScrubLines: return "scrub_lines";
      case Counter::SnoopProbes: return "snoop_probes";
      case Counter::SnoopsFiltered: return "snoops_filtered";
      case Counter::BeamArrivals: return "beam_arrivals";
      case Counter::BeamSettles: return "beam_settles";
      case Counter::BeamQuantaSkipped: return "beam_quanta_skipped";
      case Counter::TraceEventsMerged: return "trace_events_merged";
      case Counter::NumCounters: break;
    }
    return "unknown";
}

const char *
distName(Dist dist)
{
    switch (dist) {
      case Dist::RunsPerUnit: return "runs_per_unit";
      case Dist::ErrorEventsPerUnit: return "error_events_per_unit";
      case Dist::CheckpointKilobytes: return "checkpoint_kilobytes";
      case Dist::UnitSeconds: return "unit_seconds";
      case Dist::NumDists: break;
    }
    return "unknown";
}

bool
distIsTiming(Dist dist)
{
    return dist == Dist::UnitSeconds;
}

const char *
phaseName(Phase phase)
{
    switch (phase) {
      case Phase::Prefix: return "prefix_run";
      case Phase::SnapshotEncode: return "snapshot_encode";
      case Phase::SnapshotRestore: return "snapshot_restore";
      case Phase::Continuation: return "continuation";
      case Phase::Merge: return "merge";
      case Phase::TraceWrite: return "trace_write";
      case Phase::NumPhases: break;
    }
    return "unknown";
}

namespace {

/** Fixed shape per distribution; overflow buckets catch the tails. */
Histogram
makeDist(Dist dist)
{
    switch (dist) {
      case Dist::RunsPerUnit: return Histogram(0.0, 4096.0, 64);
      case Dist::ErrorEventsPerUnit: return Histogram(0.0, 256.0, 64);
      case Dist::CheckpointKilobytes: return Histogram(0.0, 4096.0, 64);
      case Dist::UnitSeconds: return Histogram(0.0, 60.0, 60);
      case Dist::NumDists: break;
    }
    panic("makeDist: bad distribution index");
}

} // namespace

MetricShard::MetricShard()
{
    dists.reserve(numDists);
    for (size_t d = 0; d < numDists; ++d)
        dists.push_back(makeDist(static_cast<Dist>(d)));
}

void
MetricShard::merge(const MetricShard &other)
{
    for (size_t c = 0; c < numCounters; ++c)
        counters[c] += other.counters[c];
    for (size_t d = 0; d < numDists; ++d)
        dists[d].merge(other.dists[d]);
    for (size_t p = 0; p < numPhases; ++p)
        phaseSeconds[p] += other.phaseSeconds[p];
    unitsExecuted += other.unitsExecuted;
}

MetricRegistry::MetricRegistry(unsigned shards)
{
    if (shards == 0)
        shards = 1;
    shards_.resize(shards);
}

MetricShard &
MetricRegistry::shard(size_t index)
{
    XSER_ASSERT(index < shards_.size(), "metric shard out of range");
    return shards_[index];
}

const MetricShard &
MetricRegistry::shard(size_t index) const
{
    XSER_ASSERT(index < shards_.size(), "metric shard out of range");
    return shards_[index];
}

MetricShard
MetricRegistry::merged() const
{
    MetricShard total;
    for (const MetricShard &shard : shards_)
        total.merge(shard);
    return total;
}

} // namespace xser::telemetry
