/**
 * @file
 * JsonWriter implementation.
 */

#include "telemetry/json.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/logging.hh"

namespace xser::telemetry {

std::string
JsonWriter::formatDouble(double number)
{
    char buffer[40];
    // Walk precisions up until the rendering parses back exactly;
    // %.17g always does, so the loop terminates.
    for (int precision = 1; precision <= 17; ++precision) {
        std::snprintf(buffer, sizeof(buffer), "%.*g", precision,
                      number);
        if (std::strtod(buffer, nullptr) == number)
            break;
    }
    // JSON has no infinity/nan literals; clamp to null-adjacent text
    // rather than emitting an unparseable token.
    if (std::strcmp(buffer, "inf") == 0 ||
        std::strcmp(buffer, "-inf") == 0 ||
        std::strcmp(buffer, "nan") == 0 ||
        std::strcmp(buffer, "-nan") == 0)
        return "null";
    return buffer;
}

std::string
JsonWriter::quote(const std::string &text)
{
    std::string out = "\"";
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char escaped[8];
                std::snprintf(escaped, sizeof(escaped), "\\u%04x",
                              static_cast<unsigned>(c));
                out += escaped;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

void
JsonWriter::indent()
{
    out_.append(2 * stack_.size(), ' ');
}

void
JsonWriter::beforeValue()
{
    if (stack_.empty()) {
        XSER_ASSERT(out_.empty(),
                    "json: only one top-level value allowed");
        return;
    }
    Scope &scope = stack_.back();
    if (scope.kind == '{') {
        XSER_ASSERT(scope.keyPending,
                    "json: value inside an object needs a key first");
        scope.keyPending = false;
        return;
    }
    if (scope.items > 0)
        out_ += ",";
    out_ += "\n";
    indent();
    ++scope.items;
}

void
JsonWriter::key(const char *name)
{
    XSER_ASSERT(!stack_.empty() && stack_.back().kind == '{',
                "json: key() outside an object");
    Scope &scope = stack_.back();
    XSER_ASSERT(!scope.keyPending, "json: key() twice in a row");
    if (scope.items > 0)
        out_ += ",";
    out_ += "\n";
    indent();
    out_ += quote(name);
    out_ += ": ";
    ++scope.items;
    scope.keyPending = true;
}

void
JsonWriter::beginObject()
{
    beforeValue();
    out_ += "{";
    stack_.push_back({'{', 0, false});
}

void
JsonWriter::endObject()
{
    XSER_ASSERT(!stack_.empty() && stack_.back().kind == '{',
                "json: endObject() without beginObject()");
    XSER_ASSERT(!stack_.back().keyPending,
                "json: endObject() with a dangling key");
    const size_t items = stack_.back().items;
    stack_.pop_back();
    if (items > 0) {
        out_ += "\n";
        indent();
    }
    out_ += "}";
}

void
JsonWriter::beginArray()
{
    beforeValue();
    out_ += "[";
    stack_.push_back({'[', 0, false});
}

void
JsonWriter::endArray()
{
    XSER_ASSERT(!stack_.empty() && stack_.back().kind == '[',
                "json: endArray() without beginArray()");
    const size_t items = stack_.back().items;
    stack_.pop_back();
    if (items > 0) {
        out_ += "\n";
        indent();
    }
    out_ += "]";
}

void
JsonWriter::beginObject(const char *name)
{
    key(name);
    beginObject();
}

void
JsonWriter::beginArray(const char *name)
{
    key(name);
    beginArray();
}

void
JsonWriter::value(const std::string &text)
{
    beforeValue();
    out_ += quote(text);
}

void
JsonWriter::value(const char *text)
{
    value(std::string(text));
}

void
JsonWriter::value(double number)
{
    beforeValue();
    out_ += formatDouble(number);
}

void
JsonWriter::value(uint64_t number)
{
    beforeValue();
    out_ += std::to_string(number);
}

void
JsonWriter::value(int64_t number)
{
    beforeValue();
    out_ += std::to_string(number);
}

void
JsonWriter::value(bool flag)
{
    beforeValue();
    out_ += flag ? "true" : "false";
}

std::string
JsonWriter::take()
{
    XSER_ASSERT(stack_.empty(), "json: take() with open scopes");
    out_ += "\n";
    return std::move(out_);
}

} // namespace xser::telemetry
