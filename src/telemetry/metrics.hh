/**
 * @file
 * Determinism-safe campaign metrics: typed counters, phase timers, and
 * Histogram-backed distributions collected in per-worker shards and
 * merged canonically at campaign end.
 *
 * The contract (DESIGN.md section 11, machine-checked by xser-lint's
 * telemetry-purity rule): telemetry observes the simulation but never
 * feeds back into it. Counters and distributions record values that
 * are themselves pure functions of (seed, session, replicate), so the
 * merged totals are bit-identical for any --jobs; wall-clock readings
 * are tagged as timing and quarantined in the manifest's "timing"
 * section, which comparison tools skip by default.
 *
 * Instrumented code counts through the thread-local active shard:
 *
 *     telemetry::count(telemetry::Counter::EdacCorrected);
 *
 * When no shard is installed (telemetry off -- the default) every
 * recording call is a null-check and nothing else, so the instrumented
 * hot paths stay within the bench_telemetry_overhead gate.
 */

#ifndef XSER_TELEMETRY_METRICS_HH
#define XSER_TELEMETRY_METRICS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "stats/histogram.hh"
#include "telemetry/stopwatch.hh"

namespace xser::telemetry {

/** Deterministic event counters (values independent of --jobs). */
enum class Counter : uint32_t {
    UnitsCompleted,        ///< (session, replicate) units finished
    SessionsPrefixed,      ///< golden prefixes executed (phase 1)
    CheckpointsSealed,     ///< checkpoint envelopes written
    CheckpointSealedBytes, ///< total sealed envelope bytes
    CheckpointsOpened,     ///< envelopes validated and restored
    CheckpointOpenedBytes, ///< total opened envelope bytes
    EdacCorrected,         ///< CE posts through EdacReporter
    EdacUncorrected,       ///< UE posts through EdacReporter
    ScrubPasses,           ///< scrubber advances that scrubbed lines
    ScrubLines,            ///< cache lines swept by the scrubber
    SnoopProbes,           ///< L2 coherence snoops examined
    SnoopsFiltered,        ///< snoops skipped by the residency filter
    BeamArrivals,          ///< upset events injected by the beam
    BeamSettles,           ///< beam settle() evaluations
    BeamQuantaSkipped,     ///< quanta skipped by dose-space skip-ahead
    TraceEventsMerged,     ///< buffered trace events merged to disk
    NumCounters,
};

constexpr size_t numCounters = static_cast<size_t>(Counter::NumCounters);

/** Manifest key of a counter ("edac_corrected", ...). */
const char *counterName(Counter counter);

/** Histogram-backed distributions. */
enum class Dist : uint32_t {
    RunsPerUnit,         ///< workload runs per (session, replicate)
    ErrorEventsPerUnit,  ///< error events per (session, replicate)
    CheckpointKilobytes, ///< sealed envelope size per session
    UnitSeconds,         ///< wall-clock seconds per unit (timing)
    NumDists,
};

constexpr size_t numDists = static_cast<size_t>(Dist::NumDists);

/** Manifest key of a distribution ("runs_per_unit", ...). */
const char *distName(Dist dist);

/**
 * True for distributions of wall-clock readings; these are emitted
 * under the manifest's "timing" section and skipped by diff tools.
 */
bool distIsTiming(Dist dist);

/** Campaign phases timed by ScopedPhase. */
enum class Phase : uint32_t {
    Prefix,          ///< golden prefix execution
    SnapshotEncode,  ///< snapshot serialization + envelope seal
    SnapshotRestore, ///< envelope validation + snapshot restore
    Continuation,    ///< per-unit session/continuation execution
    Merge,           ///< canonical aggregate merge
    TraceWrite,      ///< trace buffer merge + file write
    NumPhases,
};

constexpr size_t numPhases = static_cast<size_t>(Phase::NumPhases);

/** Manifest key of a phase ("prefix_run", ...). */
const char *phaseName(Phase phase);

/**
 * One worker's metrics. Workers never share a shard, so recording
 * needs no synchronization; the registry merges shards in shard-index
 * order -- never completion order -- once the pool has drained.
 */
class MetricShard
{
  public:
    MetricShard();

    /** Deterministic counters, indexed by Counter. */
    std::array<uint64_t, numCounters> counters{};

    /** Distributions, indexed by Dist (fixed shapes, see metrics.cc). */
    std::vector<Histogram> dists;

    /** Wall-clock seconds per phase (timing; excluded from diffs). */
    std::array<double, numPhases> phaseSeconds{};

    /** Units this worker executed (timing; scheduling-dependent). */
    uint64_t unitsExecuted = 0;

    /** Fold another shard in (index order gives canonical totals). */
    void merge(const MetricShard &other);
};

/**
 * Owns one shard per worker. Built by whoever runs a campaign with
 * telemetry enabled and handed to the runner; merged() yields the
 * canonical totals for the manifest.
 */
class MetricRegistry
{
  public:
    /** @param shards One per worker; at least one. */
    explicit MetricRegistry(unsigned shards);

    MetricShard &shard(size_t index);
    const MetricShard &shard(size_t index) const;
    size_t shardCount() const { return shards_.size(); }

    /** Merge all shards in index order. */
    MetricShard merged() const;

  private:
    std::vector<MetricShard> shards_;
};

/**
 * The calling thread's active shard; null when telemetry is off.
 * A function-local thread_local keeps the library free of dynamic
 * initialization order concerns.
 */
inline MetricShard *&
activeShard()
{
    thread_local MetricShard *shard = nullptr;
    return shard;
}

/** Installs a shard on this thread for the scope's lifetime. */
class ShardScope
{
  public:
    explicit ShardScope(MetricShard *shard) : previous_(activeShard())
    {
        activeShard() = shard;
    }
    ~ShardScope() { activeShard() = previous_; }

    ShardScope(const ShardScope &) = delete;
    ShardScope &operator=(const ShardScope &) = delete;

  private:
    MetricShard *previous_;
};

/** Bump a counter on the active shard (no-op when telemetry is off). */
inline void
count(Counter counter, uint64_t delta = 1)
{
    if (MetricShard *shard = activeShard())
        shard->counters[static_cast<size_t>(counter)] += delta;
}

/** Record a distribution sample (no-op when telemetry is off). */
inline void
distAdd(Dist dist, double value)
{
    if (MetricShard *shard = activeShard())
        shard->dists[static_cast<size_t>(dist)].add(value);
}

/**
 * Times a phase on the active shard; the reading lands in the shard's
 * phaseSeconds (timing data), never in simulated state.
 */
class ScopedPhase
{
  public:
    explicit ScopedPhase(Phase phase)
        : phase_(phase), shard_(activeShard()),
          start_(shard_ != nullptr ? monotonicNanos() : 0)
    {
    }

    ~ScopedPhase()
    {
        if (shard_ == nullptr)
            return;
        shard_->phaseSeconds[static_cast<size_t>(phase_)] +=
            static_cast<double>(monotonicNanos() - start_) * 1e-9;
    }

    ScopedPhase(const ScopedPhase &) = delete;
    ScopedPhase &operator=(const ScopedPhase &) = delete;

  private:
    Phase phase_;
    MetricShard *shard_;
    uint64_t start_;
};

} // namespace xser::telemetry

#endif // XSER_TELEMETRY_METRICS_HH
