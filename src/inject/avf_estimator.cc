/**
 * @file
 * AvfEstimator implementation.
 */

#include "inject/avf_estimator.hh"

#include <cmath>

#include "inject/fault_injector.hh"
#include "sim/logging.hh"

namespace xser::inject {

AvfEstimator::AvfEstimator(const AvfConfig &config) : config_(config)
{
    if (config_.trials == 0 || config_.flipsPerTrial == 0)
        fatal("AVF estimation needs positive trials and flips");
    rebuild();
}

void
AvfEstimator::rebuild()
{
    platform_ = std::make_unique<cpu::XGene2Platform>();
    workload_ = workloads::makeWorkload(config_.workloadName);
    workloads::RunContext ctx(&platform_->memory(),
                              workloads::RunContext::QuantumHook(),
                              1u << 20);
    workload_->setUp(ctx);
    const workloads::WorkloadOutput golden = workload_->run(ctx);
    XSER_ASSERT(golden.termination == workloads::Termination::Completed,
                "golden AVF run trapped");
    golden_ = golden.signature;
    ++rebuildCount_;
}

AvfResult
AvfEstimator::estimate(mem::CacheLevel level)
{
    AvfResult result;
    result.level = level;
    result.flipsPerTrial = config_.flipsPerTrial;

    for (unsigned trial = 0; trial < config_.trials; ++trial) {
        // Target only this level's arrays.
        std::vector<mem::BeamTarget> targets;
        for (const auto &target : platform_->memory().beamTargets()) {
            if (target.level == level)
                targets.push_back(target);
        }
        XSER_ASSERT(!targets.empty(), "no arrays at requested level");
        FaultInjector injector(
            targets,
            config_.seed ^ (0x9e3779b97f4a7c15ULL * (trial + 1)) ^
                rebuildCount_);
        for (unsigned flip = 0; flip < config_.flipsPerTrial; ++flip) {
            if (config_.burstSize > 1)
                injector.injectRandomBurst(config_.burstSize);
            else
                injector.injectRandom();
        }

        workloads::RunContext ctx(&platform_->memory(),
                                  workloads::RunContext::QuantumHook(),
                                  1u << 20);
        const workloads::WorkloadOutput output = workload_->run(ctx);
        ++result.trials;
        const bool corrupted =
            output.termination != workloads::Termination::Completed ||
            output.signature != golden_;
        if (corrupted) {
            ++result.corruptedTrials;
            // Corruption can linger in dirty cached state; rebuild so
            // the next trial starts pristine.
            rebuild();
        }
    }

    result.trialCorruptionRate =
        static_cast<double>(result.corruptedTrials) /
        static_cast<double>(result.trials);
    // Invert the per-trial compounding: a = 1 - (1 - p)^(1/k). A
    // saturated estimate (every trial corrupted) has no finite
    // inversion; report the Jeffreys-adjusted bound instead.
    double p = result.trialCorruptionRate;
    if (p >= 1.0) {
        p = 1.0 - 0.5 / static_cast<double>(result.trials);
    }
    result.avf =
        1.0 - std::pow(1.0 - p,
                       1.0 / static_cast<double>(config_.flipsPerTrial));
    return result;
}

double
AvfEstimator::projectFit(const AvfResult &result,
                         const rad::CrossSectionModel &xsection,
                         double volts, double flux_per_hour) const
{
    uint64_t bits = 0;
    for (const auto &target : platform_->memory().beamTargets()) {
        if (target.level == result.level)
            bits += target.array->totalBits();
    }
    const double sigma = xsection.bitCrossSection(result.level, volts);
    return static_cast<double>(bits) * sigma * flux_per_hour * 1e9 *
           result.avf;
}

} // namespace xser::inject
