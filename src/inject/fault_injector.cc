/**
 * @file
 * FaultInjector implementation.
 */

#include "inject/fault_injector.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace xser::inject {

FaultInjector::FaultInjector(std::vector<mem::BeamTarget> targets,
                             uint64_t seed)
    : targets_(std::move(targets)), rng_(seed)
{
    if (targets_.empty())
        fatal("fault injector needs at least one target");
    cumulativeBits_.reserve(targets_.size());
    for (const auto &target : targets_) {
        footprintBits_ += target.array->totalBits();
        cumulativeBits_.push_back(footprintBits_);
    }
}

void
FaultInjector::inject(const FaultSite &site)
{
    XSER_ASSERT(site.targetIndex < targets_.size(),
                "fault site target out of range");
    mem::SramArray &array = *targets_[site.targetIndex].array;
    array.noteUpsetEvent();
    array.flipBit(site.word, site.bit);
    if (trace::TraceSink *sink = array.traceSink()) {
        sink->record({trace::EventType::Injection, array.now(),
                      array.traceId(), static_cast<uint64_t>(site.word),
                      static_cast<uint32_t>(site.bit), 1});
    }
    log_.push_back(site);
}

FaultSite
FaultInjector::siteAt(uint64_t flat_bit) const
{
    const auto found = std::upper_bound(cumulativeBits_.begin(),
                                        cumulativeBits_.end(), flat_bit);
    const auto target_index =
        static_cast<size_t>(found - cumulativeBits_.begin());
    const uint64_t base =
        target_index == 0 ? 0 : cumulativeBits_[target_index - 1];
    const uint64_t within = flat_bit - base;
    const auto &array = *targets_[target_index].array;

    FaultSite site;
    site.targetIndex = target_index;
    site.word = static_cast<size_t>(within / array.bitsPerWord());
    site.bit = static_cast<unsigned>(within % array.bitsPerWord());
    return site;
}

FaultSite
FaultInjector::injectRandom()
{
    const FaultSite site = siteAt(rng_.nextBounded(footprintBits_));
    inject(site);
    return site;
}

FaultSite
FaultInjector::injectRandomBurst(unsigned size)
{
    XSER_ASSERT(size >= 1, "burst needs at least one bit");
    FaultSite first = siteAt(rng_.nextBounded(footprintBits_));
    mem::SramArray &array = *targets_[first.targetIndex].array;
    array.noteUpsetEvent();
    if (trace::TraceSink *sink = array.traceSink()) {
        // A burst is one upset event: one record, aux = burst size.
        sink->record({trace::EventType::Injection, array.now(),
                      array.traceId(), static_cast<uint64_t>(first.word),
                      static_cast<uint32_t>(first.bit), size});
    }
    for (unsigned i = 0; i < size; ++i) {
        FaultSite site = first;
        site.bit = (first.bit + i) % array.bitsPerWord();
        array.flipBit(site.word, site.bit);
        log_.push_back(site);
    }
    return first;
}

void
FaultInjector::replay(const std::vector<FaultSite> &log)
{
    for (const auto &site : log)
        inject(site);
}

} // namespace xser::inject
