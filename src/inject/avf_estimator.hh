/**
 * @file
 * Statistical AVF estimation via fault injection (Design Implication
 * #3 of the paper): the probability that a bit flip in a given
 * structure corrupts the program output. Combined with a structure's
 * raw voltage-dependent cross section this yields per-structure FIT
 * estimates at any supply voltage, enabling the design-space
 * exploration the paper recommends:
 *
 *   FIT(structure, V) = bits * sigma_bit(V) * flux_ref * 1e9 * AVF
 *
 * Method: per trial, flip `flips_per_trial` uniformly random bits in
 * the target structure's arrays, execute one run, and compare against
 * the golden output. With per-flip corruption probability a and k
 * flips per trial, P(trial corrupts) = 1 - (1 - a)^k, so
 * a = 1 - (1 - p)^(1/k). Multi-flip trials buy statistics when a is
 * small (as it is: most flips are corrected by ECC or land in dead
 * data); the estimator inverts the compounding exactly.
 */

#ifndef XSER_INJECT_AVF_ESTIMATOR_HH
#define XSER_INJECT_AVF_ESTIMATOR_HH

#include <memory>
#include <string>

#include "cpu/xgene2_platform.hh"
#include "rad/cross_section_model.hh"
#include "workloads/workload.hh"

namespace xser::inject {

/** Result of one AVF estimation. */
struct AvfResult {
    mem::CacheLevel level;
    unsigned trials = 0;
    unsigned corruptedTrials = 0;   ///< output mismatch or trap
    unsigned flipsPerTrial = 0;
    double trialCorruptionRate = 0.0;  ///< corrupted / trials
    double avf = 0.0;                  ///< per-flip corruption prob.
};

/** Estimation parameters. */
struct AvfConfig {
    std::string workloadName = "EP";  ///< small setup, fast runs
    unsigned trials = 60;
    unsigned flipsPerTrial = 48;
    /**
     * Cluster size per injection: 1 = independent single flips (the
     * ECC-protected arrays show ~zero AVF, the paper's Design
     * Implication #1); >= 2 studies the MBU channel that defeats
     * SECDED in non-interleaved arrays (Section 6.2).
     */
    unsigned burstSize = 1;
    uint64_t seed = 0xa7fULL;
};

/**
 * Runs the injection campaign for one structure class. Each estimator
 * owns a fresh platform; corrupted trials rebuild the workload state
 * so trials stay independent.
 */
class AvfEstimator
{
  public:
    explicit AvfEstimator(const AvfConfig &config = {});

    /** Estimate the AVF of one cache level's arrays. */
    AvfResult estimate(mem::CacheLevel level);

    /**
     * Project a structure's FIT at a supply voltage from an AVF
     * result (Eq. 2 with the AVF derating).
     *
     * @param result A prior estimate for the structure.
     * @param xsection Voltage-dependent cross sections.
     * @param volts Supply voltage of the structure's domain.
     * @param flux_per_hour Reference flux (default NYC sea level).
     */
    double projectFit(const AvfResult &result,
                      const rad::CrossSectionModel &xsection,
                      double volts, double flux_per_hour = 13.0) const;

  private:
    /** (Re)build platform, workload, and golden reference. */
    void rebuild();

    AvfConfig config_;
    std::unique_ptr<cpu::XGene2Platform> platform_;
    std::unique_ptr<workloads::Workload> workload_;
    std::vector<uint64_t> golden_;
    uint64_t rebuildCount_ = 0;
};

} // namespace xser::inject

#endif // XSER_INJECT_AVF_ESTIMATOR_HH
