/**
 * @file
 * Fault-site addressing for targeted injection.
 *
 * Beam testing irradiates the whole chip (Section 3.4: "there is no
 * way to contain faults within a limited set of hardware resources");
 * microarchitecture-level fault injection does the opposite, picking
 * sites deliberately. The campaign uses the beam; the injector here
 * supports the complementary AVF-style studies the paper's Design
 * Implication #3 recommends, plus deterministic tests.
 */

#ifndef XSER_INJECT_FAULT_SITE_HH
#define XSER_INJECT_FAULT_SITE_HH

#include <cstdint>
#include <string>

#include "mem/memory_system.hh"

namespace xser::inject {

/** One injectable bit in the platform's SRAM footprint. */
struct FaultSite {
    size_t targetIndex = 0;   ///< index into the beam-target list
    size_t word = 0;          ///< word within the array
    unsigned bit = 0;         ///< stored bit within the word

    bool
    operator==(const FaultSite &other) const
    {
        return targetIndex == other.targetIndex && word == other.word &&
               bit == other.bit;
    }
};

/** Human-readable description of a site against a target list. */
std::string describeSite(const std::vector<mem::BeamTarget> &targets,
                         const FaultSite &site);

} // namespace xser::inject

#endif // XSER_INJECT_FAULT_SITE_HH
