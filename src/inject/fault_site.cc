/**
 * @file
 * FaultSite helpers.
 */

#include "inject/fault_site.hh"

#include "sim/logging.hh"

namespace xser::inject {

std::string
describeSite(const std::vector<mem::BeamTarget> &targets,
             const FaultSite &site)
{
    XSER_ASSERT(site.targetIndex < targets.size(),
                "fault site target out of range");
    const auto &target = targets[site.targetIndex];
    return msg(target.array->name(), "[", site.word, "] bit ", site.bit);
}

} // namespace xser::inject
