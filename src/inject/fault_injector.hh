/**
 * @file
 * Deterministic fault injector over the platform's SRAM arrays.
 *
 * Complements the beam: where BeamSource samples upsets from physics,
 * FaultInjector places them deliberately -- uniformly at random over
 * the footprint (statistical fault injection, [42] in the paper), at
 * an exact site (regression tests), or as a burst cluster (MBU
 * studies). An injection log supports bit-exact replay.
 */

#ifndef XSER_INJECT_FAULT_INJECTOR_HH
#define XSER_INJECT_FAULT_INJECTOR_HH

#include <vector>

#include "inject/fault_site.hh"
#include "sim/rng.hh"

namespace xser::inject {

/**
 * Places bit flips into a fixed target list.
 */
class FaultInjector
{
  public:
    /**
     * @param targets Arrays to inject into (typically
     *        MemorySystem::beamTargets()).
     * @param seed Stream seed for random site selection.
     */
    FaultInjector(std::vector<mem::BeamTarget> targets, uint64_t seed);

    /** Number of injectable bits across all targets. */
    uint64_t footprintBits() const { return footprintBits_; }

    /** Flip one specific site. */
    void inject(const FaultSite &site);

    /**
     * Flip one uniformly random bit over the whole footprint
     * (bit-weighted across arrays).
     *
     * @return The site chosen.
     */
    FaultSite injectRandom();

    /** Flip a cluster of `size` adjacent bits within one random word. */
    FaultSite injectRandomBurst(unsigned size);

    /** All sites injected so far, in order (replay log). */
    const std::vector<FaultSite> &log() const { return log_; }

    /** Replay a previously recorded log. */
    void replay(const std::vector<FaultSite> &log);

    /** Targets this injector addresses. */
    const std::vector<mem::BeamTarget> &targets() const
    {
        return targets_;
    }

  private:
    /** Map a flat bit offset onto a site. */
    FaultSite siteAt(uint64_t flat_bit) const;

    std::vector<mem::BeamTarget> targets_;
    std::vector<uint64_t> cumulativeBits_;  ///< prefix sums per target
    uint64_t footprintBits_ = 0;
    Rng rng_;
    std::vector<FaultSite> log_;
};

} // namespace xser::inject

#endif // XSER_INJECT_FAULT_INJECTOR_HH
