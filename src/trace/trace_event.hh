/**
 * @file
 * Typed records of an upset's lifecycle: strike -> detection ->
 * correction / miscorrection / silent propagation -> software outcome.
 *
 * Every event is stamped with simulated time and the full coordinate of
 * the cell it concerns (array id, word, stored bit); the enclosing
 * trace unit supplies the campaign-level coordinates (session,
 * replicate, voltage point). The schema deliberately depends only on
 * `sim/` so the mem/ecc/rad/inject layers can emit events without a
 * dependency cycle; cache levels travel as plain `uint8_t` values of
 * `mem::CacheLevel`.
 */

#ifndef XSER_TRACE_TRACE_EVENT_HH
#define XSER_TRACE_TRACE_EVENT_HH

#include <cstdint>
#include <string>

#include "sim/sim_clock.hh"

namespace xser::trace {

/** Lifecycle stage a record describes. */
enum class EventType : uint8_t {
    Injection = 0,      ///< beam/injector upset event landed in an array
    ParityDetect = 1,   ///< parity caught an odd number of flips
    EccCorrect = 2,     ///< SECDED repaired a single-bit error
    EccMiscorrect = 3,  ///< SECDED "repaired" the wrong bit (>=3 flips)
    UeDetect = 4,       ///< SECDED flagged an uncorrectable double
    Scrub = 5,          ///< patrol scrub found a non-clean line
    Propagate = 6,      ///< corrupt data delivered to a consumer
    OutcomeClassified = 7, ///< a benchmark run was classified
};

constexpr size_t numEventTypes = 8;

/** Stable display name ("Injection", "ParityDetect", ...). */
const char *eventTypeName(EventType type);

/** Parse a display name back to a type; false when unknown. */
bool eventTypeFromName(const std::string &name, EventType &out);

/** Sentinel coordinates for fields an event does not carry. */
constexpr uint32_t noArray = UINT32_MAX;
constexpr uint64_t noWord = UINT64_MAX;
constexpr uint32_t noBit = UINT32_MAX;

/**
 * One lifecycle record. Field meaning by type:
 *
 *  - Injection: word/bit = first struck cell, aux = cluster size (beam)
 *    or burst size (fault injector);
 *  - ParityDetect / EccCorrect / EccMiscorrect / UeDetect: word = read
 *    word, bit = repaired stored bit where known, aux = 0;
 *  - Scrub: word = base word of the scrubbed line, aux = 1 when the
 *    line held an uncorrectable error;
 *  - Propagate: aux = 0 for a silent escape delivered by a read, 1 for
 *    a dirty uncorrectable line handed downstream (word unknown);
 *  - OutcomeClassified: array = noArray, word = workload slot in the
 *    unit's workload list, bit = core::RunOutcome value, aux = flags
 *    (bit 0 CE notified, bit 1 trapped organically, bit 2 signature
 *    mismatch).
 */
struct TraceEvent {
    EventType type = EventType::Injection;
    Tick when = 0;            ///< simulated time (ps)
    uint32_t array = noArray; ///< row in the trace file's array table
    uint64_t word = noWord;   ///< word index within the array
    uint32_t bit = noBit;     ///< stored-bit position within the word
    uint64_t aux = 0;         ///< type-specific payload (see above)
};

/** One row of a trace file's array table (id = row index). */
struct TraceArrayInfo {
    std::string name;          ///< e.g. "l2.0.data"
    uint8_t level = 0;         ///< mem::CacheLevel value
    uint32_t wordsPerLine = 0; ///< 0 when not line-organized (L1I/TLB)
    uint32_t associativity = 0;
    uint64_t words = 0;        ///< capacity in 64-bit words
};

/** Word index decoded into cache geometry, when the array has one. */
struct LineCoord {
    bool valid = false; ///< false for non-line-organized arrays
    uint64_t set = 0;
    uint32_t way = 0;
    uint32_t offset = 0; ///< word offset within the line
};

/** Decode a word index against an array's geometry. */
LineCoord lineCoord(const TraceArrayInfo &info, uint64_t word);

} // namespace xser::trace

#endif // XSER_TRACE_TRACE_EVENT_HH
