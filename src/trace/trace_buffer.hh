/**
 * @file
 * Bounded in-memory event buffer: the per-work-unit sink the parallel
 * campaign engine attaches to each (session, replicate) unit. Memory
 * is bounded by construction -- once the capacity is reached further
 * events are counted as dropped but not stored, so a pathological
 * session cannot exhaust the host. Counters in the TraceSink base are
 * exact regardless of drops.
 */

#ifndef XSER_TRACE_TRACE_BUFFER_HH
#define XSER_TRACE_TRACE_BUFFER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace_sink.hh"

namespace xser::trace {

/** Identity of one (session, replicate) work unit in a trace file. */
struct TraceUnitInfo {
    uint32_t session = 0;
    uint32_t replicate = 0;
    double pmdMillivolts = 0.0;
    double socMillivolts = 0.0;
    double frequencyHz = 0.0;
    std::vector<std::string> workloads; ///< suite order = slot order
};

/** Bounded vector sink for one work unit. */
class TraceBuffer final : public TraceSink
{
  public:
    /** Default capacity: ~40 MB of events per unit at most. */
    static constexpr uint64_t defaultMaxEvents = uint64_t(1) << 20;

    explicit TraceBuffer(uint64_t max_events = defaultMaxEvents)
        : maxEvents_(max_events)
    {
    }

    const std::vector<TraceEvent> &events() const { return events_; }

    /** Events discarded after the buffer filled. */
    uint64_t dropped() const { return dropped_; }

    uint64_t maxEvents() const { return maxEvents_; }

    /** Unit coordinates, stamped by whoever owns the buffer. */
    TraceUnitInfo info;

  private:
    void
    doRecord(const TraceEvent &event) override
    {
        if (events_.size() < maxEvents_)
            events_.push_back(event);
        else
            ++dropped_;
    }

    void
    doClear() override
    {
        events_.clear();
        dropped_ = 0;
    }

    uint64_t maxEvents_;
    uint64_t dropped_ = 0;
    std::vector<TraceEvent> events_;
};

} // namespace xser::trace

#endif // XSER_TRACE_TRACE_BUFFER_HH
