/**
 * @file
 * The sink interface the instrumented hot paths talk to.
 *
 * Emitters hold a `TraceSink *` that is null when tracing is off, so
 * the disabled path is a single pointer test. The base class keeps
 * exact per-type and per-(type, level) counters on every record() --
 * independent of whatever the concrete sink does with the event, and
 * in particular independent of buffer-capacity drops -- which is what
 * makes the EDAC cross-check (EdacReporter::consistentWithTrace)
 * meaningful even for truncated buffers.
 */

#ifndef XSER_TRACE_TRACE_SINK_HH
#define XSER_TRACE_TRACE_SINK_HH

#include <array>
#include <cstdint>
#include <vector>

#include "trace/trace_event.hh"

namespace xser::trace {

/** Levels distinguishable in per-level counters (>= numCacheLevels). */
constexpr size_t maxTraceLevels = 8;

/**
 * Abstract event sink. Concrete sinks override doRecord/doClear; the
 * non-virtual entry points maintain the counters.
 */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;

    /** Record one event (counts it, then hands it to the sink). */
    void record(const TraceEvent &event);

    /** Reset counters and sink contents (start of a measured phase). */
    void clear();

    /** Declare an array id's cache level for per-level counters. */
    void registerArray(uint32_t id, uint8_t level);

    /** Events of one type recorded since the last clear(). */
    uint64_t count(EventType type) const
    {
        return typeCounts_[static_cast<size_t>(type)];
    }

    /** Events of one type attributed to arrays of one level. */
    uint64_t count(EventType type, uint8_t level) const;

    /**
     * Hardware-visible detections at one level: ParityDetect +
     * EccCorrect + EccMiscorrect + UeDetect. Emission is 1:1 with EDAC
     * posting, so this must equal the level's CE + UE tally.
     */
    uint64_t detectionCount(uint8_t level) const;

  protected:
    virtual void doRecord(const TraceEvent &event) = 0;
    virtual void doClear() = 0;

  private:
    std::vector<uint8_t> levels_; ///< array id -> cache level
    std::array<uint64_t, numEventTypes> typeCounts_{};
    std::array<std::array<uint64_t, maxTraceLevels>, numEventTypes>
        levelCounts_{};
};

} // namespace xser::trace

#endif // XSER_TRACE_TRACE_SINK_HH
