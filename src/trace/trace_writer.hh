/**
 * @file
 * Versioned compact binary trace files (.xtrace).
 *
 * Layout (all integers unsigned-LEB128 varints unless noted):
 *
 *   "XTRC" magic (4 raw bytes)
 *   version, campaign seed, config hash
 *   array count, then per array: name length + bytes, level,
 *     words-per-line, associativity, words
 *   unit count
 *   per unit, in canonical replicate-major order:
 *     session, replicate
 *     pmd mV, soc mV, frequency Hz (fixed 8-byte LE doubles)
 *     workload count, then per workload: name length + bytes
 *     dropped count, event count
 *     per event: type, timestamp delta (first is absolute), array+1,
 *       word+1, bit+1, aux  (the +1 encodings reserve 0 for "none")
 *
 * Timestamps within a unit are monotonic (the sim clock only moves
 * forward), so deltas keep typical events to a handful of bytes. The
 * writer is deterministic: identical buffers in identical order
 * produce byte-identical files.
 */

#ifndef XSER_TRACE_TRACE_WRITER_HH
#define XSER_TRACE_TRACE_WRITER_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_buffer.hh"

namespace xser::trace {

/** Current format version. */
constexpr uint64_t traceFormatVersion = 1;

/** The 4-byte file magic. */
extern const char traceMagic[4];

/**
 * Streams a trace file: header once, then one unit per work unit in
 * canonical order, then finish(). Opening happens in the constructor
 * so an unwritable path fails before any simulation time is spent.
 */
class TraceWriter
{
  public:
    /** Opens (truncates) `path`; fatal when it cannot be written. */
    explicit TraceWriter(const std::string &path);

    /** Write the file header. Must precede any appendUnit(). */
    void writeHeader(uint64_t seed, uint64_t config_hash,
                     const std::vector<TraceArrayInfo> &arrays,
                     uint64_t unit_count);

    /** Append one unit's buffer (call in canonical unit order). */
    void appendUnit(const TraceBuffer &buffer);

    /** Flush and verify all promised units were written. */
    void finish();

    const std::string &path() const { return path_; }
    uint64_t unitsWritten() const { return unitsWritten_; }

    /** Encode one unit section (exposed for round-trip tests). */
    static std::string encodeUnit(const TraceBuffer &buffer);

    /**
     * Encode the file header (exposed so the distributed campaign
     * service can assemble a byte-identical .xtrace in memory from
     * worker-streamed unit sections).
     */
    static std::string
    encodeHeader(uint64_t seed, uint64_t config_hash,
                 const std::vector<TraceArrayInfo> &arrays,
                 uint64_t unit_count);

  private:
    std::string path_;
    std::ofstream out_;
    uint64_t unitsExpected_ = 0;
    uint64_t unitsWritten_ = 0;
    bool headerWritten_ = false;
};

} // namespace xser::trace

#endif // XSER_TRACE_TRACE_WRITER_HH
