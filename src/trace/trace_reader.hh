/**
 * @file
 * Reader for .xtrace files (see trace_writer.hh for the layout).
 *
 * Decoding never throws and never trusts the input: bad magic, an
 * unsupported version, truncation, and implausible counts all land in
 * `TraceFile::ok == false` with a human-readable error, so the CLI and
 * tests can reject corrupt files gracefully.
 */

#ifndef XSER_TRACE_TRACE_READER_HH
#define XSER_TRACE_TRACE_READER_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trace/trace_buffer.hh"

namespace xser::trace {

/** One decoded work unit. */
struct TraceUnit {
    TraceUnitInfo info;
    uint64_t dropped = 0;
    std::vector<TraceEvent> events;

    /** Per-type event counts of this unit. */
    std::array<uint64_t, numEventTypes> typeCounts() const;
};

/** A fully decoded trace file. */
struct TraceFile {
    bool ok = false;
    std::string error; ///< set when !ok

    uint64_t version = 0;
    uint64_t seed = 0;
    uint64_t configHash = 0;
    std::vector<TraceArrayInfo> arrays;
    std::vector<TraceUnit> units;

    /** Total events across units. */
    uint64_t totalEvents() const;

    /** Total dropped events across units. */
    uint64_t totalDropped() const;

    /** Per-type event counts across units. */
    std::array<uint64_t, numEventTypes> typeCounts() const;
};

/** Decode an in-memory trace image. */
TraceFile decodeTrace(std::string_view bytes);

/** Read and decode a trace file from disk. */
TraceFile readTraceFile(const std::string &path);

} // namespace xser::trace

#endif // XSER_TRACE_TRACE_READER_HH
