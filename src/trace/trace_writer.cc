/**
 * @file
 * TraceWriter implementation.
 */

#include "trace/trace_writer.hh"

#include "sim/logging.hh"
#include "trace/varint.hh"

namespace xser::trace {

const char traceMagic[4] = {'X', 'T', 'R', 'C'};

TraceWriter::TraceWriter(const std::string &path)
    : path_(path),
      out_(path, std::ios::binary | std::ios::trunc)
{
    if (!out_)
        fatal(msg("cannot open trace file '", path_, "' for writing"));
}

std::string
TraceWriter::encodeHeader(uint64_t seed, uint64_t config_hash,
                          const std::vector<TraceArrayInfo> &arrays,
                          uint64_t unit_count)
{
    std::string bytes;
    bytes.append(traceMagic, sizeof(traceMagic));
    putVarint(bytes, traceFormatVersion);
    putVarint(bytes, seed);
    putVarint(bytes, config_hash);
    putVarint(bytes, arrays.size());
    for (const TraceArrayInfo &array : arrays) {
        putVarint(bytes, array.name.size());
        bytes.append(array.name);
        putVarint(bytes, array.level);
        putVarint(bytes, array.wordsPerLine);
        putVarint(bytes, array.associativity);
        putVarint(bytes, array.words);
    }
    putVarint(bytes, unit_count);
    return bytes;
}

void
TraceWriter::writeHeader(uint64_t seed, uint64_t config_hash,
                         const std::vector<TraceArrayInfo> &arrays,
                         uint64_t unit_count)
{
    XSER_ASSERT(!headerWritten_, "trace header written twice");
    const std::string bytes =
        encodeHeader(seed, config_hash, arrays, unit_count);
    out_.write(bytes.data(),
               static_cast<std::streamsize>(bytes.size()));
    unitsExpected_ = unit_count;
    headerWritten_ = true;
}

std::string
TraceWriter::encodeUnit(const TraceBuffer &buffer)
{
    std::string bytes;
    putVarint(bytes, buffer.info.session);
    putVarint(bytes, buffer.info.replicate);
    putDoubleBits(bytes, buffer.info.pmdMillivolts);
    putDoubleBits(bytes, buffer.info.socMillivolts);
    putDoubleBits(bytes, buffer.info.frequencyHz);
    putVarint(bytes, buffer.info.workloads.size());
    for (const std::string &name : buffer.info.workloads) {
        putVarint(bytes, name.size());
        bytes.append(name);
    }
    putVarint(bytes, buffer.dropped());
    putVarint(bytes, buffer.events().size());
    Tick previous = 0;
    for (const TraceEvent &event : buffer.events()) {
        XSER_ASSERT(event.when >= previous,
                    "trace timestamps must be monotonic within a unit");
        putVarint(bytes, static_cast<uint64_t>(event.type));
        putVarint(bytes, event.when - previous);
        previous = event.when;
        // +1 encodings reserve 0 for the "none" sentinels.
        putVarint(bytes, event.array == noArray
                             ? 0
                             : static_cast<uint64_t>(event.array) + 1);
        putVarint(bytes, event.word + 1); // noWord + 1 wraps to 0
        putVarint(bytes, event.bit == noBit
                             ? 0
                             : static_cast<uint64_t>(event.bit) + 1);
        putVarint(bytes, event.aux);
    }
    return bytes;
}

void
TraceWriter::appendUnit(const TraceBuffer &buffer)
{
    XSER_ASSERT(headerWritten_, "trace unit appended before header");
    XSER_ASSERT(unitsWritten_ < unitsExpected_,
                "more trace units appended than promised");
    const std::string bytes = encodeUnit(buffer);
    out_.write(bytes.data(),
               static_cast<std::streamsize>(bytes.size()));
    ++unitsWritten_;
}

void
TraceWriter::finish()
{
    XSER_ASSERT(headerWritten_, "trace finished before header");
    XSER_ASSERT(unitsWritten_ == unitsExpected_,
                "trace finished with missing units");
    out_.flush();
    if (!out_)
        fatal(msg("I/O error writing trace file '", path_, "'"));
    out_.close();
}

} // namespace xser::trace
