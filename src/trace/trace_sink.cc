/**
 * @file
 * TraceSink implementation.
 */

#include "trace/trace_sink.hh"

namespace xser::trace {

void
TraceSink::record(const TraceEvent &event)
{
    const auto type = static_cast<size_t>(event.type);
    ++typeCounts_[type];
    if (event.array != noArray && event.array < levels_.size()) {
        const uint8_t level = levels_[event.array];
        if (level < maxTraceLevels)
            ++levelCounts_[type][level];
    }
    doRecord(event);
}

void
TraceSink::clear()
{
    typeCounts_ = {};
    levelCounts_ = {};
    doClear();
}

void
TraceSink::registerArray(uint32_t id, uint8_t level)
{
    if (id >= levels_.size())
        levels_.resize(id + 1, static_cast<uint8_t>(maxTraceLevels));
    levels_[id] = level;
}

uint64_t
TraceSink::count(EventType type, uint8_t level) const
{
    if (level >= maxTraceLevels)
        return 0;
    return levelCounts_[static_cast<size_t>(type)][level];
}

uint64_t
TraceSink::detectionCount(uint8_t level) const
{
    return count(EventType::ParityDetect, level) +
           count(EventType::EccCorrect, level) +
           count(EventType::EccMiscorrect, level) +
           count(EventType::UeDetect, level);
}

} // namespace xser::trace
