/**
 * @file
 * Trace file reader implementation.
 */

#include "trace/trace_reader.hh"

#include <cstring>
#include <fstream>
#include <sstream>

#include "trace/trace_writer.hh"
#include "trace/varint.hh"

namespace xser::trace {

namespace {

/** Sanity caps so a corrupt length cannot drive a huge allocation. */
constexpr uint64_t maxNameLength = 4096;
constexpr uint64_t maxArrayCount = 1u << 20;
constexpr uint64_t maxWorkloadCount = 4096;

TraceFile
failed(const std::string &error)
{
    TraceFile file;
    file.error = error;
    return file;
}

bool
getString(std::string_view data, size_t &pos, uint64_t max_length,
          std::string &out)
{
    uint64_t length = 0;
    if (!getVarint(data, pos, length) || length > max_length ||
        pos + length > data.size())
        return false;
    out.assign(data.substr(pos, length));
    pos += length;
    return true;
}

} // namespace

std::array<uint64_t, numEventTypes>
TraceUnit::typeCounts() const
{
    std::array<uint64_t, numEventTypes> counts{};
    for (const TraceEvent &event : events)
        ++counts[static_cast<size_t>(event.type)];
    return counts;
}

uint64_t
TraceFile::totalEvents() const
{
    uint64_t total = 0;
    for (const TraceUnit &unit : units)
        total += unit.events.size();
    return total;
}

uint64_t
TraceFile::totalDropped() const
{
    uint64_t total = 0;
    for (const TraceUnit &unit : units)
        total += unit.dropped;
    return total;
}

std::array<uint64_t, numEventTypes>
TraceFile::typeCounts() const
{
    std::array<uint64_t, numEventTypes> counts{};
    for (const TraceUnit &unit : units) {
        const auto unit_counts = unit.typeCounts();
        for (size_t i = 0; i < numEventTypes; ++i)
            counts[i] += unit_counts[i];
    }
    return counts;
}

TraceFile
decodeTrace(std::string_view bytes)
{
    if (bytes.size() < sizeof(traceMagic) ||
        std::memcmp(bytes.data(), traceMagic, sizeof(traceMagic)) != 0)
        return failed("not a trace file (bad magic)");

    TraceFile file;
    size_t pos = sizeof(traceMagic);
    if (!getVarint(bytes, pos, file.version))
        return failed("truncated trace file (version)");
    if (file.version != traceFormatVersion) {
        std::ostringstream message;
        message << "unsupported trace version " << file.version
                << " (expected " << traceFormatVersion << ")";
        return failed(message.str());
    }

    uint64_t array_count = 0;
    uint64_t unit_count = 0;
    if (!getVarint(bytes, pos, file.seed) ||
        !getVarint(bytes, pos, file.configHash) ||
        !getVarint(bytes, pos, array_count))
        return failed("truncated trace file (header)");
    if (array_count > maxArrayCount)
        return failed("corrupt trace file (implausible array count)");
    file.arrays.reserve(static_cast<size_t>(array_count));
    for (uint64_t i = 0; i < array_count; ++i) {
        TraceArrayInfo array;
        uint64_t level = 0;
        uint64_t words_per_line = 0;
        uint64_t associativity = 0;
        if (!getString(bytes, pos, maxNameLength, array.name) ||
            !getVarint(bytes, pos, level) ||
            !getVarint(bytes, pos, words_per_line) ||
            !getVarint(bytes, pos, associativity) ||
            !getVarint(bytes, pos, array.words) ||
            level > UINT8_MAX || words_per_line > UINT32_MAX ||
            associativity > UINT32_MAX)
            return failed("truncated trace file (array table)");
        array.level = static_cast<uint8_t>(level);
        array.wordsPerLine = static_cast<uint32_t>(words_per_line);
        array.associativity = static_cast<uint32_t>(associativity);
        file.arrays.push_back(std::move(array));
    }
    if (!getVarint(bytes, pos, unit_count))
        return failed("truncated trace file (unit count)");

    for (uint64_t u = 0; u < unit_count; ++u) {
        TraceUnit unit;
        uint64_t session = 0;
        uint64_t replicate = 0;
        uint64_t workload_count = 0;
        uint64_t event_count = 0;
        if (!getVarint(bytes, pos, session) ||
            !getVarint(bytes, pos, replicate) ||
            session > UINT32_MAX || replicate > UINT32_MAX ||
            !getDoubleBits(bytes, pos, unit.info.pmdMillivolts) ||
            !getDoubleBits(bytes, pos, unit.info.socMillivolts) ||
            !getDoubleBits(bytes, pos, unit.info.frequencyHz) ||
            !getVarint(bytes, pos, workload_count) ||
            workload_count > maxWorkloadCount)
            return failed("truncated trace file (unit header)");
        unit.info.session = static_cast<uint32_t>(session);
        unit.info.replicate = static_cast<uint32_t>(replicate);
        unit.info.workloads.reserve(
            static_cast<size_t>(workload_count));
        for (uint64_t w = 0; w < workload_count; ++w) {
            std::string name;
            if (!getString(bytes, pos, maxNameLength, name))
                return failed("truncated trace file (workload names)");
            unit.info.workloads.push_back(std::move(name));
        }
        if (!getVarint(bytes, pos, unit.dropped) ||
            !getVarint(bytes, pos, event_count))
            return failed("truncated trace file (event count)");
        // Each event occupies at least 6 bytes, so an event count that
        // outruns the remaining bytes is corruption, not data.
        if (event_count > (bytes.size() - pos))
            return failed("corrupt trace file (implausible event count)");
        unit.events.reserve(static_cast<size_t>(event_count));
        Tick previous = 0;
        for (uint64_t e = 0; e < event_count; ++e) {
            TraceEvent event;
            uint64_t type = 0;
            uint64_t delta = 0;
            uint64_t array_plus1 = 0;
            uint64_t word_plus1 = 0;
            uint64_t bit_plus1 = 0;
            if (!getVarint(bytes, pos, type) ||
                !getVarint(bytes, pos, delta) ||
                !getVarint(bytes, pos, array_plus1) ||
                !getVarint(bytes, pos, word_plus1) ||
                !getVarint(bytes, pos, bit_plus1) ||
                !getVarint(bytes, pos, event.aux))
                return failed("truncated trace file (events)");
            if (type >= numEventTypes)
                return failed("corrupt trace file (unknown event type)");
            if (array_plus1 > UINT32_MAX || bit_plus1 > UINT32_MAX)
                return failed("corrupt trace file (coordinate range)");
            event.type = static_cast<EventType>(type);
            event.when = previous + delta;
            previous = event.when;
            event.array = array_plus1 == 0
                ? noArray
                : static_cast<uint32_t>(array_plus1 - 1);
            event.word = word_plus1 - 1; // 0 wraps back to noWord
            event.bit = bit_plus1 == 0
                ? noBit
                : static_cast<uint32_t>(bit_plus1 - 1);
            unit.events.push_back(event);
        }
        file.units.push_back(std::move(unit));
    }
    if (pos != bytes.size())
        return failed("corrupt trace file (trailing bytes)");
    file.ok = true;
    return file;
}

TraceFile
readTraceFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return failed("cannot open trace file '" + path + "'");
    std::ostringstream contents;
    contents << in.rdbuf();
    if (in.bad())
        return failed("I/O error reading trace file '" + path + "'");
    return decodeTrace(contents.str());
}

} // namespace xser::trace
