/**
 * @file
 * Unsigned-LEB128 varint and fixed-width double encoding for the trace
 * binary format. Doubles travel as their 8-byte little-endian IEEE-754
 * bit pattern so a round trip is bit-exact -- the same property the
 * determinism contract demands of the results themselves.
 */

#ifndef XSER_TRACE_VARINT_HH
#define XSER_TRACE_VARINT_HH

#include <bit>
#include <cstdint>
#include <string>
#include <string_view>

namespace xser::trace {

/** Append `value` as an unsigned LEB128 varint (1..10 bytes). */
inline void
putVarint(std::string &out, uint64_t value)
{
    while (value >= 0x80u) {
        out.push_back(static_cast<char>(0x80u | (value & 0x7fu)));
        value >>= 7;
    }
    out.push_back(static_cast<char>(value));
}

/**
 * Decode a varint at `pos`, advancing it past the encoding.
 *
 * @return false on truncation or an over-long (>10 byte) encoding.
 */
inline bool
getVarint(std::string_view data, size_t &pos, uint64_t &value)
{
    value = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        if (pos >= data.size())
            return false;
        const auto byte = static_cast<uint8_t>(data[pos++]);
        value |= static_cast<uint64_t>(byte & 0x7fu) << shift;
        if ((byte & 0x80u) == 0)
            return true;
    }
    return false;
}

/** Append a double as its 8-byte little-endian bit pattern. */
inline void
putDoubleBits(std::string &out, double value)
{
    const uint64_t bits = std::bit_cast<uint64_t>(value);
    for (unsigned i = 0; i < 8; ++i)
        out.push_back(static_cast<char>((bits >> (8 * i)) & 0xffu));
}

/** Decode a fixed 8-byte double; false on truncation. */
inline bool
getDoubleBits(std::string_view data, size_t &pos, double &value)
{
    if (pos + 8 > data.size())
        return false;
    uint64_t bits = 0;
    for (unsigned i = 0; i < 8; ++i) {
        bits |= static_cast<uint64_t>(
                    static_cast<uint8_t>(data[pos + i]))
                << (8 * i);
    }
    pos += 8;
    value = std::bit_cast<double>(bits);
    return true;
}

} // namespace xser::trace

#endif // XSER_TRACE_VARINT_HH
