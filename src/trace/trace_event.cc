/**
 * @file
 * Trace event schema helpers.
 */

#include "trace/trace_event.hh"

namespace xser::trace {

const char *
eventTypeName(EventType type)
{
    switch (type) {
      case EventType::Injection: return "Injection";
      case EventType::ParityDetect: return "ParityDetect";
      case EventType::EccCorrect: return "EccCorrect";
      case EventType::EccMiscorrect: return "EccMiscorrect";
      case EventType::UeDetect: return "UeDetect";
      case EventType::Scrub: return "Scrub";
      case EventType::Propagate: return "Propagate";
      case EventType::OutcomeClassified: return "OutcomeClassified";
    }
    return "unknown";
}

bool
eventTypeFromName(const std::string &name, EventType &out)
{
    for (size_t i = 0; i < numEventTypes; ++i) {
        const auto type = static_cast<EventType>(i);
        if (name == eventTypeName(type)) {
            out = type;
            return true;
        }
    }
    return false;
}

LineCoord
lineCoord(const TraceArrayInfo &info, uint64_t word)
{
    LineCoord coord;
    if (info.wordsPerLine == 0 || info.associativity == 0 ||
        word >= info.words)
        return coord;
    const uint64_t line = word / info.wordsPerLine;
    coord.valid = true;
    coord.set = line / info.associativity;
    coord.way = static_cast<uint32_t>(line % info.associativity);
    coord.offset = static_cast<uint32_t>(word % info.wordsPerLine);
    return coord;
}

} // namespace xser::trace
