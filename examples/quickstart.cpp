/**
 * @file
 * Quickstart: build an X-Gene 2 platform, put it in a simulated
 * neutron beam at the paper's Vmin operating point, run one short test
 * session, and print what the campaign observed.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "core/fit_calculator.hh"
#include "core/test_session.hh"
#include "cpu/xgene2_platform.hh"
#include "volt/operating_point.hh"

int
main()
{
    using namespace xser;

    // 1. The server under test: Table 1's X-Gene 2 (8 Armv8 cores,
    //    parity L1/TLB, SECDED L2/L3, PMD + SoC voltage domains).
    cpu::XGene2Platform platform;
    std::printf("%s\n", platform.specTable().c_str());

    // 2. A short beam session at the lowest safe voltage (920 mV @
    //    2.4 GHz), stopping after 30 error events or 2e10 n/cm^2.
    core::SessionConfig config;
    config.point = volt::vminPoint();
    config.maxErrorEvents = 30;
    config.maxFluence = 2e10;
    config.seed = 42;

    core::TestSession session(&platform, config);
    core::SessionResult result = session.execute();

    // 3. What the Control-PC logged.
    std::printf("Session at %s\n", result.point.label().c_str());
    std::printf("  runs                : %llu\n",
                static_cast<unsigned long long>(result.runs));
    std::printf("  fluence             : %.3e n/cm^2\n", result.fluence);
    std::printf("  beam-equivalent time: %.1f minutes\n",
                result.equivalentMinutes());
    std::printf("  memory upsets       : %llu (%.2f per minute)\n",
                static_cast<unsigned long long>(result.upsetsDetected),
                result.upsetsPerMinute());
    std::printf("  SDCs                : %llu\n",
                static_cast<unsigned long long>(
                    result.events.sdcTotal()));
    std::printf("  application crashes : %llu\n",
                static_cast<unsigned long long>(result.events.appCrash));
    std::printf("  system crashes      : %llu\n",
                static_cast<unsigned long long>(result.events.sysCrash));

    // 4. Projected failure rates at NYC sea level (Eq. 1 + Eq. 2).
    const core::FitBreakdown fit = core::FitCalculator::breakdown(result);
    std::printf("  SDC FIT             : %.2f [%.2f, %.2f]\n",
                fit.sdc.fit, fit.sdc.ci.lower, fit.sdc.ci.upper);
    std::printf("  total FIT           : %.2f [%.2f, %.2f]\n",
                fit.total.fit, fit.total.ci.lower, fit.total.ci.upper);
    return 0;
}
