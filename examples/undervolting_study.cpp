/**
 * @file
 * Undervolting study: the paper's full methodology end to end on one
 * chip specimen.
 *
 *  1. Offline characterization (Section 4.1 / Fig. 4): sweep the PMD
 *     supply downward at both frequencies, find the safe Vmin.
 *  2. Accelerated beam sessions at nominal, safe, and Vmin settings
 *     (Sections 4.2-4.4).
 *  3. The power/dependability trade-off that falls out (Section 5 and
 *     Design Implication #2).
 *
 * Run: ./build/examples/undervolting_study [chip-seed]
 */

#include <cstdio>
#include <cstdlib>

#include "core/fit_calculator.hh"
#include "core/test_session.hh"
#include "cpu/xgene2_platform.hh"
#include "volt/operating_point.hh"
#include "volt/vmin_characterizer.hh"

namespace {

/** One short beam session at a point, on a fresh instance of `chip`. */
xser::core::SessionResult
beamSession(const xser::cpu::PlatformConfig &chip,
            const xser::volt::OperatingPoint &point, uint64_t seed)
{
    xser::cpu::XGene2Platform platform(chip);
    xser::core::SessionConfig config;
    config.point = point;
    config.maxErrorEvents = 30;
    config.maxFluence = 1.5e10;
    config.seed = seed;
    xser::core::TestSession session(&platform, config);
    return session.execute();
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace xser;

    cpu::PlatformConfig chip;
    if (argc > 1)
        chip.chipSeed = std::strtoull(argv[1], nullptr, 0);
    std::printf("chip specimen seed: 0x%llx\n\n",
                static_cast<unsigned long long>(chip.chipSeed));

    // ---- Phase 1: offline Vmin characterization (no radiation) ----
    cpu::XGene2Platform probe(chip);
    volt::VminCharacterizer characterizer(probe.timing(),
                                          probe.variation());

    volt::VminSweepConfig sweep;
    sweep.frequencyHz = 2.4e9;
    sweep.startMillivolts = 980.0;
    sweep.stopMillivolts = 890.0;
    sweep.runsPerStep = 500;
    const volt::VminSweepResult result24 = characterizer.sweep(sweep);

    sweep.frequencyHz = 0.9e9;
    sweep.startMillivolts = 820.0;
    sweep.stopMillivolts = 760.0;
    const volt::VminSweepResult result900 = characterizer.sweep(sweep);

    std::printf("safe Vmin @ 2.4 GHz : %.0f mV (complete failure at "
                "%.0f mV)\n",
                result24.safeVminMillivolts,
                result24.completeFailMillivolts);
    std::printf("safe Vmin @ 900 MHz : %.0f mV (complete failure at "
                "%.0f mV)\n",
                result900.safeVminMillivolts,
                result900.completeFailMillivolts);
    std::printf("weakest core        : %u (offset %+.1f mV)\n\n",
                probe.variation().weakestCore(),
                probe.variation().worstOffsetVolts() * 1000.0);

    // ---- Phase 2: beam sessions at the three 2.4 GHz settings ----
    const volt::OperatingPoint points[] = {
        volt::nominalPoint(),
        volt::safePoint(),
        volt::vminPoint(),
    };
    std::printf("%-16s %9s %11s %9s %9s\n", "setting", "power(W)",
                "upsets/min", "SDC FIT", "total FIT");
    double nominal_power = 0.0;
    double nominal_fit = 0.0;
    uint64_t session_index = 0;
    for (const auto &point : points) {
        // Distinct seed per session: reusing one seed would replay the
        // same random stream at every voltage and correlate the
        // Poisson draws across sessions.
        const core::SessionResult session = beamSession(
            chip, point,
            0xbea3 + chip.chipSeed + 0x9e37 * ++session_index);
        const core::FitBreakdown fit =
            core::FitCalculator::breakdown(session);
        std::printf("%-16s %9.2f %11.2f %9.2f %9.2f\n",
                    point.label().c_str(), session.avgPowerWatts,
                    session.upsetsPerMinute(), fit.sdc.fit,
                    fit.total.fit);
        if (point.name == "Nominal") {
            nominal_power = session.avgPowerWatts;
            nominal_fit = fit.total.fit;
        } else {
            // ---- Phase 3: the trade-off ----
            const double savings = 100.0 *
                (nominal_power - session.avgPowerWatts) / nominal_power;
            const double fit_ratio =
                nominal_fit > 0.0 ? fit.total.fit / nominal_fit : 0.0;
            std::printf("%-16s -> saves %.1f%% power at %.1fx the "
                        "nominal failure rate\n",
                        "", savings, fit_ratio);
        }
    }
    std::printf("\nDesign Implication #2: the 930 mV setting banks most"
                " of the power\nsavings while the FIT explosion only"
                " arrives in the last 10 mV above\nthe cliff.\n");
    return 0;
}
