/**
 * @file
 * Bringing your own workload: implement the Workload interface for a
 * domain-specific kernel and put it under the beam next to the NPB
 * suite. The example kernel is a dense matrix-vector product chain
 * (a stand-in for an inference-serving loop), with NPB-style
 * verification and the trap-on-wild-index discipline.
 *
 * Run: ./build/examples/custom_workload
 */

#include <cmath>
#include <cstdio>
#include <memory>

#include "core/control_pc.hh"
#include "core/test_session.hh"
#include "cpu/xgene2_platform.hh"
#include "inject/fault_injector.hh"
#include "volt/operating_point.hh"
#include "workloads/workload.hh"

namespace {

using namespace xser;

/** Dense mat-vec chain: y = A^k x through the simulated hierarchy. */
class MatVecWorkload : public workloads::Workload
{
  public:
    MatVecWorkload()
    {
        traits_.name = "MATVEC";
        traits_.codeFootprintWords = 400;
        traits_.tlbFootprintEntries = 512;
        traits_.activityFactor = 1.02;
        traits_.sdcWeight = 1.05;
        traits_.appCrashWeight = 0.9;
        traits_.sysCrashWeight = 1.0;
        traits_.datasetWords = 2 * 1024 * 1024 / 8;
        traits_.windowLines = 4096;
    }

    const workloads::WorkloadTraits &
    traits() const override
    {
        return traits_;
    }

    uint64_t
    approxAccessesPerRun() const override
    {
        return steps * (2 * n * n + 4 * n) + 2 * n;
    }

  protected:
    void
    onSetUp(workloads::RunContext &ctx) override
    {
        auto &memory = ctx.memory();
        matrix_ = workloads::SimArray<double>(memory, n * n, "mv.A");
        x_ = workloads::SimArray<double>(memory, n, "mv.x");
        y_ = workloads::SimArray<double>(memory, n, "mv.y");
        // Row-stochastic-ish matrix: keeps the iterate bounded, so the
        // verification bound below is tight.
        for (size_t i = 0; i < n; ++i) {
            ctx.setCore(ctx.coreForIndex(i, n));
            for (size_t j = 0; j < n; ++j) {
                const double value =
                    (1.0 + 0.3 * std::sin(0.01 * static_cast<double>(
                                              i * n + j))) /
                    static_cast<double>(n);
                matrix_.set(ctx, i * n + j, value);
            }
            ctx.poll();
        }
    }

    workloads::WorkloadOutput
    onRun(workloads::RunContext &ctx) override
    {
        workloads::WorkloadOutput output;
        for (size_t i = 0; i < n; ++i) {
            ctx.setCore(ctx.coreForIndex(i, n));
            x_.set(ctx, i, 1.0);
        }
        for (unsigned step = 0; step < steps; ++step) {
            for (size_t i = 0; i < n; ++i) {
                ctx.setCore(ctx.coreForIndex(i, n));
                double sum = 0.0;
                for (size_t j = 0; j < n; ++j)
                    sum += matrix_.get(ctx, i * n + j) * x_.get(ctx, j);
                y_.set(ctx, i, sum);
                ctx.poll();
            }
            for (size_t i = 0; i < n; ++i) {
                ctx.setCore(ctx.coreForIndex(i, n));
                x_.set(ctx, i, y_.get(ctx, i));
            }
        }
        workloads::SignatureBuilder signature;
        double norm = 0.0;
        for (size_t i = 0; i < n; ++i) {
            ctx.setCore(ctx.coreForIndex(i, n));
            const double value = x_.get(ctx, i);
            norm += value * value;
            signature.add(value);
        }
        output.signature = signature.finish();
        // The row sums stay within [0.7, 1.3], so after `steps`
        // applications the norm is bounded accordingly.
        const double bound = std::pow(1.3, steps) *
                             std::sqrt(static_cast<double>(n));
        output.verified = std::isfinite(norm) &&
                          std::sqrt(norm) < bound && norm > 0.0;
        return output;
    }

    void
    onSnapshot(xser::SnapshotWriter &writer) const override
    {
        matrix_.snapshot(writer);
        x_.snapshot(writer);
        y_.snapshot(writer);
    }

    void
    onRestore(xser::SnapshotReader &reader,
              xser::mem::MemorySystem &memory) override
    {
        matrix_.restore(reader, memory);
        x_.restore(reader, memory);
        y_.restore(reader, memory);
    }

  private:
    static constexpr size_t n = 160;
    static constexpr unsigned steps = 6;

    workloads::WorkloadTraits traits_;
    workloads::SimArray<double> matrix_;
    workloads::SimArray<double> x_;
    workloads::SimArray<double> y_;
};

} // namespace

int
main()
{
    using namespace xser;

    // 1. Golden run + targeted fault injection, standalone.
    cpu::XGene2Platform platform;
    MatVecWorkload workload;
    workloads::RunContext ctx(&platform.memory(),
                              workloads::RunContext::QuantumHook(),
                              1u << 20);
    workload.setUp(ctx);
    const workloads::WorkloadOutput golden = workload.run(ctx);
    std::printf("golden run: verified=%s, signature[0]=%016llx\n",
                golden.verified ? "yes" : "no",
                static_cast<unsigned long long>(golden.signature[0]));

    // 2. Statistical fault injection (Design Implication #3 flow):
    //    each trial gets a pristine platform, a dose of flips, one
    //    run, and an outcome classification.
    unsigned masked = 0;
    unsigned corrupted = 0;
    const unsigned trials = 12;
    for (unsigned trial = 0; trial < trials; ++trial) {
        cpu::XGene2Platform trial_platform;
        MatVecWorkload trial_workload;
        workloads::RunContext trial_ctx(
            &trial_platform.memory(),
            workloads::RunContext::QuantumHook(), 1u << 20);
        trial_workload.setUp(trial_ctx);

        inject::FaultInjector injector(
            trial_platform.memory().beamTargets(), 0x1badULL + trial);
        // Single-bit flips: always corrected or harmless. Burst
        // clusters (the low-voltage MBU mode): can defeat SECDED.
        for (int flip = 0; flip < 50; ++flip)
            injector.injectRandom();
        for (int burst = 0; burst < 12; ++burst)
            injector.injectRandomBurst(3);

        const workloads::WorkloadOutput run =
            trial_workload.run(trial_ctx);
        if (run.termination == workloads::Termination::Completed &&
            run.signature == golden.signature) {
            ++masked;
        } else {
            ++corrupted;
        }
    }
    std::printf("fault injection: %u/%u trials masked, %u corrupted\n"
                "(single flips are always corrected; only multi-bit\n"
                "bursts that alias past SECDED can corrupt the output\n"
                "-- the Section 6.2 channel)\n\n",
                masked, trials, corrupted);
    return 0;
}
