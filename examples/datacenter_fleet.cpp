/**
 * @file
 * Datacenter fleet planning: turn measured session DCS into expected
 * yearly failure counts for a server fleet, across deployment sites
 * and voltage policies -- the cloud-operator question the paper's
 * Design Implication #2 addresses.
 *
 * The FIT math follows Section 2.1: DCS from an accelerated session,
 * then FIT = DCS x site_flux x 1e9 h, then expected failures =
 * FIT x devices x hours / 1e9.
 *
 * Run: ./build/examples/datacenter_fleet
 */

#include <cstdio>

#include "core/dcs_calculator.hh"
#include "core/test_session.hh"
#include "cpu/xgene2_platform.hh"
#include "rad/fit_math.hh"
#include "rad/flux_environment.hh"
#include "volt/operating_point.hh"

namespace {

struct Site {
    const char *name;
    double altitude_meters;
};

} // namespace

int
main()
{
    using namespace xser;

    constexpr double fleet_devices = 50000.0;
    constexpr double year_hours = 24.0 * 365.0;
    const Site sites[] = {
        {"NYC (sea level)", 0.0},
        {"Denver (1600 m)", 1600.0},
        {"La Paz (3600 m)", 3600.0},
    };
    const volt::OperatingPoint policies[] = {
        volt::nominalPoint(),
        volt::safePoint(),
        volt::vminPoint(),
    };

    std::printf("fleet: %.0f servers, 1 year of operation\n\n",
                fleet_devices);
    std::printf("%-16s %-18s %10s %12s %12s\n", "policy", "site",
                "SDC FIT", "SDCs/year", "crashes/yr");

    for (const auto &policy : policies) {
        // Measure this policy's DCS with one accelerated session.
        cpu::XGene2Platform platform;
        core::SessionConfig config;
        config.point = policy;
        config.maxErrorEvents = 40;
        config.maxFluence = 2e10;
        config.seed = 0xf1ee7;
        core::TestSession session(&platform, config);
        const core::SessionResult result = session.execute();
        const core::DcsBreakdown dcs =
            core::DcsCalculator::breakdown(result);

        for (const auto &site : sites) {
            const rad::FluxEnvironment environment =
                rad::atAltitude(site.altitude_meters);
            const double sdc_fit =
                rad::fitFromDcs(dcs.sdc.dcs, environment.perHour());
            const double crash_fit = rad::fitFromDcs(
                dcs.appCrash.dcs + dcs.sysCrash.dcs,
                environment.perHour());
            std::printf("%-16s %-18s %10.2f %12.1f %12.1f\n",
                        policy.label().c_str(), site.name, sdc_fit,
                        rad::expectedFailures(sdc_fit, fleet_devices,
                                              year_hours),
                        rad::expectedFailures(crash_fit, fleet_devices,
                                              year_hours));
        }
        const double power_saved_kw =
            (volt::PowerModel().totalWatts(volt::nominalPoint()) -
             result.avgPowerWatts) * fleet_devices / 1000.0;
        std::printf("%-16s -> fleet power saved vs nominal: %.0f kW\n\n",
                    "", power_saved_kw);
    }

    std::printf(
        "reading: undervolting to Vmin multiplies yearly silent\n"
        "corruptions by >10x at every site, and altitude multiplies\n"
        "everything again (~3x in Denver, ~12x in La Paz). Running\n"
        "10 mV above Vmin keeps most of the power win without the\n"
        "SDC explosion -- Design Implication #2.\n");
    return 0;
}
