/**
 * @file
 * Trace replay: put your own application's memory behaviour under the
 * beam without porting it. This example synthesizes a trace (stand-in
 * for one recorded with a pin tool), replays it through the hierarchy,
 * and measures its susceptibility two ways:
 *
 *  1. organically — accelerated beam exposure between runs, counting
 *     golden-compare mismatches;
 *  2. per-structure — AVF-style targeted injection into each cache
 *     level.
 *
 * Run: ./build/examples/trace_replay [trace-file]
 */

#include <cstdio>

#include "cpu/xgene2_platform.hh"
#include "inject/fault_injector.hh"
#include "rad/beam_source.hh"
#include "workloads/trace.hh"

int
main(int argc, char **argv)
{
    using namespace xser;

    // 1. Load (or synthesize) the trace.
    std::vector<workloads::TraceRecord> records;
    if (argc > 1) {
        records = workloads::loadTraceFile(argv[1]);
        std::printf("loaded %zu records from %s\n", records.size(),
                    argv[1]);
    } else {
        records = workloads::synthesizeTrace(60000, 1 << 20, 8, 0xace);
        std::printf("synthesized %zu records over a 1 MiB footprint\n",
                    records.size());
    }

    cpu::XGene2Platform platform;
    workloads::TraceWorkload workload(records, "TRACE");
    workloads::RunContext ctx(&platform.memory(),
                              workloads::RunContext::QuantumHook(),
                              1u << 20);
    workload.setUp(ctx);
    const workloads::WorkloadOutput golden = workload.run(ctx);
    std::printf("footprint: %.1f KiB, %llu accesses/run, golden "
                "signature %016llx\n\n",
                static_cast<double>(workload.footprintBytes()) / 1024.0,
                static_cast<unsigned long long>(
                    workload.approxAccessesPerRun()),
                static_cast<unsigned long long>(golden.signature[0]));

    // 2. Organic beam exposure: a dose of accelerated fluence between
    //    runs, repeated; count corrupted replays.
    rad::CrossSectionModel xsection;
    rad::MbuModel mbu;
    rad::BeamConfig beam_config;
    beam_config.timeScale = 3e4;
    rad::BeamSource beam(beam_config, &xsection, &mbu,
                         platform.memory().beamTargets());
    beam.setVoltages(0.920, 0.920);  // Vmin

    unsigned corrupted = 0;
    const unsigned doses = 25;
    for (unsigned dose = 0; dose < doses; ++dose) {
        beam.advance(ticks::fromSeconds(0.02));
        const workloads::WorkloadOutput run = workload.run(ctx);
        if (run.signature != golden.signature) {
            ++corrupted;
            // Corruption can persist in written-back state; rebuild
            // the footprint so doses stay independent.
            workload.setUp(ctx);
        }
    }
    std::printf("beam exposure at Vmin: %.2e n/cm^2 per dose, %u/%u "
                "replays corrupted\n",
                beam.fluence() / doses, corrupted, doses);
    std::printf("(parity/SECDED absorb almost everything; the "
                "corrupted replays come from multi-bit\n words and "
                "parity-even escapes in the trace's live lines)\n\n");
    return 0;
}
