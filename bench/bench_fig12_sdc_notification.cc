/**
 * @file
 * Regenerates Fig. 12: SDC FIT rates split by hardware-notification
 * class (no notification vs coincident corrected-error report) at the
 * three 2.4 GHz voltage settings.
 */

#include "bench_common.hh"
#include "core/campaign_report.hh"

int
main()
{
    using namespace xser;
    bench::banner("Fig. 12: SDC FIT by notification class (2.4 GHz)");

    const auto sessions = bench::run24GHzSessions();
    std::printf("%s\n", core::formatFig12(sessions).c_str());

    bench::paperReference(
        "                 980mV  930mV  920mV\n"
        "w/o notification: 1.84   3.84  39.2\n"
        "w/  notification: 0.70   0.98   2.23\n"
        "shape: both classes grow toward Vmin, but unnotified SDCs\n"
        "dominate and explode -- the corruption originates in\n"
        "unprotected core logic (Design Implication #4).\n");
    return 0;
}
