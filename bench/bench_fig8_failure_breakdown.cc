/**
 * @file
 * Regenerates Fig. 8: percentage of AppCrash / SysCrash / SDC among
 * the abnormal behaviors at each 2.4 GHz voltage setting.
 */

#include "bench_common.hh"
#include "core/campaign_report.hh"

int
main()
{
    using namespace xser;
    bench::banner("Fig. 8: failure-type breakdown (2.4 GHz)");

    const auto sessions = bench::run24GHzSessions();
    std::printf("%s\n", core::formatFig8(sessions).c_str());

    bench::paperReference(
        "980 mV: AppCrash 17.9% | SysCrash 51.6% | SDC 30.5%\n"
        "930 mV: AppCrash  7.2% | SysCrash 37.1% | SDC 55.7%\n"
        "920 mV: AppCrash  2.1% | SysCrash  5.7% | SDC 92.2%\n"
        "shape: SDC share explodes toward Vmin; crash shares collapse\n"
        "(Observation #4: 3x higher SDC probability at low voltage).\n");
    return 0;
}
