/**
 * @file
 * Regenerates Fig. 6: upsets per minute per cache level (corrected and
 * uncorrected) at the three 2.4 GHz voltage settings.
 */

#include "bench_common.hh"
#include "core/campaign_report.hh"

int
main()
{
    using namespace xser;
    bench::banner("Fig. 6: upsets/min per cache level (2.4 GHz)");

    const auto sessions = bench::run24GHzSessions();
    std::printf("%s\n", core::formatFig6(sessions).c_str());

    bench::paperReference(
        "                      980mV  930mV  920mV\n"
        "TLBs      (corr)   :  0.016  0.011  0.009\n"
        "L1 Cache  (corr)   :  0.028  0.037  0.026\n"
        "L2 Cache  (corr)   :  0.157  0.178  0.194\n"
        "L3 Cache  (corr)   :  0.765  0.809  0.841\n"
        "L3 Cache  (uncorr) :  0.038  0.041  0.035\n"
        "shape: rate grows with array size (L3 >> L2 >> L1 > TLB);\n"
        "uncorrected events appear only in the non-interleaved L3.\n");
    return 0;
}
