/**
 * @file
 * Regenerates Fig. 7: upsets per minute per cache level at 790 mV @
 * 900 MHz (PMD deeply undervolted, SoC/L3 still at nominal).
 */

#include "bench_common.hh"
#include "core/campaign_report.hh"

int
main()
{
    using namespace xser;
    bench::banner("Fig. 7: upsets/min per cache level (900 MHz)");

    const auto session = bench::run900MHzSession();
    std::printf("%s\n", core::formatFig7(session).c_str());

    bench::paperReference(
        "TLB (corr) 0.03 | L1 (corr) 0.07 | L2 (corr) 0.29 |\n"
        "L3 (corr) 0.83 | L3 (uncorr) 0.04\n"
        "shape: PMD arrays (TLB/L1/L2) rise strongly vs 920 mV@2.4GHz\n"
        "(L1 ~2.7x, L2 ~1.5x) because only the PMD domain is at\n"
        "790 mV; the SoC-domain L3 stays near its 2.4 GHz level.\n");
    return 0;
}
