/**
 * @file
 * Ablation: patrol-scrub pacing. Sweeps the L2 scrub pass period (and
 * an L3-scrub-on variant) at nominal voltage and reports how detected
 * upset rates respond -- the knob behind the raw-vs-detected gap of
 * Section 3.5.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/table_printer.hh"
#include "core/test_session.hh"
#include "cpu/xgene2_platform.hh"
#include "volt/operating_point.hh"

int
main()
{
    using namespace xser;
    bench::banner("Ablation: patrol-scrub pacing (980 mV @ 2.4 GHz)");

    const double scale = bench::campaignScaleFromEnv(bench::defaultScale);

    struct Variant {
        const char *label;
        bool l2_enabled;
        double l2_period_us;
        bool l3_enabled;
    };
    const Variant variants[] = {
        {"no scrub", false, 250.0, false},
        {"L2 @ 1000 us/pass", true, 1000.0, false},
        {"L2 @ 250 us/pass (default)", true, 250.0, false},
        {"L2 @ 60 us/pass", true, 60.0, false},
        {"L2 @ 250 us + L3 @ 2 ms", true, 250.0, true},
    };

    core::TablePrinter table({"variant", "TLB/min", "L1/min", "L2/min",
                              "L3/min", "total/min"});
    for (const Variant &variant : variants) {
        cpu::XGene2Platform platform;
        core::SessionConfig config;
        config.point = volt::nominalPoint();
        config.maxErrorEvents = static_cast<uint64_t>(100 * scale);
        config.maxFluence = 1.49e11 * scale;
        config.seed = 0x5c20bULL;
        config.scrub.enabled = variant.l2_enabled || variant.l3_enabled;
        config.scrub.l2Enabled = variant.l2_enabled;
        config.scrub.l3Enabled = variant.l3_enabled;
        config.scrub.l2PassPeriod =
            ticks::fromSeconds(variant.l2_period_us * 1e-6);
        config.scrub.l3PassPeriod = ticks::fromSeconds(2e-3);

        core::TestSession session(&platform, config);
        const core::SessionResult result = session.execute();
        const double minutes = result.equivalentMinutes();
        auto rate = [&](mem::CacheLevel level) {
            const auto &tally =
                result.edac[static_cast<size_t>(level)];
            return minutes > 0.0
                ? static_cast<double>(tally.corrected +
                                      tally.uncorrected) / minutes
                : 0.0;
        };
        table.addRow({variant.label,
                      core::TablePrinter::fmt(rate(mem::CacheLevel::Tlb),
                                              3),
                      core::TablePrinter::fmt(rate(mem::CacheLevel::L1),
                                              3),
                      core::TablePrinter::fmt(rate(mem::CacheLevel::L2),
                                              3),
                      core::TablePrinter::fmt(rate(mem::CacheLevel::L3),
                                              3),
                      core::TablePrinter::fmt(result.upsetsPerMinute(),
                                              2)});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf(
        "expected shape: faster L2 scrub -> higher detected L2 rate\n"
        "(raw upsets are unchanged; only visibility moves). Adding L3\n"
        "scrub lifts the L3 rate above the paper's 0.77/min, showing\n"
        "why the deployed configuration detects on demand instead.\n");
    return 0;
}
