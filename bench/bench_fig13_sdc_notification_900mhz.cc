/**
 * @file
 * Regenerates Fig. 13: SDC FIT rates split by hardware-notification
 * class at 790 mV @ 900 MHz.
 */

#include "bench_common.hh"
#include "core/campaign_report.hh"

int
main()
{
    using namespace xser;
    bench::banner("Fig. 13: SDC FIT by notification class (900 MHz)");

    const auto session = bench::run900MHzSession();
    std::printf("%s\n", core::formatFig13(session).c_str());

    bench::paperReference(
        "w/o notification: 4.39 FIT | w/ notification: 0.88 FIT\n"
        "shape: same asymmetry as at 2.4 GHz, at a level far below\n"
        "the 920 mV session despite the much lower voltage --\n"
        "frequency decouples the logic susceptibility.\n");
    return 0;
}
