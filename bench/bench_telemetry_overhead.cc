/**
 * @file
 * Overhead gate for the telemetry subsystem: run the same campaign
 * with metrics collection off (no registry -- every count() is a
 * null-check) and on (per-worker shards, phase timers, distribution
 * samples), assert the aggregates are bit-identical, and gate the
 * on/off wall-clock ratio so instrumentation creep fails CI before it
 * taxes every campaign.
 *
 * Each mode takes the best of two runs: telemetry's cost is small
 * against scheduler noise, and min-of-N is the standard way to keep a
 * ratio gate from flapping.
 *
 * Usage: bench_telemetry_overhead [output.json] [max-ratio]
 *
 * Exit status is nonzero when the aggregates diverge (telemetry
 * perturbed the simulation) or when metrics-on runs more than
 * `max-ratio` times metrics-off wall-clock -- CI passes 1.02, the
 * 2% overhead ceiling DESIGN.md section 11 commits to.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/parallel_campaign.hh"
#include "telemetry/metrics.hh"
#include "telemetry/stopwatch.hh"

namespace {

using namespace xser;

/** One timed campaign, metrics on or off. */
struct Timed {
    double seconds = 0.0;
    core::ReplicatedCampaignResult result;
};

Timed
timedRun(const core::CampaignConfig &config, bool metrics)
{
    core::ParallelRunConfig run;
    run.jobs = bench::benchJobs();
    run.replicates = 2;
    telemetry::MetricRegistry registry(run.jobs);
    if (metrics)
        run.metrics = &registry;
    core::ParallelCampaignRunner runner(config, run);
    Timed timed;
    const telemetry::Stopwatch watch;
    timed.result = runner.executeAll();
    timed.seconds = watch.seconds();
    return timed;
}

bool
aggregatesIdentical(const core::ReplicatedCampaignResult &a,
                    const core::ReplicatedCampaignResult &b)
{
    if (a.sessions.size() != b.sessions.size())
        return false;
    for (size_t s = 0; s < a.sessions.size(); ++s) {
        const core::SessionAggregate &x = a.sessions[s];
        const core::SessionAggregate &y = b.sessions[s];
        if (x.runs != y.runs || x.fluence != y.fluence ||
            x.upsetsDetected != y.upsetsDetected ||
            x.rawUpsetEvents != y.rawUpsetEvents ||
            x.events.total() != y.events.total() ||
            x.fitTotal.mean() != y.fitTotal.mean() ||
            x.fitTotal.variance() != y.fitTotal.variance())
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_telemetry.json";
    const double max_ratio = argc > 2 ? std::atof(argv[2]) : 0.0;

    bench::banner("Telemetry overhead gate (metrics off vs on)");
    // Small smoke scale by default: the point is the ratio and the
    // bit-identity check, not statistics (XSER_SCALE raises it).
    const double scale = bench::campaignScaleFromEnv(0.02);
    const core::CampaignConfig config =
        core::BeamCampaign::paperCampaign(scale);

    // Interleave the modes so slow drift (thermal, other tenants)
    // lands on both sides of the ratio.
    Timed off = timedRun(config, false);
    Timed on = timedRun(config, true);
    const Timed off2 = timedRun(config, false);
    const Timed on2 = timedRun(config, true);
    off.seconds = std::min(off.seconds, off2.seconds);
    on.seconds = std::min(on.seconds, on2.seconds);

    const bool identical =
        aggregatesIdentical(off.result, on.result) &&
        aggregatesIdentical(off.result, off2.result) &&
        aggregatesIdentical(off.result, on2.result);
    const double ratio = on.seconds / off.seconds;

    std::printf("metrics off: %.2f s (best of 2)\n", off.seconds);
    std::printf("metrics on:  %.2f s (best of 2)\n", on.seconds);
    std::printf("on/off ratio: %.4f\n", ratio);
    std::printf("bit-identical aggregates: %s\n",
                identical ? "yes" : "NO -- TELEMETRY PERTURBED RESULTS");

    bench::BenchReport report("telemetry_overhead");
    report.add("scale", scale);
    report.add("jobs", static_cast<uint64_t>(bench::benchJobs()));
    report.add("metrics_off_seconds", off.seconds);
    report.add("metrics_on_seconds", on.seconds);
    report.add("on_over_off_ratio", ratio);
    report.add("aggregates_identical", identical);
    report.write(out_path);

    if (!identical)
        return 1;
    if (max_ratio > 0.0 && ratio > max_ratio) {
        std::printf("REGRESSION: ratio %.4f above the %.4f ceiling\n",
                    ratio, max_ratio);
        return 1;
    }
    return 0;
}
