/**
 * @file
 * The reproduction scorecard: run the four-session campaign and
 * evaluate each of the paper's nine Observations automatically.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/observations.hh"

int
main()
{
    using namespace xser;
    bench::banner("Scorecard: the paper's nine Observations");

    const double scale = bench::campaignScaleFromEnv(bench::defaultScale);
    core::BeamCampaign campaign(
        core::BeamCampaign::paperCampaign(scale, 0x5e5510ULL));
    const core::CampaignResult result = campaign.execute();

    core::ObservationChecker checker(result);
    const auto verdicts = checker.evaluate();
    std::printf("%s\n", core::ObservationChecker::format(verdicts)
                            .c_str());
    std::printf("%zu / %zu observations hold at this session scale "
                "(small scales widen the Poisson noise on the\n"
                "low-count categories; XSER_FULL=1 evaluates at paper "
                "statistics).\n",
                core::ObservationChecker::countHolding(verdicts),
                verdicts.size());
    return 0;
}
