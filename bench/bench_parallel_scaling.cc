/**
 * @file
 * Wall-clock scaling of the parallel campaign engine: run the same
 * 8-unit sweep (the paper's four sessions x 2 replicates) at 1/2/4/8
 * workers, report speedup over the single-worker baseline, and verify
 * that every worker count produces bit-identical merged results --
 * the determinism contract that makes the parallel engine safe to use
 * for the figure benches.
 *
 * Speedup tracks the machine: expect ~min(workers, cores, 8) on idle
 * hardware, and ~1x on a single-core host (the determinism checks
 * still run there).
 */

#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "core/parallel_campaign.hh"
#include "core/table_printer.hh"
#include "telemetry/stopwatch.hh"

namespace {

using namespace xser;

/** One timed sweep at a given worker count. */
struct ScalingPoint {
    unsigned jobs = 0;
    double seconds = 0.0;
    core::ReplicatedCampaignResult result;
};

bool
aggregatesIdentical(const core::ReplicatedCampaignResult &a,
                    const core::ReplicatedCampaignResult &b)
{
    if (a.sessions.size() != b.sessions.size())
        return false;
    for (size_t s = 0; s < a.sessions.size(); ++s) {
        const core::SessionAggregate &x = a.sessions[s];
        const core::SessionAggregate &y = b.sessions[s];
        if (x.runs != y.runs || x.fluence != y.fluence ||
            x.upsetsDetected != y.upsetsDetected ||
            x.rawUpsetEvents != y.rawUpsetEvents ||
            x.events.total() != y.events.total() ||
            x.fitTotal.mean() != y.fitTotal.mean() ||
            x.fitTotal.variance() != y.fitTotal.variance())
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_scaling.json";
    bench::banner("Parallel scaling (4 sessions x 2 replicates)");
    // The scaling story needs units long enough to dwarf the pool
    // overhead but short enough for a quick sweep; 0.04 keeps the
    // 8-unit run in the minutes range on one worker.
    const double scale = bench::campaignScaleFromEnv(0.04);
    const core::CampaignConfig config =
        core::BeamCampaign::paperCampaign(scale);

    std::vector<ScalingPoint> points;
    for (unsigned jobs : {1u, 2u, 4u, 8u}) {
        core::ParallelRunConfig run;
        run.jobs = jobs;
        run.replicates = 2;
        core::ParallelCampaignRunner runner(config, run);
        const telemetry::Stopwatch watch;
        ScalingPoint point;
        point.result = runner.executeAll();
        point.seconds = watch.seconds();
        point.jobs = jobs;
        points.push_back(std::move(point));
    }

    bool identical = true;
    for (size_t i = 1; i < points.size(); ++i)
        identical = identical && aggregatesIdentical(points[0].result,
                                                     points[i].result);

    core::TablePrinter table({"workers", "seconds", "speedup"});
    for (const auto &point : points) {
        table.addRow({std::to_string(point.jobs),
                      core::TablePrinter::fmt(point.seconds, 2),
                      core::TablePrinter::fmt(
                          points[0].seconds / point.seconds, 2) +
                          "x"});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("hardware threads: %u\n",
                std::thread::hardware_concurrency());
    std::printf("bit-identical across worker counts: %s\n",
                identical ? "yes" : "NO -- DETERMINISM BROKEN");

    bench::BenchReport report("parallel_scaling");
    report.add("scale", scale);
    report.add("hardware_threads",
               static_cast<uint64_t>(
                   std::thread::hardware_concurrency()));
    report.add("aggregates_identical", identical);
    report.beginSection("seconds_by_workers");
    for (const auto &point : points)
        report.add(std::to_string(point.jobs).c_str(), point.seconds);
    report.endSection();
    report.write(out_path);
    return identical ? 0 : 1;
}
