/**
 * @file
 * Regenerates Fig. 5: cache-memory upsets per minute per benchmark at
 * the three 2.4 GHz voltage settings.
 */

#include "bench_common.hh"
#include "core/campaign_report.hh"

int
main()
{
    using namespace xser;
    bench::banner("Fig. 5: upsets/min per benchmark (2.4 GHz)");

    const auto sessions = bench::run24GHzSessions();
    std::printf("%s\n", core::formatFig5(sessions).c_str());

    bench::paperReference(
        "            980mV  930mV  920mV\n"
        "   CG     :  0.87   0.84   0.58\n"
        "   LU     :  1.15   1.09   1.03\n"
        "   FT     :  1.11   1.21   1.37\n"
        "   EP     :  1.03   1.22   1.17\n"
        "   MG     :  0.94   1.02   1.32\n"
        "   IS     :  1.03   1.11   1.28\n"
        "   Total  :  1.01   1.08   1.12\n"
        "shape: totals rise as voltage drops; per-benchmark values\n"
        "scatter +/-20% around the total (statistical noise).\n");
    return 0;
}
