/**
 * @file
 * Ablation: the energy-vs-reliability policy curve. Answers the
 * paper's introductory question ("do the energy savings outweigh the
 * recovery overhead?") for a checkpointed 50k-server fleet: energy
 * saved per year vs silent corruptions per year at every ladder step,
 * plus the best setting under a few SDC budgets.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/table_printer.hh"
#include "core/tradeoff.hh"
#include "volt/timing_model.hh"

int
main()
{
    using namespace xser;
    bench::banner("Ablation: energy vs reliability policy curve");

    volt::PowerModel power;
    volt::TimingModel timing;
    core::LogicSusceptibilityModel logic(&timing);
    core::TradeoffConfig config;
    config.devices = 50000.0;
    config.checkpointSeconds = 30.0;
    core::EnergyReliabilityAnalyzer analyzer(&power, &logic, config);

    const auto ladder = analyzer.ladder(920.0);
    const double nominal_energy = ladder.front().energyPerYearMwh;

    core::TablePrinter table({"PMD (mV)", "power (W)", "energy saved "
                              "(MWh/yr)", "crash FIT", "ckpt interval "
                              "(h)", "waste", "SDCs/yr"});
    for (const auto &point : ladder) {
        table.addRow({core::TablePrinter::fmt(
                          point.point.pmdMillivolts, 0),
                      core::TablePrinter::fmt(point.powerWatts, 2),
                      core::TablePrinter::fmt(
                          nominal_energy - point.energyPerYearMwh, 0),
                      core::TablePrinter::fmt(point.crashFit, 2),
                      core::TablePrinter::fmt(
                          point.optimalCheckpointHours, 1),
                      core::TablePrinter::pct(point.wasteFraction, 3),
                      core::TablePrinter::fmt(point.sdcIncidentsPerYear,
                                              1)});
    }
    std::printf("%s\n", table.toString().c_str());

    for (double budget : {5.0, 20.0, 100.0}) {
        const core::TradeoffPoint best =
            analyzer.bestUnderSdcBudget(budget);
        std::printf("best setting under %5.0f SDCs/year: %s "
                    "(saves %.0f MWh/yr)\n",
                    budget, best.point.label().c_str(),
                    nominal_energy - best.energyPerYearMwh);
    }
    std::printf(
        "\nexpected shape: checkpoint waste is negligible at terrestrial\n"
        "flux (crashes are rare and restartable), so the recovery\n"
        "overhead never cancels the energy savings -- the binding\n"
        "constraint is the *silent* corruption budget, which explodes in\n"
        "the final 10 mV. This quantifies the paper's Design\n"
        "Implication #2 for a cloud operator.\n");
    return 0;
}
