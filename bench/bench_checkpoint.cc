/**
 * @file
 * Throughput gate for the checkpoint/fork engine: run the same
 * replicated cliff-voltage sweep with checkpointing off (every
 * replicate replays the golden prefix) and on (one prefix snapshot per
 * session, forked per replicate), assert the aggregates are
 * bit-identical, and emit the measurement as BENCH_checkpoint.json for
 * CI artifact upload and regression tracking.
 *
 * The workload is deliberately prefix-dominated -- the regime
 * importance splitting exists for: near-cliff sessions whose measured
 * phase stops after a handful of error events, replicated several
 * times for confidence intervals. Replaying the prefix then costs more
 * than the continuations it feeds (DESIGN.md section 10 derives the
 * expected speedup R(P+C)/(P+RC)).
 *
 * Usage: bench_checkpoint [output.json] [min-speedup]
 *
 * Exit status is nonzero when the aggregates diverge (equivalence
 * broken) or when the measured on/off speedup falls below
 * `min-speedup` (performance regression) -- CI passes a floor under
 * the recorded reference so routine noise passes but a real
 * regression fails the job.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/beam_campaign.hh"
#include "core/parallel_campaign.hh"
#include "telemetry/stopwatch.hh"

namespace {

using namespace xser;

/** Whole-campaign replicates: the fork fan-out per checkpoint. */
constexpr unsigned replicates = 8;

/**
 * The cliff-voltage sweep: the two sub-Vmin-guardband sessions of the
 * paper's campaign (Vmin at 2.4 GHz, Vmin-ladder at 900 MHz), with
 * stop criteria cut to a handful of events so the session is golden-
 * prefix-dominated.
 */
core::CampaignConfig
cliffSweep(double scale)
{
    core::CampaignConfig config =
        core::BeamCampaign::paperCampaign(scale);
    // Keep sessions 2 and 3 (vminPoint, vmin900Point); drop the
    // nominal/safe sessions whose long event-rich measured phases
    // would mask the prefix cost this bench isolates.
    config.sessions.erase(config.sessions.begin(),
                          config.sessions.begin() + 2);
    for (auto &session : config.sessions) {
        session.maxErrorEvents = 2;
        session.warmupRounds = 1;
    }
    return config;
}

/** One timed end-to-end replicated sweep. */
struct Timed {
    double seconds = 0.0;
    core::ReplicatedCampaignResult result;
};

Timed
timedRun(const core::CampaignConfig &config, bool checkpoint)
{
    core::ParallelRunConfig run;
    run.jobs = bench::benchJobs();
    run.replicates = replicates;
    run.checkpoint = checkpoint;
    core::ParallelCampaignRunner runner(config, run);
    Timed timed;
    const telemetry::Stopwatch watch;
    timed.result = runner.executeAll();
    timed.seconds = watch.seconds();
    return timed;
}

bool
resultsIdentical(const core::ReplicatedCampaignResult &a,
                 const core::ReplicatedCampaignResult &b)
{
    if (a.replicates.size() != b.replicates.size())
        return false;
    for (size_t r = 0; r < a.replicates.size(); ++r) {
        const auto &ra = a.replicates[r].sessions;
        const auto &rb = b.replicates[r].sessions;
        if (ra.size() != rb.size())
            return false;
        for (size_t s = 0; s < ra.size(); ++s) {
            const core::SessionResult &x = ra[s];
            const core::SessionResult &y = rb[s];
            if (x.runs != y.runs ||
                x.upsetsDetected != y.upsetsDetected ||
                x.rawUpsetEvents != y.rawUpsetEvents ||
                x.fluence != y.fluence ||
                x.events.sdcSilent != y.events.sdcSilent ||
                x.events.sdcNotified != y.events.sdcNotified ||
                x.events.appCrash != y.events.appCrash ||
                x.events.sysCrash != y.events.sysCrash)
                return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_checkpoint.json";
    const double min_speedup = argc > 2 ? std::atof(argv[2]) : 0.0;

    bench::banner("Checkpoint/fork throughput gate");
    // Small smoke scale by default: the point is the ratio and the
    // equivalence check, not statistics (XSER_SCALE raises it).
    const double scale = bench::campaignScaleFromEnv(0.02);

    const core::CampaignConfig config = cliffSweep(scale);
    const Timed off = timedRun(config, false);
    const Timed on = timedRun(config, true);

    const bool identical = resultsIdentical(off.result, on.result);
    const double speedup = off.seconds / on.seconds;
    const double units = static_cast<double>(
        config.sessions.size() * replicates);

    std::printf("checkpoint off: %.2f s (%zu sessions x %u replicates, "
                "prefix replayed per unit)\n",
                off.seconds, config.sessions.size(), replicates);
    std::printf("checkpoint on:  %.2f s (one prefix per session, "
                "forked %u ways)\n",
                on.seconds, replicates);
    std::printf("speedup:        %.2fx\n", speedup);
    std::printf("bit-identical aggregates: %s\n",
                identical ? "yes" : "NO -- EQUIVALENCE BROKEN");

    bench::BenchReport report("checkpoint");
    report.add("scale", scale);
    report.add("jobs", static_cast<uint64_t>(bench::benchJobs()));
    report.add("sessions",
               static_cast<uint64_t>(config.sessions.size()));
    report.add("replicates", static_cast<uint64_t>(replicates));
    report.add("checkpoint_off_seconds", off.seconds);
    report.add("checkpoint_on_seconds", on.seconds);
    report.add("speedup_checkpoint_on_over_off", speedup);
    report.add("units_per_second_checkpoint_on", units / on.seconds);
    report.add("units_per_second_checkpoint_off", units / off.seconds);
    report.add("aggregates_identical", identical);
    report.write(out_path);

    if (!identical)
        return 1;
    if (min_speedup > 0.0 && speedup < min_speedup) {
        std::printf("REGRESSION: speedup %.2fx below the %.2fx floor\n",
                    speedup, min_speedup);
        return 1;
    }
    return 0;
}
