/**
 * @file
 * Regenerates Fig. 4: probability of failure vs supply voltage for
 * 2.4 GHz and 900 MHz (the offline safe-Vmin characterization).
 */

#include <cstdio>

#include "core/campaign_report.hh"
#include "cpu/xgene2_platform.hh"
#include "volt/vmin_characterizer.hh"

#include "bench_common.hh"

int
main()
{
    using namespace xser;
    bench::banner("Fig. 4: Probability of Failure vs voltage");

    cpu::XGene2Platform platform;
    volt::VminCharacterizer characterizer(platform.timing(),
                                          platform.variation());

    volt::VminSweepConfig sweep24;
    sweep24.frequencyHz = 2.4e9;
    sweep24.startMillivolts = 935.0;
    sweep24.stopMillivolts = 890.0;
    sweep24.runsPerStep = 600;

    volt::VminSweepConfig sweep900;
    sweep900.frequencyHz = 0.9e9;
    sweep900.startMillivolts = 800.0;
    sweep900.stopMillivolts = 760.0;
    sweep900.runsPerStep = 600;

    const auto result24 = characterizer.sweep(sweep24);
    const auto result900 = characterizer.sweep(sweep900);
    std::printf("%s\n", core::formatFig4(result24, result900).c_str());

    bench::paperReference(
        "2.4 GHz : pfail 0% at/above 920 mV, rising below, 100% at "
        "900 mV (safe Vmin = 920 mV)\n"
        "900 MHz : pfail 0% at/above 790 mV, 100% at 780 mV "
        "(safe Vmin = 790 mV; window ~2x narrower)\n");
    return 0;
}
