/**
 * @file
 * Ablation: the full guardband ladder. Sweeps the PMD supply in 10 mV
 * steps from nominal down to Vmin at 2.4 GHz and reports power, upset
 * rate, and the FIT breakdown -- making Design Implication #2 ("run
 * 10 mV above Vmin") quantitative at every step, not just the paper's
 * three measured points.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "bench_common.hh"
#include "core/fit_calculator.hh"
#include "core/table_printer.hh"
#include "core/test_session.hh"
#include "cpu/xgene2_platform.hh"
#include "volt/operating_point.hh"

int
main()
{
    using namespace xser;
    bench::banner("Ablation: guardband ladder (2.4 GHz)");

    const double scale = bench::campaignScaleFromEnv(bench::defaultScale);

    core::TablePrinter table({"PMD (mV)", "SoC (mV)", "power (W)",
                              "upsets/min", "SDC FIT", "total FIT"});
    for (double pmd = 980.0; pmd >= 920.0 - 0.5; pmd -= 10.0) {
        // The SoC domain tracks the PMD reduction as in Table 3
        // (950 -> 925 -> 920), floored at 920 mV.
        const double soc = std::max(920.0, 950.0 - (980.0 - pmd) / 2.0);
        volt::OperatingPoint point{"ladder", pmd,
                                   5.0 * std::round(soc / 5.0), 2.4e9};

        cpu::XGene2Platform platform;
        core::SessionConfig config;
        config.point = point;
        config.maxErrorEvents = static_cast<uint64_t>(80 * scale);
        config.maxFluence = 6e10 * scale;
        config.seed = 0x9aadba9dULL + static_cast<uint64_t>(pmd);
        core::TestSession session(&platform, config);
        const core::SessionResult result = session.execute();
        const core::FitBreakdown fit =
            core::FitCalculator::breakdown(result);

        table.addRow({core::TablePrinter::fmt(pmd, 0),
                      core::TablePrinter::fmt(point.socMillivolts, 0),
                      core::TablePrinter::fmt(result.avgPowerWatts, 2),
                      core::TablePrinter::fmt(result.upsetsPerMinute(),
                                              2),
                      core::TablePrinter::fmt(fit.sdc.fit, 2),
                      core::TablePrinter::fmt(fit.total.fit, 2)});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf(
        "expected shape: power falls steadily with each step, upset\n"
        "rates creep up, and the SDC/total FIT stays near-flat until\n"
        "the last ~10 mV above the cliff, where it explodes --\n"
        "quantifying Design Implication #2's 'operate slightly above\n"
        "the lowest safe Vmin' (930 mV beats 920 mV by >5x FIT for\n"
        "only ~2 %% extra power).\n");
    return 0;
}
