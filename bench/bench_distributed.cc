/**
 * @file
 * Shard throughput of the distributed campaign service: run the same
 * reduced campaign through xser-server with 1, 2, and 4 local worker
 * processes, report units/second and speedup over the single-worker
 * baseline, and byte-compare the report and .xtrace artifacts across
 * worker counts -- the distributed analogue of bench_parallel_scaling
 * (DESIGN.md section 12).
 *
 *   bench_distributed [BENCH_distributed.json]
 *
 * The server/worker/client binaries are located relative to this
 * binary (../src), so the bench runs out of any build directory.
 * Exit 0 when every worker count produced identical bytes; 1 on any
 * drift (a determinism regression in the shard protocol or merge).
 */

#include <sys/stat.h>
#include <sys/wait.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench_common.hh"
#include "core/table_printer.hh"
#include "telemetry/stopwatch.hh"

namespace {

using namespace xser;

/**
 * Directory containing the xser binaries, derived from argv[0] and
 * made absolute (children chdir before exec).
 */
std::string
binDir(const char *argv0)
{
    const std::string self(argv0);
    const size_t slash = self.rfind('/');
    const std::string here =
        slash == std::string::npos ? "." : self.substr(0, slash);
    char resolved[4096];
    if (realpath((here + "/../src").c_str(), resolved) == nullptr)
        fatal(msg("cannot resolve the binary directory next to ",
                  argv0));
    return resolved;
}

/**
 * fork+exec with stdout/stderr sent to `log_path` and an optional
 * working directory; returns the pid.
 */
pid_t
spawn(const std::vector<std::string> &args,
      const std::string &log_path, const std::string &cwd = "")
{
    // Flush before forking: the child's freopen would otherwise flush
    // the parent's buffered output a second time.
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = fork();
    if (pid < 0)
        fatal("fork failed");
    if (pid > 0)
        return pid;
    if (std::freopen(log_path.c_str(), "w", stdout) == nullptr)
        std::_Exit(127);
    if (dup2(fileno(stdout), fileno(stderr)) < 0)
        std::_Exit(127);
    if (!cwd.empty() && chdir(cwd.c_str()) != 0)
        std::_Exit(127);
    std::vector<char *> argv;
    argv.reserve(args.size() + 1);
    for (const std::string &arg : args)
        argv.push_back(const_cast<char *>(arg.c_str()));
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    std::_Exit(127);
}

/** Wait for a pid; returns its exit code (or -1 on abnormal exit). */
int
await(pid_t pid)
{
    int status = 0;
    if (waitpid(pid, &status, 0) != pid)
        return -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

/** Poll a port file written by `xser-server --port-file`. */
std::string
awaitPort(const std::string &path)
{
    for (int i = 0; i < 200; ++i) {
        std::string contents = slurp(path);
        while (!contents.empty() &&
               (contents.back() == '\n' || contents.back() == '\r'))
            contents.pop_back();
        if (!contents.empty())
            return contents;
        usleep(50 * 1000);
    }
    fatal(msg("server never wrote its port to ", path));
    return "";
}

struct DistributedPoint {
    unsigned workers = 0;
    double seconds = 0.0;
    std::string report;
    std::string trace;
};

DistributedPoint
runDistributed(const std::string &bin, const std::string &dir,
               unsigned workers, double scale)
{
    if (mkdir(dir.c_str(), 0755) != 0)
        fatal(msg("cannot create bench directory ", dir));
    const std::string port_file = dir + "/port.txt";
    const pid_t server = spawn(
        {bin + "/xser-server", "--port", "0", "--port-file", port_file,
         "--max-campaigns", "1"},
        dir + "/server.log");
    const std::string port = awaitPort(port_file);
    for (unsigned i = 0; i < workers; ++i)
        spawn({bin + "/xser-worker", "--port", port},
              dir + "/worker" + std::to_string(i) + ".log");

    // The client runs inside `dir` with a relative --trace path: the
    // path appears verbatim in the report, so an absolute per-dir path
    // would defeat the byte-compare across worker counts.
    const telemetry::Stopwatch watch;
    const pid_t client = spawn(
        {bin + "/xser-client", "run", "--port", port, "--scale",
         std::to_string(scale), "--seed", "7", "--replicates", "2",
         "--trace", "out.xtrace"},
        dir + "/report.txt", dir);
    if (await(client) != 0)
        fatal(msg("xser-client failed; see ", dir, "/report.txt"));
    DistributedPoint point;
    point.seconds = watch.seconds();
    point.workers = workers;
    if (await(server) != 0)
        fatal(msg("xser-server failed; see ", dir, "/server.log"));
    point.report = slurp(dir + "/report.txt");
    point.trace = slurp(dir + "/out.xtrace");
    if (point.report.empty() || point.trace.empty())
        fatal(msg("empty artifacts under ", dir));
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_distributed.json";
    bench::banner("Distributed shard throughput (server + workers)");
    const double scale = bench::campaignScaleFromEnv(0.005);
    const std::string bin = binDir(argv[0]);

    char workdir[] = "/tmp/xser-bench-distributed-XXXXXX";
    if (mkdtemp(workdir) == nullptr)
        fatal("cannot create bench scratch directory");

    std::vector<DistributedPoint> points;
    for (unsigned workers : {1u, 2u, 4u})
        points.push_back(runDistributed(
            bin, std::string(workdir) + "/w" + std::to_string(workers),
            workers, scale));

    bool identical = true;
    for (size_t i = 1; i < points.size(); ++i)
        identical = identical &&
                    points[i].report == points[0].report &&
                    points[i].trace == points[0].trace;

    // 4 sessions x 2 replicates = 8 units per campaign.
    const double units = 8.0;
    core::TablePrinter table(
        {"workers", "seconds", "units/s", "speedup"});
    for (const auto &point : points) {
        table.addRow({std::to_string(point.workers),
                      core::TablePrinter::fmt(point.seconds, 2),
                      core::TablePrinter::fmt(units / point.seconds, 2),
                      core::TablePrinter::fmt(
                          points[0].seconds / point.seconds, 2) +
                          "x"});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("artifacts bit-identical across worker counts: %s\n",
                identical ? "yes" : "NO -- DETERMINISM BROKEN");

    bench::BenchReport report("distributed");
    report.add("scale", scale);
    report.add("units", static_cast<uint64_t>(units));
    report.add("artifacts_identical", identical);
    report.beginSection("seconds_by_workers");
    for (const auto &point : points)
        report.add(std::to_string(point.workers).c_str(),
                   point.seconds);
    report.endSection();
    report.write(out_path);
    return identical ? 0 : 1;
}
