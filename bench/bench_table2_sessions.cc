/**
 * @file
 * Regenerates Table 2 (the four neutron-beam sessions) and Table 3
 * (the voltage operating points).
 */

#include "bench_common.hh"
#include "core/campaign_report.hh"

int
main()
{
    using namespace xser;
    bench::banner("Table 2: Neutron Beam Time Sessions");

    const auto sessions = bench::runPaperSessions();
    std::printf("%s\n", core::formatTable2(sessions).c_str());
    std::printf("%s\n", core::formatTable3().c_str());

    bench::paperReference(
        "session (PMD mV)      :   980      930      920      790\n"
        "duration (min)        :  1651     1618      453      165\n"
        "fluence (n/cm2)       : 1.49e11  1.46e11  4.08e10  1.48e10\n"
        "NYC-equivalent years  : 1.30e6   1.28e6   3.58e5   1.30e5\n"
        "SDCs and crashes (#)  :    95       97      141       13\n"
        "errors rate (/min)    : 5.75e-2  5.99e-2  3.11e-1  7.87e-2\n"
        "memory upsets (#)     :  1669     1743      506      195\n"
        "upsets rate (/min)    : 1.011    1.077    1.117    1.182\n"
        "memory SER (FIT/Mbit) : 2.08     2.22     2.30     2.45\n");
    return 0;
}
