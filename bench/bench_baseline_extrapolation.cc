/**
 * @file
 * Baseline comparison: Seifert-style raw-SER voltage extrapolation
 * ([66],[67] -- the state of the art the paper goes beyond) vs the
 * full-system campaign. The extrapolation predicts the SRAM SER
 * correctly but, by construction, cannot see the system-level SDC
 * explosion -- exactly the gap the paper's real-hardware methodology
 * exposes.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/fit_calculator.hh"
#include "core/table_printer.hh"
#include "cpu/xgene2_platform.hh"
#include "rad/raw_ser_extrapolation.hh"

int
main()
{
    using namespace xser;
    bench::banner("Baseline: raw-SER extrapolation vs full system");

    // The baseline: measure nothing but nominal SRAM SER, extrapolate
    // through the Qcrit model.
    cpu::XGene2Platform platform;
    rad::CrossSectionModel xsection;
    rad::RawSerExtrapolation baseline(
        &xsection, rad::inventoryFrom(platform.memory().beamTargets()));
    const auto predictions = baseline.predict(
        {{0.980, 0.950}, {0.930, 0.925}, {0.920, 0.920}});

    // The full system: campaign-measured FIT per category.
    const auto sessions = bench::run24GHzSessions();

    core::TablePrinter table(
        {"setting", "raw-SER ratio (baseline)",
         "upsets/min ratio (measured)", "SDC FIT ratio (measured)",
         "total FIT ratio (measured)"});
    const core::FitBreakdown nominal_fit =
        core::FitCalculator::breakdown(sessions.front());
    for (size_t i = 0; i < sessions.size(); ++i) {
        const core::FitBreakdown fit =
            core::FitCalculator::breakdown(sessions[i]);
        const double upset_ratio =
            sessions.front().upsetsPerMinute() > 0.0
                ? sessions[i].upsetsPerMinute() /
                      sessions.front().upsetsPerMinute()
                : 0.0;
        table.addRow(
            {sessions[i].point.label(),
             core::TablePrinter::fmt(predictions[i].ratioToNominal, 2) +
                 "x",
             core::TablePrinter::fmt(upset_ratio, 2) + "x",
             core::TablePrinter::fmt(
                 nominal_fit.sdc.fit > 0.0
                     ? fit.sdc.fit / nominal_fit.sdc.fit : 0.0,
                 2) + "x",
             core::TablePrinter::fmt(
                 nominal_fit.total.fit > 0.0
                     ? fit.total.fit / nominal_fit.total.fit : 0.0,
                 2) + "x"});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf(
        "expected shape: the baseline's raw-SER ratio (1.0 -> ~1.15x at\n"
        "Vmin) tracks the measured cache upset rate -- the quantity\n"
        "[66,67] were built to predict -- but misses the system-level\n"
        "SDC blow-up (~16x) entirely: the corruption comes from\n"
        "unprotected core logic coupling to the timing cliff, which no\n"
        "SRAM-only extrapolation can see. This is the gap the paper's\n"
        "full-stack beam methodology exposes (Sections 1, 6).\n");
    return 0;
}
