/**
 * @file
 * Regenerates Fig. 11: AppCrash / SysCrash / SDC / total FIT rates of
 * the whole chip at the three 2.4 GHz voltage settings.
 */

#include "bench_common.hh"
#include "core/campaign_report.hh"

int
main()
{
    using namespace xser;
    bench::banner("Fig. 11: FIT rates per category (2.4 GHz)");

    const auto sessions = bench::run24GHzSessions();
    std::printf("%s\n", core::formatFig11(sessions).c_str());

    bench::paperReference(
        "            980mV  930mV  920mV\n"
        "AppCrash :   1.49   0.62   0.96\n"
        "SysCrash :   4.29   3.21   2.55\n"
        "SDC      :   2.54   4.82  41.43\n"
        "Total    :   8.31   8.66  ~44.9 (from the published counts;\n"
        "the Section 6.1 text quotes 54.83 -- see EXPERIMENTS.md)\n"
        "shape: SDC FIT ~16x nominal at Vmin; total ~6x; crash FITs\n"
        "drift down (low-count noise per the paper itself).\n");
    return 0;
}
