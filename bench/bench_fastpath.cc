/**
 * @file
 * Throughput gate for the event-driven fast path: run the same reduced
 * campaign with the fast path off (the reference configuration every
 * equivalence test compares against) and on (the default), assert the
 * results are bit-identical, and emit the measurement as
 * BENCH_fastpath.json for CI artifact upload and regression tracking.
 *
 * Usage: bench_fastpath [output.json] [min-speedup]
 *
 * Exit status is nonzero when the aggregates diverge (equivalence
 * broken) or when the measured fast-on/fast-off speedup falls below
 * `min-speedup` (performance regression) -- CI passes a floor 20%
 * under the recorded reference so routine noise passes but a real
 * regression fails the job.
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hh"
#include "core/parallel_campaign.hh"
#include "telemetry/stopwatch.hh"

namespace {

using namespace xser;

/**
 * Recorded before/after of the tentpole change on this repo's pinned
 * throughput benchmark (bench_parallel_scaling, XSER_SCALE=0.01
 * XSER_JOBS=4, single-hardware-thread container): wall-clock for the
 * 8-unit sweep at 1 worker dropped from 142.28 s (seed implementation,
 * per-quantum Poisson sampling and full-codec reads everywhere) to
 * 20.84 s. These constants are documentation of that measurement, not
 * inputs to the gate below.
 */
constexpr double referenceSeedSeconds = 142.28;
constexpr double referenceCurrentSeconds = 20.84;

/*
 * Recorded measurement of the checkpoint/fork engine on its own gate
 * (bench_checkpoint: 2 cliff-voltage sessions x 8 replicates, 1
 * worker): 17.90 s with the golden prefix replayed per replicate vs
 * 7.84 s forking one prefix snapshot per session. Documentation of
 * the trajectory, not an input to this binary's gate.
 */
constexpr double referenceCheckpointOffSeconds = 17.90;
constexpr double referenceCheckpointOnSeconds = 7.84;

/** One timed end-to-end campaign run. */
struct Timed {
    double seconds = 0.0;
    core::CampaignResult result;
};

Timed
timedRun(const core::CampaignConfig &config)
{
    core::ParallelRunConfig run;
    run.jobs = bench::benchJobs();
    core::ParallelCampaignRunner runner(config, run);
    Timed timed;
    const telemetry::Stopwatch watch;
    timed.result = runner.execute();
    timed.seconds = watch.seconds();
    return timed;
}

bool
resultsIdentical(const core::CampaignResult &a,
                 const core::CampaignResult &b)
{
    if (a.sessions.size() != b.sessions.size())
        return false;
    for (size_t s = 0; s < a.sessions.size(); ++s) {
        const core::SessionResult &x = a.sessions[s];
        const core::SessionResult &y = b.sessions[s];
        if (x.runs != y.runs || x.upsetsDetected != y.upsetsDetected ||
            x.rawUpsetEvents != y.rawUpsetEvents ||
            x.fluence != y.fluence ||
            x.events.sdcSilent != y.events.sdcSilent ||
            x.events.sdcNotified != y.events.sdcNotified ||
            x.events.appCrash != y.events.appCrash ||
            x.events.sysCrash != y.events.sysCrash)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_fastpath.json";
    const double min_speedup = argc > 2 ? std::atof(argv[2]) : 0.0;

    bench::banner("Fast-path throughput gate");
    // Small smoke scale by default: the point is the ratio and the
    // equivalence check, not statistics (XSER_SCALE raises it).
    const double scale = bench::campaignScaleFromEnv(0.02);

    core::CampaignConfig config = core::BeamCampaign::paperCampaign(scale);
    core::setFastPath(config, false);
    const Timed off = timedRun(config);
    core::setFastPath(config, true);
    const Timed on = timedRun(config);

    const bool identical = resultsIdentical(off.result, on.result);
    const double speedup = off.seconds / on.seconds;
    const double sessions = static_cast<double>(on.result.sessions.size());

    std::printf("fast path off: %.2f s\n", off.seconds);
    std::printf("fast path on:  %.2f s\n", on.seconds);
    std::printf("speedup:       %.2fx\n", speedup);
    std::printf("bit-identical results: %s\n",
                identical ? "yes" : "NO -- EQUIVALENCE BROKEN");

    bench::BenchReport report("fastpath");
    report.add("scale", scale);
    report.add("jobs", static_cast<uint64_t>(bench::benchJobs()));
    report.add("fast_off_seconds", off.seconds);
    report.add("fast_on_seconds", on.seconds);
    report.add("speedup_fast_on_over_off", speedup);
    report.add("sessions_per_second_fast_on", sessions / on.seconds);
    report.add("sessions_per_second_fast_off", sessions / off.seconds);
    report.add("aggregates_identical", identical);
    report.beginSection("reference_parallel_scaling");
    report.add("bench", "bench_parallel_scaling XSER_SCALE=0.01 "
                        "XSER_JOBS=4, 1 worker row");
    report.add("seed_seconds", referenceSeedSeconds);
    report.add("current_seconds", referenceCurrentSeconds);
    report.add("speedup",
               referenceSeedSeconds / referenceCurrentSeconds);
    report.endSection();
    report.beginSection("reference_checkpoint");
    report.add("bench", "bench_checkpoint cliff-voltage sweep, "
                        "2 sessions x 8 replicates, 1 worker");
    report.add("checkpoint_off_seconds", referenceCheckpointOffSeconds);
    report.add("checkpoint_on_seconds", referenceCheckpointOnSeconds);
    report.add("speedup", referenceCheckpointOffSeconds /
                              referenceCheckpointOnSeconds);
    report.endSection();
    report.write(out_path);

    if (!identical)
        return 1;
    if (min_speedup > 0.0 && speedup < min_speedup) {
        std::printf("REGRESSION: speedup %.2fx below the %.2fx floor\n",
                    speedup, min_speedup);
        return 1;
    }
    return 0;
}
