/**
 * @file
 * Regenerates Table 1: the platform specification (and prints the
 * SRAM beam-footprint inventory the campaign irradiates).
 */

#include <cstdio>

#include "bench_common.hh"
#include "cpu/xgene2_platform.hh"

int
main()
{
    using namespace xser;
    bench::banner("Table 1: X-Gene 2 specification");

    cpu::XGene2Platform platform;
    std::printf("%s\n", platform.specTable().c_str());

    std::printf("SRAM beam footprint:\n");
    uint64_t total = 0;
    for (const auto &target : platform.memory().beamTargets()) {
        total += target.array->totalBits();
        std::printf("  %-10s %10llu bits  (%s domain, %s)\n",
                    target.array->name().c_str(),
                    static_cast<unsigned long long>(
                        target.array->totalBits()),
                    target.pmdDomain ? "PMD" : "SoC",
                    mem::protectionName(target.array->protection()));
    }
    std::printf("  total      %10llu bits (%.2f MB incl. check bits)\n",
                static_cast<unsigned long long>(total),
                static_cast<double>(total) / 8.0 / 1024.0 / 1024.0);
    return 0;
}
