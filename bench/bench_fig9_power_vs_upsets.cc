/**
 * @file
 * Regenerates Fig. 9: total power consumption vs cache upsets per
 * minute across all four operating points.
 */

#include "bench_common.hh"
#include "core/campaign_report.hh"

int
main()
{
    using namespace xser;
    bench::banner("Fig. 9: power vs soft-error susceptibility");

    const auto sessions = bench::runPaperSessions();
    std::printf("%s\n", core::formatFig9(sessions).c_str());

    bench::paperReference(
        "980mV@2.4GHz: 20.40 W, 1.01 upsets/min\n"
        "930mV@2.4GHz: 18.63 W, 1.08 upsets/min\n"
        "920mV@2.4GHz: 18.15 W, 1.12 upsets/min\n"
        "790mV@900MHz: 10.59 W, 1.18 upsets/min\n"
        "shape: power falls with voltage (and frequency) while the\n"
        "upset rate rises near-linearly with voltage reduction only\n"
        "(Observation #6: frequency does not matter).\n");
    return 0;
}
