/**
 * @file
 * Regenerates Fig. 10: power savings vs susceptibility increase,
 * both relative to nominal 980 mV @ 2.4 GHz.
 */

#include "bench_common.hh"
#include "core/campaign_report.hh"

int
main()
{
    using namespace xser;
    bench::banner("Fig. 10: power savings vs susceptibility increase");

    const auto sessions = bench::runPaperSessions();
    std::printf("%s\n", core::formatFig10(sessions).c_str());

    bench::paperReference(
        "930mV@2.4GHz: savings  8.7% | susceptibility + 6.9%\n"
        "920mV@2.4GHz: savings 11.0% | susceptibility +10.9%\n"
        "790mV@900MHz: savings 48.1% | susceptibility +16.8%\n"
        "shape: at 2.4 GHz susceptibility grows faster than savings;\n"
        "the 900 MHz point wins on savings only by giving up\n"
        "performance (Observation #7).\n");
    return 0;
}
