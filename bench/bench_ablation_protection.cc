/**
 * @file
 * Ablation: protection schemes on the L2/L3 arrays (Design
 * Implication #1). Runs identical Vmin sessions with SECDED (the real
 * chip), parity-only, and no protection, and reports what the EDAC
 * machinery caught and what leaked into software.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/table_printer.hh"
#include "core/test_session.hh"
#include "cpu/xgene2_platform.hh"
#include "volt/operating_point.hh"

namespace {

struct AblationRow {
    const char *label;
    xser::mem::Protection protection;
};

} // namespace

int
main()
{
    using namespace xser;
    bench::banner("Ablation: L2/L3 protection scheme (at Vmin)");

    const double scale = bench::campaignScaleFromEnv(bench::defaultScale);
    const AblationRow rows[] = {
        {"SECDED (X-Gene 2)", mem::Protection::Secded},
        {"parity-only", mem::Protection::Parity},
        {"unprotected", mem::Protection::None},
    };

    core::TablePrinter table({"L2/L3 protection", "corrected",
                              "uncorrected", "silent escapes",
                              "SDCs (organic)", "upsets/min"});
    for (const AblationRow &row : rows) {
        cpu::PlatformConfig platform_config;
        platform_config.memory.l2Protection = row.protection;
        platform_config.memory.l3Protection = row.protection;
        cpu::XGene2Platform platform(platform_config);

        core::SessionConfig session_config;
        session_config.point = volt::vminPoint();
        session_config.maxErrorEvents =
            static_cast<uint64_t>(141 * scale);
        session_config.maxFluence = 1.5e11 * scale;
        session_config.seed = 0xab1a7e;
        core::TestSession session(&platform, session_config);
        const core::SessionResult result = session.execute();

        // Ground-truth silent escapes from the array counters.
        uint64_t escapes = 0;
        for (const auto &target : platform.memory().beamTargets()) {
            escapes += target.array->counters().silentEscapes;
            escapes += target.array->counters().miscorrections;
        }
        // Organic SDCs are folded into result.events already.

        table.addRow({row.label,
                      std::to_string(
                          result.edac[2].corrected +
                          result.edac[3].corrected),
                      std::to_string(
                          result.edac[2].uncorrected +
                          result.edac[3].uncorrected),
                      std::to_string(escapes),
                      std::to_string(result.events.sdcTotal()),
                      core::TablePrinter::fmt(result.upsetsPerMinute(),
                                              2)});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf(
        "expected shape: SECDED corrects nearly everything (few UE,\n"
        "near-zero escapes); parity-only detects but cannot correct\n"
        "(UE column explodes); unprotected leaks every latent flip it\n"
        "reads as silent corruption. This is Design Implication #1:\n"
        "parity+SECDED as deployed are sufficient even at Vmin.\n");
    return 0;
}
