/**
 * @file
 * Cost of the lifecycle trace subsystem, measured over the paper's
 * four-session campaign in three modes:
 *
 *   off       null sink everywhere (the shipping default);
 *   buffered  per-unit TraceBuffers filled but never written;
 *   written   buffers encoded and merged into an .xtrace file.
 *
 * Reports wall-clock per mode and the slowdown relative to `off`, and
 * verifies that the campaign aggregates are bit-identical across all
 * three -- tracing must observe the simulation, never perturb it.
 * Exits 1 on any aggregate mismatch.
 */

#include <cstdio>
#include <fstream>
#include <vector>

#include "bench_common.hh"
#include "core/parallel_campaign.hh"
#include "core/table_printer.hh"
#include "telemetry/stopwatch.hh"
#include "trace/trace_reader.hh"
#include "trace/trace_writer.hh"

namespace {

using namespace xser;

/** One timed campaign in a given trace mode. */
struct ModePoint {
    const char *mode = "";
    double seconds = 0.0;
    core::ReplicatedCampaignResult result;
};

bool
aggregatesIdentical(const core::ReplicatedCampaignResult &a,
                    const core::ReplicatedCampaignResult &b)
{
    if (a.sessions.size() != b.sessions.size())
        return false;
    for (size_t s = 0; s < a.sessions.size(); ++s) {
        const core::SessionAggregate &x = a.sessions[s];
        const core::SessionAggregate &y = b.sessions[s];
        if (x.runs != y.runs || x.fluence != y.fluence ||
            x.upsetsDetected != y.upsetsDetected ||
            x.rawUpsetEvents != y.rawUpsetEvents ||
            x.events.total() != y.events.total() ||
            x.fitTotal.mean() != y.fitTotal.mean() ||
            x.fitTotal.variance() != y.fitTotal.variance())
            return false;
    }
    return true;
}

ModePoint
timedRun(const char *mode, const core::CampaignConfig &config,
         const core::ParallelRunConfig &run,
         trace::TraceWriter *writer)
{
    core::ParallelCampaignRunner runner(config, run);
    const telemetry::Stopwatch watch;
    ModePoint point;
    point.result = runner.executeAll(writer);
    point.seconds = watch.seconds();
    point.mode = mode;
    return point;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_trace_overhead.json";
    bench::banner("Trace subsystem overhead (off / buffered / written)");
    const double scale = bench::campaignScaleFromEnv(0.04);
    const core::CampaignConfig config =
        core::BeamCampaign::paperCampaign(scale);
    const char *trace_path = "bench_trace_overhead.xtrace";

    core::ParallelRunConfig run;
    run.jobs = bench::benchJobs();
    run.replicates = 2;

    std::vector<ModePoint> points;
    points.push_back(timedRun("off", config, run, nullptr));

    core::ParallelRunConfig buffered = run;
    buffered.collectTrace = true;
    points.push_back(timedRun("buffered", config, buffered, nullptr));

    uint64_t trace_events = 0;
    uint64_t trace_bytes = 0;
    {
        trace::TraceWriter writer(trace_path);
        points.push_back(timedRun("written", config, run, &writer));
        const trace::TraceFile file = trace::readTraceFile(trace_path);
        if (!file.ok) {
            std::printf("trace unreadable: %s\n", file.error.c_str());
            return 1;
        }
        trace_events = file.totalEvents();
        std::ifstream in(trace_path,
                         std::ios::binary | std::ios::ate);
        trace_bytes = static_cast<uint64_t>(in.tellg());
    }

    core::TablePrinter table({"mode", "seconds", "slowdown"});
    for (const auto &point : points) {
        table.addRow(
            {point.mode, core::TablePrinter::fmt(point.seconds, 2),
             core::TablePrinter::fmt(
                 (point.seconds / points[0].seconds - 1.0) * 100.0, 1) +
                 "%"});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("trace: %llu events, %llu bytes on disk\n",
                static_cast<unsigned long long>(trace_events),
                static_cast<unsigned long long>(trace_bytes));

    bool identical = true;
    for (size_t i = 1; i < points.size(); ++i)
        identical = identical && aggregatesIdentical(points[0].result,
                                                     points[i].result);
    std::printf("aggregates bit-identical across modes: %s\n",
                identical ? "yes" : "NO -- TRACING PERTURBED RESULTS");

    bench::BenchReport report("trace_overhead");
    report.add("scale", scale);
    report.add("jobs", static_cast<uint64_t>(bench::benchJobs()));
    report.add("trace_events", trace_events);
    report.add("trace_bytes", trace_bytes);
    report.add("aggregates_identical", identical);
    report.beginSection("seconds_by_mode");
    for (const auto &point : points)
        report.add(point.mode, point.seconds);
    report.endSection();
    report.write(out_path);
    return identical ? 0 : 1;
}
