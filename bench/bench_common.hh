/**
 * @file
 * Shared helpers for the per-table/per-figure bench binaries.
 *
 * Every binary runs scaled-down sessions by default so the full bench
 * sweep finishes in minutes; set XSER_FULL=1 for paper-scale stop
 * criteria (Section 3.5: 100+ events or ~1.5e11 n/cm^2 per session)
 * or XSER_SCALE=<f> for anything between.
 */

#ifndef XSER_BENCH_BENCH_COMMON_HH
#define XSER_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "core/beam_campaign.hh"
#include "core/test_session.hh"

namespace xser::bench {

/** Default stop-criteria scale for bench runs. */
constexpr double defaultScale = 0.22;

/** Banner with the scale in effect. */
inline void
banner(const char *title)
{
    const double scale = core::campaignScaleFromEnv(defaultScale);
    std::printf("=== %s ===\n", title);
    std::printf("(session scale %.2f; XSER_FULL=1 for paper-scale "
                "statistics)\n\n",
                scale);
}

/** Run the three 2.4 GHz sessions (980/930/920 mV). */
inline std::vector<core::SessionResult>
run24GHzSessions(uint64_t seed = 0x5e5510ULL)
{
    const double scale = core::campaignScaleFromEnv(defaultScale);
    core::BeamCampaign campaign(
        core::BeamCampaign::campaign24GHz(scale, seed));
    return campaign.execute().sessions;
}

/** Run all four paper sessions (adds 790 mV @ 900 MHz). */
inline std::vector<core::SessionResult>
runPaperSessions(uint64_t seed = 0x5e5510ULL)
{
    const double scale = core::campaignScaleFromEnv(defaultScale);
    core::BeamCampaign campaign(
        core::BeamCampaign::paperCampaign(scale, seed));
    return campaign.execute().sessions;
}

/** Run only the 790 mV @ 900 MHz session. */
inline core::SessionResult
run900MHzSession(uint64_t seed = 0x5e5510ULL)
{
    const double scale = core::campaignScaleFromEnv(defaultScale);
    core::CampaignConfig config =
        core::BeamCampaign::paperCampaign(scale, seed);
    config.sessions.erase(config.sessions.begin(),
                          config.sessions.begin() + 3);
    core::BeamCampaign campaign(config);
    return campaign.execute().sessions.front();
}

/** Print a paper-reference block for side-by-side comparison. */
inline void
paperReference(const std::string &text)
{
    std::printf("--- paper reference ---\n%s\n", text.c_str());
}

} // namespace xser::bench

#endif // XSER_BENCH_BENCH_COMMON_HH
