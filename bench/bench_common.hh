/**
 * @file
 * Shared helpers for the per-table/per-figure bench binaries.
 *
 * Every binary runs scaled-down sessions by default so the full bench
 * sweep finishes in minutes; set XSER_FULL=1 for paper-scale stop
 * criteria (Section 3.5: 100+ events or ~1.5e11 n/cm^2 per session)
 * or XSER_SCALE=<f> for anything between. XSER_JOBS=<n> sets the
 * worker-thread count for session execution (default: the hardware
 * count); results are bit-identical for any value.
 */

#ifndef XSER_BENCH_BENCH_COMMON_HH
#define XSER_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/beam_campaign.hh"
#include "core/parallel_campaign.hh"
#include "core/test_session.hh"
#include "sim/logging.hh"
#include "telemetry/json.hh"

namespace xser::bench {

/** Schema identifier every BENCH_*.json record carries. */
constexpr const char *benchRecordSchema = "xser-bench-record";

/** Current bench-record schema version. */
constexpr uint32_t benchRecordSchemaVersion = 1;

/**
 * The one code path every bench binary's BENCH_*.json record goes
 * through: a schema-versioned document built on telemetry::JsonWriter,
 * so CI artifact consumers can key on `schema`/`schema_version`/`bench`
 * instead of guessing at per-bench hand-rolled layouts.
 *
 *     bench::BenchReport report("fastpath");
 *     report.add("speedup", speedup);
 *     report.beginSection("reference");
 *     report.add("seconds", 20.84);
 *     report.endSection();
 *     report.write(out_path);
 */
class BenchReport
{
  public:
    explicit BenchReport(const char *bench_name)
    {
        json_.beginObject();
        json_.member("schema", benchRecordSchema);
        json_.member("schema_version",
                     static_cast<uint64_t>(benchRecordSchemaVersion));
        json_.member("bench", bench_name);
    }

    /** Add one scalar member (string/number/bool). */
    template <typename T>
    BenchReport &
    add(const char *name, T value)
    {
        json_.member(name, value);
        return *this;
    }

    /** Open a nested object member. */
    BenchReport &
    beginSection(const char *name)
    {
        json_.beginObject(name);
        return *this;
    }

    BenchReport &
    endSection()
    {
        json_.endObject();
        return *this;
    }

    /** Close the record and write it; fatal on I/O failure. */
    void
    write(const std::string &path)
    {
        json_.endObject();
        const std::string text = json_.take();
        std::FILE *file = std::fopen(path.c_str(), "wb");
        if (file == nullptr)
            fatal(msg("cannot open bench record for writing: ", path));
        const size_t written =
            std::fwrite(text.data(), 1, text.size(), file);
        const int close_status = std::fclose(file);
        if (written != text.size() || close_status != 0)
            fatal(msg("short write to bench record: ", path));
        std::printf("wrote %s\n", path.c_str());
    }

  private:
    telemetry::JsonWriter json_;
};

/** Default stop-criteria scale for bench runs. */
constexpr double defaultScale = 0.22;

/**
 * Stop-criteria scale from the environment: XSER_FULL=1 selects the
 * paper-scale campaign, XSER_SCALE=<f> anything between, otherwise
 * `default_scale`. This lives in the bench harness (not src/core) on
 * purpose: the determinism contract forbids environment reads inside
 * the simulation core, and xser-lint enforces it.
 */
inline double
campaignScaleFromEnv(double default_scale)
{
    const char *full = std::getenv("XSER_FULL");
    if (full != nullptr && full[0] == '1')
        return 1.0;
    const char *scale = std::getenv("XSER_SCALE");
    if (scale != nullptr) {
        const double parsed = std::atof(scale);
        if (parsed > 0.0)
            return parsed;
    }
    return default_scale;
}

/** Worker threads from XSER_JOBS; hardware count when unset. */
inline unsigned
benchJobs()
{
    if (const char *env = std::getenv("XSER_JOBS")) {
        const long parsed = std::atol(env);
        if (parsed > 0)
            return static_cast<unsigned>(parsed);
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    return hardware > 0 ? hardware : 1;
}

/** Banner with the scale in effect. */
inline void
banner(const char *title)
{
    const double scale = campaignScaleFromEnv(defaultScale);
    std::printf("=== %s ===\n", title);
    std::printf("(session scale %.2f; XSER_FULL=1 for paper-scale "
                "statistics; %u worker threads, XSER_JOBS to change)"
                "\n\n",
                scale, benchJobs());
}

/** Run a campaign config on the worker pool (bit-exact replay). */
inline std::vector<core::SessionResult>
runCampaign(const core::CampaignConfig &config)
{
    core::ParallelRunConfig run;
    run.jobs = benchJobs();
    core::ParallelCampaignRunner runner(config, run);
    return runner.execute().sessions;
}

/** Run the three 2.4 GHz sessions (980/930/920 mV). */
inline std::vector<core::SessionResult>
run24GHzSessions(uint64_t seed = 0x5e5510ULL)
{
    const double scale = campaignScaleFromEnv(defaultScale);
    return runCampaign(core::BeamCampaign::campaign24GHz(scale, seed));
}

/** Run all four paper sessions (adds 790 mV @ 900 MHz). */
inline std::vector<core::SessionResult>
runPaperSessions(uint64_t seed = 0x5e5510ULL)
{
    const double scale = campaignScaleFromEnv(defaultScale);
    return runCampaign(core::BeamCampaign::paperCampaign(scale, seed));
}

/** Run only the 790 mV @ 900 MHz session. */
inline core::SessionResult
run900MHzSession(uint64_t seed = 0x5e5510ULL)
{
    const double scale = campaignScaleFromEnv(defaultScale);
    core::CampaignConfig config =
        core::BeamCampaign::paperCampaign(scale, seed);
    config.sessions.erase(config.sessions.begin(),
                          config.sessions.begin() + 3);
    return runCampaign(config).front();
}

/** Print a paper-reference block for side-by-side comparison. */
inline void
paperReference(const std::string &text)
{
    std::printf("--- paper reference ---\n%s\n", text.c_str());
}

} // namespace xser::bench

#endif // XSER_BENCH_BENCH_COMMON_HH
