/**
 * @file
 * Ablation: chip-to-chip variation. The paper characterizes one
 * specimen; the literature it builds on ([36], [58]) shows safe Vmin
 * varies chip to chip. Sweep a batch of simulated specimens (distinct
 * process-variation draws) and report the Vmin distribution at both
 * frequencies plus the per-chip weakest core -- the data a vendor
 * would need to set a fleet-wide undervolting policy without per-chip
 * characterization.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/table_printer.hh"
#include "cpu/xgene2_platform.hh"
#include "stats/summary.hh"
#include "volt/vmin_characterizer.hh"

int
main()
{
    using namespace xser;
    bench::banner("Ablation: chip-to-chip safe-Vmin variation");

    constexpr unsigned chips = 20;
    Summary vmin24;
    Summary vmin900;
    core::TablePrinter table({"chip", "weakest core",
                              "offset (mV)", "Vmin @2.4GHz",
                              "Vmin @900MHz"});
    for (unsigned chip = 0; chip < chips; ++chip) {
        cpu::PlatformConfig config;
        config.chipSeed = 0xc41bULL + chip;
        cpu::XGene2Platform platform(config);
        volt::VminCharacterizer characterizer(platform.timing(),
                                              platform.variation());

        volt::VminSweepConfig sweep;
        sweep.runsPerStep = 400;
        sweep.startMillivolts = 980.0;
        sweep.stopMillivolts = 890.0;
        sweep.seed = 0x5eedULL + chip;
        const double at24 =
            characterizer.sweep(sweep).safeVminMillivolts;

        sweep.frequencyHz = 0.9e9;
        sweep.startMillivolts = 820.0;
        sweep.stopMillivolts = 760.0;
        const double at900 =
            characterizer.sweep(sweep).safeVminMillivolts;

        vmin24.add(at24);
        vmin900.add(at900);
        table.addRow({std::to_string(chip),
                      std::to_string(platform.variation().weakestCore()),
                      core::TablePrinter::fmt(
                          platform.variation().worstOffsetVolts() *
                              1000.0,
                          1),
                      core::TablePrinter::fmt(at24, 0),
                      core::TablePrinter::fmt(at900, 0)});
    }
    std::printf("%s\n", table.toString().c_str());
    std::printf("Vmin @2.4GHz : mean %.1f mV, spread [%.0f, %.0f]\n",
                vmin24.mean(), vmin24.min(), vmin24.max());
    std::printf("Vmin @900MHz : mean %.1f mV, spread [%.0f, %.0f]\n",
                vmin900.mean(), vmin900.min(), vmin900.max());
    std::printf(
        "\nexpected shape: Vmin clusters within ~2 regulator steps of\n"
        "the paper's 920 / 790 mV specimen; a fleet policy must add a\n"
        "guard step (or characterize per chip) to cover the spread --\n"
        "the per-chip methodology the paper (via [49],[57]) applies.\n");
    return 0;
}
