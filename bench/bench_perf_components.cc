/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths: the
 * SECDED codec, parity, SRAM reads, cache word access, the full
 * hierarchy walk, RNG distributions, beam advancement, and the
 * parallel campaign engine at 1..8 worker threads. These guard the
 * performance budget that makes paper-scale campaigns tractable.
 */

#include <benchmark/benchmark.h>

#include "core/parallel_campaign.hh"
#include "ecc/parity.hh"
#include "ecc/secded.hh"
#include "mem/cache.hh"
#include "mem/memory_system.hh"
#include "rad/beam_source.hh"
#include "sim/rng.hh"

namespace {

using namespace xser;

void
BM_SecdedEncode(benchmark::State &state)
{
    uint64_t value = 0x0123456789abcdefULL;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ecc::SecdedCodec::encode(value));
        value = value * 6364136223846793005ULL + 1;
    }
}
BENCHMARK(BM_SecdedEncode);

void
BM_SecdedDecodeClean(benchmark::State &state)
{
    const uint64_t value = 0x0123456789abcdefULL;
    const uint8_t check = ecc::SecdedCodec::encode(value);
    for (auto _ : state)
        benchmark::DoNotOptimize(ecc::SecdedCodec::decode(value, check));
}
BENCHMARK(BM_SecdedDecodeClean);

void
BM_SecdedDecodeSingleError(benchmark::State &state)
{
    const uint64_t value = 0x0123456789abcdefULL;
    const uint8_t check = ecc::SecdedCodec::encode(value);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            ecc::SecdedCodec::decode(value ^ 0x10, check));
    }
}
BENCHMARK(BM_SecdedDecodeSingleError);

void
BM_ParityCheck(benchmark::State &state)
{
    const uint64_t value = 0xfeedfacecafebeefULL;
    const uint8_t parity = ecc::ParityCodec::encode(value);
    for (auto _ : state) {
        benchmark::DoNotOptimize(ecc::ParityCodec::check(value, parity));
    }
}
BENCHMARK(BM_ParityCheck);

void
BM_SramArrayRead(benchmark::State &state)
{
    mem::SramArray array("bench", 4096, mem::Protection::Secded);
    for (size_t i = 0; i < array.words(); ++i)
        array.write(i, i * 0x9e3779b97f4a7c15ULL);
    size_t index = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(array.read(index));
        index = (index + 1) & 4095;
    }
}
BENCHMARK(BM_SramArrayRead);

void
BM_CacheReadWordHit(benchmark::State &state)
{
    mem::EdacReporter reporter;
    mem::CacheConfig config;
    config.name = "bench";
    config.sizeBytes = 256 * 1024;
    config.associativity = 8;
    mem::Cache cache(config, &reporter);
    std::vector<uint64_t> line(8, 42);
    for (mem::Addr addr = 0; addr < 64 * 1024; addr += 64)
        cache.allocate(addr, line, false);
    mem::Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.readWord(addr));
        addr = (addr + 64) & (64 * 1024 - 1);
    }
}
BENCHMARK(BM_CacheReadWordHit);

void
BM_HierarchyReadWarm(benchmark::State &state)
{
    mem::EdacReporter reporter;
    mem::MemorySystem memory(mem::MemorySystemConfig{}, &reporter);
    const mem::Addr base = memory.allocate(16 * 1024, "bench");
    for (size_t i = 0; i < 2048; ++i)
        memory.writeWord(0, base + 8 * i, i);
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(memory.readWord(0, base + 8 * i));
        i = (i + 1) & 2047;
    }
}
BENCHMARK(BM_HierarchyReadWarm);

void
BM_HierarchyReadStreaming(benchmark::State &state)
{
    mem::EdacReporter reporter;
    mem::MemorySystem memory(mem::MemorySystemConfig{}, &reporter);
    const size_t lines = 1 << 16;  // 4 MiB: misses throughout
    const mem::Addr base = memory.allocate(lines * 64, "bench");
    size_t line = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(memory.readWord(0, base + 64 * line));
        line = (line + 1) & (lines - 1);
    }
}
BENCHMARK(BM_HierarchyReadStreaming);

void
BM_RngPoissonSmallMean(benchmark::State &state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.nextPoisson(0.3));
}
BENCHMARK(BM_RngPoissonSmallMean);

void
BM_ParallelCampaignUnits(benchmark::State &state)
{
    // Eight tiny independent units (4 sessions x 2 replicates) on a
    // pool sized by the benchmark argument; wall time shrinks with
    // core count while results stay bit-identical.
    const auto jobs = static_cast<unsigned>(state.range(0));
    core::CampaignConfig config = core::BeamCampaign::paperCampaign(0.01);
    for (auto &session : config.sessions) {
        session.maxErrorEvents = 4;
        session.maxFluence = 6e8;
        session.warmupRounds = 1;
    }
    core::ParallelRunConfig run;
    run.jobs = jobs;
    run.replicates = 2;
    for (auto _ : state) {
        core::ParallelCampaignRunner runner(config, run);
        benchmark::DoNotOptimize(runner.executeAll());
    }
}
BENCHMARK(BM_ParallelCampaignUnits)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

void
BM_BeamAdvanceQuantum(benchmark::State &state)
{
    mem::EdacReporter reporter;
    mem::MemorySystem memory(mem::MemorySystemConfig{}, &reporter);
    rad::CrossSectionModel xsection;
    rad::MbuModel mbu;
    rad::BeamConfig config;
    config.timeScale = 4e6;
    rad::BeamSource beam(config, &xsection, &mbu, memory.beamTargets());
    const Tick quantum = ticks::fromSeconds(2e-6);
    for (auto _ : state)
        beam.advance(quantum);
}
BENCHMARK(BM_BeamAdvanceQuantum);

} // namespace

BENCHMARK_MAIN();
