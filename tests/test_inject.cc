/**
 * @file
 * Tests for the deterministic fault injector: site addressing, uniform
 * footprint coverage, burst clusters, and bit-exact replay.
 */

#include <gtest/gtest.h>

#include <bit>
#include <map>

#include "inject/fault_injector.hh"
#include "mem/memory_system.hh"

namespace xser::inject {
namespace {

mem::MemorySystemConfig
tinyConfig()
{
    mem::MemorySystemConfig config;
    config.numCores = 2;
    config.l1iBytes = 4 * 1024;
    config.l1dBytes = 4 * 1024;
    config.l1dAssociativity = 2;
    config.l2Bytes = 16 * 1024;
    config.l2Associativity = 4;
    config.l3Bytes = 64 * 1024;
    config.l3Associativity = 8;
    config.tlbWordsPerCore = 64;
    return config;
}

TEST(FaultInjector, FootprintMatchesMemorySystem)
{
    mem::EdacReporter reporter;
    mem::MemorySystem memory(tinyConfig(), &reporter);
    FaultInjector injector(memory.beamTargets(), 1);
    EXPECT_EQ(injector.footprintBits(), memory.totalSramBits());
}

TEST(FaultInjector, TargetedInjectionFlipsExactBit)
{
    mem::EdacReporter reporter;
    mem::MemorySystem memory(tinyConfig(), &reporter);
    FaultInjector injector(memory.beamTargets(), 1);

    FaultSite site;
    site.targetIndex = 0;
    site.word = 3;
    site.bit = 17;
    const uint64_t before =
        injector.targets()[0].array->peek(3);
    injector.inject(site);
    const uint64_t after = injector.targets()[0].array->peek(3);
    EXPECT_EQ(before ^ after, 1ULL << 17);
    EXPECT_EQ(injector.log().size(), 1u);
}

TEST(FaultInjector, RandomInjectionCoversAllTargets)
{
    mem::EdacReporter reporter;
    mem::MemorySystem memory(tinyConfig(), &reporter);
    FaultInjector injector(memory.beamTargets(), 99);
    std::map<size_t, int> hits;
    for (int i = 0; i < 5000; ++i)
        ++hits[injector.injectRandom().targetIndex];
    // Every array gets struck; the big L3 dominates in proportion to
    // its bit count.
    EXPECT_EQ(hits.size(), injector.targets().size());
    size_t l3_index = 0;
    uint64_t l3_bits = 0;
    for (size_t t = 0; t < injector.targets().size(); ++t) {
        if (injector.targets()[t].array->totalBits() > l3_bits) {
            l3_bits = injector.targets()[t].array->totalBits();
            l3_index = t;
        }
    }
    const double l3_share =
        static_cast<double>(hits[l3_index]) / 5000.0;
    const double l3_bit_share =
        static_cast<double>(l3_bits) /
        static_cast<double>(injector.footprintBits());
    EXPECT_NEAR(l3_share, l3_bit_share, 0.05);
}

TEST(FaultInjector, BurstStaysWithinOneWord)
{
    mem::EdacReporter reporter;
    mem::MemorySystem memory(tinyConfig(), &reporter);
    FaultInjector injector(memory.beamTargets(), 5);
    const FaultSite first = injector.injectRandomBurst(3);
    const auto &array = *injector.targets()[first.targetIndex].array;
    EXPECT_TRUE(array.isCorrupted(first.word));
    EXPECT_EQ(injector.log().size(), 3u);
    for (const auto &site : injector.log())
        EXPECT_EQ(site.word, first.word);
}

TEST(FaultInjector, ReplayReproducesState)
{
    mem::EdacReporter reporter1;
    mem::MemorySystem memory1(tinyConfig(), &reporter1);
    FaultInjector injector1(memory1.beamTargets(), 123);
    for (int i = 0; i < 200; ++i)
        injector1.injectRandom();

    mem::EdacReporter reporter2;
    mem::MemorySystem memory2(tinyConfig(), &reporter2);
    FaultInjector injector2(memory2.beamTargets(), 456);  // seed unused
    injector2.replay(injector1.log());

    const auto targets1 = memory1.beamTargets();
    const auto targets2 = memory2.beamTargets();
    for (size_t t = 0; t < targets1.size(); ++t) {
        for (size_t w = 0; w < targets1[t].array->words(); ++w) {
            ASSERT_EQ(targets1[t].array->peek(w),
                      targets2[t].array->peek(w));
        }
    }
}

TEST(FaultInjector, DescribeSiteNamesArray)
{
    mem::EdacReporter reporter;
    mem::MemorySystem memory(tinyConfig(), &reporter);
    const auto targets = memory.beamTargets();
    FaultSite site;
    site.targetIndex = 0;
    site.word = 2;
    site.bit = 9;
    const std::string text = describeSite(targets, site);
    EXPECT_NE(text.find(targets[0].array->name()), std::string::npos);
    EXPECT_NE(text.find("[2]"), std::string::npos);
}

TEST(FaultInjector, InjectedUpsetVisibleToEccOnRead)
{
    // End-to-end: inject into a resident L2 word, then read through
    // the hierarchy and observe the corrected event -- the
    // microarchitectural fault-injection flow of Design Implication #3.
    mem::EdacReporter reporter;
    mem::MemorySystem memory(tinyConfig(), &reporter);
    const mem::Addr addr = memory.allocate(64, "t");
    memory.writeWord(0, addr, 0x42ULL);

    auto targets = memory.beamTargets();
    FaultInjector injector(targets, 7);
    bool placed = false;
    for (size_t t = 0; t < targets.size() && !placed; ++t) {
        if (targets[t].level != mem::CacheLevel::L2)
            continue;
        for (size_t w = 0; w < targets[t].array->words(); ++w) {
            if (targets[t].array->truth(w) == 0x42ULL) {
                FaultSite site;
                site.targetIndex = t;
                site.word = w;
                site.bit = 4;
                injector.inject(site);
                placed = true;
                break;
            }
        }
    }
    ASSERT_TRUE(placed);
    memory.l1d(0).invalidate(addr);
    EXPECT_EQ(memory.readWord(0, addr), 0x42ULL);
    EXPECT_EQ(reporter.tally(mem::CacheLevel::L2).corrected, 1u);
}

} // namespace
} // namespace xser::inject
