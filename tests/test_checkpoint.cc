/**
 * @file
 * Checkpoint/fork engine tests: envelope validation (paranoid-decode
 * style, like the .xtrace reader's), the snapshot -> restore ->
 * re-snapshot fixed-point property, fork-vs-straight-run equivalence
 * for a single session, and the campaign-level gate -- checkpoint on
 * vs off must be byte-identical in aggregates and trace bytes for any
 * worker count.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/beam_campaign.hh"
#include "core/checkpoint.hh"
#include "core/parallel_campaign.hh"
#include "core/test_session.hh"
#include "cpu/xgene2_platform.hh"
#include "sim/snapshot.hh"
#include "trace/trace_writer.hh"

namespace xser::core {
namespace {

/** Two-workload session sized for the fast test loop. */
SessionConfig
tinySession(uint64_t seed = 0x5e5510ULL)
{
    SessionConfig config;
    config.workloadNames = {"EP", "IS"};
    config.maxErrorEvents = 4;
    config.maxFluence = 1e9;
    config.warmupRounds = 1;
    config.seed = seed;
    return config;
}

/** Fast-but-real campaign: the paper's four sessions, tiny targets. */
CampaignConfig
tinyCampaign(uint64_t seed = 0x5e5510ULL)
{
    CampaignConfig config = BeamCampaign::paperCampaign(0.02, seed);
    for (auto &session : config.sessions) {
        session.maxErrorEvents = 6;
        session.maxFluence = 2e9;
        session.warmupRounds = 2;
    }
    return config;
}

void
expectSessionsBitIdentical(const SessionResult &a, const SessionResult &b)
{
    EXPECT_EQ(a.runs, b.runs);
    EXPECT_EQ(a.upsetsDetected, b.upsetsDetected);
    EXPECT_EQ(a.rawUpsetEvents, b.rawUpsetEvents);
    EXPECT_EQ(a.events.sdcSilent, b.events.sdcSilent);
    EXPECT_EQ(a.events.sdcNotified, b.events.sdcNotified);
    EXPECT_EQ(a.events.appCrash, b.events.appCrash);
    EXPECT_EQ(a.events.sysCrash, b.events.sysCrash);
    // Bit-exact, not approximately equal: a forked continuation must
    // replay the same arithmetic as the straight-through run.
    EXPECT_EQ(a.fluence, b.fluence);
    EXPECT_EQ(a.duration, b.duration);
    EXPECT_EQ(a.avgPowerWatts, b.avgPowerWatts);
    ASSERT_EQ(a.perWorkload.size(), b.perWorkload.size());
    for (size_t w = 0; w < a.perWorkload.size(); ++w) {
        EXPECT_EQ(a.perWorkload[w].name, b.perWorkload[w].name);
        EXPECT_EQ(a.perWorkload[w].runs, b.perWorkload[w].runs);
        EXPECT_EQ(a.perWorkload[w].upsetsDetected,
                  b.perWorkload[w].upsetsDetected);
        EXPECT_EQ(a.perWorkload[w].fluence, b.perWorkload[w].fluence);
    }
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    return bytes.str();
}

TEST(CheckpointEnvelope, SealOpenRoundTrip)
{
    std::vector<uint8_t> payload = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x42};
    const std::vector<uint8_t> blob =
        sealCheckpoint(3, 0x1234abcdULL, payload);
    const CheckpointView view = openCheckpoint(blob);
    ASSERT_TRUE(view.ok) << view.error;
    EXPECT_EQ(view.sessionIndex, 3u);
    EXPECT_EQ(view.configHash, 0x1234abcdULL);
    ASSERT_EQ(view.payloadSize, payload.size());
    EXPECT_EQ(std::vector<uint8_t>(view.payload,
                                   view.payload + view.payloadSize),
              payload);
}

TEST(CheckpointEnvelope, EmptyPayloadRoundTrips)
{
    const std::vector<uint8_t> blob = sealCheckpoint(0, 7, {});
    const CheckpointView view = openCheckpoint(blob);
    ASSERT_TRUE(view.ok) << view.error;
    EXPECT_EQ(view.payloadSize, 0u);
}

TEST(CheckpointEnvelope, RejectsTruncationAtEveryLength)
{
    const std::vector<uint8_t> blob =
        sealCheckpoint(1, 0xabcdULL, {1, 2, 3, 4, 5, 6, 7, 8});
    for (size_t cut = 0; cut < blob.size(); ++cut) {
        const std::vector<uint8_t> truncated(blob.begin(),
                                             blob.begin() + cut);
        const CheckpointView view = openCheckpoint(truncated);
        EXPECT_FALSE(view.ok) << "accepted a " << cut << "-byte prefix";
        EXPECT_FALSE(view.error.empty());
    }
}

TEST(CheckpointEnvelope, NoCorruptedByteSlipsThrough)
{
    // Every single-byte flip is either rejected outright (magic,
    // version, sizes, payload -- the checksum covers the payload) or
    // surfaces as a changed identity field (session index, config
    // hash) that the caller's cross-check refuses. Nothing decodes
    // silently to the original identity with different content.
    const std::vector<uint8_t> blob =
        sealCheckpoint(1, 0xabcdULL, {9, 8, 7, 6, 5});
    for (size_t i = 0; i < blob.size(); ++i) {
        std::vector<uint8_t> corrupted = blob;
        corrupted[i] ^= 0x20;
        const CheckpointView view = openCheckpoint(corrupted);
        if (!view.ok)
            continue;
        EXPECT_TRUE(view.sessionIndex != 1u ||
                    view.configHash != 0xabcdULL)
            << "flip in byte " << i
            << " decoded to the original identity";
    }
}

TEST(CheckpointEnvelope, RejectsTrailingGarbage)
{
    std::vector<uint8_t> blob = sealCheckpoint(0, 1, {1, 2, 3});
    blob.push_back(0xff);
    const CheckpointView view = openCheckpoint(blob);
    EXPECT_FALSE(view.ok);
}

TEST(CheckpointEnvelope, RejectsWrongVersion)
{
    std::vector<uint8_t> blob = sealCheckpoint(0, 1, {1, 2, 3});
    blob[8] = static_cast<uint8_t>(checkpointVersion + 1);
    const CheckpointView view = openCheckpoint(blob);
    EXPECT_FALSE(view.ok);
    EXPECT_NE(view.error.find("version"), std::string::npos);
}

TEST(CheckpointRoundTrip, RestoreIsASnapshotFixedPoint)
{
    // snapshot(restore(snapshot(prefix))) == snapshot(prefix), byte
    // for byte: the serialization misses nothing the serialization
    // itself can see. (Fork equivalence below closes the remaining
    // gap: nothing *outside* the snapshot matters either.)
    const SessionConfig session_config = tinySession();
    cpu::XGene2Platform original(cpu::PlatformConfig{});
    TestSession prefix(&original, session_config);
    prefix.runPrefix();
    SnapshotWriter writer;
    prefix.snapshotPrefix(writer);
    const std::vector<uint8_t> first = writer.take();

    cpu::XGene2Platform restored(cpu::PlatformConfig{});
    TestSession adopted(&restored, session_config);
    SnapshotReader reader(first);
    adopted.restorePrefix(reader);
    EXPECT_TRUE(reader.atEnd());

    SnapshotWriter rewriter;
    adopted.snapshotPrefix(rewriter);
    EXPECT_EQ(rewriter.data(), first);
}

TEST(CheckpointRoundTrip, ForkedContinuationMatchesStraightRun)
{
    const SessionConfig session_config = tinySession();

    cpu::XGene2Platform straight_platform(cpu::PlatformConfig{});
    TestSession straight(&straight_platform, session_config);
    const SessionResult expected = straight.execute();

    cpu::XGene2Platform prefix_platform(cpu::PlatformConfig{});
    TestSession prefix(&prefix_platform, session_config);
    prefix.runPrefix();
    SnapshotWriter writer;
    prefix.snapshotPrefix(writer);
    const std::vector<uint8_t> blob = writer.take();

    cpu::XGene2Platform fork_platform(cpu::PlatformConfig{});
    TestSession fork(&fork_platform, session_config);
    SnapshotReader reader(blob);
    fork.restorePrefix(reader);
    const SessionResult actual = fork.runContinuation();

    expectSessionsBitIdentical(expected, actual);
}

TEST(CheckpointRoundTrip, OnePrefixForksDistinctSeeds)
{
    // The importance-splitting claim: one snapshot serves every
    // replicate seed, and different seeds genuinely diverge.
    cpu::XGene2Platform prefix_platform(cpu::PlatformConfig{});
    TestSession prefix(&prefix_platform, tinySession(1));
    prefix.runPrefix();
    SnapshotWriter writer;
    prefix.snapshotPrefix(writer);
    const std::vector<uint8_t> blob = writer.take();

    std::vector<SessionResult> results;
    for (const uint64_t seed : {1ULL, 2ULL}) {
        // Straight run with this seed...
        cpu::XGene2Platform straight_platform(cpu::PlatformConfig{});
        TestSession straight(&straight_platform, tinySession(seed));
        const SessionResult expected = straight.execute();
        // ...must match a fork of the seed-1 prefix under this seed.
        cpu::XGene2Platform fork_platform(cpu::PlatformConfig{});
        TestSession fork(&fork_platform, tinySession(seed));
        SnapshotReader reader(blob);
        fork.restorePrefix(reader);
        const SessionResult actual = fork.runContinuation();
        expectSessionsBitIdentical(expected, actual);
        results.push_back(actual);
    }
    EXPECT_NE(results[0].rawUpsetEvents, results[1].rawUpsetEvents);
}

/**
 * Campaign-scale gate (ctest label `slow`): checkpoint on vs off must
 * agree byte for byte -- aggregates and trace -- at jobs 1 and 8.
 */
class CheckpointForkDeterminism : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        ParallelRunConfig run;
        run.jobs = 1;
        run.replicates = 2;
        run.checkpoint = false;
        ParallelCampaignRunner runner(tinyCampaign(), run);
        reference_ = new ReplicatedCampaignResult(runner.executeAll());
    }

    static void
    TearDownTestSuite()
    {
        delete reference_;
        reference_ = nullptr;
    }

    void
    expectMatchesReference(const ReplicatedCampaignResult &sweep)
    {
        ASSERT_EQ(sweep.replicates.size(),
                  reference_->replicates.size());
        for (size_t r = 0; r < sweep.replicates.size(); ++r) {
            const CampaignResult &a = reference_->replicates[r];
            const CampaignResult &b = sweep.replicates[r];
            ASSERT_EQ(a.sessions.size(), b.sessions.size());
            for (size_t s = 0; s < a.sessions.size(); ++s) {
                SCOPED_TRACE("replicate " + std::to_string(r) +
                             " session " + std::to_string(s));
                expectSessionsBitIdentical(a.sessions[s], b.sessions[s]);
            }
        }
        ASSERT_EQ(sweep.sessions.size(), reference_->sessions.size());
        for (size_t s = 0; s < sweep.sessions.size(); ++s) {
            EXPECT_EQ(reference_->sessions[s].fitTotal.mean(),
                      sweep.sessions[s].fitTotal.mean());
            EXPECT_EQ(reference_->sessions[s].fitTotal.variance(),
                      sweep.sessions[s].fitTotal.variance());
        }
    }

    static ReplicatedCampaignResult *reference_;
};

ReplicatedCampaignResult *CheckpointForkDeterminism::reference_ = nullptr;

TEST_F(CheckpointForkDeterminism, OneWorkerMatchesUncheckpointed)
{
    ParallelRunConfig run;
    run.jobs = 1;
    run.replicates = 2;
    run.checkpoint = true;
    ParallelCampaignRunner runner(tinyCampaign(), run);
    expectMatchesReference(runner.executeAll());
}

TEST_F(CheckpointForkDeterminism, EightWorkersMatchUncheckpointed)
{
    ParallelRunConfig run;
    run.jobs = 8;
    run.replicates = 2;
    run.checkpoint = true;
    ParallelCampaignRunner runner(tinyCampaign(), run);
    expectMatchesReference(runner.executeAll());
}

TEST_F(CheckpointForkDeterminism, TraceBytesIdenticalOnAndOff)
{
    // The strongest equality we can state: the .xtrace files -- every
    // event, timestamp, and header word -- are the same bytes whether
    // continuations were forked or prefixes replayed, at any job count.
    const std::string off_path =
        ::testing::TempDir() + "ckpt_off.xtrace";
    const std::string on_path = ::testing::TempDir() + "ckpt_on.xtrace";
    {
        ParallelRunConfig run;
        run.jobs = 1;
        run.replicates = 2;
        run.checkpoint = false;
        ParallelCampaignRunner runner(tinyCampaign(), run);
        trace::TraceWriter writer(off_path);
        runner.executeAll(&writer);
    }
    {
        ParallelRunConfig run;
        run.jobs = 8;
        run.replicates = 2;
        run.checkpoint = true;
        ParallelCampaignRunner runner(tinyCampaign(), run);
        trace::TraceWriter writer(on_path);
        runner.executeAll(&writer);
    }
    const std::string off_bytes = readFileBytes(off_path);
    const std::string on_bytes = readFileBytes(on_path);
    ASSERT_FALSE(off_bytes.empty());
    EXPECT_EQ(off_bytes, on_bytes);
}

} // namespace
} // namespace xser::core
