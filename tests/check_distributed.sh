#!/usr/bin/env bash
# End-to-end determinism gate for the distributed campaign service
# (DESIGN.md section 12).
#
#   check_distributed.sh XSER XSER_SERVER XSER_WORKER XSER_CLIENT \
#                        XSER_METRICS
#
# Runs the same reduced campaign three ways -- locally with --jobs 8,
# through xser-server with two workers, and again with one of the two
# workers crashing mid-campaign (exercising the requeue path) -- and
# asserts the report text and .xtrace bytes are identical with cmp and
# the run manifests identical modulo the wall-clock "timing" section
# with xser-metrics diff. Any drift is a determinism regression in the
# shard protocol, the merge order, or the telemetry transfer.
set -eu

if [ "$#" -ne 5 ]; then
    echo "usage: $0 XSER XSER_SERVER XSER_WORKER XSER_CLIENT XSER_METRICS" >&2
    exit 2
fi
XSER=$1 SERVER=$2 WORKER=$3 CLIENT=$4 METRICS=$5

SCALE=0.005
SEED=7
REPLICATES=2

WORKDIR=$(mktemp -d)
PIDS=""
cleanup() {
    for pid in $PIDS; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

# The report embeds the --trace path verbatim, so every run uses the
# same relative path from its own directory.
run_local() {
    local dir=$1
    mkdir -p "$WORKDIR/$dir"
    (cd "$WORKDIR/$dir" &&
     "$XSER" campaign --scale "$SCALE" --seed "$SEED" --jobs 8 \
         --replicates "$REPLICATES" --trace out.xtrace \
         --metrics out.json > report.txt)
}

# run_distributed DIR EXTRA_WORKER_FLAGS...
run_distributed() {
    local dir=$1; shift
    local d="$WORKDIR/$dir"
    mkdir -p "$d"
    "$SERVER" --port 0 --port-file "$d/port.txt" --max-campaigns 1 \
        > "$d/server.log" 2>&1 &
    local server_pid=$!
    PIDS="$PIDS $server_pid"
    for _ in $(seq 1 100); do
        [ -s "$d/port.txt" ] && break
        sleep 0.1
    done
    [ -s "$d/port.txt" ] || { echo "server never bound" >&2; exit 1; }
    local port
    port=$(cat "$d/port.txt")
    "$WORKER" --port "$port" "$@" > "$d/worker1.log" 2>&1 &
    PIDS="$PIDS $!"
    "$WORKER" --port "$port" > "$d/worker2.log" 2>&1 &
    PIDS="$PIDS $!"
    (cd "$d" &&
     "$CLIENT" run --port "$port" --scale "$SCALE" --seed "$SEED" \
         --replicates "$REPLICATES" --trace out.xtrace \
         --metrics out.json > report.txt 2> client.log)
    wait "$server_pid"
}

compare() {
    local dir=$1 label=$2
    cmp "$WORKDIR/local/report.txt" "$WORKDIR/$dir/report.txt" ||
        { echo "FAIL: $label report differs from local run" >&2; exit 1; }
    cmp "$WORKDIR/local/out.xtrace" "$WORKDIR/$dir/out.xtrace" ||
        { echo "FAIL: $label trace differs from local run" >&2; exit 1; }
    "$METRICS" diff --a "$WORKDIR/local/out.json" \
        --b "$WORKDIR/$dir/out.json" ||
        { echo "FAIL: $label manifest differs from local run" >&2; exit 1; }
}

echo "== local reference (--jobs 8) =="
run_local local

echo "== distributed: server + 2 workers =="
run_distributed dist
compare dist "distributed"

echo "== distributed: one worker crashes mid-campaign =="
run_distributed crash --crash-on-shard 2
compare crash "crash-requeue"
grep -q "requeueing" "$WORKDIR/crash/server.log" ||
    { echo "FAIL: crash scenario never exercised the requeue path" >&2
      exit 1; }

echo "PASS: distributed campaign byte-identical to local run"
