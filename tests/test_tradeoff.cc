/**
 * @file
 * Tests for the energy-vs-reliability analyzer: Young-interval math,
 * ladder monotonicities, the SDC-budget policy, and the AVF estimator
 * extension (Design Implication #3).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/tradeoff.hh"
#include "inject/avf_estimator.hh"
#include "volt/timing_model.hh"

namespace xser::core {
namespace {

struct Models {
    volt::PowerModel power;
    volt::TimingModel timing;
    LogicSusceptibilityModel logic{&timing};
};

TEST(Tradeoff, EvaluateNominalBasics)
{
    Models models;
    TradeoffConfig config;
    config.devices = 50000.0;
    EnergyReliabilityAnalyzer analyzer(&models.power, &models.logic,
                                       config);
    const TradeoffPoint point = analyzer.evaluate(volt::nominalPoint());

    EXPECT_NEAR(point.powerWatts, 20.40, 0.2);
    // Crash FIT at nominal ~ 5.8 (1.49 + 4.29 from Fig. 11).
    EXPECT_NEAR(point.crashFit, 5.8, 1.0);
    // Fleet MTBF = 1e9 / (FIT * devices) hours.
    EXPECT_NEAR(point.fleetCrashMtbfHours,
                1e9 / (point.crashFit * 50000.0), 1.0);
    // Young's interval: tau = sqrt(2 * delta * MTBF).
    const double delta_hours = 30.0 / 3600.0;
    EXPECT_NEAR(point.optimalCheckpointHours,
                std::sqrt(2.0 * delta_hours * point.fleetCrashMtbfHours),
                1e-9);
    EXPECT_GT(point.wasteFraction, 0.0);
    EXPECT_LT(point.wasteFraction, 0.05);
    EXPECT_GT(point.usefulWorkPerJoule, 0.0);
    EXPECT_GT(point.energyPerYearMwh, 8000.0);  // ~20W * 50k * 8760h
    EXPECT_LT(point.energyPerYearMwh, 10000.0);
}

TEST(Tradeoff, SdcIncidentsExplodeAtVmin)
{
    Models models;
    TradeoffConfig config;
    config.devices = 50000.0;
    EnergyReliabilityAnalyzer analyzer(&models.power, &models.logic,
                                       config);
    const TradeoffPoint nominal = analyzer.evaluate(volt::nominalPoint());
    const TradeoffPoint vmin = analyzer.evaluate(volt::vminPoint());
    EXPECT_GT(vmin.sdcIncidentsPerYear,
              10.0 * nominal.sdcIncidentsPerYear);
    EXPECT_LT(vmin.powerWatts, nominal.powerWatts);
}

TEST(Tradeoff, LadderMonotonicities)
{
    Models models;
    EnergyReliabilityAnalyzer analyzer(&models.power, &models.logic);
    const std::vector<TradeoffPoint> ladder = analyzer.ladder(920.0);
    ASSERT_EQ(ladder.size(), 7u);  // 980..920 in 10 mV steps
    for (size_t i = 1; i < ladder.size(); ++i) {
        // Power decreases monotonically down the ladder.
        EXPECT_LT(ladder[i].powerWatts, ladder[i - 1].powerWatts);
        // SDC incidents never decrease.
        EXPECT_GE(ladder[i].sdcIncidentsPerYear,
                  ladder[i - 1].sdcIncidentsPerYear * 0.999);
    }
    // The explosion is concentrated in the last step (Design
    // Implication #2).
    const double last_step_ratio =
        ladder[6].sdcIncidentsPerYear / ladder[5].sdcIncidentsPerYear;
    const double mid_step_ratio =
        ladder[3].sdcIncidentsPerYear / ladder[2].sdcIncidentsPerYear;
    EXPECT_GT(last_step_ratio, 3.0);
    EXPECT_LT(mid_step_ratio, 2.0);
}

TEST(Tradeoff, BudgetPolicyPicksSweetSpot)
{
    Models models;
    TradeoffConfig config;
    config.devices = 50000.0;
    EnergyReliabilityAnalyzer analyzer(&models.power, &models.logic,
                                       config);

    // A tight SDC budget keeps the policy off the cliff edge.
    const TradeoffPoint nominal = analyzer.evaluate(volt::nominalPoint());
    const TradeoffPoint tight = analyzer.bestUnderSdcBudget(
        3.0 * nominal.sdcIncidentsPerYear);
    EXPECT_GT(tight.point.pmdMillivolts, 920.0);
    EXPECT_LT(tight.point.pmdMillivolts, 980.0);
    EXPECT_GT(tight.usefulWorkPerJoule, nominal.usefulWorkPerJoule);

    // An unbounded budget lets it ride to the lowest setting.
    const TradeoffPoint loose = analyzer.bestUnderSdcBudget(1e18);
    EXPECT_EQ(loose.point.pmdMillivolts, 920.0);

    // An impossible budget falls back to nominal.
    const TradeoffPoint impossible = analyzer.bestUnderSdcBudget(0.0);
    EXPECT_EQ(impossible.point.pmdMillivolts, 980.0);
}

TEST(Tradeoff, HigherFluxShortensCheckpointInterval)
{
    Models models;
    TradeoffConfig sea;
    sea.devices = 1e5;
    TradeoffConfig mountain = sea;
    mountain.environment = rad::atAltitude(3600.0);
    EnergyReliabilityAnalyzer at_sea(&models.power, &models.logic, sea);
    EnergyReliabilityAnalyzer at_altitude(&models.power, &models.logic,
                                          mountain);
    const TradeoffPoint low = at_sea.evaluate(volt::nominalPoint());
    const TradeoffPoint high =
        at_altitude.evaluate(volt::nominalPoint());
    EXPECT_LT(high.fleetCrashMtbfHours, low.fleetCrashMtbfHours);
    EXPECT_LT(high.optimalCheckpointHours, low.optimalCheckpointHours);
    EXPECT_GT(high.sdcIncidentsPerYear, low.sdcIncidentsPerYear * 5.0);
}

TEST(Tradeoff, UtilizationScalesExposure)
{
    Models models;
    TradeoffConfig full;
    full.devices = 1e4;
    TradeoffConfig half = full;
    half.utilization = 0.5;
    EnergyReliabilityAnalyzer busy(&models.power, &models.logic, full);
    EnergyReliabilityAnalyzer idle(&models.power, &models.logic, half);
    const TradeoffPoint a = busy.evaluate(volt::nominalPoint());
    const TradeoffPoint b = idle.evaluate(volt::nominalPoint());
    EXPECT_NEAR(b.sdcIncidentsPerYear, a.sdcIncidentsPerYear / 2.0,
                1e-9);
    EXPECT_NEAR(b.energyPerYearMwh, a.energyPerYearMwh / 2.0, 1e-9);
}

TEST(Tradeoff, LadderSocTracksTable3)
{
    Models models;
    EnergyReliabilityAnalyzer analyzer(&models.power, &models.logic);
    const auto ladder = analyzer.ladder(920.0);
    // Table 3 tracking: SoC = 950 - (980 - PMD)/2, floored at 920.
    EXPECT_EQ(ladder.front().point.socMillivolts, 950.0);
    EXPECT_EQ(ladder.back().point.socMillivolts, 920.0);
    for (const auto &point : ladder) {
        EXPECT_GE(point.point.socMillivolts, 920.0);
        EXPECT_LE(point.point.socMillivolts, 950.0);
    }
}

/* --------------------------- AvfEstimator ------------------------ */

TEST(AvfEstimator, SecdedLevelsHaveNearZeroSingleFlipAvf)
{
    // Single flips in SECDED arrays are always corrected; with modest
    // flip counts per trial almost every trial must stay clean.
    inject::AvfConfig config;
    config.trials = 10;
    config.flipsPerTrial = 16;
    config.workloadName = "EP";
    inject::AvfEstimator estimator(config);
    const inject::AvfResult l3 =
        estimator.estimate(mem::CacheLevel::L3);
    EXPECT_EQ(l3.trials, 10u);
    EXPECT_LE(l3.corruptedTrials, 1u);
    EXPECT_LT(l3.avf, 0.01);
}

TEST(AvfEstimator, ProjectFitScalesWithAvfAndVoltage)
{
    inject::AvfConfig config;
    config.trials = 2;
    config.flipsPerTrial = 4;
    inject::AvfEstimator estimator(config);
    rad::CrossSectionModel xsection;

    inject::AvfResult synthetic;
    synthetic.level = mem::CacheLevel::L2;
    synthetic.avf = 1e-3;
    const double fit_nominal =
        estimator.projectFit(synthetic, xsection, 0.980);
    const double fit_low =
        estimator.projectFit(synthetic, xsection, 0.790);
    EXPECT_GT(fit_nominal, 0.0);
    EXPECT_GT(fit_low, fit_nominal * 1.3);

    synthetic.avf = 2e-3;
    EXPECT_NEAR(estimator.projectFit(synthetic, xsection, 0.980),
                2.0 * fit_nominal, 1e-9);
}

TEST(AvfEstimator, BurstModeDefeatsSecdedInL3)
{
    // Single flips: zero AVF everywhere (Design Implication #1).
    // Size-3 bursts: the non-interleaved L3 shows a real AVF while
    // the refetchable parity arrays stay clean.
    inject::AvfConfig config;
    config.trials = 8;
    config.flipsPerTrial = 24;
    config.burstSize = 3;
    config.seed = 0xb0057ULL;
    inject::AvfEstimator estimator(config);
    const inject::AvfResult l3 =
        estimator.estimate(mem::CacheLevel::L3);
    EXPECT_GT(l3.corruptedTrials, 0u);
    EXPECT_GT(l3.avf, 0.0);
}

TEST(AvfEstimator, InversionMath)
{
    // a = 1 - (1-p)^(1/k): with p = 0.5, k = 8 -> a = 0.0830.
    inject::AvfResult result;
    result.trials = 100;
    result.corruptedTrials = 50;
    result.flipsPerTrial = 8;
    // Exercise through the public path: construct a synthetic result
    // the way estimate() computes it.
    const double p = 0.5;
    const double a = 1.0 - std::pow(1.0 - p, 1.0 / 8.0);
    EXPECT_NEAR(a, 0.0830, 1e-3);
}

} // namespace
} // namespace xser::core
