/**
 * @file
 * Tests for the campaign framework: the calibrated logic-susceptibility
 * model against the paper-derived cross sections, outcome
 * classification, DCS/FIT calculators, table rendering, and the
 * campaign factories.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/beam_campaign.hh"
#include "core/campaign_report.hh"
#include "core/control_pc.hh"
#include "core/dcs_calculator.hh"
#include "core/observations.hh"
#include "core/fit_calculator.hh"
#include "core/logic_susceptibility.hh"
#include "core/table_printer.hh"
#include "sim/rng.hh"
#include "volt/timing_model.hh"

namespace xser::core {
namespace {

/* --------------------- LogicSusceptibilityModel ------------------ */

TEST(LogicModel, MatchesPaperDerivedDcsAt24GHz)
{
    volt::TimingModel timing;
    LogicSusceptibilityModel model(&timing);

    // Paper-derived targets (see calibration.hh): total SDC DCS of
    // 1.95e-10 / 3.70e-10 / 3.19e-9 at 980 / 930 / 920 mV.
    const LogicDcs nominal = model.rates(0.980, 2.4e9);
    EXPECT_NEAR((nominal.sdcSilent + nominal.sdcNotified) / 1.95e-10,
                1.0, 0.15);
    const LogicDcs safe = model.rates(0.930, 2.4e9);
    EXPECT_NEAR((safe.sdcSilent + safe.sdcNotified) / 3.70e-10, 1.0,
                0.20);
    const LogicDcs vmin = model.rates(0.920, 2.4e9);
    EXPECT_NEAR((vmin.sdcSilent + vmin.sdcNotified) / 3.19e-9, 1.0,
                0.20);

    // Crash channels: App 1.14e-10 and Sys 3.29e-10 at nominal.
    EXPECT_NEAR(nominal.appCrash / 1.14e-10, 1.0, 0.05);
    EXPECT_NEAR(nominal.sysCrash / 3.29e-10, 1.0, 0.05);
    // Crash DCS declines with undervolting (the measured trend).
    EXPECT_LT(vmin.appCrash, nominal.appCrash);
    EXPECT_LT(vmin.sysCrash, nominal.sysCrash);
}

TEST(LogicModel, SdcBlowupFactorAtVmin)
{
    // Headline result: SDC DCS at Vmin is >16x nominal (Section 6.1).
    volt::TimingModel timing;
    LogicSusceptibilityModel model(&timing);
    const LogicDcs nominal = model.rates(0.980, 2.4e9);
    const LogicDcs vmin = model.rates(0.920, 2.4e9);
    const double factor = (vmin.sdcSilent + vmin.sdcNotified) /
                          (nominal.sdcSilent + nominal.sdcNotified);
    EXPECT_GT(factor, 12.0);
    EXPECT_LT(factor, 22.0);
}

TEST(LogicModel, MatchesPaperDerivedDcsAt900MHz)
{
    volt::TimingModel timing;
    LogicSusceptibilityModel model(&timing);
    const LogicDcs low = model.rates(0.790, 0.9e9);
    // ~6 SDC / 2 App / 5 Sys in 1.48e10 n/cm^2 (Fig. 13 session).
    EXPECT_NEAR((low.sdcSilent + low.sdcNotified) / 4.05e-10, 1.0,
                0.25);
    EXPECT_NEAR(low.appCrash / 1.35e-10, 1.0, 0.05);
    EXPECT_NEAR(low.sysCrash / 3.38e-10, 1.0, 0.05);
}

TEST(LogicModel, FrequencyDecouplesSusceptibility)
{
    // Observation #6: at 900 MHz, far below its cliff the chip's logic
    // susceptibility is not inflated even at much lower voltage.
    volt::TimingModel timing;
    LogicSusceptibilityModel model(&timing);
    const LogicDcs vmin24 = model.rates(0.920, 2.4e9);
    const LogicDcs low900 = model.rates(0.790, 0.9e9);
    EXPECT_LT(low900.total(), vmin24.total() / 2.0);
}

TEST(LogicModel, SamplingMatchesRates)
{
    volt::TimingModel timing;
    LogicSusceptibilityModel model(&timing);
    workloads::WorkloadTraits traits;
    traits.sdcWeight = 1.0;
    traits.appCrashWeight = 1.0;
    traits.sysCrashWeight = 1.0;

    Rng rng(5);
    const double fluence = 2.4e8;
    const int runs = 20000;
    LogicEvents totals;
    for (int i = 0; i < runs; ++i) {
        const LogicEvents events =
            model.sampleRun(0.920, 2.4e9, fluence, traits, rng);
        totals.sdcSilent += events.sdcSilent;
        totals.sdcNotified += events.sdcNotified;
        totals.appCrash += events.appCrash;
        totals.sysCrash += events.sysCrash;
    }
    const LogicDcs dcs = model.rates(0.920, 2.4e9);
    const double exposure = fluence * runs;
    EXPECT_NEAR(static_cast<double>(totals.sdcSilent) / exposure /
                    dcs.sdcSilent,
                1.0, 0.05);
    EXPECT_NEAR(static_cast<double>(totals.sysCrash) / exposure /
                    dcs.sysCrash,
                1.0, 0.15);
}

TEST(LogicModel, WorkloadWeightsScaleRates)
{
    volt::TimingModel timing;
    LogicSusceptibilityModel model(&timing);
    workloads::WorkloadTraits heavy;
    heavy.sdcWeight = 2.0;
    workloads::WorkloadTraits light;
    light.sdcWeight = 0.5;
    Rng rng_a(1);
    Rng rng_b(1);
    uint64_t heavy_total = 0;
    uint64_t light_total = 0;
    for (int i = 0; i < 20000; ++i) {
        heavy_total +=
            model.sampleRun(0.920, 2.4e9, 2.4e8, heavy, rng_a).sdcSilent;
        light_total +=
            model.sampleRun(0.920, 2.4e9, 2.4e8, light, rng_b).sdcSilent;
    }
    EXPECT_NEAR(static_cast<double>(heavy_total) /
                    static_cast<double>(light_total),
                4.0, 0.4);
}

/* ----------------------------- ControlPc ------------------------- */

workloads::WorkloadOutput
goodOutput()
{
    workloads::WorkloadOutput output;
    output.termination = workloads::Termination::Completed;
    output.verified = true;
    output.signature = {1, 2};
    return output;
}

TEST(ControlPc, GoldenRoundTrip)
{
    ControlPc control;
    EXPECT_FALSE(control.hasGolden("CG"));
    control.setGolden("CG", goodOutput());
    EXPECT_TRUE(control.hasGolden("CG"));
    EXPECT_EQ(control.golden("CG"), (std::vector<uint64_t>{1, 2}));
}

TEST(ControlPc, ClassificationPrecedence)
{
    ControlPc control;
    control.setGolden("CG", goodOutput());

    LogicEvents none;
    RunRecord success = control.classify("CG", goodOutput(), none,
                                         false, 1e8, 100, 0);
    EXPECT_EQ(success.outcome, RunOutcome::Success);

    workloads::WorkloadOutput corrupted = goodOutput();
    corrupted.signature = {9, 9};
    RunRecord sdc = control.classify("CG", corrupted, none, false, 1e8,
                                     100, 0);
    EXPECT_EQ(sdc.outcome, RunOutcome::Sdc);
    EXPECT_TRUE(sdc.signatureMismatch);

    LogicEvents crashy;
    crashy.appCrash = 1;
    crashy.sdcSilent = 2;
    RunRecord app = control.classify("CG", corrupted, crashy, false,
                                     1e8, 100, 0);
    EXPECT_EQ(app.outcome, RunOutcome::AppCrash);

    crashy.sysCrash = 1;
    RunRecord sys = control.classify("CG", corrupted, crashy, false,
                                     1e8, 100, 0);
    EXPECT_EQ(sys.outcome, RunOutcome::SysCrash);

    workloads::WorkloadOutput trapped;
    trapped.termination = workloads::Termination::Trapped;
    RunRecord trap = control.classify("CG", trapped, none, false, 1e8,
                                      100, 0);
    EXPECT_EQ(trap.outcome, RunOutcome::AppCrash);
    EXPECT_TRUE(trap.trappedOrganically);
}

TEST(ControlPc, EventsOfCountsEverySampledEvent)
{
    ControlPc control;
    control.setGolden("CG", goodOutput());
    LogicEvents events;
    events.sdcSilent = 2;
    events.sysCrash = 1;
    RunRecord record = control.classify("CG", goodOutput(), events,
                                        false, 1e8, 100, 0);
    const EventCounts counts = control.eventsOf(record, events);
    EXPECT_EQ(counts.sdcSilent, 2u);
    EXPECT_EQ(counts.sysCrash, 1u);
    EXPECT_EQ(counts.total(), 3u);
}

TEST(ControlPc, OrganicMismatchNotifiedSplit)
{
    ControlPc control;
    control.setGolden("CG", goodOutput());
    workloads::WorkloadOutput corrupted = goodOutput();
    corrupted.signature = {7};
    LogicEvents none;
    RunRecord with_ce = control.classify("CG", corrupted, none, true,
                                         1e8, 100, 3);
    EXPECT_EQ(control.eventsOf(with_ce, none).sdcNotified, 1u);
    RunRecord without_ce = control.classify("CG", corrupted, none,
                                            false, 1e8, 100, 0);
    EXPECT_EQ(control.eventsOf(without_ce, none).sdcSilent, 1u);
}

/* --------------------------- calculators ------------------------- */

SessionResult
syntheticSession()
{
    SessionResult session;
    session.point = volt::vminPoint();
    session.beamFluxPerSecond = 1.5e6;
    session.fluence = 4.08e10;
    session.events.sdcSilent = 123;
    session.events.sdcNotified = 7;
    session.events.appCrash = 3;
    session.events.sysCrash = 8;
    session.upsetsDetected = 506;
    session.totalSramBits =
        static_cast<uint64_t>(9.5 * 1024 * 1024 * 8);
    session.avgPowerWatts = 18.15;
    return session;
}

TEST(FitCalculator, ReproducesFig11Session3)
{
    const FitBreakdown fit = FitCalculator::breakdown(syntheticSession());
    EXPECT_NEAR(fit.sdc.fit, 41.4, 0.5);
    EXPECT_NEAR(fit.appCrash.fit, 0.96, 0.05);
    EXPECT_NEAR(fit.sysCrash.fit, 2.55, 0.05);
    EXPECT_NEAR(fit.total.fit, 44.9, 0.5);
    EXPECT_LT(fit.sdc.ci.lower, fit.sdc.fit);
    EXPECT_GT(fit.sdc.ci.upper, fit.sdc.fit);
}

TEST(DcsCalculator, MatchesEventOverFluence)
{
    const DcsBreakdown dcs =
        DcsCalculator::breakdown(syntheticSession());
    EXPECT_NEAR(dcs.sdc.dcs, 130.0 / 4.08e10, 1e-12);
    EXPECT_NEAR(dcs.total.dcs, 141.0 / 4.08e10, 1e-12);
    EXPECT_NEAR(dcs.memoryUpsets.dcs, 506.0 / 4.08e10, 1e-12);
    EXPECT_EQ(dcs.sdcNotified.events, 7u);
}

TEST(SessionResult, DerivedRatesMatchTable2Session3)
{
    const SessionResult session = syntheticSession();
    // 4.08e10 / (1.5e6 * 60) = 453 minutes.
    EXPECT_NEAR(session.equivalentMinutes(), 453.0, 2.0);
    EXPECT_NEAR(session.errorsPerMinute(), 0.311, 0.01);
    EXPECT_NEAR(session.upsetsPerMinute(), 1.117, 0.02);
    EXPECT_NEAR(session.nycYearsEquivalent(), 3.58e5, 0.05e5);
    EXPECT_NEAR(session.memorySerFitPerMbit(), 2.12, 0.3);
}

/* ------------------------- report rendering ---------------------- */

TEST(Reports, Table2ContainsAllRows)
{
    const std::string text = formatTable2({syntheticSession()});
    for (const char *needle :
         {"Voltage Levels", "Fluence", "Years of NYC", "SDCs and crashes",
          "Memory upsets", "Memory SER"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
}

TEST(Reports, Table3ListsOperatingPoints)
{
    const std::string text = formatTable3();
    EXPECT_NE(text.find("Nominal"), std::string::npos);
    EXPECT_NE(text.find("Vmin"), std::string::npos);
    EXPECT_NE(text.find("790"), std::string::npos);
}

TEST(Reports, Fig8PercentagesSumSensibly)
{
    const std::string text = formatFig8({syntheticSession()});
    EXPECT_NE(text.find("SDC"), std::string::npos);
    EXPECT_NE(text.find("92."), std::string::npos);  // 130/141 = 92.2%
}

TEST(Reports, Fig11And12Render)
{
    const std::vector<SessionResult> sessions = {syntheticSession()};
    EXPECT_NE(formatFig11(sessions).find("Total FIT"),
              std::string::npos);
    EXPECT_NE(formatFig12(sessions).find("w/o any hardware"),
              std::string::npos);
    EXPECT_NE(formatFig13(sessions[0]).find("w/ corrected"),
              std::string::npos);
}

TEST(Reports, Fig5Fig6Fig7Render)
{
    SessionResult session = syntheticSession();
    WorkloadSessionStats stats;
    stats.name = "CG";
    stats.runs = 10;
    stats.fluence = 1e10;
    stats.upsetsDetected = 120;
    session.perWorkload.push_back(stats);
    const std::vector<SessionResult> sessions = {session};
    const std::string fig5 = formatFig5(sessions);
    EXPECT_NE(fig5.find("CG"), std::string::npos);
    EXPECT_NE(fig5.find("Total"), std::string::npos);
    EXPECT_NE(formatFig6(sessions).find("L3 Cache (uncorrected)"),
              std::string::npos);
    EXPECT_NE(formatFig7(session).find("900 MHz"), std::string::npos);
}

TEST(Reports, Fig9AndFig10Render)
{
    SessionResult nominal = syntheticSession();
    nominal.point = volt::nominalPoint();
    nominal.avgPowerWatts = 20.4;
    SessionResult low = syntheticSession();
    low.avgPowerWatts = 18.15;
    const std::vector<SessionResult> sessions = {nominal, low};
    const std::string fig9 = formatFig9(sessions);
    EXPECT_NE(fig9.find("20.40"), std::string::npos);
    const std::string fig10 = formatFig10(sessions);
    // Savings of the second point vs the first: (20.4-18.15)/20.4.
    EXPECT_NE(fig10.find("11.0"), std::string::npos);
}

TEST(Reports, Fig4RendersSweeps)
{
    volt::VminSweepResult sweep;
    sweep.safeVminMillivolts = 920.0;
    sweep.completeFailMillivolts = 900.0;
    sweep.steps.push_back(volt::VminStep{920.0, 100, 0, 0.0});
    sweep.steps.push_back(volt::VminStep{915.0, 100, 12, 0.12});
    const std::string text = formatFig4(sweep, sweep);
    EXPECT_NE(text.find("safe Vmin"), std::string::npos);
    EXPECT_NE(text.find("12.0%"), std::string::npos);
}

TEST(WorkloadSessionStats, RateHelpers)
{
    WorkloadSessionStats stats;
    stats.fluence = 1.5e6 * 60.0 * 10.0;  // 10 beam-equivalent minutes
    stats.upsetsDetected = 25;
    EXPECT_NEAR(stats.equivalentMinutes(1.5e6), 10.0, 1e-9);
    EXPECT_NEAR(stats.upsetsPerMinute(1.5e6), 2.5, 1e-9);
    EXPECT_EQ(stats.upsetsPerMinute(0.0), 0.0);
}

/* ------------------------ ObservationChecker --------------------- */

CampaignResult
syntheticCampaign()
{
    // Build four sessions whose numbers mirror the paper's Table 2 /
    // Fig. 8 exactly, so every observation should hold.
    auto make = [](double pmd, double soc, double freq, double fluence,
                   uint64_t sdc, uint64_t app, uint64_t sys,
                   uint64_t upsets, double power) {
        SessionResult session;
        session.point = volt::OperatingPoint{"s", pmd, soc, freq};
        session.beamFluxPerSecond = 1.5e6;
        session.fluence = fluence;
        session.events.sdcSilent = sdc - sdc / 5;
        session.events.sdcNotified = sdc / 5;
        session.events.appCrash = app;
        session.events.sysCrash = sys;
        session.upsetsDetected = upsets;
        session.totalSramBits = 80000000;
        session.avgPowerWatts = power;
        // Per-level tallies: L3-heavy split.
        session.edac[3].corrected = upsets * 70 / 100;
        session.edac[2].corrected = upsets * 16 / 100;
        session.edac[1].corrected = upsets * 3 / 100;
        session.edac[0].corrected = upsets / 100;
        return session;
    };
    CampaignResult campaign;
    campaign.sessions.push_back(
        make(980, 950, 2.4e9, 1.49e11, 29, 17, 49, 1669, 20.40));
    campaign.sessions.push_back(
        make(930, 925, 2.4e9, 1.46e11, 54, 7, 36, 1743, 18.63));
    campaign.sessions.push_back(
        make(920, 920, 2.4e9, 4.08e10, 130, 3, 8, 506, 18.15));
    campaign.sessions.push_back(
        make(790, 950, 0.9e9, 1.48e10, 6, 2, 5, 195, 10.59));
    return campaign;
}

TEST(Observations, AllHoldOnPaperNumbers)
{
    const CampaignResult campaign = syntheticCampaign();
    ObservationChecker checker(campaign);
    const auto verdicts = checker.evaluate();
    ASSERT_EQ(verdicts.size(), 9u);
    for (const auto &verdict : verdicts)
        EXPECT_TRUE(verdict.holds)
            << "#" << verdict.number << ": " << verdict.measurement;
    EXPECT_EQ(ObservationChecker::countHolding(verdicts), 9u);
}

TEST(Observations, DetectsBrokenShape)
{
    CampaignResult campaign = syntheticCampaign();
    // Sabotage observation #4: make the Vmin session crash-dominated.
    campaign.sessions[2].events.sdcSilent = 2;
    campaign.sessions[2].events.sdcNotified = 0;
    campaign.sessions[2].events.sysCrash = 130;
    ObservationChecker checker(campaign);
    const auto verdicts = checker.evaluate();
    EXPECT_FALSE(verdicts[3].holds);  // #4
    EXPECT_LT(ObservationChecker::countHolding(verdicts), 9u);
}

TEST(Observations, FormatRendersVerdicts)
{
    ObservationChecker checker(syntheticCampaign());
    const std::string text =
        ObservationChecker::format(checker.evaluate());
    EXPECT_NE(text.find("HOLDS"), std::string::npos);
    EXPECT_NE(text.find("upsets/min"), std::string::npos);
}

/* --------------------------- TablePrinter ------------------------ */

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter table({"a", "long_header"});
    table.addRow({"xxxxxx", "1"});
    const std::string text = table.toString();
    // Header rule present, rows padded.
    EXPECT_NE(text.find("---"), std::string::npos);
    EXPECT_NE(text.find("xxxxxx"), std::string::npos);
}

TEST(TablePrinter, Formatters)
{
    EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::sci(1.49e11, 2), "1.49E+11");
    EXPECT_EQ(TablePrinter::pct(0.305), "30.5%");
}

/* --------------------------- BeamCampaign ------------------------ */

TEST(BeamCampaign, PaperCampaignShape)
{
    const CampaignConfig config = BeamCampaign::paperCampaign(1.0);
    ASSERT_EQ(config.sessions.size(), 4u);
    EXPECT_EQ(config.sessions[0].point.pmdMillivolts, 980.0);
    EXPECT_EQ(config.sessions[3].point.frequencyHz, 0.9e9);
    EXPECT_EQ(config.sessions[2].maxErrorEvents, 141u);
    EXPECT_NEAR(config.sessions[3].maxFluence, 1.48e10, 1e7);
    // Distinct seeds per session.
    EXPECT_NE(config.sessions[0].seed, config.sessions[1].seed);
}

TEST(BeamCampaign, ScaleShrinksTargets)
{
    const CampaignConfig full = BeamCampaign::paperCampaign(1.0);
    const CampaignConfig fast = BeamCampaign::paperCampaign(0.2);
    EXPECT_LT(fast.sessions[0].maxFluence,
              full.sessions[0].maxFluence * 0.25);
    EXPECT_LT(fast.sessions[0].maxErrorEvents,
              full.sessions[0].maxErrorEvents);
    EXPECT_GE(fast.sessions[0].maxErrorEvents, 8u);
}

TEST(BeamCampaign, Campaign24GHzDropsThe900MHzSession)
{
    const CampaignConfig config = BeamCampaign::campaign24GHz(1.0);
    ASSERT_EQ(config.sessions.size(), 3u);
    for (const auto &session : config.sessions)
        EXPECT_EQ(session.point.frequencyHz, 2.4e9);
}

/* ---------------------- golden campaign pins --------------------- */

/*
 * Golden-value regression: the exact headline numbers of
 * paperCampaign(scale=0.02, seed=0x5e5510) as produced by the seed
 * implementation. The reproduced figures flow from these tallies, so
 * any refactor that shifts them -- a reordered RNG draw, a changed
 * merge order, an accidental extra sample -- fails here instead of
 * silently bending Table 2 / Figs. 5-13. Integer tallies are pinned
 * exactly; accumulated floats get a 1e-6 relative band (they are
 * bit-stable on one platform, but libm rounding may differ across
 * toolchains).
 */
TEST(GoldenCampaign, HeadlineNumbersPinned)
{
    BeamCampaign campaign(BeamCampaign::paperCampaign(0.02, 0x5e5510ULL));
    const CampaignResult result = campaign.execute();
    ASSERT_EQ(result.sessions.size(), 4u);

    struct Golden {
        uint64_t runs;
        uint64_t upsets;
        uint64_t sdcSilent;
        uint64_t sdcNotified;
        uint64_t appCrash;
        uint64_t sysCrash;
        double fluence;
        double totalFit;
    };
    /*
     * Re-derived when beam sampling moved to dose-space skip-ahead
     * arrivals (the event-driven fast path): arrivals now land at their
     * exact crossing instant instead of being batched per advance
     * quantum, which legitimately shifts which reads encounter which
     * flips. Runs, outcome tallies, fluence, and FIT were unchanged by
     * the re-derivation; only upsetsDetected moved. Equivalence of the
     * fast path itself is gated separately (fast-on == fast-off
     * bit-identity in test_parallel.cc / test_trace.cc).
     */
    const Golden golden[4] = {
        // 980 mV @ 2.4 GHz
        {13, 57, 1, 1, 1, 2, 3.0735515e9, 21.1481734},
        // 930 mV @ 2.4 GHz
        {13, 35, 0, 0, 0, 0, 3.09413664e9, 0.0},
        // 920 mV @ 2.4 GHz (Vmin): the SDC explosion
        {8, 29, 5, 0, 0, 3, 1.87563489e9, 55.4478917},
        // 790 mV @ 900 MHz
        {1, 17, 0, 0, 0, 0, 5.63475351e8, 0.0},
    };

    for (size_t s = 0; s < 4; ++s) {
        SCOPED_TRACE("session " + std::to_string(s));
        const SessionResult &session = result.sessions[s];
        EXPECT_EQ(session.runs, golden[s].runs);
        EXPECT_EQ(session.upsetsDetected, golden[s].upsets);
        EXPECT_EQ(session.events.sdcSilent, golden[s].sdcSilent);
        EXPECT_EQ(session.events.sdcNotified, golden[s].sdcNotified);
        EXPECT_EQ(session.events.appCrash, golden[s].appCrash);
        EXPECT_EQ(session.events.sysCrash, golden[s].sysCrash);
        EXPECT_NEAR(session.fluence, golden[s].fluence,
                    1e-6 * golden[s].fluence);
        const FitBreakdown fit = FitCalculator::breakdown(session);
        EXPECT_NEAR(fit.total.fit, golden[s].totalFit,
                    1e-6 * golden[s].totalFit + 1e-9);
    }
}

TEST(Outcome, Names)
{
    EXPECT_STREQ(runOutcomeName(RunOutcome::Success), "Success");
    EXPECT_STREQ(runOutcomeName(RunOutcome::Sdc), "SDC");
    EXPECT_STREQ(runOutcomeName(RunOutcome::AppCrash), "AppCrash");
    EXPECT_STREQ(runOutcomeName(RunOutcome::SysCrash), "SysCrash");
}

} // namespace
} // namespace xser::core
