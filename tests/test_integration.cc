/**
 * @file
 * End-to-end integration tests: run real (scaled-down) beam sessions
 * and assert the paper's qualitative results -- the shapes of its
 * figures -- hold in the reproduction:
 *
 *  - upset rates rise as voltage drops (Obs. #1);
 *  - bigger arrays log more upsets (Obs. #2);
 *  - the SDC share of failures explodes at Vmin while crash shares
 *    shrink (Obs. #4 / Fig. 8);
 *  - total FIT at Vmin is several times nominal (Obs. #8);
 *  - sessions are bit-exactly reproducible under a fixed seed.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "core/beam_campaign.hh"
#include "core/fit_calculator.hh"
#include "core/test_session.hh"
#include "cpu/xgene2_platform.hh"
#include "volt/operating_point.hh"

namespace xser::core {
namespace {

/** Small-but-real session config at a given point. */
SessionConfig
smallSession(const volt::OperatingPoint &point, uint64_t seed)
{
    SessionConfig config;
    config.point = point;
    config.maxErrorEvents = 25;
    config.maxFluence = 1.2e10;
    config.seed = seed;
    return config;
}

/** Shared fixture: run nominal + vmin sessions once for the suite. */
class SessionPair : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        {
            cpu::XGene2Platform platform;
            TestSession session(&platform,
                                smallSession(volt::nominalPoint(), 11));
            nominal_ = new SessionResult(session.execute());
        }
        {
            cpu::XGene2Platform platform;
            TestSession session(&platform,
                                smallSession(volt::vminPoint(), 22));
            vmin_ = new SessionResult(session.execute());
        }
    }

    static void
    TearDownTestSuite()
    {
        delete nominal_;
        delete vmin_;
        nominal_ = nullptr;
        vmin_ = nullptr;
    }

    static SessionResult *nominal_;
    static SessionResult *vmin_;
};

SessionResult *SessionPair::nominal_ = nullptr;
SessionResult *SessionPair::vmin_ = nullptr;

TEST_F(SessionPair, SessionsProduceActivity)
{
    for (const SessionResult *session : {nominal_, vmin_}) {
        EXPECT_GT(session->runs, 5u);
        EXPECT_GT(session->fluence, 1e9);
        EXPECT_GT(session->upsetsDetected, 20u);
        EXPECT_GT(session->events.total(), 0u);
        EXPECT_GT(session->duration, 0u);
        EXPECT_EQ(session->perWorkload.size(), 6u);
    }
}

TEST_F(SessionPair, UpsetRateRisesAtLowerVoltage)
{
    // Observation #1: ~10% more upsets/min at Vmin. The *raw* upset
    // rate per fluence is the statistically strong signal (thousands
    // of events); the detected rate carries ~10% Poisson noise at this
    // session size, so it only gets a direction-with-slack check.
    const double nominal_raw =
        static_cast<double>(nominal_->rawUpsetEvents) /
        nominal_->fluence;
    const double vmin_raw =
        static_cast<double>(vmin_->rawUpsetEvents) / vmin_->fluence;
    EXPECT_GT(vmin_raw, nominal_raw * 1.03);
    EXPECT_GT(vmin_->upsetsPerMinute(),
              nominal_->upsetsPerMinute() * 0.85);
}

TEST_F(SessionPair, LargerArraysLogMoreUpsets)
{
    // Observation #2: L3 > L2 > L1 corrected rates.
    for (const SessionResult *session : {nominal_, vmin_}) {
        const auto l1 =
            session->edac[static_cast<size_t>(mem::CacheLevel::L1)]
                .corrected;
        const auto l2 =
            session->edac[static_cast<size_t>(mem::CacheLevel::L2)]
                .corrected;
        const auto l3 =
            session->edac[static_cast<size_t>(mem::CacheLevel::L3)]
                .corrected;
        EXPECT_GT(l3, l2);
        EXPECT_GT(l2, l1);
    }
}

TEST_F(SessionPair, UncorrectableEventsOnlyInL3)
{
    // The interleaving model confines multi-bit words to L3 (Fig. 6).
    for (const SessionResult *session : {nominal_, vmin_}) {
        EXPECT_EQ(session->edac[static_cast<size_t>(
                                    mem::CacheLevel::Tlb)]
                      .uncorrected,
                  0u);
        EXPECT_EQ(
            session->edac[static_cast<size_t>(mem::CacheLevel::L1)]
                .uncorrected,
            0u);
    }
    // And they do occur there at Vmin-or-below statistics volume
    // (both sessions combined see plenty of L3 traffic).
    const auto ue =
        nominal_->edac[static_cast<size_t>(mem::CacheLevel::L3)]
            .uncorrected +
        vmin_->edac[static_cast<size_t>(mem::CacheLevel::L3)]
            .uncorrected;
    EXPECT_GT(ue, 0u);
}

TEST_F(SessionPair, SdcShareExplodesAtVmin)
{
    // Fig. 8: SDC share 30.5% -> 92.2%; crash shares collapse.
    const double nominal_sdc_share =
        static_cast<double>(nominal_->events.sdcTotal()) /
        static_cast<double>(nominal_->events.total());
    const double vmin_sdc_share =
        static_cast<double>(vmin_->events.sdcTotal()) /
        static_cast<double>(vmin_->events.total());
    EXPECT_LT(nominal_sdc_share, 0.60);
    EXPECT_GT(vmin_sdc_share, 0.75);
    EXPECT_GT(vmin_sdc_share, nominal_sdc_share + 0.2);
}

TEST_F(SessionPair, TotalFitSeveralTimesNominalAtVmin)
{
    // Observation #8: total FIT 6.6x, SDC FIT ~16x at Vmin. With
    // 25-event sessions the ratios are noisy; require the directional
    // factor.
    const FitBreakdown nominal_fit = FitCalculator::breakdown(*nominal_);
    const FitBreakdown vmin_fit = FitCalculator::breakdown(*vmin_);
    EXPECT_GT(vmin_fit.total.fit, 3.0 * nominal_fit.total.fit);
    EXPECT_GT(vmin_fit.sdc.fit, 6.0 * nominal_fit.sdc.fit);
}

TEST_F(SessionPair, PowerDropsAtVmin)
{
    EXPECT_LT(vmin_->avgPowerWatts, nominal_->avgPowerWatts);
    EXPECT_NEAR(nominal_->avgPowerWatts, 20.4, 0.8);
    EXPECT_NEAR(vmin_->avgPowerWatts, 18.15, 0.8);
}

TEST_F(SessionPair, MemorySerInPaperBand)
{
    // Table 2 row 10: 2.08..2.45 FIT/Mbit. Allow calibration slack.
    for (const SessionResult *session : {nominal_, vmin_}) {
        EXPECT_GT(session->memorySerFitPerMbit(), 1.0);
        EXPECT_LT(session->memorySerFitPerMbit(), 4.5);
    }
}

TEST_F(SessionPair, PerWorkloadSlicesSumToSessionTotals)
{
    for (const SessionResult *session : {nominal_, vmin_}) {
        double fluence = 0.0;
        uint64_t runs = 0;
        uint64_t upsets = 0;
        EventCounts events;
        for (const auto &stats : session->perWorkload) {
            fluence += stats.fluence;
            runs += stats.runs;
            upsets += stats.upsetsDetected;
            events.merge(stats.events);
        }
        EXPECT_NEAR(fluence, session->fluence, 1e-3);
        EXPECT_EQ(runs, session->runs);
        EXPECT_EQ(upsets, session->upsetsDetected);
        EXPECT_EQ(events.total(), session->events.total());
        EXPECT_EQ(events.sdcTotal(), session->events.sdcTotal());
    }
}

TEST_F(SessionPair, RoundRobinKeepsRunCountsBalanced)
{
    for (const SessionResult *session : {nominal_, vmin_}) {
        uint64_t min_runs = UINT64_MAX;
        uint64_t max_runs = 0;
        for (const auto &stats : session->perWorkload) {
            min_runs = std::min(min_runs, stats.runs);
            max_runs = std::max(max_runs, stats.runs);
        }
        EXPECT_LE(max_runs - min_runs, 1u);
    }
}

TEST(SessionDeterminism, SameSeedBitExact)
{
    SessionConfig config = smallSession(volt::vminPoint(), 99);
    config.maxErrorEvents = 8;
    config.maxFluence = 3e9;

    cpu::XGene2Platform platform_a;
    SessionResult a = TestSession(&platform_a, config).execute();
    cpu::XGene2Platform platform_b;
    SessionResult b = TestSession(&platform_b, config).execute();

    EXPECT_EQ(a.runs, b.runs);
    EXPECT_DOUBLE_EQ(a.fluence, b.fluence);
    EXPECT_EQ(a.upsetsDetected, b.upsetsDetected);
    EXPECT_EQ(a.events.sdcSilent, b.events.sdcSilent);
    EXPECT_EQ(a.events.sdcNotified, b.events.sdcNotified);
    EXPECT_EQ(a.events.appCrash, b.events.appCrash);
    EXPECT_EQ(a.events.sysCrash, b.events.sysCrash);
    EXPECT_EQ(a.rawUpsetEvents, b.rawUpsetEvents);
}

TEST(SessionDeterminism, DifferentSeedsDiffer)
{
    SessionConfig config_a = smallSession(volt::vminPoint(), 1);
    SessionConfig config_b = smallSession(volt::vminPoint(), 2);
    config_a.maxErrorEvents = 8;
    config_a.maxFluence = 3e9;
    config_b.maxErrorEvents = 8;
    config_b.maxFluence = 3e9;

    cpu::XGene2Platform platform_a;
    SessionResult a = TestSession(&platform_a, config_a).execute();
    cpu::XGene2Platform platform_b;
    SessionResult b = TestSession(&platform_b, config_b).execute();
    EXPECT_NE(a.rawUpsetEvents, b.rawUpsetEvents);
}

TEST(SessionStopping, EventTargetStopsSession)
{
    cpu::XGene2Platform platform;
    SessionConfig config = smallSession(volt::vminPoint(), 7);
    config.maxErrorEvents = 5;
    config.maxFluence = 1e12;
    SessionResult result = TestSession(&platform, config).execute();
    EXPECT_GE(result.events.total(), 5u);
    // Overshoot is at most one run's worth of events.
    EXPECT_LT(result.events.total(), 5u + 12u);
}

TEST(SessionStopping, FluenceCapStopsSession)
{
    cpu::XGene2Platform platform;
    SessionConfig config = smallSession(volt::nominalPoint(), 7);
    config.maxErrorEvents = 100000;
    config.maxFluence = 2e9;
    SessionResult result = TestSession(&platform, config).execute();
    EXPECT_GE(result.fluence, 2e9);
    EXPECT_LT(result.fluence, 2e9 + 10 * config.fluencePerRun);
}

TEST(SessionFluence, PerRunFluenceOnTarget)
{
    cpu::XGene2Platform platform;
    SessionConfig config = smallSession(volt::nominalPoint(), 13);
    config.maxErrorEvents = 100000;
    config.maxFluence = 3e9;
    SessionResult result = TestSession(&platform, config).execute();
    const double per_run =
        result.fluence / static_cast<double>(result.runs);
    EXPECT_NEAR(per_run / config.fluencePerRun, 1.0, 0.35);
}

TEST(Campaign900MHz, FrequencyInsensitivityOfUpsetRate)
{
    // Observation #6: upsets/min at 790 mV @ 900 MHz continues the
    // voltage trend rather than jumping with frequency.
    cpu::XGene2Platform platform;
    SessionConfig config = smallSession(volt::vmin900Point(), 31);
    SessionResult low = TestSession(&platform, config).execute();
    EXPECT_GT(low.upsetsPerMinute(), 0.5);
    EXPECT_LT(low.upsetsPerMinute(), 3.0);
    // L1/L2 rates rise vs L3 share compared to the 2.4 GHz sessions
    // (PMD at 790 mV, SoC still at 950 mV -- Fig. 7's story). Check
    // the PMD-side share of corrected events is higher than at
    // nominal.
    cpu::XGene2Platform platform2;
    SessionResult nominal =
        TestSession(&platform2, smallSession(volt::nominalPoint(), 32))
            .execute();
    auto pmd_share = [](const SessionResult &session) {
        double pmd = 0.0;
        double all = 0.0;
        for (size_t level = 0; level < mem::numCacheLevels; ++level) {
            const double corrected =
                static_cast<double>(session.edac[level].corrected);
            all += corrected;
            if (level != static_cast<size_t>(mem::CacheLevel::L3))
                pmd += corrected;
        }
        return all > 0 ? pmd / all : 0.0;
    };
    EXPECT_GT(pmd_share(low), pmd_share(nominal));
}

TEST(FullCampaign, FourSessionsExecute)
{
    CampaignConfig config = BeamCampaign::paperCampaign(0.04, 5);
    BeamCampaign campaign(config);
    CampaignResult result = campaign.execute();
    ASSERT_EQ(result.sessions.size(), 4u);
    EXPECT_EQ(result.sessions[0].point.pmdMillivolts, 980.0);
    EXPECT_EQ(result.sessions[3].point.frequencyHz, 0.9e9);
    for (const auto &session : result.sessions)
        EXPECT_GT(session.runs, 0u);
}

} // namespace
} // namespace xser::core
