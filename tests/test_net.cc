/**
 * @file
 * Protocol robustness tests for the net frame codec and the service
 * message layer (DESIGN.md section 12).
 *
 * The posture under test is the core/checkpoint one: any malformed
 * byte stream -- truncations, bit flips, garbage, hostile size fields
 * -- must yield a clean, descriptive error, never a crash, hang, or
 * silent misparse. The sweeps below exercise every prefix length and
 * every flipped bit of real encoded messages.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/frame.hh"
#include "service/protocol.hh"
#include "telemetry/metrics.hh"

namespace xser {
namespace {

using net::FrameReader;

std::string
sampleFrame()
{
    return net::encodeFrame(7, "the quick brown payload");
}

// --------------------------------------------------------------------
// Frame envelope
// --------------------------------------------------------------------

TEST(FrameCodec, RoundTripsTypeAndPayload)
{
    const std::string bytes = net::encodeFrame(42, "abc");
    const net::FrameView view = net::decodeFrame(
        reinterpret_cast<const uint8_t *>(bytes.data()), bytes.size());
    ASSERT_TRUE(view.ok);
    EXPECT_EQ(view.type, 42u);
    EXPECT_EQ(std::string(reinterpret_cast<const char *>(view.payload),
                          view.payloadSize),
              "abc");
    EXPECT_EQ(view.frameSize, bytes.size());
}

TEST(FrameCodec, EmptyPayloadRoundTrips)
{
    const std::string bytes = net::encodeFrame(1, "");
    const net::FrameView view = net::decodeFrame(
        reinterpret_cast<const uint8_t *>(bytes.data()), bytes.size());
    ASSERT_TRUE(view.ok);
    EXPECT_EQ(view.payloadSize, 0u);
}

TEST(FrameCodec, EveryPrefixIsIncompleteNotError)
{
    const std::string bytes = sampleFrame();
    for (size_t len = 0; len < bytes.size(); ++len) {
        const net::FrameView view = net::decodeFrame(
            reinterpret_cast<const uint8_t *>(bytes.data()), len);
        EXPECT_FALSE(view.ok) << "prefix " << len;
        EXPECT_TRUE(view.incomplete) << "prefix " << len;
        EXPECT_FALSE(view.error.empty()) << "prefix " << len;
    }
}

TEST(FrameCodec, EveryBitFlipIsDetectedOrHarmless)
{
    // Flipping any single bit must never crash and must never yield a
    // successfully decoded frame with the original type AND payload:
    // the magic guards bytes 0-7, the version check 8-11, the checksum
    // guards the payload, and a size-field flip either trips the cap
    // or reads as a (harmless) still-incomplete frame. Only the type
    // field is deliberately unauthenticated -- the application layer
    // rejects unknown types -- so a type flip may decode, but with a
    // different type.
    const std::string bytes = sampleFrame();
    const net::FrameView good = net::decodeFrame(
        reinterpret_cast<const uint8_t *>(bytes.data()), bytes.size());
    ASSERT_TRUE(good.ok);
    for (size_t bit = 0; bit < bytes.size() * 8; ++bit) {
        std::string flipped = bytes;
        flipped[bit / 8] =
            static_cast<char>(flipped[bit / 8] ^ (1 << (bit % 8)));
        const net::FrameView view = net::decodeFrame(
            reinterpret_cast<const uint8_t *>(flipped.data()),
            flipped.size());
        if (!view.ok) {
            EXPECT_FALSE(view.error.empty()) << "bit " << bit;
            continue;
        }
        const bool type_changed = view.type != good.type;
        EXPECT_TRUE(type_changed) << "bit " << bit;
    }
}

TEST(FrameCodec, HostileSizeFieldTripsTheCap)
{
    std::string bytes = sampleFrame();
    // Overwrite the payload-size field (bytes 16..23) with a size just
    // past the protocol cap.
    const uint64_t hostile = net::maxFramePayloadBytes + 1;
    for (unsigned i = 0; i < 8; ++i)
        bytes[16 + i] =
            static_cast<char>((hostile >> (8 * i)) & 0xff);
    const net::FrameView view = net::decodeFrame(
        reinterpret_cast<const uint8_t *>(bytes.data()), bytes.size());
    EXPECT_FALSE(view.ok);
    EXPECT_FALSE(view.incomplete); // hard error, not "wait for more"
    EXPECT_NE(view.error.find("exceeds"), std::string::npos);
}

TEST(FrameReaderTest, ReassemblesOneByteAtATime)
{
    const std::string bytes = sampleFrame() + net::encodeFrame(9, "x");
    FrameReader reader;
    std::vector<net::Frame> frames;
    for (char byte : bytes) {
        reader.feed(&byte, 1);
        net::Frame frame;
        while (reader.next(frame) == FrameReader::Status::Ready)
            frames.push_back(frame);
    }
    ASSERT_EQ(frames.size(), 2u);
    EXPECT_EQ(frames[0].type, 7u);
    EXPECT_EQ(frames[0].payload, "the quick brown payload");
    EXPECT_EQ(frames[1].type, 9u);
    EXPECT_EQ(frames[1].payload, "x");
    EXPECT_EQ(reader.buffered(), 0u);
}

TEST(FrameReaderTest, GarbageMakesTheStreamStickyFailed)
{
    FrameReader reader;
    const std::string garbage = "GET / HTTP/1.1\r\n\r\n"
                                "definitely not an xser stream";
    reader.feed(garbage.data(), garbage.size());
    net::Frame frame;
    EXPECT_EQ(reader.next(frame), FrameReader::Status::Error);
    EXPECT_FALSE(reader.error().empty());
    // Feeding a perfectly valid frame afterwards must not resurrect
    // the stream: framing is lost for good once desynchronized.
    const std::string good = sampleFrame();
    reader.feed(good.data(), good.size());
    EXPECT_EQ(reader.next(frame), FrameReader::Status::Error);
}

// --------------------------------------------------------------------
// Service message codecs
// --------------------------------------------------------------------

service::CampaignParams
sampleParams()
{
    service::CampaignParams params;
    params.scale = 0.07;
    params.seed = 0xdecafbadULL;
    params.replicates = 3;
    params.checkpoint = true;
    params.fastpath = false;
    params.traceBufferEvents = 4096;
    params.wantTrace = true;
    params.wantMetrics = true;
    params.configHash = 0x1234abcdULL;
    return params;
}

core::SessionResult
sampleResult()
{
    core::SessionResult result;
    result.point.name = "Vmin";
    result.point.pmdMillivolts = 890.0;
    result.point.socMillivolts = 920.0;
    result.point.frequencyHz = 2.4e9;
    result.beamFluxPerSecond = 1.5e6;
    result.runs = 17;
    result.fluence = 3.25e9;
    result.duration = 987654321;
    result.events.sdcSilent = 4;
    result.events.sdcNotified = 2;
    result.events.appCrash = 1;
    result.events.sysCrash = 1;
    result.edac[0] = {11, 1};
    result.edac[1] = {7, 0};
    result.upsetsDetected = 19;
    result.rawUpsetEvents = 23;
    result.totalSramBits = 1u << 22;
    result.avgPowerWatts = 12.5;
    core::WorkloadSessionStats workload;
    workload.name = "cg.S";
    workload.runs = 5;
    workload.fluence = 1e9;
    workload.duration = 1234;
    workload.upsetsDetected = 3;
    workload.events.sdcSilent = 1;
    result.perWorkload.push_back(workload);
    return result;
}

service::ShardResultMsg
sampleShardResult()
{
    service::ShardResultMsg msg;
    msg.campaignId = 77;
    msg.session = 2;
    msg.replicateBegin = 1;
    msg.replicateEnd = 3;
    msg.prefixTelemetry = "prefix-blob";
    for (uint32_t replicate = 1; replicate < 3; ++replicate) {
        service::UnitResultMsg unit;
        unit.replicate = replicate;
        unit.result = sampleResult();
        unit.traceEventCount = 12;
        unit.traceBytes = std::string("\x01\x02\x00raw", 6);
        msg.units.push_back(unit);
    }
    msg.shardTelemetry = "shard-blob";
    return msg;
}

TEST(ServiceCodec, ShardResultRoundTrips)
{
    const service::ShardResultMsg original = sampleShardResult();
    const std::string payload = encodeShardResult(original);
    service::ShardResultMsg decoded;
    std::string error;
    ASSERT_TRUE(decodeShardResult(payload, decoded, error)) << error;
    EXPECT_EQ(decoded.campaignId, original.campaignId);
    EXPECT_EQ(decoded.session, original.session);
    EXPECT_EQ(decoded.replicateBegin, original.replicateBegin);
    EXPECT_EQ(decoded.replicateEnd, original.replicateEnd);
    EXPECT_EQ(decoded.prefixTelemetry, original.prefixTelemetry);
    EXPECT_EQ(decoded.shardTelemetry, original.shardTelemetry);
    ASSERT_EQ(decoded.units.size(), original.units.size());
    for (size_t i = 0; i < decoded.units.size(); ++i) {
        const core::SessionResult &a = decoded.units[i].result;
        const core::SessionResult &b = original.units[i].result;
        EXPECT_EQ(decoded.units[i].replicate,
                  original.units[i].replicate);
        EXPECT_EQ(decoded.units[i].traceBytes,
                  original.units[i].traceBytes);
        EXPECT_EQ(a.point.name, b.point.name);
        EXPECT_EQ(a.point.pmdMillivolts, b.point.pmdMillivolts);
        EXPECT_EQ(a.runs, b.runs);
        EXPECT_EQ(a.fluence, b.fluence);
        EXPECT_EQ(a.duration, b.duration);
        EXPECT_EQ(a.events.total(), b.events.total());
        EXPECT_EQ(a.edac[0].corrected, b.edac[0].corrected);
        EXPECT_EQ(a.upsetsDetected, b.upsetsDetected);
        EXPECT_EQ(a.avgPowerWatts, b.avgPowerWatts);
        ASSERT_EQ(a.perWorkload.size(), b.perWorkload.size());
        EXPECT_EQ(a.perWorkload[0].name, b.perWorkload[0].name);
        EXPECT_EQ(a.perWorkload[0].upsetsDetected,
                  b.perWorkload[0].upsetsDetected);
    }
}

TEST(ServiceCodec, EveryShardResultTruncationFailsCleanly)
{
    const std::string payload =
        encodeShardResult(sampleShardResult());
    for (size_t len = 0; len < payload.size(); ++len) {
        service::ShardResultMsg decoded;
        std::string error;
        EXPECT_FALSE(decodeShardResult(payload.substr(0, len),
                                       decoded, error))
            << "prefix " << len << " decoded successfully";
        EXPECT_FALSE(error.empty()) << "prefix " << len;
    }
}

TEST(ServiceCodec, EverySubmitTruncationFailsCleanly)
{
    service::SubmitMsg submit;
    submit.params = sampleParams();
    submit.tracePath = "out/campaign.xtrace";
    const std::string payload = encodeSubmit(submit);
    for (size_t len = 0; len < payload.size(); ++len) {
        service::SubmitMsg decoded;
        std::string error;
        EXPECT_FALSE(
            decodeSubmit(payload.substr(0, len), decoded, error))
            << "prefix " << len;
    }
    service::SubmitMsg decoded;
    std::string error;
    ASSERT_TRUE(decodeSubmit(payload, decoded, error)) << error;
    EXPECT_EQ(decoded.params.seed, submit.params.seed);
    EXPECT_EQ(decoded.params.replicates, submit.params.replicates);
    EXPECT_EQ(decoded.params.fastpath, submit.params.fastpath);
    EXPECT_EQ(decoded.tracePath, submit.tracePath);
}

TEST(ServiceCodec, EveryShardAssignBitFlipNeverCrashes)
{
    service::ShardAssignMsg assign;
    assign.campaignId = 5;
    assign.params = sampleParams();
    assign.session = 1;
    assign.replicateBegin = 0;
    assign.replicateEnd = 2;
    const std::string payload = encodeShardAssign(assign);
    for (size_t bit = 0; bit < payload.size() * 8; ++bit) {
        std::string flipped = payload;
        flipped[bit / 8] =
            static_cast<char>(flipped[bit / 8] ^ (1 << (bit % 8)));
        service::ShardAssignMsg decoded;
        std::string error;
        // Either outcome is fine -- a flipped coordinate can still be
        // a well-formed message -- the requirement is no crash and a
        // nonempty error whenever the decode refuses.
        if (!decodeShardAssign(flipped, decoded, error))
            EXPECT_FALSE(error.empty()) << "bit " << bit;
    }
}

TEST(ServiceCodec, RejectsDegenerateCoordinates)
{
    service::SubmitMsg zero_reps;
    zero_reps.params = sampleParams();
    zero_reps.params.replicates = 0;
    service::SubmitMsg decoded;
    std::string error;
    EXPECT_FALSE(
        decodeSubmit(encodeSubmit(zero_reps), decoded, error));
    EXPECT_FALSE(error.empty());

    service::ShardAssignMsg empty_range;
    empty_range.params = sampleParams();
    empty_range.replicateBegin = 3;
    empty_range.replicateEnd = 3;
    service::ShardAssignMsg assign_out;
    error.clear();
    EXPECT_FALSE(decodeShardAssign(encodeShardAssign(empty_range),
                                   assign_out, error));
    EXPECT_FALSE(error.empty());
}

TEST(ServiceCodec, GarbageNeverDecodes)
{
    // 256 deterministic pseudo-random payloads; none may crash and
    // none may parse as a ShardResult (the odds of a valid count
    // structure arising by chance are nil).
    uint64_t state = 0x9e3779b97f4a7c15ULL;
    for (int trial = 0; trial < 256; ++trial) {
        std::string junk;
        const size_t size = (state >> 17) % 512;
        for (size_t i = 0; i < size; ++i) {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            junk.push_back(static_cast<char>(state & 0xff));
        }
        service::ShardResultMsg decoded;
        std::string error;
        EXPECT_FALSE(decodeShardResult(junk, decoded, error));
        state += 0x9e3779b97f4a7c15ULL;
    }
}

// --------------------------------------------------------------------
// Telemetry shard transfer
// --------------------------------------------------------------------

TEST(ServiceCodec, MetricShardRoundTripsExactly)
{
    telemetry::MetricShard shard;
    shard.counters[0] = 101;
    shard.counters[telemetry::numCounters - 1] = 7;
    // Populate every distribution, including out-of-range samples so
    // the underflow/overflow transfer is exercised.
    for (size_t d = 0; d < telemetry::numDists; ++d) {
        Histogram &hist = shard.dists[d];
        hist.add(hist.low(), 3);
        hist.add(hist.low() - 1e9, 2);  // underflow
        hist.add(hist.high() + 1e9, 1); // overflow
    }
    shard.phaseSeconds[0] = 1.25;
    shard.unitsExecuted = 9;

    const std::string blob = service::encodeMetricShard(shard);
    telemetry::MetricShard decoded;
    std::string error;
    ASSERT_TRUE(service::decodeMetricShard(blob, decoded, error))
        << error;
    EXPECT_EQ(decoded.counters, shard.counters);
    EXPECT_EQ(decoded.phaseSeconds, shard.phaseSeconds);
    EXPECT_EQ(decoded.unitsExecuted, shard.unitsExecuted);
    ASSERT_EQ(decoded.dists.size(), shard.dists.size());
    for (size_t d = 0; d < shard.dists.size(); ++d) {
        const Histogram &a = decoded.dists[d];
        const Histogram &b = shard.dists[d];
        ASSERT_EQ(a.bins(), b.bins());
        EXPECT_EQ(a.underflow(), b.underflow());
        EXPECT_EQ(a.overflow(), b.overflow());
        EXPECT_EQ(a.total(), b.total());
        for (size_t bin = 0; bin < a.bins(); ++bin)
            EXPECT_EQ(a.binCount(bin), b.binCount(bin));
    }
}

TEST(ServiceCodec, EveryMetricShardTruncationFailsCleanly)
{
    telemetry::MetricShard shard;
    shard.counters[1] = 42;
    shard.dists[0].add(shard.dists[0].low(), 5);
    const std::string blob = service::encodeMetricShard(shard);
    for (size_t len = 0; len < blob.size(); ++len) {
        telemetry::MetricShard decoded;
        std::string error;
        EXPECT_FALSE(
            service::decodeMetricShard(blob.substr(0, len), decoded,
                                       error))
            << "prefix " << len;
    }
}

} // namespace
} // namespace xser
