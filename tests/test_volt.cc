/**
 * @file
 * Tests for the voltage module: domains, the cliff timing model, safe
 * Vmin characterization (Fig. 4 shape), the calibrated power model
 * (Fig. 9 values), and the DVFS ladder.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "volt/dvfs_governor.hh"
#include "volt/micro_virus.hh"
#include "volt/operating_point.hh"
#include "volt/power_model.hh"
#include "volt/process_variation.hh"
#include "volt/timing_model.hh"
#include "volt/vmin_characterizer.hh"
#include "volt/voltage_domain.hh"

namespace xser::volt {
namespace {

/* -------------------------- OperatingPoint ----------------------- */

TEST(OperatingPoint, Table3Values)
{
    const OperatingPoint nominal = nominalPoint();
    EXPECT_EQ(nominal.pmdMillivolts, 980.0);
    EXPECT_EQ(nominal.socMillivolts, 950.0);
    EXPECT_EQ(nominal.frequencyHz, 2.4e9);

    const OperatingPoint safe = safePoint();
    EXPECT_EQ(safe.pmdMillivolts, 930.0);
    EXPECT_EQ(safe.socMillivolts, 925.0);

    const OperatingPoint vmin = vminPoint();
    EXPECT_EQ(vmin.pmdMillivolts, 920.0);
    EXPECT_EQ(vmin.socMillivolts, 920.0);

    const OperatingPoint low = vmin900Point();
    EXPECT_EQ(low.pmdMillivolts, 790.0);
    EXPECT_EQ(low.socMillivolts, 950.0);  // SoC stays nominal
    EXPECT_EQ(low.frequencyHz, 0.9e9);

    EXPECT_EQ(paperOperatingPoints().size(), 4u);
    EXPECT_EQ(points24GHz().size(), 3u);
}

TEST(OperatingPoint, Labels)
{
    EXPECT_EQ(vminPoint().label(), "920mV @ 2.4GHz");
    EXPECT_EQ(vmin900Point().label(), "790mV @ 900MHz");
}

/* -------------------------- VoltageDomain ------------------------ */

TEST(VoltageDomain, StartsAtNominal)
{
    VoltageDomain pmd = makePmdDomain();
    EXPECT_EQ(pmd.millivolts(), 980.0);
    EXPECT_DOUBLE_EQ(pmd.volts(), 0.980);
    VoltageDomain soc = makeSocDomain();
    EXPECT_EQ(soc.millivolts(), 950.0);
}

TEST(VoltageDomain, StepDownOnGrid)
{
    VoltageDomain pmd = makePmdDomain();
    pmd.stepDown(2);
    EXPECT_EQ(pmd.millivolts(), 970.0);
    pmd.setMillivolts(920.0);
    EXPECT_EQ(pmd.guardbandMillivolts(), 60.0);
    pmd.resetToNominal();
    EXPECT_EQ(pmd.millivolts(), 980.0);
}

TEST(VoltageDomainDeath, RejectsOffGridAndOutOfRange)
{
    VoltageDomain pmd = makePmdDomain();
    EXPECT_EXIT(pmd.setMillivolts(977.0), ::testing::ExitedWithCode(1),
                "off the");
    EXPECT_EXIT(pmd.setMillivolts(985.0), ::testing::ExitedWithCode(1),
                "outside");
    EXPECT_EXIT(pmd.setMillivolts(100.0), ::testing::ExitedWithCode(1),
                "outside");
}

/* --------------------------- TimingModel ------------------------- */

TEST(TimingModel, DelayDecreasesWithVoltage)
{
    TimingModel model;
    double previous = model.pathDelayUnits(0.5);
    for (double v = 0.55; v <= 1.1; v += 0.05) {
        const double delay = model.pathDelayUnits(v);
        EXPECT_LT(delay, previous);
        previous = delay;
    }
}

TEST(TimingModel, CliffMechanismsPerFrequency)
{
    TimingModel model;
    // At 2.4 GHz the logic-timing cliff dominates (~908 mV).
    EXPECT_EQ(model.mechanismAt(2.4e9), CliffMechanism::LogicTiming);
    EXPECT_NEAR(model.cliffVolts(2.4e9), 0.908, 1e-6);
    // At 900 MHz the alpha-power timing cliff is far below the SRAM
    // floor, so the floor dominates (Fig. 4 right).
    EXPECT_EQ(model.mechanismAt(0.9e9), CliffMechanism::SramStability);
    EXPECT_NEAR(model.cliffVolts(0.9e9), 0.7845, 1e-6);
    EXPECT_LT(model.logicCliffVolts(0.9e9), 0.60);
}

TEST(TimingModel, LogicCliffInvertsDelay)
{
    TimingModel model;
    // At the anchor frequency the cliff is the anchor itself.
    EXPECT_NEAR(model.logicCliffVolts(2.4e9), 0.908, 1e-4);
    // Higher frequency -> higher cliff.
    EXPECT_GT(model.logicCliffVolts(3.0e9), 0.908);
}

TEST(TimingModel, FailureProbabilityMonotoneInVoltage)
{
    TimingModel model;
    double previous = 1.0;
    for (double mv = 890; mv <= 935; mv += 5) {
        const double pfail =
            model.runFailureProbability(mv / 1000.0, 2.4e9);
        EXPECT_LE(pfail, previous + 1e-12);
        previous = pfail;
    }
    // Safe at 920 mV, hopeless at 900 mV (Fig. 4 left).
    EXPECT_LT(model.runFailureProbability(0.920, 2.4e9), 0.01);
    EXPECT_GT(model.runFailureProbability(0.900, 2.4e9), 0.95);
    // And the 900 MHz window (Fig. 4 right).
    EXPECT_LT(model.runFailureProbability(0.790, 0.9e9), 0.01);
    EXPECT_GT(model.runFailureProbability(0.780, 0.9e9), 0.95);
}

TEST(TimingModel, NormalCdfSanity)
{
    EXPECT_NEAR(normalCdf(0.0), 0.5, 1e-12);
    EXPECT_NEAR(normalCdf(1.96), 0.975, 1e-3);
    EXPECT_NEAR(normalCdf(-1.96), 0.025, 1e-3);
}

TEST(TimingModel, TemperatureInsensitiveUpTo50C)
{
    // Section 3.4: the safe Vmin was unaffected up to 50 C.
    for (double temp : {25.0, 40.0, 45.0, 50.0}) {
        TimingModelConfig config;
        config.temperatureCelsius = temp;
        TimingModel model(config);
        EXPECT_NEAR(model.cliffVolts(2.4e9), 0.908, 1e-9) << temp;
    }
    // Above the limit the cliff erodes upward.
    TimingModelConfig hot;
    hot.temperatureCelsius = 70.0;
    EXPECT_GT(TimingModel(hot).cliffVolts(2.4e9), 0.918);
}

/* ------------------------- ProcessVariation ---------------------- */

TEST(ProcessVariation, DeterministicPerChipSeed)
{
    ProcessVariation a(8, 0.002, 42);
    ProcessVariation b(8, 0.002, 42);
    ProcessVariation c(8, 0.002, 43);
    for (unsigned core = 0; core < 8; ++core)
        EXPECT_EQ(a.coreOffsetVolts(core), b.coreOffsetVolts(core));
    bool different = false;
    for (unsigned core = 0; core < 8; ++core)
        different |= a.coreOffsetVolts(core) != c.coreOffsetVolts(core);
    EXPECT_TRUE(different);
}

TEST(ProcessVariation, WorstOffsetIsMax)
{
    ProcessVariation variation(8, 0.002, 7);
    double max_offset = -1e9;
    for (unsigned core = 0; core < 8; ++core)
        max_offset = std::max(max_offset,
                              variation.coreOffsetVolts(core));
    EXPECT_DOUBLE_EQ(variation.worstOffsetVolts(), max_offset);
    EXPECT_DOUBLE_EQ(
        variation.coreOffsetVolts(variation.weakestCore()), max_offset);
}

/* ------------------------ VminCharacterizer ---------------------- */

TEST(VminCharacterizer, SweepFindsPaperWindow24GHz)
{
    TimingModel model;
    ProcessVariation variation(8, 0.0015, 0x86e2ULL);
    VminCharacterizer characterizer(model, variation);
    VminSweepConfig config;
    config.frequencyHz = 2.4e9;
    config.startMillivolts = 980.0;
    config.stopMillivolts = 890.0;
    config.runsPerStep = 400;
    const VminSweepResult result = characterizer.sweep(config);

    // The safe Vmin must land in the 915..930 band (paper: 920) and
    // complete failure must be reached by 895-900 mV.
    EXPECT_GE(result.safeVminMillivolts, 915.0);
    EXPECT_LE(result.safeVminMillivolts, 930.0);
    EXPECT_GT(result.completeFailMillivolts, 0.0);
    EXPECT_LE(result.completeFailMillivolts, 905.0);

    // pfail is (statistically) monotone: first step with pfail = 1
    // never recovers.
    bool complete = false;
    for (const auto &step : result.steps) {
        if (complete) {
            EXPECT_GT(step.pfail, 0.9);
        }
        if (step.pfail >= 1.0)
            complete = true;
    }
}

TEST(VminCharacterizer, SweepFindsPaperWindow900MHz)
{
    TimingModel model;
    ProcessVariation variation(8, 0.0015, 0x86e2ULL);
    VminCharacterizer characterizer(model, variation);
    VminSweepConfig config;
    config.frequencyHz = 0.9e9;
    config.startMillivolts = 820.0;
    config.stopMillivolts = 760.0;
    config.runsPerStep = 400;
    const VminSweepResult result = characterizer.sweep(config);
    EXPECT_GE(result.safeVminMillivolts, 785.0);
    EXPECT_LE(result.safeVminMillivolts, 800.0);
    // The 900 MHz window is narrower than the 2.4 GHz one (Fig. 4).
    EXPECT_LE(result.safeVminMillivolts - result.completeFailMillivolts,
              20.0);
}

TEST(VminCharacterizer, AnalyticMatchesMonteCarlo)
{
    TimingModel model;
    ProcessVariation variation(8, 0.0015, 3);
    VminCharacterizer characterizer(model, variation);
    VminSweepConfig config;
    config.runsPerStep = 4000;
    config.startMillivolts = 915.0;
    config.stopMillivolts = 905.0;
    const VminSweepResult result = characterizer.sweep(config);
    for (const auto &step : result.steps) {
        const double analytic =
            characterizer.pfailAnalytic(step.millivolts, 2.4e9);
        EXPECT_NEAR(step.pfail, analytic,
                    5.0 * std::sqrt(analytic * (1 - analytic) /
                                    config.runsPerStep) + 0.01);
    }
}

/* ---------------------------- MicroVirus ------------------------- */

TEST(MicroVirus, StandardSetIsOrderedByNoise)
{
    const auto &viruses = standardViruses();
    ASSERT_GE(viruses.size(), 3u);
    for (size_t i = 1; i < viruses.size(); ++i)
        EXPECT_GE(viruses[i].noiseScale, viruses[i - 1].noiseScale);
    EXPECT_GE(viruses.back().noiseScale, 1.2);
    EXPECT_LE(viruses.front().noiseScale, 0.9);
}

TEST(MicroVirus, WorkloadVariationNegligibleForSafeVmin)
{
    // The paper's Section 4.1 observation (via [49]): the safe Vmin is
    // essentially workload-independent. Across the full virus set the
    // measured Vmin must move by at most two 5 mV regulator steps.
    TimingModel model;
    ProcessVariation variation(8, 0.0015, 0x86e2ULL);
    VminCharacterizer characterizer(model, variation);
    VminSweepConfig config;
    config.startMillivolts = 980.0;
    config.stopMillivolts = 890.0;
    config.runsPerStep = 400;
    const VirusCharacterization result =
        characterizeWithViruses(characterizer, config);
    ASSERT_EQ(result.perVirus.size(), standardViruses().size());
    EXPECT_LE(result.vminSpreadMillivolts, 10.0);
    // The combined safe Vmin is set by the strictest virus...
    for (const auto &entry : result.perVirus)
        EXPECT_GE(result.safeVminMillivolts,
                  entry.sweep.safeVminMillivolts);
    // ...and still lands in the paper's 920 +/- one step band.
    EXPECT_GE(result.safeVminMillivolts, 915.0);
    EXPECT_LE(result.safeVminMillivolts, 930.0);
}

TEST(MicroVirus, HigherNoiseRaisesVmin)
{
    TimingModel model;
    ProcessVariation variation(8, 0.0015, 1);
    VminCharacterizer characterizer(model, variation);
    VminSweepConfig quiet;
    quiet.runsPerStep = 2000;
    quiet.noiseScale = 0.5;
    VminSweepConfig loud = quiet;
    loud.noiseScale = 2.5;
    const double vmin_quiet =
        characterizer.sweep(quiet).safeVminMillivolts;
    const double vmin_loud =
        characterizer.sweep(loud).safeVminMillivolts;
    EXPECT_GE(vmin_loud, vmin_quiet);
}

/* ---------------------------- PowerModel ------------------------- */

TEST(PowerModel, ReproducesPaperMeasurements)
{
    // Fig. 9: 20.40 / 18.63 / 18.15 / 10.59 W. The analytic fit is
    // documented to land within ~1.5 %.
    PowerModel model;
    EXPECT_NEAR(model.totalWatts(nominalPoint()), 20.40, 0.10);
    EXPECT_NEAR(model.totalWatts(safePoint()), 18.63, 0.30);
    EXPECT_NEAR(model.totalWatts(vminPoint()), 18.15, 0.30);
    EXPECT_NEAR(model.totalWatts(vmin900Point()), 10.59, 0.20);
}

TEST(PowerModel, SavingsMatchFig10)
{
    PowerModel model;
    const OperatingPoint nominal = nominalPoint();
    // Paper: 8.7% @ 930 mV, 11.0% @ 920 mV, 48.1% @ 790 mV/900 MHz.
    EXPECT_NEAR(model.savingsPercent(safePoint(), nominal), 8.7, 1.5);
    EXPECT_NEAR(model.savingsPercent(vminPoint(), nominal), 11.0, 1.5);
    EXPECT_NEAR(model.savingsPercent(vmin900Point(), nominal), 48.1,
                2.0);
}

TEST(PowerModel, VoltageQuadraticDynamic)
{
    PowerModel model;
    OperatingPoint point = nominalPoint();
    const PowerBreakdown base = model.breakdown(point);
    point.pmdMillivolts = 490.0;  // half voltage
    const PowerBreakdown half = model.breakdown(point);
    EXPECT_NEAR(half.pmdDynamic, base.pmdDynamic / 4.0,
                0.01 * base.pmdDynamic);
}

TEST(PowerModel, ActivityScalesPmdOnly)
{
    PowerModel model;
    const PowerBreakdown calm = model.breakdown(nominalPoint(), 0.5);
    const PowerBreakdown busy = model.breakdown(nominalPoint(), 1.0);
    EXPECT_NEAR(busy.pmdDynamic, 2.0 * calm.pmdDynamic, 1e-9);
    EXPECT_DOUBLE_EQ(busy.socDynamic, calm.socDynamic);
    EXPECT_DOUBLE_EQ(busy.pmdLeakage, calm.pmdLeakage);
}

TEST(PowerModel, BreakdownSumsToTotal)
{
    PowerModel model;
    const PowerBreakdown breakdown = model.breakdown(vminPoint());
    EXPECT_NEAR(breakdown.total(), model.totalWatts(vminPoint()), 1e-12);
}

TEST(PowerModel, LeakageGrowsWithTemperature)
{
    PowerModelConfig hot_config;
    hot_config.temperatureCelsius = 85.0;
    PowerModel hot(hot_config);
    PowerModel nominal;
    const PowerBreakdown cool = nominal.breakdown(nominalPoint());
    const PowerBreakdown warm = hot.breakdown(nominalPoint());
    EXPECT_GT(warm.pmdLeakage, 2.0 * cool.pmdLeakage);
    EXPECT_DOUBLE_EQ(warm.pmdDynamic, cool.pmdDynamic);
}

/* --------------------------- DvfsGovernor ------------------------ */

TEST(DvfsGovernor, LadderShape)
{
    DvfsGovernor governor;
    EXPECT_EQ(governor.ladder().size(), 8u);
    EXPECT_EQ(governor.ladder().front().frequencyHz, 300e6);
    EXPECT_EQ(governor.ladder().back().frequencyHz, 2.4e9);
    EXPECT_EQ(governor.ladder().back().pmdMillivolts, 980.0);
    // Monotone non-decreasing voltage with frequency.
    for (size_t i = 1; i < governor.ladder().size(); ++i)
        EXPECT_GE(governor.ladder()[i].pmdMillivolts,
                  governor.ladder()[i - 1].pmdMillivolts);
}

TEST(DvfsGovernor, StateSnapping)
{
    DvfsGovernor governor;
    EXPECT_EQ(governor.stateFor(0.9e9).frequencyHz, 0.9e9);
    EXPECT_EQ(governor.stateFor(1.0e9).frequencyHz, 0.9e9);  // nearest
    const OperatingPoint point = governor.operatingPointFor(2.4e9);
    EXPECT_EQ(point.pmdMillivolts, 980.0);
    EXPECT_EQ(point.socMillivolts, 950.0);
}

TEST(DvfsGovernor, DisabledByDefault)
{
    // Section 3.1: DVFS is disabled during the study.
    DvfsGovernor governor;
    EXPECT_FALSE(governor.enabled());
    governor.setEnabled(true);
    EXPECT_TRUE(governor.enabled());
}

TEST(DvfsGovernorDeath, RejectsOutOfRangeFrequency)
{
    DvfsGovernor governor;
    EXPECT_EXIT(governor.stateFor(100e6), ::testing::ExitedWithCode(1),
                "outside");
}

} // namespace
} // namespace xser::volt
