/**
 * @file
 * Tests for the platform assembly: operating-point application, time
 * accounting, front-end touch processes, footprint clamping, and the
 * Table 1 spec dump.
 */

#include <gtest/gtest.h>

#include "cpu/core.hh"
#include "cpu/xgene2_platform.hh"
#include "volt/operating_point.hh"

namespace xser::cpu {
namespace {

TEST(Platform, DefaultsMatchTable1)
{
    XGene2Platform platform;
    EXPECT_EQ(platform.numCores(), 8u);
    EXPECT_EQ(platform.pmdDomain().millivolts(), 980.0);
    EXPECT_EQ(platform.socDomain().millivolts(), 950.0);
    EXPECT_EQ(platform.clock().frequency(), 2.4e9);
    const std::string spec = platform.specTable();
    for (const char *needle :
         {"Armv8", "256 KB", "8 MB", "SECDED", "Parity", "28 nm"}) {
        EXPECT_NE(spec.find(needle), std::string::npos) << needle;
    }
}

TEST(Platform, OperatingPointRoundTrip)
{
    XGene2Platform platform;
    platform.applyOperatingPoint(volt::vmin900Point());
    EXPECT_EQ(platform.pmdDomain().millivolts(), 790.0);
    EXPECT_EQ(platform.socDomain().millivolts(), 950.0);
    EXPECT_EQ(platform.clock().frequency(), 0.9e9);
    const volt::OperatingPoint point = platform.operatingPoint();
    EXPECT_EQ(point.pmdMillivolts, 790.0);
    EXPECT_EQ(point.label(), "790mV @ 900MHz");
}

TEST(Platform, AdvanceForCyclesDividesAcrossCores)
{
    XGene2Platform platform;
    const Tick before = platform.clock().now();
    const Tick elapsed = platform.advanceForCycles(8000);
    // 8000 cycles over 8 cores = 1000 cycles of wall time.
    EXPECT_EQ(elapsed, 1000 * platform.clock().period());
    EXPECT_EQ(platform.clock().now() - before, elapsed);
}

TEST(Platform, PowerTracksOperatingPoint)
{
    XGene2Platform platform;
    const double nominal = platform.currentPowerWatts();
    platform.applyOperatingPoint(volt::vminPoint());
    EXPECT_LT(platform.currentPowerWatts(), nominal);
    platform.applyOperatingPoint(volt::vmin900Point());
    EXPECT_LT(platform.currentPowerWatts(), 0.6 * nominal);
}

TEST(Platform, DistinctChipSeedsGiveDistinctVariation)
{
    PlatformConfig a;
    a.chipSeed = 1;
    PlatformConfig b;
    b.chipSeed = 2;
    XGene2Platform chip_a(a);
    XGene2Platform chip_b(b);
    bool different = false;
    for (unsigned core = 0; core < 8; ++core) {
        different |= chip_a.variation().coreOffsetVolts(core) !=
                     chip_b.variation().coreOffsetVolts(core);
    }
    EXPECT_TRUE(different);
}

TEST(Core, TouchesStayWithinFootprint)
{
    XGene2Platform platform;
    platform.setWorkloadFootprint(64, 32);
    // Drive a lot of front-end activity, then flip a bit far outside
    // the footprint: it must never be repaired by touches.
    auto &l1i = platform.memory().l1i(0);
    const size_t outside = l1i.words() - 1;
    l1i.array().flipBit(outside, 3);
    for (int quantum = 0; quantum < 200; ++quantum)
        platform.driveFrontEnd(512);
    EXPECT_TRUE(l1i.array().isCorrupted(outside));
}

TEST(Core, TouchRateProducesActivity)
{
    XGene2Platform platform;
    platform.setWorkloadFootprint(512, 256);
    // Flip bits inside every core's footprint; sustained touching must
    // eventually repair or replace them (either way: decorrupt).
    for (unsigned core = 0; core < 8; ++core)
        platform.memory().l1i(core).array().flipBit(17, 5);
    for (int quantum = 0; quantum < 400; ++quantum)
        platform.driveFrontEnd(512);
    unsigned still_corrupted = 0;
    for (unsigned core = 0; core < 8; ++core) {
        still_corrupted +=
            platform.memory().l1i(core).array().isCorrupted(17) ? 1 : 0;
    }
    EXPECT_LT(still_corrupted, 3u);  // ~51k touches over 512 words
}

TEST(Core, FootprintClampedToArraySize)
{
    XGene2Platform platform;
    // Requesting absurd footprints must not crash or touch out of
    // range (touch indices are clamped internally).
    platform.setWorkloadFootprint(1u << 30, 1u << 30);
    platform.driveFrontEnd(4096);
    SUCCEED();
}

TEST(Core, ReplacementsDestroyFlipsSilently)
{
    XGene2Platform platform;
    auto &edac = platform.edac();
    CoreConfig config;
    config.id = 0;
    config.ifetchTouchesPerAccess = 1.0;
    config.ifetchReplaceFraction = 1.0;  // replacements only
    config.tlbTouchesPerAccess = 0.0;
    Core core(config, &platform.memory(), Rng(5));
    core.setFootprint(64, 1);
    platform.memory().l1i(0).array().flipBit(7, 1);
    for (int quantum = 0; quantum < 100; ++quantum)
        core.driveQuantum(64);
    // The flip is gone (overwritten) but no corrected event was ever
    // reported -- the silent-destruction channel.
    EXPECT_FALSE(platform.memory().l1i(0).array().isCorrupted(7));
    EXPECT_EQ(edac.tally(mem::CacheLevel::L1).corrected, 0u);
}

} // namespace
} // namespace xser::cpu
