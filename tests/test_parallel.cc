/**
 * @file
 * Determinism tests for the parallel campaign engine: results must be
 * bit-identical for any worker count (1, 2, 8), with or without
 * replicates, and the merged replicate summary must not depend on how
 * units were scheduled across the pool.
 */

#include <gtest/gtest.h>

#include "core/beam_campaign.hh"
#include "core/fit_calculator.hh"
#include "core/parallel_campaign.hh"

namespace xser::core {
namespace {

/** Fast-but-real campaign: the paper's four sessions, tiny targets. */
CampaignConfig
tinyCampaign(uint64_t seed = 0x5e5510ULL)
{
    CampaignConfig config = BeamCampaign::paperCampaign(0.02, seed);
    for (auto &session : config.sessions) {
        session.maxErrorEvents = 6;
        session.maxFluence = 2e9;
        session.warmupRounds = 2;
    }
    return config;
}

void
expectSessionsBitIdentical(const SessionResult &a, const SessionResult &b)
{
    EXPECT_EQ(a.runs, b.runs);
    EXPECT_EQ(a.upsetsDetected, b.upsetsDetected);
    EXPECT_EQ(a.rawUpsetEvents, b.rawUpsetEvents);
    EXPECT_EQ(a.events.sdcSilent, b.events.sdcSilent);
    EXPECT_EQ(a.events.sdcNotified, b.events.sdcNotified);
    EXPECT_EQ(a.events.appCrash, b.events.appCrash);
    EXPECT_EQ(a.events.sysCrash, b.events.sysCrash);
    // Bit-exact, not approximately equal: the same unit must replay
    // the same arithmetic regardless of which thread ran it.
    EXPECT_EQ(a.fluence, b.fluence);
    EXPECT_EQ(a.duration, b.duration);
    EXPECT_EQ(a.avgPowerWatts, b.avgPowerWatts);
    const FitBreakdown fit_a = FitCalculator::breakdown(a);
    const FitBreakdown fit_b = FitCalculator::breakdown(b);
    EXPECT_EQ(fit_a.total.fit, fit_b.total.fit);
    EXPECT_EQ(fit_a.sdc.fit, fit_b.sdc.fit);
    ASSERT_EQ(a.perWorkload.size(), b.perWorkload.size());
    for (size_t w = 0; w < a.perWorkload.size(); ++w) {
        EXPECT_EQ(a.perWorkload[w].name, b.perWorkload[w].name);
        EXPECT_EQ(a.perWorkload[w].runs, b.perWorkload[w].runs);
        EXPECT_EQ(a.perWorkload[w].upsetsDetected,
                  b.perWorkload[w].upsetsDetected);
        EXPECT_EQ(a.perWorkload[w].fluence, b.perWorkload[w].fluence);
    }
}

void
expectCampaignsBitIdentical(const CampaignResult &a,
                            const CampaignResult &b)
{
    ASSERT_EQ(a.sessions.size(), b.sessions.size());
    for (size_t s = 0; s < a.sessions.size(); ++s) {
        SCOPED_TRACE("session " + std::to_string(s));
        expectSessionsBitIdentical(a.sessions[s], b.sessions[s]);
    }
}

void
expectAggregatesBitIdentical(const SessionAggregate &a,
                             const SessionAggregate &b)
{
    EXPECT_EQ(a.replicates, b.replicates);
    EXPECT_EQ(a.runs, b.runs);
    EXPECT_EQ(a.fluence, b.fluence);
    EXPECT_EQ(a.events.sdcSilent, b.events.sdcSilent);
    EXPECT_EQ(a.events.sdcNotified, b.events.sdcNotified);
    EXPECT_EQ(a.events.appCrash, b.events.appCrash);
    EXPECT_EQ(a.events.sysCrash, b.events.sysCrash);
    EXPECT_EQ(a.upsetsDetected, b.upsetsDetected);
    EXPECT_EQ(a.rawUpsetEvents, b.rawUpsetEvents);
    EXPECT_EQ(a.fitTotal.count(), b.fitTotal.count());
    EXPECT_EQ(a.fitTotal.mean(), b.fitTotal.mean());
    EXPECT_EQ(a.fitTotal.variance(), b.fitTotal.variance());
    EXPECT_EQ(a.fitSdc.mean(), b.fitSdc.mean());
    EXPECT_EQ(a.upsetsPerMinute.mean(), b.upsetsPerMinute.mean());
}

/**
 * Shared fixture: execute the reference sweep once (1 worker, 2
 * replicates) and compare everything else against it.
 */
class ParallelDeterminism : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        ParallelRunConfig run;
        run.jobs = 1;
        run.replicates = 2;
        ParallelCampaignRunner runner(tinyCampaign(), run);
        reference_ = new ReplicatedCampaignResult(runner.executeAll());
    }

    static void
    TearDownTestSuite()
    {
        delete reference_;
        reference_ = nullptr;
    }

    static ReplicatedCampaignResult *reference_;
};

ReplicatedCampaignResult *ParallelDeterminism::reference_ = nullptr;

TEST_F(ParallelDeterminism, SingleWorkerMatchesSequentialBeamCampaign)
{
    // Replicate 0 of the parallel engine is the sequential campaign.
    BeamCampaign sequential(tinyCampaign());
    const CampaignResult expected = sequential.execute();
    expectCampaignsBitIdentical(expected, reference_->replicates[0]);
}

TEST_F(ParallelDeterminism, FastPathOffBitIdentical)
{
    // The event-driven fast path (skip-ahead beam sampling, clean-word
    // read short-circuit, residency-filtered snoops) is default-on; the
    // golden gate for its equivalence contract is that disabling all of
    // it reproduces the reference sweep bit-for-bit.
    CampaignConfig config = tinyCampaign();
    setFastPath(config, false);
    ParallelRunConfig run;
    run.jobs = 1;
    run.replicates = 2;
    ParallelCampaignRunner runner(config, run);
    const ReplicatedCampaignResult sweep = runner.executeAll();
    ASSERT_EQ(sweep.replicates.size(), 2u);
    for (size_t r = 0; r < sweep.replicates.size(); ++r)
        expectCampaignsBitIdentical(reference_->replicates[r],
                                    sweep.replicates[r]);
    for (size_t s = 0; s < sweep.sessions.size(); ++s)
        expectAggregatesBitIdentical(reference_->sessions[s],
                                     sweep.sessions[s]);
}

TEST_F(ParallelDeterminism, TwoWorkersBitIdentical)
{
    ParallelRunConfig run;
    run.jobs = 2;
    run.replicates = 2;
    ParallelCampaignRunner runner(tinyCampaign(), run);
    const ReplicatedCampaignResult sweep = runner.executeAll();
    ASSERT_EQ(sweep.replicates.size(), 2u);
    for (size_t r = 0; r < sweep.replicates.size(); ++r)
        expectCampaignsBitIdentical(reference_->replicates[r],
                                    sweep.replicates[r]);
    for (size_t s = 0; s < sweep.sessions.size(); ++s)
        expectAggregatesBitIdentical(reference_->sessions[s],
                                     sweep.sessions[s]);
}

TEST_F(ParallelDeterminism, EightWorkersBitIdentical)
{
    // 8 workers over 8 units: every unit gets its own thread, so any
    // scheduling-order dependence would surface here.
    ParallelRunConfig run;
    run.jobs = 8;
    run.replicates = 2;
    ParallelCampaignRunner runner(tinyCampaign(), run);
    const ReplicatedCampaignResult sweep = runner.executeAll();
    for (size_t r = 0; r < sweep.replicates.size(); ++r)
        expectCampaignsBitIdentical(reference_->replicates[r],
                                    sweep.replicates[r]);
    for (size_t s = 0; s < sweep.sessions.size(); ++s)
        expectAggregatesBitIdentical(reference_->sessions[s],
                                     sweep.sessions[s]);
}

TEST_F(ParallelDeterminism, MergedSummaryIndependentOfWorkerCount)
{
    // The merged FIT summaries -- the numbers a sweep exists to
    // produce -- must match across worker counts, not just raw tallies.
    ParallelRunConfig run;
    run.jobs = 5;  // deliberately not a divisor of the unit count
    run.replicates = 2;
    ParallelCampaignRunner runner(tinyCampaign(), run);
    const ReplicatedCampaignResult sweep = runner.executeAll();
    for (size_t s = 0; s < sweep.sessions.size(); ++s) {
        const FitBreakdown expected = reference_->sessions[s].pooledFit();
        const FitBreakdown actual = sweep.sessions[s].pooledFit();
        EXPECT_EQ(expected.total.fit, actual.total.fit);
        EXPECT_EQ(expected.sdc.fit, actual.sdc.fit);
        EXPECT_EQ(expected.total.ci.lower, actual.total.ci.lower);
        EXPECT_EQ(expected.total.ci.upper, actual.total.ci.upper);
    }
}

TEST_F(ParallelDeterminism, DistinctReplicatesDiffer)
{
    // Replicates are independent Monte-Carlo repeats, not copies.
    const ReplicatedCampaignResult &sweep = *reference_;
    bool any_difference = false;
    for (size_t s = 0; s < sweep.replicates[0].sessions.size(); ++s) {
        if (sweep.replicates[0].sessions[s].rawUpsetEvents !=
            sweep.replicates[1].sessions[s].rawUpsetEvents)
            any_difference = true;
    }
    EXPECT_TRUE(any_difference);
}

TEST(ParallelReplicates, AggregatePoolsEveryReplicate)
{
    ParallelRunConfig run;
    run.jobs = 4;
    run.replicates = 3;
    CampaignConfig config = tinyCampaign();
    config.sessions.resize(2);  // 6 units
    ParallelCampaignRunner runner(config, run);
    const ReplicatedCampaignResult sweep = runner.executeAll();
    ASSERT_EQ(sweep.replicates.size(), 3u);
    ASSERT_EQ(sweep.sessions.size(), 2u);
    for (size_t s = 0; s < sweep.sessions.size(); ++s) {
        uint64_t runs = 0;
        double fluence = 0.0;
        EventCounts events;
        for (const auto &replicate : sweep.replicates) {
            runs += replicate.sessions[s].runs;
            fluence += replicate.sessions[s].fluence;
            events.merge(replicate.sessions[s].events);
        }
        EXPECT_EQ(sweep.sessions[s].replicates, 3u);
        EXPECT_EQ(sweep.sessions[s].runs, runs);
        EXPECT_EQ(sweep.sessions[s].fluence, fluence);
        EXPECT_EQ(sweep.sessions[s].events.total(), events.total());
        EXPECT_EQ(sweep.sessions[s].fitTotal.count(), 3u);
    }
}

TEST(ParallelRunner, ExecuteReturnsReplicateZeroOnly)
{
    ParallelRunConfig run;
    run.jobs = 3;
    run.replicates = 1;
    CampaignConfig config = tinyCampaign();
    config.sessions.resize(2);
    ParallelCampaignRunner runner(config, run);
    const CampaignResult result = runner.execute();
    ASSERT_EQ(result.sessions.size(), 2u);
    BeamCampaign sequential(config);
    expectCampaignsBitIdentical(sequential.execute(), result);
}

TEST(SessionAggregateMerge, ChanMergeMatchesSequentialCounts)
{
    // merge() must pool counts exactly and keep the Summary moments
    // consistent with the observation count.
    SessionResult a;
    a.point = volt::vminPoint();
    a.runs = 10;
    a.fluence = 1e9;
    a.events.sdcSilent = 3;
    a.upsetsDetected = 40;
    SessionResult b = a;
    b.runs = 20;
    b.fluence = 3e9;
    b.events.sdcSilent = 5;
    b.upsetsDetected = 70;

    SessionAggregate sequential;
    sequential.add(a);
    sequential.add(b);

    SessionAggregate left;
    left.add(a);
    SessionAggregate right;
    right.add(b);
    left.merge(right);

    EXPECT_EQ(left.replicates, sequential.replicates);
    EXPECT_EQ(left.runs, sequential.runs);
    EXPECT_EQ(left.fluence, sequential.fluence);
    EXPECT_EQ(left.events.sdcSilent, sequential.events.sdcSilent);
    EXPECT_EQ(left.upsetsDetected, sequential.upsetsDetected);
    EXPECT_EQ(left.fitTotal.count(), sequential.fitTotal.count());
    EXPECT_DOUBLE_EQ(left.fitTotal.mean(), sequential.fitTotal.mean());
    EXPECT_NEAR(left.fitTotal.variance(),
                sequential.fitTotal.variance(),
                1e-9 * (1.0 + sequential.fitTotal.variance()));
}

} // namespace
} // namespace xser::core
