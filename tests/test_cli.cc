/**
 * @file
 * Tests for the CLI argument parser and the CSV exporters.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "cli/args.hh"
#include "core/report_export.hh"
#include "volt/operating_point.hh"

namespace xser {
namespace {

cli::Args
parse(std::initializer_list<const char *> tokens)
{
    std::vector<const char *> argv = {"xser"};
    argv.insert(argv.end(), tokens.begin(), tokens.end());
    return cli::Args::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Args, CommandAndOptions)
{
    const cli::Args args =
        parse({"session", "--pmd", "920", "--csv", "out.csv"});
    EXPECT_EQ(args.command(), "session");
    EXPECT_TRUE(args.has("pmd"));
    EXPECT_TRUE(args.has("csv"));
    EXPECT_FALSE(args.has("freq"));
    EXPECT_EQ(args.get("csv", ""), "out.csv");
    EXPECT_DOUBLE_EQ(args.getDouble("pmd", 0.0), 920.0);
    EXPECT_EQ(args.keys().size(), 2u);
}

TEST(Args, DefaultsWhenAbsent)
{
    const cli::Args args = parse({"campaign"});
    EXPECT_DOUBLE_EQ(args.getDouble("scale", 0.22), 0.22);
    EXPECT_EQ(args.getUint("seed", 7), 7u);
    EXPECT_EQ(args.get("csv", "fallback"), "fallback");
}

TEST(Args, BareFlagBeforeAnotherOption)
{
    const cli::Args args = parse({"session", "--verbose", "--pmd",
                                  "930"});
    EXPECT_TRUE(args.has("verbose"));
    EXPECT_EQ(args.get("verbose", "x"), "");
    EXPECT_DOUBLE_EQ(args.getDouble("pmd", 0.0), 930.0);
}

TEST(Args, ScientificAndHexNumbers)
{
    const cli::Args args =
        parse({"session", "--fluence", "1.5e10", "--seed", "0xff"});
    EXPECT_DOUBLE_EQ(args.getDouble("fluence", 0.0), 1.5e10);
    EXPECT_EQ(args.getUint("seed", 0), 255u);
}

TEST(ArgsDeath, RejectsGarbageNumbers)
{
    const cli::Args args = parse({"session", "--pmd", "abc"});
    EXPECT_EXIT(args.getDouble("pmd", 0.0),
                ::testing::ExitedWithCode(1), "expects a number");
    const cli::Args args2 = parse({"session", "--seed", "12x"});
    EXPECT_EXIT(args2.getUint("seed", 0),
                ::testing::ExitedWithCode(1), "expects an integer");
}

TEST(ArgsDeath, RejectsExtraPositional)
{
    EXPECT_EXIT(parse({"session", "bogus"}),
                ::testing::ExitedWithCode(1), "unexpected positional");
}

/* ------------------------------ CSV ------------------------------ */

core::SessionResult
sampleSession()
{
    core::SessionResult session;
    session.point = volt::vminPoint();
    session.beamFluxPerSecond = 1.5e6;
    session.fluence = 4.08e10;
    session.runs = 100;
    session.events.sdcSilent = 123;
    session.events.sdcNotified = 7;
    session.events.appCrash = 3;
    session.events.sysCrash = 8;
    session.upsetsDetected = 506;
    session.totalSramBits = 80000000;
    session.avgPowerWatts = 18.15;
    core::WorkloadSessionStats stats;
    stats.name = "CG";
    stats.runs = 20;
    stats.fluence = 8e9;
    stats.upsetsDetected = 101;
    session.perWorkload.push_back(stats);
    return session;
}

/** Count lines and verify the column count is uniform. */
void
checkCsvShape(const std::string &csv, size_t expected_rows)
{
    std::istringstream stream(csv);
    std::string line;
    size_t rows = 0;
    size_t columns = 0;
    while (std::getline(stream, line)) {
        const size_t commas =
            static_cast<size_t>(std::count(line.begin(), line.end(),
                                           ','));
        if (rows == 0)
            columns = commas;
        else
            EXPECT_EQ(commas, columns) << line;
        ++rows;
    }
    EXPECT_EQ(rows, expected_rows + 1);  // + header
}

TEST(Csv, SessionsExport)
{
    const std::string csv = core::sessionsToCsv({sampleSession()});
    checkCsvShape(csv, 1);
    EXPECT_NE(csv.find("pmd_mv"), std::string::npos);
    EXPECT_NE(csv.find("920"), std::string::npos);
    EXPECT_NE(csv.find("506"), std::string::npos);
}

TEST(Csv, WorkloadSlicesExport)
{
    const std::string csv =
        core::workloadSlicesToCsv({sampleSession(), sampleSession()});
    checkCsvShape(csv, 2);
    EXPECT_NE(csv.find("CG"), std::string::npos);
}

TEST(Csv, EdacLevelsExport)
{
    const std::string csv = core::edacLevelsToCsv({sampleSession()});
    checkCsvShape(csv, 4);  // one row per cache level
    EXPECT_NE(csv.find("L3 Cache"), std::string::npos);
}

TEST(Csv, SweepExport)
{
    volt::VminSweepResult sweep;
    sweep.steps.push_back(volt::VminStep{920.0, 100, 0, 0.0});
    sweep.steps.push_back(volt::VminStep{915.0, 100, 7, 0.07});
    const std::string csv = core::sweepToCsv(sweep);
    checkCsvShape(csv, 2);
    EXPECT_NE(csv.find("915"), std::string::npos);
}

TEST(Csv, WriteFileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/xser_csv_test.csv";
    core::writeFile(path, "a,b\n1,2\n");
    std::FILE *file = std::fopen(path.c_str(), "r");
    ASSERT_NE(file, nullptr);
    char buffer[32] = {};
    const size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, file);
    std::fclose(file);
    EXPECT_EQ(std::string(buffer, read), "a,b\n1,2\n");
}

} // namespace
} // namespace xser
