/**
 * @file
 * Tests for the simulation substrate: RNG streams and distributions,
 * the simulated clock, and the discrete-event queue.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/sim_clock.hh"

namespace xser {
namespace {

/* ------------------------------ Rng ------------------------------ */

TEST(Rng, SameSeedSameSequence)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.nextU64(), b.nextU64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.nextU64() == b.nextU64() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, ForkIsDeterministicAndDecorrelated)
{
    Rng parent1(77);
    Rng parent2(77);
    Rng child1 = parent1.fork("beam");
    Rng child2 = parent2.fork("beam");
    Rng other = parent1.fork("logic");
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(child1.nextU64(), child2.nextU64());
    // A differently tagged fork must produce a different stream.
    Rng child3 = parent2.fork("beam");
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += other.nextU64() == child3.nextU64() ? 1 : 0;
    EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double value = rng.nextDouble();
        ASSERT_GE(value, 0.0);
        ASSERT_LT(value, 1.0);
    }
}

TEST(Rng, BoundedRespectsBound)
{
    Rng rng(6);
    std::set<uint64_t> seen;
    for (int i = 0; i < 10000; ++i) {
        const uint64_t value = rng.nextBounded(17);
        ASSERT_LT(value, 17u);
        seen.insert(value);
    }
    // All 17 residues should appear in 10k draws.
    EXPECT_EQ(seen.size(), 17u);
}

TEST(Rng, BernoulliEdgeCases)
{
    Rng rng(7);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.nextBool(0.0));
        EXPECT_TRUE(rng.nextBool(1.0));
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(8);
    const int n = 200000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double value = rng.nextGaussian();
        sum += value;
        sum_sq += value * value;
    }
    const double mean = sum / n;
    const double variance = sum_sq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.01);
    EXPECT_NEAR(variance, 1.0, 0.02);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(9);
    const int n = 200000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.nextExponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.005);
}

/** Poisson mean/variance across the small-mean and large-mean paths. */
class PoissonSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(PoissonSweep, MeanAndVarianceMatch)
{
    const double mean = GetParam();
    Rng rng(static_cast<uint64_t>(mean * 1000) + 3);
    const int n = 100000;
    double sum = 0.0;
    double sum_sq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double value =
            static_cast<double>(rng.nextPoisson(mean));
        sum += value;
        sum_sq += value * value;
    }
    const double sample_mean = sum / n;
    const double sample_var = sum_sq / n - sample_mean * sample_mean;
    const double tolerance = 5.0 * std::sqrt(mean / n) + 0.01;
    EXPECT_NEAR(sample_mean, mean, tolerance);
    // Poisson variance equals the mean.
    EXPECT_NEAR(sample_var, mean, 0.1 * mean + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonSweep,
                         ::testing::Values(0.01, 0.1, 0.5, 1.0, 3.0,
                                           10.0, 29.0, 35.0, 100.0,
                                           1000.0));

TEST(Rng, PoissonZeroMeanIsZero)
{
    Rng rng(11);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(rng.nextPoisson(0.0), 0u);
}

TEST(HashString, StableAndDistinct)
{
    EXPECT_EQ(hashString("beam"), hashString("beam"));
    EXPECT_NE(hashString("beam"), hashString("logic"));
    EXPECT_NE(hashString(""), hashString("a"));
}

/* -------------------------- stream splitter ---------------------- */

TEST(StreamSplitter, PureFunctionOfCoordinate)
{
    EXPECT_EQ(deriveStreamSeed(0x5e5510ULL, 2, 7),
              deriveStreamSeed(0x5e5510ULL, 2, 7));
    // Each coordinate axis matters independently.
    EXPECT_NE(deriveStreamSeed(0x5e5510ULL, 2, 7),
              deriveStreamSeed(0x5e5510ULL, 3, 7));
    EXPECT_NE(deriveStreamSeed(0x5e5510ULL, 2, 7),
              deriveStreamSeed(0x5e5510ULL, 2, 8));
    EXPECT_NE(deriveStreamSeed(0x5e5510ULL, 2, 7),
              deriveStreamSeed(0x5e5511ULL, 2, 7));
    // (session, replicate) = (1, 0) and (0, 1) must not alias -- a
    // plain XOR fold would collide whole stream families here.
    EXPECT_NE(deriveStreamSeed(0x5e5510ULL, 1, 0),
              deriveStreamSeed(0x5e5510ULL, 0, 1));
}

TEST(StreamSplitter, NoCollisionsOver100kStreams)
{
    // 10^5 coordinate tuples -> 10^5 distinct seeds, and distinct
    // two-draw stream prefixes. A birthday collision in 64 bits over
    // 1e5 samples has probability ~3e-10, so any hit is a bug.
    std::set<uint64_t> seeds;
    std::set<std::pair<uint64_t, uint64_t>> prefixes;
    for (uint64_t session = 0; session < 10; ++session) {
        for (uint64_t replicate = 0; replicate < 10000; ++replicate) {
            const uint64_t seed =
                deriveStreamSeed(0x5e5510ULL, session, replicate);
            seeds.insert(seed);
            Rng rng(seed);
            const uint64_t first = rng.nextU64();
            prefixes.insert({first, rng.nextU64()});
        }
    }
    EXPECT_EQ(seeds.size(), 100000u);
    EXPECT_EQ(prefixes.size(), 100000u);
}

TEST(StreamSplitter, GoldenValuesStableAcrossPlatforms)
{
    // Pinned outputs: the derivation is pure 64-bit integer mixing, so
    // these must hold on every platform and compiler. A change here
    // silently reshuffles every replicate of every campaign.
    EXPECT_EQ(deriveStreamSeed(0, 0, 0), 0x8dbeb87049046b82ULL);
    EXPECT_EQ(deriveStreamSeed(0x5e5510ULL, 0, 0),
              0x2963c55a5e1a5bcbULL);
    EXPECT_EQ(deriveStreamSeed(0x5e5510ULL, 1, 0),
              0x0365f3b62bbc04a3ULL);
    EXPECT_EQ(deriveStreamSeed(0x5e5510ULL, 0, 1),
              0x209c1e2a402af63cULL);
    EXPECT_EQ(deriveStreamSeed(0x5e5510ULL, 3, 2),
              0x36757585b73c9ef1ULL);
    EXPECT_EQ(deriveStreamSeed(0xffffffffffffffffULL, 0xffffffffULL,
                               0xffffffffULL),
              0xc117a6b44fe9e075ULL);
}

/* ----------------------------- Logging --------------------------- */

TEST(Logging, MsgComposesStreamables)
{
    EXPECT_EQ(msg("v=", 42, " x", 1.5), "v=42 x1.5");
    EXPECT_EQ(msg(), "");
}

TEST(Logging, LevelGatesEmission)
{
    // emit() below the level is a no-op; above passes. We cannot
    // capture stderr portably here, but the level accessors and the
    // no-crash property are the contract.
    Logger &logger = Logger::global();
    const LogLevel saved = logger.level();
    logger.setLevel(LogLevel::Quiet);
    warn("suppressed");
    inform("suppressed");
    debugLog("suppressed");
    logger.setLevel(saved);
    SUCCEED();
}

/* ---------------------------- SimClock --------------------------- */

TEST(SimClock, PeriodMatchesFrequency)
{
    SimClock clock(2.4e9);
    // 2.4 GHz -> 416.67 ps, stored as integer ticks.
    EXPECT_EQ(clock.period(), 417u);
    SimClock slow(0.9e9);
    EXPECT_EQ(slow.period(), 1111u);
}

TEST(SimClock, AdvanceCycles)
{
    SimClock clock(1e9);  // 1 ns period
    clock.advanceCycles(1000);
    EXPECT_EQ(clock.now(), 1000u * 1000u);
    EXPECT_EQ(clock.cyclesElapsed(), 1000u);
}

TEST(SimClock, FrequencyChangeKeepsTime)
{
    SimClock clock(2.4e9);
    clock.advanceCycles(100);
    const Tick before = clock.now();
    clock.setFrequency(0.9e9);
    EXPECT_EQ(clock.now(), before);
    EXPECT_EQ(clock.frequency(), 0.9e9);
}

TEST(SimClock, TickConversions)
{
    EXPECT_EQ(ticks::fromSeconds(1.0), ticks::perSecond);
    EXPECT_DOUBLE_EQ(ticks::toSeconds(ticks::perSecond), 1.0);
    EXPECT_DOUBLE_EQ(ticks::toMinutes(60 * ticks::perSecond), 1.0);
}

/* --------------------------- EventQueue -------------------------- */

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(30, [&](Tick) { order.push_back(3); });
    queue.schedule(10, [&](Tick) { order.push_back(1); });
    queue.schedule(20, [&](Tick) { order.push_back(2); });
    EXPECT_EQ(queue.runUntil(100), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTickFiresInInsertionOrder)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        queue.schedule(5, [&order, i](Tick) { order.push_back(i); });
    queue.runUntil(5);
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, RunUntilRespectsLimit)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(10, [&](Tick) { ++fired; });
    queue.schedule(20, [&](Tick) { ++fired; });
    EXPECT_EQ(queue.runUntil(15), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(queue.size(), 1u);
    EXPECT_EQ(queue.nextTick(), 20u);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue queue;
    int fired = 0;
    const EventId id = queue.schedule(10, [&](Tick) { ++fired; });
    EXPECT_TRUE(queue.cancel(id));
    EXPECT_FALSE(queue.cancel(id));  // second cancel is a no-op
    queue.runUntil(100);
    EXPECT_EQ(fired, 0);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, CallbackReceivesScheduledTick)
{
    EventQueue queue;
    Tick seen = 0;
    queue.schedule(42, [&](Tick when) { seen = when; });
    queue.runUntil(100);
    EXPECT_EQ(seen, 42u);
}

TEST(EventQueue, EventsScheduledDuringRunDoNotFireInSamePass)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(10, [&](Tick) {
        ++fired;
        queue.schedule(11, [&](Tick) { ++fired; });
    });
    // runUntil picks up the newly scheduled event because it is within
    // the limit.
    queue.runUntil(15);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, ClearDropsEverything)
{
    EventQueue queue;
    queue.schedule(10, [](Tick) {});
    queue.schedule(20, [](Tick) {});
    queue.clear();
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.runUntil(100), 0u);
}

} // namespace
} // namespace xser
