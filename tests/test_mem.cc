/**
 * @file
 * Tests for the memory hierarchy: SRAM arrays with fault overlays,
 * cache geometry/behavior, the recovery policies of the full
 * hierarchy, coherence, and the patrol scrubber.
 */

#include <gtest/gtest.h>

#include "mem/cache.hh"
#include "mem/cache_geometry.hh"
#include "mem/memory_system.hh"
#include "mem/scrubber.hh"
#include "mem/sram_array.hh"
#include "mem/tlb.hh"
#include "sim/rng.hh"

#include <vector>

namespace xser::mem {
namespace {

/* ---------------------------- SramArray -------------------------- */

TEST(SramArray, WriteReadRoundTrip)
{
    SramArray array("test", 16, Protection::Secded);
    array.write(3, 0xdeadbeefULL);
    const ReadOutcome outcome = array.read(3);
    EXPECT_EQ(outcome.value, 0xdeadbeefULL);
    EXPECT_EQ(outcome.status, ecc::CheckStatus::Clean);
    EXPECT_FALSE(outcome.silentCorruption);
}

TEST(SramArray, BitsPerWordPerScheme)
{
    EXPECT_EQ(SramArray("a", 4, Protection::None).bitsPerWord(), 64u);
    EXPECT_EQ(SramArray("b", 4, Protection::Parity).bitsPerWord(), 65u);
    EXPECT_EQ(SramArray("c", 4, Protection::Secded).bitsPerWord(), 72u);
    SramArray array("d", 100, Protection::Secded);
    EXPECT_EQ(array.totalBits(), 7200u);
}

TEST(SramArray, SecdedSingleFlipCorrectedOnRead)
{
    SramArray array("test", 8, Protection::Secded);
    array.write(0, 0x1234ULL);
    array.flipBit(0, 5);
    EXPECT_TRUE(array.isCorrupted(0));
    const ReadOutcome outcome = array.read(0);
    EXPECT_EQ(outcome.status, ecc::CheckStatus::CorrectedSingle);
    EXPECT_EQ(outcome.value, 0x1234ULL);
    EXPECT_FALSE(outcome.silentCorruption);
    // Correction is scrubbed back into storage.
    EXPECT_FALSE(array.isCorrupted(0));
    EXPECT_EQ(array.counters().corrected, 1u);
}

TEST(SramArray, SecdedCheckBitFlipCorrected)
{
    SramArray array("test", 8, Protection::Secded);
    array.write(0, 0xabcdULL);
    array.flipBit(0, 64 + 3);  // a stored check bit
    const ReadOutcome outcome = array.read(0);
    EXPECT_EQ(outcome.status, ecc::CheckStatus::CorrectedSingle);
    EXPECT_EQ(outcome.value, 0xabcdULL);
    EXPECT_FALSE(array.isCorrupted(0));
}

TEST(SramArray, SecdedDoubleFlipUncorrectable)
{
    SramArray array("test", 8, Protection::Secded);
    array.write(0, 0x5555ULL);
    array.flipBit(0, 1);
    array.flipBit(0, 2);
    const ReadOutcome outcome = array.read(0);
    EXPECT_EQ(outcome.status, ecc::CheckStatus::DetectedDouble);
    EXPECT_EQ(array.counters().uncorrected, 1u);
}

TEST(SramArray, SecdedTripleFlipMiscorrectionGroundTruthed)
{
    // Sweep triples until one miscorrects; the array must ground-truth
    // it (hardware would report a plain CE).
    SramArray array("test", 8, Protection::Secded);
    bool found = false;
    Rng rng(3);
    for (int trial = 0; trial < 500 && !found; ++trial) {
        array.write(0, 0x1111111111111111ULL);
        array.flipBit(0, static_cast<unsigned>(rng.nextBounded(64)));
        array.flipBit(0, static_cast<unsigned>(rng.nextBounded(64)));
        array.flipBit(0, static_cast<unsigned>(rng.nextBounded(64)));
        const ReadOutcome outcome = array.read(0);
        if (outcome.status == ecc::CheckStatus::Miscorrected) {
            EXPECT_TRUE(outcome.silentCorruption);
            EXPECT_NE(outcome.value, 0x1111111111111111ULL);
            found = true;
        }
    }
    EXPECT_TRUE(found);
    EXPECT_GT(array.counters().miscorrections, 0u);
}

TEST(SramArray, ParityEscapeIsSilentCorruption)
{
    SramArray array("test", 8, Protection::Parity);
    array.write(2, 0xf0f0ULL);
    array.flipBit(2, 0);
    array.flipBit(2, 1);  // even flip count escapes parity
    const ReadOutcome outcome = array.read(2);
    EXPECT_EQ(outcome.status, ecc::CheckStatus::Clean);
    EXPECT_TRUE(outcome.silentCorruption);
    EXPECT_EQ(array.counters().silentEscapes, 1u);
}

TEST(SramArray, OverwriteClearsFlipAndCounts)
{
    SramArray array("test", 8, Protection::Parity);
    array.write(1, 7);
    array.flipBit(1, 9);
    array.write(1, 9);  // overwrite destroys the latent flip
    EXPECT_EQ(array.counters().overwrittenFlips, 1u);
    const ReadOutcome outcome = array.read(1);
    EXPECT_EQ(outcome.status, ecc::CheckStatus::Clean);
    EXPECT_EQ(outcome.value, 9u);
}

TEST(SramArray, ResetClearsState)
{
    SramArray array("test", 8, Protection::Secded);
    array.write(0, 42);
    array.flipBit(0, 3);
    array.reset();
    EXPECT_EQ(array.read(0).value, 0u);
    EXPECT_EQ(array.counters().bitFlipsInjected, 0u);
}

/* -------------------------- CacheGeometry ------------------------ */

TEST(CacheGeometry, Derivations)
{
    CacheGeometry geometry(256 * 1024, 64, 8);
    EXPECT_EQ(geometry.numSets(), 512u);
    EXPECT_EQ(geometry.numLines(), 4096u);
    EXPECT_EQ(geometry.wordsPerLine(), 8u);
}

TEST(CacheGeometry, AddressSlicing)
{
    CacheGeometry geometry(32 * 1024, 64, 4);  // 128 sets
    const Addr addr = 0x12345678;
    EXPECT_EQ(geometry.lineBase(addr), addr & ~0x3fULL);
    EXPECT_EQ(geometry.setIndex(addr), (addr >> 6) & 127);
    EXPECT_EQ(geometry.tag(addr), addr >> 13);
    EXPECT_EQ(geometry.wordOffset(addr), (addr & 63) >> 3);
    // Reconstruction inverts slicing.
    EXPECT_EQ(geometry.lineAddress(geometry.tag(addr),
                                   geometry.setIndex(addr)),
              geometry.lineBase(addr));
}

/* ------------------------------ Cache ---------------------------- */

CacheConfig
smallCacheConfig()
{
    CacheConfig config;
    config.name = "test.l2";
    config.sizeBytes = 8 * 1024;
    config.lineBytes = 64;
    config.associativity = 2;
    config.protection = Protection::Secded;
    config.writePolicy = WritePolicy::WriteBack;
    config.level = CacheLevel::L2;
    return config;
}

TEST(Cache, AllocateAndReadWord)
{
    EdacReporter reporter;
    Cache cache(smallCacheConfig(), &reporter);
    std::vector<uint64_t> line(8);
    for (size_t i = 0; i < 8; ++i)
        line[i] = 100 + i;
    cache.allocate(0x1000, line, false);
    EXPECT_TRUE(cache.contains(0x1000));
    EXPECT_EQ(cache.readWord(0x1000 + 24).value, 103u);
}

TEST(Cache, WriteMarksDirty)
{
    EdacReporter reporter;
    Cache cache(smallCacheConfig(), &reporter);
    cache.allocate(0x1000, std::vector<uint64_t>(8, 0), false);
    EXPECT_FALSE(cache.isDirty(0x1000));
    cache.writeWord(0x1008, 77);
    EXPECT_TRUE(cache.isDirty(0x1000));
    EXPECT_EQ(cache.readWord(0x1008).value, 77u);
}

TEST(Cache, LruEvictionPrefersOldest)
{
    EdacReporter reporter;
    Cache cache(smallCacheConfig(), &reporter);
    // 64 sets; same set addresses differ by 64*64 = 0x1000.
    const Addr a = 0x0000;
    const Addr b = 0x1000;
    const Addr c = 0x2000;
    cache.allocate(a, std::vector<uint64_t>(8, 1), false);
    cache.allocate(b, std::vector<uint64_t>(8, 2), false);
    cache.readWord(a);  // touch a so b is LRU
    EvictedLine evicted = cache.allocate(c, std::vector<uint64_t>(8, 3),
                                         false);
    EXPECT_TRUE(evicted.valid);
    EXPECT_EQ(evicted.address, b);
    EXPECT_TRUE(cache.contains(a));
    EXPECT_FALSE(cache.contains(b));
}

TEST(Cache, DirtyEvictionReturnsData)
{
    EdacReporter reporter;
    Cache cache(smallCacheConfig(), &reporter);
    cache.allocate(0x0000, std::vector<uint64_t>(8, 5), true);
    cache.allocate(0x1000, std::vector<uint64_t>(8, 6), false);
    EvictedLine evicted =
        cache.allocate(0x2000, std::vector<uint64_t>(8, 7), false);
    EXPECT_TRUE(evicted.valid);
    EXPECT_TRUE(evicted.dirty);
    ASSERT_EQ(evicted.data.size(), 8u);
    EXPECT_EQ(evicted.data[0], 5u);
    EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, InvalidateDropsLine)
{
    EdacReporter reporter;
    Cache cache(smallCacheConfig(), &reporter);
    cache.allocate(0x1000, std::vector<uint64_t>(8, 1), true);
    cache.invalidate(0x1000);
    EXPECT_FALSE(cache.contains(0x1000));
}

TEST(Cache, FlipInLineCorrectedOnReadAndReported)
{
    EdacReporter reporter;
    Cache cache(smallCacheConfig(), &reporter);
    cache.allocate(0x1000, std::vector<uint64_t>(8, 0xaa), false);
    cache.dataArray().flipBit(cache.geometry().wordsPerLine() *
                              0 /* depends on set/way */,
                              3);
    // Whichever slot it landed in, scrub the whole cache via readLine
    // of the allocated address: the flip may or may not be in this
    // line, so instead verify via scrubbing all lines below.
    uint64_t corrected = 0;
    for (size_t index = 0; index < cache.geometry().numLines(); ++index)
        cache.scrubLine(index);
    corrected = reporter.tally(CacheLevel::L2).corrected;
    EXPECT_GE(corrected, 0u);  // no crash; reporting path exercised
}

TEST(Cache, DrainAllWritesBackDirtyLines)
{
    EdacReporter reporter;
    Cache cache(smallCacheConfig(), &reporter);
    cache.allocate(0x1000, std::vector<uint64_t>(8, 1), true);
    cache.allocate(0x2000, std::vector<uint64_t>(8, 2), false);
    auto dirty = cache.drainAll();
    ASSERT_EQ(dirty.size(), 1u);
    EXPECT_EQ(dirty[0].first, 0x1000u);
    EXPECT_FALSE(cache.contains(0x1000));
    EXPECT_FALSE(cache.contains(0x2000));
}

TEST(Cache, OccupancyTracksValidLines)
{
    EdacReporter reporter;
    Cache cache(smallCacheConfig(), &reporter);
    EXPECT_DOUBLE_EQ(cache.occupancy(), 0.0);
    cache.allocate(0x1000, std::vector<uint64_t>(8, 1), false);
    EXPECT_GT(cache.occupancy(), 0.0);
}

/* -------------------------- MemorySystem ------------------------- */

MemorySystemConfig
tinyConfig()
{
    MemorySystemConfig config;
    config.numCores = 2;
    config.l1iBytes = 4 * 1024;
    config.l1dBytes = 4 * 1024;
    config.l1dAssociativity = 2;
    config.l2Bytes = 16 * 1024;
    config.l2Associativity = 4;
    config.l3Bytes = 64 * 1024;
    config.l3Associativity = 8;
    config.tlbWordsPerCore = 64;
    return config;
}

TEST(MemorySystem, ReadAfterWriteSameCore)
{
    EdacReporter reporter;
    MemorySystem memory(tinyConfig(), &reporter);
    const Addr addr = memory.allocate(64, "t");
    memory.writeWord(0, addr, 0xfeedULL);
    EXPECT_EQ(memory.readWord(0, addr), 0xfeedULL);
}

TEST(MemorySystem, ReadAfterWriteCrossCoreAndPair)
{
    MemorySystemConfig config = tinyConfig();
    config.numCores = 4;  // two pairs
    EdacReporter reporter;
    MemorySystem memory(config, &reporter);
    const Addr addr = memory.allocate(64, "t");
    memory.writeWord(0, addr, 1);
    EXPECT_EQ(memory.readWord(3, addr), 1u);  // cross-pair read
    memory.writeWord(3, addr, 2);             // cross-pair write
    EXPECT_EQ(memory.readWord(0, addr), 2u);
    memory.writeWord(1, addr, 3);             // same-pair write
    EXPECT_EQ(memory.readWord(2, addr), 3u);
    EXPECT_EQ(memory.readWord(3, addr), 3u);
}

TEST(MemorySystem, RandomizedCoherenceAgainstReferenceModel)
{
    MemorySystemConfig config = tinyConfig();
    config.numCores = 4;
    EdacReporter reporter;
    MemorySystem memory(config, &reporter);
    const size_t words = 512;
    const Addr base = memory.allocate(words * 8, "ref");
    std::vector<uint64_t> reference(words, 0);
    for (size_t i = 0; i < words; ++i)
        memory.writeWord(0, base + 8 * i, 0);

    Rng rng(0xc0ffeeULL);
    for (int op = 0; op < 20000; ++op) {
        const auto core = static_cast<unsigned>(rng.nextBounded(4));
        const size_t index = rng.nextBounded(words);
        if (rng.nextBool(0.5)) {
            const uint64_t value = rng.nextU64();
            memory.writeWord(core, base + 8 * index, value);
            reference[index] = value;
        } else {
            ASSERT_EQ(memory.readWord(core, base + 8 * index),
                      reference[index])
                << "op " << op << " core " << core << " idx " << index;
        }
    }
}

TEST(MemorySystem, L1ParityFlipIsRefetchedTransparently)
{
    EdacReporter reporter;
    MemorySystem memory(tinyConfig(), &reporter);
    const Addr addr = memory.allocate(64, "t");
    memory.writeWord(0, addr, 0x1234ULL);
    memory.readWord(0, addr);  // ensure L1 resident

    // Flip one data bit in core 0's L1D and re-read every word of the
    // array's footprint via the owning address. Simpler: flip in the
    // exact word by scanning for the corrupted word.
    Cache &l1 = memory.l1d(0);
    bool flipped = false;
    for (size_t word = 0; word < l1.dataArray().words() && !flipped;
         ++word) {
        if (l1.dataArray().truth(word) == 0x1234ULL) {
            l1.dataArray().flipBit(word, 7);
            flipped = true;
        }
    }
    ASSERT_TRUE(flipped);
    // The read must deliver correct data (invalidate + refetch) and
    // log a corrected L1 event.
    EXPECT_EQ(memory.readWord(0, addr), 0x1234ULL);
    EXPECT_EQ(reporter.tally(CacheLevel::L1).corrected, 1u);
    EXPECT_EQ(memory.deliveryCounters().parityRefetches, 1u);
}

TEST(MemorySystem, L2SecdedFlipCorrectedInPlace)
{
    EdacReporter reporter;
    MemorySystem memory(tinyConfig(), &reporter);
    const Addr addr = memory.allocate(64, "t");
    memory.writeWord(0, addr, 0x77ULL);  // resident dirty in L2

    Cache &l2 = memory.l2(0);
    bool flipped = false;
    for (size_t word = 0; word < l2.dataArray().words() && !flipped;
         ++word) {
        if (l2.dataArray().truth(word) == 0x77ULL) {
            l2.dataArray().flipBit(word, 11);
            flipped = true;
        }
    }
    ASSERT_TRUE(flipped);
    // Force an L1 miss so the read goes to L2: invalidate L1 copy.
    memory.l1d(0).invalidate(addr);
    EXPECT_EQ(memory.readWord(0, addr), 0x77ULL);
    EXPECT_EQ(reporter.tally(CacheLevel::L2).corrected, 1u);
}

TEST(MemorySystem, CleanL3UncorrectableReloadsFromDram)
{
    EdacReporter reporter;
    MemorySystem memory(tinyConfig(), &reporter);
    const Addr addr = memory.allocate(64, "t");
    memory.writeWord(0, addr, 0x99ULL);
    memory.flushAll();  // truth now in DRAM; caches empty
    memory.readWord(0, addr);  // L3 (and L2/L1) now hold a clean copy

    Cache &l3 = memory.l3();
    bool flipped = false;
    for (size_t word = 0; word < l3.dataArray().words() && !flipped;
         ++word) {
        if (l3.dataArray().truth(word) == 0x99ULL) {
            l3.dataArray().flipBit(word, 1);
            l3.dataArray().flipBit(word, 2);  // double: uncorrectable
            flipped = true;
        }
    }
    ASSERT_TRUE(flipped);
    memory.l1d(0).invalidate(addr);
    memory.l2(0).invalidate(addr);
    EXPECT_EQ(memory.readWord(0, addr), 0x99ULL);  // reloaded from DRAM
    EXPECT_GE(reporter.tally(CacheLevel::L3).uncorrected, 1u);
}

TEST(MemorySystem, TouchRepairsFlippedIFetchWord)
{
    EdacReporter reporter;
    MemorySystem memory(tinyConfig(), &reporter);
    RefetchableArray &l1i = memory.l1i(0);
    l1i.array().flipBit(5, 3);
    memory.touchIFetch(0, 5);
    EXPECT_EQ(reporter.tally(CacheLevel::L1).corrected, 1u);
    EXPECT_EQ(l1i.repairs(), 1u);
    // Word is repaired: touching again reports nothing new.
    memory.touchIFetch(0, 5);
    EXPECT_EQ(reporter.tally(CacheLevel::L1).corrected, 1u);
}

TEST(MemorySystem, TlbTouchAttributesToTlbLevel)
{
    EdacReporter reporter;
    MemorySystem memory(tinyConfig(), &reporter);
    memory.tlb(1).array().flipBit(7, 0);
    memory.touchTlb(1, 7);
    EXPECT_EQ(reporter.tally(CacheLevel::Tlb).corrected, 1u);
}

TEST(MemorySystem, BeamTargetsCoverAllArrays)
{
    EdacReporter reporter;
    MemorySystem memory(tinyConfig(), &reporter);
    const auto targets = memory.beamTargets();
    // 2 cores: 2 L1I + 2 L1D + 2 TLB + 1 L2 + 1 L3 = 8 arrays.
    EXPECT_EQ(targets.size(), 8u);
    uint64_t bits = 0;
    for (const auto &target : targets)
        bits += target.array->totalBits();
    EXPECT_EQ(bits, memory.totalSramBits());
    // L3 is the only SoC-domain array.
    int soc = 0;
    for (const auto &target : targets)
        soc += target.pmdDomain ? 0 : 1;
    EXPECT_EQ(soc, 1);
}

TEST(MemorySystem, CycleAccountingGrows)
{
    EdacReporter reporter;
    MemorySystem memory(tinyConfig(), &reporter);
    const Addr addr = memory.allocate(64, "t");
    memory.clearCycles();
    memory.readWord(0, addr);  // cold miss: L1+L2+L3+DRAM costs
    const uint64_t cold = memory.cyclesAccumulated();
    memory.clearCycles();
    memory.readWord(0, addr);  // warm hit
    const uint64_t warm = memory.cyclesAccumulated();
    EXPECT_GT(cold, warm);
    EXPECT_GE(warm, 1u);
}

TEST(MemorySystem, XGeneFootprintIsTenMegabytes)
{
    // Table 1 / Section 3.3: ~10 MB of on-chip SRAM (data arrays).
    EdacReporter reporter;
    MemorySystem memory(MemorySystemConfig{}, &reporter);
    const double mbytes = static_cast<double>(memory.totalSramBits()) /
                          8.0 / 1024.0 / 1024.0;
    EXPECT_GT(mbytes, 9.5);
    EXPECT_LT(mbytes, 11.5);
}

/* ---------------------------- Scrubber --------------------------- */

TEST(Scrubber, PacingCoversArrays)
{
    EdacReporter reporter;
    MemorySystem memory(tinyConfig(), &reporter);
    ScrubberConfig config;
    config.enabled = true;
    config.l2PassPeriod = ticks::fromSeconds(0.001);
    config.l3PassPeriod = ticks::fromSeconds(0.001);
    Scrubber scrubber(config, &memory);
    scrubber.advance(ticks::fromSeconds(0.001));
    // One full pass over both arrays: L2 has 64 lines... (16KB/64/4=64
    // sets * 4 ways = 256 lines); L3 64KB -> 1024 lines.
    EXPECT_GE(scrubber.linesScrubbed(),
              memory.l2(0).geometry().numLines() +
                  memory.l3().geometry().numLines() - 2);
}

TEST(Scrubber, DisabledDoesNothing)
{
    EdacReporter reporter;
    MemorySystem memory(tinyConfig(), &reporter);
    ScrubberConfig config;
    config.enabled = false;
    Scrubber scrubber(config, &memory);
    scrubber.advance(ticks::fromSeconds(1.0));
    EXPECT_EQ(scrubber.linesScrubbed(), 0u);
}

TEST(Scrubber, ScrubCorrectsLatentFlip)
{
    EdacReporter reporter;
    MemorySystem memory(tinyConfig(), &reporter);
    const Addr addr = memory.allocate(64, "t");
    memory.writeWord(0, addr, 0xabcULL);  // dirty line in L2

    Cache &l2 = memory.l2(0);
    for (size_t word = 0; word < l2.dataArray().words(); ++word) {
        if (l2.dataArray().truth(word) == 0xabcULL) {
            l2.dataArray().flipBit(word, 0);
            break;
        }
    }
    ScrubberConfig config;
    config.enabled = true;
    config.l2PassPeriod = ticks::fromSeconds(0.001);
    config.l3PassPeriod = ticks::fromSeconds(0.001);
    Scrubber scrubber(config, &memory);
    scrubber.advance(ticks::fromSeconds(0.002));
    EXPECT_GE(reporter.tally(CacheLevel::L2).corrected, 1u);
}

/* ------------------------ more MemorySystem ---------------------- */

TEST(MemorySystem, AllocationsAreLineAlignedAndDisjoint)
{
    EdacReporter reporter;
    MemorySystem memory(tinyConfig(), &reporter);
    const Addr a = memory.allocate(10, "a");    // odd size
    const Addr b = memory.allocate(100, "b");
    const Addr c = memory.allocate(64, "c");
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(b % 64, 0u);
    EXPECT_EQ(c % 64, 0u);
    EXPECT_GE(b, a + 10);
    EXPECT_GE(c, b + 100);
}

TEST(MemorySystem, ResetHeapClearsDramAndCaches)
{
    EdacReporter reporter;
    MemorySystem memory(tinyConfig(), &reporter);
    const Addr addr = memory.allocate(64, "t");
    memory.writeWord(0, addr, 77);
    memory.resetHeap();
    const Addr again = memory.allocate(64, "t2");
    EXPECT_EQ(again, addr);  // bump pointer rewound
    EXPECT_EQ(memory.readWord(0, again), 0u);  // DRAM cleared
}

TEST(MemorySystem, FlushAllPersistsDirtyDataToDram)
{
    EdacReporter reporter;
    MemorySystem memory(tinyConfig(), &reporter);
    const Addr addr = memory.allocate(64, "t");
    memory.writeWord(0, addr, 0x123ULL);
    memory.flushAll();
    EXPECT_FALSE(memory.l1d(0).contains(addr));
    EXPECT_FALSE(memory.l2(0).contains(addr));
    EXPECT_FALSE(memory.l3().contains(addr));
    // Value survives the flush (it reached DRAM).
    EXPECT_EQ(memory.readWord(0, addr), 0x123ULL);
}

TEST(MemorySystem, WriteThroughL1NeverHoldsDirtyLines)
{
    EdacReporter reporter;
    MemorySystem memory(tinyConfig(), &reporter);
    const Addr addr = memory.allocate(64, "t");
    memory.readWord(0, addr);   // fill L1
    memory.writeWord(0, addr, 5);
    EXPECT_FALSE(memory.l1d(0).isDirty(addr));
    EXPECT_TRUE(memory.l2(0).isDirty(addr));
}

TEST(MemorySystem, CrossPairSnoopFlushesDirtyCopy)
{
    MemorySystemConfig config = tinyConfig();
    config.numCores = 4;
    EdacReporter reporter;
    MemorySystem memory(config, &reporter);
    const Addr addr = memory.allocate(64, "t");
    memory.writeWord(0, addr, 11);        // pair 0 dirty
    EXPECT_TRUE(memory.l2(0).isDirty(addr));
    memory.writeWord(2, addr, 12);        // pair 1 takes ownership
    EXPECT_FALSE(memory.l2(0).contains(addr));
    EXPECT_TRUE(memory.l2(1).isDirty(addr));
    EXPECT_EQ(memory.readWord(0, addr), 12u);
}

TEST(MemorySystem, UninitializedMemoryReadsZero)
{
    EdacReporter reporter;
    MemorySystem memory(tinyConfig(), &reporter);
    const Addr addr = memory.allocate(4096, "t");
    EXPECT_EQ(memory.readWord(1, addr + 2048), 0u);
}

/** Protection-scheme sweep over SramArray write/read round trips. */
class ProtectionSweep : public ::testing::TestWithParam<Protection>
{
};

TEST_P(ProtectionSweep, RoundTripAndFlipAccounting)
{
    SramArray array("sweep", 32, GetParam());
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const size_t index = rng.nextBounded(32);
        const uint64_t value = rng.nextU64();
        array.write(index, value);
        EXPECT_EQ(array.read(index).value, value);
    }
    // A flip is visible to isCorrupted regardless of scheme.
    array.write(0, 42);
    array.flipBit(0, 13);
    EXPECT_TRUE(array.isCorrupted(0));
    EXPECT_EQ(array.counters().bitFlipsInjected, 1u);
}

INSTANTIATE_TEST_SUITE_P(Schemes, ProtectionSweep,
                         ::testing::Values(Protection::None,
                                           Protection::Parity,
                                           Protection::Secded));

TEST(Cache, ParityOnWriteBackReportsUncorrected)
{
    // Ablation configuration: parity on a write-back cache means a
    // detected error has no second copy -> logged as UE.
    EdacReporter reporter;
    CacheConfig config = smallCacheConfig();
    config.protection = Protection::Parity;
    Cache cache(config, &reporter);
    cache.allocate(0x1000, std::vector<uint64_t>(8, 3), true);
    bool flipped = false;
    for (size_t word = 0; word < cache.dataArray().words() && !flipped;
         ++word) {
        if (cache.dataArray().truth(word) == 3) {
            cache.dataArray().flipBit(word, 0);
            flipped = true;
        }
    }
    ASSERT_TRUE(flipped);
    std::vector<uint64_t> line;
    EXPECT_TRUE(cache.readLine(0x1000, line));
    EXPECT_EQ(reporter.tally(CacheLevel::L2).uncorrected, 1u);
}

TEST(Scrubber, ClockScaleSpeedsPassRate)
{
    EdacReporter reporter;
    MemorySystem memory(tinyConfig(), &reporter);
    ScrubberConfig config;
    config.enabled = true;
    config.l2PassPeriod = ticks::fromSeconds(0.010);
    config.l3PassPeriod = ticks::fromSeconds(0.010);

    Scrubber full(config, &memory);
    full.advance(ticks::fromSeconds(0.010));
    const uint64_t at_full = full.linesScrubbed();

    ScrubberConfig slow = config;
    slow.clockScale = 0.375;  // 900 MHz / 2.4 GHz
    EdacReporter reporter2;
    MemorySystem memory2(tinyConfig(), &reporter2);
    Scrubber scaled(slow, &memory2);
    scaled.advance(ticks::fromSeconds(0.010));
    EXPECT_NEAR(static_cast<double>(scaled.linesScrubbed()),
                0.375 * static_cast<double>(at_full),
                0.05 * static_cast<double>(at_full));
}

TEST(MemorySystem, DirtyEvictionWritebackDetectsLatentFlip)
{
    // The L3 detection channel the campaign leans on: a flip in a
    // dirty line is found by the checked read-out at eviction.
    EdacReporter reporter;
    MemorySystem memory(tinyConfig(), &reporter);
    const Addr addr = memory.allocate(64, "victim");
    memory.writeWord(0, addr, 0xd1d1ULL);  // dirty in L2

    Cache &l2 = memory.l2(0);
    bool flipped = false;
    for (size_t word = 0; word < l2.dataArray().words() && !flipped;
         ++word) {
        if (l2.dataArray().truth(word) == 0xd1d1ULL) {
            l2.dataArray().flipBit(word, 21);
            flipped = true;
        }
    }
    ASSERT_TRUE(flipped);
    const uint64_t before = reporter.tally(CacheLevel::L2).corrected;
    // Force eviction by filling the victim's set: same set every
    // 16 KiB * ... walk conflicting addresses until the line leaves.
    for (int i = 1; l2.contains(addr) && i < 64; ++i) {
        const Addr conflict =
            addr + static_cast<Addr>(i) * l2.config().sizeBytes /
                       l2.config().associativity;
        memory.readWord(0, conflict);
    }
    EXPECT_FALSE(l2.contains(addr));
    EXPECT_EQ(reporter.tally(CacheLevel::L2).corrected, before + 1);
    // And the corrected value survived the writeback.
    EXPECT_EQ(memory.readWord(0, addr), 0xd1d1ULL);
}

TEST(RefetchableArray, ReplaceDestroysFlipSilently)
{
    EdacReporter reporter;
    RefetchableArray array("t", 32, CacheLevel::Tlb, &reporter, 9);
    array.array().flipBit(3, 7);
    EXPECT_TRUE(array.array().isCorrupted(3));
    array.replace(3);
    EXPECT_FALSE(array.array().isCorrupted(3));
    EXPECT_EQ(reporter.totalUpsets(), 0u);
    EXPECT_EQ(array.repairs(), 0u);
}

TEST(RefetchableArray, ResetRestoresDeterministicContents)
{
    EdacReporter reporter;
    RefetchableArray a("t", 16, CacheLevel::Tlb, &reporter, 123);
    RefetchableArray b("t", 16, CacheLevel::Tlb, &reporter, 123);
    a.array().flipBit(5, 1);
    a.reset();
    for (size_t i = 0; i < 16; ++i)
        EXPECT_EQ(a.array().peek(i), b.array().peek(i));
}

/* ------------------------- EdacReporter -------------------------- */

TEST(EdacReporter, TalliesPerLevel)
{
    EdacReporter reporter(true);
    reporter.post(1, CacheLevel::L2, EdacKind::Corrected, "l2.0");
    reporter.post(2, CacheLevel::L3, EdacKind::Uncorrected, "l3");
    reporter.post(3, CacheLevel::L3, EdacKind::Corrected, "l3");
    EXPECT_EQ(reporter.tally(CacheLevel::L2).corrected, 1u);
    EXPECT_EQ(reporter.tally(CacheLevel::L3).uncorrected, 1u);
    EXPECT_EQ(reporter.totalCorrected(), 2u);
    EXPECT_EQ(reporter.totalUncorrected(), 1u);
    EXPECT_EQ(reporter.totalUpsets(), 3u);
    ASSERT_EQ(reporter.log().size(), 3u);
    EXPECT_EQ(reporter.log()[1].source, "l3");
    reporter.clear();
    EXPECT_EQ(reporter.totalUpsets(), 0u);
}

} // namespace
} // namespace xser::mem
