# Markdown link checker for the docs gate. Run as a ctest:
#
#   cmake -DROOT=<repo-root> -P check_markdown_links.cmake
#
# Scans the repo's documentation set for `[text](target)` links and
# fails when a relative target does not exist on disk (anchors are
# stripped first). External http(s)/mailto links are listed but not
# fetched — the check must pass offline and never flake on a remote
# outage.

if(NOT DEFINED ROOT)
    message(FATAL_ERROR
            "usage: cmake -DROOT=<repo> -P check_markdown_links.cmake")
endif()

file(GLOB root_docs "${ROOT}/*.md")
file(GLOB_RECURSE tree_docs "${ROOT}/docs/*.md")
set(docs ${root_docs} ${tree_docs})

set(broken "")
set(checked 0)
set(external 0)

foreach(doc IN LISTS docs)
    file(READ "${doc}" text)
    get_filename_component(base "${doc}" DIRECTORY)
    string(REGEX MATCHALL "\\[[^]]*\\]\\(([^)]+)\\)" links "${text}")
    foreach(link IN LISTS links)
        string(REGEX REPLACE "^\\[[^]]*\\]\\(([^)]+)\\)$" "\\1"
               target "${link}")
        if(target MATCHES "^(https?|mailto):")
            math(EXPR external "${external} + 1")
            continue()
        endif()
        # Drop an #anchor suffix; a bare "#section" self-link needs no
        # file check at all.
        string(REGEX REPLACE "#.*$" "" path "${target}")
        if(path STREQUAL "")
            continue()
        endif()
        math(EXPR checked "${checked} + 1")
        if(NOT EXISTS "${base}/${path}")
            file(RELATIVE_PATH rel "${ROOT}" "${doc}")
            string(APPEND broken "  ${rel}: broken link -> ${target}\n")
        endif()
    endforeach()
endforeach()

list(LENGTH docs doc_count)
message(STATUS "markdown link check: ${doc_count} file(s), "
               "${checked} relative link(s) verified, "
               "${external} external link(s) skipped")
if(broken)
    message(FATAL_ERROR "broken markdown links:\n${broken}")
endif()
