# Diff a tool's live `--help` output against its committed snapshot in
# docs/cli/. Run as a ctest:
#
#   cmake -DTOOL=<binary> -DDOC=<docs/cli/tool.txt> -P check_help_drift.cmake
#
# Fails with a unified-style report when the usage text and the docs
# disagree, so `docs/cli/` can never drift from the code. Regenerate a
# snapshot with `<tool> --help > docs/cli/<tool>.txt`.

if(NOT DEFINED TOOL OR NOT DEFINED DOC)
    message(FATAL_ERROR "usage: cmake -DTOOL=<bin> -DDOC=<txt> -P "
                        "check_help_drift.cmake")
endif()

execute_process(COMMAND "${TOOL}" --help
                OUTPUT_VARIABLE live
                ERROR_VARIABLE live_err
                RESULT_VARIABLE status)
if(NOT status EQUAL 0)
    message(FATAL_ERROR
            "${TOOL} --help exited ${status} (must be 0):\n${live_err}")
endif()

file(READ "${DOC}" committed)

if(NOT live STREQUAL committed)
    message(FATAL_ERROR
            "help text drift: `${TOOL} --help` no longer matches "
            "${DOC}.\n"
            "Regenerate the snapshot:\n"
            "  ${TOOL} --help > ${DOC}\n"
            "--- committed ---\n${committed}\n"
            "--- live ---\n${live}")
endif()
