/**
 * @file
 * Tests for the statistics substrate: streaming summaries, incomplete
 * gamma / chi-squared quantiles, exact Poisson intervals, histograms,
 * and rate estimators.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/histogram.hh"
#include "stats/poisson_ci.hh"
#include "stats/rate_estimator.hh"
#include "stats/summary.hh"

namespace xser {
namespace {

/* ----------------------------- Summary --------------------------- */

TEST(Summary, BasicMoments)
{
    Summary summary;
    for (double value : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        summary.add(value);
    EXPECT_EQ(summary.count(), 8u);
    EXPECT_DOUBLE_EQ(summary.mean(), 5.0);
    EXPECT_NEAR(summary.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(summary.min(), 2.0);
    EXPECT_DOUBLE_EQ(summary.max(), 9.0);
    EXPECT_NEAR(summary.sum(), 40.0, 1e-9);
}

TEST(Summary, EmptyIsSafe)
{
    Summary summary;
    EXPECT_EQ(summary.count(), 0u);
    EXPECT_EQ(summary.mean(), 0.0);
    EXPECT_EQ(summary.variance(), 0.0);
    EXPECT_EQ(summary.stderrMean(), 0.0);
}

TEST(Summary, MergeMatchesCombined)
{
    Summary left;
    Summary right;
    Summary all;
    for (int i = 0; i < 100; ++i) {
        const double value = std::sin(i * 0.7) * 10.0;
        (i < 40 ? left : right).add(value);
        all.add(value);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(left.min(), all.min());
    EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(Summary, MergeWithEmpty)
{
    Summary summary;
    summary.add(3.0);
    Summary empty;
    summary.merge(empty);
    EXPECT_EQ(summary.count(), 1u);
    empty.merge(summary);
    EXPECT_EQ(empty.count(), 1u);
    EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

/* ------------------------ Incomplete gamma ----------------------- */

TEST(Gamma, KnownValues)
{
    // P(1, x) = 1 - exp(-x).
    for (double x : {0.1, 0.5, 1.0, 2.0, 5.0})
        EXPECT_NEAR(regularizedGammaP(1.0, x), 1.0 - std::exp(-x), 1e-10);
    // P(0.5, x) = erf(sqrt(x)).
    for (double x : {0.2, 1.0, 3.0})
        EXPECT_NEAR(regularizedGammaP(0.5, x), std::erf(std::sqrt(x)),
                    1e-10);
    EXPECT_DOUBLE_EQ(regularizedGammaP(3.0, 0.0), 0.0);
    EXPECT_NEAR(regularizedGammaQ(2.0, 30.0), 0.0, 1e-9);
}

TEST(ChiSquared, QuantileInvertsDistribution)
{
    for (double dof : {1.0, 2.0, 5.0, 10.0, 40.0}) {
        for (double p : {0.025, 0.5, 0.975}) {
            const double x = chiSquaredQuantile(p, dof);
            EXPECT_NEAR(regularizedGammaP(dof / 2.0, x / 2.0), p, 1e-8)
                << "dof=" << dof << " p=" << p;
        }
    }
}

TEST(ChiSquared, TextbookValues)
{
    // chi2inv(0.95, 1) = 3.8415, chi2inv(0.95, 10) = 18.307.
    EXPECT_NEAR(chiSquaredQuantile(0.95, 1.0), 3.8415, 1e-3);
    EXPECT_NEAR(chiSquaredQuantile(0.95, 10.0), 18.307, 1e-2);
    EXPECT_NEAR(chiSquaredQuantile(0.025, 10.0), 3.2470, 1e-3);
}

/* ------------------------- Poisson intervals --------------------- */

TEST(PoissonCi, ZeroCount)
{
    const PoissonInterval interval = poissonConfidenceInterval(0, 0.95);
    EXPECT_DOUBLE_EQ(interval.lower, 0.0);
    // Exact upper bound for zero events at 95%: -ln(0.025) = 3.6889.
    EXPECT_NEAR(interval.upper, 3.6889, 1e-3);
}

TEST(PoissonCi, TextbookValues)
{
    // Garwood 95% interval for k = 10: [4.795, 18.39].
    const PoissonInterval interval = poissonConfidenceInterval(10, 0.95);
    EXPECT_NEAR(interval.lower, 4.795, 1e-2);
    EXPECT_NEAR(interval.upper, 18.39, 1e-2);
}

/** The interval must contain the count and shrink relatively with k. */
class PoissonCiSweep : public ::testing::TestWithParam<uint64_t>
{
};

TEST_P(PoissonCiSweep, ContainsCountAndOrdered)
{
    const uint64_t count = GetParam();
    const PoissonInterval interval =
        poissonConfidenceInterval(count, 0.95);
    EXPECT_LE(interval.lower, static_cast<double>(count));
    EXPECT_GE(interval.upper, static_cast<double>(count));
    EXPECT_LT(interval.lower, interval.upper);
    if (count > 2) {
        // Relative width decreases roughly as 1/sqrt(k); tiny counts
        // are dominated by the +chi2(2k+2) tail and are excluded.
        const double rel_width =
            (interval.upper - interval.lower) /
            static_cast<double>(count);
        EXPECT_LT(rel_width, 4.0 / std::sqrt(
            static_cast<double>(count)) + 0.5);
    }
}

INSTANTIATE_TEST_SUITE_P(Counts, PoissonCiSweep,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 13, 29, 95,
                                           141, 1669));

TEST(PoissonCi, CoverageIsNearNominal)
{
    // Property check: simulate Poisson(7) draws and verify ~95% of the
    // intervals contain the true mean (simple LCG to keep this test
    // independent of the library's own Rng).
    uint64_t state = 12345;
    auto next_uniform = [&]() {
        state = state * 6364136223846793005ULL + 1442695040888963407ULL;
        return static_cast<double>(state >> 11) * 0x1.0p-53;
    };
    const double mean = 7.0;
    const int trials = 3000;
    int covered = 0;
    for (int t = 0; t < trials; ++t) {
        // Knuth Poisson.
        const double limit = std::exp(-mean);
        uint64_t k = 0;
        double product = next_uniform();
        while (product > limit) {
            ++k;
            product *= next_uniform();
        }
        const PoissonInterval interval =
            poissonConfidenceInterval(k, 0.95);
        if (mean >= interval.lower && mean <= interval.upper)
            ++covered;
    }
    const double coverage = static_cast<double>(covered) / trials;
    // Garwood is conservative: coverage >= 95% (within noise).
    EXPECT_GT(coverage, 0.94);
}

TEST(PoissonCi, ScaleInterval)
{
    const PoissonInterval interval{2.0, 8.0};
    const PoissonInterval scaled = scaleInterval(interval, 4.0);
    EXPECT_DOUBLE_EQ(scaled.lower, 0.5);
    EXPECT_DOUBLE_EQ(scaled.upper, 2.0);
}

/* ---------------------------- Histogram -------------------------- */

TEST(Histogram, BinningAndOverflow)
{
    Histogram histogram(0.0, 10.0, 10);
    histogram.add(-1.0);
    histogram.add(0.0);
    histogram.add(4.5);
    histogram.add(9.999);
    histogram.add(10.0);
    histogram.add(25.0);
    EXPECT_EQ(histogram.underflow(), 1u);
    EXPECT_EQ(histogram.overflow(), 2u);
    EXPECT_EQ(histogram.binCount(0), 1u);
    EXPECT_EQ(histogram.binCount(4), 1u);
    EXPECT_EQ(histogram.binCount(9), 1u);
    EXPECT_EQ(histogram.total(), 6u);
}

TEST(Histogram, WeightedAdd)
{
    Histogram histogram(0.0, 4.0, 4);
    histogram.add(1.5, 10);
    EXPECT_EQ(histogram.binCount(1), 10u);
    EXPECT_EQ(histogram.total(), 10u);
}

TEST(Histogram, ClearResets)
{
    Histogram histogram(0.0, 4.0, 4);
    histogram.add(1.0);
    histogram.clear();
    EXPECT_EQ(histogram.total(), 0u);
    EXPECT_EQ(histogram.binCount(1), 0u);
}

TEST(Histogram, MergeOfEmptyIsIdentity)
{
    Histogram histogram(0.0, 4.0, 4);
    histogram.add(1.5, 3);
    const Histogram empty(0.0, 4.0, 4);
    histogram.merge(empty);
    EXPECT_EQ(histogram.binCount(1), 3u);
    EXPECT_EQ(histogram.total(), 3u);

    Histogram fresh(0.0, 4.0, 4);
    fresh.merge(histogram);
    EXPECT_EQ(fresh.binCount(1), 3u);
    EXPECT_EQ(fresh.total(), 3u);
}

TEST(Histogram, MergeSingleBucket)
{
    Histogram a(0.0, 1.0, 1);
    Histogram b(0.0, 1.0, 1);
    a.add(0.25);
    b.add(0.75, 4);
    a.merge(b);
    EXPECT_EQ(a.binCount(0), 5u);
    EXPECT_EQ(a.total(), 5u);
}

TEST(Histogram, MergeSumsUnderAndOverflow)
{
    Histogram a(0.0, 10.0, 10);
    Histogram b(0.0, 10.0, 10);
    a.add(-1.0);
    a.add(25.0);
    b.add(-2.0);
    b.add(10.0);
    b.add(30.0);
    b.add(5.0);
    a.merge(b);
    EXPECT_EQ(a.underflow(), 2u);
    EXPECT_EQ(a.overflow(), 3u);
    EXPECT_EQ(a.binCount(5), 1u);
    EXPECT_EQ(a.total(), 6u);
}

TEST(Histogram, MergeIsOrderIndependent)
{
    Histogram ab(0.0, 8.0, 8);
    Histogram ba(0.0, 8.0, 8);
    Histogram a(0.0, 8.0, 8);
    Histogram b(0.0, 8.0, 8);
    a.add(1.0, 2);
    a.add(9.0);
    b.add(6.5, 7);
    b.add(-3.0);
    ab.merge(a);
    ab.merge(b);
    ba.merge(b);
    ba.merge(a);
    for (size_t i = 0; i < ab.bins(); ++i)
        EXPECT_EQ(ab.binCount(i), ba.binCount(i));
    EXPECT_EQ(ab.underflow(), ba.underflow());
    EXPECT_EQ(ab.overflow(), ba.overflow());
    EXPECT_EQ(ab.total(), ba.total());
}

TEST(Histogram, MergeShapeMismatchIsFatal)
{
    Histogram a(0.0, 4.0, 4);
    const Histogram different_bins(0.0, 4.0, 8);
    const Histogram different_range(0.0, 8.0, 4);
    EXPECT_EXIT(a.merge(different_bins),
                ::testing::ExitedWithCode(1), "shape");
    EXPECT_EXIT(a.merge(different_range),
                ::testing::ExitedWithCode(1), "shape");
}

TEST(Histogram, ToStringRendersBars)
{
    Histogram histogram(0.0, 2.0, 2);
    histogram.add(0.5);
    histogram.add(0.5);
    histogram.add(1.5);
    const std::string text = histogram.toString();
    EXPECT_NE(text.find('#'), std::string::npos);
}

/* -------------------------- RateEstimator ------------------------ */

TEST(RateEstimator, BasicRate)
{
    RateEstimator estimator;
    estimator.addEvents(10);
    estimator.addExposure(5.0);
    EXPECT_DOUBLE_EQ(estimator.rate(), 2.0);
    const PoissonInterval interval = estimator.rateInterval();
    EXPECT_LT(interval.lower, 2.0);
    EXPECT_GT(interval.upper, 2.0);
}

TEST(RateEstimator, EmptyExposure)
{
    RateEstimator estimator;
    estimator.addEvents(3);
    EXPECT_DOUBLE_EQ(estimator.rate(), 0.0);
    const PoissonInterval interval = estimator.rateInterval();
    EXPECT_DOUBLE_EQ(interval.upper, 0.0);
}

TEST(RateEstimator, MergeAddsBoth)
{
    RateEstimator a;
    a.addEvents(4);
    a.addExposure(2.0);
    RateEstimator b;
    b.addEvents(6);
    b.addExposure(3.0);
    a.merge(b);
    EXPECT_EQ(a.events(), 10u);
    EXPECT_DOUBLE_EQ(a.exposure(), 5.0);
    EXPECT_DOUBLE_EQ(a.rate(), 2.0);
}

} // namespace
} // namespace xser
