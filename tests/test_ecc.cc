/**
 * @file
 * Property tests for the protection codecs: parity detects exactly the
 * odd flip counts; SECDED(72,64) corrects every single-bit error,
 * detects every double-bit error, and never reports Clean on a triple.
 */

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <vector>

#include "ecc/parity.hh"
#include "ecc/secded.hh"
#include "ecc/swar.hh"
#include "sim/rng.hh"

namespace xser::ecc {
namespace {

/** Representative data patterns for exhaustive-ish codec sweeps. */
std::vector<uint64_t>
patterns()
{
    std::vector<uint64_t> values = {
        0x0000000000000000ULL, 0xffffffffffffffffULL,
        0xaaaaaaaaaaaaaaaaULL, 0x5555555555555555ULL,
        0x0123456789abcdefULL, 0x8000000000000001ULL,
    };
    Rng rng(0xecc5eedULL);
    for (int i = 0; i < 10; ++i)
        values.push_back(rng.nextU64());
    return values;
}

/** Apply a codeword-position flip to a stored (data, check) pair. */
void
flipCodewordBit(uint64_t &data, uint8_t &check, int codeword_bit)
{
    int data_bit = 0;
    int check_bit = 0;
    if (SecdedCodec::codewordIndexToStorage(codeword_bit, data_bit,
                                            check_bit))
        data ^= 1ULL << data_bit;
    else
        check ^= static_cast<uint8_t>(1u << check_bit);
}

/* ----------------------------- Parity ---------------------------- */

TEST(Parity, CleanWordPasses)
{
    for (uint64_t value : patterns()) {
        const uint8_t parity = ParityCodec::encode(value);
        EXPECT_EQ(ParityCodec::check(value, parity),
                  CheckStatus::Clean);
    }
}

TEST(Parity, EverySingleFlipDetected)
{
    for (uint64_t value : patterns()) {
        const uint8_t parity = ParityCodec::encode(value);
        for (int bit = 0; bit < 64; ++bit) {
            EXPECT_EQ(ParityCodec::check(value ^ (1ULL << bit), parity),
                      CheckStatus::ParityError);
        }
        // Flip of the parity bit itself is also detected.
        EXPECT_EQ(ParityCodec::check(value, parity ^ 1),
                  CheckStatus::ParityError);
    }
}

TEST(Parity, DoubleFlipsEscape)
{
    // Even flip counts pass parity -- the escape channel the simulator
    // tracks as silent corruption.
    const uint64_t value = 0x0123456789abcdefULL;
    const uint8_t parity = ParityCodec::encode(value);
    Rng rng(42);
    for (int trial = 0; trial < 200; ++trial) {
        const int a = static_cast<int>(rng.nextBounded(64));
        int b = static_cast<int>(rng.nextBounded(64));
        while (b == a)
            b = static_cast<int>(rng.nextBounded(64));
        const uint64_t corrupted =
            value ^ (1ULL << a) ^ (1ULL << b);
        EXPECT_EQ(ParityCodec::check(corrupted, parity),
                  CheckStatus::Clean);
    }
}

/* ----------------------------- SECDED ---------------------------- */

TEST(Secded, CleanWordDecodesClean)
{
    for (uint64_t value : patterns()) {
        const uint8_t check = SecdedCodec::encode(value);
        const SecdedResult result = SecdedCodec::decode(value, check);
        EXPECT_EQ(result.status, CheckStatus::Clean);
        EXPECT_EQ(result.data, value);
        EXPECT_EQ(result.check, check);
    }
}

/** Every one of the 72 single-bit flips must be exactly repaired. */
class SecdedSingleBit : public ::testing::TestWithParam<int>
{
};

TEST_P(SecdedSingleBit, CorrectedExactly)
{
    const int codeword_bit = GetParam();
    for (uint64_t value : patterns()) {
        uint64_t data = value;
        uint8_t check = SecdedCodec::encode(value);
        flipCodewordBit(data, check, codeword_bit);
        const SecdedResult result = SecdedCodec::decode(data, check);
        EXPECT_EQ(result.status, CheckStatus::CorrectedSingle);
        EXPECT_EQ(result.data, value) << "bit " << codeword_bit;
        EXPECT_EQ(result.check, SecdedCodec::encode(value));
    }
}

INSTANTIATE_TEST_SUITE_P(AllPositions, SecdedSingleBit,
                         ::testing::Range(0, 72));

TEST(Secded, EveryDoubleFlipDetected)
{
    const uint64_t value = 0x0123456789abcdefULL;
    const uint8_t check = SecdedCodec::encode(value);
    for (int a = 0; a < 72; ++a) {
        for (int b = a + 1; b < 72; ++b) {
            uint64_t data = value;
            uint8_t stored = check;
            flipCodewordBit(data, stored, a);
            flipCodewordBit(data, stored, b);
            const SecdedResult result = SecdedCodec::decode(data, stored);
            EXPECT_EQ(result.status, CheckStatus::DetectedDouble)
                << "bits " << a << "," << b;
        }
    }
}

TEST(Secded, TripleFlipsNeverReadClean)
{
    // Odd flip counts always trip the overall parity: a triple either
    // miscorrects (reported CorrectedSingle, possibly with wrong data)
    // or is flagged uncorrectable -- but never reads Clean. This is
    // the mechanism behind Section 6.2's SDC-with-CE events.
    const uint64_t value = 0xfeedfacecafebeefULL;
    const uint8_t check = SecdedCodec::encode(value);
    Rng rng(7);
    int miscorrections = 0;
    const int trials = 2000;
    for (int trial = 0; trial < trials; ++trial) {
        int bits[3];
        bits[0] = static_cast<int>(rng.nextBounded(72));
        do {
            bits[1] = static_cast<int>(rng.nextBounded(72));
        } while (bits[1] == bits[0]);
        do {
            bits[2] = static_cast<int>(rng.nextBounded(72));
        } while (bits[2] == bits[0] || bits[2] == bits[1]);

        uint64_t data = value;
        uint8_t stored = check;
        for (int bit : bits)
            flipCodewordBit(data, stored, bit);
        const SecdedResult result = SecdedCodec::decode(data, stored);
        EXPECT_NE(result.status, CheckStatus::Clean);
        if (result.status == CheckStatus::CorrectedSingle &&
            result.data != value) {
            ++miscorrections;
        }
    }
    // Most triples alias to a valid single-bit syndrome and silently
    // corrupt -- the rate must be substantial for the Section 6.2
    // channel to exist.
    EXPECT_GT(miscorrections, trials / 4);
}

TEST(Secded, QuadFlipsCanAliasToClean)
{
    // Even >= 4 flip counts can alias to a valid codeword: fully
    // silent corruption. Find at least one.
    const uint64_t value = 0;
    const uint8_t check = SecdedCodec::encode(value);
    Rng rng(9);
    int silent = 0;
    for (int trial = 0; trial < 20000 && silent == 0; ++trial) {
        uint64_t data = value;
        uint8_t stored = check;
        int bits[4];
        for (int i = 0; i < 4; ++i) {
          retry:
            bits[i] = static_cast<int>(rng.nextBounded(72));
            for (int j = 0; j < i; ++j) {
                if (bits[j] == bits[i])
                    goto retry;
            }
        }
        for (int bit : bits)
            flipCodewordBit(data, stored, bit);
        const SecdedResult result = SecdedCodec::decode(data, stored);
        if (result.status == CheckStatus::Clean && result.data != value)
            ++silent;
    }
    EXPECT_GT(silent, 0);
}

TEST(Secded, EncodeIsDeterministic)
{
    for (uint64_t value : patterns())
        EXPECT_EQ(SecdedCodec::encode(value), SecdedCodec::encode(value));
}

TEST(Secded, CodewordStorageMappingIsBijective)
{
    int data_seen = 0;
    int check_seen = 0;
    std::vector<bool> data_hit(64, false);
    std::vector<bool> check_hit(8, false);
    for (int codeword_bit = 0; codeword_bit < SecdedCodec::codewordBits;
         ++codeword_bit) {
        int data_bit = -1;
        int check_bit = -1;
        if (SecdedCodec::codewordIndexToStorage(codeword_bit, data_bit,
                                                check_bit)) {
            ASSERT_GE(data_bit, 0);
            ASSERT_LT(data_bit, 64);
            EXPECT_FALSE(data_hit[data_bit]);
            data_hit[data_bit] = true;
            ++data_seen;
        } else {
            ASSERT_GE(check_bit, 0);
            ASSERT_LT(check_bit, 8);
            EXPECT_FALSE(check_hit[check_bit]);
            check_hit[check_bit] = true;
            ++check_seen;
        }
    }
    EXPECT_EQ(data_seen, 64);
    EXPECT_EQ(check_seen, 8);
}

/* ----------------- Differential: SWAR vs reference ---------------- */
/*
 * The production codecs reduce parities word-parallel (popcount /
 * XOR-fold, see src/ecc/swar.hh). The implementations below are the
 * bit-serial reference semantics -- one explicit loop iteration per
 * codeword bit, derived from the extended-Hamming definition and not
 * from the production tables -- and the tests prove the two agree over
 * every single-bit flip and randomized multi-bit flips, classification
 * included. This is the equivalence gate that lets the hot path use
 * the SWAR forms (DESIGN.md section 8).
 */

// The bit-serial parity references moved next to their fast kernels in
// src/ecc/swar.hh so xser-lint's fastpath-parity rule can pair them;
// these tests stay the differential gate that proves the pairing.
using swar::parity64Reference;
using swar::parity72Reference;

/**
 * Bit-serial SECDED encoder from the extended-Hamming definition:
 * data bits fill the non-power-of-two positions 1..71 in ascending
 * order; check bit i is the XOR of every position with bit i set in
 * its index; the eighth bit makes the whole stored word even.
 */
uint8_t
secdedEncodeReference(uint64_t data)
{
    std::array<int, 72> codeword{};
    int data_bit = 0;
    for (int position = 1; position <= 71; ++position) {
        if ((position & (position - 1)) == 0)
            continue;  // power-of-two slots hold check bits
        codeword[position] =
            static_cast<int>((data >> data_bit) & 1);
        ++data_bit;
    }
    uint8_t check = 0;
    for (int i = 0; i < 7; ++i) {
        int parity = 0;
        for (int position = 1; position <= 71; ++position) {
            if (position & (1 << i))
                parity ^= codeword[position];
        }
        check |= static_cast<uint8_t>(parity << i);
    }
    check |= static_cast<uint8_t>(parity72Reference(data, check) << 7);
    return check;
}

/** Bit-serial syndrome over a stored word (data + Hamming check bits). */
uint8_t
secdedSyndromeReference(uint64_t data, uint8_t check)
{
    std::array<int, 72> codeword{};
    int data_bit = 0;
    for (int position = 1; position <= 71; ++position) {
        if ((position & (position - 1)) == 0) {
            const int check_index = std::countr_zero(
                static_cast<unsigned>(position));
            codeword[position] = (check >> check_index) & 1;
            continue;
        }
        codeword[position] = static_cast<int>((data >> data_bit) & 1);
        ++data_bit;
    }
    uint8_t syndrome = 0;
    for (int i = 0; i < 7; ++i) {
        int parity = 0;
        for (int position = 1; position <= 71; ++position) {
            if (position & (1 << i))
                parity ^= codeword[position];
        }
        syndrome |= static_cast<uint8_t>(parity << i);
    }
    return syndrome;
}

/**
 * Bit-serial reference decoder: the published extended-Hamming decision
 * table applied to the bit-serial syndrome and parity reductions.
 */
SecdedResult
secdedDecodeReference(uint64_t data, uint8_t check)
{
    SecdedResult result;
    result.data = data;
    result.check = check;
    result.correctedBit = -1;
    const uint8_t syndrome = secdedSyndromeReference(data, check);
    const bool overall_odd = parity72Reference(data, check) != 0;
    result.syndrome = syndrome;

    if (!overall_odd) {
        result.status = syndrome == 0 ? CheckStatus::Clean
                                      : CheckStatus::DetectedDouble;
        return result;
    }
    if (syndrome == 0) {
        result.check = static_cast<uint8_t>(check ^ 0x80u);
        result.status = CheckStatus::CorrectedSingle;
        result.correctedBit = 0;
        return result;
    }
    if (syndrome > 71) {
        result.status = CheckStatus::DetectedDouble;
        return result;
    }
    int data_bit = -1;
    int check_bit = -1;
    if (SecdedCodec::codewordIndexToStorage(syndrome, data_bit,
                                            check_bit))
        result.data = data ^ (1ULL << data_bit);
    else
        result.check = static_cast<uint8_t>(check ^ (1u << check_bit));
    result.status = CheckStatus::CorrectedSingle;
    result.correctedBit = syndrome;
    return result;
}

/** Detect/correct/miscorrect classification against a known truth. */
enum class Classification { Clean, Corrected, Detected, Miscorrected,
                            SilentEscape };

Classification
classify(const SecdedResult &result, uint64_t truth)
{
    switch (result.status) {
      case CheckStatus::Clean:
        return result.data == truth ? Classification::Clean
                                    : Classification::SilentEscape;
      case CheckStatus::CorrectedSingle:
        return result.data == truth ? Classification::Corrected
                                    : Classification::Miscorrected;
      case CheckStatus::DetectedDouble:
        return Classification::Detected;
      default:
        ADD_FAILURE() << "unexpected decode status";
        return Classification::Detected;
    }
}

TEST(SwarDifferential, ParityKernelsMatchBitLoop)
{
    Rng rng(0x5a5aULL);
    for (uint64_t value : patterns()) {
        for (int trial = 0; trial < 80; ++trial) {
            EXPECT_EQ(swar::parity64(value), parity64Reference(value));
            EXPECT_EQ(swar::parityFold64(value), parity64Reference(value));
            EXPECT_EQ(static_cast<int>(ParityCodec::parityOf(value)),
                      parity64Reference(value));
            value = rng.nextU64();
        }
    }
}

TEST(SwarDifferential, Parity72MatchesBitLoop)
{
    Rng rng(0x7272ULL);
    for (int trial = 0; trial < 500; ++trial) {
        const uint64_t data = rng.nextU64();
        const uint8_t check = static_cast<uint8_t>(rng.nextBounded(256));
        EXPECT_EQ(swar::parity72(data, check),
                  parity72Reference(data, check));
    }
}

TEST(ParityDifferential, AllSingleFlipsMatchReference)
{
    for (uint64_t value : patterns()) {
        const uint8_t parity = ParityCodec::encode(value);
        EXPECT_EQ(static_cast<int>(parity), parity64Reference(value));
        for (int bit = 0; bit < 64; ++bit) {
            const uint64_t corrupted = value ^ (1ULL << bit);
            const bool odd_total =
                parity72Reference(corrupted, parity) != 0;
            EXPECT_EQ(ParityCodec::check(corrupted, parity),
                      odd_total ? CheckStatus::ParityError
                                : CheckStatus::Clean);
        }
    }
}

TEST(ParityDifferential, RandomizedMultiBitFlipsMatchReference)
{
    Rng rng(0xd1ffULL);
    for (int trial = 0; trial < 2000; ++trial) {
        const uint64_t value = rng.nextU64();
        const uint8_t parity = ParityCodec::encode(value);
        uint64_t corrupted = value;
        uint8_t stored = parity;
        const int flips = 1 + static_cast<int>(rng.nextBounded(8));
        for (int i = 0; i < flips; ++i) {
            const int bit = static_cast<int>(rng.nextBounded(65));
            if (bit < 64)
                corrupted ^= 1ULL << bit;
            else
                stored ^= 1;
        }
        // The stored parity bit participates in the total-parity sum:
        // the word reads clean iff the whole 65-bit footprint is even.
        const bool odd_total =
            parity64Reference(corrupted) != (stored & 1);
        EXPECT_EQ(ParityCodec::check(corrupted, stored),
                  odd_total ? CheckStatus::ParityError
                            : CheckStatus::Clean);
    }
}

TEST(SecdedDifferential, EncodeMatchesReference)
{
    Rng rng(0xe2c0deULL);
    for (uint64_t value : patterns())
        EXPECT_EQ(SecdedCodec::encode(value),
                  secdedEncodeReference(value));
    for (int trial = 0; trial < 2000; ++trial) {
        const uint64_t value = rng.nextU64();
        EXPECT_EQ(SecdedCodec::encode(value),
                  secdedEncodeReference(value));
    }
}

TEST(SecdedDifferential, AllSingleFlipsDecodeIdentically)
{
    for (uint64_t value : patterns()) {
        for (int codeword_bit = 0; codeword_bit < 72; ++codeword_bit) {
            uint64_t data = value;
            uint8_t check = SecdedCodec::encode(value);
            flipCodewordBit(data, check, codeword_bit);
            const SecdedResult fast = SecdedCodec::decode(data, check);
            const SecdedResult ref = secdedDecodeReference(data, check);
            EXPECT_EQ(fast.status, ref.status) << "bit " << codeword_bit;
            EXPECT_EQ(fast.data, ref.data) << "bit " << codeword_bit;
            EXPECT_EQ(fast.check, ref.check) << "bit " << codeword_bit;
            EXPECT_EQ(fast.syndrome, ref.syndrome)
                << "bit " << codeword_bit;
            EXPECT_EQ(classify(fast, value), classify(ref, value));
        }
    }
}

TEST(SecdedDifferential, RandomizedMultiBitFlipsDecodeIdentically)
{
    // Detect / correct / miscorrect / silent classification must match
    // the bit-serial reference exactly, across 1..6 simultaneous flips.
    Rng rng(0x3a1edULL);
    for (int trial = 0; trial < 4000; ++trial) {
        const uint64_t value = rng.nextU64();
        uint64_t data = value;
        uint8_t check = SecdedCodec::encode(value);
        const int flips = 1 + static_cast<int>(rng.nextBounded(6));
        for (int i = 0; i < flips; ++i) {
            flipCodewordBit(data, check,
                            static_cast<int>(rng.nextBounded(72)));
        }
        const SecdedResult fast = SecdedCodec::decode(data, check);
        const SecdedResult ref = secdedDecodeReference(data, check);
        ASSERT_EQ(fast.status, ref.status) << "trial " << trial;
        ASSERT_EQ(fast.data, ref.data) << "trial " << trial;
        ASSERT_EQ(fast.check, ref.check) << "trial " << trial;
        ASSERT_EQ(classify(fast, value), classify(ref, value));
    }
}

TEST(EccTypes, ReportingHelpers)
{
    EXPECT_TRUE(reportsCorrected(CheckStatus::CorrectedSingle));
    EXPECT_TRUE(reportsCorrected(CheckStatus::Miscorrected));
    EXPECT_FALSE(reportsCorrected(CheckStatus::Clean));
    EXPECT_TRUE(reportsUncorrected(CheckStatus::DetectedDouble));
    EXPECT_FALSE(reportsUncorrected(CheckStatus::ParityError));
}

} // namespace
} // namespace xser::ecc
