/**
 * @file
 * Telemetry subsystem tests: shard recording and canonical merge, the
 * deterministic JSON writer, manifest render/parse round trips with a
 * paranoid-decode sweep, the xser-metrics passes (load, diff, CSV),
 * the progress line renderer, logger line-hook composition, and the
 * determinism gates -- aggregates, trace bytes, and manifests must be
 * bit-identical with telemetry on or off and for any worker count.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/beam_campaign.hh"
#include "core/parallel_campaign.hh"
#include "core/run_manifest.hh"
#include "metrics/metrics_tool.hh"
#include "sim/logging.hh"
#include "telemetry/json.hh"
#include "telemetry/manifest.hh"
#include "telemetry/metrics.hh"
#include "telemetry/progress.hh"
#include "trace/trace_writer.hh"

namespace xser {
namespace {

using telemetry::Counter;
using telemetry::Dist;
using telemetry::JsonWriter;
using telemetry::MetricRegistry;
using telemetry::MetricShard;
using telemetry::Phase;
using telemetry::ShardScope;

TEST(MetricShard, MergeSumsCountersDistsAndTiming)
{
    MetricRegistry registry(2);
    {
        const ShardScope scope(&registry.shard(0));
        telemetry::count(Counter::EdacCorrected, 3);
        telemetry::count(Counter::BeamArrivals);
        telemetry::distAdd(Dist::RunsPerUnit, 2.0);
        registry.shard(0).phaseSeconds[
            static_cast<size_t>(Phase::Prefix)] = 0.25;
        registry.shard(0).unitsExecuted = 4;
    }
    {
        const ShardScope scope(&registry.shard(1));
        telemetry::count(Counter::EdacCorrected, 2);
        telemetry::distAdd(Dist::RunsPerUnit, 3.0);
        registry.shard(1).phaseSeconds[
            static_cast<size_t>(Phase::Prefix)] = 0.5;
        registry.shard(1).unitsExecuted = 6;
    }
    const MetricShard merged = registry.merged();
    EXPECT_EQ(merged.counters[
                  static_cast<size_t>(Counter::EdacCorrected)], 5u);
    EXPECT_EQ(merged.counters[
                  static_cast<size_t>(Counter::BeamArrivals)], 1u);
    EXPECT_EQ(merged.dists[
                  static_cast<size_t>(Dist::RunsPerUnit)].total(), 2u);
    EXPECT_DOUBLE_EQ(
        merged.phaseSeconds[static_cast<size_t>(Phase::Prefix)], 0.75);
    EXPECT_EQ(merged.unitsExecuted, 10u);
}

TEST(MetricShard, ShardScopeRestoresThePreviousShard)
{
    ASSERT_EQ(telemetry::activeShard(), nullptr);
    MetricShard outer;
    MetricShard inner;
    {
        const ShardScope a(&outer);
        EXPECT_EQ(telemetry::activeShard(), &outer);
        {
            const ShardScope b(&inner);
            EXPECT_EQ(telemetry::activeShard(), &inner);
        }
        EXPECT_EQ(telemetry::activeShard(), &outer);
    }
    EXPECT_EQ(telemetry::activeShard(), nullptr);
}

TEST(MetricShard, RecordingWithoutAShardIsANoOp)
{
    ASSERT_EQ(telemetry::activeShard(), nullptr);
    // Must neither crash nor record anywhere.
    telemetry::count(Counter::ScrubPasses, 7);
    telemetry::distAdd(Dist::ErrorEventsPerUnit, 1.0);
    {
        const telemetry::ScopedPhase phase(Phase::Merge);
    }
    SUCCEED();
}

TEST(JsonWriterTest, EmitsTheExactExpectedDocument)
{
    JsonWriter json;
    json.beginObject();
    json.member("name", "xser");
    json.member("count", static_cast<uint64_t>(3));
    json.member("ok", true);
    json.beginObject("inner");
    json.member("ratio", 0.5);
    json.endObject();
    json.beginArray("list");
    json.value(static_cast<int64_t>(-1));
    json.value("two");
    json.endArray();
    json.endObject();
    EXPECT_EQ(json.take(),
              "{\n"
              "  \"name\": \"xser\",\n"
              "  \"count\": 3,\n"
              "  \"ok\": true,\n"
              "  \"inner\": {\n"
              "    \"ratio\": 0.5\n"
              "  },\n"
              "  \"list\": [\n"
              "    -1,\n"
              "    \"two\"\n"
              "  ]\n"
              "}\n");
}

TEST(JsonWriterTest, FormatDoubleRoundTripsExactly)
{
    const double values[] = {0.0,  1.0,        0.1,   1.0 / 3.0,
                             1e300, 4.9e-324,  -2.5,  142.28};
    for (const double value : values) {
        const std::string text = JsonWriter::formatDouble(value);
        EXPECT_EQ(std::strtod(text.c_str(), nullptr), value)
            << "rendering: " << text;
    }
    // Non-finite values have no JSON literal; they clamp to null.
    EXPECT_EQ(JsonWriter::formatDouble(1.0 / 0.0), "null");
}

TEST(JsonWriterTest, QuoteEscapesControlCharacters)
{
    EXPECT_EQ(JsonWriter::quote("a\"b\\c\nd"),
              "\"a\\\"b\\\\c\\nd\"");
}

/** A small but fully populated manifest for the decode tests. */
std::string
sampleManifest(uint64_t edac_corrected = 41)
{
    MetricRegistry registry(2);
    {
        const ShardScope scope(&registry.shard(0));
        telemetry::count(Counter::EdacCorrected, edac_corrected);
        telemetry::count(Counter::UnitsCompleted, 8);
        telemetry::distAdd(Dist::RunsPerUnit, 5.0);
    }
    core::ManifestRunInfo info;
    info.tool = "test";
    info.configHash = 0xabcdef;
    info.seed = 0x5e5510ULL;
    info.scale = 0.02;
    info.sessions = 4;
    info.replicates = 2;
    return core::renderRunManifest(info, {}, &registry, 2, 1.5);
}

TEST(Manifest, RenderParsesBackWithSchemaAndCounters)
{
    const std::string text = sampleManifest();
    const telemetry::ParsedJson parsed = telemetry::parseJson(text);
    ASSERT_TRUE(parsed.ok) << parsed.error;

    const telemetry::JsonValue *schema = parsed.root.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->text, telemetry::manifestSchema);

    const telemetry::JsonValue *version =
        parsed.root.find("schema_version");
    ASSERT_NE(version, nullptr);
    EXPECT_EQ(version->number,
              static_cast<double>(telemetry::manifestSchemaVersion));

    const telemetry::JsonValue *counters =
        parsed.root.find("counters");
    ASSERT_NE(counters, nullptr);
    const telemetry::JsonValue *edac =
        counters->find("edac_corrected");
    ASSERT_NE(edac, nullptr);
    EXPECT_EQ(edac->number, 41.0);

    // Wall-clock data is confined to the quarantined section.
    ASSERT_NE(parsed.root.find(telemetry::manifestTimingSection),
              nullptr);
}

TEST(Manifest, RenderIsByteStableAcrossCalls)
{
    EXPECT_EQ(sampleManifest(), sampleManifest());
}

TEST(Manifest, ParserSurvivesTruncationAtEveryByte)
{
    const std::string text = sampleManifest();
    size_t accepted = 0;
    for (size_t cut = 0; cut < text.size(); ++cut) {
        const telemetry::ParsedJson parsed =
            telemetry::parseJson(text.substr(0, cut));
        if (parsed.ok) {
            ++accepted;
            // Only the prefix missing the trailing newline is still a
            // complete document.
            EXPECT_GE(cut + 1, text.size());
        } else {
            EXPECT_FALSE(parsed.error.empty());
        }
    }
    EXPECT_LE(accepted, 1u);
}

TEST(Manifest, ParserSurvivesSingleByteCorruption)
{
    const std::string text = sampleManifest();
    for (size_t pos = 0; pos < text.size(); ++pos) {
        std::string mutant = text;
        mutant[pos] ^= 0x5a;
        // Must never crash; ok or not is corruption-dependent.
        const telemetry::ParsedJson parsed =
            telemetry::parseJson(mutant);
        if (!parsed.ok)
            EXPECT_FALSE(parsed.error.empty());
    }
}

TEST(Manifest, ParserRejectsDeepNestingAndTrailingGarbage)
{
    const std::string deep(100, '[');
    EXPECT_FALSE(telemetry::parseJson(deep).ok);
    EXPECT_FALSE(telemetry::parseJson("{} trailing").ok);
    EXPECT_FALSE(telemetry::parseJson("").ok);
}

std::string
writeTempFile(const std::string &name, const std::string &text)
{
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path, std::ios::binary);
    out << text;
    return path;
}

TEST(MetricsTool, LoadRejectsMissingFileBadSchemaAndBadVersion)
{
    const metricstool::ManifestFile missing =
        metricstool::loadManifest(::testing::TempDir() +
                                  "does-not-exist.json");
    EXPECT_FALSE(missing.ok);
    EXPECT_FALSE(missing.error.empty());

    const metricstool::ManifestFile wrong_schema =
        metricstool::loadManifest(writeTempFile(
            "wrong-schema.json",
            "{\"schema\": \"not-a-manifest\", \"schema_version\": 1}\n"));
    EXPECT_FALSE(wrong_schema.ok);

    const metricstool::ManifestFile wrong_version =
        metricstool::loadManifest(writeTempFile(
            "wrong-version.json",
            "{\"schema\": \"xser-run-manifest\", "
            "\"schema_version\": 999}\n"));
    EXPECT_FALSE(wrong_version.ok);

    const metricstool::ManifestFile good = metricstool::loadManifest(
        writeTempFile("good.json", sampleManifest()));
    EXPECT_TRUE(good.ok) << good.error;
}

metricstool::ManifestFile
parsedManifest(const std::string &text)
{
    const telemetry::ParsedJson parsed = telemetry::parseJson(text);
    metricstool::ManifestFile file;
    file.ok = parsed.ok;
    file.error = parsed.error;
    file.root = parsed.root;
    return file;
}

TEST(MetricsTool, DiffSkipsTimingByDefaultAndSeesItWithAll)
{
    // Same deterministic payload; the timing sections differ because
    // renderRunManifest is called with different jobs/elapsed.
    MetricRegistry registry(1);
    core::ManifestRunInfo info;
    info.tool = "test";
    const metricstool::ManifestFile a = parsedManifest(
        core::renderRunManifest(info, {}, &registry, 1, 1.0));
    const metricstool::ManifestFile b = parsedManifest(
        core::renderRunManifest(info, {}, &registry, 8, 9.0));

    bool identical = false;
    metricstool::diffManifests(a, b, false, identical);
    EXPECT_TRUE(identical);

    metricstool::diffManifests(a, b, true, identical);
    EXPECT_FALSE(identical);
}

TEST(MetricsTool, DiffReportsACounterMismatch)
{
    const metricstool::ManifestFile a =
        parsedManifest(sampleManifest(41));
    const metricstool::ManifestFile b =
        parsedManifest(sampleManifest(42));
    bool identical = true;
    const std::string report =
        metricstool::diffManifests(a, b, false, identical);
    EXPECT_FALSE(identical);
    EXPECT_NE(report.find("edac_corrected"), std::string::npos);
}

TEST(MetricsTool, CsvFlattensScalars)
{
    const metricstool::ManifestFile file =
        parsedManifest(sampleManifest(41));
    const std::string csv = metricstool::toCsv(file);
    EXPECT_NE(csv.find("counters.edac_corrected,41"),
              std::string::npos);
    EXPECT_NE(csv.find("schema,xser-run-manifest"),
              std::string::npos);
}

TEST(ProgressLine, RenderIsPureAndFormatsRateAndEta)
{
    const std::string line = telemetry::ProgressMeter::renderLine(
        "campaign", 25, 100, 5.0);
    EXPECT_NE(line.find("campaign 25/100 units (25%)"),
              std::string::npos);
    EXPECT_NE(line.find("5.00 units/s"), std::string::npos);
    EXPECT_NE(line.find("ETA 15s"), std::string::npos);

    // Finished work drops the ETA; zero totals never divide by zero.
    const std::string done = telemetry::ProgressMeter::renderLine(
        "campaign", 100, 100, 5.0);
    EXPECT_EQ(done.find("ETA"), std::string::npos);
    const std::string empty =
        telemetry::ProgressMeter::renderLine("x", 0, 0, 0.0);
    EXPECT_NE(empty.find("0/0"), std::string::npos);
}

int lineHookCalls = 0;
void countingLineHook() { ++lineHookCalls; }

TEST(ProgressLine, LoggerRunsTheLineHookBeforeMessages)
{
    Logger &logger = Logger::global();
    const LogLevel saved = logger.level();
    logger.setLevel(LogLevel::Warn);
    logger.setLineHook(&countingLineHook);
    lineHookCalls = 0;

    warn("telemetry line-hook test (expected output)");
    EXPECT_EQ(lineHookCalls, 1);

    // Suppressed messages never reach the hook -- Quiet wins over the
    // progress line just as it wins over --progress.
    logger.setLevel(LogLevel::Quiet);
    warn("suppressed");
    inform("suppressed");
    EXPECT_EQ(lineHookCalls, 1);

    logger.setLineHook(nullptr);
    logger.setLevel(saved);
}

TEST(ProgressLine, FatalSignalWipesTheMeterLine)
{
    // A live meter hooks the default-disposition fatal signals; the
    // handler's last act is an async-signal-safe erase of the progress
    // line before the default disposition is restored and the signal
    // re-raised -- the process still dies by SIGTERM, but without a
    // half-drawn meter left on the terminal.
    EXPECT_EXIT(
        {
            telemetry::ProgressMeter meter;
            meter.begin("campaign", 4);
            meter.tick(1);
            std::raise(SIGTERM);
        },
        testing::KilledBySignal(SIGTERM), "\x1b\\[K\r\x1b\\[K");
}

/** Fast-but-real campaign (mirrors test_trace.cc). */
core::CampaignConfig
tinyCampaign(uint64_t seed = 0x5e5510ULL)
{
    core::CampaignConfig config =
        core::BeamCampaign::paperCampaign(0.02, seed);
    for (auto &session : config.sessions) {
        session.maxErrorEvents = 6;
        session.maxFluence = 2e9;
        session.warmupRounds = 2;
    }
    return config;
}

std::string
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream bytes;
    bytes << in.rdbuf();
    return bytes.str();
}

struct CampaignOutput {
    core::ReplicatedCampaignResult result;
    std::string traceBytes;
};

CampaignOutput
runCampaign(unsigned jobs, bool metrics, const std::string &tag,
            MetricRegistry *registry_out = nullptr)
{
    const std::string path =
        ::testing::TempDir() + "telemetry-" + tag + ".xtrace";
    core::ParallelRunConfig run;
    run.jobs = jobs;
    run.replicates = 2;
    MetricRegistry registry(jobs);
    if (metrics)
        run.metrics = registry_out != nullptr ? registry_out : &registry;
    trace::TraceWriter writer(path);
    core::ParallelCampaignRunner runner(tinyCampaign(), run);
    CampaignOutput out;
    out.result = runner.executeAll(&writer);
    out.traceBytes = readFileBytes(path);
    return out;
}

void
expectAggregatesIdentical(const core::ReplicatedCampaignResult &a,
                          const core::ReplicatedCampaignResult &b)
{
    ASSERT_EQ(a.sessions.size(), b.sessions.size());
    for (size_t s = 0; s < a.sessions.size(); ++s) {
        const core::SessionAggregate &x = a.sessions[s];
        const core::SessionAggregate &y = b.sessions[s];
        EXPECT_EQ(x.runs, y.runs);
        EXPECT_EQ(x.fluence, y.fluence);
        EXPECT_EQ(x.upsetsDetected, y.upsetsDetected);
        EXPECT_EQ(x.rawUpsetEvents, y.rawUpsetEvents);
        EXPECT_EQ(x.events.total(), y.events.total());
        EXPECT_EQ(x.fitTotal.mean(), y.fitTotal.mean());
        EXPECT_EQ(x.fitTotal.variance(), y.fitTotal.variance());
    }
}

TEST(TelemetryDeterminism, MetricsOnOffBitIdentical)
{
    // The core telemetry contract: enabling metrics collection must
    // not perturb the simulation -- same aggregates, same trace bytes.
    const CampaignOutput off = runCampaign(2, false, "off");
    const CampaignOutput on = runCampaign(2, true, "on");
    ASSERT_FALSE(off.traceBytes.empty());
    EXPECT_EQ(off.traceBytes, on.traceBytes);
    expectAggregatesIdentical(off.result, on.result);
}

metricstool::ManifestFile
manifestForJobs(unsigned jobs)
{
    MetricRegistry registry(jobs);
    const CampaignOutput out = runCampaign(
        jobs, true, "jobs" + std::to_string(jobs), &registry);
    core::ManifestRunInfo info;
    info.tool = "test";
    info.configHash = core::campaignConfigHash(tinyCampaign());
    info.seed = 0x5e5510ULL;
    info.sessions =
        static_cast<unsigned>(out.result.sessions.size());
    info.replicates = 2;
    return parsedManifest(core::renderRunManifest(
        info, out.result.sessions, &registry, jobs, 0.0));
}

TEST(TelemetryDeterminism, ManifestsEqualAcrossWorkerCounts)
{
    const metricstool::ManifestFile jobs1 = manifestForJobs(1);
    const metricstool::ManifestFile jobs4 = manifestForJobs(4);
    ASSERT_TRUE(jobs1.ok) << jobs1.error;
    ASSERT_TRUE(jobs4.ok) << jobs4.error;
    bool identical = false;
    const std::string report =
        metricstool::diffManifests(jobs1, jobs4, false, identical);
    EXPECT_TRUE(identical) << report;
}

} // namespace
} // namespace xser
